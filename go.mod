module verticadr

go 1.22
