package verticadr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"verticadr/internal/cluster"
	"verticadr/internal/colstore"
	"verticadr/internal/server"
	"verticadr/internal/sqlparse"
	"verticadr/internal/verr"
)

// ClusterConfig describes the vdr-serve endpoints a Client talks to. One
// address is an ordinary single server; several addresses are the nodes of
// a sharded cluster (every node answers every query with cluster-wide
// results, so the client needs the list only for failover).
type ClusterConfig = cluster.Config

// NodeHealth is one node's state as reported by the cluster health surface.
type NodeHealth = cluster.NodeHealth

// ErrNodeDown: a node (or, for a routed query, every replica of a shard)
// was unreachable. Idempotent reads fail over before this surfaces.
var ErrNodeDown = verr.ErrNodeDown

// Client is the unified, topology-aware client for vdr-serve — one or
// many nodes behind the same API. It holds one active connection; when a
// transport failure marks that node unreachable, idempotent calls —
// SELECT/EXPLAIN through Query, Prepare, Execute, Predict, Ping —
// transparently reconnect to the next configured address and re-prepare
// the client's named statements there. Statements with effects (INSERT
// and DDL through Query/Exec, COPY through Load) fail over only when the
// request provably never reached the node; once their outcome is unknown
// the error surfaces instead of silently double-applying rows or
// re-running DDL.
//
// A Client is safe for sequential use; open one Client per concurrent
// request stream, exactly like ServerClient.
type Client struct {
	cfg ClusterConfig

	mu       sync.Mutex
	conn     *server.Client
	at       int               // index into cfg.Addrs of conn's node
	prepared map[string]string // name -> SQL, replayed after failover
	closed   bool
}

// Dial connects to the first reachable configured address.
func Dial(ctx context.Context, cfg ClusterConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("verticadr: ClusterConfig needs at least one address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	c := &Client{cfg: cfg, prepared: map[string]string{}}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears down the active connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// connectLocked dials the next reachable address, starting at the current
// cursor, and replays the prepared statements onto the new node.
func (c *Client) connectLocked(ctx context.Context) error {
	if c.closed {
		return fmt.Errorf("verticadr: client closed: %w", verr.ErrClosed)
	}
	var lastErr error
	for i := 0; i < len(c.cfg.Addrs); i++ {
		at := (c.at + i) % len(c.cfg.Addrs)
		conn, err := server.DialTimeout(c.cfg.Addrs[at], c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if err := conn.Ping(ctx); err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		ok := true
		for name, sql := range c.prepared {
			if err := conn.Prepare(ctx, name, sql); err != nil {
				_ = conn.Close()
				lastErr, ok = err, false
				break
			}
		}
		if !ok {
			continue
		}
		c.conn, c.at = conn, at
		return nil
	}
	return fmt.Errorf("verticadr: no reachable node: %w: %v", verr.ErrNodeDown, lastErr)
}

// transportFailure reports whether the active node became unusable
// (unreachable or shutting down), as opposed to rejecting the query.
func transportFailure(err error) bool {
	return errors.Is(err, verr.ErrNodeDown) || errors.Is(err, verr.ErrClosed)
}

// do runs fn over the active connection. Idempotent calls retry on the
// next node after a transport failure, up to once per configured address.
// Non-idempotent calls retry only when the failure happened before the
// request reached the node (server.RequestNotSent) — re-running is then
// provably safe; any later failure leaves the outcome unknown and must
// surface to the caller.
func (c *Client) do(ctx context.Context, idempotent bool, fn func(*server.Client) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < len(c.cfg.Addrs); attempt++ {
		if c.conn == nil {
			if err := c.connectLocked(ctx); err != nil {
				return err
			}
		}
		err := fn(c.conn)
		if err == nil {
			return nil
		}
		if !transportFailure(err) {
			return err
		}
		_ = c.conn.Close()
		c.conn = nil
		c.at = (c.at + 1) % len(c.cfg.Addrs)
		lastErr = err
		if !idempotent && !server.RequestNotSent(err) {
			return err
		}
	}
	return fmt.Errorf("verticadr: every node failed: %w: %v", verr.ErrNodeDown, lastErr)
}

// idempotentSQL reports whether sql is safe to re-run on another node when
// a transport failure left its first outcome unknown: reads (SELECT,
// EXPLAIN) are; INSERT and DDL are not. Unparseable SQL is classified
// non-idempotent — the server's parse error comes back as a query error,
// not a transport failure, so the conservative default costs nothing.
func idempotentSQL(sql string) bool {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return false
	}
	switch stmt.(type) {
	case *sqlparse.Select, *sqlparse.Explain:
		return true
	}
	return false
}

// Query runs one-shot SQL. Against a cluster the node routes it over the
// shards and merges, so the result is identical from any node. Only reads
// (SELECT, EXPLAIN) fail over once in flight; an INSERT or DDL statement
// whose outcome is unknown surfaces the transport error instead.
func (c *Client) Query(ctx context.Context, sql string) (*Rows, error) {
	var rows *Rows
	err := c.do(ctx, idempotentSQL(sql), func(conn *server.Client) error {
		r, err := conn.Query(ctx, sql)
		rows = r
		return err
	})
	return rows, err
}

// Prepare registers a named SELECT. The client remembers it and re-prepares
// it automatically when failing over to another node.
func (c *Client) Prepare(ctx context.Context, name, sql string) error {
	err := c.do(ctx, true, func(conn *server.Client) error {
		return conn.Prepare(ctx, name, sql)
	})
	if err == nil {
		// do() holds no lock here; retake it for the map.
		c.mu.Lock()
		c.prepared[name] = sql
		c.mu.Unlock()
	}
	return err
}

// Execute binds args to a prepared statement and runs it.
func (c *Client) Execute(ctx context.Context, name string, args ...any) (*Rows, error) {
	var rows *Rows
	err := c.do(ctx, true, func(conn *server.Client) error {
		r, err := conn.Execute(ctx, name, args...)
		rows = r
		return err
	})
	return rows, err
}

// Predict scores a table with a deployed model: the paper's in-database
// prediction statement, built and routed for the caller.
//
//	client.Predict(ctx, "rModel", "mytable", "a", "b")
//	→ SELECT GlmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable
func (c *Client) Predict(ctx context.Context, model, table string, cols ...string) (*Rows, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("verticadr: Predict needs at least one input column")
	}
	sql := fmt.Sprintf("SELECT GlmPredict(%s USING PARAMETERS model='%s') OVER (PARTITION BEST) FROM %s",
		strings.Join(cols, ", "), strings.ReplaceAll(model, "'", "''"), table)
	return c.Query(ctx, sql)
}

// Exec runs a statement for effect (DDL; against a cluster it is broadcast
// to every node). Like any write, it does not fail over once its outcome
// is unknown; re-issuing the statement is the caller's recovery path.
func (c *Client) Exec(ctx context.Context, sql string) error {
	_, err := c.Query(ctx, sql)
	return err
}

// Load COPYs rows into a table through the connected node: the node splits
// them by the table's segmentation — across the cluster's shards and
// replicas when clustered, across local segments otherwise. Row values
// must match the column types (int64, float64, string, bool). Load fails
// over only while the request provably never reached the node; after
// that, an error means the batch's outcome must be checked, not that it
// was retried elsewhere.
func (c *Client) Load(ctx context.Context, table string, rows [][]any) error {
	if len(rows) == 0 {
		return nil
	}
	return c.do(ctx, false, func(conn *server.Client) error {
		def, err := cluster.ClientTableDef(ctx, conn, table)
		if err != nil {
			return err
		}
		b := colstore.NewBatchCap(def.Schema, len(rows))
		for _, row := range rows {
			if err := b.AppendRow(row...); err != nil {
				return err
			}
		}
		return cluster.ClientLoad(ctx, conn, table, b)
	})
}

// Ping round-trips to the active node, failing over if it is gone.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, true, func(conn *server.Client) error { return conn.Ping(ctx) })
}

// Health reports which cluster nodes answer, with the shards each one owns.
// The first reachable peer supplies the full cluster address list, so the
// report covers every node even when the client was dialed with a subset.
func (c *Client) Health(ctx context.Context) []NodeHealth {
	return cluster.DiscoverHealth(ctx, c.cfg.Addrs, c.cfg.DialTimeout)
}
