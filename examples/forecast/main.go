// Forecast is the financial-forecasting scenario of §7.3.1 ("regression
// analysis ... widely used by financial firms for forecasting, such as
// predicting sales based on customer characteristics"): a linear model with
// k-fold cross-validation, compared against a random forest on the same
// data, with the winner deployed for in-database scoring.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"verticadr"
)

func main() {
	s, err := verticadr.Start(verticadr.Config{DBNodes: 4, DRWorkers: 4, InstancesPerWorker: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Sales respond linearly to ad spend and store traffic, plus a
	// non-linear seasonal kink the forest can catch but the line cannot.
	if err := s.Exec(`CREATE TABLE sales (ad_spend FLOAT, traffic FLOAT, season FLOAT, revenue FLOAT)`); err != nil {
		log.Fatal(err)
	}
	const n = 24000
	rng := rand.New(rand.NewSource(17))
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		ad, tr, se := rng.Float64()*10, rng.Float64()*5, rng.Float64()
		rev := 50 + 4*ad + 9*tr + rng.NormFloat64()
		if se > 0.75 { // holiday quarter
			rev += 25
		}
		cols[0][i], cols[1][i], cols[2][i], cols[3][i] = ad, tr, se, rev
	}
	if err := s.DB.LoadColumns("sales", cols); err != nil {
		log.Fatal(err)
	}

	x, _, err := s.DB2DArray("sales", []string{"ad_spend", "traffic", "season"}, "")
	if err != nil {
		log.Fatal(err)
	}
	y, _, err := s.DB2DArray("sales", []string{"revenue"}, "")
	if err != nil {
		log.Fatal(err)
	}

	// Candidate 1: linear model + cross-validation.
	lm, err := verticadr.LM(x, y)
	if err != nil {
		log.Fatal(err)
	}
	cv, err := verticadr.CrossValidate(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian}, 5)
	if err != nil {
		log.Fatal(err)
	}
	lmRMSE := math.Sqrt(cv.MeanDeviance / (float64(n) / 5))
	fmt.Printf("linear model: coefficients %.2f, CV RMSE %.2f\n", lm.Coefficients, lmRMSE)

	// Candidate 2: random forest (captures the seasonal kink).
	rf, err := verticadr.RandomForest(x, y, verticadr.ForestOpts{Trees: 24, MaxDepth: 8, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	// Hold-out check on a fresh sample.
	var rfErr, lmErr float64
	const holdout = 2000
	for i := 0; i < holdout; i++ {
		ad, tr, se := rng.Float64()*10, rng.Float64()*5, rng.Float64()
		truth := 50 + 4*ad + 9*tr
		if se > 0.75 {
			truth += 25
		}
		row := []float64{ad, tr, se}
		rfErr += sq(rf.Predict(row) - truth)
		lmErr += sq(lm.Predict(row) - truth)
	}
	fmt.Printf("holdout RMSE: forest %.2f vs linear %.2f\n",
		math.Sqrt(rfErr/holdout), math.Sqrt(lmErr/holdout))

	// Deploy both; score next quarter's plan in-database with each.
	if err := s.DeployModel("rev_lm", "finance", "linear forecast", lm); err != nil {
		log.Fatal(err)
	}
	if err := s.DeployModel("rev_rf", "finance", "forest forecast", rf); err != nil {
		log.Fatal(err)
	}
	if err := s.Exec(`CREATE TABLE plan (ad_spend FLOAT, traffic FLOAT, season FLOAT)`); err != nil {
		log.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO plan VALUES (8.0, 4.0, 0.9), (2.0, 1.0, 0.2), (5.0, 2.5, 0.8)`); err != nil {
		log.Fatal(err)
	}
	lmPred, err := s.Query(`SELECT GlmPredict(ad_spend, traffic, season USING PARAMETERS model='rev_lm') OVER (PARTITION BEST) FROM plan`)
	if err != nil {
		log.Fatal(err)
	}
	rfPred, err := s.Query(`SELECT RfPredict(ad_spend, traffic, season USING PARAMETERS model='rev_rf') OVER (PARTITION BEST) FROM plan`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned-quarter forecasts (linear | forest):")
	for i := range lmPred.Rows() {
		fmt.Printf("  scenario %d: %.1f | %.1f\n", i,
			lmPred.Batch.Cols[0].Floats[i], rfPred.Batch.Cols[0].Floats[i])
	}
	models, err := s.Query(`SELECT model, type, size FROM R_Models ORDER BY model`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed models:", models.Rows())
}

func sq(v float64) float64 { return v * v }
