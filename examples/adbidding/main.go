// Adbidding models the media-buying scenario that motivates the paper (§1):
// a platform like RocketFuel trains an offline click-probability model on
// historical user features, deploys it into the database, and then scores
// newly arriving ad-auction rows in-database, in bulk and with low latency —
// the workload R alone cannot serve ("deployment of models can occur on
// terabytes of new data, and may have real-time constraints").
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"verticadr"
)

// planted click model: logit(p) = -1.2 + 2.5*siteAffinity + 1.0*income -
// 0.8*adsSeen. Feature generation mirrors "websites visited and
// demographics".
var beta = []float64{-1.2, 2.5, 1.0, -0.8}

func genAuctionCols(rng *rand.Rand, n int, withClicks bool) [][]float64 {
	cols := make([][]float64, 3, 4)
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	var clicks []float64
	if withClicks {
		clicks = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		site, income, seen := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		cols[0][i], cols[1][i], cols[2][i] = site, income, seen
		if withClicks {
			eta := beta[0] + beta[1]*site + beta[2]*income + beta[3]*seen
			if rng.Float64() < 1/(1+math.Exp(-eta)) {
				clicks[i] = 1
			}
		}
	}
	if withClicks {
		cols = append(cols, clicks)
	}
	return cols
}

func main() {
	s, err := verticadr.Start(verticadr.Config{DBNodes: 4, DRWorkers: 4, InstancesPerWorker: 2, UseYARN: true})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))

	// --- Offline: historical impressions with click outcomes. ---
	if err := s.Exec(`CREATE TABLE impressions (site_affinity FLOAT, income FLOAT, ads_seen FLOAT, clicked FLOAT)`); err != nil {
		log.Fatal(err)
	}
	if err := s.DB.LoadColumns("impressions", genAuctionCols(rng, 40000, true)); err != nil {
		log.Fatal(err)
	}

	// Train a logistic model in Distributed R.
	x, _, err := s.DB2DArray("impressions", []string{"site_affinity", "income", "ads_seen"}, "")
	if err != nil {
		log.Fatal(err)
	}
	y, _, err := s.DB2DArray("impressions", []string{"clicked"}, "")
	if err != nil {
		log.Fatal(err)
	}
	model, err := verticadr.GLM(x, y, verticadr.GLMOpts{Family: verticadr.Binomial})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("click model coefficients: %.2f (planted %.1f)\n", model.Coefficients, beta)

	if err := s.DeployModel("ctr", "adplatform", "click-through-rate", model); err != nil {
		log.Fatal(err)
	}

	// --- Online: auctions stream into the database; score them in-place. ---
	if err := s.Exec(`CREATE TABLE auctions (site_affinity FLOAT, income FLOAT, ads_seen FLOAT)`); err != nil {
		log.Fatal(err)
	}
	if err := s.DB.LoadColumns("auctions", genAuctionCols(rng, 100000, false)); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := s.Query(`SELECT GlmPredict(site_affinity, income, ads_seen USING PARAMETERS model='ctr') OVER (PARTITION BEST) FROM auctions`)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Bid on everything above a click-probability threshold.
	const threshold = 0.5
	bids := 0
	for _, p := range res.Batch.Cols[0].Floats {
		if p >= threshold {
			bids++
		}
	}
	fmt.Printf("scored %d auctions in-database in %v (%.0f rows/s)\n",
		res.Len(), elapsed, float64(res.Len())/elapsed.Seconds())
	fmt.Printf("bidding on %d auctions (p >= %.2f)\n", bids, threshold)
}
