// Quickstart reproduces the paper's Figure 3 script end to end: start a
// session, load a table's features into a distributed array with Vertica
// Fast Transfer, fit a distributed GLM, cross-validate it, print the
// coefficients, deploy the model into the database, and run in-database
// prediction with SQL.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"verticadr"
)

func main() {
	// Lines 1-3: start Distributed R alongside a 4-node database.
	s, err := verticadr.Start(verticadr.Config{DBNodes: 4, DRWorkers: 4, InstancesPerWorker: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Prepare a table: y = 3 + 2*a - b + noise.
	if err := s.Exec(`CREATE TABLE mytable (a FLOAT, b FLOAT, y FLOAT) SEGMENTED BY ROUND ROBIN`); err != nil {
		log.Fatal(err)
	}
	const n = 20000
	rng := rand.New(rand.NewSource(1))
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		cols[0][i], cols[1][i] = a, b
		cols[2][i] = 3 + 2*a - b + rng.NormFloat64()*0.1
	}
	if err := s.DB.LoadColumns("mytable", cols); err != nil {
		log.Fatal(err)
	}

	// Line 5: data <- db2darray("mytable", ...).
	x, stats, err := s.DB2DArray("mytable", []string{"a", "b"}, "")
	if err != nil {
		log.Fatal(err)
	}
	y, _, err := s.DB2DArray("mytable", []string{"y"}, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows via VFT (%s policy, %d chunks, %d bytes)\n",
		x.Rows(), stats.Policy, stats.Chunks, stats.Bytes)

	// Line 6: model <- hpdglm(...).
	model, err := verticadr.GLM(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian})
	if err != nil {
		log.Fatal(err)
	}

	// Line 7: cv.hpdglm(...).
	cv, err := verticadr.CrossValidate(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian}, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Line 8: print(coef(model)).
	fmt.Printf("coefficients: intercept=%.3f a=%.3f b=%.3f (want 3, 2, -1)\n",
		model.Coefficients[0], model.Coefficients[1], model.Coefficients[2])
	fmt.Printf("cross-validation mean deviance: %.4f over %d folds\n", cv.MeanDeviance, cv.Folds)

	// Line 9: deploy.model(model, 'rModel').
	if err := s.DeployModel("rModel", "quickstart", "forecasting", model); err != nil {
		log.Fatal(err)
	}
	catalog, err := s.Query(`SELECT model, owner, type, size FROM R_Models`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("R_Models:", catalog.Rows())

	// Lines 10-11: in-database prediction over new data.
	if err := s.Exec(`CREATE TABLE mytable2 (a FLOAT, b FLOAT)`); err != nil {
		log.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO mytable2 VALUES (1.0, 0.0), (0.0, 1.0), (2.0, 2.0)`); err != nil {
		log.Fatal(err)
	}
	res, err := s.Query(`SELECT glmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-database predictions (want ~5, ~2, ~5):")
	for _, row := range res.Rows() {
		fmt.Printf("  %.3f\n", row[0].(float64))
	}
}
