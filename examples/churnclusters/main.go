// Churnclusters segments customers with distributed K-means (the paper's
// recurring clustering workload), deploys the centers into the database,
// assigns every customer to a segment with KmeansPredict, and then uses
// plain SQL to profile the segments — the "leverage the strengths of both
// systems" workflow of §2: R-style modelling plus industrial SQL.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"verticadr"
)

func main() {
	s, err := verticadr.Start(verticadr.Config{DBNodes: 3, DRWorkers: 3, InstancesPerWorker: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Customers come in three behavioural archetypes.
	type archetype struct{ spend, tenure, tickets float64 }
	arch := []archetype{
		{spend: 20, tenure: 1, tickets: 8}, // at-risk: low spend, new, many complaints
		{spend: 80, tenure: 6, tickets: 1}, // loyal big spenders
		{spend: 45, tenure: 3, tickets: 3}, // steady middle
	}
	if err := s.Exec(`CREATE TABLE customers (spend FLOAT, tenure FLOAT, tickets FLOAT)`); err != nil {
		log.Fatal(err)
	}
	const n = 9000
	rng := rand.New(rand.NewSource(3))
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		a := arch[i%3]
		cols[0][i] = a.spend + rng.NormFloat64()*2
		cols[1][i] = a.tenure + rng.NormFloat64()*0.3
		cols[2][i] = a.tickets + rng.NormFloat64()*0.5
	}
	if err := s.DB.LoadColumns("customers", cols); err != nil {
		log.Fatal(err)
	}

	// Cluster in Distributed R.
	x, _, err := s.DB2DArray("customers", nil, "")
	if err != nil {
		log.Fatal(err)
	}
	km, err := verticadr.Kmeans(x, verticadr.KmeansOpts{K: 3, Seed: 11, InitPlus: true, MaxIter: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means converged=%v after %d iterations, objective %.1f\n",
		km.Converged, km.Iterations, km.Objective)
	for i, c := range km.Centers {
		fmt.Printf("  segment %d center: spend=%.1f tenure=%.1f tickets=%.1f\n", i, c[0], c[1], c[2])
	}

	// Deploy and assign segments in-database.
	if err := s.DeployModel("segments", "crm", "customer clustering", km); err != nil {
		log.Fatal(err)
	}
	res, err := s.Query(`SELECT KmeansPredict(spend, tenure, tickets USING PARAMETERS model='segments') OVER (PARTITION BEST) FROM customers`)
	if err != nil {
		log.Fatal(err)
	}

	// Profile segments with SQL aggregates.
	counts := map[int64]int{}
	for _, v := range res.Batch.Cols[0].Ints {
		counts[v]++
	}
	fmt.Println("segment sizes:")
	for k := int64(0); k < 3; k++ {
		fmt.Printf("  segment %d: %d customers\n", k, counts[k])
	}
	stats, err := s.Query(`SELECT count(*) AS n, avg(spend) AS avg_spend, avg(tickets) AS avg_tickets FROM customers WHERE tickets > 5`)
	if err != nil {
		log.Fatal(err)
	}
	row := stats.Rows()[0]
	fmt.Printf("high-complaint customers: n=%v avg_spend=%.1f avg_tickets=%.1f\n",
		row[0], row[1].(float64), row[2].(float64))
}
