// Package dfs implements the Vertica-internal distributed file system the
// paper uses to store serialized R models (§5): a replicated blob store whose
// files are visible to the query engine on every node. Models "provide the
// same fault-tolerance guarantees as Vertica tables" — here that means each
// blob is written to `replication` node-local stores and reads fall back
// across replicas when nodes are down.
package dfs

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FileInfo describes one stored blob.
type FileInfo struct {
	Name     string
	Size     int
	CRC      uint32
	Replicas []int // node ids holding a copy
}

// nodeStore is one node's local blob storage; in-memory with an optional
// spill directory so blobs survive process restarts in the demo tools.
type nodeStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	dir   string // optional
	down  bool
}

func (n *nodeStore) put(name string, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return fmt.Errorf("dfs: node is down")
	}
	cp := append([]byte(nil), data...)
	n.blobs[name] = cp
	if n.dir != "" {
		path := filepath.Join(n.dir, sanitize(name))
		if err := os.WriteFile(path, cp, 0o644); err != nil {
			return fmt.Errorf("dfs: spill %q: %w", name, err)
		}
	}
	return nil
}

func (n *nodeStore) get(name string) ([]byte, bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down {
		return nil, false, fmt.Errorf("dfs: node is down")
	}
	b, ok := n.blobs[name]
	if !ok && n.dir != "" {
		data, err := os.ReadFile(filepath.Join(n.dir, sanitize(name)))
		if err == nil {
			return data, true, nil
		}
	}
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), b...), true, nil
}

func (n *nodeStore) del(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blobs, name)
	if n.dir != "" {
		os.Remove(filepath.Join(n.dir, sanitize(name)))
	}
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// DFS is the cluster-wide file system: a replicated namespace over per-node
// blob stores.
type DFS struct {
	mu          sync.RWMutex
	files       map[string]*FileInfo
	nodes       []*nodeStore
	replication int
}

// New creates a DFS over `nodes` node-local stores with the given replication
// factor (clamped to the node count). spillDir, when non-empty, creates one
// subdirectory per node for persistence.
func New(nodes, replication int, spillDir string) (*DFS, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("dfs: need at least one node")
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > nodes {
		replication = nodes
	}
	d := &DFS{
		files:       make(map[string]*FileInfo),
		replication: replication,
	}
	for i := 0; i < nodes; i++ {
		ns := &nodeStore{blobs: make(map[string][]byte)}
		if spillDir != "" {
			dir := filepath.Join(spillDir, fmt.Sprintf("node%d", i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("dfs: create spill dir: %w", err)
			}
			ns.dir = dir
		}
		d.nodes = append(d.nodes, ns)
	}
	return d, nil
}

// Nodes returns the node count.
func (d *DFS) Nodes() int { return len(d.nodes) }

// Replication returns the effective replication factor.
func (d *DFS) Replication() int { return d.replication }

// replicaSet picks the nodes that store a file: consecutive nodes starting at
// the file-name hash (consistent and deterministic).
func (d *DFS) replicaSet(name string) []int {
	h := fnv.New32a()
	h.Write([]byte(name))
	start := int(h.Sum32()) % len(d.nodes)
	if start < 0 {
		start += len(d.nodes)
	}
	out := make([]int, 0, d.replication)
	for i := 0; i < d.replication; i++ {
		out = append(out, (start+i)%len(d.nodes))
	}
	return out
}

// Write stores (or overwrites) a blob on all replicas. It fails if any
// replica write fails (no partial-success bookkeeping; the caller retries).
func (d *DFS) Write(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	replicas := d.replicaSet(name)
	for _, nid := range replicas {
		if err := d.nodes[nid].put(name, data); err != nil {
			return fmt.Errorf("dfs: write %q to node %d: %w", name, nid, err)
		}
	}
	d.mu.Lock()
	d.files[name] = &FileInfo{
		Name:     name,
		Size:     len(data),
		CRC:      crc32.ChecksumIEEE(data),
		Replicas: replicas,
	}
	d.mu.Unlock()
	return nil
}

// Read retrieves a blob, trying replicas in order and skipping down nodes.
// Content is verified against the stored checksum.
func (d *DFS) Read(name string) ([]byte, error) {
	d.mu.RLock()
	info, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	var lastErr error
	for _, nid := range info.Replicas {
		data, found, err := d.nodes[nid].get(name)
		if err != nil {
			lastErr = err
			continue
		}
		if !found {
			lastErr = fmt.Errorf("dfs: replica on node %d missing blob %q", nid, name)
			continue
		}
		if crc32.ChecksumIEEE(data) != info.CRC {
			lastErr = fmt.Errorf("dfs: checksum mismatch for %q on node %d", name, nid)
			continue
		}
		return data, nil
	}
	return nil, fmt.Errorf("dfs: all replicas of %q unavailable: %w", name, lastErr)
}

// ReadFrom retrieves a blob as seen from a specific node: it prefers the
// local replica (no "network") and falls back to remote replicas. The
// prediction UDFs use this to model §5's "retrieve the models from DFS".
func (d *DFS) ReadFrom(node int, name string) (data []byte, local bool, err error) {
	d.mu.RLock()
	info, ok := d.files[name]
	d.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("dfs: file %q does not exist", name)
	}
	for _, nid := range info.Replicas {
		if nid == node {
			if b, found, err := d.nodes[nid].get(name); err == nil && found {
				return b, true, nil
			}
		}
	}
	b, err := d.Read(name)
	return b, false, err
}

// Delete removes the blob from all replicas and the namespace.
func (d *DFS) Delete(name string) error {
	d.mu.Lock()
	info, ok := d.files[name]
	if ok {
		delete(d.files, name)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("dfs: file %q does not exist", name)
	}
	for _, nid := range info.Replicas {
		d.nodes[nid].del(name)
	}
	return nil
}

// Stat returns metadata for a blob.
func (d *DFS) Stat(name string) (FileInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info, ok := d.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("dfs: file %q does not exist", name)
	}
	return *info, nil
}

// List returns metadata for all blobs, sorted by name.
func (d *DFS) List() []FileInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]FileInfo, 0, len(d.files))
	for _, info := range d.files {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetNodeDown toggles a node's availability (fault injection for tests).
func (d *DFS) SetNodeDown(node int, down bool) error {
	if node < 0 || node >= len(d.nodes) {
		return fmt.Errorf("dfs: no node %d", node)
	}
	ns := d.nodes[node]
	ns.mu.Lock()
	ns.down = down
	ns.mu.Unlock()
	return nil
}
