package dfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestWriteReadDelete(t *testing.T) {
	d, err := New(3, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("serialized model bytes")
	if err := d.Write("model1", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read("model1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read != written")
	}
	info, err := d.Stat("model1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != len(data) || len(info.Replicas) != 2 {
		t.Fatalf("info = %+v", info)
	}
	if err := d.Delete("model1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read("model1"); err == nil {
		t.Fatal("read after delete should fail")
	}
	if err := d.Delete("model1"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	d, _ := New(4, 3, "")
	if err := d.Write("m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	info, _ := d.Stat("m")
	// Take down all but the last replica.
	for _, nid := range info.Replicas[:len(info.Replicas)-1] {
		if err := d.SetNodeDown(nid, true); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Read("m")
	if err != nil || string(got) != "x" {
		t.Fatalf("read with failures: %v %q", err, got)
	}
	// Take down the last replica too: read must fail.
	_ = d.SetNodeDown(info.Replicas[len(info.Replicas)-1], true)
	if _, err := d.Read("m"); err == nil {
		t.Fatal("read with all replicas down should fail")
	}
	// Recovery.
	_ = d.SetNodeDown(info.Replicas[0], false)
	if _, err := d.Read("m"); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestWriteToDownNodeFails(t *testing.T) {
	d, _ := New(2, 2, "")
	_ = d.SetNodeDown(0, true)
	if err := d.Write("m", []byte("x")); err == nil {
		t.Fatal("write with a down replica should fail (replication=all nodes)")
	}
}

func TestReadFromPrefersLocal(t *testing.T) {
	d, _ := New(3, 2, "")
	_ = d.Write("m", []byte("payload"))
	info, _ := d.Stat("m")
	// From a replica node the read is local.
	data, local, err := d.ReadFrom(info.Replicas[0], "m")
	if err != nil || !local || string(data) != "payload" {
		t.Fatalf("local read: %v local=%v", err, local)
	}
	// From a non-replica node the read is remote.
	nonReplica := -1
	for n := 0; n < 3; n++ {
		isRep := false
		for _, r := range info.Replicas {
			if r == n {
				isRep = true
			}
		}
		if !isRep {
			nonReplica = n
		}
	}
	if nonReplica == -1 {
		t.Skip("all nodes are replicas")
	}
	data, local, err = d.ReadFrom(nonReplica, "m")
	if err != nil || local || string(data) != "payload" {
		t.Fatalf("remote read: %v local=%v", err, local)
	}
}

func TestListSorted(t *testing.T) {
	d, _ := New(2, 1, "")
	_ = d.Write("b", []byte("1"))
	_ = d.Write("a", []byte("2"))
	l := d.List()
	if len(l) != 2 || l[0].Name != "a" || l[1].Name != "b" {
		t.Fatalf("list = %v", l)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 1, ""); err == nil {
		t.Fatal("0 nodes should fail")
	}
	d, _ := New(2, 5, "") // replication clamped
	if d.Replication() != 2 {
		t.Fatalf("replication = %d", d.Replication())
	}
	if err := d.Write("", []byte("x")); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := d.Read("missing"); err == nil {
		t.Fatal("missing read should fail")
	}
	if _, err := d.Stat("missing"); err == nil {
		t.Fatal("missing stat should fail")
	}
	if err := d.SetNodeDown(9, true); err == nil {
		t.Fatal("bad node id should fail")
	}
	if _, _, err := d.ReadFrom(0, "missing"); err == nil {
		t.Fatal("missing ReadFrom should fail")
	}
}

func TestSpillPersistence(t *testing.T) {
	dir := t.TempDir()
	d, err := New(2, 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write("my/model:v1", []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read("my/model:v1")
	if err != nil || string(got) != "bytes" {
		t.Fatalf("spill read: %v %q", err, got)
	}
}

func TestOverwrite(t *testing.T) {
	d, _ := New(3, 2, "")
	_ = d.Write("m", []byte("v1"))
	_ = d.Write("m", []byte("v2"))
	got, err := d.Read("m")
	if err != nil || string(got) != "v2" {
		t.Fatalf("overwrite: %v %q", err, got)
	}
	if len(d.List()) != 1 {
		t.Fatal("overwrite should not duplicate namespace entry")
	}
}

// Property: replica sets are deterministic, the right size, and distinct.
func TestQuickReplicaSets(t *testing.T) {
	d, _ := New(5, 3, "")
	f := func(name string) bool {
		if name == "" {
			return true
		}
		a := d.replicaSet(name)
		b := d.replicaSet(name)
		if len(a) != 3 {
			return false
		}
		seen := map[int]bool{}
		for i := range a {
			if a[i] != b[i] || a[i] < 0 || a[i] >= 5 || seen[a[i]] {
				return false
			}
			seen[a[i]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: write/read round-trips arbitrary binary blobs.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	d, _ := New(4, 2, "")
	i := 0
	f := func(data []byte) bool {
		i++
		name := fmt.Sprintf("blob-%d", i)
		if err := d.Write(name, data); err != nil {
			return false
		}
		got, err := d.Read(name)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
