package spark

import (
	"math"
	"testing"

	"verticadr/internal/hdfs"
	"verticadr/internal/workload"
)

func newFS(t *testing.T, nodes, blockSize int) *hdfs.FS {
	t.Helper()
	fs, err := hdfs.New(hdfs.Config{DataNodes: nodes, BlockSize: blockSize, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestTextFileRoundTrip(t *testing.T) {
	fs := newFS(t, 3, 256)
	rows := [][]float64{{1, 2}, {3.5, -4}, {0, 0}, {1e10, 1e-10}}
	if err := WriteCSV(fs, "data.csv", rows); err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rdd, err := ctx.TextFile("data.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("collected %d rows", len(got))
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

func TestTextFilePartitionsMatchBlocks(t *testing.T) {
	fs := newFS(t, 4, 64)
	data := workload.GenKmeans(3, 200, 4, 2, 1)
	if err := WriteCSV(fs, "d.csv", data.Points); err != nil {
		t.Fatal(err)
	}
	ctx, _ := NewContext(fs, 4)
	rdd, _ := ctx.TextFile("d.csv")
	blocks, _ := fs.Blocks("d.csv")
	if rdd.NumPartitions() != len(blocks) {
		t.Fatalf("parts %d != blocks %d", rdd.NumPartitions(), len(blocks))
	}
	n, err := rdd.Count()
	if err != nil || n != 200 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestMapAndCache(t *testing.T) {
	fs := newFS(t, 2, 1024)
	ctx, _ := NewContext(fs, 2)
	rdd, err := ctx.Parallelize([][]float64{{1}, {2}, {3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	doubled := rdd.Map(func(r []float64) []float64 { return []float64{r[0] * 2} }).Cache()
	got, err := doubled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 2 || got[2][0] != 6 {
		t.Fatalf("map result = %v", got)
	}
	// Second action uses the cache (same values).
	n, err := doubled.Count()
	if err != nil || n != 3 {
		t.Fatalf("count after cache = %d %v", n, err)
	}
}

func TestKmeansConverges(t *testing.T) {
	fs := newFS(t, 3, 4096)
	data := workload.GenKmeans(7, 500, 3, 3, 0.1)
	if err := WriteCSV(fs, "pts.csv", data.Points); err != nil {
		t.Fatal(err)
	}
	ctx, _ := NewContext(fs, 4)
	rdd, _ := ctx.TextFile("pts.csv")
	rdd = rdd.Cache()
	model, err := Kmeans(rdd, 3, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Centers) != 3 {
		t.Fatalf("centers = %d", len(model.Centers))
	}
	// Every planted center recovered.
	for _, pc := range data.Centers {
		best := math.Inf(1)
		for _, fc := range model.Centers {
			var d float64
			for j := range pc {
				d += (pc[j] - fc[j]) * (pc[j] - fc[j])
			}
			if d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 1 {
			t.Fatalf("planted center missed by %v", math.Sqrt(best))
		}
	}
}

func TestKmeansValidation(t *testing.T) {
	fs := newFS(t, 2, 1024)
	ctx, _ := NewContext(fs, 2)
	rdd, _ := ctx.Parallelize([][]float64{{1}}, 1)
	if _, err := Kmeans(rdd, 5, 10, 1); err == nil {
		t.Fatal("K > rows should fail")
	}
	if _, err := NewContext(fs, 0); err == nil {
		t.Fatal("0 executors should fail")
	}
	if _, err := ctx.Parallelize(nil, 0); err == nil {
		t.Fatal("0 partitions should fail")
	}
	if _, err := ctx.TextFile("missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLocalScheduling(t *testing.T) {
	fs := newFS(t, 3, 128)
	data := workload.GenKmeans(9, 300, 3, 2, 1)
	_ = WriteCSV(fs, "l.csv", data.Points)
	ctx, _ := NewContext(fs, 4)
	rdd, _ := ctx.TextFile("l.csv")
	if _, err := rdd.Count(); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("l.csv")
	// Scheduling on first replica: every block read should be local.
	if rdd.LocalHit != len(blocks) {
		t.Fatalf("local hits %d of %d blocks", rdd.LocalHit, len(blocks))
	}
}
