package spark

import (
	"fmt"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
)

// FromFrame converts a distributed data frame (loaded from the database via
// Vertica Fast Transfer) into an RDD, one RDD partition per frame
// partition. This realizes the paper's §8 observation that the transfer
// mechanisms are independent of the analytics engine: "one could use the
// mechanisms in this paper to integrate Vertica with Spark instead of
// Distributed R". Numeric columns (in frame order, or the named subset) map
// to float64 row vectors.
func FromFrame(ctx *Context, frame *darray.DFrame, cols []string) (*RDD, error) {
	schema := frame.Schema()
	if schema == nil {
		return nil, fmt.Errorf("spark: frame has no data")
	}
	if cols == nil {
		for _, c := range schema {
			cols = append(cols, c.Name)
		}
	}
	for _, name := range cols {
		i := schema.ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("spark: frame has no column %q", name)
		}
		if t := schema[i].Type; t != colstore.TypeFloat64 && t != colstore.TypeInt64 {
			return nil, fmt.Errorf("spark: column %q is %v, need numeric", name, t)
		}
	}
	r := &RDD{ctx: ctx, nparts: frame.NPartitions()}
	r.compute = func(part int) ([][]float64, error) {
		b, err := frame.Part(part)
		if err != nil {
			return nil, err
		}
		p, err := b.Project(cols)
		if err != nil {
			return nil, err
		}
		rows := make([][]float64, p.Len())
		for i := range rows {
			row := make([]float64, len(cols))
			for j, col := range p.Cols {
				switch col.Type {
				case colstore.TypeFloat64:
					row[j] = col.Floats[i]
				case colstore.TypeInt64:
					row[j] = float64(col.Ints[i])
				}
			}
			rows[i] = row
		}
		return rows, nil
	}
	return r, nil
}
