// Package spark is the in-memory-cluster-computing comparator of §7.3.2: a
// miniature RDD engine that loads text data from the HDFS substitute, caches
// deserialized partitions in executor memory, and runs aggregate jobs with
// the costs Spark actually pays relative to Distributed R — per-task launch
// work and gob-serialized broadcast of closure state (Distributed R shares
// memory with its workers, so it skips both). Its K-means is the same
// algorithm as internal/algos' (the paper stresses the comparison is
// apples-to-apples).
package spark

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"verticadr/internal/hdfs"
	"verticadr/internal/linalg"
)

// Context is a Spark application context bound to an HDFS instance.
type Context struct {
	fs        *hdfs.FS
	executors int // concurrent tasks
}

// NewContext creates a context with the given executor parallelism.
func NewContext(fs *hdfs.FS, executors int) (*Context, error) {
	if executors <= 0 {
		return nil, fmt.Errorf("spark: need at least one executor")
	}
	return &Context{fs: fs, executors: executors}, nil
}

// RDD is a resilient distributed dataset of float64 rows, partitioned by
// HDFS block. Compute is lazy; Cache materializes partitions in memory.
type RDD struct {
	ctx      *Context
	nparts   int
	compute  func(part int) ([][]float64, error)
	mu       sync.Mutex
	cache    [][][]float64
	doCache  bool
	LocalHit int // blocks served by a local replica during load
}

// TextFile reads a CSV file of float rows from HDFS into an RDD with one
// partition per block. Tasks are scheduled on the block's first replica
// node (data-local scheduling), and parsing happens per task — the real
// deserialization cost of reading text off HDFS.
func (c *Context) TextFile(name string) (*RDD, error) {
	blocks, err := c.fs.Blocks(name)
	if err != nil {
		return nil, err
	}
	r := &RDD{ctx: c, nparts: len(blocks)}
	r.compute = func(part int) ([][]float64, error) {
		node := blocks[part].Replicas[0]
		data, local, err := c.fs.ReadBlock(name, part, node)
		if err != nil {
			return nil, err
		}
		if local {
			r.mu.Lock()
			r.LocalHit++
			r.mu.Unlock()
		}
		return parseCSV(data)
	}
	return r, nil
}

func parseCSV(data []byte) ([][]float64, error) {
	var rows [][]float64
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("spark: bad float %q: %w", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Parallelize distributes in-memory rows into nparts partitions.
func (c *Context) Parallelize(rows [][]float64, nparts int) (*RDD, error) {
	if nparts <= 0 {
		return nil, fmt.Errorf("spark: need at least one partition")
	}
	r := &RDD{ctx: c, nparts: nparts}
	r.compute = func(part int) ([][]float64, error) {
		lo := part * len(rows) / nparts
		hi := (part + 1) * len(rows) / nparts
		return rows[lo:hi], nil
	}
	return r, nil
}

// NumPartitions returns the partition count.
func (r *RDD) NumPartitions() int { return r.nparts }

// Cache marks the RDD for in-memory materialization on first computation.
func (r *RDD) Cache() *RDD {
	r.doCache = true
	return r
}

func (r *RDD) part(i int) ([][]float64, error) {
	if r.doCache {
		r.mu.Lock()
		if r.cache == nil {
			r.cache = make([][][]float64, r.nparts)
		}
		if r.cache[i] != nil {
			p := r.cache[i]
			r.mu.Unlock()
			return p, nil
		}
		r.mu.Unlock()
	}
	p, err := r.compute(i)
	if err != nil {
		return nil, err
	}
	if r.doCache {
		r.mu.Lock()
		r.cache[i] = p
		r.mu.Unlock()
	}
	return p, nil
}

// Map returns a new RDD applying fn per row (narrow dependency).
func (r *RDD) Map(fn func([]float64) []float64) *RDD {
	out := &RDD{ctx: r.ctx, nparts: r.nparts}
	out.compute = func(part int) ([][]float64, error) {
		rows, err := r.part(part)
		if err != nil {
			return nil, err
		}
		mapped := make([][]float64, len(rows))
		for i, row := range rows {
			mapped[i] = fn(row)
		}
		return mapped, nil
	}
	return out
}

// Count triggers computation and returns the total row count.
func (r *RDD) Count() (int, error) {
	total := 0
	var mu sync.Mutex
	err := r.foreachPartition(func(_ int, rows [][]float64) error {
		mu.Lock()
		total += len(rows)
		mu.Unlock()
		return nil
	})
	return total, err
}

// Collect triggers computation and gathers all rows to the driver.
func (r *RDD) Collect() ([][]float64, error) {
	parts := make([][][]float64, r.nparts)
	err := r.foreachPartition(func(i int, rows [][]float64) error {
		parts[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out [][]float64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// foreachPartition runs fn over partitions with bounded executor
// parallelism — one task per partition, the Spark task model.
func (r *RDD) foreachPartition(fn func(part int, rows [][]float64) error) error {
	sem := make(chan struct{}, r.ctx.executors)
	errs := make([]error, r.nparts)
	var wg sync.WaitGroup
	for i := 0; i < r.nparts; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows, err := r.part(i)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(i, rows)
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// KmeansModel is an MLlib-style clustering result.
type KmeansModel struct {
	Centers    [][]float64
	Iterations int
	Objective  float64
}

// broadcast gob-encodes a value once and decodes it per task, modelling
// Spark's closure/broadcast serialization (Distributed R's workers share
// the master's memory image and skip this).
type broadcast struct{ data []byte }

func newBroadcast(v any) (*broadcast, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return &broadcast{data: buf.Bytes()}, nil
}

func (b *broadcast) value(out any) error {
	return gob.NewDecoder(bytes.NewReader(b.data)).Decode(out)
}

// Kmeans runs Lloyd's iterations over the RDD: identical math to the
// Distributed R implementation, plus the Spark-side overheads (per-task
// broadcast deserialization).
func Kmeans(r *RDD, k, maxIter int, seed int64) (*KmeansModel, error) {
	rows, err := r.Count()
	if err != nil {
		return nil, err
	}
	if k <= 0 || rows < k {
		return nil, fmt.Errorf("spark: kmeans needs 1 <= K <= rows")
	}
	// Initialize with K rows sampled deterministically from the seed,
	// spread across partitions so seeds cover the data (MLlib uses random
	// or k-means|| init; a seeded spread sample keeps runs reproducible).
	rng := rand.New(rand.NewSource(seed))
	var centers [][]float64
	for attempts := 0; len(centers) < k && attempts < 50*k; attempts++ {
		p, err := r.part((len(centers) + attempts) % r.nparts)
		if err != nil {
			return nil, err
		}
		if len(p) == 0 {
			continue
		}
		row := p[rng.Intn(len(p))]
		dup := false
		for _, c := range centers {
			if linalg.SqDist(c, row) == 0 {
				dup = true
				break
			}
		}
		if dup && attempts < 40*k {
			continue
		}
		c := make([]float64, len(row))
		copy(c, row)
		centers = append(centers, c)
	}
	if len(centers) < k {
		return nil, fmt.Errorf("spark: could not seed %d distinct centers", k)
	}
	d := len(centers[0])
	model := &KmeansModel{}
	for iter := 0; iter < maxIter; iter++ {
		bc, err := newBroadcast(centers)
		if err != nil {
			return nil, err
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, d)
		}
		var obj float64
		var mu sync.Mutex
		err = r.foreachPartition(func(_ int, rows [][]float64) error {
			var local [][]float64
			if err := bc.value(&local); err != nil {
				return err
			}
			ls := make([][]float64, k)
			lc := make([]int, k)
			for i := range ls {
				ls[i] = make([]float64, d)
			}
			var lobj float64
			for _, row := range rows {
				best, bestD := 0, math.Inf(1)
				for ci, c := range local {
					if dd := linalg.SqDist(row, c); dd < bestD {
						best, bestD = ci, dd
					}
				}
				lc[best]++
				lobj += bestD
				for j, v := range row {
					ls[best][j] += v
				}
			}
			mu.Lock()
			defer mu.Unlock()
			obj += lobj
			for ci := range sums {
				counts[ci] += lc[ci]
				for j := range sums[ci] {
					sums[ci][j] += ls[ci][j]
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var moved float64
		for ci := range centers {
			nc := make([]float64, d)
			if counts[ci] == 0 {
				copy(nc, centers[ci])
			} else {
				for j := range nc {
					nc[j] = sums[ci][j] / float64(counts[ci])
				}
			}
			moved += linalg.SqDist(nc, centers[ci])
			centers[ci] = nc
		}
		model.Iterations = iter + 1
		model.Objective = obj
		if math.Sqrt(moved) < 1e-4 {
			break
		}
	}
	model.Centers = centers
	return model, nil
}

// WriteCSV materializes float rows as CSV text into HDFS (the dataset prep
// step for the Spark comparisons).
func WriteCSV(fs *hdfs.FS, name string, rows [][]float64) error {
	var sb strings.Builder
	for _, row := range rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return fs.WriteFile(name, []byte(sb.String()))
}
