package spark

import (
	"math"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/workload"
)

func TestFromFrame(t *testing.T) {
	c, err := dr.Start(dr.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	frame, _ := darray.NewFrame(c, 3)
	schema := colstore.Schema{
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "n", Type: colstore.TypeInt64},
		{Name: "s", Type: colstore.TypeString},
	}
	total := 0
	for p := 0; p < 3; p++ {
		b := colstore.NewBatch(schema)
		for i := 0; i <= p; i++ { // uneven partitions: 1, 2, 3 rows
			_ = b.AppendRow(float64(p)+0.5, int64(i), "z")
			total++
		}
		if err := frame.Fill(p, b); err != nil {
			t.Fatal(err)
		}
	}
	fs := newFS(t, 2, 1024)
	ctx, _ := NewContext(fs, 2)
	rdd, err := FromFrame(ctx, frame, []string{"x", "n"})
	if err != nil {
		t.Fatal(err)
	}
	if rdd.NumPartitions() != 3 {
		t.Fatalf("parts = %d", rdd.NumPartitions())
	}
	rows, err := rdd.Collect()
	if err != nil || len(rows) != total {
		t.Fatalf("collect: %d rows, %v", len(rows), err)
	}
	if rows[0][0] != 0.5 || rows[len(rows)-1][0] != 2.5 {
		t.Fatalf("rows = %v", rows)
	}
	// String column selection is rejected.
	if _, err := FromFrame(ctx, frame, []string{"s"}); err == nil {
		t.Fatal("string column should fail")
	}
	if _, err := FromFrame(ctx, frame, []string{"zz"}); err == nil {
		t.Fatal("missing column should fail")
	}
	empty, _ := darray.NewFrame(c, 1)
	if _, err := FromFrame(ctx, empty, nil); err == nil {
		t.Fatal("empty frame should fail")
	}
}

func TestVerticaToSparkKmeans(t *testing.T) {
	// The §8 extension end to end: frame → RDD → MLlib-style K-means.
	c, err := dr.Start(dr.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := workload.GenKmeans(21, 400, 3, 2, 0.1)
	schema := colstore.Schema{
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
		{Name: "c", Type: colstore.TypeFloat64},
	}
	frame, _ := darray.NewFrame(c, 4)
	for p := 0; p < 4; p++ {
		b := colstore.NewBatch(schema)
		for i := p * 100; i < (p+1)*100; i++ {
			_ = b.AppendRow(data.Points[i][0], data.Points[i][1], data.Points[i][2])
		}
		_ = frame.Fill(p, b)
	}
	fs := newFS(t, 2, 1024)
	ctx, _ := NewContext(fs, 4)
	rdd, err := FromFrame(ctx, frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Kmeans(rdd.Cache(), 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range data.Centers {
		best := math.Inf(1)
		for _, fc := range model.Centers {
			var d float64
			for j := range pc {
				d += (pc[j] - fc[j]) * (pc[j] - fc[j])
			}
			if d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 1 {
			t.Fatalf("center missed by %v", math.Sqrt(best))
		}
	}
}
