package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if p.cur().Kind != TokEOF {
		return nil, p.errf("trailing input starting at %q", p.cur().Text)
	}
	if sel, ok := stmt.(*Select); ok {
		sel.NumParams = p.params
	} else if p.params > 0 {
		return nil, fmt.Errorf("sqlparse: ? placeholders are only supported in SELECT")
	}
	return stmt, nil
}

type parser struct {
	toks   []Token
	pos    int
	params int // `?` placeholders seen so far, in textual order
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// accept consumes the token if it matches; reports whether it did.
func (p *parser) accept(kind TokKind, text string) bool {
	t := p.cur()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a token or fails.
func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errf("expected %s, found %q", want, t.Text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword, found %q", t.Text)
	}
	switch t.Text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		return p.parseExplain()
	case "PROFILE":
		p.next()
		if p.cur().Kind != TokKeyword || p.cur().Text != "SELECT" {
			return nil, p.errf("PROFILE must be followed by SELECT, found %q", p.cur().Text)
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.(*Select).Profile = true
		return sel, nil
	default:
		return nil, p.errf("unsupported statement %q", t.Text)
	}
}

func (p *parser) parseIdent() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

// parseExplain parses EXPLAIN [(FORMAT JSON)] SELECT ... . JSON is matched
// case-insensitively as a plain identifier (it is not a reserved word).
func (p *parser) parseExplain() (Statement, error) {
	p.next() // EXPLAIN
	ex := &Explain{}
	if p.accept(TokSymbol, "(") {
		if _, err := p.expect(TokKeyword, "FORMAT"); err != nil {
			return nil, err
		}
		t := p.cur()
		if t.Kind != TokIdent || !strings.EqualFold(t.Text, "JSON") {
			return nil, p.errf("expected JSON after FORMAT, found %q", t.Text)
		}
		p.pos++
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ex.FormatJSON = true
	}
	if p.cur().Kind != TokKeyword || p.cur().Text != "SELECT" {
		return nil, p.errf("EXPLAIN must be followed by SELECT, found %q", p.cur().Text)
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	ex.Stmt = stmt.(*Select)
	return ex, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if p.accept(TokKeyword, "INDEX") {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Column: col}, nil
	}
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColDef
	for {
		cn, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		tt := p.cur()
		if tt.Kind != TokIdent && tt.Kind != TokKeyword {
			return nil, p.errf("expected type for column %q, found %q", cn, tt.Text)
		}
		p.pos++
		cols = append(cols, ColDef{Name: cn, Type: strings.ToUpper(tt.Text)})
		if p.accept(TokSymbol, ",") {
			continue
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	ct := &CreateTable{Name: name, Cols: cols}
	if p.accept(TokKeyword, "SEGMENTED") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		if p.accept(TokKeyword, "HASH") {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			ct.Seg = &SegClause{Hash: true, Column: col}
		} else if p.accept(TokKeyword, "ROUND") {
			if _, err := p.expect(TokKeyword, "ROBIN"); err != nil {
				return nil, err
			}
			ct.Seg = &SegClause{}
		} else {
			return nil, p.errf("expected HASH or ROUND ROBIN after SEGMENTED BY")
		}
	}
	return ct, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if p.accept(TokKeyword, "INDEX") {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name}, nil
	}
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(TokSymbol, "(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if p.accept(TokSymbol, ",") {
				continue
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		sel.From = name
		if alias, ok := p.acceptAlias(); ok {
			sel.FromAlias = alias
		}
		for p.accept(TokKeyword, "JOIN") {
			jt, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			j := Join{Table: jt}
			if alias, ok := p.acceptAlias(); ok {
				j.Alias = alias
			}
			if _, err := p.expect(TokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
			sel.Joins = append(sel.Joins, j)
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// acceptAlias consumes an optional table alias: AS ident, or a bare ident
// (keywords such as JOIN / WHERE never alias, so the clause grammar stays
// unambiguous). AS with no identifier is left for the caller's next expect
// to report.
func (p *parser) acceptAlias() (string, bool) {
	if p.cur().Kind == TokKeyword && p.cur().Text == "AS" &&
		p.toks[p.pos+1].Kind == TokIdent {
		p.pos += 2
		return p.toks[p.pos-1].Text, true
	}
	if p.cur().Kind == TokIdent {
		return p.next().Text, true
	}
	return "", false
}

// parseColName parses a possibly-qualified column name for GROUP BY / ORDER
// BY, returning the dotted form ("t.c") for qualified references. A quoted
// identifier containing a dot denotes the same dotted name.
func (p *parser) parseColName() (string, error) {
	c, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	if p.accept(TokSymbol, ".") {
		c2, err := p.parseIdent()
		if err != nil {
			return "", err
		}
		return c + "." + c2, nil
	}
	return c, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// Expression grammar (loosest to tightest): OR, AND, NOT, comparison,
// additive, multiplicative, unary minus, primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept(TokSymbol, "+") {
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		} else if p.accept(TokSymbol, "-") {
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		} else {
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept(TokSymbol, "*") {
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		} else if p.accept(TokSymbol, "/") {
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "/", L: l, R: r}
		} else {
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		if !strings.ContainsAny(t.Text, ".eE") {
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return &NumberLit{IsInt: true, Int: n}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &NumberLit{Float: f}, nil
	case t.Kind == TokString:
		p.pos++
		return &StringLit{Val: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.pos++
		return &BoolLit{Val: true}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.pos++
		return &BoolLit{Val: false}, nil
	case t.Kind == TokSymbol && t.Text == "?":
		p.pos++
		ph := &Placeholder{Idx: p.params}
		p.params++
		return ph, nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.cur().Kind == TokSymbol && p.cur().Text == "(" {
			return p.parseFuncCall(t.Text)
		}
		if p.cur().Kind == TokSymbol && p.cur().Text == "." {
			p.pos++
			name, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.Text, Name: name}, nil
		}
		return &ColRef{Name: t.Text}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // (
	fc := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept(TokSymbol, "*") {
		fc.Star = true
	} else if !(p.cur().Kind == TokSymbol && p.cur().Text == ")") &&
		!(p.cur().Kind == TokKeyword && p.cur().Text == "USING") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "USING") {
		if _, err := p.expect(TokKeyword, "PARAMETERS"); err != nil {
			return nil, err
		}
		fc.Params = map[string]Expr{}
		for {
			k, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "="); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Params[strings.ToLower(k)] = v
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "OVER") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		ov := &Over{}
		if p.accept(TokKeyword, "PARTITION") {
			if p.accept(TokKeyword, "BEST") {
				ov.PartitionBest = true
			} else if p.accept(TokKeyword, "BY") {
				for {
					c, err := p.parseIdent()
					if err != nil {
						return nil, err
					}
					ov.PartitionBy = append(ov.PartitionBy, c)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
			} else {
				return nil, p.errf("expected BEST or BY after PARTITION")
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		fc.Over = ov
	}
	return fc, nil
}
