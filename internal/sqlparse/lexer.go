// Package sqlparse implements the SQL front end of the Vertica substitute: a
// hand-written lexer and recursive-descent parser for the dialect subset the
// paper's workflows need — DDL, INSERT, and SELECT with WHERE/GROUP BY/ORDER
// BY/LIMIT plus analytic UDTF invocations of the form
//
//	SELECT glmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t
//
// exactly as in Figure 3 (line 10) and Figure 4 of the paper.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true, "INTO": true,
	"VALUES": true, "SEGMENTED": true, "HASH": true, "ROUND": true,
	"ROBIN": true, "USING": true, "PARAMETERS": true, "OVER": true,
	"PARTITION": true, "BEST": true, "NULL": true, "DISTINCT": true,
	"PROFILE": true, "JOIN": true, "ON": true, "INDEX": true,
	"EXPLAIN": true, "FORMAT": true,
}

var symbols = []string{"<=", ">=", "<>", "!=", "(", ")", ",", ";", "*", "+", "-", "/", "=", "<", ">", ".", "?"}

// Lex tokenizes the input, returning a token stream ending in TokEOF.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'': // string literal with '' escape
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqlparse: unterminated string at %d", i+1)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: i + 1})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := input[j]
				if d >= '0' && d <= '9' {
					j++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
				} else if (d == 'e' || d == 'E') && !seenExp && j+1 < n {
					nx := input[j+1]
					if nx >= '0' && nx <= '9' || nx == '+' || nx == '-' {
						seenExp = true
						j += 2
					} else {
						break
					}
				} else {
					break
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[i:j], Pos: i + 1})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: i + 1})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: i + 1})
			}
			i = j
		case c == '"': // quoted identifier
			j := i + 1
			for j < n && input[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated quoted identifier at %d", i+1)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[i+1 : j], Pos: i + 1})
			i = j + 1
		default:
			matched := false
			for _, s := range symbols {
				if strings.HasPrefix(input[i:], s) {
					toks = append(toks, Token{Kind: TokSymbol, Text: s, Pos: i + 1})
					i += len(s)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i+1)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n + 1})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
