package sqlparse

import (
	"fmt"
	"sort"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// ColDef is one column in a CREATE TABLE.
type ColDef struct {
	Name string
	Type string // raw SQL type name, resolved by the executor
}

// SegClause is the optional SEGMENTED BY clause.
type SegClause struct {
	Hash   bool   // true: HASH(Column); false: ROUND ROBIN
	Column string // set when Hash
}

// CreateTable is CREATE TABLE name (cols...) [SEGMENTED BY ...].
type CreateTable struct {
	Name string
	Cols []ColDef
	Seg  *SegClause
}

func (*CreateTable) stmtNode() {}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*DropTable) stmtNode() {}

// CreateIndex is CREATE INDEX name ON table (column): a secondary B-tree
// index over one column of one table.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndex) stmtNode() {}

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

func (*DropIndex) stmtNode() {}

// Explain is EXPLAIN [(FORMAT JSON)] SELECT ...: the executor plans (and
// runs) the inner statement and returns the physical plan — one row per
// rendered line in text mode, a single JSON document in JSON mode — instead
// of the query's rows.
type Explain struct {
	FormatJSON bool
	Stmt       *Select
}

func (*Explain) stmtNode() {}

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // nil means table order
	Rows    [][]Expr
}

func (*Insert) stmtNode() {}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectItem is one projection: either * or an expression with optional alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// Join is one JOIN clause: an inner equi-join against another table.
type Join struct {
	Table string
	Alias string // "" when the table name itself qualifies columns
	On    Expr
}

// Select is a SELECT statement over at most one base table plus any number
// of inner joins.
type Select struct {
	Items     []SelectItem
	From      string // empty for table-less SELECT (e.g. SELECT 1+1)
	FromAlias string // optional alias for the base table
	Joins     []Join
	Where     Expr
	GroupBy   []string
	OrderBy   []OrderItem
	Limit     int // -1 when absent
	// Profile marks a PROFILE SELECT ...: the executor collects per-operator
	// row counts and timings and attaches them to the result.
	Profile bool
	// NumParams is the number of `?` placeholders the statement contains, in
	// textual order. Zero for ordinary statements; BindSelect requires
	// exactly this many arguments.
	NumParams int
}

func (*Select) stmtNode() {}

// Expr is any expression node.
type Expr interface {
	exprNode()
	String() string
}

// quoteIdent renders an identifier so the lexer reads back exactly the same
// name: plain ASCII identifiers (letter/underscore start, letter/digit/_/$
// rest) that don't collide with a keyword pass through bare; anything else —
// including non-ASCII names, which the byte-oriented lexer cannot re-lex
// bare — is double-quoted. Names containing '"' cannot be represented (the
// lexer has no escape inside quoted identifiers) and only arise from
// hand-built ASTs.
func quoteIdent(name string) string {
	plain := name != ""
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		digit := c >= '0' && c <= '9'
		if i == 0 && !alpha || i > 0 && !(alpha || digit || c == '$') {
			plain = false
			break
		}
	}
	if plain && keywords[strings.ToUpper(name)] {
		plain = false
	}
	if plain {
		return name
	}
	return `"` + name + `"`
}

// ColRef references a column by name, optionally qualified by a table name
// or alias (Table is "" when unqualified).
type ColRef struct {
	Table string
	Name  string
}

func (*ColRef) exprNode() {}

// String returns the (possibly qualified) column name, quoted when necessary.
func (c *ColRef) String() string {
	if c.Table != "" {
		return quoteIdent(c.Table) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

// NumberLit is a numeric literal; IsInt distinguishes INTEGER from FLOAT.
type NumberLit struct {
	IsInt bool
	Int   int64
	Float float64
}

func (*NumberLit) exprNode() {}

// String formats the literal.
func (n *NumberLit) String() string {
	if n.IsInt {
		return fmt.Sprintf("%d", n.Int)
	}
	return fmt.Sprintf("%g", n.Float)
}

// StringLit is a string literal.
type StringLit struct{ Val string }

func (*StringLit) exprNode() {}

// String formats the literal with SQL quoting.
func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Val, "'", "''") + "'" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

func (*BoolLit) exprNode() {}

// String formats the literal.
func (b *BoolLit) String() string {
	if b.Val {
		return "TRUE"
	}
	return "FALSE"
}

// Placeholder is a `?` parameter marker in a prepared statement. Idx is the
// 0-based ordinal position among the statement's placeholders; BindSelect
// substitutes the Idx-th argument for it at execution time. A Select still
// containing placeholders cannot be executed — the evaluator rejects them.
type Placeholder struct{ Idx int }

func (*Placeholder) exprNode() {}

// String renders the marker. All placeholders render identically, which is
// what makes a statement's canonical String() a position-independent plan
// cache key.
func (*Placeholder) String() string { return "?" }

// Binary is a binary operation; Op is one of + - * / = <> < <= > >= AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) exprNode() {}

// String parenthesizes fully.
func (b *Binary) String() string { return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")" }

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*Unary) exprNode() {}

// String parenthesizes.
func (u *Unary) String() string { return "(" + u.Op + " " + u.X.String() + ")" }

// Over is the OVER clause on an analytic / transform function call.
type Over struct {
	PartitionBest bool
	PartitionBy   []string
}

// FuncCall is a function invocation: aggregate (SUM, COUNT...), scalar, or a
// UDTF when Over is present. Params carries the Vertica-style
// USING PARAMETERS key-value list.
type FuncCall struct {
	Name   string // upper-cased
	Star   bool   // COUNT(*)
	Args   []Expr
	Params map[string]Expr // USING PARAMETERS
	Over   *Over
}

func (*FuncCall) exprNode() {}

// String formats the call so it re-parses to the same statement: parameters
// render as the full USING PARAMETERS list in sorted key order.
func (f *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(quoteIdent(f.Name))
	sb.WriteByte('(')
	if f.Star {
		sb.WriteByte('*')
	}
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	if len(f.Params) > 0 {
		if f.Star || len(f.Args) > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString("USING PARAMETERS ")
		keys := make([]string, 0, len(f.Params))
		for k := range f.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(k))
			sb.WriteByte('=')
			sb.WriteString(f.Params[k].String())
		}
	}
	sb.WriteByte(')')
	if f.Over != nil {
		if f.Over.PartitionBest {
			sb.WriteString(" OVER (PARTITION BEST)")
		} else if len(f.Over.PartitionBy) > 0 {
			cols := make([]string, len(f.Over.PartitionBy))
			for i, c := range f.Over.PartitionBy {
				cols[i] = quoteIdent(c)
			}
			sb.WriteString(" OVER (PARTITION BY " + strings.Join(cols, ", ") + ")")
		} else {
			sb.WriteString(" OVER ()")
		}
	}
	return sb.String()
}

// String renders the statement as SQL that parses back to an equivalent
// Select: expressions are fully parenthesized, aliases always use AS, and
// identifiers are quoted when they would otherwise lex as keywords or fail to
// lex at all. Parse(sel.String()) succeeds for any parsed sel, and the
// rendering is a fixpoint: Parse(s).String() == s for s = sel.String().
func (sel *Select) String() string {
	var sb strings.Builder
	if sel.Profile {
		sb.WriteString("PROFILE ")
	}
	sb.WriteString("SELECT ")
	for i, item := range sel.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if item.Star {
			sb.WriteByte('*')
			continue
		}
		sb.WriteString(item.Expr.String())
		if item.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(item.Alias))
		}
	}
	if sel.From != "" {
		sb.WriteString(" FROM ")
		sb.WriteString(quoteIdent(sel.From))
		if sel.FromAlias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(sel.FromAlias))
		}
		for _, j := range sel.Joins {
			sb.WriteString(" JOIN ")
			sb.WriteString(quoteIdent(j.Table))
			if j.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(quoteIdent(j.Alias))
			}
			sb.WriteString(" ON ")
			sb.WriteString(j.On.String())
		}
	}
	if sel.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(sel.Where.String())
	}
	if len(sel.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range sel.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(g))
		}
	}
	if len(sel.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range sel.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(o.Col))
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", sel.Limit)
	}
	return sb.String()
}
