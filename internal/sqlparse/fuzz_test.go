package sqlparse

import (
	"testing"
)

// TestSelectStringRoundTrip pins the renderer on representative statements:
// every String() output must re-parse, and re-rendering must be a fixpoint.
func TestSelectStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT 1",
		"SELECT *, a FROM t",
		"SELECT a, b + 2 AS c FROM t WHERE x < 3 AND NOT (y = 'z''q') ORDER BY c DESC, a LIMIT 7",
		"SELECT COUNT(*), SUM(a) FROM t GROUP BY g, h",
		"PROFILE SELECT a c0 FROM t ORDER BY c0",
		"SELECT AVG(a / 2) FROM t WHERE flag OR s <> 'x' GROUP BY a",
		`SELECT "select" FROM "group" WHERE "from" = 1`,
		"SELECT glmPredict(a, b USING PARAMETERS model='m', beta=2) OVER (PARTITION BEST) FROM t",
		"SELECT f() OVER (), g(x) OVER (PARTITION BY a, b) FROM t",
		"SELECT -a + 1.5e3 FROM t WHERE NOT NOT flag",
		"SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a > 1",
		"SELECT x.a FROM t AS x JOIN t AS y ON x.id = y.id GROUP BY \"x.a\" ORDER BY \"x.a\" DESC",
		"SELECT a FROM t JOIN u ON t.k = u.k JOIN v ON u.k2 = v.k2",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		sel, ok := stmt.(*Select)
		if !ok {
			t.Fatalf("%q did not parse to a Select", q)
		}
		r1 := sel.String()
		stmt2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse of %q (rendered from %q): %v", r1, q, err)
		}
		r2 := stmt2.(*Select).String()
		if r2 != r1 {
			t.Fatalf("render not a fixpoint:\n  first:  %q\n  second: %q", r1, r2)
		}
	}
}

// FuzzParseSelect feeds arbitrary input to the parser. The parser must never
// panic; when it accepts the input as a SELECT, the rendered SQL must
// re-parse and re-render to the identical string (round-trip fixpoint).
func FuzzParseSelect(f *testing.F) {
	f.Add("SELECT 1")
	f.Add("SELECT a, b*2 AS d FROM t WHERE x < 3 OR y = 'z' GROUP BY a ORDER BY d DESC LIMIT 10")
	f.Add("PROFILE SELECT COUNT(*) FROM t")
	f.Add("SELECT fn(a USING PARAMETERS k='v') OVER (PARTITION BEST) FROM t")
	f.Add(`SELECT "wei rd", - - 1e-4 FROM "from"`)
	f.Add("SELECT * FROM t;")
	f.Add("SELECT t.a FROM t JOIN u ON t.id = u.id")
	f.Add("SELECT a FROM t AS x JOIN t y ON x.id = y.id GROUP BY x.a")
	f.Add("EXPLAIN (FORMAT JSON) SELECT a FROM t WHERE a = 1")
	f.Add("CREATE INDEX i ON t (a)")
	f.Add("DROP INDEX i")
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		sel, ok := stmt.(*Select)
		if !ok {
			return
		}
		r1 := sel.String()
		stmt2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendered SQL failed to parse: %q (from input %q): %v", r1, input, err)
		}
		sel2, ok := stmt2.(*Select)
		if !ok {
			t.Fatalf("rendered SQL parsed to non-SELECT: %q", r1)
		}
		if r2 := sel2.String(); r2 != r1 {
			t.Fatalf("render not a fixpoint:\n input:  %q\n first:  %q\n second: %q", input, r1, r2)
		}
	})
}
