package sqlparse

import (
	"strings"
	"testing"
)

func mustSelect(t *testing.T, sql string) *Select {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt.(*Select)
}

func TestPlaceholderParseAndCount(t *testing.T) {
	sel := mustSelect(t, `SELECT a, ? AS p FROM t WHERE a > ? AND b = ? LIMIT 3`)
	if sel.NumParams != 3 {
		t.Fatalf("NumParams = %d, want 3", sel.NumParams)
	}
	// Canonical rendering keeps the markers, and re-parsing is a fixpoint.
	s := sel.String()
	if !strings.Contains(s, "?") {
		t.Fatalf("String() lost placeholders: %s", s)
	}
	again := mustSelect(t, s)
	if again.String() != s {
		t.Fatalf("fixpoint broken:\n  %s\n  %s", s, again.String())
	}
	if again.NumParams != 3 {
		t.Fatalf("reparsed NumParams = %d", again.NumParams)
	}
}

func TestPlaceholderOnlyInSelect(t *testing.T) {
	if _, err := Parse(`INSERT INTO t VALUES (?)`); err == nil {
		t.Fatal("placeholder in INSERT should be rejected")
	}
}

func TestBindSelect(t *testing.T) {
	sel := mustSelect(t, `SELECT a + ? FROM t WHERE s = ? AND ok = ? ORDER BY a LIMIT 5`)
	bound, err := BindSelect(sel, []any{1.5, "x''y", true})
	if err != nil {
		t.Fatal(err)
	}
	if bound.NumParams != 0 {
		t.Fatalf("bound statement still reports %d params", bound.NumParams)
	}
	got := bound.String()
	want := `SELECT (a + 1.5) FROM t WHERE ((s = 'x''''y') AND (ok = TRUE)) ORDER BY a LIMIT 5`
	if got != want {
		t.Fatalf("bound render:\n  got  %s\n  want %s", got, want)
	}
	// Template unchanged: binding again with other args yields other SQL.
	b2, err := BindSelect(sel, []any{int64(2), "z", false})
	if err != nil {
		t.Fatal(err)
	}
	if b2.String() == got {
		t.Fatal("second bind produced identical SQL; template was mutated")
	}
	if !strings.Contains(sel.String(), "?") {
		t.Fatal("template lost its placeholders after binding")
	}
}

func TestBindSelectErrors(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t WHERE a = ?`)
	if _, err := BindSelect(sel, nil); err == nil {
		t.Fatal("arity mismatch not detected")
	}
	if _, err := BindSelect(sel, []any{[]byte("no")}); err == nil {
		t.Fatal("unsupported type not detected")
	}
	if _, err := BindSelect(sel, []any{1, 2}); err == nil {
		t.Fatal("too many args not detected")
	}
}

func TestBindSelectParamsInUDTFCall(t *testing.T) {
	sel := mustSelect(t, `SELECT GlmPredict(a, b USING PARAMETERS model=?) OVER (PARTITION BEST) FROM t`)
	if sel.NumParams != 1 {
		t.Fatalf("NumParams = %d", sel.NumParams)
	}
	bound, err := BindSelect(sel, []any{"m1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bound.String(), "model='m1'") {
		t.Fatalf("parameter not bound: %s", bound.String())
	}
}
