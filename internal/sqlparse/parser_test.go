package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t WHERE x >= 1.5e3 -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	if texts[0] != "SELECT" || kinds[0] != TokKeyword {
		t.Fatalf("tok0 = %v %q", kinds[0], texts[0])
	}
	if texts[2] != "," || texts[3] != "it's" || kinds[3] != TokString {
		t.Fatalf("string literal: %q", texts[3])
	}
	if texts[8] != ">=" || texts[9] != "1.5e3" {
		t.Fatalf("got %v", texts)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Fatal("missing EOF")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Fatal("bad character should fail")
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Fatal("unterminated quoted ident should fail")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE mytable (id INTEGER, x FLOAT, name VARCHAR, ok BOOLEAN) SEGMENTED BY HASH(id)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("wrong type %T", stmt)
	}
	if ct.Name != "mytable" || len(ct.Cols) != 4 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Cols[1].Name != "x" || ct.Cols[1].Type != "FLOAT" {
		t.Fatalf("col = %+v", ct.Cols[1])
	}
	if ct.Seg == nil || !ct.Seg.Hash || ct.Seg.Column != "id" {
		t.Fatalf("seg = %+v", ct.Seg)
	}
}

func TestParseCreateTableRoundRobin(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (a INT) SEGMENTED BY ROUND ROBIN;`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if ct.Seg == nil || ct.Seg.Hash {
		t.Fatalf("seg = %+v", ct.Seg)
	}
}

func TestParseDropInsert(t *testing.T) {
	stmt, err := Parse(`DROP TABLE t`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTable).Name != "t" {
		t.Fatal("drop name")
	}
	stmt, err = Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	if ins.Rows[1][0].(*NumberLit).Int != 2 {
		t.Fatal("row value")
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt, err := Parse(`SELECT a, b + 1 AS c, count(*) FROM t WHERE a > 5 AND NOT b = 2 GROUP BY a ORDER BY a DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if len(sel.Items) != 3 || sel.From != "t" {
		t.Fatalf("sel = %+v", sel)
	}
	if sel.Items[1].Alias != "c" {
		t.Fatalf("alias = %q", sel.Items[1].Alias)
	}
	fc := sel.Items[2].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("count(*) = %+v", fc)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 10 {
		t.Fatalf("clauses = %+v", sel)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if !sel.Items[0].Star {
		t.Fatal("star")
	}
}

func TestParsePaperFigure3Query(t *testing.T) {
	// Line 10 of Figure 3 in the paper.
	q := `SELECT glmPredict(A, B USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable2`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	fc := sel.Items[0].Expr.(*FuncCall)
	if fc.Name != "GLMPREDICT" || len(fc.Args) != 2 {
		t.Fatalf("fc = %+v", fc)
	}
	if fc.Params["model"].(*StringLit).Val != "rModel" {
		t.Fatalf("params = %+v", fc.Params)
	}
	if fc.Over == nil || !fc.Over.PartitionBest {
		t.Fatalf("over = %+v", fc.Over)
	}
}

func TestParsePaperFigure4Query(t *testing.T) {
	// The ExportToDistributedR invocation of Figure 4 (simplified args).
	q := `SELECT ExportToDistributedR(a, b USING PARAMETERS hosts='h1:9090,h2:9090', psize=1000, policy='locality') OVER (PARTITION BEST) FROM mytable`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	fc := stmt.(*Select).Items[0].Expr.(*FuncCall)
	if fc.Name != "EXPORTTODISTRIBUTEDR" {
		t.Fatalf("name = %q", fc.Name)
	}
	if fc.Params["psize"].(*NumberLit).Int != 1000 {
		t.Fatalf("psize = %+v", fc.Params["psize"])
	}
}

func TestParseOverPartitionBy(t *testing.T) {
	stmt, err := Parse(`SELECT f(x) OVER (PARTITION BY a, b) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	fc := stmt.(*Select).Items[0].Expr.(*FuncCall)
	if fc.Over == nil || fc.Over.PartitionBest || len(fc.Over.PartitionBy) != 2 {
		t.Fatalf("over = %+v", fc.Over)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT 1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	e := stmt.(*Select).Items[0].Expr.(*Binary)
	if e.Op != "+" {
		t.Fatalf("top op %q", e.Op)
	}
	if e.R.(*Binary).Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
	stmt, _ = Parse(`SELECT a OR b AND c`)
	o := stmt.(*Select).Items[0].Expr.(*Binary)
	if o.Op != "OR" || o.R.(*Binary).Op != "AND" {
		t.Fatal("AND should bind tighter than OR")
	}
}

func TestParseUnary(t *testing.T) {
	stmt, err := Parse(`SELECT -x, NOT TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	items := stmt.(*Select).Items
	if items[0].Expr.(*Unary).Op != "-" {
		t.Fatal("unary minus")
	}
	if items[1].Expr.(*Unary).Op != "NOT" {
		t.Fatal("not")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"CREATE TABLE (a INT)",
		"CREATE TABLE t (a INT) SEGMENTED BY MAGIC",
		"INSERT INTO t VALUES 1, 2",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT f(x) OVER (PARTITION WORST) FROM t",
		"SELECT a FROM t extra garbage following the query (",
		"DROP t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("expected parse error for %q", q)
		}
	}
}

func TestParseNumberForms(t *testing.T) {
	stmt, err := Parse(`SELECT 42, 3.14, 1e3, 2.5E-2`)
	if err != nil {
		t.Fatal(err)
	}
	items := stmt.(*Select).Items
	if n := items[0].Expr.(*NumberLit); !n.IsInt || n.Int != 42 {
		t.Fatalf("int lit %+v", n)
	}
	if n := items[1].Expr.(*NumberLit); n.IsInt || n.Float != 3.14 {
		t.Fatalf("float lit %+v", n)
	}
	if n := items[2].Expr.(*NumberLit); n.Float != 1000 {
		t.Fatalf("exp lit %+v", n)
	}
	if n := items[3].Expr.(*NumberLit); n.Float != 0.025 {
		t.Fatalf("exp lit %+v", n)
	}
}

func TestExprString(t *testing.T) {
	stmt, err := Parse(`SELECT (a + 1) * 2 = b AND f(x USING PARAMETERS m='v') OVER (PARTITION BEST)`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*Select).Items[0].Expr.String()
	for _, want := range []string{"a", "+", "*", "=", "AND", "F(", "PARTITION BEST"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// Property: the lexer never panics and either errors or ends with EOF.
func TestQuickLexTotal(t *testing.T) {
	f := func(s string) bool {
		toks, err := Lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse is total (no panics) on arbitrary input.
func TestQuickParseTotal(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	stmt, err := Parse(`CREATE INDEX idx_a ON t (a)`)
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := stmt.(*CreateIndex)
	if !ok || ci.Name != "idx_a" || ci.Table != "t" || ci.Column != "a" {
		t.Fatalf("got %#v", stmt)
	}
	stmt, err = Parse(`DROP INDEX idx_a;`)
	if err != nil {
		t.Fatal(err)
	}
	if di, ok := stmt.(*DropIndex); !ok || di.Name != "idx_a" {
		t.Fatalf("got %#v", stmt)
	}
	for _, bad := range []string{
		"CREATE INDEX ON t (a)",
		"CREATE INDEX i t (a)",
		"CREATE INDEX i ON t a",
		"CREATE INDEX i ON t (a, b)",
		"DROP INDEX",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse(`EXPLAIN SELECT a FROM t WHERE a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*Explain)
	if !ok || ex.FormatJSON || ex.Stmt == nil || ex.Stmt.From != "t" {
		t.Fatalf("got %#v", stmt)
	}
	stmt, err = Parse(`EXPLAIN (FORMAT JSON) SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	ex = stmt.(*Explain)
	if !ex.FormatJSON {
		t.Fatal("FORMAT JSON not recognized")
	}
	if _, err := Parse(`EXPLAIN (FORMAT json) SELECT 1`); err != nil {
		t.Fatalf("json should match case-insensitively: %v", err)
	}
	for _, bad := range []string{
		"EXPLAIN DROP TABLE t",
		"EXPLAIN (FORMAT XML) SELECT 1",
		"EXPLAIN (JSON) SELECT 1",
		"EXPLAIN",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse(`SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if sel.From != "t" || len(sel.Joins) != 1 || sel.Joins[0].Table != "u" {
		t.Fatalf("sel = %+v", sel)
	}
	on := sel.Joins[0].On.(*Binary)
	if on.Op != "=" || on.L.(*ColRef).Table != "t" || on.R.(*ColRef).Name != "id" {
		t.Fatalf("on = %+v", on)
	}
	if c := sel.Items[1].Expr.(*ColRef); c.Table != "u" || c.Name != "b" {
		t.Fatalf("item = %+v", c)
	}

	stmt, err = Parse(`SELECT x.a FROM t AS x JOIN t y ON x.id = y.id GROUP BY x.a ORDER BY x.a DESC`)
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(*Select)
	if sel.FromAlias != "x" || sel.Joins[0].Alias != "y" {
		t.Fatalf("aliases = %q %q", sel.FromAlias, sel.Joins[0].Alias)
	}
	if sel.GroupBy[0] != "x.a" || sel.OrderBy[0].Col != "x.a" {
		t.Fatalf("dotted names: %v %v", sel.GroupBy, sel.OrderBy)
	}
	for _, bad := range []string{
		"SELECT a FROM t JOIN u",
		"SELECT a FROM t JOIN ON t.id = u.id",
		"SELECT a FROM t JOIN u ON",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestParseProfile(t *testing.T) {
	stmt, err := Parse(`PROFILE SELECT a FROM t WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*Select)
	if !ok || !sel.Profile {
		t.Fatalf("got %#v, want Select with Profile", stmt)
	}
	if sel.From != "t" || sel.Where == nil {
		t.Fatalf("PROFILE changed the parsed SELECT: %#v", sel)
	}
	if s, err := Parse(`SELECT a FROM t`); err != nil || s.(*Select).Profile {
		t.Fatalf("plain SELECT must not be profiled (err=%v)", err)
	}
	if _, err := Parse(`PROFILE CREATE TABLE t (a FLOAT)`); err == nil {
		t.Fatal("PROFILE over non-SELECT must fail")
	}
}
