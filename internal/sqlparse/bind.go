package sqlparse

import "fmt"

// BindSelect returns a deep copy of sel with every `?` placeholder replaced
// by the corresponding argument, converted to a literal node. The template is
// never mutated, so one cached parse can serve any number of concurrent
// executions. len(args) must equal sel.NumParams.
//
// Supported argument types mirror the literal grammar: integers (int,
// int64), float64, string and bool.
func BindSelect(sel *Select, args []any) (*Select, error) {
	if len(args) != sel.NumParams {
		return nil, fmt.Errorf("sqlparse: statement has %d placeholders, got %d arguments", sel.NumParams, len(args))
	}
	lits := make([]Expr, len(args))
	for i, a := range args {
		l, err := literalFor(a)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: argument %d: %w", i, err)
		}
		lits[i] = l
	}
	out := &Select{
		From:      sel.From,
		FromAlias: sel.FromAlias,
		Limit:     sel.Limit,
		Profile:   sel.Profile,
		NumParams: 0, // fully bound
	}
	if len(sel.Joins) > 0 {
		out.Joins = make([]Join, len(sel.Joins))
		for i, j := range sel.Joins {
			out.Joins[i] = Join{Table: j.Table, Alias: j.Alias}
			if j.On != nil {
				out.Joins[i].On = bindExpr(j.On, lits)
			}
		}
	}
	out.Items = make([]SelectItem, len(sel.Items))
	for i, it := range sel.Items {
		out.Items[i] = SelectItem{Star: it.Star, Alias: it.Alias}
		if it.Expr != nil {
			out.Items[i].Expr = bindExpr(it.Expr, lits)
		}
	}
	if sel.Where != nil {
		out.Where = bindExpr(sel.Where, lits)
	}
	out.GroupBy = append([]string(nil), sel.GroupBy...)
	out.OrderBy = append([]OrderItem(nil), sel.OrderBy...)
	return out, nil
}

func literalFor(a any) (Expr, error) {
	switch v := a.(type) {
	case nil:
		return nil, fmt.Errorf("nil argument")
	case int:
		return &NumberLit{IsInt: true, Int: int64(v)}, nil
	case int64:
		return &NumberLit{IsInt: true, Int: v}, nil
	case float64:
		return &NumberLit{Float: v}, nil
	case string:
		return &StringLit{Val: v}, nil
	case bool:
		return &BoolLit{Val: v}, nil
	default:
		return nil, fmt.Errorf("unsupported argument type %T", a)
	}
}

// bindExpr deep-copies e, substituting lits[i] for Placeholder{Idx: i}.
// Literal leaves are immutable and shared rather than copied.
func bindExpr(e Expr, lits []Expr) Expr {
	switch x := e.(type) {
	case *Placeholder:
		if x.Idx >= 0 && x.Idx < len(lits) {
			return lits[x.Idx]
		}
		return x // out of range: left for the evaluator to reject
	case *Binary:
		return &Binary{Op: x.Op, L: bindExpr(x.L, lits), R: bindExpr(x.R, lits)}
	case *Unary:
		return &Unary{Op: x.Op, X: bindExpr(x.X, lits)}
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Star: x.Star}
		if len(x.Args) > 0 {
			out.Args = make([]Expr, len(x.Args))
			for i, a := range x.Args {
				out.Args[i] = bindExpr(a, lits)
			}
		}
		if x.Params != nil {
			out.Params = make(map[string]Expr, len(x.Params))
			for k, v := range x.Params {
				out.Params[k] = bindExpr(v, lits)
			}
		}
		if x.Over != nil {
			ov := &Over{PartitionBest: x.Over.PartitionBest}
			ov.PartitionBy = append([]string(nil), x.Over.PartitionBy...)
			out.Over = ov
		}
		return out
	default:
		// ColRef, NumberLit, StringLit, BoolLit: immutable leaves.
		return e
	}
}
