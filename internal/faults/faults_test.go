package faults

import (
	"errors"
	"testing"
	"time"
)

func TestEveryNDeterministic(t *testing.T) {
	in := New(1)
	if err := in.Arm(Rule{Site: "s", Kind: Error, EveryN: 3}); err != nil {
		t.Fatal(err)
	}
	var fires int
	for i := 0; i < 9; i++ {
		if err := in.Check("s"); err != nil {
			fires++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
		}
	}
	if fires != 3 {
		t.Fatalf("everyN=3 over 9 hits fired %d times, want 3", fires)
	}
}

func TestProbSeededReproducible(t *testing.T) {
	run := func() []bool {
		in := New(42)
		if err := in.Arm(Rule{Site: "s", Kind: Error, Prob: 0.3}); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, in.Check("s") != nil)
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob=0.3 fired %d/%d times", fired, len(a))
	}
}

func TestLimitCapsFires(t *testing.T) {
	in := New(1)
	in.MustArm(Rule{Site: "s", Kind: Crash, EveryN: 1, Limit: 2})
	fires := 0
	for i := 0; i < 10; i++ {
		if err := in.Check("s"); err != nil {
			fires++
			if !errors.Is(err, ErrCrash) || !errors.Is(err, ErrInjected) {
				t.Fatalf("crash error chain broken: %v", err)
			}
		}
	}
	if fires != 2 {
		t.Fatalf("limit=2 fired %d times", fires)
	}
}

func TestDelayStalls(t *testing.T) {
	in := New(1)
	in.MustArm(Rule{Site: "s", Kind: Delay, EveryN: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Check("s"); err != nil {
		t.Fatalf("delay should not error: %v", err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("delay did not stall: %v", d)
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	in := New(1)
	in.MustArm(Rule{Site: "s", Kind: Error, EveryN: 1, Err: boom})
	if err := in.Check("s"); !errors.Is(err, boom) {
		t.Fatalf("custom error lost: %v", err)
	}
}

func TestArmValidation(t *testing.T) {
	in := New(1)
	if err := in.Arm(Rule{Kind: Error, EveryN: 1}); err == nil {
		t.Fatal("empty site should fail")
	}
	if err := in.Arm(Rule{Site: "s", Kind: Error}); err == nil {
		t.Fatal("no trigger should fail")
	}
	if err := in.Arm(Rule{Site: "s", Kind: Error, Prob: 1.5}); err == nil {
		t.Fatal("prob > 1 should fail")
	}
}

func TestUnarmedSiteIsFree(t *testing.T) {
	in := New(1)
	in.MustArm(Rule{Site: "other", Kind: Error, EveryN: 1})
	if err := in.Check("s"); err != nil {
		t.Fatalf("unarmed site injected: %v", err)
	}
	in.Disarm("other")
	if err := in.Check("other"); err != nil {
		t.Fatalf("disarmed site injected: %v", err)
	}
}

func TestInstallAndGlobalCheck(t *testing.T) {
	if Enabled() {
		t.Fatal("no injector should be installed at test start")
	}
	if err := Check("s"); err != nil {
		t.Fatalf("disabled Check injected: %v", err)
	}
	in := New(1)
	in.MustArm(Rule{Site: "s", Kind: Error, EveryN: 1})
	Install(in)
	defer Install(nil)
	if !Enabled() || Active() != in {
		t.Fatal("injector not installed")
	}
	if err := Check("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("installed Check did not inject: %v", err)
	}
	Install(nil)
	if Enabled() {
		t.Fatal("Install(nil) should disable")
	}
	if err := Check("s"); err != nil {
		t.Fatalf("uninstalled Check injected: %v", err)
	}
}

func TestStatsAndString(t *testing.T) {
	in := New(7)
	in.MustArm(Rule{Site: "b", Kind: Error, EveryN: 2})
	in.MustArm(Rule{Site: "a", Kind: Delay, EveryN: 1, Delay: time.Microsecond})
	for i := 0; i < 4; i++ {
		_ = in.Check("b")
	}
	_ = in.Check("a")
	st := in.Stats()
	if len(st) != 2 || st[0].Site != "a" || st[1].Site != "b" {
		t.Fatalf("stats = %+v", st)
	}
	if st[1].Hits != 4 || st[1].Fires != 2 {
		t.Fatalf("site b tally = %+v", st[1])
	}
	if s := in.String(); s == "" {
		t.Fatal("empty String()")
	}
	if in.Seed() != 7 {
		t.Fatalf("seed = %d", in.Seed())
	}
}

func TestChaosProfile(t *testing.T) {
	in := Chaos(3)
	fires := 0
	for i := 0; i < 40; i++ {
		if err := in.Check(SiteVFTSend); err != nil {
			fires++
		}
	}
	// EveryN=20 over 40 hits fires exactly twice (delay fires don't error).
	if fires != 2 {
		t.Fatalf("chaos vft.send fired %d errors over 40 hits, want 2", fires)
	}
}

// BenchmarkCheckDisabled measures the hot-path cost when no injector is
// installed — one atomic load plus a nil test. The acceptance bar is that
// instrumented sites are free when chaos is off.
func BenchmarkCheckDisabled(b *testing.B) {
	Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Check("vft.send"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckArmedMiss(b *testing.B) {
	in := New(1)
	in.MustArm(Rule{Site: "other", Kind: Error, EveryN: 1})
	Install(in)
	defer Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Check("vft.send"); err != nil {
			b.Fatal(err)
		}
	}
}
