package faults_test

import (
	"bytes"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
	"verticadr/internal/vertica"
	"verticadr/internal/vft"
)

const (
	chaosNodes = 4
	chaosRows  = 2000
	chaosPsize = 32
)

// chaosLoad runs one complete VFT transfer of a freshly built table and
// returns each partition re-encoded as canonical chunk bytes. Chunk assembly
// is ordered by deterministic sequence keys, so two loads of the same table
// must return byte-identical partitions — even when one of them ran under
// fault injection.
func chaosLoad(t *testing.T, overTCP bool) [][]byte {
	t.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: chaosNodes, BlockRows: 128, UDFInstancesPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE chaos (id INTEGER, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	batch := colstore.NewBatch(schema)
	for i := 0; i < chaosRows; i++ {
		if err := batch.AppendRow(int64(i), float64(i)*0.25, float64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Load("chaos", batch); err != nil {
		t.Fatal(err)
	}

	c, err := dr.Start(dr.Config{Workers: chaosNodes, InstancesPerWorker: 2, TaskRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	hub := vft.NewHub()
	if err := vft.Register(db, hub); err != nil {
		t.Fatal(err)
	}

	var frame *darray.DFrame
	if overTCP {
		svc, err := vft.ServeTCP(hub, chaosNodes)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		frame, _, err = vft.LoadTCP(db, c, hub, svc, "chaos", nil, vft.PolicyLocality, chaosPsize)
		if err != nil {
			t.Fatalf("chaotic load did not recover: %v", err)
		}
	} else {
		frame, _, err = vft.Load(db, c, hub, "chaos", nil, vft.PolicyLocality, chaosPsize)
		if err != nil {
			t.Fatalf("chaotic load did not recover: %v", err)
		}
	}
	if hub.Sessions() != 0 {
		t.Fatalf("load left %d sessions behind", hub.Sessions())
	}

	out := make([][]byte, frame.NPartitions())
	for p := range out {
		b, err := frame.Part(p)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := vft.EncodeChunk(b)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = enc
	}
	return out
}

// TestChaosLoadByteExactUnderFaults is the headline chaos scenario of this
// package: load a table over VFT while 5% of sends fail after staging (lost
// acks forcing retransmission), a worker is killed mid-conversion, and
// transient task errors force in-place retries. The recovered frame must be
// byte-identical to a clean load, and every recovery mechanism must have
// actually fired.
func TestChaosLoadByteExactUnderFaults(t *testing.T) {
	want := chaosLoad(t, false)

	reg := telemetry.Default()
	retrans0 := reg.Counter("vft_retransmits_total").Value()
	dups0 := reg.Counter("vft_dup_chunks_total").Value()
	retries0 := reg.Counter("dr_task_retries_total").Value()
	failovers0 := reg.Counter("dr_task_failovers_total").Value()
	deaths0 := reg.Counter("dr_worker_failures_total").Value()

	in := faults.New(42)
	// Exactly 1 in 20 sends (5%) fails after staging.
	in.MustArm(faults.Rule{Site: faults.SiteVFTSend, Kind: faults.Error, EveryN: 20})
	// The first conversion task's worker dies.
	in.MustArm(faults.Rule{Site: faults.SiteDRTask, Kind: faults.Crash, EveryN: 1, Limit: 1})
	// Two transient conversion failures exercise in-place retry.
	in.MustArm(faults.Rule{Site: faults.SiteDRTask, Kind: faults.Error, EveryN: 3, Limit: 2})
	faults.Install(in)
	defer faults.Install(nil)

	got := chaosLoad(t, false)

	if len(got) != len(want) {
		t.Fatalf("partition count %d != %d", len(got), len(want))
	}
	for p := range want {
		if !bytes.Equal(got[p], want[p]) {
			t.Fatalf("partition %d not byte-identical after recovery (%d vs %d bytes)",
				p, len(got[p]), len(want[p]))
		}
	}

	if n := reg.Counter("vft_retransmits_total").Value() - retrans0; n == 0 {
		t.Fatal("vft_retransmits_total did not move — send faults never exercised retransmission")
	}
	if n := reg.Counter("vft_dup_chunks_total").Value() - dups0; n == 0 {
		t.Fatal("vft_dup_chunks_total did not move — dedup never absorbed a duplicate")
	}
	if n := reg.Counter("dr_task_retries_total").Value() - retries0; n == 0 {
		t.Fatal("dr_task_retries_total did not move — transient task errors never retried")
	}
	if n := reg.Counter("dr_task_failovers_total").Value() - failovers0; n == 0 {
		t.Fatal("dr_task_failovers_total did not move — dead worker's task never failed over")
	}
	if n := reg.Counter("dr_worker_failures_total").Value() - deaths0; n != 1 {
		t.Fatalf("dr_worker_failures_total moved by %d, want exactly 1 crash", n)
	}
	for _, s := range in.Stats() {
		if s.Fires == 0 {
			t.Fatalf("armed rule never fired: %+v (stats: %v)", s, in.String())
		}
	}
}

// TestChaosLoadOverTCP runs the same drops across real sockets: the injected
// failure comes back to the sender as a remote error reply and the TCP
// client's reconnect/retry path carries the retransmission.
func TestChaosLoadOverTCP(t *testing.T) {
	want := chaosLoad(t, true)

	in := faults.New(7)
	in.MustArm(faults.Rule{Site: faults.SiteVFTSend, Kind: faults.Error, EveryN: 20})
	faults.Install(in)
	defer faults.Install(nil)

	got := chaosLoad(t, true)
	for p := range want {
		if !bytes.Equal(got[p], want[p]) {
			t.Fatalf("partition %d not byte-identical after TCP recovery", p)
		}
	}
}

// TestChaosProfileLoadSucceeds runs the exact injector the cmd binaries
// install behind -chaos, proving the default profile is survivable end to
// end (it must perturb, not break, the demo pipeline).
func TestChaosProfileLoadSucceeds(t *testing.T) {
	faults.Install(faults.Chaos(1))
	defer faults.Install(nil)
	got := chaosLoad(t, false)
	rows := 0
	for _, enc := range got {
		b, err := vft.DecodeChunk(enc, colstore.Schema{
			{Name: "id", Type: colstore.TypeInt64},
			{Name: "a", Type: colstore.TypeFloat64},
			{Name: "b", Type: colstore.TypeFloat64},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows += b.Len()
	}
	if rows != chaosRows {
		t.Fatalf("chaos-profile load produced %d rows, want %d", rows, chaosRows)
	}
}
