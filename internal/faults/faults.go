// Package faults is a seeded, deterministic fault-injection layer for the
// transfer/scheduling pipeline. The paper's stack tolerates failures by
// design — Vertica recovers node loss through k-safe buddy projections and
// Distributed R re-executes failed tasks on surviving workers — and the
// recovery paths grown into this reproduction (vft retransmission and chunk
// dedup, dr task retry and worker failover, yarn request deadlines) need a
// way to be exercised repeatably. An Injector holds rules armed at named
// sites ("vft.send", "dr.task", ...); instrumented layers consult the
// process-wide checker through Check, which is a single atomic load plus a
// nil test when no injector is installed — disabled by default at zero
// overhead.
//
// Three fault kinds cover the failure modes the pipeline recovers from:
//
//   - Error: the site returns an injected error (a dropped send, a failed
//     query) that retry/retransmit paths must absorb;
//   - Delay: the site stalls for a fixed duration (network jitter, a slow
//     disk) without failing;
//   - Crash: the site returns ErrCrash, which the Distributed R scheduler
//     interprets as the death of the worker running the task — it marks the
//     worker dead and re-executes its tasks on survivors.
//
// Rules trigger either probabilistically (Prob, from the injector's seeded
// RNG) or deterministically (EveryN hits), optionally capped by Limit. With
// EveryN rules the number of fired faults is an exact function of the number
// of site visits, which keeps chaos tests reproducible even when the visits
// themselves interleave nondeterministically across goroutines.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/telemetry"
)

// Injection observability: one counter per (site, kind) that fired.
var mInjected = func(site, kind string) *telemetry.Counter {
	return telemetry.Default().Counter("faults_injected_total",
		telemetry.L("site", site), telemetry.L("kind", kind))
}

// Named injection sites consulted across the pipeline. Sites are plain
// strings so layers can add private ones, but the shared names live here to
// keep chaos profiles and tests in one vocabulary.
const (
	// SiteVFTSend fires in vft.Hub.Send after a chunk is staged — the
	// receiver accepted the bytes but the ack is lost, so the sender must
	// retransmit and the hub's (part, seq) dedup must absorb the duplicate.
	SiteVFTSend = "vft.send"
	// SiteDRTask fires inside the worker executor just before a task body
	// runs; a Crash here kills the worker.
	SiteDRTask = "dr.task"
	// SiteODBCQuery fires at the start of an ODBC range query.
	SiteODBCQuery = "odbc.query"
	// SiteODBCRow fires per served segment slice inside the ODBC row stream.
	SiteODBCRow = "odbc.row"
	// SiteYarnRequest fires on container requests (a resource-manager
	// hiccup).
	SiteYarnRequest = "yarn.request"
	// SiteModelLoad fires in the model manager's DFS fetch path, on cache
	// misses only — a flaky blob read the serving layer must surface as a
	// typed error rather than a hang or a poisoned cache entry.
	SiteModelLoad = "models.load"
	// SiteWALAppend fires in wal.Writer.Append before a record is framed
	// into the log buffer — a Crash here models the process dying before
	// the write reached the log at all (the commit must not be acked).
	SiteWALAppend = "wal.append"
	// SiteWALFsync fires in the group-commit syncer just before the batched
	// write+fsync — a Crash here models the process dying with records
	// buffered but not durable; every waiter in the batch must see the
	// failure and no commit may be acknowledged.
	SiteWALFsync = "wal.fsync"
	// SiteWALCheckpoint fires at the start of a checkpoint — a Crash here
	// must leave the previous checkpoint and the whole log intact, so
	// recovery still replays from the old marker.
	SiteWALCheckpoint = "wal.checkpoint"
)

// ErrInjected is the root of every injected error; recovery code that wants
// to know whether a failure was synthetic can errors.Is against it.
var ErrInjected = errors.New("injected fault")

// ErrCrash marks an injected crash: the component that hit it is considered
// dead, not merely failed. It wraps ErrInjected.
var ErrCrash = fmt.Errorf("injected crash: %w", ErrInjected)

// Kind selects what an armed rule does when it fires.
type Kind uint8

// Fault kinds.
const (
	// Error returns Rule.Err (or a generic ErrInjected wrapper).
	Error Kind = iota
	// Delay sleeps Rule.Delay and succeeds.
	Delay
	// Crash returns an ErrCrash wrapper.
	Crash
)

// String names the kind for telemetry labels and reports.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Rule arms one fault at one site. Exactly one of Prob / EveryN selects the
// trigger: Prob fires independently per hit with the given probability from
// the injector's seeded RNG; EveryN > 0 fires deterministically on every Nth
// hit. Limit > 0 caps the total number of fires.
type Rule struct {
	Site   string
	Kind   Kind
	Prob   float64
	EveryN int
	Limit  int
	Delay  time.Duration // Delay kind: how long to stall
	Err    error         // Error kind: error to return (default ErrInjected wrapper)
}

// armed is a rule plus its trigger state.
type armed struct {
	Rule
	hits  int
	fires int
}

// Checker is the interface layers consult; Injector implements it, and tests
// may install custom checkers.
type Checker interface {
	// Check reports the fault to inject at site, or nil to proceed normally.
	Check(site string) error
}

// Injector is a seeded collection of armed rules. All trigger decisions come
// from one mutex-guarded RNG, so a fixed seed plus a fixed visit count yields
// a fixed fault sequence.
type Injector struct {
	seed  int64
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]*armed
}

var _ Checker = (*Injector)(nil)

// New creates an empty injector on the given seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed)), rules: map[string][]*armed{}}
}

// Seed returns the injector's seed (reports, reproduction instructions).
func (in *Injector) Seed() int64 { return in.seed }

// Arm installs a rule. Multiple rules may share a site; each is evaluated on
// every hit.
func (in *Injector) Arm(r Rule) error {
	if r.Site == "" {
		return fmt.Errorf("faults: rule needs a site")
	}
	if r.EveryN < 0 || r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faults: rule for %q has invalid trigger (prob=%v, everyN=%d)", r.Site, r.Prob, r.EveryN)
	}
	if r.EveryN == 0 && r.Prob == 0 {
		return fmt.Errorf("faults: rule for %q would never fire", r.Site)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[r.Site] = append(in.rules[r.Site], &armed{Rule: r})
	return nil
}

// MustArm is Arm for static profiles; it panics on invalid rules.
func (in *Injector) MustArm(r Rule) {
	if err := in.Arm(r); err != nil {
		panic(err)
	}
}

// Disarm removes every rule at site.
func (in *Injector) Disarm(site string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, site)
}

// Check implements Checker: it advances every rule armed at site and returns
// the injected error, if any. Delays are served before returning; when a
// delay rule and an error rule both fire on the same hit the stall happens
// first, then the error surfaces — a slow failure.
func (in *Injector) Check(site string) error {
	in.mu.Lock()
	rules := in.rules[site]
	if len(rules) == 0 {
		in.mu.Unlock()
		return nil
	}
	var stall time.Duration
	var err error
	for _, r := range rules {
		r.hits++
		fire := false
		if r.EveryN > 0 {
			fire = r.hits%r.EveryN == 0
		} else {
			fire = in.rng.Float64() < r.Prob
		}
		if !fire || (r.Limit > 0 && r.fires >= r.Limit) {
			continue
		}
		r.fires++
		mInjected(site, r.Kind.String()).Inc()
		switch r.Kind {
		case Delay:
			stall += r.Delay
		case Crash:
			err = fmt.Errorf("faults: site %s: %w", site, ErrCrash)
		case Error:
			if r.Err != nil {
				err = fmt.Errorf("faults: site %s: %w", site, r.Err)
			} else {
				err = fmt.Errorf("faults: site %s: %w", site, ErrInjected)
			}
		}
	}
	in.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return err
}

// SiteStats is one rule's visit/fire tally.
type SiteStats struct {
	Site  string
	Kind  string
	Hits  int
	Fires int
}

// Stats snapshots every armed rule, sorted by site then kind.
func (in *Injector) Stats() []SiteStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []SiteStats
	for site, rules := range in.rules {
		for _, r := range rules {
			out = append(out, SiteStats{Site: site, Kind: r.Kind.String(), Hits: r.hits, Fires: r.fires})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// String renders the stats as one line per rule.
func (in *Injector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault injector (seed %d):", in.seed)
	for _, s := range in.Stats() {
		fmt.Fprintf(&sb, "\n  %-14s %-6s %d/%d fired", s.Site, s.Kind, s.Fires, s.Hits)
	}
	return sb.String()
}

// active holds the installed process-wide checker. An atomic.Value of a
// concrete box type keeps Check to one atomic load on the disabled path.
var active atomic.Value // of checkerBox

type checkerBox struct{ c Checker }

// Install sets the process-wide checker consulted by Check; nil disables
// injection. Typically installed once at startup (a chaos profile flag) or
// around a test body.
func Install(c Checker) {
	active.Store(checkerBox{c: c})
}

// Active returns the installed checker (nil when disabled).
func Active() Checker {
	b, _ := active.Load().(checkerBox)
	return b.c
}

// Enabled reports whether a checker is installed.
func Enabled() bool { return Active() != nil }

// Check is the hot-path hook instrumented layers call: a no-op returning nil
// unless an injector is installed and armed at the site.
func Check(site string) error {
	b, _ := active.Load().(checkerBox)
	if b.c == nil {
		return nil
	}
	return b.c.Check(site)
}

// Chaos returns an injector armed with the standard chaos profile the cmd
// binaries enable behind their -chaos flag: a deterministic 5% of VFT sends
// fail after staging (exercising retransmit + dedup), occasional send jitter,
// and sporadic ODBC query failures (exercising the baseline loader's
// per-connection retries). Crash faults are not part of the default profile —
// they are armed explicitly by the chaos test suite, which also provides the
// rebuild hooks that make worker loss recoverable.
func Chaos(seed int64) *Injector {
	in := New(seed)
	in.MustArm(Rule{Site: SiteVFTSend, Kind: Error, EveryN: 20})
	in.MustArm(Rule{Site: SiteVFTSend, Kind: Delay, Prob: 0.01, Delay: 200 * time.Microsecond})
	in.MustArm(Rule{Site: SiteODBCQuery, Kind: Error, EveryN: 25})
	return in
}
