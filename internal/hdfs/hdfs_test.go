package hdfs

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs, err := New(Config{DataNodes: 4, BlockSize: 64, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("hello world line\n", 50))
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
	blocks, _ := fs.Blocks("f")
	if len(blocks) < 5 {
		t.Fatalf("expected multiple blocks, got %d", len(blocks))
	}
	for _, b := range blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", b.Index, len(b.Replicas))
		}
	}
}

func TestLineAlignedBlocks(t *testing.T) {
	fs, _ := New(Config{DataNodes: 2, BlockSize: 10, Replication: 1})
	data := []byte("aaaaaaaaaaaaaaa\nbb\ncc\n")
	_ = fs.WriteFile("f", data)
	blocks, _ := fs.Blocks("f")
	for i := range blocks {
		blk, _, err := fs.ReadBlock("f", i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(blk) > 0 && blk[len(blk)-1] != '\n' {
			t.Fatalf("block %d does not end at line boundary: %q", i, blk)
		}
	}
}

func TestReadBlockLocality(t *testing.T) {
	fs, _ := New(Config{DataNodes: 5, BlockSize: 8, Replication: 2})
	_ = fs.WriteFile("f", []byte("0123456\n89abcdef\nghijklmn\n"))
	blocks, _ := fs.Blocks("f")
	for _, b := range blocks {
		_, local, err := fs.ReadBlock("f", b.Index, b.Replicas[0])
		if err != nil || !local {
			t.Fatalf("read from replica should be local: %v %v", local, err)
		}
		// Find a non-replica node.
		for n := 0; n < 5; n++ {
			isRep := false
			for _, r := range b.Replicas {
				if r == n {
					isRep = true
				}
			}
			if !isRep {
				_, local, err := fs.ReadBlock("f", b.Index, n)
				if err != nil || local {
					t.Fatalf("read from non-replica should be remote")
				}
				break
			}
		}
	}
}

func TestDeleteAndUsage(t *testing.T) {
	fs, _ := New(Config{DataNodes: 3, BlockSize: 8, Replication: 3})
	_ = fs.WriteFile("f", []byte("12345678\nabcdefgh\n"))
	used := fs.UsedBytes()
	var total int
	for _, u := range used {
		total += u
	}
	if total != 18*3 {
		t.Fatalf("replicated usage = %d, want %d", total, 18*3)
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	for _, u := range fs.UsedBytes() {
		if u != 0 {
			t.Fatalf("usage after delete = %v", fs.UsedBytes())
		}
	}
	if err := fs.Delete("f"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestValidationAndErrors(t *testing.T) {
	if _, err := New(Config{DataNodes: 0}); err == nil {
		t.Fatal("0 datanodes should fail")
	}
	fs, _ := New(Config{DataNodes: 2, Replication: 9})
	if err := fs.WriteFile("", []byte("x")); err == nil {
		t.Fatal("empty name should fail")
	}
	_ = fs.WriteFile("f", []byte("x"))
	if err := fs.WriteFile("f", []byte("y")); err == nil {
		t.Fatal("duplicate write should fail")
	}
	if _, err := fs.ReadFile("zz"); err == nil {
		t.Fatal("missing read should fail")
	}
	if _, err := fs.Blocks("zz"); err == nil {
		t.Fatal("missing blocks should fail")
	}
	if _, _, err := fs.ReadBlock("f", 5, 0); err == nil {
		t.Fatal("bad block index should fail")
	}
	if _, _, err := fs.ReadBlock("zz", 0, 0); err == nil {
		t.Fatal("missing file block read should fail")
	}
	if l := fs.List(); len(l) != 1 || l[0] != "f" {
		t.Fatalf("list = %v", l)
	}
}

// Property: concatenated blocks always equal the original file.
func TestQuickBlockReassembly(t *testing.T) {
	fs, _ := New(Config{DataNodes: 3, BlockSize: 16, Replication: 2})
	i := 0
	f := func(chunks []string) bool {
		i++
		data := []byte(strings.Join(chunks, "\n"))
		name := strings.Repeat("f", i%7+1) + string(rune('a'+i%26)) + strings.Repeat("x", i/26%5)
		name = name + "-" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10))
		if err := fs.WriteFile(name, data); err != nil {
			return false
		}
		blocks, err := fs.Blocks(name)
		if err != nil {
			return false
		}
		var re []byte
		for _, b := range blocks {
			blk, _, err := fs.ReadBlock(name, b.Index, 0)
			if err != nil {
				return false
			}
			re = append(re, blk...)
		}
		return bytes.Equal(re, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
