// Package hdfs is the distributed-filesystem comparator substrate of
// §7.3.2: files are split into line-aligned blocks, each block replicated
// across datanodes (default 3×, "HDFS is set to the default 3-way data
// replication"), with locality-aware reads so a compute framework (the
// Spark substitute) can schedule tasks on nodes holding local replicas.
package hdfs

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// Config configures the filesystem.
type Config struct {
	DataNodes   int
	BlockSize   int // bytes per block before line alignment (default 1 MiB)
	Replication int // default 3
}

// BlockInfo describes one block of a file.
type BlockInfo struct {
	Index    int
	Size     int
	Replicas []int // datanodes holding this block
}

type file struct {
	blocks []BlockInfo
	data   [][]byte // block payloads, indexed by block
}

// FS is the filesystem: a namenode map plus per-datanode accounting.
type FS struct {
	cfg   Config
	mu    sync.RWMutex
	files map[string]*file
	next  int // round-robin placement cursor
	used  []int
}

// New creates a filesystem.
func New(cfg Config) (*FS, error) {
	if cfg.DataNodes <= 0 {
		return nil, fmt.Errorf("hdfs: need at least one datanode")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 1 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > cfg.DataNodes {
		cfg.Replication = cfg.DataNodes
	}
	return &FS{cfg: cfg, files: make(map[string]*file), used: make([]int, cfg.DataNodes)}, nil
}

// DataNodes returns the node count.
func (fs *FS) DataNodes() int { return fs.cfg.DataNodes }

// WriteFile stores data, splitting into blocks at line boundaries at or
// after BlockSize so text records never straddle blocks.
func (fs *FS) WriteFile(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("hdfs: empty file name")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("hdfs: file %q already exists", name)
	}
	f := &file{}
	for off := 0; off < len(data); {
		end := off + fs.cfg.BlockSize
		if end >= len(data) {
			end = len(data)
		} else if nl := bytes.IndexByte(data[end:], '\n'); nl >= 0 {
			end += nl + 1
		} else {
			end = len(data)
		}
		blk := append([]byte(nil), data[off:end]...)
		replicas := make([]int, 0, fs.cfg.Replication)
		for i := 0; i < fs.cfg.Replication; i++ {
			node := (fs.next + i) % fs.cfg.DataNodes
			replicas = append(replicas, node)
			fs.used[node] += len(blk)
		}
		fs.next++
		f.blocks = append(f.blocks, BlockInfo{Index: len(f.blocks), Size: len(blk), Replicas: replicas})
		f.data = append(f.data, blk)
		off = end
	}
	fs.files[name] = f
	return nil
}

// ReadFile returns the whole file.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", name)
	}
	var out []byte
	for _, b := range f.data {
		out = append(out, b...)
	}
	return out, nil
}

// Blocks returns block metadata for scheduling.
func (fs *FS) Blocks(name string) ([]BlockInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", name)
	}
	return append([]BlockInfo(nil), f.blocks...), nil
}

// ReadBlock reads one block as seen from a node; local reports whether a
// local replica served it (locality accounting for the Spark scheduler).
func (fs *FS) ReadBlock(name string, index, fromNode int) (data []byte, local bool, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, false, fmt.Errorf("hdfs: file %q does not exist", name)
	}
	if index < 0 || index >= len(f.blocks) {
		return nil, false, fmt.Errorf("hdfs: block %d out of range for %q", index, name)
	}
	for _, r := range f.blocks[index].Replicas {
		if r == fromNode {
			local = true
			break
		}
	}
	return f.data[index], local, nil
}

// Delete removes a file.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("hdfs: file %q does not exist", name)
	}
	for i, b := range f.blocks {
		for _, r := range b.Replicas {
			fs.used[r] -= len(f.data[i])
		}
	}
	delete(fs.files, name)
	return nil
}

// List returns file names, sorted.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// UsedBytes reports per-datanode stored bytes (replication included).
func (fs *FS) UsedBytes() []int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return append([]int(nil), fs.used...)
}
