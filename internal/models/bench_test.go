package models

import (
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/vertica"
)

func benchPredictDB(b *testing.B, rows int) (*vertica.DB, *Manager) {
	b.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: 4, BlockRows: 2048, UDFInstancesPerNode: 2})
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := NewManager(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE bp (a FLOAT, b FLOAT)`); err != nil {
		b.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	batch := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		_ = batch.AppendRow(float64(i)*0.01, float64(i)*-0.02)
	}
	if err := db.Load("bp", batch); err != nil {
		b.Fatal(err)
	}
	return db, mgr
}

// BenchmarkGlmPredictSQL drives the full SQL prediction path — scan,
// partitioning, vectorized block scoring through the pooled writer, merge —
// over 100k rows per iteration.
func BenchmarkGlmPredictSQL(b *testing.B) {
	const rows = 100_000
	db, mgr := benchPredictDB(b, rows)
	if err := mgr.Deploy("m", "bench", "", &algos.GLMModel{
		Family: algos.Gaussian, Coefficients: []float64{1, 2, -0.5},
	}); err != nil {
		b.Fatal(err)
	}
	q := `SELECT GlmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM bp`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != rows {
			b.Fatal("row loss")
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkKmeansPredictSQL is the same path through the integer-output
// scorer.
func BenchmarkKmeansPredictSQL(b *testing.B) {
	const rows = 100_000
	db, mgr := benchPredictDB(b, rows)
	if err := mgr.Deploy("km", "bench", "", &algos.KmeansModel{
		K: 2, Centers: [][]float64{{0, 0}, {500, -1000}},
	}); err != nil {
		b.Fatal(err)
	}
	q := `SELECT KmeansPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM bp`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != rows {
			b.Fatal("row loss")
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
}
