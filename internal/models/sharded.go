package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"verticadr/internal/algos"
	"verticadr/internal/verr"
)

// TypeGLMSharded tags GLM deployments whose coefficient array is split
// across multiple DFS blobs because it exceeds the transfer message budget.
const TypeGLMSharded = "glm-sharded"

// MaxBlobBytes is the single-message budget: a model whose serialized form
// exceeds it cannot ride one DFS transfer, so Deploy switches the GLM
// layout to sharded storage — a small metadata blob plus fixed-size
// coefficient shards, each under the budget.
const MaxBlobBytes = 256 << 10

// ShardedGLMMeta is the metadata blob of a sharded GLM deployment. The
// coefficient array itself lives in Shards separate blobs, each holding the
// contiguous feature window [k*ShardSize, min(Dims, (k+1)*ShardSize)).
type ShardedGLMMeta struct {
	Family    algos.Family
	Intercept float64
	Dims      int // feature count, excluding the intercept
	ShardSize int // features per shard (last shard may be short)
	Shards    int
}

// ShardedGLM is a loaded sharded deployment: the scorer the prediction UDF
// drives. Coef keeps the per-shard coefficient windows separate — the dense
// array is never materialized — and PredictBlock streams them shard-major.
type ShardedGLM struct {
	Meta ShardedGLMMeta
	Coef [][]float64
}

// PredictBlock scores column-major feature blocks against the sharded
// coefficients: a dot-product join of the feature batch with each
// coefficient shard in ascending feature order. The accumulation order is
// exactly GLMModel.PredictBlock's — intercept first, then one addition per
// feature j ascending — so sharded and dense deployments of the same model
// produce bit-identical predictions.
func (m *ShardedGLM) PredictBlock(cols [][]float64, out []float64) {
	n := len(out)
	for i := range out {
		out[i] = m.Meta.Intercept
	}
	j := 0
	for _, shard := range m.Coef {
		for _, c := range shard {
			for i, v := range cols[j][:n] {
				out[i] += c * v
			}
			j++
		}
	}
	switch m.Meta.Family {
	case algos.Binomial:
		for i, eta := range out {
			out[i] = 1 / (1 + math.Exp(-eta))
		}
	case algos.Poisson:
		for i, eta := range out {
			out[i] = math.Exp(eta)
		}
	}
}

func shardPath(name string, k int) string { return fmt.Sprintf("models/%s.shard%04d", name, k) }

// encodeShard/decodeShard carry one coefficient window as gob []float64.
func encodeShard(coef []float64) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(coef); err != nil {
		return nil, fmt.Errorf("models: encode shard: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeShard(data []byte) ([]float64, error) {
	var coef []float64
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&coef); err != nil {
		return nil, fmt.Errorf("models: decode shard: %w", err)
	}
	return coef, nil
}

// DeployGLMSharded stores a GLM across multiple blobs: coefficient shards of
// at most maxShardBytes each (MaxBlobBytes when <= 0), then the metadata
// blob, then the R_Models row. The write order means a reader that can see
// the metadata blob always finds every shard it references.
func (m *Manager) DeployGLMSharded(name, owner, description string, model *algos.GLMModel, maxShardBytes int) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("models: invalid model name %q", name)
	}
	if exists, err := m.exists(name); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("models: model %q already exists", name)
	}
	if len(model.Coefficients) == 0 {
		return fmt.Errorf("models: sharded deploy of %q: empty coefficient array", name)
	}
	if maxShardBytes <= 0 {
		maxShardBytes = MaxBlobBytes
	}
	// gob encodes a float64 in up to 9 bytes (full-mantissa values hit the
	// maximum); size shards at 10 bytes per coefficient so the encoded blob
	// stays under the budget with headroom for the stream preamble.
	shardSize := maxShardBytes / 10
	if shardSize < 1 {
		shardSize = 1
	}
	dims := len(model.Coefficients) - 1
	shards := (dims + shardSize - 1) / shardSize
	if shards < 1 {
		shards = 1
	}
	meta := ShardedGLMMeta{
		Family:    model.Family,
		Intercept: model.Coefficients[0],
		Dims:      dims,
		ShardSize: shardSize,
		Shards:    shards,
	}
	total := 0
	cleanup := func(upto int) {
		for k := 0; k < upto; k++ {
			_ = m.blobDelete(shardPath(name, k))
		}
	}
	for k := 0; k < shards; k++ {
		lo := k * shardSize
		hi := lo + shardSize
		if hi > dims {
			hi = dims
		}
		data, err := encodeShard(model.Coefficients[1+lo : 1+hi])
		if err != nil {
			cleanup(k)
			return err
		}
		if err := m.blobPut(shardPath(name, k), data); err != nil {
			cleanup(k)
			return err
		}
		total += len(data)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{Kind: TypeGLMSharded, Sharded: &meta}); err != nil {
		cleanup(shards)
		return fmt.Errorf("models: serialize sharded meta: %w", err)
	}
	if err := m.blobPut(blobPath(name), buf.Bytes()); err != nil {
		cleanup(shards)
		return err
	}
	total += buf.Len()
	ins := fmt.Sprintf(`INSERT INTO %s VALUES ('%s', '%s', '%s', %d, '%s')`,
		MetaTable, name, sqlEscape(owner), TypeGLMSharded, total, sqlEscape(description))
	if err := m.db.Exec(ins); err != nil {
		_ = m.blobDelete(blobPath(name))
		cleanup(shards)
		return err
	}
	m.acl.register(name, owner)
	m.cache.invalidate(name)
	return nil
}

// loadShards assembles a ShardedGLM from its shard blobs (node-local DFS
// replica preferred, like the metadata blob itself).
func (m *Manager) loadShards(name string, node int, meta *ShardedGLMMeta) (*ShardedGLM, error) {
	out := &ShardedGLM{Meta: *meta, Coef: make([][]float64, meta.Shards)}
	got := 0
	for k := 0; k < meta.Shards; k++ {
		var data []byte
		var err error
		if node >= 0 {
			data, _, err = m.db.DFS().ReadFrom(node, shardPath(name, k))
		} else {
			data, err = m.db.DFS().Read(shardPath(name, k))
		}
		if err != nil {
			return nil, fmt.Errorf("models: %w: shard %d of %q: %v", verr.ErrModelNotFound, k, name, err)
		}
		coef, err := decodeShard(data)
		if err != nil {
			return nil, err
		}
		out.Coef[k] = coef
		got += len(coef)
	}
	if got != meta.Dims {
		return nil, fmt.Errorf("models: sharded model %q has %d coefficients across shards, metadata says %d", name, got, meta.Dims)
	}
	return out, nil
}

// ShardInfo implements the planner's ShardInfoProvider: it reports the shard
// count of a sharded deployment so PREDICT over it plans (and EXPLAINs) as a
// dot-product join. Dense models and unknown names report ok=false.
func (m *Manager) ShardInfo(name string) (int, bool) {
	model, _, err := m.Load(name, -1)
	if err != nil {
		return 0, false
	}
	if sh, ok := model.(*ShardedGLM); ok {
		return sh.Meta.Shards, true
	}
	return 0, false
}
