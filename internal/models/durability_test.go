package models

import (
	"errors"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/faults"
	"verticadr/internal/vertica"
)

func durableCluster(t *testing.T, dir string) (*vertica.DB, *Manager) {
	t.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: 2, Durable: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

func km(center float64) *algos.KmeansModel {
	return &algos.KmeansModel{K: 1, Centers: [][]float64{{center, center}}, Converged: true}
}

// TestRedeployDurableAcrossRestart is the regression test for the torn-write
// window: before the WAL, Redeploy wrote the blob directly into the in-memory
// DFS namespace, so a crash after Redeploy acknowledged would serve the OLD
// model after restart. Now the blob write is redo-logged and fsynced before
// it is acknowledged, so the version bump survives a crash with no checkpoint
// having run.
func TestRedeployDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db, m := durableCluster(t, dir)
	if err := m.Deploy("demo", "alice", "v1", km(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Redeploy("demo", "alice", km(2)); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, m2 := durableCluster(t, dir)
	defer db2.Close()
	got, kind, err := m2.Load("demo", -1)
	if err != nil {
		t.Fatal(err)
	}
	if kind != TypeKmeans {
		t.Fatalf("kind = %q", kind)
	}
	if c := got.(*algos.KmeansModel).Centers[0][0]; c != 2 {
		t.Fatalf("recovered model serves center %v, want the redeployed 2", c)
	}
	// Adoption: the surviving metadata row still enforces ownership.
	if err := m2.Redeploy("demo", "mallory", km(3)); err == nil {
		t.Fatal("recovered ACL did not block non-owner redeploy")
	}
	if err := m2.Redeploy("demo", "alice", km(3)); err != nil {
		t.Fatal(err)
	}
}

// TestRedeployCrashKeepsOldVersion: a redeploy that dies at the WAL boundary
// must fail without acknowledging, and after restart the previous version
// still serves.
func TestRedeployCrashKeepsOldVersion(t *testing.T) {
	dir := t.TempDir()
	db, m := durableCluster(t, dir)
	if err := m.Deploy("demo", "alice", "v1", km(1)); err != nil {
		t.Fatal(err)
	}
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: faults.SiteWALAppend, Kind: faults.Crash, EveryN: 1})
	faults.Install(in)
	err := m.Redeploy("demo", "alice", km(2))
	faults.Install(nil)
	if err == nil || !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("redeploy past a crashed WAL append: %v", err)
	}
	db.Close()

	db2, m2 := durableCluster(t, dir)
	defer db2.Close()
	got, _, err := m2.Load("demo", -1)
	if err != nil {
		t.Fatal(err)
	}
	if c := got.(*algos.KmeansModel).Centers[0][0]; c != 1 {
		t.Fatalf("unacknowledged redeploy leaked: center %v", c)
	}
}

// TestDeployedModelSurvivesCheckpoint: the blob rides the checkpoint image
// and the log after it is truncated.
func TestDeployedModelSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, m := durableCluster(t, dir)
	if err := m.Deploy("demo", "alice", "v1", km(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Redeploy("demo", "alice", km(5)); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, m2 := durableCluster(t, dir)
	defer db2.Close()
	got, _, err := m2.Load("demo", -1)
	if err != nil {
		t.Fatal(err)
	}
	if c := got.(*algos.KmeansModel).Centers[0][0]; c != 5 {
		t.Fatalf("post-checkpoint redeploy lost: center %v", c)
	}
	list, err := m2.List()
	if err != nil || len(list) != 1 || list[0][0].(string) != "demo" {
		t.Fatalf("metadata not recovered: %v %v", list, err)
	}
}
