// Model cache: deployed models are immutable blobs, but every prediction
// query used to fetch and gob-decode the blob once per UDF instance — with 4
// nodes × 4 instances that is 16 deserializations per query. The block
// scorers only read model state, so one deserialized copy can be shared by
// every concurrent query. Invalidation is versioned: Redeploy/Drop/Deploy
// bump the model's version, and a load that raced the invalidation cannot
// install its (possibly stale) copy because putIfCurrent re-checks the
// version under the lock. This is the cache-invalidation contract DESIGN.md
// §9 documents for the serving layer.
package models

import (
	"sync"

	"verticadr/internal/telemetry"
)

var (
	mCacheHits    = telemetry.Default().Counter("models_cache_total", telemetry.L("result", "hit"))
	mCacheMisses  = telemetry.Default().Counter("models_cache_total", telemetry.L("result", "miss"))
	mInvalidation = telemetry.Default().Counter("models_cache_invalidations_total")
)

type cacheEntry struct {
	model any
	kind  string
}

// modelCache is a versioned read-through cache keyed by model name.
type modelCache struct {
	mu      sync.Mutex
	enabled bool
	vers    map[string]uint64
	entries map[string]cacheEntry
}

func newModelCache() *modelCache {
	return &modelCache{
		enabled: true,
		vers:    map[string]uint64{},
		entries: map[string]cacheEntry{},
	}
}

// snapshot returns the cached entry (if any) and the model's current version.
// A loader that misses must pass the version back to putIfCurrent.
func (c *modelCache) snapshot(name string) (cacheEntry, bool, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return cacheEntry{}, false, c.vers[name]
	}
	e, ok := c.entries[name]
	return e, ok, c.vers[name]
}

// putIfCurrent installs a loaded model only if no invalidation happened since
// the loader's snapshot — the check that makes a concurrent Redeploy win over
// an in-flight stale read.
func (c *modelCache) putIfCurrent(name string, ver uint64, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled || c.vers[name] != ver {
		return
	}
	c.entries[name] = e
}

// invalidate drops the cached copy and bumps the version, orphaning any
// in-flight loads that started before the call.
func (c *modelCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vers[name]++
	if _, ok := c.entries[name]; ok {
		delete(c.entries, name)
	}
	mInvalidation.Inc()
}

// setEnabled toggles caching; disabling clears all entries (benchmarks use
// this to measure the uncached path).
func (c *modelCache) setEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
	if !on {
		c.entries = map[string]cacheEntry{}
	}
}
