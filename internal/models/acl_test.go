package models

import (
	"strings"
	"testing"
)

func TestACLDefaultsPublicRead(t *testing.T) {
	db, mgr := setup(t, 2)
	_ = db
	if err := mgr.Deploy("m", "alice", "", kmeansModel()); err != nil {
		t.Fatal(err)
	}
	// Any user can read by default.
	if _, _, err := mgr.LoadAs("m", -1, "bob"); err != nil {
		t.Fatalf("default public read: %v", err)
	}
	// But not modify.
	if err := mgr.DropAs("m", "bob"); err == nil {
		t.Fatal("non-owner drop should fail")
	}
	// Owner can always modify.
	if err := mgr.DropAs("m", "alice"); err != nil {
		t.Fatalf("owner drop: %v", err)
	}
}

func TestACLRestrictAndGrant(t *testing.T) {
	_, mgr := setup(t, 2)
	_ = mgr.Deploy("m", "alice", "", kmeansModel())
	if err := mgr.Restrict("m", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.LoadAs("m", -1, "bob"); err == nil {
		t.Fatal("restricted model should refuse bob")
	}
	// Grant read.
	if err := mgr.Grant("m", "alice", "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.LoadAs("m", -1, "bob"); err != nil {
		t.Fatalf("granted read: %v", err)
	}
	if err := mgr.DropAs("m", "bob"); err == nil {
		t.Fatal("read grant must not allow drop")
	}
	// Upgrade to modify.
	if err := mgr.Grant("m", "alice", "bob", PermModify); err != nil {
		t.Fatal(err)
	}
	if err := mgr.DropAs("m", "bob"); err != nil {
		t.Fatalf("modify grant should allow drop: %v", err)
	}
}

func TestACLRevoke(t *testing.T) {
	_, mgr := setup(t, 2)
	_ = mgr.Deploy("m", "alice", "", kmeansModel())
	_ = mgr.Restrict("m", "alice")
	_ = mgr.Grant("m", "alice", "bob", PermRead)
	if err := mgr.Revoke("m", "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.LoadAs("m", -1, "bob"); err == nil {
		t.Fatal("revoked user should be refused")
	}
}

func TestACLOnlyOwnerAdministers(t *testing.T) {
	_, mgr := setup(t, 2)
	_ = mgr.Deploy("m", "alice", "", kmeansModel())
	if err := mgr.Grant("m", "mallory", "mallory", PermModify); err == nil {
		t.Fatal("non-owner grant should fail")
	}
	if err := mgr.Restrict("m", "mallory"); err == nil {
		t.Fatal("non-owner restrict should fail")
	}
	if err := mgr.Revoke("m", "mallory", "bob"); err == nil {
		t.Fatal("non-owner revoke should fail")
	}
	if err := mgr.Grant("missing", "alice", "bob", PermRead); err == nil {
		t.Fatal("grant on missing model should fail")
	}
}

func TestACLEnforcedInPredictionSQL(t *testing.T) {
	db, mgr := setup(t, 2)
	loadPointsTable(t, db, 20)
	_ = mgr.Deploy("km", "alice", "", kmeansModel())
	_ = mgr.Restrict("km", "alice")

	// Unauthorized user is refused by the prediction UDF.
	_, err := db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km', user='bob') OVER (PARTITION BEST) FROM pts`)
	if err == nil || !strings.Contains(err.Error(), "READ") {
		t.Fatalf("expected permission error, got %v", err)
	}
	// The owner succeeds.
	res, err := db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km', user='alice') OVER (PARTITION BEST) FROM pts`)
	if err != nil || res.Len() != 20 {
		t.Fatalf("owner prediction: %v", err)
	}
	// After a grant, bob succeeds too.
	_ = mgr.Grant("km", "alice", "bob", PermRead)
	res, err = db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km', user='bob') OVER (PARTITION BEST) FROM pts`)
	if err != nil || res.Len() != 20 {
		t.Fatalf("granted prediction: %v", err)
	}
	// Queries without a user parameter remain administrative (internal).
	if _, err := db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`); err != nil {
		t.Fatalf("administrative prediction: %v", err)
	}
}

func TestPermissionString(t *testing.T) {
	if PermRead.String() != "READ" || PermModify.String() != "MODIFY" {
		t.Fatal("permission names")
	}
}
