package models

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"verticadr/internal/algos"
)

// wideGLM builds a GLM with dims feature coefficients of non-trivial bit
// patterns, so bit-identity checks are meaningful.
func wideGLM(dims int, fam algos.Family) *algos.GLMModel {
	coef := make([]float64, dims+1)
	for i := range coef {
		coef[i] = math.Sqrt(float64(i)+0.5) * 1e-3
		if i%3 == 1 {
			coef[i] = -coef[i]
		}
	}
	return &algos.GLMModel{Family: fam, Coefficients: coef}
}

func TestShardedPredictBlockBitIdenticalToDense(t *testing.T) {
	for _, fam := range []algos.Family{algos.Gaussian, algos.Binomial, algos.Poisson} {
		dense := wideGLM(257, fam) // not a multiple of any shard size
		for _, shardSize := range []int{1, 64, 100, 257, 1000} {
			sh := &ShardedGLM{Meta: ShardedGLMMeta{
				Family:    fam,
				Intercept: dense.Coefficients[0],
				Dims:      257,
				ShardSize: shardSize,
			}}
			for lo := 0; lo < 257; lo += shardSize {
				hi := lo + shardSize
				if hi > 257 {
					hi = 257
				}
				sh.Coef = append(sh.Coef, dense.Coefficients[1+lo:1+hi])
			}
			sh.Meta.Shards = len(sh.Coef)

			const rows = 37
			cols := make([][]float64, 257)
			for j := range cols {
				cols[j] = make([]float64, rows)
				for i := range cols[j] {
					cols[j][i] = math.Sin(float64(j*31+i)) * 2.5
				}
			}
			want := make([]float64, rows)
			got := make([]float64, rows)
			dense.PredictBlock(cols, want)
			sh.PredictBlock(cols, got)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("fam %s shardSize %d row %d: sharded %x != dense %x",
						fam, shardSize, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func TestShardedDeployLoadShardInfo(t *testing.T) {
	db, mgr := setup(t, 3)
	model := wideGLM(10, algos.Gaussian)
	// 3 coefficients per shard: 10 features -> 4 shards.
	if err := mgr.DeployGLMSharded("wide", "x", "sharded", model, 3*10); err != nil {
		t.Fatal(err)
	}
	if shards, ok := mgr.ShardInfo("wide"); !ok || shards != 4 {
		t.Fatalf("ShardInfo = %d, %v; want 4, true", shards, ok)
	}
	// The shard blobs exist alongside the metadata blob.
	for k := 0; k < 4; k++ {
		if _, err := db.DFS().Read(shardPath("wide", k)); err != nil {
			t.Fatalf("shard %d missing: %v", k, err)
		}
	}
	loaded, kind, err := mgr.Load("wide", -1)
	if err != nil || kind != TypeGLMSharded {
		t.Fatalf("load: %v kind=%q", err, kind)
	}
	sh, ok := loaded.(*ShardedGLM)
	if !ok {
		t.Fatalf("loaded %T, want *ShardedGLM", loaded)
	}
	if sh.Meta.Dims != 10 || sh.Meta.Shards != 4 || len(sh.Coef[3]) != 1 {
		t.Fatalf("meta = %+v, tail shard %d coefs", sh.Meta, len(sh.Coef[3]))
	}
	// R_Models row carries the sharded type tag and total byte size.
	rows, err := mgr.List()
	if err != nil || len(rows) != 1 || rows[0][2] != TypeGLMSharded {
		t.Fatalf("list = %v %v", rows, err)
	}

	// Dense models and unknown names are not sharded.
	if err := mgr.Deploy("dense", "x", "", glmModel()); err != nil {
		t.Fatal(err)
	}
	if _, ok := mgr.ShardInfo("dense"); ok {
		t.Fatal("dense model reported as sharded")
	}
	if _, ok := mgr.ShardInfo("missing"); ok {
		t.Fatal("unknown model reported as sharded")
	}

	// Drop removes every shard blob, not just the metadata blob.
	if err := mgr.Drop("wide"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DFS().Read(blobPath("wide")); err == nil {
		t.Fatal("metadata blob survived drop")
	}
	for k := 0; k < 4; k++ {
		if _, err := db.DFS().Read(shardPath("wide", k)); err == nil {
			t.Fatalf("shard %d survived drop", k)
		}
	}
}

// TestDeployAutoShardsOversizedGLM pins the acceptance property: a model
// larger than one transfer message (MaxBlobBytes) deploys and predicts
// anyway, transparently switching to the sharded layout.
func TestDeployAutoShardsOversizedGLM(t *testing.T) {
	db, mgr := setup(t, 2)
	dims := MaxBlobBytes/8 + 5000 // serialized form comfortably over budget
	model := wideGLM(dims, algos.Gaussian)
	if err := mgr.Deploy("big", "x", "oversized", model); err != nil {
		t.Fatal(err)
	}
	shards, ok := mgr.ShardInfo("big")
	if !ok || shards < 2 {
		t.Fatalf("oversized deploy not sharded: %d, %v", shards, ok)
	}
	// Every blob of the deployment fits the message budget.
	for _, info := range db.DFS().List() {
		if strings.HasPrefix(info.Name, "models/big") && info.Size > MaxBlobBytes {
			t.Fatalf("blob %s is %d bytes, over the %d budget", info.Name, info.Size, MaxBlobBytes)
		}
	}
	loaded, _, err := mgr.Load("big", -1)
	if err != nil {
		t.Fatal(err)
	}
	sh := loaded.(*ShardedGLM)
	const rows = 16
	cols := make([][]float64, dims)
	for j := range cols {
		cols[j] = make([]float64, rows)
		for i := range cols[j] {
			cols[j][i] = math.Cos(float64(j + i*7))
		}
	}
	want := make([]float64, rows)
	got := make([]float64, rows)
	model.PredictBlock(cols, want)
	sh.PredictBlock(cols, got)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: sharded %v != dense %v", i, got[i], want[i])
		}
	}
}

// TestShardedGlmPredictSQLBitIdentical runs GlmPredict end to end over a
// sharded deployment and compares against the dense deployment of the same
// model, bit for bit.
func TestShardedGlmPredictSQLBitIdentical(t *testing.T) {
	db, mgr := setup(t, 2)
	if err := db.Exec(`CREATE TABLE f5 (c0 FLOAT, c1 FLOAT, c2 FLOAT, c3 FLOAT, c4 FLOAT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		vals := make([]string, 5)
		for j := range vals {
			vals[j] = fmt.Sprintf("%g", math.Sin(float64(i*5+j))*3)
		}
		if err := db.Exec(fmt.Sprintf(`INSERT INTO f5 VALUES (%s)`, strings.Join(vals, ", "))); err != nil {
			t.Fatal(err)
		}
	}
	model := wideGLM(5, algos.Binomial)
	if err := mgr.Deploy("d5", "x", "", model); err != nil {
		t.Fatal(err)
	}
	if err := mgr.DeployGLMSharded("s5", "x", "", model, 2*10); err != nil { // 2 coefs/shard -> 3 shards
		t.Fatal(err)
	}
	q := `SELECT GlmPredict(c0, c1, c2, c3, c4 USING PARAMETERS model='%s') OVER (PARTITION BEST) FROM f5`
	dres, err := db.Query(fmt.Sprintf(q, "d5"))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := db.Query(fmt.Sprintf(q, "s5"))
	if err != nil {
		t.Fatal(err)
	}
	if dres.Len() != 40 || sres.Len() != 40 {
		t.Fatalf("row counts %d / %d", dres.Len(), sres.Len())
	}
	// PARTITION BEST order is deterministic for identical queries, so the
	// outputs align row for row.
	for i := range dres.Batch.Cols[0].Floats {
		d := dres.Batch.Cols[0].Floats[i]
		s := sres.Batch.Cols[0].Floats[i]
		if math.Float64bits(d) != math.Float64bits(s) {
			t.Fatalf("row %d: sharded %v != dense %v", i, s, d)
		}
	}
}
