package models

import (
	"fmt"
	"sync"
)

// Permission levels on deployed models (§5: "Models can be assigned
// security permissions to grant access or modification rights to database
// users"). The owner implicitly holds every permission.
type Permission uint8

const (
	// PermRead allows loading the model and running prediction functions.
	PermRead Permission = iota
	// PermModify allows dropping or replacing the model (implies read).
	PermModify
)

// String names the permission.
func (p Permission) String() string {
	if p == PermModify {
		return "MODIFY"
	}
	return "READ"
}

// acl tracks per-model grants. Owner is recorded at deploy time.
type acl struct {
	mu     sync.RWMutex
	owner  map[string]string                // model -> owner
	grants map[string]map[string]Permission // model -> user -> perm
	public map[string]bool                  // model -> readable by all
}

func newACL() *acl {
	return &acl{
		owner:  map[string]string{},
		grants: map[string]map[string]Permission{},
		public: map[string]bool{},
	}
}

func (a *acl) register(model, owner string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.owner[model] = owner
	// Deploys default to public-read: any database user can predict, as
	// with the paper's shared R_Models catalog; Restrict() tightens this.
	a.public[model] = true
}

func (a *acl) forget(model string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.owner, model)
	delete(a.grants, model)
	delete(a.public, model)
}

func (a *acl) grant(model, user string, p Permission) {
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.grants[model]
	if !ok {
		g = map[string]Permission{}
		a.grants[model] = g
	}
	g[user] = p
}

func (a *acl) revoke(model, user string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.grants[model], user)
}

func (a *acl) restrict(model string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.public[model] = false
}

// allowed reports whether user holds permission p on model. Empty user
// means an internal/administrative caller and is always allowed.
func (a *acl) allowed(model, user string, p Permission) bool {
	if user == "" {
		return true
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.owner[model] == user {
		return true
	}
	if p == PermRead && a.public[model] {
		return true
	}
	g, ok := a.grants[model][user]
	if !ok {
		return false
	}
	return g >= p
}

// Grant gives user the permission on a deployed model. Only the owner (or
// an administrative caller with empty granter) may grant.
func (m *Manager) Grant(model, granter, user string, p Permission) error {
	if exists, err := m.exists(model); err != nil || !exists {
		if err != nil {
			return err
		}
		return fmt.Errorf("models: model %q does not exist", model)
	}
	if granter != "" && m.acl.ownerOf(model) != granter {
		return fmt.Errorf("models: only the owner may grant on %q", model)
	}
	m.acl.grant(model, user, p)
	return nil
}

// Revoke removes a user's grant.
func (m *Manager) Revoke(model, granter, user string) error {
	if granter != "" && m.acl.ownerOf(model) != granter {
		return fmt.Errorf("models: only the owner may revoke on %q", model)
	}
	m.acl.revoke(model, user)
	return nil
}

// Restrict turns off default public-read: only the owner and explicit
// grantees can use the model afterwards.
func (m *Manager) Restrict(model, caller string) error {
	if caller != "" && m.acl.ownerOf(model) != caller {
		return fmt.Errorf("models: only the owner may restrict %q", model)
	}
	m.acl.restrict(model)
	return nil
}

func (a *acl) ownerOf(model string) string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.owner[model]
}

// LoadAs fetches a model enforcing read permission for user.
func (m *Manager) LoadAs(name string, node int, user string) (any, string, error) {
	if !m.acl.allowed(name, user, PermRead) {
		return nil, "", fmt.Errorf("models: user %q lacks READ on model %q", user, name)
	}
	return m.Load(name, node)
}

// DropAs drops a model enforcing modify permission for user.
func (m *Manager) DropAs(name, user string) error {
	if !m.acl.allowed(name, user, PermModify) {
		return fmt.Errorf("models: user %q lacks MODIFY on model %q", user, name)
	}
	return m.Drop(name)
}
