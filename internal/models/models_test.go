package models

import (
	"math"
	"strings"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/vertica"
)

func setup(t *testing.T, nodes int) (*vertica.DB, *Manager) {
	t.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: nodes, BlockRows: 128, UDFInstancesPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, mgr
}

func kmeansModel() *algos.KmeansModel {
	return &algos.KmeansModel{
		K:       2,
		Centers: [][]float64{{0, 0}, {10, 10}},
	}
}

func glmModel() *algos.GLMModel {
	return &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{1, 2, -0.5}}
}

func logisticModel() *algos.GLMModel {
	return &algos.GLMModel{Family: algos.Binomial, Coefficients: []float64{0, 3}}
}

func TestSerializeRoundTrip(t *testing.T) {
	cases := []struct {
		model any
		kind  string
	}{
		{kmeansModel(), TypeKmeans},
		{glmModel(), TypeRegression},
		{logisticModel(), TypeGLM},
		{&algos.ForestModel{Trees: []algos.Tree{{Nodes: []algos.TreeNode{{Feature: -1, Value: 3}}}}, Features: 1}, TypeRandomForest},
	}
	for _, c := range cases {
		data, kind, err := Serialize(c.model)
		if err != nil || kind != c.kind {
			t.Fatalf("serialize %T: %v kind=%q", c.model, err, kind)
		}
		back, kind2, err := Deserialize(data)
		if err != nil || kind2 != c.kind {
			t.Fatalf("deserialize: %v kind=%q", err, kind2)
		}
		switch m := back.(type) {
		case *algos.KmeansModel:
			if m.Centers[1][0] != 10 {
				t.Fatal("kmeans payload corrupted")
			}
		case *algos.GLMModel:
			if len(m.Coefficients) == 0 {
				t.Fatal("glm payload corrupted")
			}
		case *algos.ForestModel:
			if m.Predict([]float64{0}) != 3 {
				t.Fatal("forest payload corrupted")
			}
		}
	}
	if _, _, err := Serialize("not a model"); err == nil {
		t.Fatal("unsupported type should fail")
	}
	if _, _, err := Deserialize([]byte("garbage")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestDeployListDrop(t *testing.T) {
	_, mgr := setup(t, 3)
	if err := mgr.Deploy("model1", "X", "clustering", kmeansModel()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Deploy("model2", "Y", "forecasting", glmModel()); err != nil {
		t.Fatal(err)
	}
	rows, err := mgr.List()
	if err != nil || len(rows) != 2 {
		t.Fatalf("list = %v %v", rows, err)
	}
	// Fig. 10 shape: model | owner | type | size | description.
	if rows[0][0] != "model1" || rows[0][1] != "X" || rows[0][2] != TypeKmeans || rows[0][4] != "clustering" {
		t.Fatalf("row = %v", rows[0])
	}
	if rows[1][2] != TypeRegression {
		t.Fatalf("row = %v", rows[1])
	}
	if rows[0][3].(int64) <= 0 {
		t.Fatal("size should be positive")
	}
	// Duplicate deploy fails.
	if err := mgr.Deploy("model1", "X", "", kmeansModel()); err == nil {
		t.Fatal("duplicate deploy should fail")
	}
	// Load round trip.
	m, kind, err := mgr.Load("model1", -1)
	if err != nil || kind != TypeKmeans {
		t.Fatalf("load: %v %q", err, kind)
	}
	if m.(*algos.KmeansModel).Centers[1][1] != 10 {
		t.Fatal("loaded model corrupted")
	}
	// Drop.
	if err := mgr.Drop("model1"); err != nil {
		t.Fatal(err)
	}
	rows, _ = mgr.List()
	if len(rows) != 1 || rows[0][0] != "model2" {
		t.Fatalf("after drop list = %v", rows)
	}
	if _, _, err := mgr.Load("model1", -1); err == nil {
		t.Fatal("load after drop should fail")
	}
	if err := mgr.Drop("model1"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestDeployValidation(t *testing.T) {
	_, mgr := setup(t, 2)
	if err := mgr.Deploy("bad name!", "X", "", kmeansModel()); err == nil {
		t.Fatal("invalid name should fail")
	}
	if err := mgr.Deploy("m", "X", "", 42); err == nil {
		t.Fatal("unsupported model should fail")
	}
}

func TestRModelsQueryableViaSQL(t *testing.T) {
	db, mgr := setup(t, 2)
	_ = mgr.Deploy("m1", "alice", "it's a model", kmeansModel())
	res, err := db.Query(`SELECT model, owner, description FROM R_Models`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0][1] != "alice" || rows[0][2] != "it's a model" {
		t.Fatalf("R_Models rows = %v", rows)
	}
}

func loadPointsTable(t *testing.T, db *vertica.DB, n int) {
	t.Helper()
	if err := db.Exec(`CREATE TABLE pts (a FLOAT, b FLOAT)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	batch := colstore.NewBatch(schema)
	for i := 0; i < n; i++ {
		// First half near (0,0), second half near (10,10).
		base := 0.0
		if i >= n/2 {
			base = 10
		}
		_ = batch.AppendRow(base+float64(i%5)*0.01, base+float64(i%3)*0.01)
	}
	if err := db.Load("pts", batch); err != nil {
		t.Fatal(err)
	}
}

func TestKmeansPredictSQL(t *testing.T) {
	db, mgr := setup(t, 3)
	loadPointsTable(t, db, 600)
	if err := mgr.Deploy("km", "x", "", kmeansModel()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 600 {
		t.Fatalf("predicted %d rows", res.Len())
	}
	zero, one := 0, 0
	for _, v := range res.Batch.Cols[0].Ints {
		switch v {
		case 0:
			zero++
		case 1:
			one++
		default:
			t.Fatalf("cluster id %d out of range", v)
		}
	}
	if zero != 300 || one != 300 {
		t.Fatalf("cluster counts = %d/%d", zero, one)
	}
}

func TestGlmPredictSQLMatchesInEngine(t *testing.T) {
	db, mgr := setup(t, 2)
	loadPointsTable(t, db, 100)
	model := glmModel()
	if err := mgr.Deploy("reg", "x", "", model); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT GlmPredict(a, b USING PARAMETERS model='reg') OVER (PARTITION BEST) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 100 {
		t.Fatalf("rows = %d", res.Len())
	}
	// Row-for-row equality against in-engine predictions: read the table
	// back and compare multisets of (prediction).
	raw, _ := db.Query(`SELECT a, b FROM pts`)
	want := map[float64]int{}
	for _, r := range raw.Rows() {
		want[model.Predict([]float64{r[0].(float64), r[1].(float64)})]++
	}
	got := map[float64]int{}
	for _, v := range res.Batch.Cols[0].Floats {
		got[v]++
	}
	if len(got) != len(want) {
		t.Fatalf("prediction multiset size %d vs %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("prediction %v count %d vs %d", k, got[k], n)
		}
	}
}

func TestGlmPredictLogisticProbabilities(t *testing.T) {
	db, mgr := setup(t, 2)
	if err := db.Exec(`CREATE TABLE lx (x FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO lx VALUES (-10.0), (0.0), (10.0)`); err != nil {
		t.Fatal(err)
	}
	_ = mgr.Deploy("logit", "x", "", logisticModel())
	res, err := db.Query(`SELECT GlmPredict(x USING PARAMETERS model='logit') OVER (PARTITION BEST) FROM lx`)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Batch.Cols[0].Floats {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
	// One of them is the x=0 row → p=0.5.
	found := false
	for _, p := range res.Batch.Cols[0].Floats {
		if math.Abs(p-0.5) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatal("x=0 should give p=0.5")
	}
}

func TestRfPredictSQL(t *testing.T) {
	db, mgr := setup(t, 2)
	loadPointsTable(t, db, 50)
	forest := &algos.ForestModel{
		Trees: []algos.Tree{{Nodes: []algos.TreeNode{
			{Feature: 0, Split: 5, Left: 1, Right: 2},
			{Feature: -1, Value: 0},
			{Feature: -1, Value: 1},
		}}},
		Features: 2,
	}
	_ = mgr.Deploy("rf", "x", "", forest)
	res, err := db.Query(`SELECT RfPredict(a, b USING PARAMETERS model='rf') OVER (PARTITION BEST) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi int
	for _, v := range res.Batch.Cols[0].Floats {
		if v == 0 {
			lo++
		} else if v == 1 {
			hi++
		}
	}
	if lo != 25 || hi != 25 {
		t.Fatalf("forest split = %d/%d", lo, hi)
	}
}

func TestPredictErrors(t *testing.T) {
	db, mgr := setup(t, 2)
	loadPointsTable(t, db, 10)
	_ = mgr.Deploy("km", "x", "", kmeansModel())
	_ = mgr.Deploy("reg", "x", "", glmModel())
	cases := []string{
		`SELECT KmeansPredict(a, b USING PARAMETERS model='missing') OVER (PARTITION BEST) FROM pts`,
		`SELECT KmeansPredict(a, b) OVER (PARTITION BEST) FROM pts`,                          // no model param
		`SELECT GlmPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`, // wrong family
		`SELECT KmeansPredict(a USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`, // wrong feature count
		`SELECT KmeansPredict(USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`,   // no features
	}
	for _, q := range cases {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestPredictPartitionByColumn(t *testing.T) {
	// PARTITION BY also works: prediction grouped by a key column.
	db, mgr := setup(t, 2)
	if err := db.Exec(`CREATE TABLE g (k INTEGER, a FLOAT, b FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO g VALUES (1, 0.0, 0.0), (1, 0.1, 0.1), (2, 10.0, 10.0)`); err != nil {
		t.Fatal(err)
	}
	_ = mgr.Deploy("km", "x", "", kmeansModel())
	res, err := db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BY k) FROM g`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestModelSurvivesNodeFailure(t *testing.T) {
	db, mgr := setup(t, 3)
	loadPointsTable(t, db, 60)
	_ = mgr.Deploy("km", "x", "", kmeansModel())
	info, err := db.DFS().Stat("models/km")
	if err != nil {
		t.Fatal(err)
	}
	// Fail one replica: predictions must still work (fault tolerance, §5).
	if err := db.DFS().SetNodeDown(info.Replicas[0], true); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 60 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestSQLEscapeInDescriptions(t *testing.T) {
	_, mgr := setup(t, 2)
	desc := "it's; DROP TABLE R_Models"
	if err := mgr.Deploy("m", "o'brien", desc, kmeansModel()); err != nil {
		t.Fatal(err)
	}
	rows, err := mgr.List()
	if err != nil || len(rows) != 1 {
		t.Fatalf("list after tricky desc: %v %v", rows, err)
	}
	if !strings.Contains(rows[0][4].(string), "DROP TABLE") {
		t.Fatalf("description mangled: %q", rows[0][4])
	}
	if rows[0][1] != "o'brien" {
		t.Fatalf("owner mangled: %q", rows[0][1])
	}
}

// --- Bit-pinning: the vectorized scorers against the old row-at-a-time path ---

// referenceRows scores the raw table through gatherRow + the row-at-a-time
// model scorers — the exact pre-vectorization code path — and returns the
// multiset of result bit patterns.
func referenceRows(t *testing.T, db *vertica.DB, query string, score func(row []float64) float64) map[uint64]int {
	t.Helper()
	raw, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]int{}
	var row []float64
	for r := 0; r < raw.Len(); r++ {
		row = gatherRow(row[:0], raw.Batch, r)
		want[math.Float64bits(score(row))]++
	}
	return want
}

func floatBitsMultiset(vals []float64) map[uint64]int {
	got := map[uint64]int{}
	for _, v := range vals {
		got[math.Float64bits(v)]++
	}
	return got
}

func diffMultisets(t *testing.T, got, want map[uint64]int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct outputs, reference has %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: bit pattern %x seen %d times, reference %d", label, k, got[k], n)
		}
	}
}

// loadMixedTable creates a table with an INTEGER and a FLOAT feature so the
// block scorer's int→float conversion path is pinned too. Values mix
// magnitudes and signs, spanning several 2048-row scoring blocks.
func loadMixedTable(t *testing.T, db *vertica.DB, n int) {
	t.Helper()
	if err := db.Exec(`CREATE TABLE mixed (xi INTEGER, yf FLOAT)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "xi", Type: colstore.TypeInt64},
		{Name: "yf", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < n; i++ {
		_ = b.AppendRow(int64(i%97-48), float64(i)*0.3-0.123*float64(i%13))
	}
	if err := db.Load("mixed", b); err != nil {
		t.Fatal(err)
	}
}

func TestGlmPredictBitsMatchRowPath(t *testing.T) {
	db, mgr := setup(t, 3)
	loadMixedTable(t, db, 5000)
	lm := glmModel() // Gaussian: the LM case
	logit := &algos.GLMModel{Family: algos.Binomial, Coefficients: []float64{0.1, 0.02, -0.3}}
	_ = mgr.Deploy("lm", "x", "", lm)
	_ = mgr.Deploy("logit", "x", "", logit)
	for name, m := range map[string]*algos.GLMModel{"lm": lm, "logit": logit} {
		res, err := db.Query(`SELECT GlmPredict(xi, yf USING PARAMETERS model='` + name + `') OVER (PARTITION BEST) FROM mixed`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 5000 {
			t.Fatalf("%s: %d rows", name, res.Len())
		}
		want := referenceRows(t, db, `SELECT xi, yf FROM mixed`, m.Predict)
		diffMultisets(t, floatBitsMultiset(res.Batch.Cols[0].Floats), want, name)
	}
}

func TestKmeansPredictBitsMatchRowPath(t *testing.T) {
	db, mgr := setup(t, 3)
	loadMixedTable(t, db, 4100)
	m := &algos.KmeansModel{K: 3, Centers: [][]float64{{0, 0}, {-20, 300}, {40, 900}}}
	_ = mgr.Deploy("km", "x", "", m)
	res, err := db.Query(`SELECT KmeansPredict(xi, yf USING PARAMETERS model='km') OVER (PARTITION BEST) FROM mixed`)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRows(t, db, `SELECT xi, yf FROM mixed`, func(row []float64) float64 {
		return float64(m.Assign(row))
	})
	got := map[uint64]int{}
	for _, v := range res.Batch.Cols[0].Ints {
		got[math.Float64bits(float64(v))]++
	}
	diffMultisets(t, got, want, "kmeans")
}

func TestRfPredictBitsMatchRowPath(t *testing.T) {
	db, mgr := setup(t, 3)
	loadMixedTable(t, db, 4100)
	tree := func(feat int, split, lo, hi float64) algos.Tree {
		return algos.Tree{Nodes: []algos.TreeNode{
			{Feature: feat, Split: split, Left: 1, Right: 2},
			{Feature: -1, Value: lo},
			{Feature: -1, Value: hi},
		}}
	}
	reg := &algos.ForestModel{
		Trees:    []algos.Tree{tree(0, 3, 0.125, 7.5), tree(1, 100, -2, 0.33), tree(0, -10, 1, 2)},
		Features: 2,
	}
	clf := &algos.ForestModel{
		Trees:    append([]algos.Tree{}, reg.Trees...),
		Classify: true,
		Features: 2,
	}
	_ = mgr.Deploy("rfreg", "x", "", reg)
	_ = mgr.Deploy("rfclf", "x", "", clf)
	for name, m := range map[string]*algos.ForestModel{"rfreg": reg, "rfclf": clf} {
		res, err := db.Query(`SELECT RfPredict(xi, yf USING PARAMETERS model='` + name + `') OVER (PARTITION BEST) FROM mixed`)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceRows(t, db, `SELECT xi, yf FROM mixed`, m.Predict)
		diffMultisets(t, floatBitsMultiset(res.Batch.Cols[0].Floats), want, name)
	}
}

// TestPredictPartitionByBitsMatchRowPath pins the PARTITION BY path: rows
// route through per-group partitions (and the AppendWriter merge), yet every
// prediction bit must still match the row-at-a-time reference.
func TestPredictPartitionByBitsMatchRowPath(t *testing.T) {
	db, mgr := setup(t, 2)
	if err := db.Exec(`CREATE TABLE gm (k INTEGER, xi INTEGER, yf FLOAT)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "k", Type: colstore.TypeInt64},
		{Name: "xi", Type: colstore.TypeInt64},
		{Name: "yf", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < 900; i++ {
		_ = b.AppendRow(int64(i%7), int64(i-450), float64(i)*1.75-3)
	}
	if err := db.Load("gm", b); err != nil {
		t.Fatal(err)
	}
	m := glmModel()
	km := &algos.KmeansModel{K: 2, Centers: [][]float64{{0, 0}, {100, 700}}}
	_ = mgr.Deploy("reg", "x", "", m)
	_ = mgr.Deploy("km", "x", "", km)

	res, err := db.Query(`SELECT GlmPredict(xi, yf USING PARAMETERS model='reg') OVER (PARTITION BY k) FROM gm`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 900 {
		t.Fatalf("rows = %d", res.Len())
	}
	want := referenceRows(t, db, `SELECT xi, yf FROM gm`, m.Predict)
	diffMultisets(t, floatBitsMultiset(res.Batch.Cols[0].Floats), want, "glm partition-by")

	kres, err := db.Query(`SELECT KmeansPredict(xi, yf USING PARAMETERS model='km') OVER (PARTITION BY k) FROM gm`)
	if err != nil {
		t.Fatal(err)
	}
	kwant := referenceRows(t, db, `SELECT xi, yf FROM gm`, func(row []float64) float64 {
		return float64(km.Assign(row))
	})
	kgot := map[uint64]int{}
	for _, v := range kres.Batch.Cols[0].Ints {
		kgot[math.Float64bits(float64(v))]++
	}
	diffMultisets(t, kgot, kwant, "kmeans partition-by")
}
