package models

import (
	"fmt"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/udf"
)

// predictBlockRows is the scoring block size: column-major blocks of 2048
// rows, matching the IRLS chunk size, so feature slices stay cache-resident
// while each model coefficient/center/tree streams over them.
const predictBlockRows = 2048

// predictUDF is the shared implementation behind KmeansPredict, GlmPredict
// and RfPredict (§5, Fig. 11). Each parallel instance fetches the named
// model from DFS (local replica preferred), deserializes it once, and scores
// its partition of rows. `want` documents the expected family; a model of a
// different family is rejected with a clear error.
//
// Scoring is vectorized: rows are processed in column-major blocks through
// the algos block scorers (bit-identical to the row-at-a-time scorers), and
// when the writer supports the ReusableWriter contract the output batch and
// its prediction slice are reused across blocks, making the steady-state
// scoring loop allocation-free.
type predictUDF struct {
	want string
}

// OutputSchema: a single prediction column. KmeansPredict emits the nearest
// cluster index (INTEGER); the regression predictors emit FLOAT.
func (p predictUDF) OutputSchema(in colstore.Schema, params udf.Params) (colstore.Schema, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("models: prediction needs at least one feature column")
	}
	for _, c := range in {
		if c.Type != colstore.TypeFloat64 && c.Type != colstore.TypeInt64 {
			return nil, fmt.Errorf("models: feature column %q is %v, need numeric", c.Name, c.Type)
		}
	}
	if _, err := params.String("model"); err != nil {
		return nil, err
	}
	if p.want == TypeKmeans {
		return colstore.Schema{{Name: "cluster", Type: colstore.TypeInt64}}, nil
	}
	return colstore.Schema{{Name: "prediction", Type: colstore.TypeFloat64}}, nil
}

func (p predictUDF) ProcessPartition(ctx *udf.Ctx, in udf.BatchReader, out udf.BatchWriter) error {
	svc, err := ctx.Service(ServiceName)
	if err != nil {
		return err
	}
	mgr, ok := svc.(*Manager)
	if !ok {
		return fmt.Errorf("models: service %q is %T, not *Manager", ServiceName, svc)
	}
	name, err := ctx.Params.String("model")
	if err != nil {
		return err
	}
	// Retrieve from DFS as seen from this database node; deserialize once
	// per instance (the paper's "retrieve the models from DFS, deserialize
	// and load them in R"). An optional user parameter enforces the model's
	// access permissions.
	user := ctx.Params.StringOr("user", "")
	model, kind, err := mgr.LoadAs(name, ctx.NodeID, user)
	if err != nil {
		return err
	}
	score, assign, dims, err := p.blockScorer(model, kind)
	if err != nil {
		return err
	}

	kmeans := p.want == TypeKmeans
	var outSchema colstore.Schema
	if kmeans {
		outSchema = colstore.Schema{{Name: "cluster", Type: colstore.TypeInt64}}
	} else {
		outSchema = colstore.Schema{{Name: "prediction", Type: colstore.TypeFloat64}}
	}
	// Pooled output: when the writer consumes rows synchronously (the
	// ReusableWriter contract), one output batch and one prediction slice
	// serve every block. A retaining writer gets fresh slices instead.
	_, reusable := out.(udf.ReusableWriter)
	var reuseBatch *colstore.Batch
	var fscratch []float64
	var iscratch []int64
	if reusable {
		reuseBatch = &colstore.Batch{Schema: outSchema, Cols: []*colstore.Vector{{Type: outSchema[0].Type}}}
		if kmeans {
			iscratch = make([]int64, predictBlockRows)
		} else {
			fscratch = make([]float64, predictBlockRows)
		}
	}

	feat := make([][]float64, 0, 8) // column views for the current block
	var conv [][]float64            // per-column int→float conversion scratch
	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if dims > 0 && len(b.Cols) != dims {
			return fmt.Errorf("models: model %q expects %d features, query passed %d", name, dims, len(b.Cols))
		}
		if conv == nil {
			conv = make([][]float64, len(b.Cols))
		}
		n := b.Len()
		for lo := 0; lo < n; lo += predictBlockRows {
			hi := lo + predictBlockRows
			if hi > n {
				hi = n
			}
			rows := hi - lo
			// Column-major feature views: float columns are zero-copy
			// subslices; integer columns convert once per block into reused
			// scratch (the same float64(int) widening gatherRow applied).
			feat = feat[:0]
			for j, col := range b.Cols {
				switch col.Type {
				case colstore.TypeFloat64:
					feat = append(feat, col.Floats[lo:hi])
				case colstore.TypeInt64:
					if cap(conv[j]) < rows {
						conv[j] = make([]float64, predictBlockRows)
					}
					dst := conv[j][:rows]
					for i, v := range col.Ints[lo:hi] {
						dst[i] = float64(v)
					}
					feat = append(feat, dst)
				}
			}
			var ob *colstore.Batch
			if kmeans {
				preds := iscratch
				if !reusable {
					preds = make([]int64, rows)
				}
				preds = preds[:rows]
				assign(feat, preds)
				if reusable {
					reuseBatch.Cols[0].Ints = preds
					ob = reuseBatch
				} else {
					ob = &colstore.Batch{Schema: outSchema, Cols: []*colstore.Vector{colstore.IntVector(preds)}}
				}
			} else {
				preds := fscratch
				if !reusable {
					preds = make([]float64, rows)
				}
				preds = preds[:rows]
				score(feat, preds)
				if reusable {
					reuseBatch.Cols[0].Floats = preds
					ob = reuseBatch
				} else {
					ob = &colstore.Batch{Schema: outSchema, Cols: []*colstore.Vector{colstore.FloatVector(preds)}}
				}
			}
			if _, err := udf.WriteMaybeReuse(out, ob); err != nil {
				return err
			}
		}
	}
}

// blockScorer adapts the concrete model to column-major block scorers and
// reports the expected feature count (0 = unchecked). Exactly one of score /
// assign is non-nil, matching the UDF's output type.
func (p predictUDF) blockScorer(model any, kind string) (score func([][]float64, []float64), assign func([][]float64, []int64), dims int, err error) {
	switch m := model.(type) {
	case *algos.KmeansModel:
		if p.want != TypeKmeans {
			return nil, nil, 0, fmt.Errorf("models: %s applied to a kmeans model", p.funcName())
		}
		if len(m.Centers) > 0 {
			dims = len(m.Centers[0])
		}
		var sc algos.AssignScratch
		return nil, func(cols [][]float64, out []int64) { m.AssignBlock(cols, out, &sc) }, dims, nil
	case *algos.GLMModel:
		if p.want != TypeGLM {
			return nil, nil, 0, fmt.Errorf("models: %s applied to a %s model", p.funcName(), kind)
		}
		return m.PredictBlock, nil, len(m.Coefficients) - 1, nil
	case *ShardedGLM:
		if p.want != TypeGLM {
			return nil, nil, 0, fmt.Errorf("models: %s applied to a %s model", p.funcName(), kind)
		}
		return m.PredictBlock, nil, m.Meta.Dims, nil
	case *algos.ForestModel:
		if p.want != TypeRandomForest {
			return nil, nil, 0, fmt.Errorf("models: %s applied to a randomforest model", p.funcName())
		}
		return m.PredictBlock, nil, m.Features, nil
	default:
		return nil, nil, 0, fmt.Errorf("models: cannot score model of type %T", model)
	}
}

func (p predictUDF) funcName() string {
	switch p.want {
	case TypeKmeans:
		return "KmeansPredict"
	case TypeRandomForest:
		return "RfPredict"
	default:
		return "GlmPredict"
	}
}

// gatherRow is the row-at-a-time feature marshaller of the pre-vectorized
// scorer, kept as the reference implementation the bit-pinning tests score
// against.
func gatherRow(dst []float64, b *colstore.Batch, r int) []float64 {
	for _, col := range b.Cols {
		switch col.Type {
		case colstore.TypeFloat64:
			dst = append(dst, col.Floats[r])
		case colstore.TypeInt64:
			dst = append(dst, float64(col.Ints[r]))
		}
	}
	return dst
}
