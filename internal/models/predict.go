package models

import (
	"fmt"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/udf"
)

// predictUDF is the shared implementation behind KmeansPredict, GlmPredict
// and RfPredict (§5, Fig. 11). Each parallel instance fetches the named
// model from DFS (local replica preferred), deserializes it once, and scores
// its partition of rows. `want` documents the expected family; a model of a
// different family is rejected with a clear error.
type predictUDF struct {
	want string
}

// OutputSchema: a single prediction column. KmeansPredict emits the nearest
// cluster index (INTEGER); the regression predictors emit FLOAT.
func (p predictUDF) OutputSchema(in colstore.Schema, params udf.Params) (colstore.Schema, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("models: prediction needs at least one feature column")
	}
	for _, c := range in {
		if c.Type != colstore.TypeFloat64 && c.Type != colstore.TypeInt64 {
			return nil, fmt.Errorf("models: feature column %q is %v, need numeric", c.Name, c.Type)
		}
	}
	if _, err := params.String("model"); err != nil {
		return nil, err
	}
	if p.want == TypeKmeans {
		return colstore.Schema{{Name: "cluster", Type: colstore.TypeInt64}}, nil
	}
	return colstore.Schema{{Name: "prediction", Type: colstore.TypeFloat64}}, nil
}

func (p predictUDF) ProcessPartition(ctx *udf.Ctx, in udf.BatchReader, out udf.BatchWriter) error {
	svc, err := ctx.Service(ServiceName)
	if err != nil {
		return err
	}
	mgr, ok := svc.(*Manager)
	if !ok {
		return fmt.Errorf("models: service %q is %T, not *Manager", ServiceName, svc)
	}
	name, err := ctx.Params.String("model")
	if err != nil {
		return err
	}
	// Retrieve from DFS as seen from this database node; deserialize once
	// per instance (the paper's "retrieve the models from DFS, deserialize
	// and load them in R"). An optional user parameter enforces the model's
	// access permissions.
	user := ctx.Params.StringOr("user", "")
	model, kind, err := mgr.LoadAs(name, ctx.NodeID, user)
	if err != nil {
		return err
	}
	scorer, dims, err := p.scorer(model, kind)
	if err != nil {
		return err
	}
	row := make([]float64, 0, 16)
	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if dims > 0 && len(b.Cols) != dims {
			return fmt.Errorf("models: model %q expects %d features, query passed %d", name, dims, len(b.Cols))
		}
		n := b.Len()
		if p.want == TypeKmeans {
			preds := make([]int64, n)
			for r := 0; r < n; r++ {
				row = gatherRow(row[:0], b, r)
				preds[r] = int64(scorer(row))
			}
			ob := &colstore.Batch{
				Schema: colstore.Schema{{Name: "cluster", Type: colstore.TypeInt64}},
				Cols:   []*colstore.Vector{colstore.IntVector(preds)},
			}
			if err := out.Write(ob); err != nil {
				return err
			}
			continue
		}
		preds := make([]float64, n)
		for r := 0; r < n; r++ {
			row = gatherRow(row[:0], b, r)
			preds[r] = scorer(row)
		}
		ob := &colstore.Batch{
			Schema: colstore.Schema{{Name: "prediction", Type: colstore.TypeFloat64}},
			Cols:   []*colstore.Vector{colstore.FloatVector(preds)},
		}
		if err := out.Write(ob); err != nil {
			return err
		}
	}
}

// scorer adapts the concrete model to a row-scoring closure and reports the
// expected feature count (0 = unchecked).
func (p predictUDF) scorer(model any, kind string) (func([]float64) float64, int, error) {
	switch m := model.(type) {
	case *algos.KmeansModel:
		if p.want != TypeKmeans {
			return nil, 0, fmt.Errorf("models: %s applied to a kmeans model", p.funcName())
		}
		dims := 0
		if len(m.Centers) > 0 {
			dims = len(m.Centers[0])
		}
		return func(row []float64) float64 { return float64(m.Assign(row)) }, dims, nil
	case *algos.GLMModel:
		if p.want != TypeGLM {
			return nil, 0, fmt.Errorf("models: %s applied to a %s model", p.funcName(), kind)
		}
		return m.Predict, len(m.Coefficients) - 1, nil
	case *algos.ForestModel:
		if p.want != TypeRandomForest {
			return nil, 0, fmt.Errorf("models: %s applied to a randomforest model", p.funcName())
		}
		return m.Predict, m.Features, nil
	default:
		return nil, 0, fmt.Errorf("models: cannot score model of type %T", model)
	}
}

func (p predictUDF) funcName() string {
	switch p.want {
	case TypeKmeans:
		return "KmeansPredict"
	case TypeRandomForest:
		return "RfPredict"
	default:
		return "GlmPredict"
	}
}

func gatherRow(dst []float64, b *colstore.Batch, r int) []float64 {
	for _, col := range b.Cols {
		switch col.Type {
		case colstore.TypeFloat64:
			dst = append(dst, col.Floats[r])
		case colstore.TypeInt64:
			dst = append(dst, float64(col.Ints[r]))
		}
	}
	return dst
}
