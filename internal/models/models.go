// Package models implements §5 of the paper: saving machine-learning models
// created in Distributed R into the database and applying them with
// in-database parallel prediction functions. Models are serialized (gob)
// and stored as binary blobs in the database's distributed file system —
// "since models can be large ... we don't store them as part of a regular
// table" — while their metadata lives in an actual R_Models table (Fig. 10)
// queryable with plain SQL. Prediction functions (KmeansPredict, GlmPredict,
// RfPredict) are transform UDFs: the query planner fans out parallel
// instances, each of which fetches the model from DFS (preferring the local
// replica), deserializes it, and scores its partition of rows.
package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"regexp"

	"verticadr/internal/algos"
	"verticadr/internal/dfs"
	"verticadr/internal/faults"
	"verticadr/internal/sqlexec"
	"verticadr/internal/udf"
	"verticadr/internal/verr"
)

// Model type tags stored in R_Models.type.
const (
	TypeKmeans       = "kmeans"
	TypeRegression   = "regression"
	TypeGLM          = "glm"
	TypeRandomForest = "randomforest"
)

// ServiceName is the UDF service key for the model manager.
const ServiceName = "models"

// MetaTable is the metadata table name (Fig. 10).
const MetaTable = "R_Models"

// envelope is the gob wire format: exactly one payload field is set.
// Sharded deployments store only the small metadata document here; the
// coefficient array lives in separate shard blobs (sharded.go).
type envelope struct {
	Kind    string
	Kmeans  *algos.KmeansModel
	GLM     *algos.GLMModel
	Forest  *algos.ForestModel
	Sharded *ShardedGLMMeta
}

// Serialize encodes a supported model, returning its bytes and type tag.
func Serialize(model any) ([]byte, string, error) {
	env := envelope{}
	switch m := model.(type) {
	case *algos.KmeansModel:
		env.Kind, env.Kmeans = TypeKmeans, m
	case *algos.GLMModel:
		if m.Family == algos.Gaussian {
			env.Kind = TypeRegression
		} else {
			env.Kind = TypeGLM
		}
		env.GLM = m
	case *algos.ForestModel:
		env.Kind, env.Forest = TypeRandomForest, m
	default:
		return nil, "", fmt.Errorf("models: unsupported model type %T", model)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, "", fmt.Errorf("models: serialize: %w", err)
	}
	return buf.Bytes(), env.Kind, nil
}

// Deserialize decodes model bytes back into the concrete model value.
func Deserialize(data []byte) (any, string, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, "", fmt.Errorf("models: deserialize: %w", err)
	}
	switch {
	case env.Kmeans != nil:
		return env.Kmeans, env.Kind, nil
	case env.GLM != nil:
		return env.GLM, env.Kind, nil
	case env.Forest != nil:
		return env.Forest, env.Kind, nil
	case env.Sharded != nil:
		return env.Sharded, env.Kind, nil
	default:
		return nil, "", fmt.Errorf("models: empty model envelope (kind %q)", env.Kind)
	}
}

// Database is the database surface the manager needs; internal/vertica.DB
// satisfies it.
type Database interface {
	Exec(sql string) error
	Query(sql string) (*sqlexec.Result, error)
	UDFs() *udf.Registry
	RegisterService(name string, svc any)
	DFS() *dfs.DFS
}

var nameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_.-]*$`)

// Manager deploys models to the database and serves them to prediction UDFs.
type Manager struct {
	db    Database
	acl   *acl
	cache *modelCache
}

// NewManager creates the R_Models metadata table, registers the manager as
// a UDF service, and installs the prediction functions. On a recovered
// durable database the metadata table (and the model blobs it describes)
// already exist: the manager adopts the surviving rows instead of failing,
// rebuilding its in-memory ACL from the persisted owner column.
func NewManager(db Database) (*Manager, error) {
	m := &Manager{db: db, acl: newACL(), cache: newModelCache()}
	if res, err := db.Query(`SELECT model, owner FROM ` + MetaTable); err == nil {
		for _, r := range res.Rows() {
			m.acl.register(r[0].(string), r[1].(string))
		}
	} else {
		err := db.Exec(`CREATE TABLE ` + MetaTable + ` (model VARCHAR, owner VARCHAR, type VARCHAR, size INTEGER, description VARCHAR)`)
		if err != nil {
			return nil, fmt.Errorf("models: create metadata table: %w", err)
		}
	}
	db.RegisterService(ServiceName, m)
	if err := db.UDFs().Register("KmeansPredict", func() udf.Transform { return predictUDF{want: TypeKmeans} }); err != nil {
		return nil, err
	}
	if err := db.UDFs().Register("GlmPredict", func() udf.Transform { return predictUDF{want: TypeGLM} }); err != nil {
		return nil, err
	}
	if err := db.UDFs().Register("RfPredict", func() udf.Transform { return predictUDF{want: TypeRandomForest} }); err != nil {
		return nil, err
	}
	return m, nil
}

func blobPath(name string) string { return "models/" + name }

// blobJournal is the durable write-ahead surface a database may expose:
// blob mutations routed through it are redo-logged and fsynced before the
// DFS namespace changes, making deploy/redeploy/drop crash-atomic.
// internal/vertica.DB implements it in durable mode.
type blobJournal interface {
	JournalBlobPut(path string, data []byte) error
	JournalBlobDelete(path string) error
}

// blobPut writes a model blob through the database's write-ahead journal
// when it has one, falling back to a direct DFS write.
func (m *Manager) blobPut(path string, data []byte) error {
	if j, ok := m.db.(blobJournal); ok {
		return j.JournalBlobPut(path, data)
	}
	return m.db.DFS().Write(path, data)
}

// blobDelete removes a model blob through the write-ahead journal when the
// database has one.
func (m *Manager) blobDelete(path string) error {
	if j, ok := m.db.(blobJournal); ok {
		return j.JournalBlobDelete(path)
	}
	return m.db.DFS().Delete(path)
}

// Deploy serializes a model, stores the blob in DFS (replicated) and records
// metadata in R_Models — the server half of deploy.model (Fig. 3 line 9).
func (m *Manager) Deploy(name, owner, description string, model any) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("models: invalid model name %q", name)
	}
	if exists, err := m.exists(name); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("models: model %q already exists", name)
	}
	data, kind, err := Serialize(model)
	if err != nil {
		return err
	}
	// A GLM too large for one transfer message switches to the sharded
	// layout transparently: same name, same prediction results, multiple
	// blobs under the message budget.
	if glm, ok := model.(*algos.GLMModel); ok && len(data) > MaxBlobBytes {
		return m.DeployGLMSharded(name, owner, description, glm, MaxBlobBytes)
	}
	if err := m.blobPut(blobPath(name), data); err != nil {
		return err
	}
	ins := fmt.Sprintf(`INSERT INTO %s VALUES ('%s', '%s', '%s', %d, '%s')`,
		MetaTable, name, sqlEscape(owner), kind, len(data), sqlEscape(description))
	if err := m.db.Exec(ins); err != nil {
		// Roll back the blob so namespace and metadata stay consistent.
		_ = m.blobDelete(blobPath(name))
		return err
	}
	m.acl.register(name, owner)
	// A name can be dropped and re-deployed; any cached copy from the old
	// incarnation must not serve the new one.
	m.cache.invalidate(name)
	return nil
}

// Redeploy overwrites a deployed model's blob in place — the refresh a
// serving deployment performs without taking queries offline. Only the owner
// (or an administrative caller with empty owner) may replace the model; the
// metadata row (type, size) is rewritten and cached deserialized copies are
// invalidated, so after Redeploy returns no prediction can score with the
// old parameters.
func (m *Manager) Redeploy(name, owner string, model any) error {
	if exists, err := m.exists(name); err != nil {
		return err
	} else if !exists {
		return fmt.Errorf("models: %w: %q", verr.ErrModelNotFound, name)
	}
	if !m.acl.allowed(name, owner, PermModify) {
		return fmt.Errorf("models: user %q lacks MODIFY on model %q", owner, name)
	}
	data, _, err := Serialize(model)
	if err != nil {
		return err
	}
	// The journaled write is redo-logged and durable before the DFS namespace
	// flips to the new bytes, so a crash mid-redeploy can never acknowledge a
	// version bump and then lose it (the old torn window between blob write
	// and restart). Invalidate after the write so a load racing the redeploy
	// either reads the new bytes or is orphaned by the version bump and
	// cannot install its stale copy.
	if err := m.blobPut(blobPath(name), data); err != nil {
		return err
	}
	m.cache.invalidate(name)
	return nil
}

// SetCacheEnabled toggles the deserialized-model cache (default on).
// Disabling it restores the one-deserialization-per-UDF-instance behaviour,
// which the serving benchmark measures as its baseline.
func (m *Manager) SetCacheEnabled(on bool) { m.cache.setEnabled(on) }

func sqlEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\'' {
			out = append(out, '\'')
		}
		out = append(out, r)
	}
	return string(out)
}

func (m *Manager) exists(name string) (bool, error) {
	res, err := m.db.Query(fmt.Sprintf(`SELECT count(*) AS n FROM %s WHERE model = '%s'`, MetaTable, sqlEscape(name)))
	if err != nil {
		return false, err
	}
	return res.Rows()[0][0].(int64) > 0, nil
}

// Load fetches and deserializes a deployed model, preferring the node-local
// DFS replica when node >= 0. Deserialized models are shared through a
// versioned cache: the block scorers never mutate model state, so one copy
// serves every concurrent query, and Deploy/Redeploy/Drop invalidate it.
func (m *Manager) Load(name string, node int) (any, string, error) {
	e, ok, ver := m.cache.snapshot(name)
	if ok {
		mCacheHits.Inc()
		return e.model, e.kind, nil
	}
	mCacheMisses.Inc()
	if err := faults.Check(faults.SiteModelLoad); err != nil {
		return nil, "", fmt.Errorf("models: load %q: %w", name, err)
	}
	var data []byte
	var err error
	if node >= 0 {
		data, _, err = m.db.DFS().ReadFrom(node, blobPath(name))
	} else {
		data, err = m.db.DFS().Read(blobPath(name))
	}
	if err != nil {
		return nil, "", fmt.Errorf("models: %w: %q not in DFS: %v", verr.ErrModelNotFound, name, err)
	}
	model, kind, err := Deserialize(data)
	if err != nil {
		return nil, "", err
	}
	// Sharded deployments: the blob held only the metadata document; fetch
	// the coefficient shards and assemble the streaming scorer.
	if meta, ok := model.(*ShardedGLMMeta); ok {
		sh, err := m.loadShards(name, node, meta)
		if err != nil {
			return nil, "", err
		}
		model = sh
	}
	m.cache.putIfCurrent(name, ver, cacheEntry{model: model, kind: kind})
	return model, kind, nil
}

// Drop removes a model's blob and metadata.
func (m *Manager) Drop(name string) error {
	exists, err := m.exists(name)
	if err != nil {
		return err
	}
	if !exists {
		return fmt.Errorf("models: %w: %q", verr.ErrModelNotFound, name)
	}
	// A sharded deployment owns shard blobs beyond the main one; resolve the
	// layout before the metadata blob disappears.
	shards := 0
	if data, err := m.db.DFS().Read(blobPath(name)); err == nil {
		if meta, _, err := Deserialize(data); err == nil {
			if sm, ok := meta.(*ShardedGLMMeta); ok {
				shards = sm.Shards
			}
		}
	}
	if err := m.blobDelete(blobPath(name)); err != nil {
		return err
	}
	for k := 0; k < shards; k++ {
		_ = m.blobDelete(shardPath(name, k))
	}
	m.acl.forget(name)
	m.cache.invalidate(name)
	// The SQL subset has no DELETE; rebuild the metadata table without the
	// dropped row (metadata is tiny — Fig. 10 scale).
	rows, err := m.db.Query(`SELECT model, owner, type, size, description FROM ` + MetaTable)
	if err != nil {
		return err
	}
	if err := m.db.Exec(`DROP TABLE ` + MetaTable); err != nil {
		return err
	}
	if err := m.db.Exec(`CREATE TABLE ` + MetaTable + ` (model VARCHAR, owner VARCHAR, type VARCHAR, size INTEGER, description VARCHAR)`); err != nil {
		return err
	}
	for _, r := range rows.Rows() {
		if r[0].(string) == name {
			continue
		}
		ins := fmt.Sprintf(`INSERT INTO %s VALUES ('%s', '%s', '%s', %d, '%s')`,
			MetaTable, sqlEscape(r[0].(string)), sqlEscape(r[1].(string)), r[2].(string), r[3].(int64), sqlEscape(r[4].(string)))
		if err := m.db.Exec(ins); err != nil {
			return err
		}
	}
	return nil
}

// List returns the R_Models rows (model, owner, type, size, description).
func (m *Manager) List() ([][]any, error) {
	res, err := m.db.Query(`SELECT model, owner, type, size, description FROM ` + MetaTable + ` ORDER BY model`)
	if err != nil {
		return nil, err
	}
	return res.Rows(), nil
}
