// Package cliflags centralizes the flag plumbing the vdr-* command-line
// tools share, so every binary spells the common knobs identically — one
// help string, one default, one chaos-arming routine — instead of eight
// drifting copies.
package cliflags

import (
	"flag"
	"fmt"

	"verticadr/internal/faults"
	"verticadr/internal/parallel"
)

// Chaos is the fault-injection pair (-chaos, -chaos-seed).
type Chaos struct {
	Enabled bool
	Seed    int64

	injector *faults.Injector
}

// ChaosFlags registers -chaos and -chaos-seed on fs.
func ChaosFlags(fs *flag.FlagSet) *Chaos {
	c := &Chaos{}
	fs.BoolVar(&c.Enabled, "chaos", false,
		"run under the standard fault-injection profile (recovery paths must absorb it)")
	fs.Int64Var(&c.Seed, "chaos-seed", 42, "seed for the chaos profile")
	return c
}

// Arm installs the chaos profile when enabled and reports whether it did.
// Call after flag parsing.
func (c *Chaos) Arm() bool {
	if !c.Enabled {
		return false
	}
	c.injector = faults.Chaos(c.Seed)
	faults.Install(c.injector)
	fmt.Printf("chaos profile armed (seed %d)\n", c.Seed)
	return true
}

// Report renders the injector's tally (what was injected where); empty
// when chaos never armed.
func (c *Chaos) Report() string {
	if c.injector == nil {
		return ""
	}
	return c.injector.String()
}

// ApplyParallelism installs -j's value as the process-default execution
// degree (no-op at 0, which keeps GOMAXPROCS).
func ApplyParallelism(j int) {
	if j > 0 {
		parallel.SetDefaultDegree(j)
	}
}

// Parallelism registers -j: the intra-node execution degree.
func Parallelism(fs *flag.FlagSet) *int {
	return fs.Int("j", 0,
		"intra-node execution degree for scans/aggregation/IRLS (0 = GOMAXPROCS); results are identical at every degree")
}

// Nodes registers -nodes: the database cluster size.
func Nodes(fs *flag.FlagSet, def int) *int {
	return fs.Int("nodes", def, "database nodes")
}

// DataDir registers -data: the durable-persistence directory.
func DataDir(fs *flag.FlagSet) *string {
	return fs.String("data", "",
		"durable mode: persist under this directory (write-ahead log + checkpoints); reopening recovers the previous state")
}

// BenchOut registers -out: where a bench binary writes its JSON figures.
func BenchOut(fs *flag.FlagSet, def string) *string {
	return fs.String("out", def, "output JSON path")
}

// Rows registers -rows with a tool-specific meaning.
func Rows(fs *flag.FlagSet, def int, usage string) *int {
	return fs.Int("rows", def, usage)
}
