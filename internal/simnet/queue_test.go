package simnet

import "testing"

func TestQueuePipelines(t *testing.T) {
	// Producer makes an item every 1s (10 items); consumer takes 2s each.
	// Pipelined total: first item ready at 1s, consumer busy 20s → 21s.
	s := New()
	q := s.NewQueue()
	s.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1)
			q.Put(1)
		}
		q.Close()
	})
	var consumed int
	s.Go("consumer", func(p *Proc) {
		for q.Get(p) {
			p.Sleep(2)
			consumed++
		}
	})
	total := s.Run()
	if consumed != 10 {
		t.Fatalf("consumed %d", consumed)
	}
	if !almost(total, 21) {
		t.Fatalf("total = %v, want 21", total)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	s := New()
	q := s.NewQueue()
	s.Go("producer", func(p *Proc) {
		q.Put(6)
		q.Close()
	})
	var done [3]int
	for i := 0; i < 3; i++ {
		i := i
		s.Go("consumer", func(p *Proc) {
			for q.Get(p) {
				p.Sleep(1)
				done[i]++
			}
		})
	}
	total := s.Run()
	if done[0]+done[1]+done[2] != 6 {
		t.Fatalf("consumed %v", done)
	}
	if !almost(total, 2) {
		t.Fatalf("3 consumers on 6 items: total = %v, want 2", total)
	}
}

func TestQueueCloseUnblocks(t *testing.T) {
	s := New()
	q := s.NewQueue()
	got := true
	s.Go("consumer", func(p *Proc) {
		got = q.Get(p)
	})
	s.Go("closer", func(p *Proc) {
		p.Sleep(1)
		q.Close()
	})
	total := s.Run()
	if got || !almost(total, 1) {
		t.Fatalf("got=%v total=%v", got, total)
	}
}

func TestQueueGetAfterClosedDrained(t *testing.T) {
	s := New()
	q := s.NewQueue()
	var first, second bool
	s.Go("p", func(p *Proc) {
		q.Put(1)
		q.Close()
		first = q.Get(p)
		second = q.Get(p)
	})
	s.Run()
	if !first || second {
		t.Fatalf("first=%v second=%v", first, second)
	}
}
