package simnet

import (
	"math"
	"sync/atomic"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end float64
	s.Go("p", func(p *Proc) {
		p.Sleep(2.5)
		end = p.Now()
	})
	total := s.Run()
	if !almost(end, 2.5) || !almost(total, 2.5) {
		t.Fatalf("end=%v total=%v", end, total)
	}
}

func TestParallelProcessesOverlap(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Go("p", func(p *Proc) { p.Sleep(3) })
	}
	if total := s.Run(); !almost(total, 3) {
		t.Fatalf("parallel sleeps should overlap: %v", total)
	}
}

func TestSequentialSleeps(t *testing.T) {
	s := New()
	s.Go("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(1)
		}
	})
	if total := s.Run(); !almost(total, 4) {
		t.Fatalf("total = %v", total)
	}
}

func TestResourceSingleSlotSerializes(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 1, 100) // 100 units/s
	for i := 0; i < 5; i++ {
		s.Go("p", func(p *Proc) { r.Use(p, 100) }) // 1s each
	}
	if total := s.Run(); !almost(total, 5) {
		t.Fatalf("serialized total = %v, want 5", total)
	}
	if !almost(r.Served(), 500) {
		t.Fatalf("served = %v", r.Served())
	}
	if u := r.Utilization(5); !almost(u, 1) {
		t.Fatalf("utilization = %v", u)
	}
}

func TestResourceMultiSlotParallelism(t *testing.T) {
	s := New()
	cpu := s.NewResource("cpu", 4, 1) // 4 cores, 1 unit/s each
	for i := 0; i < 8; i++ {
		s.Go("task", func(p *Proc) { cpu.Use(p, 2) })
	}
	// 8 tasks × 2s on 4 cores = 4s.
	if total := s.Run(); !almost(total, 4) {
		t.Fatalf("total = %v, want 4", total)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	s := New()
	r := s.NewResource("r", 1, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Go("p", func(p *Proc) {
			p.Sleep(float64(i) * 0.001) // stagger arrivals
			r.Use(p, 1)
			order = append(order, i)
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestZeroUnitsNoTime(t *testing.T) {
	s := New()
	r := s.NewResource("r", 1, 1)
	s.Go("p", func(p *Proc) { r.Use(p, 0) })
	if total := s.Run(); !almost(total, 0) {
		t.Fatalf("zero work took %v", total)
	}
}

func TestGateForkJoin(t *testing.T) {
	s := New()
	g := s.NewGate(3)
	var joined float64
	for i := 1; i <= 3; i++ {
		i := i
		s.Go("worker", func(p *Proc) {
			p.Sleep(float64(i))
			g.Done()
		})
	}
	s.Go("joiner", func(p *Proc) {
		g.Wait(p)
		joined = p.Now()
	})
	s.Run()
	if !almost(joined, 3) {
		t.Fatalf("join at %v, want 3 (slowest worker)", joined)
	}
}

func TestGateAlreadyOpen(t *testing.T) {
	s := New()
	g := s.NewGate(0)
	s.Go("p", func(p *Proc) {
		g.Wait(p) // should not block
		p.Sleep(1)
	})
	if total := s.Run(); !almost(total, 1) {
		t.Fatalf("total = %v", total)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	s := New()
	var count atomic.Int32
	s.Go("parent", func(p *Proc) {
		p.Sleep(1)
		g := s.NewGate(2)
		for i := 0; i < 2; i++ {
			s.Go("child", func(c *Proc) {
				c.Sleep(2)
				count.Add(1)
				g.Done()
			})
		}
		g.Wait(p)
	})
	total := s.Run()
	if count.Load() != 2 || !almost(total, 3) {
		t.Fatalf("count=%d total=%v", count.Load(), total)
	}
}

func TestPipelineModel(t *testing.T) {
	// A two-stage pipeline: disk (50 MB/s) feeding a NIC (100 MB/s) in 10
	// chunks of 100 MB. The slower stage dominates: total ≈ 10×2s + one
	// 1s NIC drain for the last chunk.
	s := New()
	disk := s.NewResource("disk", 1, 50)
	nic := s.NewResource("nic", 1, 100)
	for i := 0; i < 10; i++ {
		i := i
		s.Go("chunk", func(p *Proc) {
			p.Sleep(float64(i) * 1e-6) // preserve chunk order
			disk.Use(p, 100)
			nic.Use(p, 100)
		})
	}
	total := s.Run()
	if total < 20.9 || total > 21.1 {
		t.Fatalf("pipeline total = %v, want ~21", total)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := New()
	r := s.NewResource("r", 2, 1)
	s.Go("a", func(p *Proc) { r.Use(p, 4) })
	s.Go("b", func(p *Proc) { r.Use(p, 2) })
	total := s.Run()
	if !almost(total, 4) {
		t.Fatalf("total = %v", total)
	}
	// Busy-slot integral: (2 slots × 2s + 1 slot × 2s) / (2 × 4s) = 0.75.
	if u := r.Utilization(total); !almost(u, 0.75) {
		t.Fatalf("utilization = %v", u)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := New()
	g := s.NewGate(1) // never Done
	s.Go("stuck", func(p *Proc) { g.Wait(p) })
	s.Run()
}

func TestBadResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad resource")
		}
	}()
	New().NewResource("bad", 0, 1)
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s := New()
		r := s.NewResource("r", 3, 7)
		g := s.NewGate(20)
		for i := 0; i < 20; i++ {
			i := i
			s.Go("p", func(p *Proc) {
				p.Sleep(float64(i%5) * 0.1)
				r.Use(p, float64(1+i%3))
				g.Done()
			})
		}
		s.Go("join", func(p *Proc) { g.Wait(p) })
		return s.Run()
	}
	a, b := run(), run()
	if !almost(a, b) {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
