package simnet

// Queue is an unbounded producer/consumer counter used to model pipelined
// stages (a transfer buffer between a producer device and a consumer
// device). Put makes items available; Get blocks until one is available.
// Close marks the stream ended: Get returns false once drained.
type Queue struct {
	sim     *Sim
	n       int
	closed  bool
	waiters []*Proc
}

// NewQueue creates an empty open queue.
func (s *Sim) NewQueue() *Queue { return &Queue{sim: s} }

// Put makes k items available and wakes all waiters (they re-check).
func (q *Queue) Put(k int) {
	s := q.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	q.n += k
	for _, w := range q.waiters {
		s.wakeLocked(w)
	}
	q.waiters = nil
}

// Close ends the stream; blocked and future Gets on an empty queue return
// false.
func (q *Queue) Close() {
	s := q.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	q.closed = true
	for _, w := range q.waiters {
		s.wakeLocked(w)
	}
	q.waiters = nil
}

// Get takes one item, blocking while the queue is empty and open. It
// reports false when the queue is closed and drained.
func (q *Queue) Get(p *Proc) bool {
	s := q.sim
	for {
		s.mu.Lock()
		if q.n > 0 {
			q.n--
			s.mu.Unlock()
			return true
		}
		if q.closed {
			s.mu.Unlock()
			return false
		}
		q.waiters = append(q.waiters, p)
		s.mu.Unlock()
		p.block()
	}
}
