package core

import (
	"fmt"
	"math"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/vft"
	"verticadr/internal/workload"
)

func startTest(t *testing.T, cfg Config) *Session {
	t.Helper()
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 128
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func loadRegressionTable(t *testing.T, s *Session, name string, rows, feats int, seed int64) []float64 {
	t.Helper()
	featCols := make([]string, feats)
	ddl := fmt.Sprintf("CREATE TABLE %s (", name)
	for i := range featCols {
		featCols[i] = fmt.Sprintf("x%d", i)
		ddl += featCols[i] + " FLOAT, "
	}
	ddl += "y FLOAT)"
	if err := s.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	spec := workload.TableSpec{Name: name, FeatCols: featCols, RespCol: "y", Rows: rows, Seed: seed}
	cols, _, beta := spec.Gen()
	if err := s.DB.LoadColumns(name, cols); err != nil {
		t.Fatal(err)
	}
	return beta
}

func TestStartDefaults(t *testing.T) {
	s := startTest(t, Config{})
	if s.DB.NumNodes() != 4 || s.DR.NumWorkers() != 4 {
		t.Fatalf("defaults: db=%d dr=%d", s.DB.NumNodes(), s.DR.NumWorkers())
	}
}

func TestFigure3Workflow(t *testing.T) {
	// The full script of Figure 3: load features via db2darray, fit a GLM,
	// cross-validate, inspect coefficients, deploy, and predict in-database.
	s := startTest(t, Config{DBNodes: 3, DRWorkers: 3, InstancesPerWorker: 2})
	beta := loadRegressionTable(t, s, "mytable", 3000, 3, 11)

	// Line 5: data <- db2darray("mytable", ...).
	x, stats, err := s.DB2DArray("mytable", []string{"x0", "x1", "x2"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Policy != vft.PolicyLocality {
		t.Fatalf("equal node counts should default to locality, got %q", stats.Policy)
	}
	yArr, _, err := s.DB2DArray("mytable", []string{"y"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 3000 || yArr.Rows() != 3000 {
		t.Fatalf("loaded rows %d / %d", x.Rows(), yArr.Rows())
	}

	// Line 6: model <- hpdglm(...). Gaussian family = linear regression.
	model, err := algos.GLM(x, yArr, algos.GLMOpts{Family: algos.Gaussian})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range beta {
		if math.Abs(model.Coefficients[i]-b) > 0.05 {
			t.Fatalf("coef %d = %v want %v", i, model.Coefficients[i], b)
		}
	}

	// Line 7: cv.hpdglm(...).
	cv, err := algos.CrossValidate(x, yArr, algos.GLMOpts{Family: algos.Gaussian}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Folds != 4 {
		t.Fatalf("cv = %+v", cv)
	}

	// Line 9: deploy.model(model, 'rModel').
	if err := s.DeployModel("rModel", "tester", "forecasting", model); err != nil {
		t.Fatal(err)
	}

	// Lines 10-11: in-database prediction over a second table.
	loadRegressionTable(t, s, "mytable2", 500, 3, 11) // same seed = same beta
	res, err := s.Query(`SELECT GlmPredict(x0, x1, x2 USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 500 {
		t.Fatalf("predicted %d rows", res.Len())
	}
	// Predictions should be close to the stored y (noise 0.1).
	ys, err := s.Query(`SELECT y FROM mytable2`)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, wantSum := 0.0, 0.0
	for i, r := range res.Rows() {
		gotSum += r[0].(float64)
		wantSum += ys.Rows()[i][0].(float64)
	}
	if math.Abs(gotSum-wantSum)/500 > 0.2 {
		t.Fatalf("mean prediction %v vs mean y %v", gotSum/500, wantSum/500)
	}
}

func TestKmeansWorkflowWithUniformPolicy(t *testing.T) {
	s := startTest(t, Config{DBNodes: 2, DRWorkers: 4, InstancesPerWorker: 2})
	if err := s.Exec(`CREATE TABLE pts (a FLOAT, b FLOAT)`); err != nil {
		t.Fatal(err)
	}
	data := workload.GenKmeans(5, 1000, 2, 3, 0.2)
	cols := [][]float64{make([]float64, 1000), make([]float64, 1000)}
	for i, p := range data.Points {
		cols[0][i], cols[1][i] = p[0], p[1]
	}
	if err := s.DB.LoadColumns("pts", cols); err != nil {
		t.Fatal(err)
	}
	// Unequal node counts: default policy must be uniform.
	x, stats, err := s.DB2DArray("pts", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Policy != vft.PolicyUniform {
		t.Fatalf("policy = %q", stats.Policy)
	}
	km, err := algos.Kmeans(x, algos.KmeansOpts{K: 3, Seed: 2, InitPlus: true, MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeployModel("km", "tester", "clustering", km); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT KmeansPredict(a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1000 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestODBCBaselineLoad(t *testing.T) {
	s := startTest(t, Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 2})
	loadRegressionTable(t, s, "t", 400, 2, 3)
	frame, err := s.LoadODBC("t", nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Rows() != 400 || frame.NPartitions() != 8 {
		t.Fatalf("odbc frame rows=%d parts=%d", frame.Rows(), frame.NPartitions())
	}
}

func TestYARNIntegration(t *testing.T) {
	s := startTest(t, Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 2, UseYARN: true})
	if s.RM == nil {
		t.Fatal("yarn not started")
	}
	u := s.RM.Usage()
	// Database holds half of each node long-term; DR session holds its
	// per-worker containers.
	if u.QueueCores["db"] != 24 { // 2 nodes × 12 cores
		t.Fatalf("db cores = %d", u.QueueCores["db"])
	}
	if u.QueueCores["analytics"] != 4 { // 2 workers × 2 instances
		t.Fatalf("analytics cores = %d", u.QueueCores["analytics"])
	}
	// Closing the session returns every container.
	s.Close()
	u = s.RM.Usage()
	if u.Outstanding != 0 {
		t.Fatalf("containers leaked: %+v", u)
	}
}

func TestYARNRefusesOversizedSession(t *testing.T) {
	_, err := Start(Config{
		DBNodes: 2, DRWorkers: 2,
		InstancesPerWorker: 50, // 50 cores per worker > analytics share
		UseYARN:            true,
		CoresPerNode:       24,
	})
	if err == nil {
		t.Fatal("oversized session should be refused by the resource manager")
	}
}

func TestDB2DArrayErrors(t *testing.T) {
	s := startTest(t, Config{DBNodes: 2, DRWorkers: 2})
	if _, _, err := s.DB2DArray("missing", nil, ""); err == nil {
		t.Fatal("missing table should fail")
	}
	loadRegressionTable(t, s, "t", 50, 1, 1)
	if _, _, err := s.DB2DArray("t", nil, "bogus"); err == nil {
		t.Fatal("bad policy should fail")
	}
}
