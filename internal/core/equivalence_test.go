package core

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/vft"
)

// collectSorted gathers one int64 column across all partitions, sorted —
// the multiset fingerprint used for loader equivalence.
func collectSorted(t *testing.T, frame *darray.DFrame, col string) []int64 {
	t.Helper()
	var out []int64
	for p := 0; p < frame.NPartitions(); p++ {
		b, err := frame.Part(p)
		if err != nil {
			t.Fatal(err)
		}
		i := b.Schema.ColIndex(col)
		out = append(out, b.Cols[i].Ints...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Property: for random table sizes, segmentations, policies and connection
// counts, every loader (parallel ODBC, VFT locality, VFT uniform, VFT over
// TCP) delivers exactly the same multiset of rows — no loss, duplication or
// corruption on any path.
func TestQuickLoaderEquivalence(t *testing.T) {
	iter := 0
	f := func(seed int64, sizeRaw uint16, hashSeg bool, connsRaw uint8) bool {
		iter++
		rows := int(sizeRaw%2000) + 50
		conns := int(connsRaw%6) + 1
		s, err := Start(Config{DBNodes: 3, DRWorkers: 3, InstancesPerWorker: 2, BlockRows: 64, UseTCPTransfer: true})
		if err != nil {
			return false
		}
		defer s.Close()
		seg := "SEGMENTED BY ROUND ROBIN"
		if hashSeg {
			seg = "SEGMENTED BY HASH(id)"
		}
		table := fmt.Sprintf("t%d", iter)
		if err := s.Exec(fmt.Sprintf(`CREATE TABLE %s (id INTEGER, v FLOAT) %s`, table, seg)); err != nil {
			return false
		}
		schema := colstore.Schema{
			{Name: "id", Type: colstore.TypeInt64},
			{Name: "v", Type: colstore.TypeFloat64},
		}
		b := colstore.NewBatch(schema)
		for i := 0; i < rows; i++ {
			if err := b.AppendRow(int64(i), float64(seed%1000)+float64(i)); err != nil {
				return false
			}
		}
		if err := s.DB.Load(table, b); err != nil {
			return false
		}

		want := make([]int64, rows)
		for i := range want {
			want[i] = int64(i)
		}
		check := func(frame *darray.DFrame) bool {
			got := collectSorted(t, frame, "id")
			if len(got) != rows {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}

		// Parallel ODBC.
		of, err := s.LoadODBC(table, nil, conns)
		if err != nil || !check(of) {
			return false
		}
		// VFT locality over TCP (session was started with UseTCPTransfer).
		lf, _, err := s.DB2DFrame(table, nil, vft.PolicyLocality)
		if err != nil || !check(lf) {
			return false
		}
		// VFT uniform over TCP.
		uf, _, err := s.DB2DFrame(table, nil, vft.PolicyUniform)
		if err != nil || !check(uf) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
