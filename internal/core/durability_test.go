package core

import (
	"testing"

	"verticadr/internal/colstore"
)

// TestDurableSessionRecoversAcrossRestart drives the whole stack the way
// vdr-serve -data does: a durable session ingests through Session.Load and
// SQL INSERT, checkpoints, ingests more, closes; a second session over the
// same directory must serve the identical data and a working model manager.
func TestDurableSessionRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DBNodes: 2, DRWorkers: 2, Durable: true, DataDir: dir}

	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`CREATE TABLE pts (id INTEGER, x FLOAT) SEGMENTED BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < 100; i++ {
		if err := b.AppendRow(int64(i), float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Load("pts", b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO pts VALUES (100, 50.5)`); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info := s2.DB.RecoveryInfo(); info == nil || info.CheckpointLSN == 0 {
		t.Fatalf("expected recovery from a checkpoint, got %+v", info)
	}
	res, err := s2.Query(`SELECT count(*) AS n, sum(x) AS s FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows()[0]
	if row[0].(int64) != 101 {
		t.Fatalf("recovered %v rows, want 101", row[0])
	}
	// sum(0.5*i, i<100) = 2475; plus the post-checkpoint 50.5.
	if got := row[1].(float64); got != 2525.5 {
		t.Fatalf("recovered sum %v, want 2525.5", got)
	}
	// The recovered session keeps full write/read service.
	if err := s2.Exec(`INSERT INTO pts VALUES (101, 1.0)`); err != nil {
		t.Fatal(err)
	}
}
