// Package core is the integration layer the paper contributes: it wires the
// MPP database (internal/vertica) to the Distributed R runtime
// (internal/dr) with fast parallel transfer (internal/vft), distributed
// model creation (internal/algos over internal/darray), in-database model
// deployment and prediction (internal/models), the ODBC baseline connector
// (internal/odbc) and YARN-brokered resources (internal/yarn). A Session is
// the programmatic equivalent of Figure 3's R console: distributedR_start()
// through deploy.model and glmPredict.
package core

import (
	"context"
	"fmt"
	"sync"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/models"
	"verticadr/internal/odbc"
	"verticadr/internal/parallel"
	"verticadr/internal/spark"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/verr"
	"verticadr/internal/vertica"
	"verticadr/internal/vft"
	"verticadr/internal/yarn"
)

// Config sizes a session.
type Config struct {
	// DBNodes is the database cluster size (default 4).
	DBNodes int
	// DRWorkers is the Distributed R worker count (default DBNodes, which
	// enables the locality transfer policy).
	DRWorkers int
	// InstancesPerWorker is the R instances per worker (default 4).
	InstancesPerWorker int
	// UDFInstancesPerNode is the database planner's PARTITION BEST
	// parallelism (default 4).
	UDFInstancesPerNode int
	// Replication is the DFS replication factor for models (default 2).
	Replication int
	// BlockRows overrides the storage block size (tests use small blocks).
	BlockRows int
	// DataDir enables on-disk persistence when set.
	DataDir string
	// Durable enables the ingest write-ahead log under DataDir: commits are
	// fsync-durable before they are acknowledged, and Start recovers the
	// pre-crash state (checkpoint image + log replay) before serving.
	Durable bool
	// UseYARN brokers CPU/memory through the resource manager (§6): the
	// database takes long-lived containers, the session per-use containers.
	UseYARN bool
	// UseTCPTransfer routes VFT chunk streams over real loopback TCP
	// sockets (worker listeners + database-side dialers) instead of
	// in-process handoff — the deployment where Distributed R runs on
	// different machines than the database.
	UseTCPTransfer bool
	// CoresPerNode / MemoryMBPerNode size the YARN nodes (defaults 24 /
	// 196000, the paper's testbed).
	CoresPerNode    int
	MemoryMBPerNode int
	// TaskRetries caps in-place re-execution of failed Distributed R tasks
	// (default 0: fail fast; the chaos profile raises it).
	TaskRetries int
	// Parallelism pins the process-wide intra-node execution degree for
	// scans, aggregation and IRLS (default 0: use GOMAXPROCS). Results are
	// bit-identical at every degree; this only trades latency for cores.
	Parallelism int
}

// Session is a running database + Distributed R pairing.
type Session struct {
	DB     *vertica.DB
	DR     *dr.Cluster
	Hub    *vft.Hub
	Models *models.Manager
	ODBC   *odbc.Server

	RM           *yarn.ResourceManager
	tcp          *vft.TCPService
	dbApp        *yarn.App
	drApp        *yarn.App
	dbContainers []*yarn.Container
	drContainers []*yarn.Container

	// Lifecycle state: Close first fails fast for new work, then cancels
	// every in-flight operation's context and waits for them to drain, so
	// shutdown cannot race a running query (the unsafe-Close bug).
	mu       sync.Mutex
	closed   bool
	nextOp   uint64
	cancels  map[uint64]context.CancelFunc
	inflight sync.WaitGroup
}

// Start launches a session (Fig. 3 lines 1–3).
func Start(cfg Config) (*Session, error) {
	if cfg.DBNodes <= 0 {
		cfg.DBNodes = 4
	}
	if cfg.DRWorkers <= 0 {
		cfg.DRWorkers = cfg.DBNodes
	}
	if cfg.InstancesPerWorker <= 0 {
		cfg.InstancesPerWorker = 4
	}
	if cfg.UDFInstancesPerNode <= 0 {
		cfg.UDFInstancesPerNode = 4
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 24
	}
	if cfg.MemoryMBPerNode <= 0 {
		cfg.MemoryMBPerNode = 196_000
	}
	if cfg.Parallelism > 0 {
		parallel.SetDefaultDegree(cfg.Parallelism)
	}
	s := &Session{cancels: make(map[uint64]context.CancelFunc)}

	if cfg.UseYARN {
		// One YARN node per physical node; the database and Distributed R
		// share nodes under capacity isolation (§6).
		nodes := cfg.DBNodes
		if cfg.DRWorkers > nodes {
			nodes = cfg.DRWorkers
		}
		nrs := make([]yarn.NodeResources, nodes)
		for i := range nrs {
			nrs[i] = yarn.NodeResources{Cores: cfg.CoresPerNode, MemoryMB: cfg.MemoryMBPerNode}
		}
		rm, err := yarn.New(yarn.Config{
			Nodes:  nrs,
			Queues: map[string]float64{"db": 0.5, "analytics": 0.5},
		})
		if err != nil {
			return nil, err
		}
		s.RM = rm
		// The database acquires resources for long-term use.
		s.dbApp, err = rm.Submit("vertica", "db")
		if err != nil {
			return nil, err
		}
		for n := 0; n < cfg.DBNodes; n++ {
			c, err := s.dbApp.Request(cfg.CoresPerNode/2, cfg.MemoryMBPerNode/2, n, false)
			if err != nil {
				return nil, fmt.Errorf("core: database container on node %d: %w", n, err)
			}
			s.dbContainers = append(s.dbContainers, c)
		}
		// The Distributed R session requests per-session containers with
		// locality preference to the database nodes.
		s.drApp, err = rm.Submit("distributedR", "analytics")
		if err != nil {
			return nil, err
		}
		for w := 0; w < cfg.DRWorkers; w++ {
			c, err := s.drApp.Request(cfg.InstancesPerWorker, 4096*cfg.InstancesPerWorker, w%cfg.DBNodes, false)
			if err != nil {
				s.releaseYARN()
				return nil, fmt.Errorf("core: Distributed R container %d: %w", w, err)
			}
			s.drContainers = append(s.drContainers, c)
		}
	}

	db, err := vertica.Open(vertica.Config{
		Nodes:               cfg.DBNodes,
		UDFInstancesPerNode: cfg.UDFInstancesPerNode,
		Replication:         cfg.Replication,
		BlockRows:           cfg.BlockRows,
		DataDir:             cfg.DataDir,
		Durable:             cfg.Durable,
	})
	if err != nil {
		return nil, err
	}
	drc, err := dr.Start(dr.Config{Workers: cfg.DRWorkers, InstancesPerWorker: cfg.InstancesPerWorker, TaskRetries: cfg.TaskRetries})
	if err != nil {
		return nil, err
	}
	hub := vft.NewHub()
	if err := vft.Register(db, hub); err != nil {
		return nil, err
	}
	mgr, err := models.NewManager(db)
	if err != nil {
		return nil, err
	}
	s.DB = db
	s.DR = drc
	s.Hub = hub
	s.Models = mgr
	s.ODBC = odbc.NewServer(db, 0)
	if cfg.UseTCPTransfer {
		svc, err := vft.ServeTCP(hub, cfg.DRWorkers)
		if err != nil {
			drc.Shutdown()
			return nil, err
		}
		s.tcp = svc
	}
	return s, nil
}

func (s *Session) releaseYARN() {
	for _, c := range s.drContainers {
		_ = s.drApp.Release(c)
	}
	s.drContainers = nil
	for _, c := range s.dbContainers {
		_ = s.dbApp.Release(c)
	}
	s.dbContainers = nil
}

// begin registers one in-flight operation. It returns a derived context that
// Close cancels, and a done func the operation must call when finished. After
// Close, begin fails fast with an error wrapping verr.ErrClosed.
func (s *Session) begin(ctx context.Context) (context.Context, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, fmt.Errorf("core: session: %w", verr.ErrClosed)
	}
	opCtx, cancel := context.WithCancel(ctx)
	id := s.nextOp
	s.nextOp++
	s.cancels[id] = cancel
	s.inflight.Add(1)
	done := func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
		cancel()
		s.inflight.Done()
	}
	return opCtx, done, nil
}

// Close shuts down the session deterministically: new operations fail fast
// with verr.ErrClosed, in-flight queries are canceled (they stop at their
// next scan-block or chunk boundary) and drained, and only then are the
// Distributed R cluster, TCP listeners and YARN containers released. Safe to
// call concurrently with queries and idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	cancels := make([]context.CancelFunc, 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	s.inflight.Wait()
	if s.tcp != nil {
		_ = s.tcp.Close()
	}
	s.DR.Shutdown()
	if s.RM != nil {
		s.releaseYARN()
	}
	// Flush and close the write-ahead log last, after every in-flight commit
	// has drained (no-op for in-memory databases).
	_ = s.DB.Close()
}

// Load is the session-level COPY path: it appends a batch to a table under
// the session's lifecycle tracking, and on a durable database the rows are
// WAL-durable before Load returns.
func (s *Session) Load(table string, b *colstore.Batch) error {
	_, done, err := s.begin(context.Background())
	if err != nil {
		return err
	}
	defer done()
	return s.DB.Load(table, b)
}

// Checkpoint materializes the durable database's full state and truncates
// the write-ahead log (an error on non-durable sessions).
func (s *Session) Checkpoint() (uint64, error) {
	_, done, err := s.begin(context.Background())
	if err != nil {
		return 0, err
	}
	defer done()
	return s.DB.Checkpoint()
}

// Query runs SQL against the database (Fig. 3 lines 10–11 use this for
// in-database prediction).
func (s *Session) Query(sql string) (*sqlexec.Result, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext runs SQL under a context. Cancellation (from ctx or from
// Close) is honored at scan-block and aggregation-chunk boundaries; the
// returned error then wraps verr.ErrCanceled.
func (s *Session) QueryContext(ctx context.Context, sql string) (*sqlexec.Result, error) {
	opCtx, done, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	return s.DB.QueryContext(opCtx, sql)
}

// RunStatementContext executes an already-parsed statement under the
// session's lifecycle tracking (fail-fast after Close, cancel-on-Close). The
// serving layer uses it to execute cached plans without reparsing.
func (s *Session) RunStatementContext(ctx context.Context, stmt sqlparse.Statement, sql string) (*sqlexec.Result, error) {
	opCtx, done, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	return s.DB.RunStatement(opCtx, stmt, sql)
}

// Exec runs SQL discarding results.
func (s *Session) Exec(sql string) error {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext runs SQL under a context, discarding results.
func (s *Session) ExecContext(ctx context.Context, sql string) error {
	_, err := s.QueryContext(ctx, sql)
	return err
}

// DB2DFrame loads table columns into a distributed data frame via Vertica
// Fast Transfer (§3). Policy is vft.PolicyLocality or vft.PolicyUniform;
// empty selects locality when node counts match, else uniform.
func (s *Session) DB2DFrame(table string, cols []string, policy string) (*darray.DFrame, *vft.Stats, error) {
	return s.DB2DFrameContext(context.Background(), table, cols, policy)
}

// DB2DFrameContext is DB2DFrame under a context: cancellation propagates
// into the export query's scan.
func (s *Session) DB2DFrameContext(ctx context.Context, table string, cols []string, policy string) (*darray.DFrame, *vft.Stats, error) {
	opCtx, done, err := s.begin(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	if policy == "" {
		if s.DB.NumNodes() == s.DR.NumWorkers() {
			policy = vft.PolicyLocality
		} else {
			policy = vft.PolicyUniform
		}
	}
	rows, err := s.DB.TableRows(table)
	if err != nil {
		return nil, nil, err
	}
	// The paper: partition-size hints = rows / receiving R instances.
	psize := rows / (s.DR.NumWorkers() * s.DR.InstancesPerWorker())
	if s.tcp != nil {
		return vft.LoadTCPContext(opCtx, s.DB, s.DR, s.Hub, s.tcp, table, cols, policy, psize)
	}
	return vft.LoadContext(opCtx, s.DB, s.DR, s.Hub, table, cols, policy, psize)
}

// DB2DArray is Fig. 3 line 5: load numeric feature columns from a table
// into a distributed array.
func (s *Session) DB2DArray(table string, cols []string, policy string) (*darray.DArray, *vft.Stats, error) {
	return s.DB2DArrayContext(context.Background(), table, cols, policy)
}

// DB2DArrayContext is DB2DArray under a context.
func (s *Session) DB2DArrayContext(ctx context.Context, table string, cols []string, policy string) (*darray.DArray, *vft.Stats, error) {
	frame, stats, err := s.DB2DFrameContext(ctx, table, cols, policy)
	if err != nil {
		return nil, nil, err
	}
	arr, err := frame.AsDArray(nil)
	if err != nil {
		return nil, nil, err
	}
	return arr, stats, nil
}

// LoadODBC is the baseline loader: `connections` parallel ODBC sessions
// each fetching an ordered slice of the table.
func (s *Session) LoadODBC(table string, cols []string, connections int) (*darray.DFrame, error) {
	return s.LoadODBCContext(context.Background(), table, cols, connections)
}

// LoadODBCContext is LoadODBC under a context; cancellation is observed per
// connection between reconnect attempts.
func (s *Session) LoadODBCContext(ctx context.Context, table string, cols []string, connections int) (*darray.DFrame, error) {
	opCtx, done, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	return odbc.LoadContext(opCtx, s.DB, s.ODBC, s.DR, table, cols, connections)
}

// DeployModel is Fig. 3 line 9: serialize a model created in Distributed R
// and store it in the database (DFS blob + R_Models row).
func (s *Session) DeployModel(name, owner, description string, model any) error {
	return s.Models.Deploy(name, owner, description, model)
}

// RedeployModel overwrites a deployed model's blob in place (the model
// refresh a serving deployment performs). The owner must match; cached
// deserialized copies are invalidated so no later prediction sees the old
// parameters.
func (s *Session) RedeployModel(name, owner string, model any) error {
	return s.Models.Redeploy(name, owner, model)
}

// DB2RDD loads table columns through Vertica Fast Transfer and exposes them
// to the Spark comparator as an RDD — the §8 extension showing the transfer
// mechanism is engine-agnostic. The returned RDD shares the session's
// worker data (one RDD partition per frame partition).
func (s *Session) DB2RDD(ctx *spark.Context, table string, cols []string, policy string) (*spark.RDD, *vft.Stats, error) {
	return s.DB2RDDContext(context.Background(), ctx, table, cols, policy)
}

// DB2RDDContext is DB2RDD under a (cancellation) context; the *spark.Context
// remains the RDD's owner.
func (s *Session) DB2RDDContext(ctx context.Context, sc *spark.Context, table string, cols []string, policy string) (*spark.RDD, *vft.Stats, error) {
	frame, stats, err := s.DB2DFrameContext(ctx, table, cols, policy)
	if err != nil {
		return nil, nil, err
	}
	rdd, err := spark.FromFrame(sc, frame, cols)
	if err != nil {
		return nil, nil, err
	}
	return rdd, stats, nil
}
