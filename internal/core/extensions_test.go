package core

import (
	"math"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/darray"
	"verticadr/internal/hdfs"
	"verticadr/internal/spark"
)

func fitLM(x, y *darray.DArray) (*algos.GLMModel, error) {
	return algos.LM(x, y)
}

func TestTCPTransferSession(t *testing.T) {
	// Same Figure 3 load path, but chunks cross real loopback sockets.
	s := startTest(t, Config{DBNodes: 3, DRWorkers: 3, InstancesPerWorker: 2, UseTCPTransfer: true})
	beta := loadRegressionTable(t, s, "t", 2000, 2, 5)
	x, stats, err := s.DB2DArray("t", []string{"x0", "x1"}, "")
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := s.DB2DArray("t", []string{"y"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 2000 || stats.Rows != 2000 {
		t.Fatalf("rows %d / stats %+v", x.Rows(), stats)
	}
	model, err := fitLM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range beta {
		if math.Abs(model.Coefficients[i]-b) > 0.05 {
			t.Fatalf("coef %d = %v want %v", i, model.Coefficients[i], b)
		}
	}
}

func TestDB2RDDBridge(t *testing.T) {
	// Vertica → Spark: load via VFT, run the Spark engine's K-means on it.
	s := startTest(t, Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 2})
	if err := s.Exec(`CREATE TABLE pts (a FLOAT, b FLOAT)`); err != nil {
		t.Fatal(err)
	}
	const n = 600
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 50
		}
		cols[0][i] = base + float64(i%7)*0.01
		cols[1][i] = base + float64(i%5)*0.01
	}
	if err := s.DB.LoadColumns("pts", cols); err != nil {
		t.Fatal(err)
	}
	fs, err := hdfs.New(hdfs.Config{DataNodes: 2, BlockSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := spark.NewContext(fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rdd, stats, err := s.DB2RDD(ctx, "pts", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != n {
		t.Fatalf("stats = %+v", stats)
	}
	cnt, err := rdd.Count()
	if err != nil || cnt != n {
		t.Fatalf("rdd count = %d, %v", cnt, err)
	}
	model, err := spark.Kmeans(rdd.Cache(), 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The two planted blobs at ~0 and ~50 must be recovered.
	var lo, hi bool
	for _, c := range model.Centers {
		if c[0] < 10 {
			lo = true
		}
		if c[0] > 40 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("centers = %v", model.Centers)
	}
}
