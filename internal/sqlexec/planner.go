package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"verticadr/internal/colstore"
	"verticadr/internal/plan"
	"verticadr/internal/sqlparse"
	"verticadr/internal/verr"
)

// The planner path: runSelect lowers a statement through internal/plan and
// this file walks the resulting physical tree, reusing the fixed pipeline's
// scan, aggregation, projection, sort, and limit kernels so planner-on and
// planner-off results are bitwise identical. Joins and EXPLAIN always go
// through the planner; plain single-table statements fall back to the fixed
// pipeline when planning fails (or the planner is disabled).

var plannerOn atomic.Bool

func init() { plannerOn.Store(true) }

// SetPlanner toggles the cost-based planner for single-table statements
// (joins always plan). Off means the fixed first-pushable-conjunct pipeline
// — the difftest uses the toggle to pin planner-on against planner-off.
func SetPlanner(on bool) { plannerOn.Store(on) }

// PlannerEnabled reports whether the cost-based planner is active.
func PlannerEnabled() bool { return plannerOn.Load() }

// RunPlanCtx executes an already-built plan (the server's plan cache keeps
// physical plans, keyed by catalog epoch). Equivalent to RunSelectCtx over
// p.Sel minus the planning step.
func RunPlanCtx(ctx context.Context, db Database, p *plan.Plan) (*Result, error) {
	var prof *Profile
	if p.Sel.Profile {
		prof = NewProfile("")
	}
	res, err := execPlan(ctx, db, p, prof)
	if err != nil {
		return nil, err
	}
	prof.finish()
	res.Profile = prof
	return res, nil
}

// RunExplainCtx plans the statement, executes it under a profile, and
// renders the plan tree with estimated next to actual row counts — one text
// row per operator, or a single JSON document row for EXPLAIN (FORMAT JSON).
func RunExplainCtx(ctx context.Context, db Database, ex *sqlparse.Explain) (*Result, error) {
	p, err := plan.Build(ex.Stmt, db)
	if err != nil {
		return nil, err
	}
	prof := NewProfile("")
	if _, err := execPlan(ctx, db, p, prof); err != nil {
		return nil, err
	}
	prof.finish()
	var ops []plan.OpStat
	for _, op := range prof.Ops() {
		ops = append(ops, plan.OpStat{Op: op.Op, Rows: op.Rows})
	}
	actuals := p.MatchActuals(ops)
	out := &colstore.Batch{
		Schema: colstore.Schema{{Name: "QUERY PLAN", Type: colstore.TypeString}},
		Cols:   []*colstore.Vector{colstore.NewVector(colstore.TypeString, 0)},
	}
	if ex.FormatJSON {
		js, err := p.JSON(actuals)
		if err != nil {
			return nil, err
		}
		if err := out.Cols[0].AppendValue(string(js)); err != nil {
			return nil, err
		}
	} else {
		for _, line := range p.Text(actuals) {
			if err := out.Cols[0].AppendValue(line); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Batch: out}, nil
}

// execPlan walks a physical plan. Sort and Limit nodes are not walked —
// finishSelect applies them from the statement, exactly as the fixed
// pipeline does — so the walker dispatches on the core operator under them.
func execPlan(ctx context.Context, db Database, p *plan.Plan, prof *Profile) (*Result, error) {
	sel := p.Sel
	core := p.Root
	for core.Op == plan.OpSort || core.Op == plan.OpLimit {
		core = core.Children[0]
	}
	switch core.Op {
	case plan.OpConst:
		return runConstSelect(ctx, sel, prof)
	case plan.OpUDTF, plan.OpDotProductJoin:
		return runUDTF(ctx, db, sel, udtfCall(sel), prof)
	case plan.OpAggregate:
		plans, err := aggItemPlans(sel)
		if err != nil {
			return nil, err
		}
		in := core.Children[0]
		// Run-aware fast path: the plan's Runs flag is advisory; the
		// executor re-verifies and declines gracefully.
		if core.Runs && in.Op == plan.OpSeqScan {
			def, err := db.TableDef(in.Table)
			if err != nil {
				return nil, err
			}
			if res, handled, err := runAggregateRuns(ctx, db, sel, def, plans, prof); handled {
				return res, err
			}
		}
		data, err := execData(ctx, db, in, sel, prof)
		if err != nil {
			return nil, err
		}
		return aggregateBatch(ctx, sel, plans, data, prof)
	case plan.OpProject:
		in := core.Children[0]
		data, err := execData(ctx, db, in, sel, prof)
		if err != nil {
			return nil, err
		}
		// SELECT * expands against the table definition for single-table
		// scans (schema order, not reference order) and against the join
		// output otherwise.
		star := data.Schema
		if in.Op != plan.OpHashJoin && in.Alias == "" {
			def, err := db.TableDef(in.Table)
			if err != nil {
				return nil, err
			}
			star = def.Schema
		}
		return projectBatch(ctx, sel, star, data, prof)
	}
	return nil, fmt.Errorf("sqlexec: unexpected plan operator %s", core.Op)
}

// execData materializes the rows a scan or join subtree produces.
func execData(ctx context.Context, db Database, n *plan.Node, sel *sqlparse.Select, prof *Profile) (*colstore.Batch, error) {
	switch n.Op {
	case plan.OpSeqScan, plan.OpIndexScan:
		cols := n.Cols
		if cols == nil {
			def, err := db.TableDef(n.Table)
			if err != nil {
				return nil, err
			}
			cols, err = collectCols(sel, def.Schema)
			if err != nil {
				return nil, err
			}
		}
		var data *colstore.Batch
		var err error
		if n.Op == plan.OpIndexScan {
			data, err = scanTableIndex(ctx, db, n.Table, cols, n.Access, prof)
		} else {
			data, err = scanTableAccess(ctx, db, n.Table, cols, n.Access.Primary, n.Access.Zone, n.Access.Residual, prof)
		}
		if err != nil {
			return nil, err
		}
		if n.Alias != "" {
			data = qualifySchema(data, n.Alias)
		}
		return data, nil
	case plan.OpHashJoin:
		l, err := execData(ctx, db, n.Children[0], sel, prof)
		if err != nil {
			return nil, err
		}
		r, err := execData(ctx, db, n.Children[1], sel, prof)
		if err != nil {
			return nil, err
		}
		return hashJoin(ctx, l, r, n, prof)
	}
	return nil, fmt.Errorf("sqlexec: unexpected plan input operator %s", n.Op)
}

// qualifySchema renames a scan's columns to their canonical "alias.column"
// form for join execution. Vectors are shared, not copied.
func qualifySchema(b *colstore.Batch, alias string) *colstore.Batch {
	out := &colstore.Batch{Cols: b.Cols}
	out.Schema = make(colstore.Schema, len(b.Schema))
	for i, c := range b.Schema {
		out.Schema[i] = colstore.ColumnSchema{Name: alias + "." + c.Name, Type: c.Type}
	}
	return out
}

// scanTableIndex serves a table scan through a B-tree secondary index:
// per segment, Lookup yields matching row positions in scan order and
// GatherRows decodes only the blocks holding them — O(log n + k) against
// the full scan's O(n). Segments missing the index (possible mid-DDL or
// mid-recovery) fall back to a full pushdown scan; row order per segment is
// identical either way, so results match the sequential path bitwise.
func scanTableIndex(ctx context.Context, db Database, table string, cols []string, acc *plan.Access, prof *Profile) (*colstore.Batch, error) {
	def, err := db.TableDef(table)
	if err != nil {
		return nil, err
	}
	segs, err := db.Segments(table)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		cols = []string{def.Schema[0].Name}
	}
	if _, err := def.Schema.Project(cols); err != nil {
		return nil, err
	}
	scanCols := cols
	if acc.Residual != nil {
		extra, err := collectCols(&sqlparse.Select{Where: acc.Residual}, def.Schema)
		if err != nil {
			return nil, err
		}
		scanCols = union(cols, extra)
	}
	scanDone := startOp(ctx, prof, "scan")
	gathered := colstore.NewBatch(mustProject(def.Schema, scanCols))
	var merged colstore.ScanStats
	fellBack := 0
	for _, seg := range segs {
		if err := verr.Canceled(ctx.Err()); err != nil {
			return nil, err
		}
		var st colstore.ScanStats
		var rowids []uint32
		var handled bool
		if acc.Primary2 != nil {
			rowids, handled = seg.IndexLookupRange(acc.Primary, acc.Primary2)
		} else {
			rowids, handled = seg.IndexLookup(acc.Primary)
		}
		if !handled {
			fellBack++
			var zone []colstore.Pred
			if acc.Primary2 != nil {
				// The upper bound prunes blocks here; its conjunct in
				// Residual keeps the rows exact.
				zone = []colstore.Pred{*acc.Primary2}
			}
			err := seg.ScanZoneWithStatsCtx(ctx, scanCols, acc.Primary, zone, &st, gathered.AppendBatch)
			if err != nil {
				return nil, err
			}
			merged.Add(st)
			continue
		}
		b, err := seg.GatherRows(scanCols, rowids, &st)
		if err != nil {
			return nil, err
		}
		if err := gathered.AppendBatch(b); err != nil {
			return nil, err
		}
		merged.Add(st)
	}
	probe := fmt.Sprintf("%s %v", acc.Primary.Op, acc.Primary.Val)
	if acc.Primary2 != nil {
		probe += fmt.Sprintf(" AND %s %v", acc.Primary2.Op, acc.Primary2.Val)
	}
	detail := fmt.Sprintf("index(%s) %s, %d segments, %d blocks decoded, %d untouched, %d KB",
		acc.IndexCol, probe,
		len(segs), merged.BlocksScanned, merged.BlocksSkipped, merged.BytesRead/1024)
	if merged.TailRows > 0 {
		detail += fmt.Sprintf(", %d tail rows", merged.TailRows)
	}
	if fellBack > 0 {
		detail += fmt.Sprintf(", %d segments without index scanned", fellBack)
	}
	scanDone.Blocks = int64(merged.BlocksScanned)
	scanDone.BlocksSkipped = int64(merged.BlocksSkipped)
	scanDone.Bytes = int64(merged.BytesRead)
	scanDone.Parallel = 1
	scanDone.Done(int64(gathered.Len()), detail)
	out := gathered
	if acc.Residual != nil {
		filterDone := startOp(ctx, prof, "filter")
		keep, err := evalExpr(acc.Residual, gathered)
		if err != nil {
			return nil, err
		}
		if keep.Type != colstore.TypeBool {
			return nil, fmt.Errorf("sqlexec: WHERE clause is not boolean")
		}
		var idx []int
		for r, k := range keep.Bools {
			if k {
				idx = append(idx, r)
			}
		}
		out = colstore.NewBatch(gathered.Schema)
		if err := out.AppendGather(gathered, idx); err != nil {
			return nil, err
		}
		filterDone.Done(int64(out.Len()), fmt.Sprintf("residual WHERE %s", acc.Residual.String()))
	}
	return out.Project(cols)
}

// hashJoin joins two materialized sides on single equality keys, emitting
// matches in probe-row-major, build-row-ascending order — exactly what a
// nested-loop join over the same inputs produces, so results are
// deterministic and reference-checkable. Key equality follows the engine's
// CompareValues semantics: ints compare exactly, mixed int/float widens to
// float64, ±0.0 coincide, and NaN compares equal to everything — NaN rows go
// to side lists that match all rows of the other side.
func hashJoin(ctx context.Context, left, right *colstore.Batch, n *plan.Node, prof *Profile) (*colstore.Batch, error) {
	joinDone := startOp(ctx, prof, "join")
	li := left.Schema.ColIndex(n.LeftKey)
	ri := right.Schema.ColIndex(n.RightKey)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("sqlexec: join keys %s, %s not in scan output", n.LeftKey, n.RightKey)
	}
	lv, rv := left.Cols[li], right.Cols[ri]
	norm, err := joinKeyNormalizer(lv.Type, rv.Type, n.LeftKey, n.RightKey)
	if err != nil {
		return nil, err
	}
	ht := make(map[any][]int, right.Len())
	var nanBuild []int
	for j, nr := 0, right.Len(); j < nr; j++ {
		k, isNaN := norm(rv.Value(j))
		if isNaN {
			nanBuild = append(nanBuild, j)
			continue
		}
		ht[k] = append(ht[k], j)
	}
	var lIdx, rIdx []int
	emit := func(i, j int) { lIdx = append(lIdx, i); rIdx = append(rIdx, j) }
	for i, nl := 0, left.Len(); i < nl; i++ {
		if i%4096 == 0 {
			if err := verr.Canceled(ctx.Err()); err != nil {
				return nil, err
			}
		}
		k, isNaN := norm(lv.Value(i))
		if isNaN {
			for j, nr := 0, right.Len(); j < nr; j++ {
				emit(i, j)
			}
			continue
		}
		matches := ht[k]
		if len(nanBuild) == 0 {
			for _, j := range matches {
				emit(i, j)
			}
			continue
		}
		// Merge equal-key rows with the match-everything NaN rows, keeping
		// ascending build order.
		a, b := 0, 0
		for a < len(matches) || b < len(nanBuild) {
			if a == len(matches) || (b < len(nanBuild) && nanBuild[b] < matches[a]) {
				emit(i, nanBuild[b])
				b++
			} else {
				emit(i, matches[a])
				a++
			}
		}
	}
	lg := left.Gather(lIdx)
	rg := right.Gather(rIdx)
	out := &colstore.Batch{
		Schema: append(append(colstore.Schema{}, lg.Schema...), rg.Schema...),
		Cols:   append(append([]*colstore.Vector{}, lg.Cols...), rg.Cols...),
	}
	joinDone.Done(int64(out.Len()), fmt.Sprintf("%s = %s, %d build rows", n.LeftKey, n.RightKey, right.Len()))
	if n.Residual != nil {
		filterDone := startOp(ctx, prof, "filter")
		keep, err := evalExpr(n.Residual, out)
		if err != nil {
			return nil, err
		}
		if keep.Type != colstore.TypeBool {
			return nil, fmt.Errorf("sqlexec: WHERE clause is not boolean")
		}
		var idx []int
		for r, k := range keep.Bools {
			if k {
				idx = append(idx, r)
			}
		}
		out = out.Gather(idx)
		filterDone.Done(int64(out.Len()), fmt.Sprintf("join filter %s", n.Residual.String()))
	}
	return out, nil
}

// joinKeyNormalizer returns a function mapping a key value to a hashable map
// key such that two values normalize identically iff CompareValues reports
// them equal — NaN excepted, which is reported separately (it "equals"
// every value under the engine's ordering).
func joinKeyNormalizer(lt, rt colstore.Type, lk, rk string) (func(any) (any, bool), error) {
	numeric := func(t colstore.Type) bool { return t == colstore.TypeInt64 || t == colstore.TypeFloat64 }
	switch {
	case lt == colstore.TypeInt64 && rt == colstore.TypeInt64:
		return func(v any) (any, bool) { return v, false }, nil
	case numeric(lt) && numeric(rt):
		return func(v any) (any, bool) {
			var f float64
			switch x := v.(type) {
			case int64:
				f = float64(x)
			case float64:
				f = x
			}
			if math.IsNaN(f) {
				return nil, true
			}
			if f == 0 {
				f = 0 // collapse -0.0 into +0.0
			}
			return f, false
		}, nil
	case lt == rt: // string = string, bool = bool
		return func(v any) (any, bool) { return v, false }, nil
	}
	return nil, fmt.Errorf("sqlexec: join keys %s (%v) and %s (%v) are not comparable", lk, lt, rk, rt)
}
