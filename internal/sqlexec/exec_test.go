package sqlexec

import (
	"strings"
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
	"verticadr/internal/udf"
)

// fakeDB is a single-table, single-node Database for executor tests.
type fakeDB struct {
	def *catalog.TableDef
	seg *colstore.Segment
}

func (f *fakeDB) TableDef(name string) (*catalog.TableDef, error) { return f.def, nil }
func (f *fakeDB) Segments(name string) ([]*colstore.Segment, error) {
	return []*colstore.Segment{f.seg}, nil
}
func (f *fakeDB) UDFs() *udf.Registry      { return udf.NewRegistry() }
func (f *fakeDB) UDFInstancesPerNode() int { return 1 }
func (f *fakeDB) Services() map[string]any { return nil }

// newFakeDB builds a table t(x INT, y INT) with rows x=0..n-1, y=x%7, stored
// in sealed 100-row blocks so zone maps have something to skip.
func newFakeDB(t *testing.T, n int) *fakeDB {
	t.Helper()
	schema := colstore.Schema{
		{Name: "x", Type: colstore.TypeInt64},
		{Name: "y", Type: colstore.TypeInt64},
	}
	seg := colstore.NewSegment(schema, 100)
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
		ys[i] = int64(i % 7)
	}
	b := &colstore.Batch{
		Schema: schema,
		Cols:   []*colstore.Vector{colstore.IntVector(xs), colstore.IntVector(ys)},
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	return &fakeDB{
		def: &catalog.TableDef{Name: "t", Schema: schema},
		seg: seg,
	}
}

func selStmt(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sqlparse.Select)
}

func TestProfileSelectRecordsOperators(t *testing.T) {
	db := newFakeDB(t, 1000)
	res, err := RunSelect(db, selStmt(t, "PROFILE SELECT x, y FROM t WHERE x >= 900 ORDER BY x DESC LIMIT 5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("rows = %d, want 5", res.Len())
	}
	if res.Profile == nil {
		t.Fatal("PROFILE SELECT returned no profile")
	}
	got := map[string]OpProfile{}
	for _, op := range res.Profile.Ops() {
		got[op.Op] = op
	}
	for _, want := range []string{"scan", "project", "sort", "limit"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("profile missing %q operator; have %v", want, res.Profile.Ops())
		}
	}
	if got["scan"].Rows != 100 {
		t.Fatalf("scan rows = %d, want 100 (pushdown x >= 900)", got["scan"].Rows)
	}
	// x >= 900 over 10 sealed 100-row blocks: zone maps skip blocks 0-8.
	if !strings.Contains(got["scan"].Detail, "9 skipped") {
		t.Fatalf("scan detail %q should report 9 skipped blocks", got["scan"].Detail)
	}
	if got["limit"].Rows != 5 {
		t.Fatalf("limit rows = %d, want 5", got["limit"].Rows)
	}
	if res.Profile.Total <= 0 {
		t.Fatal("profile total not stamped")
	}
	if s := res.Profile.String(); !strings.Contains(s, "operator") || !strings.Contains(s, "scan") {
		t.Fatalf("profile render missing table: %q", s)
	}
}

func TestProfileNotCollectedWithoutKeyword(t *testing.T) {
	db := newFakeDB(t, 100)
	res, err := RunSelect(db, selStmt(t, "SELECT x FROM t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("plain SELECT should not carry a profile")
	}
}

// The bugfix-sweep check: a conjunctive WHERE still consults segment min/max
// stats for its pushable conjunct, and the residual conjunct is applied.
func TestConjunctionPushdownSkipsBlocks(t *testing.T) {
	db := newFakeDB(t, 1000)
	res, err := RunSelect(db, selStmt(t, "PROFILE SELECT x FROM t WHERE x >= 900 AND y = 3"))
	if err != nil {
		t.Fatal(err)
	}
	// x in [900,1000) with x%7 == 3: x = 903, 910, ..., 994.
	want := 0
	for x := 900; x < 1000; x++ {
		if x%7 == 3 {
			want++
		}
	}
	if res.Len() != want {
		t.Fatalf("rows = %d, want %d", res.Len(), want)
	}
	got := map[string]OpProfile{}
	for _, op := range res.Profile.Ops() {
		got[op.Op] = op
	}
	if !strings.Contains(got["scan"].Detail, "9 skipped") {
		t.Fatalf("AND pushdown should still skip 9 blocks; scan detail %q", got["scan"].Detail)
	}
	if !strings.Contains(got["scan"].Detail, "pushdown ") {
		t.Fatalf("scan detail %q should name the pushed predicate", got["scan"].Detail)
	}
	if _, ok := got["filter"]; !ok {
		t.Fatal("residual conjunct should record a filter operator")
	}
	// The planner pushes the most selective conjunct and re-filters the
	// other; whichever it picked, the residual names the remaining column.
	if !strings.Contains(got["filter"].Detail, "y") && !strings.Contains(got["filter"].Detail, "x") {
		t.Fatalf("filter detail %q should reference the residual conjunct", got["filter"].Detail)
	}
}

func TestExtractPushdownConj(t *testing.T) {
	// Whole clause pushable: no residual.
	p, res := extractPushdownConj(expr(t, "i > 5"))
	if p == nil || res != nil {
		t.Fatalf("single comparison: p=%v res=%v", p, res)
	}
	// First conjunct pushable.
	p, res = extractPushdownConj(expr(t, "i > 5 AND f < 2.0 AND b"))
	if p == nil || p.Col != "i" || p.Op != colstore.OpGT {
		t.Fatalf("AND chain pushdown = %+v", p)
	}
	if res == nil || !strings.Contains(res.String(), "f") || !strings.Contains(res.String(), "b") {
		t.Fatalf("residual = %v, want remaining conjuncts", res)
	}
	// Pushable conjunct in the middle.
	p, res = extractPushdownConj(expr(t, "b AND i = 3 AND NOT b"))
	if p == nil || p.Col != "i" || p.Op != colstore.OpEQ {
		t.Fatalf("middle conjunct pushdown = %+v", p)
	}
	if res == nil {
		t.Fatal("residual should keep the non-pushable conjuncts")
	}
	// Nothing pushable: WHERE passes through untouched.
	e := expr(t, "b OR i > 5")
	p, res = extractPushdownConj(e)
	if p != nil || res != e {
		t.Fatalf("OR clause: p=%v res=%v", p, res)
	}
	if p, res = extractPushdownConj(nil); p != nil || res != nil {
		t.Fatal("nil WHERE")
	}
}

// Regression: COUNT(*) with no column references used to scan all columns
// against an empty projection schema and fail with a batch-append mismatch.
func TestCountStarNoWhere(t *testing.T) {
	db := newFakeDB(t, 100)
	res, err := RunSelect(db, selStmt(t, "SELECT count(*) FROM t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(100) {
		t.Fatalf("count = %v, want 100", res.Rows()[0][0])
	}
}
