package sqlexec

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"verticadr/internal/telemetry"
)

// OpProfile is one executed operator's measurements: rows and bytes through
// the stage, block-level scan accounting, the parallel degree the stage ran
// at, and its inclusive wall time.
type OpProfile struct {
	Op            string        `json:"op"` // scan, filter, project, aggregate, sort, limit, udtf, const
	Rows          int64         `json:"rows"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	Blocks        int64         `json:"blocks,omitempty"`
	BlocksSkipped int64         `json:"blocks_skipped,omitempty"`
	// BlocksCompressed counts blocks whose predicate was evaluated directly
	// on the encoded form (RLE runs / dictionary codes) — reported
	// distinctly from zone-map skips: a skipped block was never touched,
	// a compressed block was evaluated without being decoded.
	BlocksCompressed int64  `json:"blocks_compressed,omitempty"`
	Bytes            int64  `json:"bytes,omitempty"`
	Parallel         int    `json:"parallel,omitempty"`
	Detail           string `json:"detail,omitempty"`
}

// Profile is a per-query execution profile: per-operator row counts and
// timings in execution order, plus the query's total time. It is collected
// when the statement is PROFILE SELECT ... (or the caller opts in) and
// attached to the Result. Time comes from the telemetry Default clock, so
// profiles report virtual time under a simulation-driven clock.
type Profile struct {
	Query string
	Total time.Duration

	mu    sync.Mutex
	ops   []OpProfile
	clock telemetry.Clock
	start time.Duration
}

// NewProfile opens a profile on the default telemetry clock.
func NewProfile(query string) *Profile {
	c := telemetry.Default().Clock()
	return &Profile{Query: query, clock: c, start: c.Now()}
}

// Ops returns the recorded operators in completion order.
func (p *Profile) Ops() []OpProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]OpProfile(nil), p.ops...)
}

// opTimer times one operator. Exec stages set the structured fields (Blocks,
// Bytes, Parallel...) before calling Done. It serves two consumers at once:
// the Profile (when the statement is PROFILE'd) and the query's trace (when
// the context carries a span) — either can be absent at zero cost.
type opTimer struct {
	p    *Profile
	op   string
	t0   time.Duration
	span *telemetry.Span

	Blocks           int64
	BlocksSkipped    int64
	BlocksCompressed int64
	Bytes            int64
	Parallel         int
}

// startOp begins timing one operator. Nil-safe on prof: with a nil *Profile
// only the global per-operator row counters and the trace span (if the
// context is traced) are recorded.
func startOp(ctx context.Context, p *Profile, op string) *opTimer {
	t := &opTimer{p: p, op: op}
	if p != nil {
		t.t0 = p.clock.Now()
	}
	t.span = telemetry.SpanFromContext(ctx).StartChild("op:" + op)
	return t
}

// Done records the operator with the rows produced and a detail string.
func (t *opTimer) Done(rows int64, detail string) {
	telemetry.Default().Counter("sqlexec_op_rows_total", telemetry.L("op", t.op)).Add(rows)
	if t.span != nil {
		t.span.SetAttr("rows", strconv.FormatInt(rows, 10))
		if t.Blocks > 0 {
			t.span.SetAttr("blocks", strconv.FormatInt(t.Blocks, 10))
		}
		if t.BlocksSkipped > 0 {
			t.span.SetAttr("blocks_skipped", strconv.FormatInt(t.BlocksSkipped, 10))
		}
		if t.BlocksCompressed > 0 {
			t.span.SetAttr("blocks_compressed", strconv.FormatInt(t.BlocksCompressed, 10))
		}
		if t.Parallel > 0 {
			t.span.SetAttr("parallel", strconv.Itoa(t.Parallel))
		}
		t.span.End()
	}
	if t.p == nil {
		return
	}
	elapsed := t.p.clock.Now() - t.t0
	telemetry.Default().Counter("sqlexec_op_nanos_total", telemetry.L("op", t.op)).AddDuration(elapsed)
	t.p.mu.Lock()
	t.p.ops = append(t.p.ops, OpProfile{
		Op: t.op, Rows: rows, Elapsed: elapsed,
		Blocks: t.Blocks, BlocksSkipped: t.BlocksSkipped,
		BlocksCompressed: t.BlocksCompressed, Bytes: t.Bytes,
		Parallel: t.Parallel, Detail: detail,
	})
	t.p.mu.Unlock()
}

// finish stamps the total. Nil-safe.
func (p *Profile) finish() {
	if p == nil {
		return
	}
	p.Total = p.clock.Now() - p.start
}

// ProfileExport is the wire/JSON form of a Profile: what PROFILE SELECT
// returns as structured output and what the serving protocol attaches to an
// execute response.
type ProfileExport struct {
	Query   string      `json:"query,omitempty"`
	TotalNS int64       `json:"total_ns"`
	Ops     []OpProfile `json:"ops"`
}

// Export snapshots the profile into its structured form. Nil-safe: a nil
// profile exports nil.
func (p *Profile) Export() *ProfileExport {
	if p == nil {
		return nil
	}
	return &ProfileExport{Query: p.Query, TotalNS: int64(p.Total), Ops: p.Ops()}
}

// JSON renders the profile as indented JSON (the PROFILE structured output).
func (p *Profile) JSON() ([]byte, error) {
	return json.MarshalIndent(p.Export(), "", "  ")
}

// String renders the PROFILE output table:
//
//	operator     rows        time  detail
//	scan        10000     412µs    4 segments, 12 blocks scanned, 28 skipped, 82 KB
//	filter       4981     103µs    residual WHERE
//	...
//	total                  1.2ms
func (p *Profile) String() string {
	p.mu.Lock()
	ops := append([]OpProfile(nil), p.ops...)
	p.mu.Unlock()
	var sb strings.Builder
	if p.Query != "" {
		fmt.Fprintf(&sb, "%s\n", p.Query)
	}
	fmt.Fprintf(&sb, "%-10s %10s %12s  %s\n", "operator", "rows", "time", "detail")
	for _, op := range ops {
		fmt.Fprintf(&sb, "%-10s %10d %12v  %s\n", op.Op, op.Rows, op.Elapsed.Round(time.Microsecond), op.Detail)
	}
	fmt.Fprintf(&sb, "%-10s %10s %12v\n", "total", "", p.Total.Round(time.Microsecond))
	return sb.String()
}
