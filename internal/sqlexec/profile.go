package sqlexec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"verticadr/internal/telemetry"
)

// OpProfile is one executed operator's measurements.
type OpProfile struct {
	Op      string        // scan, filter, project, aggregate, sort, limit, udtf, const
	Rows    int64         // rows produced by the operator
	Elapsed time.Duration // inclusive operator time
	Detail  string        // operator-specific context (segments, blocks, keys...)
}

// Profile is a per-query execution profile: per-operator row counts and
// timings in execution order, plus the query's total time. It is collected
// when the statement is PROFILE SELECT ... (or the caller opts in) and
// attached to the Result. Time comes from the telemetry Default clock, so
// profiles report virtual time under a simulation-driven clock.
type Profile struct {
	Query string
	Total time.Duration

	mu    sync.Mutex
	ops   []OpProfile
	clock telemetry.Clock
	start time.Duration
}

// NewProfile opens a profile on the default telemetry clock.
func NewProfile(query string) *Profile {
	c := telemetry.Default().Clock()
	return &Profile{Query: query, clock: c, start: c.Now()}
}

// Ops returns the recorded operators in completion order.
func (p *Profile) Ops() []OpProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]OpProfile(nil), p.ops...)
}

// startOp begins timing one operator; the returned func records it with the
// rows produced and a detail string. Nil-safe: with a nil *Profile only the
// global per-operator row counters are recorded.
func (p *Profile) startOp(op string) func(rows int64, detail string) {
	var t0 time.Duration
	if p != nil {
		t0 = p.clock.Now()
	}
	return func(rows int64, detail string) {
		telemetry.Default().Counter("sqlexec_op_rows_total", telemetry.L("op", op)).Add(rows)
		if p == nil {
			return
		}
		elapsed := p.clock.Now() - t0
		telemetry.Default().Counter("sqlexec_op_nanos_total", telemetry.L("op", op)).AddDuration(elapsed)
		p.mu.Lock()
		p.ops = append(p.ops, OpProfile{Op: op, Rows: rows, Elapsed: elapsed, Detail: detail})
		p.mu.Unlock()
	}
}

// finish stamps the total. Nil-safe.
func (p *Profile) finish() {
	if p == nil {
		return
	}
	p.Total = p.clock.Now() - p.start
}

// String renders the PROFILE output table:
//
//	operator     rows        time  detail
//	scan        10000     412µs    4 segments, 12 blocks scanned, 28 skipped, 82 KB
//	filter       4981     103µs    residual WHERE
//	...
//	total                  1.2ms
func (p *Profile) String() string {
	p.mu.Lock()
	ops := append([]OpProfile(nil), p.ops...)
	p.mu.Unlock()
	var sb strings.Builder
	if p.Query != "" {
		fmt.Fprintf(&sb, "%s\n", p.Query)
	}
	fmt.Fprintf(&sb, "%-10s %10s %12s  %s\n", "operator", "rows", "time", "detail")
	for _, op := range ops {
		fmt.Fprintf(&sb, "%-10s %10d %12v  %s\n", op.Op, op.Rows, op.Elapsed.Round(time.Microsecond), op.Detail)
	}
	fmt.Fprintf(&sb, "%-10s %10s %12v\n", "total", "", p.Total.Round(time.Microsecond))
	return sb.String()
}
