package sqlexec

import "math"

func sqrt(a float64) float64  { return math.Sqrt(a) }
func floor(a float64) float64 { return math.Floor(a) }
func ceil(a float64) float64  { return math.Ceil(a) }
func ln(a float64) float64    { return math.Log(a) }
func exp(a float64) float64   { return math.Exp(a) }
