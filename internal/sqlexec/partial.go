package sqlexec

import (
	"fmt"

	"context"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

// Distributed aggregation support: a shard executes the scan + chunked
// partial aggregation locally and ships back per-group partial states
// (count, sum, min, max) instead of finalized values; the router folds the
// shard partials in shard order and finalizes once. Because the fold reuses
// aggState.merge — the same merge the intra-node chunk tree uses — and
// group first-appearance order composes across shards exactly as it does
// across chunks, the merged result is bitwise identical to running the
// query over the concatenated segments in one process (given the float
// exactness discipline of DESIGN.md §12; AVG divides only at the router).

// AggPartial is one shard's serializable partial-aggregation state.
type AggPartial struct {
	// OutTypes are the resolved output column types; every shard of the
	// same statement resolves identical types (they depend only on the
	// table schema and the statement).
	OutTypes []colstore.Type
	// Groups lists the shard's groups in first-appearance order.
	Groups []AggPartialGroup
}

// AggPartialGroup is one group's key and per-item partial states.
type AggPartialGroup struct {
	// Key is the rendered group key (the engine's internal map key).
	Key string
	// KeyVals are the group-by column values as first seen.
	KeyVals []any
	// States holds one partial state per projection item; nil entries mark
	// group-column passthrough items.
	States []*AggPartialState
}

// AggPartialState is the partial accumulation of one aggregate function
// over one group: COUNT/SUM ride Count/Sum, MIN/MAX ride the boxed
// extremes (nil only for states synthesized over zero rows).
type AggPartialState struct {
	Fn    string
	Count int64
	Sum   float64
	Min   any
	Max   any
}

// IsAggregateSelect reports whether sel executes through the aggregation
// pipeline: it has a GROUP BY or an aggregate projection item, and is not a
// UDTF invocation (which is classified first, as in the executor).
func IsAggregateSelect(sel *sqlparse.Select) bool {
	if udtfCall(sel) != nil {
		return false
	}
	if len(sel.GroupBy) > 0 {
		return true
	}
	for _, item := range sel.Items {
		if !item.Star && hasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

// RunPartialAggregate executes the scan and chunked partial aggregation of
// an aggregate SELECT over db — typically a single-shard view — without
// finalizing: ORDER BY, LIMIT and AVG's division are left to the merging
// side. The group order in the result is the shard's first-appearance
// order.
func RunPartialAggregate(ctx context.Context, db Database, sel *sqlparse.Select) (*AggPartial, error) {
	def, err := db.TableDef(sel.From)
	if err != nil {
		return nil, err
	}
	cols, err := collectCols(sel, def.Schema)
	if err != nil {
		return nil, err
	}
	plans, err := aggItemPlans(sel)
	if err != nil {
		return nil, err
	}
	data, err := scanTable(ctx, db, sel.From, cols, sel.Where, nil)
	if err != nil {
		return nil, err
	}
	part, argVecs, _, err := aggregateChunks(ctx, sel, plans, data)
	if err != nil {
		return nil, err
	}
	outTypes, err := aggOutputTypes(plans, data, argVecs)
	if err != nil {
		return nil, err
	}
	out := &AggPartial{OutTypes: outTypes}
	for _, key := range part.order {
		g := part.groups[key]
		pg := AggPartialGroup{Key: key, KeyVals: g.keyVals}
		for _, st := range g.states {
			if st == nil {
				pg.States = append(pg.States, nil)
				continue
			}
			pg.States = append(pg.States, &AggPartialState{
				Fn: st.fn, Count: st.count, Sum: st.sum, Min: st.min, Max: st.max,
			})
		}
		out.Groups = append(out.Groups, pg)
	}
	return out, nil
}

// MergeAggPartials folds shard partials — in the order given, which must be
// shard order for determinism — and finalizes the aggregate: output built
// in merged first-appearance order, then ORDER BY and LIMIT from sel.
// parts must hold at least one non-nil partial.
func MergeAggPartials(ctx context.Context, sel *sqlparse.Select, parts []*AggPartial) (*Result, error) {
	plans, err := aggItemPlans(sel)
	if err != nil {
		return nil, err
	}
	groups := map[string]*aggGroup{}
	var order []string
	var outTypes []colstore.Type
	for _, p := range parts {
		if p == nil {
			continue
		}
		if outTypes == nil {
			outTypes = p.OutTypes
		} else if len(p.OutTypes) != len(outTypes) {
			return nil, fmt.Errorf("sqlexec: shard partial has %d output types, want %d", len(p.OutTypes), len(outTypes))
		}
		for _, pg := range p.Groups {
			if len(pg.States) != len(plans) {
				return nil, fmt.Errorf("sqlexec: shard partial group has %d states, want %d", len(pg.States), len(plans))
			}
			g, ok := groups[pg.Key]
			if !ok {
				g = &aggGroup{keyVals: pg.KeyVals}
				for _, st := range pg.States {
					if st == nil {
						g.states = append(g.states, nil)
					} else {
						g.states = append(g.states, &aggState{
							fn: st.Fn, count: st.Count, sum: st.Sum, min: st.Min, max: st.Max,
						})
					}
				}
				groups[pg.Key] = g
				order = append(order, pg.Key)
				continue
			}
			for si, st := range pg.States {
				if st == nil || g.states[si] == nil {
					continue
				}
				if err := g.states[si].merge(&aggState{
					fn: st.Fn, count: st.Count, sum: st.Sum, min: st.Min, max: st.Max,
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	if outTypes == nil {
		return nil, fmt.Errorf("sqlexec: no shard partials to merge")
	}
	out, err := buildAggOutput(sel, plans, outTypes, groups, order)
	if err != nil {
		return nil, err
	}
	return finishSelect(ctx, out, sel, nil)
}
