package sqlexec

import (
	"context"
	"fmt"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
	"verticadr/internal/verr"
)

// MergeShardRows combines per-shard results of a non-aggregate SELECT into
// the final result. Each batch is one shard's already-finished output (the
// shard applied WHERE, projection, its local ORDER BY and LIMIT); batches
// must be given in shard order.
//
// Without ORDER BY the shards concatenate in shard order — exactly how the
// single-process scan concatenates per-node segments. With ORDER BY the
// sorted shard outputs k-way merge, ties breaking toward the lowest shard
// index; a stable merge of stably-sorted runs is bitwise identical to the
// stable sort of their concatenation, which is what the single-process
// engine computes. LIMIT is reapplied to the merged stream (each shard
// could only truncate locally).
func MergeShardRows(ctx context.Context, sel *sqlparse.Select, batches []*colstore.Batch) (*Result, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("sqlexec: no shard results to merge")
	}
	schema := batches[0].Schema
	for i, b := range batches[1:] {
		if !b.Schema.Equal(schema) {
			return nil, fmt.Errorf("sqlexec: shard %d result schema mismatch", i+1)
		}
	}
	if err := verr.Canceled(ctx.Err()); err != nil {
		return nil, err
	}
	limit := sel.Limit
	if len(sel.OrderBy) == 0 {
		out := colstore.NewBatch(schema)
		for _, b := range batches {
			if limit >= 0 && out.Len()+b.Len() > limit {
				b = b.Slice(0, limit-out.Len())
			}
			if err := out.AppendBatch(b); err != nil {
				return nil, err
			}
			if limit >= 0 && out.Len() >= limit {
				break
			}
		}
		return &Result{Batch: out}, nil
	}
	keys := make([]int, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		ci := schema.ColIndex(o.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sqlexec: ORDER BY column %q not in output", o.Col)
		}
		keys[i] = ci
	}
	// less reports whether shard a's head row sorts strictly before shard
	// b's; on equal keys neither does, and the scan below prefers the
	// lowest shard index, which is the stable tie-break.
	less := func(a *colstore.Batch, ra int, b *colstore.Batch, rb int) (bool, error) {
		for k, ci := range keys {
			c, err := colstore.CompareValues(a.Cols[ci].Value(ra), b.Cols[ci].Value(rb))
			if err != nil {
				return false, err
			}
			if c != 0 {
				if sel.OrderBy[k].Desc {
					return c > 0, nil
				}
				return c < 0, nil
			}
		}
		return false, nil
	}
	out := colstore.NewBatch(schema)
	heads := make([]int, len(batches))
	total := 0
	for _, b := range batches {
		total += b.Len()
	}
	for out.Len() < total {
		if limit >= 0 && out.Len() >= limit {
			break
		}
		best := -1
		for si, b := range batches {
			if heads[si] >= b.Len() {
				continue
			}
			if best < 0 {
				best = si
				continue
			}
			lt, err := less(b, heads[si], batches[best], heads[best])
			if err != nil {
				return nil, err
			}
			if lt {
				best = si
			}
		}
		if best < 0 {
			break
		}
		if err := out.AppendRow(batches[best].Row(heads[best])...); err != nil {
			return nil, err
		}
		heads[best]++
	}
	if limit >= 0 && out.Len() > limit {
		out = out.Slice(0, limit)
	}
	return &Result{Batch: out}, nil
}
