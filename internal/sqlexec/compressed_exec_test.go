package sqlexec

import (
	"math"
	"strings"
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/udf"
)

// newCompressibleDB builds t(g STRING, r INT, v FLOAT, seq INT) in sealed
// 100-row blocks: g alternates two values (DICT), r holds runs of 50 (RLE),
// v holds runs of 25 from a palette with NaN and -0.0 (RLE), seq is
// sequential (DELTA — never compressed-evaluable).
func newCompressibleDB(t *testing.T, n int) *fakeDB {
	t.Helper()
	schema := colstore.Schema{
		{Name: "g", Type: colstore.TypeString},
		{Name: "r", Type: colstore.TypeInt64},
		{Name: "v", Type: colstore.TypeFloat64},
		{Name: "seq", Type: colstore.TypeInt64},
	}
	seg := colstore.NewSegment(schema, 100)
	b := colstore.NewBatch(schema)
	vPalette := []float64{1.5, math.NaN(), math.Copysign(0, -1), 2.5}
	for i := 0; i < n; i++ {
		vals := []any{
			[]string{"red", "blue"}[i%2],
			int64(i / 50),
			vPalette[(i/25)%len(vPalette)],
			int64(i),
		}
		for c := range vals {
			if err := b.Cols[c].AppendValue(vals[c]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	return &fakeDB{def: &catalog.TableDef{Name: "t", Schema: schema}, seg: seg}
}

// resultsIdentical compares two results to float bits.
func resultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Schema()) != len(b.Schema()) {
		t.Fatalf("%s: schema width %d vs %d", label, len(a.Schema()), len(b.Schema()))
	}
	for i := range a.Schema() {
		if a.Schema()[i] != b.Schema()[i] {
			t.Fatalf("%s: schema[%d] %+v vs %+v", label, i, a.Schema()[i], b.Schema()[i])
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d rows vs %d", label, a.Len(), b.Len())
	}
	ra, rb := a.Rows(), b.Rows()
	for r := range ra {
		for c := range ra[r] {
			x, y := ra[r][c], rb[r][c]
			if fx, ok := x.(float64); ok {
				if math.Float64bits(fx) != math.Float64bits(y.(float64)) {
					t.Fatalf("%s: row %d col %d: %v (%#x) vs %v", label, r, c, x, math.Float64bits(fx), y)
				}
				continue
			}
			if x != y {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, r, c, x, y)
			}
		}
	}
}

// TestCompressedExecOnOffBitIdentical runs representative queries — scans
// with dict/RLE pushdown, dictionary-absent probes, run-aware aggregates
// over NaN and signed-zero runs — with compressed execution on and off, and
// requires bit-identical results.
func TestCompressedExecOnOffBitIdentical(t *testing.T) {
	db := newCompressibleDB(t, 400)
	queries := []string{
		"SELECT g, count(*), sum(r), min(v), max(v) FROM t GROUP BY g ORDER BY g",
		"SELECT count(r), sum(v), avg(v), min(r), max(g) FROM t",
		"SELECT r, v FROM t WHERE g = 'missing'",
		"SELECT seq FROM t WHERE g = 'red' LIMIT 7",
		"SELECT v, seq FROM t WHERE r >= 3",
		"SELECT g, seq FROM t WHERE v = 1.5",
		"SELECT g, sum(seq), avg(seq) FROM t GROUP BY g ORDER BY g",
		"SELECT count(*) FROM t WHERE g <> 'red' AND r < 2",
	}
	for _, q := range queries {
		colstore.SetCompressedEval(true)
		on, errOn := RunSelect(db, selStmt(t, q))
		colstore.SetCompressedEval(false)
		off, errOff := RunSelect(db, selStmt(t, q))
		colstore.SetCompressedEval(true)
		if (errOn != nil) != (errOff != nil) {
			t.Fatalf("%s: compressed err %v, decoded err %v", q, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		resultsIdentical(t, q, on, off)
	}
}

// TestRunAggregateNaNOverflowMatchesRowPath pins the issue's RLE aggregate
// edge cases: NaN runs poison SUM/AVG identically on both paths, MIN/MAX
// propagate through NaN runs the same way, and sums that overflow to +Inf
// do so on both paths.
func TestRunAggregateNaNOverflowMatchesRowPath(t *testing.T) {
	schema := colstore.Schema{
		{Name: "k", Type: colstore.TypeInt64},
		{Name: "w", Type: colstore.TypeFloat64},
	}
	seg := colstore.NewSegment(schema, 16)
	b := colstore.NewBatch(schema)
	huge := math.MaxFloat64
	wPalette := []float64{huge, huge, math.NaN(), math.Copysign(0, -1), -3.5}
	for i := 0; i < 80; i++ {
		if err := b.Cols[0].AppendValue(int64(i / 40)); err != nil {
			t.Fatal(err)
		}
		// Runs of 8: two MaxFloat64 runs in group 0 overflow its SUM to +Inf
		// before the NaN run arrives in group... (palette repeats per group).
		if err := b.Cols[1].AppendValue(wPalette[(i/8)%len(wPalette)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	db := &fakeDB{def: &catalog.TableDef{Name: "t", Schema: schema}, seg: seg}
	for _, q := range []string{
		"SELECT sum(w), avg(w), min(w), max(w), count(w) FROM t",
		"SELECT k, sum(w), min(w), max(w) FROM t GROUP BY k ORDER BY k",
	} {
		colstore.SetCompressedEval(true)
		on, err := RunSelect(db, selStmt(t, q))
		if err != nil {
			t.Fatalf("%s (compressed): %v", q, err)
		}
		colstore.SetCompressedEval(false)
		off, err := RunSelect(db, selStmt(t, q))
		colstore.SetCompressedEval(true)
		if err != nil {
			t.Fatalf("%s (decoded): %v", q, err)
		}
		resultsIdentical(t, q, on, off)
	}
}

// TestProfileDistinguishesSkippedAndCompressed pins the satellite: over a
// known 10-block segment, PROFILE must report zone-map-skipped blocks and
// compressed-evaluated blocks as distinct numbers in the scan OpProfile.
func TestProfileDistinguishesSkippedAndCompressed(t *testing.T) {
	schema := colstore.Schema{{Name: "x", Type: colstore.TypeInt64}}
	seg := colstore.NewSegment(schema, 100)
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64(i / 100) // block bi = 100 copies of bi: RLE + tight zone maps
	}
	bb := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.IntVector(xs)}}
	if err := seg.Append(bb); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	db := &fakeDB{def: &catalog.TableDef{Name: "t", Schema: schema}, seg: seg}
	res, err := RunSelect(db, selStmt(t, "PROFILE SELECT x FROM t WHERE x = 5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 100 {
		t.Fatalf("rows = %d, want 100", res.Len())
	}
	var scan OpProfile
	for _, op := range res.Profile.Ops() {
		if op.Op == "scan" {
			scan = op
		}
	}
	if scan.Blocks != 1 || scan.BlocksSkipped != 9 || scan.BlocksCompressed != 1 {
		t.Fatalf("scan profile %+v, want 1 block / 9 skipped / 1 compressed", scan)
	}
	if !strings.Contains(scan.Detail, "9 skipped") || !strings.Contains(scan.Detail, "1 evaluated compressed") {
		t.Fatalf("scan detail %q should report skips and compressed blocks distinctly", scan.Detail)
	}

	// The run-aware aggregate path reports its own scan/aggregate pair.
	res, err = RunSelect(db, selStmt(t, "PROFILE SELECT count(*), sum(x), min(x), max(x) FROM t"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]OpProfile{}
	for _, op := range res.Profile.Ops() {
		got[op.Op] = op
	}
	if got["scan"].BlocksCompressed != 10 || got["scan"].Blocks != 10 {
		t.Fatalf("run-aware scan profile %+v, want 10 blocks all compressed", got["scan"])
	}
	if !strings.Contains(got["aggregate"].Detail, "run-aware") {
		t.Fatalf("aggregate detail %q should mark the run-aware path", got["aggregate"].Detail)
	}
	rows := res.Rows()
	if rows[0][0] != int64(1000) || rows[0][1] != float64(4500) || rows[0][2] != int64(0) || rows[0][3] != int64(9) {
		t.Fatalf("run-aware aggregate results = %v", rows[0])
	}
}

// sumTransform is a minimal UDTF: one float column in, one row out per
// partition holding the partition's sum.
type sumTransform struct{}

func (sumTransform) OutputSchema(in colstore.Schema, params udf.Params) (colstore.Schema, error) {
	return colstore.Schema{{Name: "total", Type: colstore.TypeFloat64}}, nil
}

func (sumTransform) ProcessPartition(ctx *udf.Ctx, in udf.BatchReader, out udf.BatchWriter) error {
	total := 0.0
	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, x := range b.Cols[0].Floats {
			total += x
		}
	}
	return out.Write(&colstore.Batch{
		Schema: colstore.Schema{{Name: "total", Type: colstore.TypeFloat64}},
		Cols:   []*colstore.Vector{colstore.FloatVector([]float64{total})},
	})
}

type udtfFakeDB struct {
	fakeDB
	reg *udf.Registry
}

func (f *udtfFakeDB) UDFs() *udf.Registry { return f.reg }

// TestUDTFWhere: WHERE now filters UDTF input rows (pushdown + residual)
// instead of being rejected, and the scan profile carries the skip counts.
func TestUDTFWhere(t *testing.T) {
	schema := colstore.Schema{
		{Name: "x", Type: colstore.TypeInt64},
		{Name: "w", Type: colstore.TypeFloat64},
	}
	seg := colstore.NewSegment(schema, 100)
	b := colstore.NewBatch(schema)
	for i := 0; i < 1000; i++ {
		if err := b.Cols[0].AppendValue(int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Cols[1].AppendValue(float64(i % 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	reg := udf.NewRegistry()
	if err := reg.Register("PartSum", func() udf.Transform { return sumTransform{} }); err != nil {
		t.Fatal(err)
	}
	db := &udtfFakeDB{
		fakeDB: fakeDB{def: &catalog.TableDef{Name: "t", Schema: schema}, seg: seg},
		reg:    reg,
	}
	res, err := RunSelect(db, selStmt(t, "PROFILE SELECT PartSum(w) OVER (PARTITION BEST) FROM t WHERE x >= 900 AND w < 5"))
	if err != nil {
		t.Fatal(err)
	}
	// x in [900,1000) with w = x%10 < 5: 50 rows, each decade contributing
	// 0+1+2+3+4 = 10 → total 100.
	total := 0.0
	for _, row := range res.Rows() {
		total += row[0].(float64)
	}
	if total != 100 {
		t.Fatalf("partition sums total %v, want 100", total)
	}
	var scan OpProfile
	for _, op := range res.Profile.Ops() {
		if op.Op == "scan" {
			scan = op
		}
	}
	if scan.Rows != 50 {
		t.Fatalf("udtf scan rows = %d, want 50 after WHERE", scan.Rows)
	}
	if scan.BlocksSkipped != 9 {
		t.Fatalf("udtf scan profile %+v, want 9 zone-map skips", scan)
	}
	if !strings.Contains(scan.Detail, "9 skipped") || !strings.Contains(scan.Detail, "pushdown x") {
		t.Fatalf("udtf scan detail %q should report skips and the pushed predicate", scan.Detail)
	}

	// GROUP BY stays rejected.
	if _, err := RunSelect(db, selStmt(t, "SELECT PartSum(w) OVER (PARTITION BEST) FROM t GROUP BY x")); err == nil {
		t.Fatal("UDTF with GROUP BY should error")
	}
}
