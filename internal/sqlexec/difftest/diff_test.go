package difftest

import (
	"math"
	"testing"

	"verticadr/internal/parallel"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
)

// degrees exercised for every generated query. Degree 1 is the serial path;
// the others schedule the same chunks across workers and must not change a
// single bit of output.
var diffDegrees = []int{1, 2, 4}

// TestDifferentialEngineVsReference is the harness acceptance test: 600
// generated queries, each rendered to SQL, re-parsed, executed by the naive
// reference and by the engine — cost-based planner on AND off, at several
// parallel degrees — and compared exactly: schema, row order, and float
// bits. Every other table carries B-tree indexes, so the planner's
// index-scan path runs against the same queries the legacy pipeline serves
// with full scans.
func TestDifferentialEngineVsReference(t *testing.T) {
	defer parallel.SetDefaultDegree(0)
	defer sqlexec.SetPlanner(true)
	gen := NewGen(2026)
	sizes := []int{0, 1, 7, 60, 200, 400}
	const perTable = 50
	nQueries := 600
	if *shortRun {
		nQueries = 150
	}
	var errBoth, nonEmpty int
	var db *FakeDB
	for q := 0; q < nQueries; q++ {
		if q%perTable == 0 {
			nrows := sizes[(q/perTable)%len(sizes)]
			var err error
			db, err = gen.Table(nrows)
			if err != nil {
				t.Fatalf("table gen: %v", err)
			}
			if (q/perTable)%2 == 0 {
				if err := db.BuildIndexes("id", "a", "x", "s"); err != nil {
					t.Fatalf("index build: %v", err)
				}
			}
		}
		built := gen.Query(len(db.SrcRows))
		sql := built.String()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("query %d: generated SQL %q failed to parse: %v", q, sql, err)
		}
		sel := stmt.(*sqlparse.Select)

		ref, refErr := db.RunReference(sel)
		for _, deg := range diffDegrees {
			parallel.SetDefaultDegree(deg)
			for _, planner := range []bool{true, false} {
				sqlexec.SetPlanner(planner)
				res, engErr := sqlexec.RunSelect(db, sel)
				if (refErr != nil) != (engErr != nil) {
					t.Fatalf("query %d %q degree %d planner=%v: error mismatch\n  reference: %v\n  engine:    %v",
						q, sql, deg, planner, refErr, engErr)
				}
				if refErr != nil {
					errBoth++
					continue
				}
				compareResults(t, q, sql, deg, ref, res)
				if ref != nil && len(ref.Rows) > 0 {
					nonEmpty++
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no generated query produced rows; generator is broken")
	}
	t.Logf("ran %d queries x %d degrees x planner on/off: %d error-agreement cases, %d non-empty results",
		nQueries, len(diffDegrees), errBoth, nonEmpty)
}

// TestDifferentialJoinVsReference pins the hash-join path against a nested
// -loop reference: 300 generated equi-join queries over t/u table pairs
// (half of them indexed, some with NaN/-0.0 join keys), compared bitwise at
// several parallel degrees. Joins only execute through the planner, so this
// is the planner's acceptance harness for multi-table statements.
func TestDifferentialJoinVsReference(t *testing.T) {
	defer parallel.SetDefaultDegree(0)
	gen := NewGen(77)
	sizes := [][2]int{{0, 7}, {7, 0}, {1, 1}, {25, 60}, {60, 25}, {120, 90}}
	const perPair = 25
	nQueries := 300
	if *shortRun {
		nQueries = 75
	}
	var errBoth, nonEmpty int
	var db *MultiDB
	var lrows, rrows int
	for q := 0; q < nQueries; q++ {
		if q%perPair == 0 {
			sz := sizes[(q/perPair)%len(sizes)]
			lrows, rrows = sz[0], sz[1]
			tdb, err := gen.JoinTable("t", lrows)
			if err != nil {
				t.Fatalf("table gen: %v", err)
			}
			udb, err := gen.JoinTable("u", rrows)
			if err != nil {
				t.Fatalf("table gen: %v", err)
			}
			// Index int and string columns on alternating pairs; float
			// columns stay unindexed (join tables may hold NaN keys).
			if (q/perPair)%2 == 0 {
				if err := tdb.BuildIndexes("id", "a", "s"); err != nil {
					t.Fatalf("index build: %v", err)
				}
				if err := udb.BuildIndexes("a", "b", "s"); err != nil {
					t.Fatalf("index build: %v", err)
				}
			}
			db = NewMultiDB(tdb, udb)
		}
		built := gen.JoinQuery(lrows, rrows)
		sql := built.String()
		// Two private ASTs: the reference canonicalizes its copy in place.
		refStmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("query %d: generated SQL %q failed to parse: %v", q, sql, err)
		}
		engStmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("query %d: reparse %q: %v", q, sql, err)
		}

		ref, refErr := db.RunReference(refStmt.(*sqlparse.Select))
		for _, deg := range diffDegrees {
			parallel.SetDefaultDegree(deg)
			res, engErr := sqlexec.RunSelect(db, engStmt.(*sqlparse.Select))
			if (refErr != nil) != (engErr != nil) {
				t.Fatalf("query %d %q degree %d: error mismatch\n  reference: %v\n  engine:    %v",
					q, sql, deg, refErr, engErr)
			}
			if refErr != nil {
				errBoth++
				continue
			}
			compareResults(t, q, sql, deg, ref, res)
			if len(ref.Rows) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no generated join produced rows; generator is broken")
	}
	t.Logf("ran %d join queries x %d degrees: %d error-agreement cases, %d non-empty results",
		nQueries, len(diffDegrees), errBoth, nonEmpty)
}

func compareResults(t *testing.T, q int, sql string, deg int, ref *RefResult, res *sqlexec.Result) {
	t.Helper()
	engSchema := res.Schema()
	if len(engSchema) != len(ref.Schema) {
		t.Fatalf("query %d %q degree %d: schema width %d, reference %d",
			q, sql, deg, len(engSchema), len(ref.Schema))
	}
	for i := range ref.Schema {
		if engSchema[i].Name != ref.Schema[i].Name || engSchema[i].Type != ref.Schema[i].Type {
			t.Fatalf("query %d %q degree %d: schema col %d is %s/%v, reference %s/%v",
				q, sql, deg, i, engSchema[i].Name, engSchema[i].Type, ref.Schema[i].Name, ref.Schema[i].Type)
		}
	}
	engRows := res.Rows()
	if len(engRows) != len(ref.Rows) {
		t.Fatalf("query %d %q degree %d: %d rows, reference %d",
			q, sql, deg, len(engRows), len(ref.Rows))
	}
	for ri := range ref.Rows {
		for ci := range ref.Rows[ri] {
			if !valuesIdentical(engRows[ri][ci], ref.Rows[ri][ci]) {
				t.Fatalf("query %d %q degree %d: row %d col %d is %#v, reference %#v",
					q, sql, deg, ri, ci, engRows[ri][ci], ref.Rows[ri][ci])
			}
		}
	}
}

// valuesIdentical compares two boxed values exactly; floats by bit pattern.
func valuesIdentical(a, b any) bool {
	af, aIsF := a.(float64)
	bf, bIsF := b.(float64)
	if aIsF || bIsF {
		return aIsF && bIsF && math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}
