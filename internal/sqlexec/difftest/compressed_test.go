package difftest

import (
	"flag"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/parallel"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
)

// -difftest.short bounds the adversarial suite for CI smoke runs (make
// check); the full 600-query sweep still runs under plain `go test` and
// `make race`.
var shortRun = flag.Bool("difftest.short", false, "run a bounded compressed-execution differential suite")

// TestCompressedDifferentialAdversarial is the encoding-aware acceptance
// harness: generated queries over encoding-adversarial tables (long RLE runs
// with NaN and ±0.0, low-cardinality dictionary strings with absent-value
// probes, run boundaries straddling block edges, all-skipped zone-map
// blocks), executed three ways — the row-serial reference, the engine with
// compressed execution, and the engine decoding first — at parallel degrees
// 1/2/4. All three must agree to the float bit, or all must error.
func TestCompressedDifferentialAdversarial(t *testing.T) {
	defer parallel.SetDefaultDegree(0)
	defer colstore.SetCompressedEval(true)
	gen := NewGen(8088)
	// Sizes stay within one aggregation chunk (4096) so chunked MIN/MAX and
	// run-folded MIN/MAX see the same NaN merge order; 96/701 are chosen to
	// leave unsealed tails at every blockRows choice.
	sizes := []int{0, 1, 96, 256, 701, 2048}
	perTable := 50
	nQueries := 600
	if *shortRun {
		perTable = 20
		nQueries = 120
	}
	var errBoth, nonEmpty int
	var db *FakeDB
	for q := 0; q < nQueries; q++ {
		if q%perTable == 0 {
			nrows := sizes[(q/perTable)%len(sizes)]
			var err error
			db, err = gen.AdversarialTable(nrows)
			if err != nil {
				t.Fatalf("adversarial table gen: %v", err)
			}
		}
		built := gen.Query(len(db.SrcRows) + 1)
		sql := built.String()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("query %d: generated SQL %q failed to parse: %v", q, sql, err)
		}
		sel := stmt.(*sqlparse.Select)

		ref, refErr := db.RunReference(sel)
		for _, deg := range diffDegrees {
			parallel.SetDefaultDegree(deg)
			for _, compressed := range []bool{true, false} {
				colstore.SetCompressedEval(compressed)
				res, engErr := sqlexec.RunSelect(db, sel)
				if (refErr != nil) != (engErr != nil) {
					t.Fatalf("query %d %q degree %d compressed=%v: error mismatch\n  reference: %v\n  engine:    %v",
						q, sql, deg, compressed, refErr, engErr)
				}
				if refErr != nil {
					errBoth++
					continue
				}
				compareResults(t, q, sql, deg, ref, res)
				if compressed && deg == 1 && len(ref.Rows) > 0 {
					nonEmpty++
				}
			}
		}
		colstore.SetCompressedEval(true)
	}
	if nonEmpty == 0 {
		t.Fatal("no adversarial query produced rows; generator is broken")
	}
	t.Logf("ran %d queries x %d degrees x {compressed,decoded}: %d error-agreement cases, %d non-empty results",
		nQueries, len(diffDegrees), errBoth, nonEmpty)
}
