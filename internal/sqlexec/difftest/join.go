package difftest

import (
	"fmt"
	"strings"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
	"verticadr/internal/udf"
)

// MultiDB is an in-memory sqlexec.Database over several FakeDB tables, for
// differential testing of the planner's join path.
type MultiDB struct {
	Tables []*FakeDB
	reg    *udf.Registry
	Svcs   map[string]any
}

// NewMultiDB assembles a multi-table fake from per-table fakes.
func NewMultiDB(tables ...*FakeDB) *MultiDB {
	return &MultiDB{Tables: tables, reg: udf.NewRegistry()}
}

func (m *MultiDB) table(name string) (*FakeDB, error) {
	for _, t := range m.Tables {
		if t.Def.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("difftest: unknown table %q", name)
}

// TableDef implements sqlexec.Database.
func (m *MultiDB) TableDef(name string) (*catalog.TableDef, error) {
	t, err := m.table(name)
	if err != nil {
		return nil, err
	}
	return t.Def, nil
}

// Segments implements sqlexec.Database.
func (m *MultiDB) Segments(name string) ([]*colstore.Segment, error) {
	t, err := m.table(name)
	if err != nil {
		return nil, err
	}
	return t.Segs, nil
}

// UDFs implements sqlexec.Database.
func (m *MultiDB) UDFs() *udf.Registry { return m.reg }

// UDFInstancesPerNode implements sqlexec.Database.
func (m *MultiDB) UDFInstancesPerNode() int { return 2 }

// Services implements sqlexec.Database.
func (m *MultiDB) Services() map[string]any { return m.Svcs }

// BuildIndexes attaches B-tree indexes over the given columns to every
// segment, so generated point and range predicates exercise the planner's
// index-scan path.
func (db *FakeDB) BuildIndexes(cols ...string) error {
	for _, seg := range db.Segs {
		for _, c := range cols {
			if err := seg.BuildIndex(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunReference executes sel the naive way: single-table statements dispatch
// to the owning FakeDB's reference executor; join statements run as nested
// loops over the source rows — for each left row in order, for each right
// row in order, emit the concatenation when the ON keys compare equal under
// the engine's CompareValues ordering (int/float widening, ±0.0 equal, NaN
// equal to everything). That order is exactly what the engine's hash join
// produces (probe-row-major, build-row-ascending), so results compare
// positionally.
//
// The WHERE clause evaluates over the joined rows; the engine pushes
// single-table conjuncts below the join instead, which commutes because
// filters are row-local and order-preserving.
//
// Note: join statements canonicalize column references in sel in place —
// callers should pass an AST they own (the harness parses a private copy).
func (m *MultiDB) RunReference(sel *sqlparse.Select) (*RefResult, error) {
	if len(sel.Joins) == 0 {
		db, err := m.table(sel.From)
		if err != nil {
			return nil, err
		}
		return db.RunReference(sel)
	}
	type src struct {
		alias string
		db    *FakeDB
	}
	var scope []src
	addRef := func(table, alias string) error {
		db, err := m.table(table)
		if err != nil {
			return err
		}
		if alias == "" {
			alias = table
		}
		for _, s := range scope {
			if s.alias == alias {
				return fmt.Errorf("difftest: duplicate table alias %q", alias)
			}
		}
		scope = append(scope, src{alias: alias, db: db})
		return nil
	}
	if err := addRef(sel.From, sel.FromAlias); err != nil {
		return nil, err
	}
	for _, j := range sel.Joins {
		if err := addRef(j.Table, j.Alias); err != nil {
			return nil, err
		}
	}
	schema := qualifyRefSchema(scope[0].db.Def.Schema, scope[0].alias)
	rows := scope[0].db.SrcRows
	for ji := range sel.Joins {
		right := scope[ji+1]
		rschema := qualifyRefSchema(right.db.Def.Schema, right.alias)
		li, ri, err := refJoinKeys(sel.Joins[ji].On, schema, rschema)
		if err != nil {
			return nil, err
		}
		var joined [][]any
		for _, lr := range rows {
			for _, rr := range right.db.SrcRows {
				c, err := colstore.CompareValues(lr[li], rr[ri])
				if err != nil {
					return nil, err
				}
				if c == 0 {
					row := make([]any, 0, len(lr)+len(rr))
					row = append(append(row, lr...), rr...)
					joined = append(joined, row)
				}
			}
		}
		schema = append(append(colstore.Schema{}, schema...), rschema...)
		rows = joined
	}
	if err := refCanonicalize(sel, schema); err != nil {
		return nil, err
	}
	if sel.Where != nil {
		var kept [][]any
		for _, r := range rows {
			v, err := evalRow(sel.Where, schema, r)
			if err != nil {
				return nil, err
			}
			keep, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("difftest: WHERE clause is not boolean")
			}
			if keep {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	agg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && refHasAggregate(item.Expr) {
			agg = true
		}
	}
	var out *RefResult
	var err error
	if agg {
		out, err = refAggregate(schema, rows, sel)
	} else {
		out, err = refProject(schema, rows, sel)
	}
	if err != nil {
		return nil, err
	}
	if err := refOrderBy(out, sel.OrderBy); err != nil {
		return nil, err
	}
	if sel.Limit >= 0 && len(out.Rows) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
	}
	return out, nil
}

// qualifyRefSchema renames a table's columns to their canonical
// "alias.column" join form, matching the engine's qualifySchema.
func qualifyRefSchema(s colstore.Schema, alias string) colstore.Schema {
	out := make(colstore.Schema, len(s))
	for i, c := range s {
		out[i] = colstore.ColumnSchema{Name: alias + "." + c.Name, Type: c.Type}
	}
	return out
}

// refJoinKeys resolves an ON clause (`a.col = b.col`, one side per scope) to
// column indexes into the cumulative left schema and the joined table's
// schema, mirroring the planner's joinKeys rules: equality of two column
// references, one resolving on each side.
func refJoinKeys(on sqlparse.Expr, left, right colstore.Schema) (int, int, error) {
	bin, ok := on.(*sqlparse.Binary)
	if !ok || bin.Op != "=" {
		return 0, 0, fmt.Errorf("difftest: unsupported join condition %s", on.String())
	}
	lc, ok1 := bin.L.(*sqlparse.ColRef)
	rc, ok2 := bin.R.(*sqlparse.ColRef)
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("difftest: unsupported join condition %s", on.String())
	}
	combined := append(append(colstore.Schema{}, left...), right...)
	if err := refResolveCol(lc, combined); err != nil {
		return 0, 0, err
	}
	if err := refResolveCol(rc, combined); err != nil {
		return 0, 0, err
	}
	if li, ri := left.ColIndex(lc.Name), right.ColIndex(rc.Name); li >= 0 && ri >= 0 {
		return li, ri, nil
	}
	if li, ri := left.ColIndex(rc.Name), right.ColIndex(lc.Name); li >= 0 && ri >= 0 {
		return li, ri, nil
	}
	return 0, 0, fmt.Errorf("difftest: join condition %s must reference both sides", on.String())
}

// refCanonicalize rewrites every column reference in the statement to the
// joined schema's canonical "alias.column" names, mirroring the planner's
// normalizeJoin — including its unknown-name and ambiguity errors.
// Unresolvable ORDER BY names may be output aliases and are left alone.
func refCanonicalize(sel *sqlparse.Select, schema colstore.Schema) error {
	res := func(c *sqlparse.ColRef) error { return refResolveCol(c, schema) }
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if err := refWalk(it.Expr, res); err != nil {
			return err
		}
	}
	if sel.Where != nil {
		if err := refWalk(sel.Where, res); err != nil {
			return err
		}
	}
	for i, g := range sel.GroupBy {
		n, err := refResolveName(g, schema)
		if err != nil {
			return err
		}
		sel.GroupBy[i] = n
	}
	for i, o := range sel.OrderBy {
		n, err := refResolveName(o.Col, schema)
		if err != nil {
			continue
		}
		sel.OrderBy[i].Col = n
	}
	return nil
}

// refResolveCol canonicalizes one column reference against the joined
// schema: explicit qualifiers must name a known alias.column; bare names
// must match exactly one table.
func refResolveCol(c *sqlparse.ColRef, schema colstore.Schema) error {
	if c.Table != "" {
		c.Name = c.Table + "." + c.Name
		c.Table = ""
	}
	if schema.ColIndex(c.Name) >= 0 {
		return nil
	}
	if strings.IndexByte(c.Name, '.') > 0 {
		return fmt.Errorf("difftest: unknown column %q", c.Name)
	}
	found := ""
	for _, cs := range schema {
		if strings.HasSuffix(cs.Name, "."+c.Name) {
			if found != "" {
				return fmt.Errorf("difftest: ambiguous column %q", c.Name)
			}
			found = cs.Name
		}
	}
	if found == "" {
		return fmt.Errorf("difftest: unknown column %q", c.Name)
	}
	c.Name = found
	return nil
}

func refResolveName(s string, schema colstore.Schema) (string, error) {
	c := &sqlparse.ColRef{Name: s}
	if err := refResolveCol(c, schema); err != nil {
		return "", err
	}
	return c.Name, nil
}

// refWalk visits every column reference in the expression.
func refWalk(e sqlparse.Expr, f func(*sqlparse.ColRef) error) error {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		return f(x)
	case *sqlparse.Unary:
		return refWalk(x.X, f)
	case *sqlparse.Binary:
		if err := refWalk(x.L, f); err != nil {
			return err
		}
		return refWalk(x.R, f)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			if err := refWalk(a, f); err != nil {
				return err
			}
		}
	}
	return nil
}
