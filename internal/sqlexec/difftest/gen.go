package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

// Gen produces random tables and queries. All generated numeric data is
// drawn from small integers and exact half-integers, so every sum a query
// can compute is exact in float64 — the engine's chunked parallel
// accumulation and the reference's row-order loop then agree bitwise, and
// any difference is a real bug rather than float reassociation noise.
//
// The generator deliberately avoids two constructs: "/" (inexact, and the
// engine's int/int division promotes to float in eval order) is only exact
// by accident, and cross-type comparisons beyond the int/float widening the
// engine supports (they error data-dependently). Everything else the engine
// implements is fair game.
type Gen struct {
	rng *rand.Rand
}

// NewGen seeds a generator.
func NewGen(seed int64) *Gen { return &Gen{rng: rand.New(rand.NewSource(seed))} }

// TableSchema is the fixed schema used by generated tables.
func TableSchema() colstore.Schema {
	return colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeInt64},
		{Name: "b", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "y", Type: colstore.TypeFloat64},
		{Name: "s", Type: colstore.TypeString},
		{Name: "flag", Type: colstore.TypeBool},
	}
}

var genStrings = []string{"red", "green", "blue", "azul", "rot"}

// Table generates a fresh FakeDB with nrows rows spread over 1-3 segments.
func (g *Gen) Table(nrows int) (*FakeDB, error) {
	rows := make([][]any, nrows)
	for i := range rows {
		rows[i] = []any{
			int64(i),
			int64(g.rng.Intn(41) - 20),
			int64(g.rng.Intn(41) - 20),
			float64(g.rng.Intn(201)-100) / 2,
			float64(g.rng.Intn(201)-100) / 2,
			genStrings[g.rng.Intn(len(genStrings))],
			g.rng.Intn(2) == 0,
		}
	}
	nsegs := 1 + g.rng.Intn(3)
	blockRows := []int{16, 32, 48}[g.rng.Intn(3)]
	return NewFakeDB("t", TableSchema(), rows, nsegs, blockRows)
}

// AdversarialTable generates a FakeDB whose storage is encoding-adversarial
// for the compressed execution path:
//
//   - a holds long integer runs (RLE) whose length is chosen to straddle the
//     sealed-block boundary, so runs split across blocks;
//   - x holds float runs drawn from a palette with NaN, -0.0, +0.0 and exact
//     half-integers — RLE blocks whose zone maps vanish (NaN) and whose
//     values stress bitwise comparison;
//   - y is a large constant per ~block (thousands), so every small query
//     literal either zone-map-skips all blocks or selects everything;
//   - s is either a low-cardinality alternating subset of the query literals
//     plus "" (dictionary encoding; literals outside the subset probe values
//     absent from the dictionary) or long string runs (RLE strings);
//   - b stays incompressible and id sequential (DELTA), so mixed encodings
//     appear in every projection;
//   - flag holds long bool runs.
//
// Tables are split over 1-3 segments without sealing, so unsealed tails are
// always in play. Callers should keep nrows at or below one aggregation
// chunk (4096) so chunked and run-folded MIN/MAX see identical NaN merge
// order.
func (g *Gen) AdversarialTable(nrows int) (*FakeDB, error) {
	blockRows := []int{16, 32, 48}[g.rng.Intn(3)]
	rl := []int{7, 19, 37}[g.rng.Intn(3)] // run length, straddles every blockRows choice
	xPalette := []float64{math.NaN(), math.Copysign(0, -1), 0.0, 2.5, -7.5, 3}
	sub := append([]string{}, genStrings[:2+g.rng.Intn(2)]...)
	sub = append(sub, "") // empty string sorts before every literal
	dictMode := g.rng.Intn(2) == 0
	rows := make([][]any, nrows)
	for i := range rows {
		var sv string
		if dictMode {
			sv = sub[i%len(sub)] // alternating: dictionary beats RLE
		} else {
			sv = sub[(i/rl)%len(sub)] // long runs: RLE strings
		}
		rows[i] = []any{
			int64(i),
			int64((i/rl)%5 - 2),
			int64(g.rng.Intn(41) - 20),
			xPalette[(i/rl)%len(xPalette)],
			1000 * float64(i/blockRows+1),
			sv,
			(i/rl)%2 == 0,
		}
	}
	nsegs := 1 + g.rng.Intn(3)
	return NewFakeDB("t", TableSchema(), rows, nsegs, blockRows)
}

var numericCols = []string{"id", "a", "b", "x", "y"}
var intCols = []string{"id", "a", "b"}

func (g *Gen) numericCol() string { return numericCols[g.rng.Intn(len(numericCols))] }

// numExpr builds a numeric expression of bounded depth without division.
func (g *Gen) numExpr(depth int) sqlparse.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return &sqlparse.NumberLit{IsInt: true, Int: int64(g.rng.Intn(21) - 10)}
		default:
			return &sqlparse.ColRef{Name: g.numericCol()}
		}
	}
	if g.rng.Intn(5) == 0 {
		return &sqlparse.Unary{Op: "-", X: g.numExpr(depth - 1)}
	}
	ops := []string{"+", "-", "*"}
	return &sqlparse.Binary{
		Op: ops[g.rng.Intn(len(ops))],
		L:  g.numExpr(depth - 1),
		R:  g.numExpr(depth - 1),
	}
}

// boolExpr builds a WHERE-style predicate of bounded depth. Comparisons only
// mix types the engine can compare (numeric with numeric, string with
// string, bool with bool).
func (g *Gen) boolExpr(depth int) sqlparse.Expr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(6) {
		case 0:
			return &sqlparse.ColRef{Name: "flag"}
		case 1:
			return &sqlparse.Binary{
				Op: "=",
				L:  &sqlparse.ColRef{Name: "flag"},
				R:  &sqlparse.BoolLit{Val: g.rng.Intn(2) == 0},
			}
		case 2:
			return &sqlparse.Binary{
				Op: g.cmpOp(),
				L:  &sqlparse.ColRef{Name: "s"},
				R:  &sqlparse.StringLit{Val: genStrings[g.rng.Intn(len(genStrings))]},
			}
		default:
			return &sqlparse.Binary{
				Op: g.cmpOp(),
				L:  g.numExpr(1),
				R:  g.numExpr(1),
			}
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &sqlparse.Unary{Op: "NOT", X: g.boolExpr(depth - 1)}
	case 1:
		return &sqlparse.Binary{Op: "OR", L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	default:
		return &sqlparse.Binary{Op: "AND", L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	}
}

func (g *Gen) cmpOp() string {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	return ops[g.rng.Intn(len(ops))]
}

// aggCall builds one aggregate function call.
func (g *Gen) aggCall() *sqlparse.FuncCall {
	switch g.rng.Intn(6) {
	case 0:
		return &sqlparse.FuncCall{Name: "COUNT", Star: true}
	case 1:
		cols := []string{"id", "a", "x", "s", "flag"}
		return &sqlparse.FuncCall{Name: "COUNT", Args: []sqlparse.Expr{
			&sqlparse.ColRef{Name: cols[g.rng.Intn(len(cols))]},
		}}
	case 2, 3:
		fn := []string{"SUM", "AVG"}[g.rng.Intn(2)]
		return &sqlparse.FuncCall{Name: fn, Args: []sqlparse.Expr{g.numExpr(1)}}
	default:
		fn := []string{"MIN", "MAX"}[g.rng.Intn(2)]
		var arg sqlparse.Expr
		if g.rng.Intn(4) == 0 {
			arg = &sqlparse.ColRef{Name: "s"}
		} else {
			arg = &sqlparse.ColRef{Name: g.numericCol()}
		}
		return &sqlparse.FuncCall{Name: fn, Args: []sqlparse.Expr{arg}}
	}
}

// Query builds a random SELECT over table "t". Roughly half the queries
// aggregate; the rest project. Items always carry cN aliases so ORDER BY
// can reference any of them.
func (g *Gen) Query(nrows int) *sqlparse.Select {
	sel := &sqlparse.Select{From: "t", Limit: -1}
	if g.rng.Intn(10) == 0 {
		sel.Profile = true
	}
	var orderable []string
	if g.rng.Intn(2) == 0 {
		// Aggregate query.
		groupPool := []string{"a", "b", "s", "flag"}
		ngroup := g.rng.Intn(3)
		g.rng.Shuffle(len(groupPool), func(i, j int) { groupPool[i], groupPool[j] = groupPool[j], groupPool[i] })
		for _, gc := range groupPool[:ngroup] {
			sel.GroupBy = append(sel.GroupBy, gc)
			alias := fmt.Sprintf("c%d", len(sel.Items))
			sel.Items = append(sel.Items, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Name: gc},
				Alias: alias,
			})
			orderable = append(orderable, alias)
		}
		naggs := 1 + g.rng.Intn(3)
		for i := 0; i < naggs; i++ {
			alias := fmt.Sprintf("c%d", len(sel.Items))
			sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: g.aggCall(), Alias: alias})
			orderable = append(orderable, alias)
		}
	} else if g.rng.Intn(10) == 0 {
		// Star projection, sometimes with extra columns.
		sel.Items = append(sel.Items, sqlparse.SelectItem{Star: true})
		orderable = append(orderable, "id", "a", "s")
		if g.rng.Intn(2) == 0 {
			sel.Items = append(sel.Items, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Name: g.numericCol()},
				Alias: "extra",
			})
			orderable = append(orderable, "extra")
		}
	} else {
		// Expression projection.
		nitems := 1 + g.rng.Intn(4)
		for i := 0; i < nitems; i++ {
			alias := fmt.Sprintf("c%d", len(sel.Items))
			var e sqlparse.Expr
			switch g.rng.Intn(4) {
			case 0:
				e = &sqlparse.ColRef{Name: "s"}
			case 1:
				e = &sqlparse.ColRef{Name: "flag"}
			default:
				e = g.numExpr(2)
			}
			sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: e, Alias: alias})
			orderable = append(orderable, alias)
		}
	}
	if g.rng.Intn(10) < 7 {
		sel.Where = g.boolExpr(1 + g.rng.Intn(3))
	}
	if len(orderable) > 0 && g.rng.Intn(10) < 6 {
		nkeys := 1 + g.rng.Intn(2)
		g.rng.Shuffle(len(orderable), func(i, j int) { orderable[i], orderable[j] = orderable[j], orderable[i] })
		if nkeys > len(orderable) {
			nkeys = len(orderable)
		}
		for _, col := range orderable[:nkeys] {
			sel.OrderBy = append(sel.OrderBy, sqlparse.OrderItem{Col: col, Desc: g.rng.Intn(2) == 0})
		}
	}
	if g.rng.Intn(10) < 3 {
		sel.Limit = g.rng.Intn(nrows + 5)
	}
	return sel
}
