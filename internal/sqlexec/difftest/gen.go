package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

// Gen produces random tables and queries. All generated numeric data is
// drawn from small integers and exact half-integers, so every sum a query
// can compute is exact in float64 — the engine's chunked parallel
// accumulation and the reference's row-order loop then agree bitwise, and
// any difference is a real bug rather than float reassociation noise.
//
// The generator deliberately avoids two constructs: "/" (inexact, and the
// engine's int/int division promotes to float in eval order) is only exact
// by accident, and cross-type comparisons beyond the int/float widening the
// engine supports (they error data-dependently). Everything else the engine
// implements is fair game.
type Gen struct {
	rng *rand.Rand
	// quals, when non-empty, qualifies every generated column reference with
	// a randomly chosen table alias. Join queries set it: the two joined
	// tables share a schema, so bare references are ambiguous.
	quals []string
}

// col builds a column reference, qualified when a join scope is active.
func (g *Gen) col(name string) *sqlparse.ColRef {
	if len(g.quals) == 0 {
		return &sqlparse.ColRef{Name: name}
	}
	return &sqlparse.ColRef{Table: g.quals[g.rng.Intn(len(g.quals))], Name: name}
}

// NewGen seeds a generator.
func NewGen(seed int64) *Gen { return &Gen{rng: rand.New(rand.NewSource(seed))} }

// TableSchema is the fixed schema used by generated tables.
func TableSchema() colstore.Schema {
	return colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeInt64},
		{Name: "b", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "y", Type: colstore.TypeFloat64},
		{Name: "s", Type: colstore.TypeString},
		{Name: "flag", Type: colstore.TypeBool},
	}
}

var genStrings = []string{"red", "green", "blue", "azul", "rot"}

// Table generates a fresh FakeDB with nrows rows spread over 1-3 segments.
func (g *Gen) Table(nrows int) (*FakeDB, error) { return g.NamedTable("t", nrows) }

// NamedTable is Table with a caller-chosen table name (the join harness
// builds a "t"/"u" pair).
func (g *Gen) NamedTable(name string, nrows int) (*FakeDB, error) {
	nsegs := 1 + g.rng.Intn(3)
	blockRows := []int{16, 32, 48}[g.rng.Intn(3)]
	return NewFakeDB(name, TableSchema(), g.genRows(nrows), nsegs, blockRows)
}

// JoinTable is NamedTable plus, one time in three, a sprinkle of adversarial
// floats (NaN, -0.0, +0.0) over x and y. Under the engine's ordering a NaN
// join key compares equal to every value — the hash join routes such rows
// through match-everything side lists, and the nested-loop reference must
// agree row for row.
func (g *Gen) JoinTable(name string, nrows int) (*FakeDB, error) {
	rows := g.genRows(nrows)
	if g.rng.Intn(3) == 0 {
		palette := []float64{math.NaN(), math.Copysign(0, -1), 0.0, 2.5}
		for i := range rows {
			if g.rng.Intn(8) == 0 {
				rows[i][3] = palette[g.rng.Intn(len(palette))]
			}
			if g.rng.Intn(8) == 0 {
				rows[i][4] = palette[g.rng.Intn(len(palette))]
			}
		}
	}
	nsegs := 1 + g.rng.Intn(3)
	blockRows := []int{16, 32, 48}[g.rng.Intn(3)]
	return NewFakeDB(name, TableSchema(), rows, nsegs, blockRows)
}

func (g *Gen) genRows(nrows int) [][]any {
	rows := make([][]any, nrows)
	for i := range rows {
		rows[i] = []any{
			int64(i),
			int64(g.rng.Intn(41) - 20),
			int64(g.rng.Intn(41) - 20),
			float64(g.rng.Intn(201)-100) / 2,
			float64(g.rng.Intn(201)-100) / 2,
			genStrings[g.rng.Intn(len(genStrings))],
			g.rng.Intn(2) == 0,
		}
	}
	return rows
}

// AdversarialTable generates a FakeDB whose storage is encoding-adversarial
// for the compressed execution path:
//
//   - a holds long integer runs (RLE) whose length is chosen to straddle the
//     sealed-block boundary, so runs split across blocks;
//   - x holds float runs drawn from a palette with NaN, -0.0, +0.0 and exact
//     half-integers — RLE blocks whose zone maps vanish (NaN) and whose
//     values stress bitwise comparison;
//   - y is a large constant per ~block (thousands), so every small query
//     literal either zone-map-skips all blocks or selects everything;
//   - s is either a low-cardinality alternating subset of the query literals
//     plus "" (dictionary encoding; literals outside the subset probe values
//     absent from the dictionary) or long string runs (RLE strings);
//   - b stays incompressible and id sequential (DELTA), so mixed encodings
//     appear in every projection;
//   - flag holds long bool runs.
//
// Tables are split over 1-3 segments without sealing, so unsealed tails are
// always in play. Callers should keep nrows at or below one aggregation
// chunk (4096) so chunked and run-folded MIN/MAX see identical NaN merge
// order.
func (g *Gen) AdversarialTable(nrows int) (*FakeDB, error) {
	blockRows := []int{16, 32, 48}[g.rng.Intn(3)]
	rl := []int{7, 19, 37}[g.rng.Intn(3)] // run length, straddles every blockRows choice
	xPalette := []float64{math.NaN(), math.Copysign(0, -1), 0.0, 2.5, -7.5, 3}
	sub := append([]string{}, genStrings[:2+g.rng.Intn(2)]...)
	sub = append(sub, "") // empty string sorts before every literal
	dictMode := g.rng.Intn(2) == 0
	rows := make([][]any, nrows)
	for i := range rows {
		var sv string
		if dictMode {
			sv = sub[i%len(sub)] // alternating: dictionary beats RLE
		} else {
			sv = sub[(i/rl)%len(sub)] // long runs: RLE strings
		}
		rows[i] = []any{
			int64(i),
			int64((i/rl)%5 - 2),
			int64(g.rng.Intn(41) - 20),
			xPalette[(i/rl)%len(xPalette)],
			1000 * float64(i/blockRows+1),
			sv,
			(i/rl)%2 == 0,
		}
	}
	nsegs := 1 + g.rng.Intn(3)
	return NewFakeDB("t", TableSchema(), rows, nsegs, blockRows)
}

var numericCols = []string{"id", "a", "b", "x", "y"}
var intCols = []string{"id", "a", "b"}

func (g *Gen) numericCol() string { return numericCols[g.rng.Intn(len(numericCols))] }

// numExpr builds a numeric expression of bounded depth without division.
func (g *Gen) numExpr(depth int) sqlparse.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return &sqlparse.NumberLit{IsInt: true, Int: int64(g.rng.Intn(21) - 10)}
		default:
			return g.col(g.numericCol())
		}
	}
	if g.rng.Intn(5) == 0 {
		return &sqlparse.Unary{Op: "-", X: g.numExpr(depth - 1)}
	}
	ops := []string{"+", "-", "*"}
	return &sqlparse.Binary{
		Op: ops[g.rng.Intn(len(ops))],
		L:  g.numExpr(depth - 1),
		R:  g.numExpr(depth - 1),
	}
}

// boolExpr builds a WHERE-style predicate of bounded depth. Comparisons only
// mix types the engine can compare (numeric with numeric, string with
// string, bool with bool).
func (g *Gen) boolExpr(depth int) sqlparse.Expr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(6) {
		case 0:
			return g.col("flag")
		case 1:
			return &sqlparse.Binary{
				Op: "=",
				L:  g.col("flag"),
				R:  &sqlparse.BoolLit{Val: g.rng.Intn(2) == 0},
			}
		case 2:
			return &sqlparse.Binary{
				Op: g.cmpOp(),
				L:  g.col("s"),
				R:  &sqlparse.StringLit{Val: genStrings[g.rng.Intn(len(genStrings))]},
			}
		default:
			return &sqlparse.Binary{
				Op: g.cmpOp(),
				L:  g.numExpr(1),
				R:  g.numExpr(1),
			}
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &sqlparse.Unary{Op: "NOT", X: g.boolExpr(depth - 1)}
	case 1:
		return &sqlparse.Binary{Op: "OR", L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	default:
		return &sqlparse.Binary{Op: "AND", L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	}
}

func (g *Gen) cmpOp() string {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	return ops[g.rng.Intn(len(ops))]
}

// indexableConjunct emits a `col CMP literal` comparison the planner can
// serve from a zone map or a B-tree index — point and range probes whose
// literals land in (and just outside) the generated value ranges.
func (g *Gen) indexableConjunct(nrows int) sqlparse.Expr {
	switch g.rng.Intn(4) {
	case 0:
		return &sqlparse.Binary{Op: g.cmpOp(), L: g.col("id"),
			R: &sqlparse.NumberLit{IsInt: true, Int: int64(g.rng.Intn(nrows + 2))}}
	case 1:
		c := []string{"a", "b"}[g.rng.Intn(2)]
		return &sqlparse.Binary{Op: g.cmpOp(), L: g.col(c),
			R: &sqlparse.NumberLit{IsInt: true, Int: int64(g.rng.Intn(45) - 22)}}
	case 2:
		c := []string{"x", "y"}[g.rng.Intn(2)]
		return &sqlparse.Binary{Op: g.cmpOp(), L: g.col(c),
			R: &sqlparse.NumberLit{Float: float64(g.rng.Intn(201)-100) / 2}}
	default:
		return &sqlparse.Binary{Op: g.cmpOp(), L: g.col("s"),
			R: &sqlparse.StringLit{Val: genStrings[g.rng.Intn(len(genStrings))]}}
	}
}

// indexableWhere ANDs 1-3 indexable conjuncts at the top level, the shape
// the planner's conjunct analysis splits into primary/zone/residual and the
// index chooser feeds on.
func (g *Gen) indexableWhere(nrows int) sqlparse.Expr {
	w := g.indexableConjunct(nrows)
	for n := g.rng.Intn(3); n > 0; n-- {
		w = &sqlparse.Binary{Op: "AND", L: w, R: g.indexableConjunct(nrows)}
	}
	return w
}

// aggCall builds one aggregate function call.
func (g *Gen) aggCall() *sqlparse.FuncCall {
	switch g.rng.Intn(6) {
	case 0:
		return &sqlparse.FuncCall{Name: "COUNT", Star: true}
	case 1:
		cols := []string{"id", "a", "x", "s", "flag"}
		return &sqlparse.FuncCall{Name: "COUNT", Args: []sqlparse.Expr{
			g.col(cols[g.rng.Intn(len(cols))]),
		}}
	case 2, 3:
		fn := []string{"SUM", "AVG"}[g.rng.Intn(2)]
		return &sqlparse.FuncCall{Name: fn, Args: []sqlparse.Expr{g.numExpr(1)}}
	default:
		fn := []string{"MIN", "MAX"}[g.rng.Intn(2)]
		var arg sqlparse.Expr
		if g.rng.Intn(4) == 0 {
			arg = g.col("s")
		} else {
			arg = g.col(g.numericCol())
		}
		return &sqlparse.FuncCall{Name: fn, Args: []sqlparse.Expr{arg}}
	}
}

// Query builds a random SELECT over table "t". Roughly half the queries
// aggregate; the rest project. Items always carry cN aliases so ORDER BY
// can reference any of them.
func (g *Gen) Query(nrows int) *sqlparse.Select {
	sel := &sqlparse.Select{From: "t", Limit: -1}
	if g.rng.Intn(10) == 0 {
		sel.Profile = true
	}
	var orderable []string
	if g.rng.Intn(2) == 0 {
		// Aggregate query.
		groupPool := []string{"a", "b", "s", "flag"}
		ngroup := g.rng.Intn(3)
		g.rng.Shuffle(len(groupPool), func(i, j int) { groupPool[i], groupPool[j] = groupPool[j], groupPool[i] })
		for _, gc := range groupPool[:ngroup] {
			sel.GroupBy = append(sel.GroupBy, gc)
			alias := fmt.Sprintf("c%d", len(sel.Items))
			sel.Items = append(sel.Items, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Name: gc},
				Alias: alias,
			})
			orderable = append(orderable, alias)
		}
		naggs := 1 + g.rng.Intn(3)
		for i := 0; i < naggs; i++ {
			alias := fmt.Sprintf("c%d", len(sel.Items))
			sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: g.aggCall(), Alias: alias})
			orderable = append(orderable, alias)
		}
	} else if g.rng.Intn(10) == 0 {
		// Star projection, sometimes with extra columns.
		sel.Items = append(sel.Items, sqlparse.SelectItem{Star: true})
		orderable = append(orderable, "id", "a", "s")
		if g.rng.Intn(2) == 0 {
			sel.Items = append(sel.Items, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Name: g.numericCol()},
				Alias: "extra",
			})
			orderable = append(orderable, "extra")
		}
	} else {
		// Expression projection.
		nitems := 1 + g.rng.Intn(4)
		for i := 0; i < nitems; i++ {
			alias := fmt.Sprintf("c%d", len(sel.Items))
			var e sqlparse.Expr
			switch g.rng.Intn(4) {
			case 0:
				e = &sqlparse.ColRef{Name: "s"}
			case 1:
				e = &sqlparse.ColRef{Name: "flag"}
			default:
				e = g.numExpr(2)
			}
			sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: e, Alias: alias})
			orderable = append(orderable, alias)
		}
	}
	if g.rng.Intn(10) < 7 {
		if g.rng.Intn(3) == 0 {
			sel.Where = g.indexableWhere(nrows)
		} else {
			sel.Where = g.boolExpr(1 + g.rng.Intn(3))
		}
	}
	if len(orderable) > 0 && g.rng.Intn(10) < 6 {
		nkeys := 1 + g.rng.Intn(2)
		g.rng.Shuffle(len(orderable), func(i, j int) { orderable[i], orderable[j] = orderable[j], orderable[i] })
		if nkeys > len(orderable) {
			nkeys = len(orderable)
		}
		for _, col := range orderable[:nkeys] {
			sel.OrderBy = append(sel.OrderBy, sqlparse.OrderItem{Col: col, Desc: g.rng.Intn(2) == 0})
		}
	}
	if g.rng.Intn(10) < 3 {
		sel.Limit = g.rng.Intn(nrows + 5)
	}
	return sel
}

// JoinQuery builds a random equi-join SELECT over tables "t" and "u"
// (occasionally under explicit aliases), joining on numeric keys — same-type
// and cross-width int/float pairs, so the hash join's key widening gets
// exercised. Every column reference is qualified: the two tables share a
// schema, so bare names are ambiguous by construction.
func (g *Gen) JoinQuery(lrows, rrows int) *sqlparse.Select {
	lq, uq := "t", "u"
	sel := &sqlparse.Select{From: "t", Limit: -1}
	var joinAlias string
	if g.rng.Intn(3) == 0 {
		lq, uq = "lhs", "rhs"
		sel.FromAlias, joinAlias = lq, uq
	}
	pairs := [][2]string{
		{"a", "a"}, {"a", "b"}, {"b", "a"}, {"id", "a"}, {"id", "id"},
		{"a", "x"}, {"x", "a"}, {"x", "y"}, {"x", "x"},
	}
	kp := pairs[g.rng.Intn(len(pairs))]
	on := &sqlparse.Binary{
		Op: "=",
		L:  &sqlparse.ColRef{Table: lq, Name: kp[0]},
		R:  &sqlparse.ColRef{Table: uq, Name: kp[1]},
	}
	if g.rng.Intn(4) == 0 {
		on.L, on.R = on.R, on.L // either side of the equality may come first
	}
	sel.Joins = []sqlparse.Join{{Table: "u", Alias: joinAlias, On: on}}

	g.quals = []string{lq, uq}
	defer func() { g.quals = nil }()

	var orderable []string
	switch {
	case g.rng.Intn(2) == 0:
		// Aggregate over the join.
		groupPool := []string{lq + ".a", lq + ".s", uq + ".b", uq + ".flag", uq + ".s"}
		g.rng.Shuffle(len(groupPool), func(i, j int) { groupPool[i], groupPool[j] = groupPool[j], groupPool[i] })
		for _, gc := range groupPool[:g.rng.Intn(3)] {
			sel.GroupBy = append(sel.GroupBy, gc)
			alias := fmt.Sprintf("c%d", len(sel.Items))
			dot := strings.IndexByte(gc, '.')
			sel.Items = append(sel.Items, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Table: gc[:dot], Name: gc[dot+1:]},
				Alias: alias,
			})
			orderable = append(orderable, alias)
		}
		naggs := 1 + g.rng.Intn(3)
		for i := 0; i < naggs; i++ {
			alias := fmt.Sprintf("c%d", len(sel.Items))
			sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: g.aggCall(), Alias: alias})
			orderable = append(orderable, alias)
		}
	case g.rng.Intn(5) == 0:
		// Star: both tables' columns in scan order, qualified names.
		sel.Items = append(sel.Items, sqlparse.SelectItem{Star: true})
		orderable = append(orderable, lq+".id", uq+".id", lq+".a", uq+".s")
	default:
		// Expression projection mixing both sides.
		nitems := 1 + g.rng.Intn(4)
		for i := 0; i < nitems; i++ {
			alias := fmt.Sprintf("c%d", len(sel.Items))
			var e sqlparse.Expr
			switch g.rng.Intn(4) {
			case 0:
				e = g.col("s")
			case 1:
				e = g.col("flag")
			default:
				e = g.numExpr(2)
			}
			sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: e, Alias: alias})
			orderable = append(orderable, alias)
		}
	}
	if g.rng.Intn(10) < 6 {
		if g.rng.Intn(2) == 0 {
			sel.Where = g.indexableWhere(lrows + rrows)
		} else {
			sel.Where = g.boolExpr(1 + g.rng.Intn(2))
		}
	}
	if len(orderable) > 0 && g.rng.Intn(10) < 6 {
		nkeys := 1 + g.rng.Intn(2)
		g.rng.Shuffle(len(orderable), func(i, j int) { orderable[i], orderable[j] = orderable[j], orderable[i] })
		if nkeys > len(orderable) {
			nkeys = len(orderable)
		}
		for _, col := range orderable[:nkeys] {
			sel.OrderBy = append(sel.OrderBy, sqlparse.OrderItem{Col: col, Desc: g.rng.Intn(2) == 0})
		}
	}
	if g.rng.Intn(10) < 3 {
		sel.Limit = g.rng.Intn(lrows*2 + 5)
	}
	return sel
}
