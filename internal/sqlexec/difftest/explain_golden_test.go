package difftest

import (
	"context"
	"strings"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/udf"
)

// Golden EXPLAIN tests: deterministic tables, pinned output. The JSON form
// deliberately excludes timings and byte counts, so the full document —
// operators, access paths, estimated and actual row counts — is stable
// enough to compare verbatim. A drift here means the planner's choices or
// estimates changed, which must be a deliberate decision.

func goldenTable(t *testing.T) *FakeDB {
	t.Helper()
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
	}
	rows := make([][]any, 24)
	for i := range rows {
		rows[i] = []any{int64(i), int64(i % 6), float64(i) / 2}
	}
	db, err := NewFakeDB("t", schema, rows, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func goldenJoinSide(t *testing.T) *FakeDB {
	t.Helper()
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "b", Type: colstore.TypeInt64},
	}
	rows := make([][]any, 10)
	for i := range rows {
		rows[i] = []any{int64(i), int64(i % 3)}
	}
	db, err := NewFakeDB("u", schema, rows, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func runExplain(t *testing.T, db sqlexec.Database, sql string) string {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ex, ok := stmt.(*sqlparse.Explain)
	if !ok {
		t.Fatalf("parse %q: got %T, want *Explain", sql, stmt)
	}
	res, err := sqlexec.RunExplainCtx(context.Background(), db, ex)
	if err != nil {
		t.Fatalf("explain %q: %v", sql, err)
	}
	var lines []string
	for _, row := range res.Rows() {
		lines = append(lines, row[0].(string))
	}
	return strings.Join(lines, "\n")
}

func TestExplainGoldenIndexScan(t *testing.T) {
	db := goldenTable(t)
	if err := db.BuildIndexes("id"); err != nil {
		t.Fatal(err)
	}
	got := runExplain(t, db, "EXPLAIN (FORMAT JSON) SELECT a FROM t WHERE id = 7 ORDER BY a LIMIT 3")
	want := `{
  "op": "Limit",
  "detail": "LIMIT 3",
  "est_rows": 1,
  "actual_rows": 1,
  "children": [
    {
      "op": "Sort",
      "detail": "a",
      "est_rows": 1,
      "actual_rows": 1,
      "children": [
        {
          "op": "Project",
          "detail": "1 columns",
          "est_rows": 1,
          "actual_rows": 1,
          "children": [
            {
              "op": "IndexScan",
              "table": "t",
              "index": "id",
              "detail": "index(id) id = 7",
              "est_rows": 1,
              "actual_rows": 1
            }
          ]
        }
      ]
    }
  ]
}`
	if got != want {
		t.Fatalf("index-scan EXPLAIN drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The text form renders the same tree with est/actual inline.
	text := runExplain(t, db, "EXPLAIN SELECT a FROM t WHERE id = 7 ORDER BY a LIMIT 3")
	wantText := strings.Join([]string{
		"Limit [LIMIT 3] (est=1 actual=1)",
		"  -> Sort [a] (est=1 actual=1)",
		"    -> Project [1 columns] (est=1 actual=1)",
		"      -> IndexScan on t [index(id) id = 7] (est=1 actual=1)",
	}, "\n")
	if text != wantText {
		t.Fatalf("text EXPLAIN drifted:\n--- got ---\n%s\n--- want ---\n%s", text, wantText)
	}
}

func TestExplainGoldenHashJoin(t *testing.T) {
	db := NewMultiDB(goldenTable(t), goldenJoinSide(t))
	got := runExplain(t, db,
		"EXPLAIN (FORMAT JSON) SELECT t.a, u.b FROM t JOIN u ON t.a = u.b WHERE t.id = 20")
	want := `{
  "op": "Project",
  "detail": "2 columns",
  "est_rows": 1,
  "actual_rows": 3,
  "children": [
    {
      "op": "HashJoin",
      "detail": "t.a = u.b",
      "est_rows": 1,
      "actual_rows": 3,
      "children": [
        {
          "op": "SeqScan",
          "table": "t",
          "detail": "pushdown id = 20",
          "est_rows": 1,
          "actual_rows": 1
        },
        {
          "op": "SeqScan",
          "table": "u",
          "est_rows": 10,
          "actual_rows": 10
        }
      ]
    }
  ]
}`
	if got != want {
		t.Fatalf("hash-join EXPLAIN drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// shardStub stands in for the model manager's ShardInfoProvider.
type shardStub struct{ shards int }

func (s shardStub) ShardInfo(name string) (int, bool) {
	if name == "m" {
		return s.shards, true
	}
	return 0, false
}

// stubPredict is a minimal predict-shaped UDTF: one float output column,
// zero per input row. The golden test only needs the plan to execute.
type stubPredict struct{}

func (stubPredict) OutputSchema(in colstore.Schema, params udf.Params) (colstore.Schema, error) {
	if _, err := params.String("model"); err != nil {
		return nil, err
	}
	return colstore.Schema{{Name: "prediction", Type: colstore.TypeFloat64}}, nil
}

func (stubPredict) ProcessPartition(ctx *udf.Ctx, in udf.BatchReader, out udf.BatchWriter) error {
	for {
		b, err := in.Next()
		if err != nil || b == nil {
			return err
		}
		preds := make([]float64, b.Len())
		ob := &colstore.Batch{
			Schema: colstore.Schema{{Name: "prediction", Type: colstore.TypeFloat64}},
			Cols:   []*colstore.Vector{colstore.FloatVector(preds)},
		}
		if err := out.Write(ob); err != nil {
			return err
		}
	}
}

func TestExplainGoldenDotProductJoin(t *testing.T) {
	db := goldenTable(t)
	db.Svcs = map[string]any{"models": shardStub{shards: 4}}
	db.UDFs().MustRegister("GlmPredict", func() udf.Transform { return stubPredict{} })
	got := runExplain(t, db,
		"EXPLAIN (FORMAT JSON) SELECT GlmPredict(x USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t")
	want := `{
  "op": "DotProductJoin",
  "table": "t",
  "detail": "GLMPREDICT, model sharded 4 ways",
  "est_rows": 24,
  "actual_rows": 24,
  "children": [
    {
      "op": "SeqScan",
      "table": "t",
      "est_rows": 24,
      "actual_rows": 24
    }
  ]
}`
	if got != want {
		t.Fatalf("dot-product-join EXPLAIN drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
