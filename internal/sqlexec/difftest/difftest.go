// Package difftest is the differential test harness for the SQL engine: a
// deliberately naive row-at-a-time reference executor, a seeded random query
// generator, and an in-memory Database fake. The engine (serial and at every
// parallel degree) must agree with the reference exactly — including float
// bits, which works because the generator only produces values whose
// arithmetic is exact in float64 regardless of accumulation order.
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
	"verticadr/internal/udf"
)

// FakeDB is an in-memory sqlexec.Database over one table. Rows are stored
// both as segments (for the engine) and as boxed rows in source order (for
// the reference executor). Segments are filled with contiguous row ranges in
// order, so the engine's scan order equals the source row order and results
// can be compared positionally.
type FakeDB struct {
	Def     *catalog.TableDef
	Segs    []*colstore.Segment
	SrcRows [][]any
	reg     *udf.Registry
	// Svcs, when set, is exposed to the planner via Services — tests use it
	// to hand a ShardInfoProvider stub to the dot-product-join path.
	Svcs map[string]any
}

// NewFakeDB splits rows into nsegs contiguous segments with small blocks
// (so multi-block parallel scans actually happen).
func NewFakeDB(name string, schema colstore.Schema, rows [][]any, nsegs, blockRows int) (*FakeDB, error) {
	if nsegs < 1 {
		nsegs = 1
	}
	db := &FakeDB{
		Def:     &catalog.TableDef{Name: name, Schema: schema},
		SrcRows: rows,
		reg:     udf.NewRegistry(),
	}
	per := (len(rows) + nsegs - 1) / nsegs
	for i := 0; i < nsegs; i++ {
		seg := colstore.NewSegment(schema, blockRows)
		lo := i * per
		hi := lo + per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo < hi {
			batch := colstore.NewBatch(schema)
			for _, r := range rows[lo:hi] {
				if err := batch.AppendRow(r...); err != nil {
					return nil, err
				}
			}
			if err := seg.Append(batch); err != nil {
				return nil, err
			}
		}
		db.Segs = append(db.Segs, seg)
	}
	return db, nil
}

// TableDef implements sqlexec.Database.
func (db *FakeDB) TableDef(name string) (*catalog.TableDef, error) {
	if name != db.Def.Name {
		return nil, fmt.Errorf("difftest: unknown table %q", name)
	}
	return db.Def, nil
}

// Segments implements sqlexec.Database.
func (db *FakeDB) Segments(name string) ([]*colstore.Segment, error) {
	if name != db.Def.Name {
		return nil, fmt.Errorf("difftest: unknown table %q", name)
	}
	return db.Segs, nil
}

// UDFs implements sqlexec.Database.
func (db *FakeDB) UDFs() *udf.Registry { return db.reg }

// UDFInstancesPerNode implements sqlexec.Database.
func (db *FakeDB) UDFInstancesPerNode() int { return 2 }

// Services implements sqlexec.Database.
func (db *FakeDB) Services() map[string]any { return db.Svcs }

// RefResult is the reference executor's output.
type RefResult struct {
	Schema colstore.Schema
	Rows   [][]any
}

// RunReference executes sel against the fake's rows one row at a time, with
// none of the engine's batching, pushdown, chunking, or parallelism. It
// mirrors the engine's semantics: integer arithmetic stays integral except
// division, AND/OR evaluate both sides, groups appear in first-row order,
// aggregates over empty MIN/MAX input error, and ORDER BY is a stable sort.
func (db *FakeDB) RunReference(sel *sqlparse.Select) (*RefResult, error) {
	if sel.From != db.Def.Name {
		return nil, fmt.Errorf("difftest: unknown table %q", sel.From)
	}
	schema := db.Def.Schema
	agg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && refHasAggregate(item.Expr) {
			agg = true
		}
	}
	rows, err := db.filterRows(sel.Where)
	if err != nil {
		return nil, err
	}
	var out *RefResult
	if agg {
		out, err = refAggregate(schema, rows, sel)
	} else {
		out, err = refProject(schema, rows, sel)
	}
	if err != nil {
		return nil, err
	}
	if err := refOrderBy(out, sel.OrderBy); err != nil {
		return nil, err
	}
	if sel.Limit >= 0 && len(out.Rows) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
	}
	return out, nil
}

func (db *FakeDB) filterRows(where sqlparse.Expr) ([][]any, error) {
	if where == nil {
		return db.SrcRows, nil
	}
	var kept [][]any
	for _, r := range db.SrcRows {
		v, err := evalRow(where, db.Def.Schema, r)
		if err != nil {
			return nil, err
		}
		keep, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("difftest: WHERE clause is not boolean")
		}
		if keep {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

func refProject(schema colstore.Schema, rows [][]any, sel *sqlparse.Select) (*RefResult, error) {
	out := &RefResult{}
	type col struct {
		star bool
		expr sqlparse.Expr
	}
	var cols []col
	for i, item := range sel.Items {
		if item.Star {
			for _, c := range schema {
				out.Schema = append(out.Schema, c)
				cols = append(cols, col{expr: &sqlparse.ColRef{Name: c.Name}})
			}
			continue
		}
		t, err := inferType(item.Expr, schema)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = refExprName(item.Expr, i)
		}
		out.Schema = append(out.Schema, colstore.ColumnSchema{Name: name, Type: t})
		cols = append(cols, col{expr: item.Expr})
	}
	for _, r := range rows {
		orow := make([]any, len(cols))
		for ci, c := range cols {
			v, err := evalRow(c.expr, schema, r)
			if err != nil {
				return nil, err
			}
			orow[ci] = v
		}
		out.Rows = append(out.Rows, orow)
	}
	return out, nil
}

// refAgg mirrors sqlexec's aggState.
type refAgg struct {
	fn    string
	count int64
	sum   float64
	min   any
	max   any
}

func (a *refAgg) add(v any) error {
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		switch x := v.(type) {
		case int64:
			a.sum += float64(x)
		case float64:
			a.sum += x
		default:
			return fmt.Errorf("difftest: %s over non-numeric value %T", a.fn, v)
		}
	case "MIN":
		if a.min == nil {
			a.min = v
		} else if c, err := colstore.CompareValues(v, a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
	case "MAX":
		if a.max == nil {
			a.max = v
		} else if c, err := colstore.CompareValues(v, a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

func (a *refAgg) result() (any, error) {
	switch a.fn {
	case "COUNT":
		return a.count, nil
	case "SUM":
		return a.sum, nil
	case "AVG":
		if a.count == 0 {
			return 0.0, nil
		}
		return a.sum / float64(a.count), nil
	case "MIN":
		if a.min == nil {
			return nil, fmt.Errorf("difftest: MIN over empty input")
		}
		return a.min, nil
	case "MAX":
		if a.max == nil {
			return nil, fmt.Errorf("difftest: MAX over empty input")
		}
		return a.max, nil
	}
	return nil, fmt.Errorf("difftest: unknown aggregate %s", a.fn)
}

func refAggregate(schema colstore.Schema, rows [][]any, sel *sqlparse.Select) (*RefResult, error) {
	inGroup := func(name string) bool {
		for _, g := range sel.GroupBy {
			if g == name {
				return true
			}
		}
		return false
	}
	type plan struct {
		groupCol string
		fn       *sqlparse.FuncCall
		outName  string
		outType  colstore.Type
	}
	var plans []plan
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("difftest: SELECT * not allowed with aggregation")
		}
		name := item.Alias
		if name == "" {
			name = refExprName(item.Expr, i)
		}
		switch x := item.Expr.(type) {
		case *sqlparse.ColRef:
			if !inGroup(x.Name) {
				return nil, fmt.Errorf("difftest: column %q must appear in GROUP BY", x.Name)
			}
			ci := schema.ColIndex(x.Name)
			if ci < 0 {
				return nil, fmt.Errorf("difftest: unknown column %q", x.Name)
			}
			plans = append(plans, plan{groupCol: x.Name, outName: name, outType: schema[ci].Type})
		case *sqlparse.FuncCall:
			if !refIsAggregate(x.Name) {
				return nil, fmt.Errorf("difftest: %s is not an aggregate", x.Name)
			}
			if !x.Star && len(x.Args) != 1 {
				return nil, fmt.Errorf("difftest: %s takes one argument", x.Name)
			}
			p := plan{fn: x, outName: name}
			switch x.Name {
			case "COUNT":
				p.outType = colstore.TypeInt64
			case "SUM", "AVG":
				p.outType = colstore.TypeFloat64
			default: // MIN/MAX keep the argument type
				if x.Star {
					return nil, fmt.Errorf("difftest: %s(*) not supported", x.Name)
				}
				t, err := inferType(x.Args[0], schema)
				if err != nil {
					return nil, err
				}
				p.outType = t
			}
			plans = append(plans, p)
		default:
			return nil, fmt.Errorf("difftest: unsupported aggregate projection %s", item.Expr.String())
		}
	}
	type group struct {
		keyVals map[string]any
		states  []*refAgg
	}
	groups := map[string]*group{}
	var order []string
	newGroup := func() *group {
		g := &group{keyVals: map[string]any{}}
		for _, p := range plans {
			if p.fn != nil {
				g.states = append(g.states, &refAgg{fn: p.fn.Name})
			} else {
				g.states = append(g.states, nil)
			}
		}
		return g
	}
	for _, r := range rows {
		var kb strings.Builder
		kv := map[string]any{}
		for _, gc := range sel.GroupBy {
			ci := schema.ColIndex(gc)
			if ci < 0 {
				return nil, fmt.Errorf("difftest: unknown column %q", gc)
			}
			kv[gc] = r[ci]
			fmt.Fprintf(&kb, "%v\x00", r[ci])
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = newGroup()
			g.keyVals = kv
			groups[key] = g
			order = append(order, key)
		}
		for pi, p := range plans {
			if p.fn == nil {
				continue
			}
			var v any = int64(1) // COUNT(*)
			if !p.fn.Star {
				var err error
				v, err = evalRow(p.fn.Args[0], schema, r)
				if err != nil {
					return nil, err
				}
			}
			if err := g.states[pi].add(v); err != nil {
				return nil, err
			}
		}
	}
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		groups[""] = newGroup()
		order = append(order, "")
	}
	out := &RefResult{}
	for _, p := range plans {
		out.Schema = append(out.Schema, colstore.ColumnSchema{Name: p.outName, Type: p.outType})
	}
	for _, key := range order {
		g := groups[key]
		orow := make([]any, len(plans))
		for pi, p := range plans {
			if p.fn == nil {
				orow[pi] = g.keyVals[p.groupCol]
				continue
			}
			v, err := g.states[pi].result()
			if err != nil {
				return nil, err
			}
			orow[pi] = v
		}
		out.Rows = append(out.Rows, orow)
	}
	return out, nil
}

func refOrderBy(res *RefResult, keys []sqlparse.OrderItem) error {
	if len(keys) == 0 {
		return nil
	}
	idx := make([]int, len(keys))
	for i, o := range keys {
		ci := res.Schema.ColIndex(o.Col)
		if ci < 0 {
			return fmt.Errorf("difftest: ORDER BY column %q not in output", o.Col)
		}
		idx[i] = ci
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, ci := range idx {
			c, err := colstore.CompareValues(res.Rows[a][ci], res.Rows[b][ci])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if keys[k].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// evalRow evaluates an expression for one row, mirroring sqlexec's
// vectorized evaluator value for value.
func evalRow(e sqlparse.Expr, schema colstore.Schema, row []any) (any, error) {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		ci := schema.ColIndex(x.Name)
		if ci < 0 {
			return nil, fmt.Errorf("difftest: unknown column %q", x.Name)
		}
		return row[ci], nil
	case *sqlparse.NumberLit:
		if x.IsInt {
			return x.Int, nil
		}
		return x.Float, nil
	case *sqlparse.StringLit:
		return x.Val, nil
	case *sqlparse.BoolLit:
		return x.Val, nil
	case *sqlparse.Unary:
		v, err := evalRow(x.X, schema, row)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("difftest: unary minus on %T", v)
		case "NOT":
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("difftest: NOT on %T", v)
			}
			return !b, nil
		}
		return nil, fmt.Errorf("difftest: unknown unary op %q", x.Op)
	case *sqlparse.Binary:
		l, err := evalRow(x.L, schema, row)
		if err != nil {
			return nil, err
		}
		r, err := evalRow(x.R, schema, row)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+", "-", "*", "/":
			return rowArith(x.Op, l, r)
		case "=", "<>", "<", "<=", ">", ">=":
			c, err := colstore.CompareValues(l, r)
			if err != nil {
				return nil, err
			}
			switch x.Op {
			case "=":
				return c == 0, nil
			case "<>":
				return c != 0, nil
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			default:
				return c >= 0, nil
			}
		case "AND", "OR":
			lb, lok := l.(bool)
			rb, rok := r.(bool)
			if !lok || !rok {
				return nil, fmt.Errorf("difftest: %s requires booleans", x.Op)
			}
			if x.Op == "AND" {
				return lb && rb, nil
			}
			return lb || rb, nil
		}
		return nil, fmt.Errorf("difftest: unknown binary op %q", x.Op)
	}
	return nil, fmt.Errorf("difftest: unsupported expression %T", e)
}

func rowArith(op string, l, r any) (any, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt && op != "/" {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		default:
			return li * ri, nil
		}
	}
	lf, err := rowFloat(l)
	if err != nil {
		return nil, err
	}
	rf, err := rowFloat(r)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	default:
		return lf / rf, nil
	}
}

func rowFloat(v any) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("difftest: expected numeric value, got %T", v)
}

// inferType statically types an expression the same way the vectorized
// evaluator would, so zero-row outputs still carry the right schema.
func inferType(e sqlparse.Expr, schema colstore.Schema) (colstore.Type, error) {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		ci := schema.ColIndex(x.Name)
		if ci < 0 {
			return 0, fmt.Errorf("difftest: unknown column %q", x.Name)
		}
		return schema[ci].Type, nil
	case *sqlparse.NumberLit:
		if x.IsInt {
			return colstore.TypeInt64, nil
		}
		return colstore.TypeFloat64, nil
	case *sqlparse.StringLit:
		return colstore.TypeString, nil
	case *sqlparse.BoolLit:
		return colstore.TypeBool, nil
	case *sqlparse.Unary:
		if x.Op == "NOT" {
			return colstore.TypeBool, nil
		}
		return inferType(x.X, schema)
	case *sqlparse.Binary:
		switch x.Op {
		case "+", "-", "*", "/":
			lt, err := inferType(x.L, schema)
			if err != nil {
				return 0, err
			}
			rt, err := inferType(x.R, schema)
			if err != nil {
				return 0, err
			}
			if lt == colstore.TypeInt64 && rt == colstore.TypeInt64 && x.Op != "/" {
				return colstore.TypeInt64, nil
			}
			return colstore.TypeFloat64, nil
		default:
			return colstore.TypeBool, nil
		}
	}
	return 0, fmt.Errorf("difftest: cannot type %T", e)
}

func refExprName(e sqlparse.Expr, pos int) string {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		return x.Name
	case *sqlparse.FuncCall:
		return strings.ToLower(x.Name)
	default:
		return fmt.Sprintf("col%d", pos)
	}
}

func refIsAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func refHasAggregate(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if refIsAggregate(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if refHasAggregate(a) {
				return true
			}
		}
	case *sqlparse.Binary:
		return refHasAggregate(x.L) || refHasAggregate(x.R)
	case *sqlparse.Unary:
		return refHasAggregate(x.X)
	}
	return false
}
