package sqlexec

import (
	"math"
	"testing"
	"testing/quick"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

func testBatch() *colstore.Batch {
	return &colstore.Batch{
		Schema: colstore.Schema{
			{Name: "i", Type: colstore.TypeInt64},
			{Name: "f", Type: colstore.TypeFloat64},
			{Name: "s", Type: colstore.TypeString},
			{Name: "b", Type: colstore.TypeBool},
		},
		Cols: []*colstore.Vector{
			colstore.IntVector([]int64{1, 2, 3}),
			colstore.FloatVector([]float64{0.5, -1.5, 2.0}),
			colstore.StringVector([]string{"a", "B", "c"}),
			colstore.BoolVector([]bool{true, false, true}),
		},
	}
}

func expr(t *testing.T, s string) sqlparse.Expr {
	t.Helper()
	stmt, err := sqlparse.Parse("SELECT " + s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return stmt.(*sqlparse.Select).Items[0].Expr
}

func evalOne(t *testing.T, s string) *colstore.Vector {
	t.Helper()
	v, err := evalExpr(expr(t, s), testBatch())
	if err != nil {
		t.Fatalf("eval %q: %v", s, err)
	}
	return v
}

func TestEvalColumnAndLiterals(t *testing.T) {
	if v := evalOne(t, "i"); v.Ints[2] != 3 {
		t.Fatal("col ref")
	}
	if v := evalOne(t, "42"); v.Type != colstore.TypeInt64 || v.Ints[0] != 42 || v.Len() != 3 {
		t.Fatal("int literal broadcast")
	}
	if v := evalOne(t, "1.5"); v.Floats[1] != 1.5 {
		t.Fatal("float literal")
	}
	if v := evalOne(t, "'x'"); v.Strs[2] != "x" {
		t.Fatal("string literal")
	}
	if v := evalOne(t, "TRUE"); !v.Bools[0] {
		t.Fatal("bool literal")
	}
}

func TestEvalArithmeticTyping(t *testing.T) {
	// int op int stays int except division.
	if v := evalOne(t, "i + 1"); v.Type != colstore.TypeInt64 || v.Ints[0] != 2 {
		t.Fatalf("int add: %+v", v)
	}
	if v := evalOne(t, "i * i"); v.Ints[2] != 9 {
		t.Fatal("int mul")
	}
	if v := evalOne(t, "i / 2"); v.Type != colstore.TypeFloat64 || v.Floats[0] != 0.5 {
		t.Fatalf("division must be float: %+v", v)
	}
	// Mixed int/float widens.
	if v := evalOne(t, "i + f"); v.Type != colstore.TypeFloat64 || v.Floats[0] != 1.5 {
		t.Fatal("mixed widening")
	}
	if v := evalOne(t, "-f"); v.Floats[1] != 1.5 {
		t.Fatal("unary minus")
	}
	if v := evalOne(t, "-i"); v.Type != colstore.TypeInt64 || v.Ints[0] != -1 {
		t.Fatal("unary minus int")
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	if v := evalOne(t, "i >= 2"); v.Bools[0] || !v.Bools[1] || !v.Bools[2] {
		t.Fatalf("compare: %v", v.Bools)
	}
	if v := evalOne(t, "i = 2 OR i = 3"); v.Bools[0] || !v.Bools[1] {
		t.Fatal("or")
	}
	if v := evalOne(t, "b AND i < 3"); !v.Bools[0] || v.Bools[2] {
		t.Fatal("and")
	}
	if v := evalOne(t, "NOT b"); v.Bools[0] || !v.Bools[1] {
		t.Fatal("not")
	}
	if v := evalOne(t, "s <> 'a'"); v.Bools[0] || !v.Bools[1] {
		t.Fatal("string compare")
	}
	// int vs float numeric comparison.
	if v := evalOne(t, "i > f"); !v.Bools[0] || !v.Bools[1] {
		t.Fatal("cross-type compare")
	}
}

func TestEvalScalarFunctions(t *testing.T) {
	if v := evalOne(t, "abs(f)"); v.Floats[1] != 1.5 {
		t.Fatal("abs")
	}
	if v := evalOne(t, "sqrt(i + 1)"); math.Abs(v.Floats[2]-2) > 1e-12 {
		t.Fatal("sqrt")
	}
	if v := evalOne(t, "floor(f)"); v.Floats[0] != 0 || v.Floats[1] != -2 {
		t.Fatal("floor")
	}
	if v := evalOne(t, "ceil(f)"); v.Floats[0] != 1 {
		t.Fatal("ceil")
	}
	if v := evalOne(t, "exp(0)"); v.Floats[0] != 1 {
		t.Fatal("exp")
	}
	if v := evalOne(t, "ln(exp(1))"); math.Abs(v.Floats[0]-1) > 1e-12 {
		t.Fatal("ln")
	}
	if v := evalOne(t, "upper(s)"); v.Strs[0] != "A" {
		t.Fatal("upper")
	}
	if v := evalOne(t, "lower(s)"); v.Strs[1] != "b" {
		t.Fatal("lower")
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"zzz",         // unknown column
		"i AND b",     // AND on non-bool
		"NOT i",       // NOT on non-bool
		"-s",          // minus on string
		"s + 1",       // arithmetic on string
		"abs(s)",      // math on string
		"upper(i)",    // upper on int
		"abs(i, i)",   // arity
		"nosuchfn(i)", // unknown function
		"sum(i)",      // aggregate outside aggregation context
		"i = b",       // incomparable types
	}
	for _, s := range bad {
		if _, err := evalExpr(expr(t, s), testBatch()); err == nil {
			t.Fatalf("expected error for %q", s)
		}
	}
}

func TestExtractPushdown(t *testing.T) {
	cases := map[string]*colstore.Pred{
		"i > 5":     {Col: "i", Op: colstore.OpGT, Val: int64(5)},
		"5 > i":     {Col: "i", Op: colstore.OpLT, Val: int64(5)},
		"f <= 1.5":  {Col: "f", Op: colstore.OpLE, Val: 1.5},
		"s = 'x'":   {Col: "s", Op: colstore.OpEQ, Val: "x"},
		"b <> TRUE": {Col: "b", Op: colstore.OpNE, Val: true},
	}
	for s, want := range cases {
		got := extractPushdown(expr(t, s))
		if got == nil || got.Col != want.Col || got.Op != want.Op || got.Val != want.Val {
			t.Fatalf("pushdown %q = %+v, want %+v", s, got, want)
		}
	}
	// Not pushdownable shapes.
	for _, s := range []string{"i + 1 > 5", "i > f", "i > 5 AND f < 2", "NOT b"} {
		if got := extractPushdown(expr(t, s)); got != nil {
			t.Fatalf("%q should not push down, got %+v", s, got)
		}
	}
}

func TestLiteral(t *testing.T) {
	if v, ok := Literal(expr(t, "42")); !ok || v != int64(42) {
		t.Fatal("int literal")
	}
	if v, ok := Literal(expr(t, "-42")); !ok || v != int64(-42) {
		t.Fatal("negative int literal")
	}
	if v, ok := Literal(expr(t, "-1.5")); !ok || v != -1.5 {
		t.Fatal("negative float literal")
	}
	if v, ok := Literal(expr(t, "'hi'")); !ok || v != "hi" {
		t.Fatal("string literal")
	}
	if v, ok := Literal(expr(t, "FALSE")); !ok || v != false {
		t.Fatal("bool literal")
	}
	if _, ok := Literal(expr(t, "1 + 1")); ok {
		t.Fatal("expression is not a literal")
	}
	if _, ok := Literal(expr(t, "-'x'")); ok {
		t.Fatal("minus string is not a literal")
	}
}

func TestExprTypeInference(t *testing.T) {
	schema := testBatch().Schema
	cases := map[string]colstore.Type{
		"i":        colstore.TypeInt64,
		"f":        colstore.TypeFloat64,
		"s":        colstore.TypeString,
		"b":        colstore.TypeBool,
		"i + 1":    colstore.TypeInt64,
		"i + f":    colstore.TypeFloat64,
		"i / 2":    colstore.TypeFloat64,
		"i > 2":    colstore.TypeBool,
		"NOT b":    colstore.TypeBool,
		"-f":       colstore.TypeFloat64,
		"upper(s)": colstore.TypeString,
		"abs(f)":   colstore.TypeFloat64,
	}
	for s, want := range cases {
		got, err := exprType(expr(t, s), schema)
		if err != nil || got != want {
			t.Fatalf("exprType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := exprType(expr(t, "zzz"), schema); err == nil {
		t.Fatal("unknown column should fail")
	}
}

// Property: evaluating `i + C` always adds C to every row of any int column.
func TestQuickEvalAddConstant(t *testing.T) {
	f := func(vals []int64, c int16) bool {
		b := &colstore.Batch{
			Schema: colstore.Schema{{Name: "i", Type: colstore.TypeInt64}},
			Cols:   []*colstore.Vector{colstore.IntVector(vals)},
		}
		e := &sqlparse.Binary{
			Op: "+",
			L:  &sqlparse.ColRef{Name: "i"},
			R:  &sqlparse.NumberLit{IsInt: true, Int: int64(c)},
		}
		v, err := evalExpr(e, b)
		if err != nil || v.Len() != len(vals) {
			return false
		}
		for i := range vals {
			if v.Ints[i] != vals[i]+int64(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison results partition rows — (x < c) XOR (x >= c) is
// always true.
func TestQuickComparisonPartition(t *testing.T) {
	f := func(vals []float64, c float64) bool {
		b := &colstore.Batch{
			Schema: colstore.Schema{{Name: "f", Type: colstore.TypeFloat64}},
			Cols:   []*colstore.Vector{colstore.FloatVector(vals)},
		}
		lt, err1 := evalExpr(&sqlparse.Binary{Op: "<", L: &sqlparse.ColRef{Name: "f"}, R: &sqlparse.NumberLit{Float: c}}, b)
		ge, err2 := evalExpr(&sqlparse.Binary{Op: ">=", L: &sqlparse.ColRef{Name: "f"}, R: &sqlparse.NumberLit{Float: c}}, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range vals {
			if lt.Bools[i] == ge.Bools[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
