package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/parallel"
	"verticadr/internal/plan"
	"verticadr/internal/sqlparse"
	"verticadr/internal/telemetry"
	"verticadr/internal/udf"
	"verticadr/internal/verr"
)

// Database is the executor's view of the MPP database. internal/vertica
// implements it; tests can provide fakes.
type Database interface {
	// TableDef resolves a table definition.
	TableDef(name string) (*catalog.TableDef, error)
	// Segments returns one segment per node for the table (possibly empty
	// segments on nodes holding no rows).
	Segments(name string) ([]*colstore.Segment, error)
	// UDFs returns the transform-function registry.
	UDFs() *udf.Registry
	// UDFInstancesPerNode is the planner's parallelism for PARTITION BEST
	// (the paper: "Vertica's PARTITION BEST takes into account resource
	// availability ... to determine the optimal number of UDF instances").
	UDFInstancesPerNode() int
	// Services exposes extension services to UDFs (DFS, model manager...).
	Services() map[string]any
}

// Result is a fully materialized query result.
type Result struct {
	Batch *colstore.Batch
	// Profile holds per-operator measurements for PROFILE SELECT statements;
	// nil otherwise.
	Profile *Profile
}

// Schema returns the result schema.
func (r *Result) Schema() colstore.Schema { return r.Batch.Schema }

// Len returns the number of result rows.
func (r *Result) Len() int { return r.Batch.Len() }

// Rows renders all rows as boxed values (convenience for tests and shells).
func (r *Result) Rows() [][]any {
	out := make([][]any, r.Batch.Len())
	for i := range out {
		out[i] = r.Batch.Row(i)
	}
	return out
}

// RunSelect executes a SELECT statement. When sel.Profile is set (PROFILE
// SELECT ...) the result carries per-operator row counts and timings.
func RunSelect(db Database, sel *sqlparse.Select) (*Result, error) {
	return RunSelectCtx(context.Background(), db, sel)
}

// RunSelectCtx is RunSelect under a context: cancellation is honored at
// scan-block and aggregation-chunk boundaries (and between UDTF input
// batches), so a canceled query stops doing work within one block. The
// returned error wraps verr.ErrCanceled.
func RunSelectCtx(ctx context.Context, db Database, sel *sqlparse.Select) (*Result, error) {
	var prof *Profile
	if sel.Profile {
		prof = NewProfile("")
	}
	res, err := runSelect(ctx, db, sel, prof)
	if err != nil {
		return nil, err
	}
	prof.finish()
	res.Profile = prof
	return res, nil
}

func runSelect(ctx context.Context, db Database, sel *sqlparse.Select, prof *Profile) (*Result, error) {
	kind := "projection"
	defer func() {
		telemetry.Default().Counter("sqlexec_queries_total", telemetry.L("kind", kind)).Inc()
	}()
	if err := verr.Canceled(ctx.Err()); err != nil {
		return nil, err
	}
	// Joins only execute through the planner (hash-join path); planning
	// errors for them surface to the user.
	if len(sel.Joins) > 0 {
		kind = "join"
		p, err := plan.Build(sel, db)
		if err != nil {
			return nil, err
		}
		return execPlan(ctx, db, p, prof)
	}
	// UDTF query: exactly one projection which is a function call with OVER.
	if fc := udtfCall(sel); fc != nil {
		kind = "udtf"
		return runUDTF(ctx, db, sel, fc, prof)
	}
	if sel.From == "" {
		kind = "const"
		return runConstSelect(ctx, sel, prof)
	}
	agg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && hasAggregate(item.Expr) {
			agg = true
		}
	}
	if agg {
		kind = "aggregate"
	}
	if PlannerEnabled() {
		if p, err := plan.Build(sel, db); err == nil {
			return execPlan(ctx, db, p, prof)
		}
		// Planning failed: fall back to the fixed pipeline, which re-derives
		// the statement and reports its richer validation errors.
	}
	if agg {
		return runAggregate(ctx, db, sel, prof)
	}
	return runProjection(ctx, db, sel, prof)
}

func udtfCall(sel *sqlparse.Select) *sqlparse.FuncCall {
	if len(sel.Items) != 1 || sel.Items[0].Star {
		return nil
	}
	fc, ok := sel.Items[0].Expr.(*sqlparse.FuncCall)
	if !ok || fc.Over == nil {
		return nil
	}
	return fc
}

func runConstSelect(ctx context.Context, sel *sqlparse.Select, prof *Profile) (*Result, error) {
	done := startOp(ctx, prof, "const")
	defer func() { done.Done(1, "table-less SELECT") }()
	dummy := &colstore.Batch{
		Schema: colstore.Schema{{Name: "$dummy", Type: colstore.TypeInt64}},
		Cols:   []*colstore.Vector{colstore.IntVector([]int64{0})},
	}
	out := &colstore.Batch{}
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlexec: SELECT * requires a FROM clause")
		}
		v, err := evalExpr(item.Expr, dummy)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr, i)
		}
		out.Schema = append(out.Schema, colstore.ColumnSchema{Name: name, Type: v.Type})
		out.Cols = append(out.Cols, v)
	}
	return &Result{Batch: out}, nil
}

// collectCols gathers all column names referenced by the statement.
func collectCols(sel *sqlparse.Select, schema colstore.Schema) ([]string, error) {
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch x := e.(type) {
		case *sqlparse.ColRef:
			add(x.Name)
		case *sqlparse.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlparse.Unary:
			walk(x.X)
		case *sqlparse.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	for _, item := range sel.Items {
		if item.Star {
			for _, c := range schema {
				add(c.Name)
			}
			continue
		}
		walk(item.Expr)
	}
	if sel.Where != nil {
		walk(sel.Where)
	}
	for _, g := range sel.GroupBy {
		add(g)
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may reference an output alias; resolved later if so.
		if schema.ColIndex(o.Col) >= 0 {
			add(o.Col)
		}
	}
	for _, n := range names {
		if schema.ColIndex(n) < 0 {
			return nil, fmt.Errorf("sqlexec: %w %q", verr.ErrUnknownColumn, n)
		}
	}
	return names, nil
}

// scanTable scans all segments of a table in parallel, applying the WHERE
// clause (pushing down one single-column comparison — including the first
// pushable conjunct of an AND chain — for zone-map skipping), and returns
// the concatenated surviving rows projected to `cols`.
func scanTable(ctx context.Context, db Database, table string, cols []string, where sqlparse.Expr, prof *Profile) (*colstore.Batch, error) {
	pushed, residual := extractPushdownConj(where)
	return scanTableAccess(ctx, db, table, cols, pushed, nil, residual, prof)
}

// scanTableAccess is the scan engine under both pipelines: the fixed
// pipeline passes one pushed predicate and no zone predicates; the planner
// additionally passes every other pushable conjunct as a zone-map pruning
// predicate (their conjuncts stay in residual — zone predicates only skip
// whole blocks, never filter rows).
func scanTableAccess(ctx context.Context, db Database, table string, cols []string, pushed *colstore.Pred, zone []colstore.Pred, residual sqlparse.Expr, prof *Profile) (*colstore.Batch, error) {
	def, err := db.TableDef(table)
	if err != nil {
		return nil, err
	}
	segs, err := db.Segments(table)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		// COUNT(*) with no column references still needs row counts; scan
		// one column rather than (nil = all) against an empty projection.
		cols = []string{def.Schema[0].Name}
	}
	outSchema, err := def.Schema.Project(cols)
	if err != nil {
		return nil, err
	}
	scanDone := startOp(ctx, prof, "scan")
	// Each segment scans on its own goroutine (the per-node parallelism the
	// executor always had); within a segment, blocks decode on a worker pool
	// whose degree divides the process-wide degree across segments, so total
	// concurrency tracks -j regardless of segment count.
	deg := parallel.Default().Degree()
	segDeg := (deg + len(segs) - 1) / max(len(segs), 1)
	pool := parallel.NewPool(segDeg)
	results := make([]*colstore.Batch, len(segs))
	errs := make([]error, len(segs))
	stats := make([]colstore.ScanStats, len(segs))
	var scanRows, filterRows int64
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i int, seg *colstore.Segment) {
			defer wg.Done()
			// Scan needed + residual-filter columns, filter, then project.
			scanCols := cols
			if residual != nil {
				// Residual filters may need columns outside the projection.
				extra, err := collectCols(&sqlparse.Select{Where: residual}, def.Schema)
				if err != nil {
					errs[i] = err
					return
				}
				scanCols = union(cols, extra)
			}
			local := colstore.NewBatch(mustProject(def.Schema, scanCols))
			var idx []int // residual-filter scratch, reused across batches
			err := seg.ParScanZoneWithStatsCtx(ctx, scanCols, pushed, zone, pool, &stats[i], func(b *colstore.Batch) error {
				if residual != nil {
					keep, err := evalExpr(residual, b)
					if err != nil {
						return err
					}
					if keep.Type != colstore.TypeBool {
						return fmt.Errorf("sqlexec: WHERE clause is not boolean")
					}
					idx = idx[:0]
					for r, k := range keep.Bools {
						if k {
							idx = append(idx, r)
						}
					}
					// Gather straight into the accumulator: no intermediate
					// batch materializes the rejected rows.
					return local.AppendGather(b, idx)
				}
				return local.AppendBatch(b)
			})
			if err != nil {
				errs[i] = err
				return
			}
			pb, err := local.Project(cols)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = pb
		}(i, seg)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	var merged colstore.ScanStats
	for i := range stats {
		merged.Add(stats[i])
		scanRows += int64(stats[i].RowsOut)
	}
	detail := fmt.Sprintf("%d segments, degree %d, %d blocks scanned, %d skipped by zone maps, %d KB",
		len(segs), segDeg, merged.BlocksScanned, merged.BlocksSkipped, merged.BytesRead/1024)
	if merged.BlocksCompressed > 0 {
		detail += fmt.Sprintf(", %d evaluated compressed", merged.BlocksCompressed)
	}
	if merged.TailRows > 0 {
		detail += fmt.Sprintf(", %d tail rows", merged.TailRows)
	}
	if pushed != nil {
		detail += fmt.Sprintf(", pushdown %s %s %v", pushed.Col, pushed.Op, pushed.Val)
	}
	if len(zone) > 0 {
		detail += fmt.Sprintf(", %d zone predicates", len(zone))
	}
	scanDone.Blocks = int64(merged.BlocksScanned)
	scanDone.BlocksSkipped = int64(merged.BlocksSkipped)
	scanDone.BlocksCompressed = int64(merged.BlocksCompressed)
	scanDone.Bytes = int64(merged.BytesRead)
	scanDone.Parallel = segDeg * max(len(segs), 1)
	scanDone.Done(scanRows, detail)
	filterDone := startOp(ctx, prof, "filter")
	out := colstore.NewBatch(outSchema)
	for _, b := range results {
		if b == nil {
			continue
		}
		filterRows += int64(b.Len())
		if err := out.AppendBatch(b); err != nil {
			return nil, err
		}
	}
	if residual != nil {
		filterDone.Done(filterRows, fmt.Sprintf("residual WHERE %s", residual.String()))
	}
	return out, nil
}

func union(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func mustProject(s colstore.Schema, cols []string) colstore.Schema {
	p, err := s.Project(cols)
	if err != nil {
		panic(err)
	}
	return p
}

func runProjection(ctx context.Context, db Database, sel *sqlparse.Select, prof *Profile) (*Result, error) {
	def, err := db.TableDef(sel.From)
	if err != nil {
		return nil, err
	}
	cols, err := collectCols(sel, def.Schema)
	if err != nil {
		return nil, err
	}
	data, err := scanTable(ctx, db, sel.From, cols, sel.Where, prof)
	if err != nil {
		return nil, err
	}
	return projectBatch(ctx, sel, def.Schema, data, prof)
}

// projectBatch evaluates the projection items over scanned (or joined) rows.
// starSchema is the schema `SELECT *` expands against — the table definition
// under the fixed pipeline, the join output under the planner.
func projectBatch(ctx context.Context, sel *sqlparse.Select, starSchema colstore.Schema, data *colstore.Batch, prof *Profile) (*Result, error) {
	projDone := startOp(ctx, prof, "project")
	out := &colstore.Batch{}
	for i, item := range sel.Items {
		if item.Star {
			for _, c := range starSchema {
				ci := data.Schema.ColIndex(c.Name)
				out.Schema = append(out.Schema, c)
				out.Cols = append(out.Cols, data.Cols[ci])
			}
			continue
		}
		v, err := evalExpr(item.Expr, data)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr, i)
		}
		out.Schema = append(out.Schema, colstore.ColumnSchema{Name: name, Type: v.Type})
		out.Cols = append(out.Cols, v)
	}
	projDone.Done(int64(out.Len()), fmt.Sprintf("%d output columns", len(out.Schema)))
	return finishSelect(ctx, out, sel, prof)
}

// finishSelect applies ORDER BY and LIMIT to the projected output.
func finishSelect(ctx context.Context, out *colstore.Batch, sel *sqlparse.Select, prof *Profile) (*Result, error) {
	if len(sel.OrderBy) > 0 {
		sortDone := startOp(ctx, prof, "sort")
		keys := make([]int, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			ci := out.Schema.ColIndex(o.Col)
			if ci < 0 {
				return nil, fmt.Errorf("sqlexec: ORDER BY column %q not in output", o.Col)
			}
			keys[i] = ci
		}
		idx := make([]int, out.Len())
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			for k, ci := range keys {
				c, err := colstore.CompareValues(out.Cols[ci].Value(idx[a]), out.Cols[ci].Value(idx[b]))
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if sel.OrderBy[k].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		out = out.Gather(idx)
		sortDone.Done(int64(out.Len()), fmt.Sprintf("%d sort keys", len(keys)))
	}
	if sel.Limit >= 0 && out.Len() > sel.Limit {
		limitDone := startOp(ctx, prof, "limit")
		out = out.Slice(0, sel.Limit)
		limitDone.Done(int64(out.Len()), fmt.Sprintf("LIMIT %d", sel.Limit))
	}
	return &Result{Batch: out}, nil
}

// aggChunkRows is the fixed partial-aggregation chunk size. Chunk boundaries
// depend only on the input row count — never on the parallel degree — which
// is what makes aggregate results bitwise identical at every degree.
const aggChunkRows = 4096

// aggState accumulates one aggregate function over a group.
type aggState struct {
	fn    string
	count int64
	sum   float64
	min   any
	max   any
}

func (a *aggState) add(v any) error {
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		switch x := v.(type) {
		case int64:
			a.sum += float64(x)
		case float64:
			a.sum += x
		default:
			return fmt.Errorf("sqlexec: %s over non-numeric value %T", a.fn, v)
		}
	case "MIN":
		if a.min == nil {
			a.min = v
		} else if c, err := colstore.CompareValues(v, a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
	case "MAX":
		if a.max == nil {
			a.max = v
		} else if c, err := colstore.CompareValues(v, a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

// addRun folds a run of n identical values in O(1). For the values the
// engine stores this is exactly what n add(v) calls produce: COUNT is pure
// arithmetic; MIN/MAX compare once (n-1 of the n comparisons are v vs v,
// which never replace); SUM/AVG multiply by the run length, which matches
// iterated addition bitwise for values exact in float64 (the contract in
// DESIGN.md §12 — NaN and signed-zero runs propagate identically either
// way: x*n is NaN iff x is, and ±0.0 accumulation keeps the IEEE sign
// rules of repeated addition since the accumulator starts at +0.0).
//
// The one place the fold is NOT equivalent is when x is finite but x*n
// overflows to ±Inf: iterated addition may never overflow (a negative
// accumulator can absorb the run, or an already-infinite accumulator stays
// put where acc+Inf would go NaN), so that case falls back to n real adds.
// An infinite x folds safely — acc+Inf repeated n times equals one add.
func (a *aggState) addRun(v any, n int) error {
	if n <= 0 {
		return nil
	}
	a.count += int64(n)
	switch a.fn {
	case "SUM", "AVG":
		var x float64
		switch t := v.(type) {
		case int64:
			x = float64(t)
		case float64:
			x = t
		default:
			return fmt.Errorf("sqlexec: %s over non-numeric value %T", a.fn, v)
		}
		prod := x * float64(n)
		if math.IsInf(prod, 0) && !math.IsInf(x, 0) {
			for j := 0; j < n; j++ {
				a.sum += x
			}
		} else {
			a.sum += prod
		}
	case "MIN":
		if a.min == nil {
			a.min = v
		} else if c, err := colstore.CompareValues(v, a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
	case "MAX":
		if a.max == nil {
			a.max = v
		} else if c, err := colstore.CompareValues(v, a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

// merge folds another partial state for the same (group, aggregate) into a.
// Addition order is fixed by the reduction tree, so float sums are
// reproducible at any degree.
func (a *aggState) merge(b *aggState) error {
	a.count += b.count
	a.sum += b.sum
	if b.min != nil {
		if a.min == nil {
			a.min = b.min
		} else if c, err := colstore.CompareValues(b.min, a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = b.min
		}
	}
	if b.max != nil {
		if a.max == nil {
			a.max = b.max
		} else if c, err := colstore.CompareValues(b.max, a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = b.max
		}
	}
	return nil
}

func (a *aggState) result() any {
	switch a.fn {
	case "COUNT":
		return a.count
	case "SUM":
		return a.sum
	case "AVG":
		if a.count == 0 {
			return 0.0
		}
		return a.sum / float64(a.count)
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	}
	return nil
}

// aggItemPlan is one validated aggregate projection item: either a group-by
// column passthrough or an aggregate function call.
type aggItemPlan struct {
	isGroupCol bool
	colName    string
	fn         *sqlparse.FuncCall
	outName    string
}

// aggGroup is one group's accumulated state: the group-key values as first
// seen, plus one aggState per projection item (nil for group columns).
type aggGroup struct {
	keyVals []any
	states  []*aggState
}

// aggItemPlans validates the projection shape of an aggregate statement:
// every item is either a group-by column or an aggregate function call.
func aggItemPlans(sel *sqlparse.Select) ([]aggItemPlan, error) {
	plans := make([]aggItemPlan, 0, len(sel.Items))
	inGroup := func(name string) bool {
		for _, g := range sel.GroupBy {
			if g == name {
				return true
			}
		}
		return false
	}
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlexec: SELECT * not allowed with aggregation")
		}
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr, i)
		}
		switch x := item.Expr.(type) {
		case *sqlparse.ColRef:
			if !inGroup(x.Name) {
				return nil, fmt.Errorf("sqlexec: column %q must appear in GROUP BY", x.Name)
			}
			plans = append(plans, aggItemPlan{isGroupCol: true, colName: x.Name, outName: name})
		case *sqlparse.FuncCall:
			if !isAggregate(x.Name) {
				return nil, fmt.Errorf("sqlexec: %s is not an aggregate", x.Name)
			}
			if !x.Star && len(x.Args) != 1 {
				return nil, fmt.Errorf("sqlexec: %s takes one argument", x.Name)
			}
			plans = append(plans, aggItemPlan{fn: x, outName: name})
		default:
			return nil, fmt.Errorf("sqlexec: unsupported aggregate projection %s", item.Expr.String())
		}
	}
	return plans, nil
}

func runAggregate(ctx context.Context, db Database, sel *sqlparse.Select, prof *Profile) (*Result, error) {
	def, err := db.TableDef(sel.From)
	if err != nil {
		return nil, err
	}
	cols, err := collectCols(sel, def.Schema)
	if err != nil {
		return nil, err
	}
	plans, err := aggItemPlans(sel)
	if err != nil {
		return nil, err
	}
	// Run-aware fast path: with no WHERE and bare-column arguments, aggregate
	// directly over encoded runs instead of materializing every row.
	if res, handled, err := runAggregateRuns(ctx, db, sel, def, plans, prof); handled {
		return res, err
	}
	data, err := scanTable(ctx, db, sel.From, cols, sel.Where, prof)
	if err != nil {
		return nil, err
	}
	return aggregateBatch(ctx, sel, plans, data, prof)
}

// aggregateBatch runs the deterministic chunked partial aggregation over
// already-scanned (or joined) rows. Chunk boundaries depend only on the row
// count, so results are bitwise identical at every parallel degree.
func aggregateBatch(ctx context.Context, sel *sqlparse.Select, plans []aggItemPlan, data *colstore.Batch, prof *Profile) (*Result, error) {
	aggDone := startOp(ctx, prof, "aggregate")
	part, argVecs, nchunks, err := aggregateChunks(ctx, sel, plans, data)
	if err != nil {
		return nil, err
	}
	outTypes, err := aggOutputTypes(plans, data, argVecs)
	if err != nil {
		return nil, err
	}
	out, err := buildAggOutput(sel, plans, outTypes, part.groups, part.order)
	if err != nil {
		return nil, err
	}
	aggDone.Parallel = parallel.Default().Degree()
	aggDone.Done(int64(out.Len()), fmt.Sprintf("%d groups, %d aggregates, %d chunks", out.Len(), len(plans), nchunks))
	return finishSelect(ctx, out, sel, prof)
}

// aggPartialAcc is the accumulated partial-aggregation state: groups keyed
// by their rendered group key, plus the keys in first-appearance order.
type aggPartialAcc struct {
	groups map[string]*aggGroup
	order  []string
}

// aggregateChunks runs the deterministic chunked partial aggregation over
// data and returns the folded partial (plus the evaluated aggregate argument
// vectors, for output typing). Shared by the local finalizing path and the
// cluster's per-shard partial path.
func aggregateChunks(ctx context.Context, sel *sqlparse.Select, plans []aggItemPlan, data *colstore.Batch) (*aggPartialAcc, []*colstore.Vector, int, error) {
	// Evaluate aggregate argument vectors once.
	argVecs := make([]*colstore.Vector, len(plans))
	for pi, p := range plans {
		if p.fn != nil && !p.fn.Star {
			v, err := evalExpr(p.fn.Args[0], data)
			if err != nil {
				return nil, nil, 0, err
			}
			argVecs[pi] = v
		}
	}
	groupIdx := make([]int, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupIdx[i] = data.Schema.ColIndex(g)
	}
	// Partial aggregation: the scanned rows split into fixed-size contiguous
	// chunks (a function of data size only, never of degree), each chunk
	// builds its own hash table, and partials fold via parallel.Reduce's
	// deterministic tree. Merging adjacent chunks' first-appearance orders
	// yields exactly the serial first-appearance order, and float sums are
	// bitwise reproducible at every degree.
	type aggPartial = aggPartialAcc
	n := data.Len()
	nchunks := (n + aggChunkRows - 1) / aggChunkRows
	part, err := parallel.Reduce(parallel.Default(), nchunks,
		func(ci int) (*aggPartial, error) {
			// Cancellation is honored per 4096-row chunk.
			if err := verr.Canceled(ctx.Err()); err != nil {
				return nil, err
			}
			lo, hi := ci*aggChunkRows, (ci+1)*aggChunkRows
			if hi > n {
				hi = n
			}
			p := &aggPartial{groups: map[string]*aggGroup{}}
			for r := lo; r < hi; r++ {
				var kb strings.Builder
				keyVals := make([]any, len(groupIdx))
				for i, gi := range groupIdx {
					v := data.Cols[gi].Value(r)
					keyVals[i] = v
					fmt.Fprintf(&kb, "%v\x00", v)
				}
				key := kb.String()
				g, ok := p.groups[key]
				if !ok {
					g = &aggGroup{keyVals: keyVals}
					for _, pl := range plans {
						if pl.fn != nil {
							g.states = append(g.states, &aggState{fn: pl.fn.Name})
						} else {
							g.states = append(g.states, nil)
						}
					}
					p.groups[key] = g
					p.order = append(p.order, key)
				}
				for pi, pl := range plans {
					if pl.fn == nil {
						continue
					}
					var v any = int64(1) // COUNT(*)
					if !pl.fn.Star {
						v = argVecs[pi].Value(r)
					}
					if err := g.states[pi].add(v); err != nil {
						return nil, err
					}
				}
			}
			return p, nil
		},
		func(a, b *aggPartial) (*aggPartial, error) {
			for _, key := range b.order {
				bg := b.groups[key]
				ag, ok := a.groups[key]
				if !ok {
					a.groups[key] = bg
					a.order = append(a.order, key)
					continue
				}
				for si, s := range ag.states {
					if s == nil {
						continue
					}
					if err := s.merge(bg.states[si]); err != nil {
						return nil, err
					}
				}
			}
			return a, nil
		})
	if err != nil {
		return nil, nil, 0, err
	}
	if part == nil { // zero rows scanned: no chunks ran
		part = &aggPartial{groups: map[string]*aggGroup{}}
	}
	return part, argVecs, nchunks, nil
}

// aggOutputTypes resolves output column types (MIN/MAX keep their input
// type). Deterministic in the table schema and statement alone, so every
// shard of a distributed aggregate resolves the same types.
func aggOutputTypes(plans []aggItemPlan, data *colstore.Batch, argVecs []*colstore.Vector) ([]colstore.Type, error) {
	outTypes := make([]colstore.Type, len(plans))
	for pi, p := range plans {
		if p.isGroupCol {
			outTypes[pi] = data.Schema[data.Schema.ColIndex(p.colName)].Type
			continue
		}
		switch p.fn.Name {
		case "COUNT":
			outTypes[pi] = colstore.TypeInt64
		case "SUM", "AVG":
			outTypes[pi] = colstore.TypeFloat64
		default:
			if p.fn.Star {
				return nil, fmt.Errorf("sqlexec: %s(*) not supported", p.fn.Name)
			}
			outTypes[pi] = argVecs[pi].Type
		}
	}
	return outTypes, nil
}

// buildAggOutput materializes the grouped aggregate states into the output
// batch in group first-appearance order. A global aggregate over zero rows
// still yields one row (COUNT 0, SUM +0.0; MIN/MAX error).
func buildAggOutput(sel *sqlparse.Select, plans []aggItemPlan, outTypes []colstore.Type, groups map[string]*aggGroup, order []string) (*colstore.Batch, error) {
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		g := &aggGroup{}
		for _, p := range plans {
			g.states = append(g.states, &aggState{fn: p.fn.Name})
		}
		groups[""] = g
		order = append(order, "")
	}
	out := &colstore.Batch{}
	for pi, p := range plans {
		out.Schema = append(out.Schema, colstore.ColumnSchema{Name: p.outName, Type: outTypes[pi]})
		out.Cols = append(out.Cols, colstore.NewVector(outTypes[pi], len(order)))
	}
	for _, key := range order {
		g := groups[key]
		gi := 0
		for pi, p := range plans {
			var v any
			if p.isGroupCol {
				for i, name := range sel.GroupBy {
					if name == p.colName {
						gi = i
					}
				}
				v = g.keyVals[gi]
			} else {
				v = g.states[pi].result()
				if v == nil { // MIN/MAX over empty input
					return nil, fmt.Errorf("sqlexec: %s over empty input", p.fn.Name)
				}
			}
			if err := out.Cols[pi].AppendValue(v); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
