package sqlexec

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"verticadr/internal/colstore"
	"verticadr/internal/plan"
	"verticadr/internal/sqlparse"
	"verticadr/internal/udf"
	"verticadr/internal/verr"
)

// runUDTF executes a transform-function query of the form
//
//	SELECT f(args... USING PARAMETERS ...) OVER (PARTITION BEST | PARTITION BY cols) FROM t
//
// The planner spawns parallel function instances: with PARTITION BEST, each
// node's local segment is split into UDFInstancesPerNode chunks processed
// locally (the paper's locality-friendly mode, §3.1); with PARTITION BY, rows
// are grouped by the key columns and each group is one partition.
func runUDTF(ctx context.Context, db Database, sel *sqlparse.Select, fc *sqlparse.FuncCall, prof *Profile) (*Result, error) {
	if sel.From == "" {
		return nil, fmt.Errorf("sqlexec: UDTF query requires a FROM clause")
	}
	if len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("sqlexec: UDTF queries do not support GROUP BY")
	}
	factory, err := db.UDFs().Lookup(fc.Name)
	if err != nil {
		return nil, err
	}
	params, err := evalParams(fc.Params)
	if err != nil {
		return nil, err
	}
	def, err := db.TableDef(sel.From)
	if err != nil {
		return nil, err
	}
	segs, err := db.Segments(sel.From)
	if err != nil {
		return nil, err
	}
	// Resolve the UDTF input schema from its argument expressions.
	inSchema := make(colstore.Schema, len(fc.Args))
	for i, a := range fc.Args {
		name := exprName(a, i)
		t, err := exprType(a, def.Schema)
		if err != nil {
			return nil, err
		}
		inSchema[i] = colstore.ColumnSchema{Name: name, Type: t}
	}
	outSchema, err := factory().OutputSchema(inSchema, params)
	if err != nil {
		return nil, err
	}
	// Columns needed to evaluate the argument expressions.
	need, err := collectExprCols(fc.Args, def.Schema)
	if err != nil {
		return nil, err
	}
	// WHERE filters the UDTF's input rows before partitioning: the planner's
	// access chooser pushes the most selective pushable conjunct down to the
	// storage scan exactly (zone-map skipping + compressed evaluation) and
	// every other pushable conjunct as a zone-map-only pruning predicate;
	// the rest evaluates as a residual over the scanned batch.
	acc, err := plan.ScanAccess(db, sel.From, sel.Where, true)
	if err != nil {
		return nil, err
	}
	pushed, zone, residual := acc.Primary, acc.Zone, acc.Residual
	if sel.Where != nil {
		if _, err := collectCols(&sqlparse.Select{Where: sel.Where}, def.Schema); err != nil {
			return nil, err
		}
	}
	if residual != nil {
		extra, err := collectCols(&sqlparse.Select{Where: residual}, def.Schema)
		if err != nil {
			return nil, err
		}
		need = union(need, extra)
	}
	over := fc.Over
	if !over.PartitionBest && len(over.PartitionBy) > 0 {
		for _, c := range over.PartitionBy {
			if def.Schema.ColIndex(c) < 0 {
				return nil, fmt.Errorf("sqlexec: PARTITION BY column %q unknown", c)
			}
		}
		need = union(need, over.PartitionBy)
	}

	type partition struct {
		node int
		data *colstore.Batch // already projected to inSchema
	}
	scanDone := startOp(ctx, prof, "scan")
	var scanStats colstore.ScanStats
	var scanRows int64
	var parts []partition
	for node, seg := range segs {
		raw, err := readSegment(ctx, seg, need, def.Schema, pushed, zone, residual, &scanStats)
		if err != nil {
			return nil, err
		}
		scanRows += int64(raw.Len())
		argBatch, err := evalArgs(fc.Args, raw, inSchema)
		if err != nil {
			return nil, err
		}
		switch {
		case over.PartitionBest || len(over.PartitionBy) == 0:
			k := db.UDFInstancesPerNode()
			if k <= 0 {
				k = 1
			}
			n := argBatch.Len()
			if n == 0 {
				continue
			}
			if k > n {
				k = n
			}
			// Slab-allocate the k partition views (instead of k Batch.Slice
			// calls): three allocations per node regardless of instance count.
			nc := len(argBatch.Cols)
			vecs := make([]colstore.Vector, k*nc)
			ptrs := make([]*colstore.Vector, k*nc)
			views := make([]colstore.Batch, k)
			for i := 0; i < k; i++ {
				lo, hi := i*n/k, (i+1)*n/k
				if lo == hi {
					continue
				}
				cols := ptrs[i*nc : (i+1)*nc : (i+1)*nc]
				for c, src := range argBatch.Cols {
					src.SliceInto(&vecs[i*nc+c], lo, hi)
					cols[c] = &vecs[i*nc+c]
				}
				views[i] = colstore.Batch{Schema: argBatch.Schema, Cols: cols}
				parts = append(parts, partition{node: node, data: &views[i]})
			}
		default: // PARTITION BY
			groups := map[string][]int{}
			var order []string
			keyIdx := make([]int, len(over.PartitionBy))
			for i, c := range over.PartitionBy {
				keyIdx[i] = raw.Schema.ColIndex(c)
			}
			for r := 0; r < raw.Len(); r++ {
				var kb strings.Builder
				for _, ki := range keyIdx {
					fmt.Fprintf(&kb, "%v\x00", raw.Cols[ki].Value(r))
				}
				key := kb.String()
				if _, ok := groups[key]; !ok {
					order = append(order, key)
				}
				groups[key] = append(groups[key], r)
			}
			for _, key := range order {
				parts = append(parts, partition{node: node, data: argBatch.Gather(groups[key])})
			}
		}
	}

	scanDone.Blocks = int64(scanStats.BlocksScanned)
	scanDone.BlocksSkipped = int64(scanStats.BlocksSkipped)
	scanDone.BlocksCompressed = int64(scanStats.BlocksCompressed)
	scanDone.Bytes = int64(scanStats.BytesRead)
	scanDetail := fmt.Sprintf("%d segments, %d blocks scanned, %d skipped by zone maps, %d KB",
		len(segs), scanStats.BlocksScanned, scanStats.BlocksSkipped, scanStats.BytesRead/1024)
	if scanStats.BlocksCompressed > 0 {
		scanDetail += fmt.Sprintf(", %d evaluated compressed", scanStats.BlocksCompressed)
	}
	if pushed != nil {
		scanDetail += fmt.Sprintf(", pushdown %s %s %v", pushed.Col, pushed.Op, pushed.Val)
	}
	if len(zone) > 0 {
		scanDetail += fmt.Sprintf(", %d zone predicates", len(zone))
	}
	scanDone.Done(scanRows, scanDetail)

	// Run all partitions in parallel (bounded). Each partition writes into
	// its own AppendWriter — UDFs that score into pooled batches get the
	// copy-on-write ReusableWriter path without cross-partition locking —
	// and the results merge in partition order below, so UDTF output order
	// is deterministic regardless of goroutine interleaving.
	udtfDone := startOp(ctx, prof, "udtf")
	writers := make([]*udf.AppendWriter, len(parts))
	sem := make(chan struct{}, maxParallel(len(parts)))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	instanceOnNode := map[int]int{}
	services := db.Services() // snapshot once; instances only read it
	for i, p := range parts {
		inst := instanceOnNode[p.node]
		instanceOnNode[p.node]++
		writers[i] = udf.NewAppendWriter(outSchema)
		wg.Add(1)
		go func(i int, p partition, inst int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			uctx := &udf.Ctx{
				Params:   params,
				NodeID:   p.node,
				NumNodes: len(segs),
				Instance: inst,
				Services: services,
			}
			tf := factory()
			// The input reader re-checks the query context between batches,
			// so a canceled query stops feeding the UDF within one block.
			in := &ctxReader{ctx: ctx, inner: streamReader(p.data)}
			errs[i] = tf.ProcessPartition(uctx, in, writers[i])
		}(i, p, inst)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	rows := 0
	for _, w := range writers {
		rows += w.Out.Len()
	}
	merged := colstore.NewBatchCap(outSchema, rows)
	for _, w := range writers {
		if err := merged.AppendBatch(w.Out); err != nil {
			return nil, err
		}
	}
	udtfDone.Parallel = maxParallel(len(parts))
	udtfDone.Done(int64(merged.Len()), fmt.Sprintf("%s over %d partitions", fc.Name, len(parts)))
	return finishSelect(ctx, merged, sel, prof)
}

func maxParallel(n int) int {
	if n < 1 {
		return 1
	}
	if n > 64 {
		return 64
	}
	return n
}

// streamReader feeds a batch to the UDF in storage-sized chunks so transforms
// see a stream rather than one giant batch. One view batch (and its column
// headers) is reused across Next calls — allowed by the BatchReader contract,
// which only guarantees a batch until the next call.
func streamReader(b *colstore.Batch) udf.BatchReader {
	return &viewReader{src: b}
}

type viewReader struct {
	src  *colstore.Batch
	off  int
	hdrs []colstore.Vector
	view colstore.Batch
}

func (r *viewReader) Next() (*colstore.Batch, error) {
	if r.off >= r.src.Len() {
		return nil, nil
	}
	hi := r.off + colstore.DefaultBlockRows
	if hi > r.src.Len() {
		hi = r.src.Len()
	}
	if r.hdrs == nil {
		r.hdrs = make([]colstore.Vector, len(r.src.Cols))
		cols := make([]*colstore.Vector, len(r.src.Cols))
		for i := range r.hdrs {
			cols[i] = &r.hdrs[i]
		}
		r.view = colstore.Batch{Schema: r.src.Schema, Cols: cols}
	}
	for i, c := range r.src.Cols {
		c.SliceInto(&r.hdrs[i], r.off, hi)
	}
	r.off = hi
	return &r.view, nil
}

func readSegment(ctx context.Context, seg *colstore.Segment, cols []string, schema colstore.Schema, pushed *colstore.Pred, zone []colstore.Pred, residual sqlparse.Expr, st *colstore.ScanStats) (*colstore.Batch, error) {
	if len(cols) == 0 {
		// UDTF with no arguments still needs the row count; scan one column.
		cols = []string{schema[0].Name}
	}
	out := colstore.NewBatch(mustProject(schema, cols))
	var idx []int // residual-filter scratch, reused across batches
	err := seg.ScanZoneWithStatsCtx(ctx, cols, pushed, zone, st, func(b *colstore.Batch) error {
		if residual != nil {
			keep, err := evalExpr(residual, b)
			if err != nil {
				return err
			}
			if keep.Type != colstore.TypeBool {
				return fmt.Errorf("sqlexec: WHERE clause is not boolean")
			}
			idx = idx[:0]
			for r, k := range keep.Bools {
				if k {
					idx = append(idx, r)
				}
			}
			return out.AppendGather(b, idx)
		}
		return out.AppendBatch(b)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ctxReader wraps a BatchReader with a per-batch context check, so UDTF
// instances observe cancellation between input blocks.
type ctxReader struct {
	ctx   context.Context
	inner udf.BatchReader
}

func (r *ctxReader) Next() (*colstore.Batch, error) {
	if err := verr.Canceled(r.ctx.Err()); err != nil {
		return nil, err
	}
	return r.inner.Next()
}

func evalArgs(args []sqlparse.Expr, raw *colstore.Batch, inSchema colstore.Schema) (*colstore.Batch, error) {
	out := &colstore.Batch{Schema: inSchema, Cols: make([]*colstore.Vector, len(args))}
	for i, a := range args {
		v, err := evalExpr(a, raw)
		if err != nil {
			return nil, err
		}
		if v.Type != inSchema[i].Type {
			return nil, fmt.Errorf("sqlexec: UDTF argument %d evaluated to %v, expected %v", i, v.Type, inSchema[i].Type)
		}
		out.Cols[i] = v
	}
	return out, nil
}

func collectExprCols(exprs []sqlparse.Expr, schema colstore.Schema) ([]string, error) {
	fake := &sqlparse.Select{}
	for _, e := range exprs {
		fake.Items = append(fake.Items, sqlparse.SelectItem{Expr: e})
	}
	return collectCols(fake, schema)
}

// evalParams resolves USING PARAMETERS values; they must be literals.
func evalParams(in map[string]sqlparse.Expr) (udf.Params, error) {
	out := udf.Params{}
	for k, e := range in {
		v, ok := literalValue(e)
		if !ok {
			return nil, fmt.Errorf("sqlexec: parameter %q must be a literal", k)
		}
		out[k] = v
	}
	return out, nil
}

// exprType infers an expression's result type against a schema.
func exprType(e sqlparse.Expr, schema colstore.Schema) (colstore.Type, error) {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		i := schema.ColIndex(x.Name)
		if i < 0 {
			return colstore.TypeInvalid, fmt.Errorf("sqlexec: unknown column %q", x.Name)
		}
		return schema[i].Type, nil
	case *sqlparse.NumberLit:
		if x.IsInt {
			return colstore.TypeInt64, nil
		}
		return colstore.TypeFloat64, nil
	case *sqlparse.StringLit:
		return colstore.TypeString, nil
	case *sqlparse.BoolLit:
		return colstore.TypeBool, nil
	case *sqlparse.Unary:
		if x.Op == "NOT" {
			return colstore.TypeBool, nil
		}
		return exprType(x.X, schema)
	case *sqlparse.Binary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return colstore.TypeBool, nil
		case "/":
			return colstore.TypeFloat64, nil
		default:
			lt, err := exprType(x.L, schema)
			if err != nil {
				return colstore.TypeInvalid, err
			}
			rt, err := exprType(x.R, schema)
			if err != nil {
				return colstore.TypeInvalid, err
			}
			if lt == colstore.TypeInt64 && rt == colstore.TypeInt64 {
				return colstore.TypeInt64, nil
			}
			return colstore.TypeFloat64, nil
		}
	case *sqlparse.FuncCall:
		switch x.Name {
		case "UPPER", "LOWER":
			return colstore.TypeString, nil
		default:
			return colstore.TypeFloat64, nil
		}
	}
	return colstore.TypeInvalid, fmt.Errorf("sqlexec: cannot type expression %T", e)
}
