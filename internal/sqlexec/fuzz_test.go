package sqlexec

import (
	"math"
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
)

// fuzzAggQueries are the aggregate shapes the run-aware path accelerates,
// plus WHERE variants that route through the compressed block matcher. Every
// numeric literal the data can produce is exact in float64 (half-integers,
// small ints, ±Inf, NaN), so run-folded and row-iterated accumulation must
// agree to the bit — any divergence is a real bug, not rounding.
var fuzzAggQueries = []string{
	"SELECT count(*), sum(w), avg(w), min(w), max(w) FROM t",
	"SELECT g, count(*), sum(w), min(w), max(w) FROM t GROUP BY g",
	"SELECT g, min(g), max(g), count(g) FROM t GROUP BY g",
	"SELECT count(*), sum(k), min(k), max(k), avg(k) FROM t",
	"SELECT k, count(*), sum(w) FROM t GROUP BY k",
	"SELECT g, k, count(*), min(w) FROM t GROUP BY g, k",
	"SELECT sum(w), count(*) FROM t WHERE g = 'red'",
	"SELECT min(w), max(w), count(*) FROM t WHERE k >= 0",
}

var fuzzStrPalette = []string{"red", "blue", "", "green"}

// Exact-in-float64 palette, including the values where folded accumulation
// could plausibly diverge from row order: NaN (must propagate), ±0.0 (sign
// rules), ±Inf (overflow and Inf-Inf), and magnitudes whose sums stay exact.
var fuzzFloatPalette = []float64{
	0.0, math.Copysign(0, -1), 1.5, -2.5, 7, -20,
	math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64,
}

// fuzzAggDB decodes fuzz bytes into a run-structured table: each input byte
// contributes a run of 1-8 identical rows drawn from the palettes, so the
// fuzzer controls run boundaries, block straddling, and palette mixes.
// Rows are capped at one aggregation chunk (4096) so chunked and run-folded
// MIN/MAX see the same NaN merge order.
func fuzzAggDB(t *testing.T, brSel uint8, seal bool, data []byte) *fakeDB {
	t.Helper()
	schema := colstore.Schema{
		{Name: "g", Type: colstore.TypeString},
		{Name: "w", Type: colstore.TypeFloat64},
		{Name: "k", Type: colstore.TypeInt64},
	}
	seg := colstore.NewSegment(schema, 1+int(brSel)%96)
	b := colstore.NewBatch(schema)
	rows := 0
	for _, by := range data {
		if rows >= 4096 {
			break
		}
		run := int(by&7) + 1
		sel := int(by >> 3)
		g := fuzzStrPalette[sel%len(fuzzStrPalette)]
		w := fuzzFloatPalette[(sel/2)%len(fuzzFloatPalette)]
		k := int64(sel%5) - 2
		for j := 0; j < run && rows < 4096; j++ {
			for c, v := range []any{g, w, k} {
				if err := b.Cols[c].AppendValue(v); err != nil {
					t.Fatal(err)
				}
			}
			rows++
		}
	}
	if rows > 0 {
		if err := seg.Append(b); err != nil {
			t.Fatal(err)
		}
		if seal {
			if err := seg.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &fakeDB{def: &catalog.TableDef{Name: "t", Schema: schema}, seg: seg}
}

// FuzzCompressedAggregateEquivalence pins the run-aware aggregate path (and
// the compressed WHERE matcher feeding row aggregation) bit-identical to the
// decode-first row path: the same query over the same fuzz-shaped table must
// produce the same result with compressed execution on and off, or fail on
// both sides.
func FuzzCompressedAggregateEquivalence(f *testing.F) {
	// One seed per query shape over run-heavy data, plus NaN/Inf-dense and
	// empty-table seeds.
	runs := []byte{0x07, 0x07, 0x27, 0x47, 0x87, 0xc7, 0x17, 0x37, 0x57, 0x97}
	for q := range fuzzAggQueries {
		f.Add(uint8(q), uint8(32), true, runs)
	}
	f.Add(uint8(0), uint8(16), true, []byte{0x67, 0x67, 0x77, 0x87, 0x8f}) // NaN/Inf runs
	f.Add(uint8(1), uint8(0), false, []byte{})                             // empty table
	f.Add(uint8(4), uint8(255), false, []byte{0x01, 0xff, 0x3c, 0x99})     // unsealed tail only

	f.Fuzz(func(t *testing.T, qSel, brSel uint8, seal bool, data []byte) {
		defer colstore.SetCompressedEval(true)
		db := fuzzAggDB(t, brSel, seal, data)
		sel := selStmt(t, fuzzAggQueries[int(qSel)%len(fuzzAggQueries)])

		colstore.SetCompressedEval(true)
		onRes, onErr := RunSelect(db, sel)
		colstore.SetCompressedEval(false)
		offRes, offErr := RunSelect(db, sel)
		if (onErr != nil) != (offErr != nil) {
			t.Fatalf("error disagreement\n  compressed: %v\n  decoded:    %v", onErr, offErr)
		}
		if onErr != nil {
			if onErr.Error() != offErr.Error() {
				t.Fatalf("error text diverges\n  compressed: %v\n  decoded:    %v", onErr, offErr)
			}
			return
		}
		resultsIdentical(t, "compressed vs decoded", onRes, offRes)
	})
}
