package sqlexec

import (
	"context"
	"fmt"
	"strings"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

// runAggregateRuns is the run-aware aggregation fast path: when the query has
// no WHERE clause and every aggregate argument is a bare column, the engine
// aggregates directly over the encoded runs colstore.ScanRuns streams — one
// aggState.addRun per (run, aggregate) instead of one add per row, so RLE and
// dictionary segments aggregate in O(runs). Group keys (including group-by on
// dict columns) are probed once per run.
//
// handled=false declines to the decode-first path (which also runs when
// compressed execution is toggled off); the two paths are bit-identical for
// the values the engine stores: runs arrive in row order, groups keep
// first-appearance order, key formatting is shared, and addRun documents why
// folding a run equals iterating it.
func runAggregateRuns(ctx context.Context, db Database, sel *sqlparse.Select, def *catalog.TableDef, plans []aggItemPlan, prof *Profile) (res *Result, handled bool, err error) {
	if !colstore.CompressedEvalEnabled() || sel.Where != nil {
		return nil, false, nil
	}
	for _, p := range plans {
		if p.isGroupCol {
			continue
		}
		if p.fn.Star {
			if p.fn.Name != "COUNT" {
				return nil, false, nil // MIN(*)/... : row path reports the error
			}
			continue
		}
		if _, ok := p.fn.Args[0].(*sqlparse.ColRef); !ok {
			return nil, false, nil // expression argument: row-at-a-time eval
		}
	}
	segs, err := db.Segments(sel.From)
	if err != nil {
		return nil, true, err
	}
	// Scan columns: group-by columns then aggregate arguments, deduped.
	// collectCols has already validated every referenced column exists.
	var cols []string
	colPos := map[string]int{}
	addCol := func(n string) int {
		if i, ok := colPos[n]; ok {
			return i
		}
		colPos[n] = len(cols)
		cols = append(cols, n)
		return len(cols) - 1
	}
	groupPos := make([]int, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupPos[i] = addCol(g)
	}
	argPos := make([]int, len(plans))
	outTypes := make([]colstore.Type, len(plans))
	for pi, p := range plans {
		argPos[pi] = -1
		if p.isGroupCol {
			outTypes[pi] = def.Schema[def.Schema.ColIndex(p.colName)].Type
			continue
		}
		switch p.fn.Name {
		case "COUNT":
			outTypes[pi] = colstore.TypeInt64
		case "SUM", "AVG":
			outTypes[pi] = colstore.TypeFloat64
		}
		if !p.fn.Star {
			cr := p.fn.Args[0].(*sqlparse.ColRef)
			argPos[pi] = addCol(cr.Name)
			if p.fn.Name == "MIN" || p.fn.Name == "MAX" {
				outTypes[pi] = def.Schema[def.Schema.ColIndex(cr.Name)].Type
			}
		}
	}
	if len(cols) == 0 {
		// COUNT(*) with no referenced columns still needs row counts.
		cols = []string{def.Schema[0].Name}
	}

	scanDone := startOp(ctx, prof, "scan")
	var st colstore.ScanStats
	groups := map[string]*aggGroup{}
	var order []string
	var kb strings.Builder
	nruns := 0
	// Segments scan serially in segment order — the same concatenation order
	// the decode-first path produces — so first-appearance group order and
	// float accumulation order match it exactly.
	for _, seg := range segs {
		err := seg.ScanRuns(ctx, cols, &st, func(vals []any, n int) error {
			nruns++
			kb.Reset()
			for _, gp := range groupPos {
				fmt.Fprintf(&kb, "%v\x00", vals[gp])
			}
			key := kb.String()
			g, ok := groups[key]
			if !ok {
				keyVals := make([]any, len(groupPos))
				for i, gp := range groupPos {
					keyVals[i] = vals[gp]
				}
				g = &aggGroup{keyVals: keyVals}
				for _, p := range plans {
					if p.fn != nil {
						g.states = append(g.states, &aggState{fn: p.fn.Name})
					} else {
						g.states = append(g.states, nil)
					}
				}
				groups[key] = g
				order = append(order, key)
			}
			for pi, p := range plans {
				if p.fn == nil {
					continue
				}
				var v any = int64(1) // COUNT(*)
				if argPos[pi] >= 0 {
					v = vals[argPos[pi]]
				}
				if err := g.states[pi].addRun(v, n); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, true, err
		}
	}
	detail := fmt.Sprintf("%d segments, %d blocks scanned, %d evaluated compressed, %d KB, run-aware",
		len(segs), st.BlocksScanned, st.BlocksCompressed, st.BytesRead/1024)
	if st.TailRows > 0 {
		detail += fmt.Sprintf(", %d tail rows", st.TailRows)
	}
	scanDone.Blocks = int64(st.BlocksScanned)
	scanDone.BlocksCompressed = int64(st.BlocksCompressed)
	scanDone.Bytes = int64(st.BytesRead)
	scanDone.Parallel = 1 // run streaming is serial by construction
	scanDone.Done(int64(st.RowsOut), detail)

	aggDone := startOp(ctx, prof, "aggregate")
	out, err := buildAggOutput(sel, plans, outTypes, groups, order)
	if err != nil {
		return nil, true, err
	}
	aggDone.Done(int64(out.Len()), fmt.Sprintf("%d groups, %d aggregates, %d runs (run-aware)", out.Len(), len(plans), nruns))
	res, err = finishSelect(ctx, out, sel, prof)
	return res, true, err
}
