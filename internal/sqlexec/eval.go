// Package sqlexec executes parsed SQL statements against the MPP database:
// batch-at-a-time expression evaluation, predicate pushdown into segment
// scans, parallel per-segment execution, hash aggregation, ordering, and the
// UDTF operator that powers ExportToDistributedR and the in-database
// prediction functions (OVER (PARTITION BEST / PARTITION BY ...)).
package sqlexec

import (
	"fmt"
	"strings"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
	"verticadr/internal/verr"
)

// evalExpr evaluates an expression over a batch, returning one vector with
// b.Len() values (literals are broadcast).
func evalExpr(e sqlparse.Expr, b *colstore.Batch) (*colstore.Vector, error) {
	n := b.Len()
	switch x := e.(type) {
	case *sqlparse.ColRef:
		i := b.Schema.ColIndex(x.Name)
		if i < 0 {
			return nil, fmt.Errorf("sqlexec: %w %q", verr.ErrUnknownColumn, x.Name)
		}
		return b.Cols[i], nil
	case *sqlparse.NumberLit:
		if x.IsInt {
			v := make([]int64, n)
			for i := range v {
				v[i] = x.Int
			}
			return colstore.IntVector(v), nil
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = x.Float
		}
		return colstore.FloatVector(v), nil
	case *sqlparse.StringLit:
		v := make([]string, n)
		for i := range v {
			v[i] = x.Val
		}
		return colstore.StringVector(v), nil
	case *sqlparse.BoolLit:
		v := make([]bool, n)
		for i := range v {
			v[i] = x.Val
		}
		return colstore.BoolVector(v), nil
	case *sqlparse.Unary:
		return evalUnary(x, b)
	case *sqlparse.Binary:
		return evalBinary(x, b)
	case *sqlparse.FuncCall:
		return evalScalarFunc(x, b)
	case *sqlparse.Placeholder:
		return nil, fmt.Errorf("sqlexec: unbound placeholder ?%d (prepare and execute with arguments)", x.Idx)
	default:
		return nil, fmt.Errorf("sqlexec: unsupported expression %T", e)
	}
}

func evalUnary(x *sqlparse.Unary, b *colstore.Batch) (*colstore.Vector, error) {
	v, err := evalExpr(x.X, b)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		switch v.Type {
		case colstore.TypeInt64:
			out := make([]int64, len(v.Ints))
			for i, a := range v.Ints {
				out[i] = -a
			}
			return colstore.IntVector(out), nil
		case colstore.TypeFloat64:
			out := make([]float64, len(v.Floats))
			for i, a := range v.Floats {
				out[i] = -a
			}
			return colstore.FloatVector(out), nil
		}
		return nil, fmt.Errorf("sqlexec: unary minus on %v", v.Type)
	case "NOT":
		if v.Type != colstore.TypeBool {
			return nil, fmt.Errorf("sqlexec: NOT on %v", v.Type)
		}
		out := make([]bool, len(v.Bools))
		for i, a := range v.Bools {
			out[i] = !a
		}
		return colstore.BoolVector(out), nil
	}
	return nil, fmt.Errorf("sqlexec: unknown unary op %q", x.Op)
}

func evalBinary(x *sqlparse.Binary, b *colstore.Batch) (*colstore.Vector, error) {
	l, err := evalExpr(x.L, b)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(x.R, b)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/":
		return evalArith(x.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return evalCompare(x.Op, l, r)
	case "AND", "OR":
		if l.Type != colstore.TypeBool || r.Type != colstore.TypeBool {
			return nil, fmt.Errorf("sqlexec: %s requires booleans", x.Op)
		}
		out := make([]bool, len(l.Bools))
		for i := range out {
			if x.Op == "AND" {
				out[i] = l.Bools[i] && r.Bools[i]
			} else {
				out[i] = l.Bools[i] || r.Bools[i]
			}
		}
		return colstore.BoolVector(out), nil
	}
	return nil, fmt.Errorf("sqlexec: unknown binary op %q", x.Op)
}

func toFloats(v *colstore.Vector) ([]float64, error) {
	switch v.Type {
	case colstore.TypeFloat64:
		return v.Floats, nil
	case colstore.TypeInt64:
		out := make([]float64, len(v.Ints))
		for i, a := range v.Ints {
			out[i] = float64(a)
		}
		return out, nil
	}
	return nil, fmt.Errorf("sqlexec: expected numeric column, got %v", v.Type)
}

func evalArith(op string, l, r *colstore.Vector) (*colstore.Vector, error) {
	// Integer arithmetic stays integral except division, which is FLOAT.
	if l.Type == colstore.TypeInt64 && r.Type == colstore.TypeInt64 && op != "/" {
		out := make([]int64, len(l.Ints))
		for i := range out {
			switch op {
			case "+":
				out[i] = l.Ints[i] + r.Ints[i]
			case "-":
				out[i] = l.Ints[i] - r.Ints[i]
			case "*":
				out[i] = l.Ints[i] * r.Ints[i]
			}
		}
		return colstore.IntVector(out), nil
	}
	lf, err := toFloats(l)
	if err != nil {
		return nil, err
	}
	rf, err := toFloats(r)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(lf))
	for i := range out {
		switch op {
		case "+":
			out[i] = lf[i] + rf[i]
		case "-":
			out[i] = lf[i] - rf[i]
		case "*":
			out[i] = lf[i] * rf[i]
		case "/":
			out[i] = lf[i] / rf[i]
		}
	}
	return colstore.FloatVector(out), nil
}

func evalCompare(op string, l, r *colstore.Vector) (*colstore.Vector, error) {
	n := l.Len()
	if r.Len() != n {
		return nil, fmt.Errorf("sqlexec: comparison length mismatch")
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		c, err := colstore.CompareValues(l.Value(i), r.Value(i))
		if err != nil {
			return nil, err
		}
		switch op {
		case "=":
			out[i] = c == 0
		case "<>":
			out[i] = c != 0
		case "<":
			out[i] = c < 0
		case "<=":
			out[i] = c <= 0
		case ">":
			out[i] = c > 0
		case ">=":
			out[i] = c >= 0
		}
	}
	return colstore.BoolVector(out), nil
}

// evalScalarFunc handles the built-in scalar functions usable in any
// expression position (aggregates are intercepted by the aggregation path
// before reaching here).
func evalScalarFunc(x *sqlparse.FuncCall, b *colstore.Batch) (*colstore.Vector, error) {
	if x.Over != nil {
		return nil, fmt.Errorf("sqlexec: analytic function %s not allowed in this context", x.Name)
	}
	if isAggregate(x.Name) {
		return nil, fmt.Errorf("sqlexec: aggregate %s not allowed in this context", x.Name)
	}
	switch x.Name {
	case "ABS", "SQRT", "FLOOR", "CEIL", "LN", "EXP":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("sqlexec: %s takes one argument", x.Name)
		}
		v, err := evalExpr(x.Args[0], b)
		if err != nil {
			return nil, err
		}
		fs, err := toFloats(v)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(fs))
		for i, a := range fs {
			out[i] = applyMath(x.Name, a)
		}
		return colstore.FloatVector(out), nil
	case "UPPER", "LOWER":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("sqlexec: %s takes one argument", x.Name)
		}
		v, err := evalExpr(x.Args[0], b)
		if err != nil {
			return nil, err
		}
		if v.Type != colstore.TypeString {
			return nil, fmt.Errorf("sqlexec: %s requires VARCHAR", x.Name)
		}
		out := make([]string, len(v.Strs))
		for i, s := range v.Strs {
			if x.Name == "UPPER" {
				out[i] = strings.ToUpper(s)
			} else {
				out[i] = strings.ToLower(s)
			}
		}
		return colstore.StringVector(out), nil
	}
	return nil, fmt.Errorf("sqlexec: unknown function %s", x.Name)
}

func applyMath(name string, a float64) float64 {
	switch name {
	case "ABS":
		if a < 0 {
			return -a
		}
		return a
	case "SQRT":
		return sqrt(a)
	case "FLOOR":
		return floor(a)
	case "CEIL":
		return ceil(a)
	case "LN":
		return ln(a)
	case "EXP":
		return exp(a)
	}
	return a
}

// exprName derives an output column name for an unaliased projection.
func exprName(e sqlparse.Expr, pos int) string {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		return x.Name
	case *sqlparse.FuncCall:
		return strings.ToLower(x.Name)
	default:
		return fmt.Sprintf("col%d", pos)
	}
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// hasAggregate reports whether the expression tree contains an aggregate call.
func hasAggregate(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if isAggregate(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *sqlparse.Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *sqlparse.Unary:
		return hasAggregate(x.X)
	}
	return false
}

// extractPushdown converts a WHERE clause of the shape `col OP literal` (or
// `literal OP col`, mirrored) into a storage predicate for zone-map skipping;
// any other shape returns nil and the filter is applied post-scan.
func extractPushdown(e sqlparse.Expr) *colstore.Pred {
	bin, ok := e.(*sqlparse.Binary)
	if !ok {
		return nil
	}
	opMap := map[string]colstore.CompareOp{
		"=": colstore.OpEQ, "<>": colstore.OpNE,
		"<": colstore.OpLT, "<=": colstore.OpLE,
		">": colstore.OpGT, ">=": colstore.OpGE,
	}
	mirror := map[colstore.CompareOp]colstore.CompareOp{
		colstore.OpEQ: colstore.OpEQ, colstore.OpNE: colstore.OpNE,
		colstore.OpLT: colstore.OpGT, colstore.OpLE: colstore.OpGE,
		colstore.OpGT: colstore.OpLT, colstore.OpGE: colstore.OpLE,
	}
	op, ok := opMap[bin.Op]
	if !ok {
		return nil
	}
	if col, okc := bin.L.(*sqlparse.ColRef); okc {
		if v, okl := literalValue(bin.R); okl {
			return &colstore.Pred{Col: col.Name, Op: op, Val: v}
		}
	}
	if col, okc := bin.R.(*sqlparse.ColRef); okc {
		if v, okl := literalValue(bin.L); okl {
			return &colstore.Pred{Col: col.Name, Op: mirror[op], Val: v}
		}
	}
	return nil
}

// extractPushdownConj splits a WHERE clause into a storage predicate plus a
// residual filter. Beyond the single-comparison case, it walks top-level AND
// chains and pushes down the first pushable conjunct — so zone maps still
// skip blocks for e.g. `x >= 500 AND y = 3` — keeping the remaining
// conjuncts as the residual. With no WHERE, or nothing pushable, it returns
// (nil, where).
func extractPushdownConj(where sqlparse.Expr) (*colstore.Pred, sqlparse.Expr) {
	if where == nil {
		return nil, nil
	}
	if p := extractPushdown(where); p != nil {
		return p, nil
	}
	bin, ok := where.(*sqlparse.Binary)
	if !ok || bin.Op != "AND" {
		return nil, where
	}
	// Flatten the AND chain, push the first pushable conjunct, and rebuild
	// the rest left-associated.
	var conjs []sqlparse.Expr
	var flatten func(e sqlparse.Expr)
	flatten = func(e sqlparse.Expr) {
		if b, ok := e.(*sqlparse.Binary); ok && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conjs = append(conjs, e)
	}
	flatten(where)
	for i, c := range conjs {
		p := extractPushdown(c)
		if p == nil {
			continue
		}
		rest := append(append([]sqlparse.Expr{}, conjs[:i]...), conjs[i+1:]...)
		residual := rest[0]
		for _, r := range rest[1:] {
			residual = &sqlparse.Binary{Op: "AND", L: residual, R: r}
		}
		return p, residual
	}
	return nil, where
}

// Literal evaluates a constant expression: plain literals plus unary minus
// over numbers. Used by INSERT ... VALUES and parameter resolution.
func Literal(e sqlparse.Expr) (any, bool) {
	if u, ok := e.(*sqlparse.Unary); ok && u.Op == "-" {
		v, ok := Literal(u.X)
		if !ok {
			return nil, false
		}
		switch x := v.(type) {
		case int64:
			return -x, true
		case float64:
			return -x, true
		}
		return nil, false
	}
	return literalValue(e)
}

func literalValue(e sqlparse.Expr) (any, bool) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		if x.IsInt {
			return x.Int, true
		}
		return x.Float, true
	case *sqlparse.StringLit:
		return x.Val, true
	case *sqlparse.BoolLit:
		return x.Val, true
	}
	return nil, false
}
