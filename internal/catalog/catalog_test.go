package catalog

import (
	"testing"
	"testing/quick"

	"verticadr/internal/colstore"
)

func schema() colstore.Schema {
	return colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
	}
}

func TestCatalogCreateGetDropList(t *testing.T) {
	c := New()
	def := &TableDef{Name: "t1", Schema: schema()}
	if err := c.Create(def); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("t1")
	if err != nil || got.Name != "t1" {
		t.Fatalf("get: %v %v", got, err)
	}
	if err := c.Create(def); err == nil {
		t.Fatal("duplicate create should fail")
	}
	_ = c.Create(&TableDef{Name: "a", Schema: schema()})
	names := c.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "t1" {
		t.Fatalf("list = %v", names)
	}
	if err := c.Drop("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t1"); err == nil {
		t.Fatal("dropped table should be gone")
	}
	if err := c.Drop("t1"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestCatalogValidation(t *testing.T) {
	c := New()
	if err := c.Create(&TableDef{Name: "", Schema: schema()}); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := c.Create(&TableDef{Name: "t", Schema: nil}); err == nil {
		t.Fatal("empty schema should fail")
	}
	dup := colstore.Schema{{Name: "a", Type: colstore.TypeInt64}, {Name: "a", Type: colstore.TypeInt64}}
	if err := c.Create(&TableDef{Name: "t", Schema: dup}); err == nil {
		t.Fatal("duplicate column should fail")
	}
	bad := &TableDef{Name: "t", Schema: schema(), Seg: Segmentation{Kind: SegHash, Column: "nope"}}
	if err := c.Create(bad); err == nil {
		t.Fatal("bad segmentation column should fail")
	}
}

func TestSegmentationString(t *testing.T) {
	if (Segmentation{Kind: SegHash, Column: "id"}).String() != "SEGMENTED BY HASH(id)" {
		t.Fatal("hash string")
	}
	if (Segmentation{}).String() != "SEGMENTED BY ROUND ROBIN" {
		t.Fatal("rr string")
	}
}

func makeBatch(t *testing.T, n int) *colstore.Batch {
	t.Helper()
	b := colstore.NewBatch(schema())
	for i := 0; i < n; i++ {
		if err := b.AppendRow(int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestSplitterRoundRobinEven(t *testing.T) {
	sp, err := NewSplitter(Segmentation{Kind: SegRoundRobin}, schema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := sp.Split(makeBatch(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.Len() != 25 {
			t.Fatalf("node %d got %d rows", i, p.Len())
		}
	}
}

func TestSplitterRoundRobinStateAcrossBatches(t *testing.T) {
	sp, _ := NewSplitter(Segmentation{Kind: SegRoundRobin}, schema(), 3)
	total := make([]int, 3)
	// 4 batches of 5 rows = 20 rows over 3 nodes: balance must be 7/7/6.
	for b := 0; b < 4; b++ {
		parts, err := sp.Split(makeBatch(t, 5))
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range parts {
			total[i] += p.Len()
		}
	}
	if total[0] != 7 || total[1] != 7 || total[2] != 6 {
		t.Fatalf("cross-batch balance = %v", total)
	}
}

func TestSplitterHashDeterministic(t *testing.T) {
	seg := Segmentation{Kind: SegHash, Column: "id"}
	sp1, _ := NewSplitter(seg, schema(), 5)
	sp2, _ := NewSplitter(seg, schema(), 5)
	b := makeBatch(t, 200)
	p1, _ := sp1.Split(b)
	p2, _ := sp2.Split(b)
	for i := range p1 {
		if p1[i].Len() != p2[i].Len() {
			t.Fatal("hash split must be deterministic")
		}
	}
	// Same id value always lands on the same node.
	single := colstore.NewBatch(schema())
	_ = single.AppendRow(int64(42), 0.0)
	q1, _ := sp1.Split(single)
	q2, _ := sp2.Split(single)
	for i := range q1 {
		if (q1[i].Len() == 1) != (q2[i].Len() == 1) {
			t.Fatal("same key routed to different nodes")
		}
	}
}

func TestSplitterHashRoughBalance(t *testing.T) {
	seg := Segmentation{Kind: SegHash, Column: "id"}
	sp, _ := NewSplitter(seg, schema(), 4)
	parts, _ := sp.Split(makeBatch(t, 10000))
	for i, p := range parts {
		if p.Len() < 2000 || p.Len() > 3000 {
			t.Fatalf("hash split node %d badly unbalanced: %d", i, p.Len())
		}
	}
}

func TestSplitterHashSkewOnSkewedValues(t *testing.T) {
	// All rows share one key: they must all land on one node (the skewed
	// segmentation scenario of §3.2).
	seg := Segmentation{Kind: SegHash, Column: "id"}
	sp, _ := NewSplitter(seg, schema(), 4)
	b := colstore.NewBatch(schema())
	for i := 0; i < 50; i++ {
		_ = b.AppendRow(int64(7), float64(i))
	}
	parts, _ := sp.Split(b)
	nonEmpty := 0
	for _, p := range parts {
		if p.Len() > 0 {
			nonEmpty++
			if p.Len() != 50 {
				t.Fatalf("expected all rows on one node, got %d", p.Len())
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("constant key should hit exactly one node, hit %d", nonEmpty)
	}
}

func TestSplitterErrors(t *testing.T) {
	if _, err := NewSplitter(Segmentation{}, schema(), 0); err == nil {
		t.Fatal("0 nodes should fail")
	}
	if _, err := NewSplitter(Segmentation{Kind: SegHash, Column: "zz"}, schema(), 2); err == nil {
		t.Fatal("missing hash column should fail")
	}
}

// Property: splitting preserves every row exactly once (union of parts ==
// input as a multiset, and in this implementation also per-node order).
func TestQuickSplitPreservesRows(t *testing.T) {
	f := func(ids []int64, useHash bool, nodesRaw uint8) bool {
		nodes := int(nodesRaw%7) + 1
		seg := Segmentation{Kind: SegRoundRobin}
		if useHash {
			seg = Segmentation{Kind: SegHash, Column: "id"}
		}
		sp, err := NewSplitter(seg, schema(), nodes)
		if err != nil {
			return false
		}
		b := colstore.NewBatch(schema())
		for _, id := range ids {
			_ = b.AppendRow(id, float64(id))
		}
		parts, err := sp.Split(b)
		if err != nil || len(parts) != nodes {
			return false
		}
		count := map[int64]int{}
		total := 0
		for _, p := range parts {
			total += p.Len()
			for _, v := range p.Cols[0].Ints {
				count[v]++
			}
		}
		if total != len(ids) {
			return false
		}
		want := map[int64]int{}
		for _, id := range ids {
			want[id]++
		}
		if len(count) != len(want) {
			return false
		}
		for k, v := range want {
			if count[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitterReusesBuilders pins the builder-reuse contract: consecutive
// Split calls return the same output batches (rebuilt in place), each call's
// content is correct, and the steady state allocates far less than a
// fresh-batches-per-call implementation would.
func TestSplitterReusesBuilders(t *testing.T) {
	sp, err := NewSplitter(Segmentation{Kind: SegHash, Column: "id"}, schema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b := makeBatch(t, 300)
	first, err := sp.Split(b)
	if err != nil {
		t.Fatal(err)
	}
	// Record the first result by value before the splitter recycles it.
	snapshot := make([]*colstore.Batch, len(first))
	for i, p := range first {
		snapshot[i] = colstore.NewBatch(p.Schema)
		if err := snapshot[i].AppendBatch(p); err != nil {
			t.Fatal(err)
		}
	}
	second, err := sp.Split(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range second {
		if p != first[i] {
			t.Fatalf("node %d: Split returned a fresh batch, want the reused builder", i)
		}
		if p.Len() != snapshot[i].Len() {
			t.Fatalf("node %d: reused split has %d rows, want %d", i, p.Len(), snapshot[i].Len())
		}
		for r := 0; r < p.Len(); r++ {
			if p.Cols[0].Ints[r] != snapshot[i].Cols[0].Ints[r] || p.Cols[1].Floats[r] != snapshot[i].Cols[1].Floats[r] {
				t.Fatalf("node %d row %d differs between identical splits", i, r)
			}
		}
	}
	// Steady-state allocation stays tiny: only incidental bookkeeping, no
	// per-call column builders.
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sp.Split(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("steady-state Split allocates %.1f objects per call", allocs)
	}
}

// TestSplitterSchemaChangeRebuilds covers loads of different column subsets
// through one splitter: a schema change must rebuild the builders, not
// misinterpret the old ones.
func TestSplitterSchemaChangeRebuilds(t *testing.T) {
	sp, err := NewSplitter(Segmentation{Kind: SegRoundRobin}, schema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Split(makeBatch(t, 10)); err != nil {
		t.Fatal(err)
	}
	narrow := colstore.Schema{{Name: "id", Type: colstore.TypeInt64}}
	nb := colstore.NewBatch(narrow)
	for i := 0; i < 6; i++ {
		_ = nb.AppendRow(int64(i))
	}
	parts, err := sp.Split(nb)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if !p.Schema.Equal(narrow) {
			t.Fatalf("node %d kept the old schema", i)
		}
		if p.Len() != 3 {
			t.Fatalf("node %d rows = %d", i, p.Len())
		}
	}
}

// TestSplitOwnedSurvivesBuilderRecycle pins the ownership contract the
// write-ahead load path depends on: batches returned by SplitOwned must stay
// intact however many later Split calls recycle the internal builders.
func TestSplitOwnedSurvivesBuilderRecycle(t *testing.T) {
	seg := Segmentation{Kind: SegHash, Column: "id"}
	sp, err := NewSplitter(seg, schema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b := makeBatch(t, 240)
	owned, err := sp.SplitOwned(b)
	if err != nil {
		t.Fatal(err)
	}
	// Recycle the builders with different content, twice.
	for i := 0; i < 2; i++ {
		if _, err := sp.Split(makeBatch(t, 61)); err != nil {
			t.Fatal(err)
		}
	}
	// Ground truth: the same hash split from a fresh splitter.
	ref, err := NewSplitter(seg, schema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Split(b)
	if err != nil {
		t.Fatal(err)
	}
	for node, w := range want {
		o := owned[node]
		if w.Len() == 0 {
			if o != nil {
				t.Fatalf("node %d: owned batch for an empty destination", node)
			}
			continue
		}
		if o == nil || o.Len() != w.Len() {
			t.Fatalf("node %d: owned rows = %v, want %d", node, o, w.Len())
		}
		for r := 0; r < w.Len(); r++ {
			if o.Cols[0].Ints[r] != w.Cols[0].Ints[r] || o.Cols[1].Floats[r] != w.Cols[1].Floats[r] {
				t.Fatalf("node %d row %d was recycled out from under the owner", node, r)
			}
		}
	}
}
