// Package catalog holds the database metadata for the Vertica substitute:
// table definitions and their segmentation schemes. Segmentation decides
// which cluster node stores each row (the paper's table "segments", §3.1);
// the locality-preserving transfer policy later reuses exactly this mapping.
package catalog

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"verticadr/internal/colstore"
	"verticadr/internal/verr"
)

// SegKind enumerates segmentation schemes.
type SegKind uint8

const (
	// SegRoundRobin spreads rows evenly across nodes in arrival order.
	SegRoundRobin SegKind = iota
	// SegHash routes each row by a hash of one column's value. Skewed value
	// distributions produce skewed segments — the situation §3.2 describes.
	SegHash
)

// Segmentation is a table's row-placement scheme.
type Segmentation struct {
	Kind   SegKind
	Column string // used by SegHash
}

// String renders the scheme in DDL-ish form.
func (s Segmentation) String() string {
	switch s.Kind {
	case SegHash:
		return fmt.Sprintf("SEGMENTED BY HASH(%s)", s.Column)
	default:
		return "SEGMENTED BY ROUND ROBIN"
	}
}

// TableDef is the catalog entry for one table.
type TableDef struct {
	Name   string
	Schema colstore.Schema
	Seg    Segmentation
}

// Catalog is a concurrency-safe table registry. In a real MPP database the
// catalog is replicated to every node; here every node shares one instance.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableDef
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*TableDef)}
}

// Validate checks a definition without registering it: shape rules plus a
// name-collision check against the current catalog contents.
func (c *Catalog) Validate(def *TableDef) error {
	if err := validateShape(def); err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.tables[def.Name]; ok {
		return fmt.Errorf("catalog: table %q already exists", def.Name)
	}
	return nil
}

// ValidateShape checks a definition's state-independent rules (name, column
// set, segmentation column) without a collision check. Write-ahead logging
// uses it to reject a bad CREATE before the redo record is written — the
// collision check there runs against the commit stream's log-end view, not
// the live catalog, so every logged record replays cleanly.
func ValidateShape(def *TableDef) error { return validateShape(def) }

func validateShape(def *TableDef) error {
	if def.Name == "" {
		return fmt.Errorf("catalog: empty table name")
	}
	if len(def.Schema) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", def.Name)
	}
	seen := map[string]bool{}
	for _, col := range def.Schema {
		if seen[col.Name] {
			return fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, def.Name)
		}
		seen[col.Name] = true
	}
	if def.Seg.Kind == SegHash && def.Schema.ColIndex(def.Seg.Column) < 0 {
		return fmt.Errorf("catalog: segmentation column %q not in table %q", def.Seg.Column, def.Name)
	}
	return nil
}

// Create registers a table definition; the name must be unused.
func (c *Catalog) Create(def *TableDef) error {
	if err := validateShape(def); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[def.Name]; ok {
		return fmt.Errorf("catalog: table %q already exists", def.Name)
	}
	c.tables[def.Name] = def
	return nil
}

// Get returns the definition of the named table.
func (c *Catalog) Get(name string) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: %w: %q", verr.ErrTableNotFound, name)
	}
	return def, nil
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: %w: %q", verr.ErrTableNotFound, name)
	}
	delete(c.tables, name)
	return nil
}

// List returns the table names in sorted order.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Splitter assigns each row of a batch to one of n nodes according to a
// segmentation scheme. It carries round-robin state across batches so that a
// multi-batch load stays balanced.
//
// The per-destination index lists and output batches are owned by the
// splitter and reused across Split calls, so a multi-batch load allocates
// per-destination builders once instead of once per batch. A mutex guards
// the shared state, making concurrent loads into the same table safe (they
// serialize through Split).
type Splitter struct {
	seg    Segmentation
	nodes  int
	colIdx int

	mu   sync.Mutex
	next int     // round-robin cursor
	idxs [][]int // per-destination row indices, reused across calls
	outs []*colstore.Batch
}

// NewSplitter builds a splitter for the segmentation over the given schema.
func NewSplitter(seg Segmentation, schema colstore.Schema, nodes int) (*Splitter, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("catalog: splitter needs >=1 node, got %d", nodes)
	}
	s := &Splitter{seg: seg, nodes: nodes, colIdx: -1}
	if seg.Kind == SegHash {
		s.colIdx = schema.ColIndex(seg.Column)
		if s.colIdx < 0 {
			return nil, fmt.Errorf("catalog: segmentation column %q missing from schema", seg.Column)
		}
	}
	return s, nil
}

// Split partitions the batch into one (possibly empty) batch per node.
//
// The returned batches are reused by the next Split call: callers must copy
// what they keep (Segment.Append does) before splitting the next batch —
// including a next call from a concurrent loader. Callers that hold on to
// the batches past their own Split call must use SplitOwned instead.
func (s *Splitter) Split(b *colstore.Batch) ([]*colstore.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.split(b)
}

// SplitOwned partitions like Split but returns batches the caller owns: deep
// copies taken before the splitter lock is released, so no concurrent or
// later Split can recycle them out from under the caller. The write-ahead
// commit path needs this — a load's batches are read twice (WAL encode, then
// apply) well after Split returns. Empty destinations are nil.
func (s *Splitter) SplitOwned(b *colstore.Batch) ([]*colstore.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	outs, err := s.split(b)
	if err != nil {
		return nil, err
	}
	owned := make([]*colstore.Batch, len(outs))
	for i, p := range outs {
		if p == nil || p.Len() == 0 {
			continue
		}
		cp := colstore.NewBatch(p.Schema)
		if err := cp.AppendBatch(p); err != nil {
			return nil, err
		}
		owned[i] = cp
	}
	return owned, nil
}

// split is the partitioning core; the caller holds s.mu.
func (s *Splitter) split(b *colstore.Batch) ([]*colstore.Batch, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if s.idxs == nil {
		s.idxs = make([][]int, s.nodes)
		s.outs = make([]*colstore.Batch, s.nodes)
	}
	for node := range s.idxs {
		s.idxs[node] = s.idxs[node][:0]
	}
	n := b.Len()
	switch s.seg.Kind {
	case SegRoundRobin:
		for i := 0; i < n; i++ {
			node := s.next % s.nodes
			s.next++
			s.idxs[node] = append(s.idxs[node], i)
		}
	case SegHash:
		col := b.Cols[s.colIdx]
		for i := 0; i < n; i++ {
			node := int(hashValue(col, i) % uint64(s.nodes))
			s.idxs[node] = append(s.idxs[node], i)
		}
	default:
		return nil, fmt.Errorf("catalog: unknown segmentation kind %d", s.seg.Kind)
	}
	for node, idx := range s.idxs {
		// The builders persist across calls unless the batch shape changes
		// (different column subsets of the same table may load in turn).
		if s.outs[node] == nil || !s.outs[node].Schema.Equal(b.Schema) {
			s.outs[node] = colstore.NewBatch(b.Schema)
		} else {
			s.outs[node].Reset()
		}
		for c, col := range b.Cols {
			if err := s.outs[node].Cols[c].AppendGather(col, idx); err != nil {
				return nil, err
			}
		}
	}
	return s.outs, nil
}

func hashValue(v *colstore.Vector, i int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	switch v.Type {
	case colstore.TypeInt64:
		putU64(buf[:], uint64(v.Ints[i]))
		h.Write(buf[:])
	case colstore.TypeFloat64:
		putU64(buf[:], math.Float64bits(v.Floats[i]))
		h.Write(buf[:])
	case colstore.TypeString:
		h.Write([]byte(v.Strs[i]))
	case colstore.TypeBool:
		if v.Bools[i] {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
