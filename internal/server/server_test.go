package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"verticadr/internal/algos"
	"verticadr/internal/core"
	"verticadr/internal/faults"
	"verticadr/internal/verr"
)

const predictSQL = `SELECT GlmPredict(x USING PARAMETERS model='m') OVER (PARTITION BEST) FROM px`

// testSession builds a small session with table px (rows of x = 0) and an
// intercept-only Gaussian GLM deployed as "m": every prediction equals the
// model's intercept, which makes stale-model reads directly observable.
func testSession(t *testing.T, rows int, intercept float64) *core.Session {
	t.Helper()
	s, err := core.Start(core.Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 1, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Exec(`CREATE TABLE px (x FLOAT) SEGMENTED BY ROUND ROBIN`); err != nil {
		t.Fatal(err)
	}
	if err := s.DB.LoadColumns("px", [][]float64{make([]float64, rows)}); err != nil {
		t.Fatal(err)
	}
	model := &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{intercept, 0}, Converged: true}
	if err := s.DeployModel("m", "me", "test model", model); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerQueryUsesPlanCache(t *testing.T) {
	s := testSession(t, 128, 1)
	srv := New(s, Config{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := srv.Query(ctx, `SELECT count(*) FROM px`)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows()[0][0].(int64); got != 128 {
			t.Fatalf("count = %d, want 128", got)
		}
	}
	if srv.PlanCacheLen() != 1 {
		t.Fatalf("plan cache len = %d, want 1 (repeats must share one plan)", srv.PlanCacheLen())
	}
}

// DDL bumps the catalog epoch, which is part of the plan-cache key: a query
// repeated across a CREATE INDEX (or any DDL) re-plans instead of reusing
// the pre-DDL cache entry, so cached plans can never execute against access
// paths that no longer exist.
func TestServerPlanCacheInvalidatedByDDL(t *testing.T) {
	s := testSession(t, 64, 1)
	srv := New(s, Config{})
	ctx := context.Background()
	const q = `SELECT count(*) FROM px WHERE x >= 0.0`
	if _, err := srv.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if srv.PlanCacheLen() != 1 {
		t.Fatalf("plan cache len = %d, want 1", srv.PlanCacheLen())
	}
	if err := srv.Exec(ctx, `CREATE INDEX px_x ON px (x)`); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows()[0][0].(int64); got != 64 {
		t.Fatalf("count = %d, want 64", got)
	}
	// A second entry under the new epoch proves the old one was not reused.
	if srv.PlanCacheLen() != 2 {
		t.Fatalf("plan cache len = %d, want 2 (pre- and post-DDL epochs)", srv.PlanCacheLen())
	}
	// Stable epoch: the post-DDL entry is shared by further repeats.
	if _, err := srv.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if srv.PlanCacheLen() != 2 {
		t.Fatalf("plan cache len = %d after repeat, want 2", srv.PlanCacheLen())
	}
}

func TestServerPlanCacheBounded(t *testing.T) {
	s := testSession(t, 16, 1)
	srv := New(s, Config{PlanCacheSize: 2})
	ctx := context.Background()
	for _, sql := range []string{
		`SELECT count(*) FROM px`,
		`SELECT sum(x) FROM px`,
		`SELECT min(x) FROM px`,
	} {
		if _, err := srv.Query(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}
	if srv.PlanCacheLen() != 2 {
		t.Fatalf("plan cache len = %d, want 2 (bounded LRU)", srv.PlanCacheLen())
	}
}

func TestPrepareExecuteBindsPlaceholders(t *testing.T) {
	s := testSession(t, 100, 1)
	srv := New(s, Config{})
	ctx := context.Background()
	if err := srv.Prepare("above", `SELECT x FROM px WHERE x > ?`); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Execute(ctx, "above", -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 100 {
		t.Fatalf("x > -0.5 matched %d rows, want 100", res.Len())
	}
	res, err = srv.Execute(ctx, "above", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("x > 0.5 matched %d rows, want 0", res.Len())
	}
	// Arity and type errors are rejected before execution.
	if _, err := srv.Execute(ctx, "above"); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, err := srv.Execute(ctx, "above", struct{}{}); err == nil {
		t.Fatal("unsupported argument type accepted")
	}
	if _, err := srv.Execute(ctx, "nosuch", 1); err == nil {
		t.Fatal("unknown statement name accepted")
	}
	// Unbound placeholders cannot sneak through the one-shot path.
	if _, err := srv.Query(ctx, `SELECT x FROM px WHERE x > ?`); err == nil {
		t.Fatal("one-shot query with unbound placeholder executed")
	}
}

func TestAdmissionControl(t *testing.T) {
	s := testSession(t, 16, 1)
	srv := New(s, Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond})
	ctx := context.Background()

	release, err := srv.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	waited := make(chan error, 1)
	go func() {
		rel, err := srv.acquire(context.Background())
		if err == nil {
			rel()
		}
		waited <- err
	}()
	// ...wait until it is actually queued, then the next arrival must be
	// refused immediately with the typed error.
	deadline := time.Now().Add(2 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.acquire(ctx); !errors.Is(err, verr.ErrOverloaded) {
		t.Fatalf("queue-full acquire: err = %v, want verr.ErrOverloaded", err)
	}
	release()
	if err := <-waited; err != nil {
		t.Fatalf("queued waiter: %v (should have gotten the released slot)", err)
	}

	// With the only slot held and nobody releasing, a queued waiter is shed
	// after QueueWait.
	release, err = srv.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := srv.acquire(ctx); !errors.Is(err, verr.ErrOverloaded) {
		t.Fatalf("queue-wait acquire: err = %v, want verr.ErrOverloaded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("queue-wait shedding took far longer than QueueWait")
	}
}

func TestQueryTimeoutYieldsTypedCancel(t *testing.T) {
	s := testSession(t, 256, 1)
	srv := New(s, Config{QueryTimeout: time.Nanosecond})
	_, err := srv.Query(context.Background(), predictSQL)
	if !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("err = %v, want verr.ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to also match context.DeadlineExceeded", err)
	}
}

func TestPreCanceledContext(t *testing.T) {
	s := testSession(t, 16, 1)
	srv := New(s, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Query(ctx, `SELECT count(*) FROM px`); !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("err = %v, want verr.ErrCanceled", err)
	}
}

func TestServerCloseFailsFast(t *testing.T) {
	s := testSession(t, 16, 1)
	srv := New(s, Config{})
	srv.Close()
	if _, err := srv.Query(context.Background(), `SELECT count(*) FROM px`); !errors.Is(err, verr.ErrClosed) {
		t.Fatalf("err = %v, want verr.ErrClosed", err)
	}
	if err := srv.Prepare("p", `SELECT x FROM px`); !errors.Is(err, verr.ErrClosed) {
		t.Fatalf("prepare err = %v, want verr.ErrClosed", err)
	}
}

// The headline race test: N goroutines issue mixed PREPARE / EXECUTE /
// one-shot PREDICT against one server while DeployModel overwrites the
// model concurrently. The model is intercept-only, redeployed with strictly
// increasing intercepts; a query that starts after Redeploy returns must
// never see an older intercept (no stale-model reads after invalidation).
func TestConcurrentMixedWorkloadWithRedeploy(t *testing.T) {
	s := testSession(t, 128, 0)
	srv := New(s, Config{MaxConcurrent: 8, MaxQueue: 64, QueueWait: 10 * time.Second})
	if err := srv.Prepare("pred", predictSQL); err != nil {
		t.Fatal(err)
	}

	const (
		readers     = 8
		iters       = 25
		redeploys   = 20
		maxDeployed = float64(redeploys)
	)
	var published atomic.Int64 // highest intercept Redeploy has returned for
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 1; g <= redeploys; g++ {
			model := &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{float64(g), 0}, Converged: true}
			if err := s.RedeployModel("m", "me", model); err != nil {
				errs <- fmt.Errorf("redeploy %d: %w", g, err)
				return
			}
			published.Store(int64(g))
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				floor := float64(published.Load())
				var got float64
				switch i % 3 {
				case 0: // one-shot (plan-cached) PREDICT
					res, err := srv.Query(ctx, predictSQL)
					if err != nil {
						errs <- err
						return
					}
					got = res.Batch.Cols[0].Floats[0]
				case 1: // prepared PREDICT
					res, err := srv.Execute(ctx, "pred")
					if err != nil {
						errs <- err
						return
					}
					got = res.Batch.Cols[0].Floats[0]
				default: // re-prepare under a per-reader name, then run it
					name := fmt.Sprintf("pred-%d", r)
					if err := srv.Prepare(name, predictSQL); err != nil {
						errs <- err
						return
					}
					res, err := srv.Execute(ctx, name)
					if err != nil {
						errs <- err
						return
					}
					got = res.Batch.Cols[0].Floats[0]
				}
				if got < floor || got > maxDeployed {
					errs <- fmt.Errorf("stale model read: predicted %v, but intercept %v was already deployed (max %v)", got, floor, maxDeployed)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles, the latest model must be served.
	res, err := srv.Query(context.Background(), predictSQL)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Batch.Cols[0].Floats[0]; got != maxDeployed {
		t.Fatalf("final prediction %v, want %v", got, maxDeployed)
	}
}

// Session.Close must drain in-flight queries deterministically: running
// queries are canceled and finish, new work fails fast with verr.ErrClosed,
// and no goroutines leak.
func TestSessionCloseDrainsInflight(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := core.Start(core.Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 1, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`CREATE TABLE big (x FLOAT) SEGMENTED BY ROUND ROBIN`); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := s.DB.LoadColumns("big", [][]float64{vals}); err != nil {
		t.Fatal(err)
	}

	const inflight = 4
	done := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := s.QueryContext(context.Background(), `SELECT sum(x) FROM big`)
			done <- err
		}()
	}
	time.Sleep(2 * time.Millisecond) // let some queries get going
	closed := make(chan struct{})
	go func() {
		s.Close() // must cancel + drain, never deadlock
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Session.Close deadlocked with queries in flight")
	}
	for i := 0; i < inflight; i++ {
		select {
		case err := <-done:
			// A query either completed before the cancel or was canceled —
			// both are deterministic outcomes; anything else is a bug.
			if err != nil && !errors.Is(err, verr.ErrCanceled) && !errors.Is(err, verr.ErrClosed) {
				t.Fatalf("in-flight query: unexpected error %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight query never returned after Close")
		}
	}
	if _, err := s.QueryContext(context.Background(), `SELECT count(*) FROM big`); !errors.Is(err, verr.ErrClosed) {
		t.Fatalf("post-Close query: err = %v, want verr.ErrClosed", err)
	}
	s.Close() // idempotent

	// Leak check: goroutines return to (near) the pre-session baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after Close: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Chaos: the load generator's query mix under fault injection at the
// model-load site. Injected DFS read failures must surface as typed errors
// on individual queries — never a hang, a crash, or a poisoned cache that
// keeps failing after the faults stop.
func TestChaosServeModelLoadFaults(t *testing.T) {
	s := testSession(t, 128, 7)
	// Every query must consult DFS for the fault to be reachable.
	s.Models.SetCacheEnabled(false)
	inj := faults.New(5)
	inj.MustArm(faults.Rule{Site: faults.SiteModelLoad, Kind: faults.Error, Prob: 0.1})
	faults.Install(inj)
	defer faults.Install(nil)

	srv := New(s, Config{MaxConcurrent: 4})
	var injected, okCount atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, err := srv.Query(context.Background(), predictSQL)
				switch {
				case err == nil:
					okCount.Add(1)
				case errors.Is(err, faults.ErrInjected):
					injected.Add(1)
				default:
					errs <- fmt.Errorf("non-injected failure under chaos: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if injected.Load() == 0 {
		t.Fatal("fault injector never fired; chaos test exercised nothing")
	}
	if okCount.Load() == 0 {
		t.Fatal("no query survived 10% fault probability; retry-free path too fragile")
	}

	// Faults off, cache back on: the serving path must be fully healthy.
	faults.Install(nil)
	s.Models.SetCacheEnabled(true)
	res, err := srv.Query(context.Background(), predictSQL)
	if err != nil {
		t.Fatalf("post-chaos query: %v", err)
	}
	if got := res.Batch.Cols[0].Floats[0]; got != 7 {
		t.Fatalf("post-chaos prediction %v, want 7 (cache poisoned?)", got)
	}
}
