package server

import (
	"testing"

	"verticadr/internal/sqlparse"
)

func mustSelect(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		t.Fatalf("parsed %T, want *Select", stmt)
	}
	return sel
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	a := mustSelect(t, `SELECT a FROM t`)
	b := mustSelect(t, `SELECT b FROM t`)
	d := mustSelect(t, `SELECT d FROM t`)
	c.put("a", a)
	c.put("b", b)
	// Touch a so b becomes the LRU entry, then push it out with d.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.put("d", d)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if got, ok := c.get("d"); !ok || got != d {
		t.Fatal("d missing or wrong plan after insert")
	}
}

func TestPlanCachePutRefreshesExisting(t *testing.T) {
	c := newPlanCache(2)
	a1 := mustSelect(t, `SELECT a FROM t`)
	a2 := mustSelect(t, `SELECT a FROM t WHERE a > 1`)
	c.put("a", a1)
	c.put("a", a2) // replaces in place, no growth
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	got, ok := c.get("a")
	if !ok || got != a2 {
		t.Fatal("put did not replace the cached plan")
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	c := newPlanCache(0)
	if c.cap != 128 {
		t.Fatalf("default cap = %d, want 128", c.cap)
	}
}
