package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

// One traced client query through the full wire stack must yield a single,
// well-formed trace tree: the caller's root span, the client request span,
// the server's remote continuation, admission and execution spans, and the
// engine's per-operator spans — all under one trace ID, each parented
// correctly.
func TestWireTraceSingleTree(t *testing.T) {
	s := testSession(t, 128, 1)
	srv := New(s, Config{})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	cli, err := Dial(tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	log := telemetry.Default().Spans()
	log.Reset()
	ctx, root := telemetry.Default().StartTrace(context.Background(), "app.request")
	if _, err := cli.Query(ctx, `SELECT count(*) FROM px`); err != nil {
		t.Fatal(err)
	}
	root.End()

	recs := log.Export()
	byName := map[string]telemetry.SpanRecord{}
	byID := map[int64]telemetry.SpanRecord{}
	traces := map[string]bool{}
	for _, r := range recs {
		byName[r.Name] = r
		byID[r.ID] = r
		traces[r.Trace] = true
	}
	if len(traces) != 1 {
		t.Fatalf("one query produced %d traces, want 1:\n%s", len(traces), log.String())
	}
	wantParent := map[string]string{
		"client.query": "app.request",
		"server.query": "client.query",
		"server.admit": "server.query",
		"server.exec":  "server.query",
		"op:scan":      "server.exec",
	}
	for child, parent := range wantParent {
		c, ok := byName[child]
		if !ok {
			t.Fatalf("trace missing span %q:\n%s", child, log.String())
		}
		p, ok := byID[c.Parent]
		if !ok || p.Name != parent {
			t.Fatalf("span %q parent = %q, want %q:\n%s", child, p.Name, parent, log.String())
		}
		if !c.Ended {
			t.Fatalf("span %q never ended", child)
		}
	}
	// The plan-cache attr lands on the server-side request span.
	var attrs []telemetry.Label
	for _, r := range recs {
		if r.Name == "server.query" {
			attrs = r.Attrs
		}
	}
	found := false
	for _, a := range attrs {
		if a.Key == "plan_cache" {
			found = true
		}
	}
	if !found {
		t.Fatalf("server.query span lacks plan_cache attr: %v", attrs)
	}

	// An untraced query must not panic and must not start a new trace.
	log.Reset()
	if _, err := cli.Query(context.Background(), `SELECT count(*) FROM px`); err != nil {
		t.Fatal(err)
	}
	if got := len(log.Export()); got != 0 {
		t.Fatalf("untraced query recorded %d spans, want 0", got)
	}
}

// PROFILE output must survive the wire: per-operator rows, times and the
// structured scan accounting come back attached to the client result.
func TestProfileOverWire(t *testing.T) {
	s := testSession(t, 200, 1)
	srv := New(s, Config{})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	cli, err := Dial(tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rows, err := cli.Query(context.Background(), `PROFILE SELECT count(*) FROM px`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Profile == nil {
		t.Fatal("PROFILE query returned no profile over the wire")
	}
	ops := map[string]bool{}
	var scanRows int64
	for _, op := range rows.Profile.Ops {
		ops[op.Op] = true
		if op.Op == "scan" {
			scanRows = op.Rows
			if op.Blocks <= 0 {
				t.Fatalf("scan profile has no block accounting: %+v", op)
			}
			if op.Parallel <= 0 {
				t.Fatalf("scan profile has no parallel degree: %+v", op)
			}
		}
	}
	if !ops["scan"] || !ops["aggregate"] {
		t.Fatalf("profile ops = %v, want scan and aggregate", rows.Profile.Ops)
	}
	if scanRows != 200 {
		t.Fatalf("scan rows = %d, want 200", scanRows)
	}

	// A plain query ships no profile.
	rows, err = cli.Query(context.Background(), `SELECT count(*) FROM px`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Profile != nil {
		t.Fatal("unprofiled query carried a profile")
	}
}

// Statement statistics: calls accumulate per normalized fingerprint,
// whitespace/semicolon variants collapse to one row, failures bucket by verr
// code, and quantile estimates are populated and ordered.
func TestStatementStats(t *testing.T) {
	s := testSession(t, 64, 1)
	srv := New(s, Config{})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := srv.Query(ctx, `SELECT count(*) FROM px`); err != nil {
			t.Fatal(err)
		}
	}
	// Same statement, different trailing decoration: one fingerprint.
	if _, err := srv.Query(ctx, "  SELECT count(*) FROM px ;\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Query(ctx, `SELECT sum(x) FROM px`); err != nil {
		t.Fatal(err)
	}
	// A canceled execution is recorded with its error code.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := srv.Query(canceled, `SELECT count(*) FROM px`); !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("err = %v, want verr.ErrCanceled", err)
	}

	snaps := srv.Statements().Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d statement rows, want 2: %+v", len(snaps), snaps)
	}
	var count StmtSnapshot
	ok := false
	for _, sn := range snaps {
		if sn.SQL == `SELECT count(*) FROM px` {
			count, ok = sn, true
		}
	}
	if !ok {
		t.Fatalf("no row for normalized count(*) statement: %+v", snaps)
	}
	if count.Calls != 7 {
		t.Fatalf("calls = %d, want 7 (5 + whitespace variant + canceled)", count.Calls)
	}
	if count.Errors != 1 || count.ErrCodes[verr.CodeCanceled] != 1 {
		t.Fatalf("errors = %d codes = %v, want 1 canceled", count.Errors, count.ErrCodes)
	}
	if count.TotalSecs <= 0 || count.MeanSecs <= 0 {
		t.Fatalf("total/mean not positive: %+v", count)
	}
	if count.P50Secs > count.P95Secs || count.P95Secs > count.P99Secs {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", count.P50Secs, count.P95Secs, count.P99Secs)
	}
}

// Retention is bounded: beyond the cap the least-recently-executed
// fingerprint is evicted (and counted), never the hot ones.
func TestStmtStatsBoundedEviction(t *testing.T) {
	st := newStmtStats(3)
	for i := 0; i < 6; i++ {
		st.Record(fmt.Sprintf("q%d", i), time.Millisecond, nil)
	}
	// q0..q2 evicted in turn as q3..q5 arrived.
	if st.Len() != 3 {
		t.Fatalf("len = %d, want 3", st.Len())
	}
	if st.Evicted() != 3 {
		t.Fatalf("evicted = %d, want 3", st.Evicted())
	}
	kept := map[string]bool{}
	for _, sn := range st.Snapshot() {
		kept[sn.SQL] = true
	}
	for _, want := range []string{"q3", "q4", "q5"} {
		if !kept[want] {
			t.Fatalf("recent statement %s evicted; kept %v", want, kept)
		}
	}
	// Re-executing an old resident refreshes it: q3 survives the next insert.
	st.Record("q3", time.Millisecond, nil)
	st.Record("q6", time.Millisecond, nil)
	kept = map[string]bool{}
	for _, sn := range st.Snapshot() {
		kept[sn.SQL] = true
	}
	if !kept["q3"] || kept["q4"] {
		t.Fatalf("LRU order wrong after refresh; kept %v", kept)
	}
}

// The admin surface end to end: /metrics parses as Prometheus text and
// carries the serving series, /statements and /traces/recent return valid
// JSON, /healthz flips to 503 once the server stops admitting.
func TestAdminEndpoints(t *testing.T) {
	s := testSession(t, 64, 1)
	srv := New(s, Config{})
	if _, err := srv.Query(context.Background(), `SELECT count(*) FROM px`); err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(AdminHandler(srv))
	defer admin.Close()

	body := adminGet(t, admin.URL+"/metrics", http.StatusOK)
	samples, err := telemetry.ParsePromText(body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v\n%s", err, body)
	}
	wantSeries := map[string]bool{"server_queries_total": false, "server_query_seconds_count": false}
	for _, sm := range samples {
		if _, ok := wantSeries[sm.Name]; ok {
			wantSeries[sm.Name] = true
		}
	}
	for name, seen := range wantSeries {
		if !seen {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
	}

	var stmts []StmtSnapshot
	if err := json.Unmarshal([]byte(adminGet(t, admin.URL+"/statements", http.StatusOK)), &stmts); err != nil {
		t.Fatalf("/statements JSON invalid: %v", err)
	}
	if len(stmts) == 0 || stmts[0].Calls == 0 {
		t.Fatalf("/statements empty after a query: %+v", stmts)
	}

	// Produce a trace, then read it back through the endpoint.
	telemetry.Default().Spans().Reset()
	ctx, root := telemetry.Default().StartTrace(context.Background(), "admin.test")
	if _, err := srv.Query(ctx, `SELECT count(*) FROM px`); err != nil {
		t.Fatal(err)
	}
	root.End()
	var traces []telemetry.TraceRecord
	if err := json.Unmarshal([]byte(adminGet(t, admin.URL+"/traces/recent?n=4", http.StatusOK)), &traces); err != nil {
		t.Fatalf("/traces/recent JSON invalid: %v", err)
	}
	if len(traces) != 1 || len(traces[0].Spans) < 3 {
		t.Fatalf("traces = %+v, want 1 trace with >= 3 spans", traces)
	}

	var h Health
	if err := json.Unmarshal([]byte(adminGet(t, admin.URL+"/healthz", http.StatusOK)), &h); err != nil {
		t.Fatalf("/healthz JSON invalid: %v", err)
	}
	if h.Saturated {
		t.Fatalf("idle server reports saturated: %+v", h)
	}
	srv.Close()
	if err := json.Unmarshal([]byte(adminGet(t, admin.URL+"/healthz", http.StatusServiceUnavailable)), &h); err != nil {
		t.Fatalf("/healthz JSON invalid after close: %v", err)
	}
	if !h.Saturated || !h.Closed {
		t.Fatalf("closed server healthz = %+v, want saturated+closed", h)
	}
}

func adminGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Graceful drain: Shutdown lets the in-flight request finish and deliver its
// response, refuses to return while it runs, and leaves the port closed
// afterwards.
func TestShutdownDrainsInflight(t *testing.T) {
	s := testSession(t, 128, 1)
	srv := New(s, Config{MaxConcurrent: 1, QueueWait: 10 * time.Second})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	// Hold the only execution slot so the wire query is provably in flight
	// (queued inside the server) when Shutdown begins.
	release, err := srv.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	type qres struct {
		rows *Rows
		err  error
	}
	got := make(chan qres, 1)
	go func() {
		r, err := cli.Query(context.Background(), `SELECT count(*) FROM px`)
		got <- qres{r, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wire query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- tcp.Shutdown(30 * time.Second) }()
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a request in flight")
	case <-time.After(50 * time.Millisecond):
	}
	release() // let the queued query run to completion
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight query failed during drain: %v", r.err)
		}
		if v := r.rows.Rows[0][0].(float64); v != 128 {
			t.Fatalf("drained query count = %v, want 128", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query never completed during drain")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after the drain completed")
	}

	// The drained connection is closed and the port no longer accepts.
	if _, err := cli.Query(context.Background(), `SELECT count(*) FROM px`); err == nil {
		t.Fatal("query succeeded on a drained connection")
	}
	if c2, err := Dial(tcp.Addr()); err == nil {
		defer c2.Close()
		if err := c2.Ping(context.Background()); err == nil {
			t.Fatal("new connection served after shutdown")
		}
	}
}

// Idle connections do not hold up a drain: with no request in flight,
// Shutdown returns promptly even though a client is connected.
func TestShutdownClosesIdleConns(t *testing.T) {
	s := testSession(t, 16, 1)
	srv := New(s, Config{})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tcp.Shutdown(30 * time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown blocked on an idle connection")
	}
	if err := cli.Ping(context.Background()); err == nil {
		t.Fatal("idle connection survived shutdown")
	}
	if err := tcp.Close(); err != nil { // Close after Shutdown is a no-op
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
