package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"verticadr/internal/telemetry"
)

// AdminHandler builds the observability endpoint for a running server: an
// http.Handler meant for a loopback/ops-network listener, deliberately
// separate from the query port so scraping and profiling never compete with
// query traffic for the protocol path.
//
//	GET /metrics        Prometheus text exposition of every telemetry series
//	GET /statements     per-statement statistics (pg_stat_statements analogue)
//	GET /traces/recent  most recent traces as span trees (?n=  bounds count)
//	GET /healthz        200 while admitting, 503 when saturated or closed
//	/debug/pprof/*      the standard Go profiling surface
//
// On a clustered node (WithClusterState), /healthz additionally reports the
// router's per-peer view — which peers are up and which shard replicas have
// been retired as stale — under the "cluster" key.
func AdminHandler(srv *Server, opts ...AdminOption) http.Handler {
	var cfg adminCfg
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	reg := telemetry.Default()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.PromText()))
	})
	mux.HandleFunc("/statements", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Statements().Snapshot())
	})
	mux.HandleFunc("/traces/recent", func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		writeJSON(w, reg.Spans().Traces(n))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		if h.Saturated {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if cfg.clusterState == nil {
			writeJSON(w, h)
			return
		}
		writeJSON(w, map[string]any{"server": h, "cluster": cfg.clusterState()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminOption customizes the admin surface.
type AdminOption func(*adminCfg)

type adminCfg struct {
	clusterState func() any
}

// WithClusterState attaches a cluster-state source (typically the router's
// Health) to /healthz.
func WithClusterState(fn func() any) AdminOption {
	return func(c *adminCfg) { c.clusterState = fn }
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
