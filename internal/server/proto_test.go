package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"verticadr/internal/verr"
)

// End-to-end over real TCP: results round-trip, placeholders bind, and every
// typed error in the verr vocabulary survives the protocol boundary as an
// errors.Is-matchable error.
func TestProtoEndToEnd(t *testing.T) {
	s := testSession(t, 100, 2)
	srv := New(s, Config{MaxConcurrent: 4})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	c, err := Dial(tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	rows, err := c.Query(ctx, `SELECT count(*) FROM px`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Cols) != 1 || len(rows.Rows) != 1 {
		t.Fatalf("unexpected result shape: %+v", rows)
	}

	// Prediction through the wire: intercept-only model, everything = 2.
	rows, err = c.Query(ctx, predictSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 100 {
		t.Fatalf("predict returned %d rows, want 100", len(rows.Rows))
	}
	if v, ok := rows.Rows[0][0].(float64); !ok || v != 2 {
		t.Fatalf("prediction = %v, want 2", rows.Rows[0][0])
	}

	// Prepared statement with two placeholders, rebound per execution.
	if err := c.Prepare(ctx, "q", `SELECT x FROM px WHERE x > ? AND x <= ?`); err != nil {
		t.Fatal(err)
	}
	rows, err = c.Execute(ctx, "q", -1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 100 {
		t.Fatalf("execute (-1.5, 0.5] returned %d rows, want 100", len(rows.Rows))
	}
	rows, err = c.Execute(ctx, "q", 0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 0 {
		t.Fatalf("execute (0.5, 1.5] returned %d rows, want 0", len(rows.Rows))
	}

	// Typed errors across the protocol.
	if _, err := c.Query(ctx, `SELECT x FROM nosuch`); !errors.Is(err, verr.ErrTableNotFound) {
		t.Fatalf("unknown table: err = %v, want verr.ErrTableNotFound", err)
	}
	if _, err := c.Query(ctx, `SELECT nope FROM px`); !errors.Is(err, verr.ErrUnknownColumn) {
		t.Fatalf("unknown column: err = %v, want verr.ErrUnknownColumn", err)
	}
	if _, err := c.Query(ctx, `SELECT GlmPredict(x USING PARAMETERS model='ghost') OVER (PARTITION BEST) FROM px`); !errors.Is(err, verr.ErrModelNotFound) {
		t.Fatalf("unknown model: err = %v, want verr.ErrModelNotFound", err)
	}
}

func TestProtoOverloadedAndCanceled(t *testing.T) {
	s := testSession(t, 64, 1)
	srv := New(s, Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: 5 * time.Millisecond})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	c, err := Dial(tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Hold the only execution slot; wire arrivals overflow the queue and are
	// shed with the typed error, not a hang.
	release, err := srv.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sawOverloaded := false
	for i := 0; i < 3; i++ {
		_, qerr := c.Query(ctx, `SELECT count(*) FROM px`)
		if qerr == nil {
			t.Fatal("query succeeded with the only slot held")
		}
		if errors.Is(qerr, verr.ErrOverloaded) {
			sawOverloaded = true
		}
	}
	if !sawOverloaded {
		t.Fatal("no verr.ErrOverloaded across protocol under saturation")
	}
	release()
	if _, err := c.Query(ctx, `SELECT count(*) FROM px`); err != nil {
		t.Fatalf("post-release query: %v", err)
	}

	// A client-side deadline rides the request and comes back as the typed
	// cancel error.
	dctx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	if _, err := c.Query(dctx, predictSQL); !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("deadline query: err = %v, want verr.ErrCanceled", err)
	}
}

func TestProtoConcurrentClients(t *testing.T) {
	s := testSession(t, 128, 3)
	srv := New(s, Config{MaxConcurrent: 4})
	tcp, err := Listen(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(tcp.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ctx := context.Background()
			if err := c.Prepare(ctx, "p", predictSQL); err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				rows, err := c.Execute(ctx, "p")
				if err != nil {
					errs <- err
					return
				}
				if v := rows.Rows[0][0].(float64); v != 3 {
					errs <- errors.New("wrong prediction over concurrent protocol")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Closing the TCP front end leaves the Server reusable in-process.
	if err := tcp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Query(context.Background(), `SELECT count(*) FROM px`); err != nil {
		t.Fatal(err)
	}
}
