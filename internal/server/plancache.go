package server

import (
	"container/list"
	"sync"

	"verticadr/internal/sqlparse"
	"verticadr/internal/telemetry"
)

var (
	mPlanHits      = telemetry.Default().Counter("server_plan_cache_total", telemetry.L("result", "hit"))
	mPlanMisses    = telemetry.Default().Counter("server_plan_cache_total", telemetry.L("result", "miss"))
	mPlanEvictions = telemetry.Default().Counter("server_plan_cache_evictions_total")
)

// planCache is a bounded LRU of parsed (and therefore validated) SELECT
// statements, keyed on normalized SQL text. Cached *Select values are shared
// by concurrent executions: execution never mutates the AST, and parameter
// binding deep-copies it (sqlparse.BindSelect), so sharing is safe.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type planEntry struct {
	key string
	sel *sqlparse.Select
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &planCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached plan for key, refreshing its recency.
func (c *planCache) get(key string) (*sqlparse.Select, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		mPlanMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mPlanHits.Inc()
	return el.Value.(*planEntry).sel, true
}

// put inserts (or refreshes) a plan, evicting the least recently used entry
// past capacity.
func (c *planCache) put(key string, sel *sqlparse.Select) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).sel = sel
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, sel: sel})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
		mPlanEvictions.Inc()
	}
}

// len reports the current entry count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
