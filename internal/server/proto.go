package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"verticadr/internal/sqlexec"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
	"verticadr/internal/vft"
)

// The wire protocol: one request frame, one response frame, repeated until
// the client hangs up. Frames are the same u32-length-prefixed layout the
// transfer data plane uses (vft.WriteFrame/ReadFrame); payloads are JSON. A
// connection processes its requests sequentially — concurrency comes from
// connections, exactly like a database session — while admission control in
// the Server bounds how many of them execute at once.
//
// Errors cross the wire as (code, message) pairs from the verr vocabulary,
// so a client-side errors.Is(err, verr.ErrOverloaded) works end to end.

var (
	gConns    = telemetry.Default().Gauge("server_conns")
	mRequests = telemetry.Default().Counter("server_proto_requests_total")
)

type protoRequest struct {
	Op        string            `json:"op"` // "query" | "prepare" | "execute" | "ping"
	SQL       string            `json:"sql,omitempty"`
	Name      string            `json:"name,omitempty"`
	Args      []json.RawMessage `json:"args,omitempty"`
	TimeoutMS int64             `json:"timeout_ms,omitempty"`
	// Trace/Span carry the client's trace context (hex span IDs). When set,
	// the server continues the trace: its admission, execution and operator
	// spans attach under the client's request span, so one query yields one
	// trace across both processes.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	// Ext carries the op-specific payload of a protocol-extension request
	// (ops outside the built-in set, dispatched to the listener's
	// Extension). Binary batch data rides inside as base64 []byte fields,
	// so float bits survive the JSON envelope untouched.
	Ext json.RawMessage `json:"ext,omitempty"`
}

type protoResponse struct {
	Code    string                 `json:"code"`
	Msg     string                 `json:"msg,omitempty"`
	Cols    []string               `json:"cols,omitempty"`
	Rows    [][]any                `json:"rows,omitempty"`
	Profile *sqlexec.ProfileExport `json:"profile,omitempty"`
	// Ext is the extension op's reply payload.
	Ext json.RawMessage `json:"ext,omitempty"`
}

// Frontend serves the protocol's SQL ops. A plain server fronts its own
// Server; a cluster peer fronts the router instead, so any node answers any
// query with cluster-wide results (the MPP "every node is an initiator"
// shape).
type Frontend interface {
	Query(ctx context.Context, sql string) (*sqlexec.Result, error)
	Prepare(name, sql string) error
	Execute(ctx context.Context, name string, args ...any) (*sqlexec.Result, error)
}

// Extension handles protocol ops outside the built-in set ("query",
// "prepare", "execute", "ping"). It returns the op's reply payload, which
// is marshaled into the response's Ext field; errors map to wire codes like
// any other op. The cluster peer protocol is an Extension.
type Extension interface {
	ServeExt(ctx context.Context, op string, payload json.RawMessage) (any, error)
}

// TCPServer exposes a Server over a TCP listener.
type TCPServer struct {
	srv   *Server
	front Frontend
	ext   Extension
	lis   net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]bool // conn -> currently serving a request
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// ListenOption customizes a TCPServer before it starts accepting.
type ListenOption func(*TCPServer)

// WithFrontend routes the SQL ops through f instead of the Server itself.
func WithFrontend(f Frontend) ListenOption { return func(t *TCPServer) { t.front = f } }

// WithExtension registers a handler for protocol-extension ops.
func WithExtension(e Extension) ListenOption { return func(t *TCPServer) { t.ext = e } }

// Listen starts serving srv on addr (host:port; port 0 picks a free port).
func Listen(srv *Server, addr string, opts ...ListenOption) (*TCPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPServer{srv: srv, front: srv, lis: lis, conns: map[net.Conn]bool{}}
	for _, o := range opts {
		o(t)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr reports the bound listen address.
func (t *TCPServer) Addr() string { return t.lis.Addr().String() }

// Close stops accepting, closes every live connection and waits for their
// handlers to exit. In-flight requests are abandoned mid-write; use Shutdown
// for a graceful drain. Idempotent.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	err := t.lis.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, closes idle
// connections immediately, and lets connections with a request in flight
// finish and write their response before closing. Connections still busy
// when the deadline passes are force-closed (deadline <= 0 waits forever).
// Idempotent with Close; returns once every handler has exited.
func (t *TCPServer) Shutdown(deadline time.Duration) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.draining = true
	idle := make([]net.Conn, 0, len(t.conns))
	for c, busy := range t.conns {
		if !busy {
			idle = append(idle, c)
		}
	}
	t.mu.Unlock()
	err := t.lis.Close()
	for _, c := range idle {
		_ = c.Close()
	}
	done := make(chan struct{})
	go func() { t.wg.Wait(); close(done) }()
	var expired <-chan time.Time
	if deadline > 0 {
		timer := time.NewTimer(deadline)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case <-done:
	case <-expired:
		t.mu.Lock()
		for c := range t.conns {
			_ = c.Close()
		}
		t.mu.Unlock()
		<-done
	}
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return err
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed || t.draining {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.conns[conn] = false
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handle(conn)
	}
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		_ = conn.Close()
		gConns.Add(-1)
	}()
	gConns.Add(1)
	var buf []byte
	for {
		frame, err := vft.ReadFrame(conn, buf)
		if err != nil {
			return // EOF (client done) or connection torn down
		}
		buf = frame
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		t.conns[conn] = true // busy: a drain lets this request finish
		t.mu.Unlock()
		mRequests.Inc()
		resp := t.serve(frame)
		payload, err := json.Marshal(resp)
		if err != nil {
			payload, _ = json.Marshal(protoResponse{Code: verr.CodeInternal, Msg: err.Error()})
		}
		werr := vft.WriteFrame(conn, payload)
		t.mu.Lock()
		t.conns[conn] = false
		draining := t.draining
		t.mu.Unlock()
		if werr != nil || draining {
			return
		}
	}
}

// serve dispatches one request frame and builds its response.
func (t *TCPServer) serve(frame []byte) protoResponse {
	var req protoRequest
	if err := json.Unmarshal(frame, &req); err != nil {
		return protoResponse{Code: verr.CodeInternal, Msg: fmt.Sprintf("bad request: %v", err)}
	}
	ctx := context.Background()
	if trace := telemetry.ParseID(req.Trace); trace != 0 {
		// Continue the client's trace: the server-side span adopts the
		// request span as its (remote) parent.
		span := telemetry.Default().Spans().StartSpanRemote(
			"server."+req.Op, trace, telemetry.ParseID(req.Span))
		defer span.End()
		ctx = telemetry.ContextWithSpan(ctx, span)
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	switch req.Op {
	case "ping":
		return protoResponse{Code: verr.CodeOK}
	case "prepare":
		if err := t.front.Prepare(req.Name, req.SQL); err != nil {
			return errResponse(err)
		}
		return protoResponse{Code: verr.CodeOK}
	case "execute":
		args, err := decodeArgs(req.Args)
		if err != nil {
			return protoResponse{Code: verr.CodeInternal, Msg: err.Error()}
		}
		res, err := t.front.Execute(ctx, req.Name, args...)
		if err != nil {
			return errResponse(err)
		}
		return okResponse(res)
	case "query":
		res, err := t.front.Query(ctx, req.SQL)
		if err != nil {
			return errResponse(err)
		}
		return okResponse(res)
	default:
		if t.ext != nil {
			reply, err := t.ext.ServeExt(ctx, req.Op, req.Ext)
			if err != nil {
				return errResponse(err)
			}
			raw, err := json.Marshal(reply)
			if err != nil {
				return protoResponse{Code: verr.CodeInternal, Msg: err.Error()}
			}
			return protoResponse{Code: verr.CodeOK, Ext: raw}
		}
		return protoResponse{Code: verr.CodeInternal, Msg: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func errResponse(err error) protoResponse {
	return protoResponse{Code: verr.Code(err), Msg: err.Error()}
}

func okResponse(res *sqlexec.Result) protoResponse {
	out := protoResponse{Code: verr.CodeOK}
	if res == nil || res.Batch == nil {
		return out
	}
	for _, c := range res.Schema() {
		out.Cols = append(out.Cols, c.Name)
	}
	out.Rows = res.Rows()
	out.Profile = res.Profile.Export()
	return out
}

// decodeArgs converts JSON argument values into the Go types BindSelect
// accepts: integral numbers become int64, other numbers float64, plus
// string and bool.
func decodeArgs(raw []json.RawMessage) ([]any, error) {
	args := make([]any, len(raw))
	for i, r := range raw {
		var s string
		if err := json.Unmarshal(r, &s); err == nil {
			args[i] = s
			continue
		}
		var b bool
		if err := json.Unmarshal(r, &b); err == nil {
			args[i] = b
			continue
		}
		var n json.Number
		if err := json.Unmarshal(r, &n); err == nil {
			if iv, err := n.Int64(); err == nil {
				args[i] = iv
				continue
			}
			if fv, err := n.Float64(); err == nil {
				args[i] = fv
				continue
			}
		}
		return nil, fmt.Errorf("server: argument %d: unsupported JSON value %s", i, r)
	}
	return args, nil
}

// Client is the line-protocol client. A Client owns one connection and is
// safe for sequential use; open one Client per concurrent request stream
// (the load generator does exactly that).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
}

// Dial connects to a TCPServer.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// DialTimeout connects to a TCPServer with a dial deadline. Failures wrap
// verr.ErrNodeDown so routing layers can classify them.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("server: %w: dial %s: %v", verr.ErrNodeDown, addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// errNotSent marks a transport failure that happened before the request
// frame reached the connection (or left it truncated, which the server
// discards unread). Either way the peer never processed the request.
var errNotSent = errors.New("request not sent")

// RequestNotSent reports whether err is a transport failure that provably
// occurred before the peer could process the request, so retrying it —
// even a non-idempotent write — cannot double-apply. Failures after the
// frame was sent (recv errors, EOF) do NOT qualify: the peer may have
// executed the request and lost only the reply.
func RequestNotSent(err error) bool { return errors.Is(err, errNotSent) }

// roundTrip sends one request and decodes one response, mapping protocol
// error codes back to the verr vocabulary.
func (c *Client) roundTrip(ctx context.Context, req protoRequest) (*protoResponse, error) {
	if err := verr.Canceled(ctx.Err()); err != nil {
		return nil, err
	}
	// A traced context gets a client-side request span whose IDs ride the
	// wire, letting the server attach its spans to the same trace.
	span := telemetry.SpanFromContext(ctx).StartChild("client." + req.Op)
	defer span.End()
	if span != nil {
		req.Trace = telemetry.FormatID(span.TraceID())
		req.Span = telemetry.FormatID(span.ID())
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Transport failures — the peer is unreachable or tore the connection
	// down mid-exchange — wrap verr.ErrNodeDown: the remote never produced
	// a (coded) reply, which is exactly the condition a cluster router
	// retries on a replica.
	if err := vft.WriteFrame(c.conn, payload); err != nil {
		return nil, fmt.Errorf("server: %w: %w: %v", verr.ErrNodeDown, errNotSent, err)
	}
	frame, err := vft.ReadFrame(c.conn, c.buf)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("server: connection closed: %w", verr.ErrClosed)
		}
		return nil, fmt.Errorf("server: %w: recv: %v", verr.ErrNodeDown, err)
	}
	c.buf = frame
	var resp protoResponse
	if err := json.Unmarshal(frame, &resp); err != nil {
		return nil, fmt.Errorf("server: bad response: %w", err)
	}
	if resp.Code != verr.CodeOK {
		return nil, verr.FromCode(resp.Code, resp.Msg)
	}
	return &resp, nil
}

// Rows is a protocol-level result set. Profile is non-nil for PROFILE
// statements: the server ships its per-operator measurements back with the
// rows.
type Rows struct {
	Cols    []string
	Rows    [][]any
	Profile *sqlexec.ProfileExport
}

// Query runs one-shot SQL on the server. A ctx deadline is forwarded so the
// server's engine observes it at block boundaries.
func (c *Client) Query(ctx context.Context, sql string) (*Rows, error) {
	resp, err := c.roundTrip(ctx, protoRequest{Op: "query", SQL: sql})
	if err != nil {
		return nil, err
	}
	return &Rows{Cols: resp.Cols, Rows: resp.Rows, Profile: resp.Profile}, nil
}

// Prepare registers a named prepared statement on the server.
func (c *Client) Prepare(ctx context.Context, name, sql string) error {
	_, err := c.roundTrip(ctx, protoRequest{Op: "prepare", Name: name, SQL: sql})
	return err
}

// Execute binds args to a previously prepared statement and runs it.
func (c *Client) Execute(ctx context.Context, name string, args ...any) (*Rows, error) {
	raw := make([]json.RawMessage, len(args))
	for i, a := range args {
		b, err := json.Marshal(a)
		if err != nil {
			return nil, fmt.Errorf("server: argument %d: %w", i, err)
		}
		raw[i] = b
	}
	resp, err := c.roundTrip(ctx, protoRequest{Op: "execute", Name: name, Args: raw})
	if err != nil {
		return nil, err
	}
	return &Rows{Cols: resp.Cols, Rows: resp.Rows, Profile: resp.Profile}, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, protoRequest{Op: "ping"})
	return err
}

// Call round-trips a protocol-extension op: payload marshals into the
// request's Ext field, the server's Extension handles it, and the reply's
// Ext unmarshals into reply (skipped when reply is nil). Errors carry verr
// identity like every other op.
func (c *Client) Call(ctx context.Context, op string, payload, reply any) error {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("server: %s payload: %w", op, err)
		}
		raw = b
	}
	resp, err := c.roundTrip(ctx, protoRequest{Op: op, Ext: raw})
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	if len(resp.Ext) == 0 {
		return fmt.Errorf("server: %s: empty extension reply", op)
	}
	return json.Unmarshal(resp.Ext, reply)
}
