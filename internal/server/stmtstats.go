package server

import (
	"sort"
	"sync"
	"time"

	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

// StmtStats is the pg_stat_statements analogue: cumulative per-statement
// execution statistics keyed on the normalized SQL text (the same
// fingerprint the plan cache uses, so a statement's plan-cache entry and its
// stats row line up). Retention is bounded: at most `cap` fingerprints are
// tracked, evicting the least-recently-executed when a new statement would
// exceed the bound — a long-running server with pathological query diversity
// stays at O(cap) memory, and the evictions are counted.
type StmtStats struct {
	mu      sync.Mutex
	entries map[string]*stmtEntry
	cap     int
	seq     uint64
	evicted int64
}

type stmtEntry struct {
	sql        string
	calls      int64
	errors     int64
	errCodes   map[string]int64
	totalNanos int64
	hist       *telemetry.Histogram
	lastSeq    uint64
}

// defaultStmtStatsCap bounds distinct fingerprints tracked per server.
const defaultStmtStatsCap = 256

func newStmtStats(capacity int) *StmtStats {
	if capacity <= 0 {
		capacity = defaultStmtStatsCap
	}
	return &StmtStats{entries: map[string]*stmtEntry{}, cap: capacity}
}

// Record folds one execution into the statement's row. err == nil counts a
// success; otherwise the verr wire code buckets the failure.
func (s *StmtStats) Record(sql string, d time.Duration, err error) {
	s.mu.Lock()
	e, ok := s.entries[sql]
	if !ok {
		if len(s.entries) >= s.cap {
			s.evictLocked()
		}
		e = &stmtEntry{sql: sql, errCodes: map[string]int64{}, hist: telemetry.NewHistogram(nil)}
		s.entries[sql] = e
	}
	s.seq++
	e.lastSeq = s.seq
	e.calls++
	e.totalNanos += int64(d)
	if err != nil {
		e.errors++
		e.errCodes[verr.Code(err)]++
	}
	hist := e.hist
	s.mu.Unlock()
	// Observe outside the map lock; the histogram itself is lock-free.
	hist.ObserveDuration(d)
}

// evictLocked removes the least-recently-executed entry.
func (s *StmtStats) evictLocked() {
	var victim string
	var oldest uint64
	first := true
	for k, e := range s.entries {
		if first || e.lastSeq < oldest {
			victim, oldest, first = k, e.lastSeq, false
		}
	}
	if !first {
		delete(s.entries, victim)
		s.evicted++
	}
}

// Evicted reports how many fingerprints retention has dropped.
func (s *StmtStats) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Len reports how many fingerprints are currently tracked.
func (s *StmtStats) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Reset drops every tracked statement.
func (s *StmtStats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = map[string]*stmtEntry{}
	s.evicted = 0
}

// StmtSnapshot is one statement's cumulative statistics.
type StmtSnapshot struct {
	SQL       string           `json:"sql"`
	Calls     int64            `json:"calls"`
	Errors    int64            `json:"errors,omitempty"`
	ErrCodes  map[string]int64 `json:"error_codes,omitempty"`
	TotalSecs float64          `json:"total_seconds"`
	MeanSecs  float64          `json:"mean_seconds"`
	P50Secs   float64          `json:"p50_seconds"`
	P95Secs   float64          `json:"p95_seconds"`
	P99Secs   float64          `json:"p99_seconds"`
}

// Snapshot returns every tracked statement ordered by total time descending
// (the "what is this server spending its life on" view).
func (s *StmtStats) Snapshot() []StmtSnapshot {
	s.mu.Lock()
	entries := make([]*stmtEntry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	snaps := make([]StmtSnapshot, len(entries))
	for i, e := range entries {
		snaps[i] = StmtSnapshot{
			SQL:       e.sql,
			Calls:     e.calls,
			Errors:    e.errors,
			TotalSecs: time.Duration(e.totalNanos).Seconds(),
		}
		if e.calls > 0 {
			snaps[i].MeanSecs = snaps[i].TotalSecs / float64(e.calls)
		}
		if len(e.errCodes) > 0 {
			codes := make(map[string]int64, len(e.errCodes))
			for c, n := range e.errCodes {
				codes[c] = n
			}
			snaps[i].ErrCodes = codes
		}
	}
	hists := make([]*telemetry.Histogram, len(entries))
	for i, e := range entries {
		hists[i] = e.hist
	}
	s.mu.Unlock()
	for i, h := range hists {
		if h.Count() > 0 {
			snaps[i].P50Secs = h.Quantile(0.50)
			snaps[i].P95Secs = h.Quantile(0.95)
			snaps[i].P99Secs = h.Quantile(0.99)
		}
	}
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].TotalSecs != snaps[j].TotalSecs {
			return snaps[i].TotalSecs > snaps[j].TotalSecs
		}
		return snaps[i].SQL < snaps[j].SQL
	})
	return snaps
}
