// Package server is the concurrent query-serving layer over a core.Session —
// the deployment the paper's §5 prediction pipeline implies but never builds:
// many clients issuing PREDICT queries against deployed models at once. It
// adds what a single-user session lacks:
//
//   - prepared statements with a bounded LRU plan cache (parse/validate once,
//     bind ? placeholders per execution),
//   - a shared deserialized-model cache (internal/models) so concurrent
//     predictions stop paying one gob decode per UDF instance per query,
//   - admission control: a concurrency limiter plus a bounded wait queue
//     with a queue-wait deadline, shedding load with verr.ErrOverloaded
//     instead of collapsing under it,
//   - per-query cancellation and deadlines, honored at scan-block and
//     aggregation-chunk boundaries inside the engine.
package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/core"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

var (
	gInflight   = telemetry.Default().Gauge("server_inflight")
	gQueueDepth = telemetry.Default().Gauge("server_queue_depth")
	hWait       = telemetry.Default().Histogram("server_wait_seconds", nil)
	hQuery      = telemetry.Default().Histogram("server_query_seconds", nil)
)

func mOutcome(outcome string) *telemetry.Counter {
	return telemetry.Default().Counter("server_queries_total", telemetry.L("outcome", outcome))
}

// Config tunes the serving layer.
type Config struct {
	// MaxConcurrent bounds queries executing at once (default 8).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for an execution slot; arrivals beyond
	// it are refused immediately with verr.ErrOverloaded (default 64).
	MaxQueue int
	// QueueWait bounds how long an admitted query may wait for a slot before
	// being shed with verr.ErrOverloaded (default 2s).
	QueueWait time.Duration
	// QueryTimeout, when positive, caps each query's execution time; the
	// engine observes the deadline at block boundaries (default: none).
	QueryTimeout time.Duration
	// PlanCacheSize bounds the one-shot plan LRU (default 128).
	PlanCacheSize int
	// StmtStatsSize bounds how many distinct statement fingerprints the
	// per-statement statistics track before evicting the least recently
	// executed (default 256).
	StmtStatsSize int
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
}

// Server serves concurrent queries over one session.
type Server struct {
	sess *core.Session
	cfg  Config

	sem     chan struct{}
	queued  atomic.Int64
	running atomic.Int64

	plans *planCache
	stmts *StmtStats

	mu       sync.Mutex
	prepared map[string]preparedStmt

	closed atomic.Bool
}

// preparedStmt pairs the immutable plan template with the SQL it was
// prepared from (the statement-statistics fingerprint for its executions).
type preparedStmt struct {
	sel *sqlparse.Select
	sql string
}

// New builds a serving layer over sess.
func New(sess *core.Session, cfg Config) *Server {
	cfg.fill()
	return &Server{
		sess:     sess,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		plans:    newPlanCache(cfg.PlanCacheSize),
		stmts:    newStmtStats(cfg.StmtStatsSize),
		prepared: map[string]preparedStmt{},
	}
}

// Session exposes the underlying session (benchmarks toggle its caches).
func (s *Server) Session() *core.Session { return s.sess }

// PlanCacheLen reports the one-shot plan cache's current size.
func (s *Server) PlanCacheLen() int { return s.plans.len() }

// Statements exposes the per-statement statistics (calls, error codes,
// latency quantiles per normalized SQL fingerprint).
func (s *Server) Statements() *StmtStats { return s.stmts }

// Health is an instantaneous admission-control reading.
type Health struct {
	Closed        bool  `json:"closed"`
	Inflight      int64 `json:"inflight"`
	Queued        int64 `json:"queued"`
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueue      int   `json:"max_queue"`
	// Saturated means a query arriving now would be refused immediately:
	// every execution slot and every queue slot is taken.
	Saturated bool `json:"saturated"`
}

// Health reports whether the server can currently admit work.
func (s *Server) Health() Health {
	h := Health{
		Closed:        s.closed.Load(),
		Inflight:      s.running.Load(),
		Queued:        s.queued.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		MaxQueue:      s.cfg.MaxQueue,
	}
	h.Saturated = h.Closed || (h.Inflight >= int64(h.MaxConcurrent) && h.Queued >= int64(h.MaxQueue))
	return h
}

// Close marks the server closed; new requests fail fast with verr.ErrClosed.
// It does not close the underlying session — the session owner does that
// (core.Session.Close itself drains in-flight queries).
func (s *Server) Close() { s.closed.Store(true) }

// normalize is the statement-fingerprint function: whitespace-insensitive at
// the statement edges, semicolon-insensitive at the end.
func normalize(sql string) string {
	return strings.TrimRight(strings.TrimSpace(sql), "; \t\n")
}

// cacheKey is the plan-cache key: the normalized SQL prefixed with the
// database's catalog epoch. Every DDL apply (CREATE/DROP TABLE, CREATE/DROP
// INDEX) bumps the epoch, so cached plans from before the DDL miss instead
// of executing against access paths or schemas that no longer exist; the
// stale entries age out of the LRU on their own.
func (s *Server) cacheKey(normalized string) string {
	var epoch uint64
	if s.sess.DB != nil {
		epoch = s.sess.DB.CatalogEpoch()
	}
	return fmt.Sprintf("%d|%s", epoch, normalized)
}

// acquire implements admission control. It returns a release func once the
// caller holds an execution slot, or a typed error: verr.ErrOverloaded when
// the queue is full or the queue-wait deadline passes, verr.ErrCanceled when
// ctx ends first, verr.ErrClosed after Close.
func (s *Server) acquire(ctx context.Context) (func(), error) {
	admit := telemetry.SpanFromContext(ctx).StartChild("server.admit")
	if s.closed.Load() {
		admit.SetAttr("outcome", "closed")
		admit.End()
		return nil, fmt.Errorf("server: %w", verr.ErrClosed)
	}
	grant := func() func() {
		admit.SetAttr("outcome", "ok")
		admit.End()
		gInflight.Add(1)
		s.running.Add(1)
		return func() {
			gInflight.Add(-1)
			s.running.Add(-1)
			<-s.sem
		}
	}
	// Fast path: free slot, no queueing.
	select {
	case s.sem <- struct{}{}:
		return grant(), nil
	default:
	}
	// Bounded wait queue: refuse immediately when full.
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		mOutcome("overloaded").Inc()
		admit.SetAttr("outcome", "queue_full")
		admit.End()
		return nil, fmt.Errorf("server: wait queue full (%d): %w", s.cfg.MaxQueue, verr.ErrOverloaded)
	}
	admit.SetAttr("queued", "true")
	gQueueDepth.Add(1)
	start := time.Now()
	defer func() {
		gQueueDepth.Add(-1)
		s.queued.Add(-1)
		hWait.Observe(time.Since(start).Seconds())
	}()
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return grant(), nil
	case <-timer.C:
		mOutcome("overloaded").Inc()
		admit.SetAttr("outcome", "queue_wait_exceeded")
		admit.End()
		return nil, fmt.Errorf("server: queue wait exceeded %v: %w", s.cfg.QueueWait, verr.ErrOverloaded)
	case <-ctx.Done():
		mOutcome("canceled").Inc()
		admit.SetAttr("outcome", "canceled")
		admit.End()
		return nil, verr.Canceled(ctx.Err())
	}
}

// run executes fn under admission control, the configured query timeout,
// outcome accounting and per-statement statistics (keyed on fingerprint, the
// normalized SQL). A traced context gets server.admit and server.exec child
// spans; the engine hangs per-operator spans under the latter.
func (s *Server) run(ctx context.Context, fingerprint string, fn func(ctx context.Context) (*sqlexec.Result, error)) (*sqlexec.Result, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		if fingerprint != "" {
			s.stmts.Record(fingerprint, 0, err)
		}
		return nil, err
	}
	defer release()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	execCtx, execSpan := telemetry.StartChildCtx(ctx, "server.exec")
	start := time.Now()
	res, err := fn(execCtx)
	elapsed := time.Since(start)
	execSpan.End()
	hQuery.Observe(elapsed.Seconds())
	if fingerprint != "" {
		s.stmts.Record(fingerprint, elapsed, err)
	}
	switch {
	case err == nil:
		mOutcome("ok").Inc()
	case verr.Code(err) == verr.CodeCanceled:
		mOutcome("canceled").Inc()
	default:
		mOutcome("error").Inc()
	}
	return res, err
}

// Admit runs fn under the server's admission control — the concurrency
// limiter, bounded wait queue, queue-wait deadline and query timeout — and
// records it in the per-statement statistics under fingerprint (which may
// be empty to skip stats). Protocol extensions (the cluster peer ops) use
// it so shard work on a peer queues and sheds exactly like local queries:
// a saturated peer answers verr.ErrOverloaded and the router retries the
// shard on a replica.
func (s *Server) Admit(ctx context.Context, fingerprint string, fn func(ctx context.Context) (*sqlexec.Result, error)) (*sqlexec.Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("server: %w", verr.ErrClosed)
	}
	return s.run(ctx, fingerprint, fn)
}

// Prepare parses and validates sql (a SELECT, possibly with ? placeholders)
// and registers it under name. Re-preparing a name replaces its statement.
func (s *Server) Prepare(name, sql string) error {
	if s.closed.Load() {
		return fmt.Errorf("server: %w", verr.ErrClosed)
	}
	if name == "" {
		return fmt.Errorf("server: empty statement name")
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return fmt.Errorf("server: PREPARE requires a SELECT, got %T", stmt)
	}
	s.mu.Lock()
	s.prepared[name] = preparedStmt{sel: sel, sql: normalize(sql)}
	s.mu.Unlock()
	return nil
}

// Execute binds args to the named prepared statement and runs it. The cached
// template is never mutated: binding deep-copies, so any number of
// executions (with different arguments) can run concurrently.
func (s *Server) Execute(ctx context.Context, name string, args ...any) (*sqlexec.Result, error) {
	s.mu.Lock()
	ps, ok := s.prepared[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: no prepared statement %q", name)
	}
	bound, err := sqlparse.BindSelect(ps.sel, args)
	if err != nil {
		return nil, err
	}
	return s.run(ctx, ps.sql, func(ctx context.Context) (*sqlexec.Result, error) {
		return s.sess.RunStatementContext(ctx, bound, "")
	})
}

// Query runs one-shot SQL under admission control. SELECT parses are served
// from (and inserted into) the LRU plan cache, so a repeated query skips
// parsing and validation; statements with placeholders must go through
// Prepare/Execute.
func (s *Server) Query(ctx context.Context, sql string) (*sqlexec.Result, error) {
	key := normalize(sql)
	ck := s.cacheKey(key)
	if sel, ok := s.plans.get(ck); ok {
		telemetry.SpanFromContext(ctx).SetAttr("plan_cache", "hit")
		return s.run(ctx, key, func(ctx context.Context) (*sqlexec.Result, error) {
			return s.sess.RunStatementContext(ctx, sel, sql)
		})
	}
	telemetry.SpanFromContext(ctx).SetAttr("plan_cache", "miss")
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sqlparse.Select); ok && sel.NumParams == 0 {
		s.plans.put(ck, sel)
	}
	return s.run(ctx, key, func(ctx context.Context) (*sqlexec.Result, error) {
		return s.sess.RunStatementContext(ctx, stmt, sql)
	})
}

// Exec runs one-shot SQL, discarding rows.
func (s *Server) Exec(ctx context.Context, sql string) error {
	_, err := s.Query(ctx, sql)
	return err
}
