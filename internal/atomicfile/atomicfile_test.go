package atomicfile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	for _, want := range []string{"first", "second, longer content"} {
		if err := WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("read %q, want %q", got, want)
		}
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after WriteFile, want 1", len(entries))
	}
}

func TestSyncDirReportsRealErrors(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	// A missing directory is a genuine failure and must not be swallowed.
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory returned nil")
	}
}

func TestSyncTreeWalksEveryDirectory(t *testing.T) {
	root := t.TempDir()
	deep := filepath.Join(root, "tables", "t", "blobs")
	if err := os.MkdirAll(deep, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(deep, "node0.vseg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SyncTree(root); err != nil {
		t.Fatalf("SyncTree: %v", err)
	}
	if err := SyncTree(filepath.Join(root, "missing")); err == nil {
		t.Fatal("SyncTree on a missing root returned nil")
	}
}
