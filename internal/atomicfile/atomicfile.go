// Package atomicfile writes files so a crash at any instant leaves either
// the old content or the new content on disk — never a torn mixture. The
// durability layer (WAL checkpoints, segment persistence, the catalog
// manifest, DFS blob spills) builds on exactly one primitive: write to a
// temp file in the target directory, fsync the file, rename over the
// destination, then fsync the parent directory so the rename itself is
// durable. POSIX rename is atomic within a filesystem, and the parent-dir
// fsync is what commits the directory entry — skipping it is the classic
// "file fine after crash, but gone" bug.
package atomicfile

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFile atomically replaces path with data: temp file + fsync + rename
// + parent-directory fsync. On any error the temp file is removed and the
// previous content of path (if any) is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: create temp for %q: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("atomicfile: write %q: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("atomicfile: fsync %q: %w", path, err))
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("atomicfile: chmod %q: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: close %q: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: rename %q: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making prior renames/creates/removes in it
// durable. Filesystems that do not support directory fsync (some CI tmpfs
// setups) report EINVAL or ENOTSUP; only those are ignored, matching what
// databases do — any other error (EIO, ENOSPC) is a real durability failure
// and is returned.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: open dir %q: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("atomicfile: fsync dir %q: %w", dir, err)
	}
	return nil
}

// SyncTree fsyncs root and every directory beneath it. A freshly written
// directory tree (a checkpoint image) is only durable once each directory's
// entries — subdirectories and renamed-in files alike — have been committed;
// syncing the root alone leaves everything deeper unprotected.
func SyncTree(root string) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("atomicfile: sync tree %q: %w", root, err)
		}
		if !d.IsDir() {
			return nil
		}
		return SyncDir(path)
	})
}
