// Package atomicfile writes files so a crash at any instant leaves either
// the old content or the new content on disk — never a torn mixture. The
// durability layer (WAL checkpoints, segment persistence, the catalog
// manifest, DFS blob spills) builds on exactly one primitive: write to a
// temp file in the target directory, fsync the file, rename over the
// destination, then fsync the parent directory so the rename itself is
// durable. POSIX rename is atomic within a filesystem, and the parent-dir
// fsync is what commits the directory entry — skipping it is the classic
// "file fine after crash, but gone" bug.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: temp file + fsync + rename
// + parent-directory fsync. On any error the temp file is removed and the
// previous content of path (if any) is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: create temp for %q: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("atomicfile: write %q: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("atomicfile: fsync %q: %w", path, err))
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("atomicfile: chmod %q: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: close %q: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: rename %q: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making prior renames/creates/removes in it
// durable. Filesystems that do not support directory fsync (some CI tmpfs
// setups) report EINVAL; that is ignored, matching what databases do.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: open dir %q: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsNotExist(err) {
		// Directory fsync is not supported everywhere; a failure here can
		// not corrupt data, only weaken the durability of the rename.
		return nil
	}
	return nil
}
