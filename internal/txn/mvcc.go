// Package txn is a multi-version table store providing snapshot isolation
// over the append-only column store. The engine never updates rows in place
// — ingest appends, DDL creates or drops whole tables — so a "version" is
// simply an immutable list of per-node segments published at a commit
// timestamp. A snapshot pins a timestamp: every read through it sees exactly
// the versions committed at or before that instant, no matter how many
// COPYs, INSERTs or model redeploys commit while the read runs. Writers
// never block readers (they publish fresh versions built from copy-on-write
// segment clones) and readers never block writers; garbage collection prunes
// versions no active snapshot can reach.
package txn

import (
	"sort"
	"sync"

	"verticadr/internal/colstore"
	"verticadr/internal/telemetry"
)

// MVCC observability, served through the admin /metrics endpoint.
var (
	gActiveSnaps = telemetry.Default().Gauge("txn_active_snapshots")
	mCommits     = telemetry.Default().Counter("txn_commits_total")
	mPruned      = telemetry.Default().Counter("txn_versions_pruned_total")
)

// version is one published state of a table: the segment list as of commit
// timestamp ts, or a drop tombstone. Segments inside a published version are
// immutable — the write path clones before appending.
type version struct {
	ts      uint64
	segs    []*colstore.Segment
	dropped bool
}

// table is a version chain, ascending by commit timestamp.
type table struct {
	versions []version
}

// visibleAt returns the newest version committed at or before ts.
func (t *table) visibleAt(ts uint64) (version, bool) {
	// Chains are short (GC trims them to the active-snapshot window), so a
	// reverse linear scan beats binary search in practice.
	for i := len(t.versions) - 1; i >= 0; i-- {
		if t.versions[i].ts <= ts {
			return t.versions[i], true
		}
	}
	return version{}, false
}

// Store is the MVCC table store.
type Store struct {
	mu       sync.Mutex
	commitTS uint64
	tables   map[string]*table
	snaps    map[uint64]int // pinned timestamp -> reference count
}

// NewStore returns an empty store at commit timestamp 0.
func NewStore() *Store {
	return &Store{tables: make(map[string]*table), snaps: make(map[uint64]int)}
}

// Put publishes a new version of the table (creating it if absent) at the
// next commit timestamp. The segment list is owned by the store afterwards:
// callers must not append to those segments again — mutate a Clone instead
// and Put the result.
func (s *Store) Put(name string, segs []*colstore.Segment) uint64 {
	return s.publish(name, version{segs: segs})
}

// Drop publishes a tombstone: snapshots taken before the drop still read the
// table, snapshots taken after see it gone.
func (s *Store) Drop(name string) uint64 {
	return s.publish(name, version{dropped: true})
}

func (s *Store) publish(name string, v version) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitTS++
	v.ts = s.commitTS
	t := s.tables[name]
	if t == nil {
		t = &table{}
		s.tables[name] = t
	}
	t.versions = append(t.versions, v)
	mCommits.Inc()
	s.gcLocked()
	return v.ts
}

// Latest returns the head version's segments (the state a new writer builds
// on), or ok=false if the table does not exist or is dropped at head.
func (s *Store) Latest(name string) ([]*colstore.Segment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[name]
	if t == nil || len(t.versions) == 0 {
		return nil, false
	}
	head := t.versions[len(t.versions)-1]
	if head.dropped {
		return nil, false
	}
	return head.segs, true
}

// CommitTS returns the current (latest committed) timestamp.
func (s *Store) CommitTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitTS
}

// Snap is a pinned snapshot: reads through it see the store exactly as of
// its timestamp. Release it when the query finishes so GC can advance.
type Snap struct {
	store *Store
	ts    uint64

	release sync.Once
}

// Snapshot pins the current commit timestamp and returns a snapshot reading
// at it.
func (s *Store) Snapshot() *Snap {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snaps[s.commitTS]++
	gActiveSnaps.Add(1)
	return &Snap{store: s, ts: s.commitTS}
}

// TS returns the snapshot's pinned commit timestamp.
func (sn *Snap) TS() uint64 { return sn.ts }

// Segments returns the table's segments as of the snapshot, or ok=false if
// the table did not exist (or was dropped) at that instant. The returned
// segments are immutable; they remain valid after Release (Go's GC keeps
// them alive), but holding the Snap is what keeps version pruning honest.
func (sn *Snap) Segments(name string) ([]*colstore.Segment, bool) {
	s := sn.store
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[name]
	if t == nil {
		return nil, false
	}
	v, ok := t.visibleAt(sn.ts)
	if !ok || v.dropped {
		return nil, false
	}
	return v.segs, true
}

// Tables lists the table names visible at the snapshot, sorted.
func (sn *Snap) Tables() []string {
	s := sn.store
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, t := range s.tables {
		if v, ok := t.visibleAt(sn.ts); ok && !v.dropped {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Release unpins the snapshot. Idempotent; after the last release of the
// oldest snapshot, GC may prune the versions only it could see.
func (sn *Snap) Release() {
	sn.release.Do(func() {
		s := sn.store
		s.mu.Lock()
		defer s.mu.Unlock()
		if n := s.snaps[sn.ts]; n <= 1 {
			delete(s.snaps, sn.ts)
		} else {
			s.snaps[sn.ts] = n - 1
		}
		gActiveSnaps.Add(-1)
		s.gcLocked()
	})
}

// ActiveSnapshots reports how many snapshots are currently pinned.
func (s *Store) ActiveSnapshots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.snaps {
		n += c
	}
	return n
}

// horizonLocked is the oldest timestamp any reader can still demand: the
// minimum pinned snapshot timestamp, or the head timestamp when nothing is
// pinned.
func (s *Store) horizonLocked() uint64 {
	h := s.commitTS
	for ts := range s.snaps {
		if ts < h {
			h = ts
		}
	}
	return h
}

// gcLocked prunes table versions no snapshot can reach: for each table it
// keeps every version newer than the horizon plus the single newest version
// at or below it (the one a horizon-aged snapshot reads). Tables whose only
// surviving version is a tombstone older than the horizon are removed
// entirely.
func (s *Store) gcLocked() {
	h := s.horizonLocked()
	for name, t := range s.tables {
		// Index of the newest version with ts <= h; everything before it is dead.
		keepFrom := 0
		for i, v := range t.versions {
			if v.ts <= h {
				keepFrom = i
			}
		}
		if keepFrom > 0 {
			pruned := keepFrom
			t.versions = append([]version(nil), t.versions[keepFrom:]...)
			mPruned.Add(int64(pruned))
		}
		if len(t.versions) == 1 && t.versions[0].dropped && t.versions[0].ts <= h {
			delete(s.tables, name)
			mPruned.Inc()
		}
	}
}

// VersionCount reports the live version-chain length for a table (0 when
// absent). Test and debugging hook for GC behavior.
func (s *Store) VersionCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[name]
	if t == nil {
		return 0
	}
	return len(t.versions)
}
