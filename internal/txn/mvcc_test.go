package txn

import (
	"fmt"
	"sync"
	"testing"

	"verticadr/internal/colstore"
)

var schema = colstore.Schema{
	{Name: "id", Type: colstore.TypeInt64},
	{Name: "v", Type: colstore.TypeFloat64},
}

func batch(t *testing.T, ids ...int64) *colstore.Batch {
	t.Helper()
	b := colstore.NewBatch(schema)
	for _, id := range ids {
		if err := b.AppendRow(id, float64(id)/2); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func seg(t *testing.T, ids ...int64) *colstore.Segment {
	t.Helper()
	s := colstore.NewSegment(schema, 4)
	if len(ids) > 0 {
		if err := s.Append(batch(t, ids...)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func readIDs(t *testing.T, segs []*colstore.Segment) []int64 {
	t.Helper()
	var out []int64
	for _, s := range segs {
		b, err := s.ReadAll([]string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Cols[0].Ints...)
	}
	return out
}

func TestSnapshotSeesFrozenState(t *testing.T) {
	st := NewStore()
	st.Put("t", []*colstore.Segment{seg(t, 1, 2, 3)})
	sn := st.Snapshot()
	defer sn.Release()

	// Commit more rows via copy-on-write, the way the write path does.
	cur, _ := st.Latest("t")
	next := cur[0].Clone()
	if err := next.Append(batch(t, 4, 5)); err != nil {
		t.Fatal(err)
	}
	st.Put("t", []*colstore.Segment{next})

	old, ok := sn.Segments("t")
	if !ok {
		t.Fatal("snapshot lost the table")
	}
	if got := readIDs(t, old); len(got) != 3 {
		t.Fatalf("snapshot sees %v, want the original 3 rows", got)
	}
	sn2 := st.Snapshot()
	defer sn2.Release()
	cur2, _ := sn2.Segments("t")
	if got := readIDs(t, cur2); len(got) != 5 {
		t.Fatalf("fresh snapshot sees %v, want 5 rows", got)
	}
}

func TestDropVisibility(t *testing.T) {
	st := NewStore()
	st.Put("t", []*colstore.Segment{seg(t, 1)})
	before := st.Snapshot()
	defer before.Release()
	st.Drop("t")
	after := st.Snapshot()
	defer after.Release()

	if _, ok := before.Segments("t"); !ok {
		t.Fatal("pre-drop snapshot must still read the table")
	}
	if _, ok := after.Segments("t"); ok {
		t.Fatal("post-drop snapshot must not see the table")
	}
	if _, ok := st.Latest("t"); ok {
		t.Fatal("Latest must not return a dropped table")
	}
	if got := before.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("pre-drop Tables = %v", got)
	}
	if got := after.Tables(); len(got) != 0 {
		t.Fatalf("post-drop Tables = %v", got)
	}
}

func TestGCPrunesPastOldestSnapshot(t *testing.T) {
	st := NewStore()
	st.Put("t", []*colstore.Segment{seg(t, 0)})
	sn := st.Snapshot()
	for i := 1; i <= 10; i++ {
		st.Put("t", []*colstore.Segment{seg(t, int64(i))})
	}
	// The pinned snapshot holds version 1 alive, plus the 10 newer ones.
	if n := st.VersionCount("t"); n != 11 {
		t.Fatalf("with snapshot pinned: %d versions, want 11", n)
	}
	sn.Release()
	sn.Release() // idempotent
	// A fresh commit triggers GC with no snapshots: only the head survives
	// (plus the commit itself).
	st.Put("t", []*colstore.Segment{seg(t, 99)})
	if n := st.VersionCount("t"); n != 1 {
		t.Fatalf("after release: %d versions, want 1", n)
	}
	if st.ActiveSnapshots() != 0 {
		t.Fatal("refcount leak")
	}
}

func TestDroppedTableFullyCollected(t *testing.T) {
	st := NewStore()
	st.Put("t", []*colstore.Segment{seg(t, 1)})
	st.Drop("t")
	st.Put("other", nil) // advance + GC
	if n := st.VersionCount("t"); n != 0 {
		t.Fatalf("tombstone not collected: %d versions", n)
	}
}

func TestCloneIsolation(t *testing.T) {
	// Appending to a clone must not leak into the published original, even
	// across seal boundaries (shared sealed slices, deep-copied tail).
	orig := seg(t, 1, 2, 3, 4, 5) // blockRows=4: one sealed block + tail [5]
	cl := orig.Clone()
	if err := cl.Append(batch(t, 6, 7, 8, 9, 10)); err != nil { // forces seal on the clone
		t.Fatal(err)
	}
	if got := readIDs(t, []*colstore.Segment{orig}); fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("original mutated by clone append: %v", got)
	}
	if got := readIDs(t, []*colstore.Segment{cl}); fmt.Sprint(got) != "[1 2 3 4 5 6 7 8 9 10]" {
		t.Fatalf("clone rows wrong: %v", got)
	}
	if err := orig.Append(batch(t, 11)); err != nil {
		t.Fatal(err)
	}
	if got := readIDs(t, []*colstore.Segment{cl}); fmt.Sprint(got) != "[1 2 3 4 5 6 7 8 9 10]" {
		t.Fatalf("clone mutated by original append: %v", got)
	}
}

// TestSnapshotConsistencyUnderConcurrentCommits is the core isolation
// property: writers commit batches tagged with a commit id; any snapshot
// must observe a contiguous prefix of commit ids with every id's rows
// all-or-nothing. Run with -race.
func TestSnapshotConsistencyUnderConcurrentCommits(t *testing.T) {
	const commits = 60
	const rowsPer = 7
	st := NewStore()
	st.Put("t", []*colstore.Segment{colstore.NewSegment(schema, 8)})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single writer thread (the DB serializes commits per table)
		defer wg.Done()
		for c := 1; c <= commits; c++ {
			cur, _ := st.Latest("t")
			next := cur[0].Clone()
			b := colstore.NewBatch(schema)
			for r := 0; r < rowsPer; r++ {
				if err := b.AppendRow(int64(c), float64(r)); err != nil {
					panic(err)
				}
			}
			if err := next.Append(b); err != nil {
				panic(err)
			}
			st.Put("t", []*colstore.Segment{next})
		}
	}()

	var rg sync.WaitGroup
	for g := 0; g < 8; g++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 40; i++ {
				sn := st.Snapshot()
				segs, ok := sn.Segments("t")
				if !ok {
					sn.Release()
					continue
				}
				counts := map[int64]int{}
				var maxID int64
				for _, s := range segs {
					b, err := s.ReadAll([]string{"id"})
					if err != nil {
						t.Error(err)
						sn.Release()
						return
					}
					for _, id := range b.Cols[0].Ints {
						counts[id]++
						if id > maxID {
							maxID = id
						}
					}
				}
				sn.Release()
				// All-or-nothing per commit and a contiguous id prefix.
				for c := int64(1); c <= maxID; c++ {
					if counts[c] != rowsPer {
						t.Errorf("snapshot tore commit %d: saw %d of %d rows (max id %d)", c, counts[c], rowsPer, maxID)
						return
					}
				}
			}
		}()
	}
	rg.Wait()
	wg.Wait()
	sn := st.Snapshot()
	defer sn.Release()
	segs, _ := sn.Segments("t")
	if got := readIDs(t, segs); len(got) != commits*rowsPer {
		t.Fatalf("final state has %d rows, want %d", len(got), commits*rowsPer)
	}
}
