package yarn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
)

func newRM(t *testing.T) *ResourceManager {
	t.Helper()
	rm, err := New(Config{
		Nodes: []NodeResources{
			{Cores: 8, MemoryMB: 16000},
			{Cores: 8, MemoryMB: 16000},
		},
		Queues: map[string]float64{"db": 0.5, "analytics": 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no nodes should fail")
	}
	if _, err := New(Config{Nodes: []NodeResources{{Cores: 0, MemoryMB: 1}}}); err == nil {
		t.Fatal("zero cores should fail")
	}
	if _, err := New(Config{Nodes: []NodeResources{{1, 1}}, Queues: map[string]float64{"a": 2}}); err == nil {
		t.Fatal("share > 1 should fail")
	}
	if _, err := New(Config{Nodes: []NodeResources{{1, 1}}, Queues: map[string]float64{"a": 0.7, "b": 0.7}}); err == nil {
		t.Fatal("shares > 1 total should fail")
	}
	rm := newRM(t)
	if _, err := rm.Submit("x", "nope"); err == nil {
		t.Fatal("unknown queue should fail")
	}
	if len(rm.Queues()) != 2 {
		t.Fatal("queues")
	}
}

func TestRequestReleaseAccounting(t *testing.T) {
	rm := newRM(t)
	app, _ := rm.Submit("vertica", "db")
	c, err := app.Request(4, 8000, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node != 0 || c.Cores != 4 {
		t.Fatalf("container = %+v", c)
	}
	u := rm.Usage()
	if u.FreeCores[0] != 4 || u.QueueCores["db"] != 4 || u.Outstanding != 1 {
		t.Fatalf("usage = %+v", u)
	}
	if err := app.Release(c); err != nil {
		t.Fatal(err)
	}
	if err := app.Release(c); err == nil {
		t.Fatal("double release should fail")
	}
	u = rm.Usage()
	if u.FreeCores[0] != 8 || u.Outstanding != 0 {
		t.Fatalf("usage after release = %+v", u)
	}
}

func TestLocalityPreference(t *testing.T) {
	rm, err := New(Config{
		Nodes: []NodeResources{
			{Cores: 8, MemoryMB: 16000},
			{Cores: 8, MemoryMB: 16000},
		},
		Queues: map[string]float64{"analytics": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, _ := rm.Submit("dr", "analytics")
	c, _ := app.Request(2, 1000, 1, false)
	if c.Node != 1 {
		t.Fatalf("locality preference ignored: node %d", c.Node)
	}
	// Fill node 1; next preferred-1 request falls back to node 0.
	c2, _ := app.Request(6, 1000, 1, false)
	if c2.Node != 1 {
		t.Fatalf("node 1 had room: %+v", c2)
	}
	c3, err := app.Request(2, 1000, 1, false)
	if err != nil || c3.Node != 0 {
		t.Fatalf("fallback failed: %+v %v", c3, err)
	}
}

func TestCapacityProtectsOtherQueues(t *testing.T) {
	rm := newRM(t)
	dr, _ := rm.Submit("dr", "analytics")
	// analytics' share is 8 of 16 cores. It may take its share...
	if _, err := dr.RequestN(4, 2, 1000, false); err != nil {
		t.Fatal(err)
	}
	// ...but not eat into db's guaranteed half while db is unused? With
	// elasticity, extra idle beyond db's guarantee is zero here (db has 8
	// reserved), so the next request must fail.
	if _, err := dr.Request(2, 1000, -1, false); err == nil {
		t.Fatal("analytics should not exceed its share while db's guarantee is reserved")
	}
	// db can still get its full share immediately.
	db, _ := rm.Submit("vertica", "db")
	if _, err := db.RequestN(4, 2, 1000, false); err != nil {
		t.Fatalf("db blocked from its guaranteed share: %v", err)
	}
}

func TestRequestNRollsBackOnFailure(t *testing.T) {
	rm := newRM(t)
	app, _ := rm.Submit("dr", "analytics")
	// 5 containers × 2 cores = 10 > its 8-core entitlement → failure, and
	// nothing should stay allocated.
	if _, err := app.RequestN(5, 2, 1000, false); err == nil {
		t.Fatal("over-entitlement should fail")
	}
	u := rm.Usage()
	if u.Outstanding != 0 || u.QueueCores["analytics"] != 0 {
		t.Fatalf("rollback incomplete: %+v", u)
	}
}

func TestWaitingRequestUnblocksOnRelease(t *testing.T) {
	rm := newRM(t)
	db, _ := rm.Submit("vertica", "db")
	held, err := db.RequestN(4, 2, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	dr, _ := rm.Submit("dr", "analytics")
	if _, err := dr.RequestN(4, 2, 1000, false); err != nil {
		t.Fatal(err)
	}
	// The db queue is fully allocated; a second db request should block
	// then succeed when the first application releases a container.
	db2, _ := rm.Submit("vertica-etl", "db")
	done := make(chan *Container)
	go func() {
		c, err := db2.Request(2, 1000, -1, true)
		if err != nil {
			t.Error(err)
		}
		done <- c
	}()
	select {
	case <-done:
		t.Fatal("request should have blocked")
	case <-time.After(20 * time.Millisecond):
	}
	_ = db.Release(held[0])
	select {
	case c := <-done:
		if c == nil {
			t.Fatal("nil container")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting request never unblocked")
	}
}

func TestElasticityWhenOtherQueueIdle(t *testing.T) {
	rm, err := New(Config{
		Nodes:  []NodeResources{{Cores: 8, MemoryMB: 8000}},
		Queues: map[string]float64{"a": 0.25, "b": 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shares only cover half the cluster; the rest is unreserved, so queue a
	// may elastically exceed its 2-core share up to 6 cores.
	app, _ := rm.Submit("x", "a")
	if _, err := app.Request(6, 1000, -1, false); err != nil {
		t.Fatalf("elastic allocation failed: %v", err)
	}
	// But not beyond what protects b's 2 cores.
	if _, err := app.Request(2, 1000, -1, false); err == nil {
		t.Fatal("should not invade queue b's guarantee")
	}
}

func TestConcurrentRequests(t *testing.T) {
	rm, _ := New(Config{
		Nodes:  []NodeResources{{Cores: 16, MemoryMB: 64000}, {Cores: 16, MemoryMB: 64000}},
		Queues: map[string]float64{"q": 1},
	})
	app, _ := rm.Submit("x", "q")
	var wg sync.WaitGroup
	var mu sync.Mutex
	var grants []*Container
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := app.Request(1, 1000, -1, false)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			grants = append(grants, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(grants) != 32 {
		t.Fatalf("granted %d", len(grants))
	}
	u := rm.Usage()
	if u.FreeCores[0] != 0 || u.FreeCores[1] != 0 {
		t.Fatalf("usage = %+v", u)
	}
	for _, c := range grants {
		if err := app.Release(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRequestTimeoutExpires(t *testing.T) {
	rm := newRM(t)
	db, _ := rm.Submit("vertica", "db")
	if _, err := db.RequestN(4, 2, 1000, false); err != nil {
		t.Fatal(err)
	}
	// The queue is saturated and nothing releases: the bounded request must
	// give up instead of blocking forever.
	db2, _ := rm.Submit("etl", "db")
	t0 := telemetry.Default().Counter("yarn_request_timeouts_total").Value()
	start := time.Now()
	_, err := db2.RequestTimeout(2, 1000, -1, 30*time.Millisecond)
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout not honored: waited %v", d)
	}
	if telemetry.Default().Counter("yarn_request_timeouts_total").Value() != t0+1 {
		t.Fatal("yarn_request_timeouts_total not incremented")
	}
	if _, err := db2.RequestTimeout(2, 1000, -1, 0); err == nil {
		t.Fatal("non-positive timeout should fail")
	}
}

func TestRequestTimeoutGrantsWhenFreed(t *testing.T) {
	rm := newRM(t)
	db, _ := rm.Submit("vertica", "db")
	held, err := db.RequestN(4, 2, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	db2, _ := rm.Submit("etl", "db")
	done := make(chan error, 1)
	go func() {
		c, err := db2.RequestTimeout(2, 1000, -1, 5*time.Second)
		if err == nil && c == nil {
			err = errors.New("nil container without error")
		}
		done <- err
	}()
	// Give the request time to block, then release.
	time.Sleep(10 * time.Millisecond)
	if err := db.Release(held[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bounded request should have been granted: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bounded request never returned after release")
	}
}

func TestRequestNRollsBackOnNodeExhaustion(t *testing.T) {
	// Failure caused by per-node memory, not queue shares: three containers
	// fit core-wise but the second node cannot host the memory demand, so the
	// partial grant must be fully rolled back.
	rm, err := New(Config{
		Nodes:  []NodeResources{{Cores: 8, MemoryMB: 4000}, {Cores: 8, MemoryMB: 500}},
		Queues: map[string]float64{"q": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, _ := rm.Submit("x", "q")
	if _, err := app.RequestN(3, 2, 2000, false); err == nil {
		t.Fatal("memory exhaustion should fail the batch")
	}
	u := rm.Usage()
	if u.Outstanding != 0 || u.QueueCores["q"] != 0 || u.FreeMemory[0] != 4000 {
		t.Fatalf("rollback incomplete: %+v", u)
	}
}

func TestLocalityFallbackCountsMiss(t *testing.T) {
	rm, _ := New(Config{
		Nodes:  []NodeResources{{Cores: 4, MemoryMB: 4000}, {Cores: 4, MemoryMB: 4000}},
		Queues: map[string]float64{"q": 1},
	})
	app, _ := rm.Submit("x", "q")
	hits0 := telemetry.Default().Counter("yarn_locality_total", telemetry.L("preference", "hit")).Value()
	miss0 := telemetry.Default().Counter("yarn_locality_total", telemetry.L("preference", "miss")).Value()
	// Fill node 1 entirely, then prefer it: the grant lands on node 0 and is
	// recorded as a locality miss.
	if _, err := app.Request(4, 4000, 1, false); err != nil {
		t.Fatal(err)
	}
	c, err := app.Request(2, 1000, 1, false)
	if err != nil || c.Node != 0 {
		t.Fatalf("fallback grant = %+v, %v", c, err)
	}
	hits := telemetry.Default().Counter("yarn_locality_total", telemetry.L("preference", "hit")).Value() - hits0
	miss := telemetry.Default().Counter("yarn_locality_total", telemetry.L("preference", "miss")).Value() - miss0
	if hits != 1 || miss != 1 {
		t.Fatalf("locality tally hit=%d miss=%d, want 1/1", hits, miss)
	}
}

func TestInjectedRequestFaultDenies(t *testing.T) {
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: faults.SiteYarnRequest, Kind: faults.Error, EveryN: 1, Limit: 1})
	faults.Install(in)
	defer faults.Install(nil)

	rm := newRM(t)
	app, _ := rm.Submit("x", "db")
	if _, err := app.Request(1, 100, -1, false); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// The rule's Limit is spent; the next request succeeds.
	if _, err := app.Request(1, 100, -1, false); err != nil {
		t.Fatalf("post-fault request failed: %v", err)
	}
}

func TestBadDemands(t *testing.T) {
	rm := newRM(t)
	app, _ := rm.Submit("x", "db")
	if _, err := app.Request(0, 100, -1, false); err == nil {
		t.Fatal("zero cores should fail")
	}
	if _, err := app.Request(1, 0, -1, false); err == nil {
		t.Fatal("zero memory should fail")
	}
	if _, err := app.Request(99, 100, -1, false); err == nil {
		t.Fatal("impossible demand should fail fast with wait=false")
	}
}
