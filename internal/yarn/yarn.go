// Package yarn is the resource-broker substitute of §6: a two-level
// scheduler where applications (the database, Distributed R sessions)
// request containers with CPU/memory demands and node-locality preferences,
// and queues with capacity shares arbitrate between them. Containers model
// cgroup enforcement by bookkeeping: a node never hands out more cores or
// memory than it has, so co-located database and R work is isolated by
// construction. The database acquires long-lived containers at startup;
// Distributed R sessions request containers per session and release them at
// shutdown, exactly the division of lifetimes the paper describes.
package yarn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
)

// Scheduler observability: grants/denials/releases per queue, how often a
// request had to block for resources, locality outcomes, and the number of
// containers currently outstanding.
var (
	mGrants = func(queue string) *telemetry.Counter {
		return telemetry.Default().Counter("yarn_grants_total", telemetry.L("queue", queue))
	}
	mDenials = func(queue string) *telemetry.Counter {
		return telemetry.Default().Counter("yarn_denials_total", telemetry.L("queue", queue))
	}
	mReleases = func(queue string) *telemetry.Counter {
		return telemetry.Default().Counter("yarn_releases_total", telemetry.L("queue", queue))
	}
	mWaits    = telemetry.Default().Counter("yarn_request_waits_total")
	mTimeouts = telemetry.Default().Counter("yarn_request_timeouts_total")
	mLocality = func(hit string) *telemetry.Counter {
		return telemetry.Default().Counter("yarn_locality_total", telemetry.L("preference", hit))
	}
	gOutstanding = telemetry.Default().Gauge("yarn_containers_outstanding")
)

// ErrRequestTimeout marks a blocking request that gave up waiting for
// resources; callers distinguish it from a plain denial with errors.Is.
var ErrRequestTimeout = errors.New("yarn: request timed out")

// NodeResources is a node's capacity.
type NodeResources struct {
	Cores    int
	MemoryMB int
}

// Config configures a ResourceManager.
type Config struct {
	Nodes []NodeResources
	// Queues maps queue name to capacity share in (0, 1]; shares should sum
	// to <= 1. A queue may exceed its share only when the cluster has idle
	// resources (capacity-scheduler elasticity).
	Queues map[string]float64
}

// Container is one granted allocation.
type Container struct {
	ID       int
	Node     int
	Cores    int
	MemoryMB int
	app      *App
}

// App is a registered application (framework application master).
type App struct {
	rm    *ResourceManager
	Name  string
	Queue string
}

// ResourceManager grants and tracks containers.
type ResourceManager struct {
	cfg     Config
	mu      sync.Mutex
	cond    *sync.Cond
	freeC   []int          // free cores per node
	freeM   []int          // free MB per node
	usedByQ map[string]int // cores in use per queue
	totalC  int
	nextID  int
	granted map[int]*Container
}

// New creates a resource manager.
func New(cfg Config) (*ResourceManager, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("yarn: need at least one node")
	}
	if len(cfg.Queues) == 0 {
		cfg.Queues = map[string]float64{"default": 1}
	}
	var sum float64
	for q, share := range cfg.Queues {
		if share <= 0 || share > 1 {
			return nil, fmt.Errorf("yarn: queue %q share %v out of (0,1]", q, share)
		}
		sum += share
	}
	if sum > 1.0001 {
		return nil, fmt.Errorf("yarn: queue shares sum to %v > 1", sum)
	}
	rm := &ResourceManager{
		cfg:     cfg,
		usedByQ: map[string]int{},
		granted: map[int]*Container{},
	}
	rm.cond = sync.NewCond(&rm.mu)
	for _, n := range cfg.Nodes {
		if n.Cores <= 0 || n.MemoryMB <= 0 {
			return nil, fmt.Errorf("yarn: node resources must be positive")
		}
		rm.freeC = append(rm.freeC, n.Cores)
		rm.freeM = append(rm.freeM, n.MemoryMB)
		rm.totalC += n.Cores
	}
	return rm, nil
}

// Submit registers an application under a queue.
func (rm *ResourceManager) Submit(name, queue string) (*App, error) {
	if _, ok := rm.cfg.Queues[queue]; !ok {
		return nil, fmt.Errorf("yarn: unknown queue %q", queue)
	}
	return &App{rm: rm, Name: name, Queue: queue}, nil
}

// queueHeadroom reports how many more cores the queue may take: its capacity
// share, elastically extended to whatever is idle cluster-wide.
func (rm *ResourceManager) queueHeadroom(queue string) int {
	share := rm.cfg.Queues[queue]
	guaranteed := int(share*float64(rm.totalC)+0.5) - rm.usedByQ[queue]
	idle := 0
	for _, c := range rm.freeC {
		idle += c
	}
	if guaranteed < 0 {
		guaranteed = 0
	}
	// Elasticity: a queue can use idle resources beyond its share, but other
	// queues' guaranteed shares are protected: headroom never exceeds idle.
	head := idle
	reservedForOthers := 0
	for q, s := range rm.cfg.Queues {
		if q == queue {
			continue
		}
		r := int(s*float64(rm.totalC)+0.5) - rm.usedByQ[q]
		if r > 0 {
			reservedForOthers += r
		}
	}
	head = idle - reservedForOthers
	if head < guaranteed {
		head = guaranteed
	}
	if head > idle {
		head = idle
	}
	return head
}

// Request asks for one container. preferNode >= 0 expresses data locality
// with Vertica segments; the scheduler falls back to any node with room.
// With wait=true the call blocks until resources free up; with wait=false it
// returns an error when the request cannot be satisfied immediately.
func (a *App) Request(cores, memMB, preferNode int, wait bool) (*Container, error) {
	return a.request(cores, memMB, preferNode, wait, 0)
}

// RequestTimeout blocks like Request with wait=true, but gives up after
// timeout and returns an error wrapping ErrRequestTimeout. This bounds how
// long a Distributed R session stall can hold up its caller when the cluster
// is saturated — before it, a blocking request could wait forever on a peer
// that never released.
func (a *App) RequestTimeout(cores, memMB, preferNode int, timeout time.Duration) (*Container, error) {
	if timeout <= 0 {
		return nil, fmt.Errorf("yarn: timeout must be positive")
	}
	return a.request(cores, memMB, preferNode, true, timeout)
}

func (a *App) request(cores, memMB, preferNode int, wait bool, timeout time.Duration) (*Container, error) {
	if cores <= 0 || memMB <= 0 {
		return nil, fmt.Errorf("yarn: container demands must be positive")
	}
	// Injected resource-manager hiccups surface as denials.
	if err := faults.Check(faults.SiteYarnRequest); err != nil {
		mDenials(a.Queue).Inc()
		return nil, err
	}
	rm := a.rm
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// cond.Wait has no deadline form; a timer broadcast wakes every
		// waiter, and the expired one notices its deadline below. Waking the
		// others is harmless — they re-check their predicates and sleep again.
		timer := time.AfterFunc(timeout, rm.cond.Broadcast)
		defer timer.Stop()
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for {
		if node := rm.findNode(cores, memMB, preferNode); node >= 0 && rm.queueHeadroom(a.Queue) >= cores {
			rm.freeC[node] -= cores
			rm.freeM[node] -= memMB
			rm.usedByQ[a.Queue] += cores
			rm.nextID++
			c := &Container{ID: rm.nextID, Node: node, Cores: cores, MemoryMB: memMB, app: a}
			rm.granted[c.ID] = c
			mGrants(a.Queue).Inc()
			gOutstanding.Set(int64(len(rm.granted)))
			if preferNode >= 0 {
				if node == preferNode {
					mLocality("hit").Inc()
				} else {
					mLocality("miss").Inc()
				}
			}
			return c, nil
		}
		if !wait {
			mDenials(a.Queue).Inc()
			return nil, fmt.Errorf("yarn: insufficient resources for %d cores / %d MB in queue %q", cores, memMB, a.Queue)
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			mTimeouts.Inc()
			mDenials(a.Queue).Inc()
			return nil, fmt.Errorf("yarn: %d cores / %d MB in queue %q after %v: %w",
				cores, memMB, a.Queue, timeout, ErrRequestTimeout)
		}
		mWaits.Inc()
		rm.cond.Wait()
	}
}

// findNode picks a node with room, honoring the locality preference first.
func (rm *ResourceManager) findNode(cores, memMB, prefer int) int {
	if prefer >= 0 && prefer < len(rm.freeC) && rm.freeC[prefer] >= cores && rm.freeM[prefer] >= memMB {
		return prefer
	}
	best, bestFree := -1, -1
	for n := range rm.freeC {
		if rm.freeC[n] >= cores && rm.freeM[n] >= memMB && rm.freeC[n] > bestFree {
			best, bestFree = n, rm.freeC[n]
		}
	}
	return best
}

// Release returns a container's resources.
func (a *App) Release(c *Container) error {
	rm := a.rm
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, ok := rm.granted[c.ID]; !ok {
		return fmt.Errorf("yarn: container %d not granted (double release?)", c.ID)
	}
	delete(rm.granted, c.ID)
	rm.freeC[c.Node] += c.Cores
	rm.freeM[c.Node] += c.MemoryMB
	rm.usedByQ[c.app.Queue] -= c.Cores
	mReleases(c.app.Queue).Inc()
	gOutstanding.Set(int64(len(rm.granted)))
	rm.cond.Broadcast()
	return nil
}

// RequestN requests count identical containers spread across nodes with a
// locality rotation (container i prefers node i mod nodes) — how a
// Distributed R session places one worker per node near Vertica segments.
func (a *App) RequestN(count, cores, memMB int, wait bool) ([]*Container, error) {
	out := make([]*Container, 0, count)
	for i := 0; i < count; i++ {
		c, err := a.Request(cores, memMB, i%len(a.rm.freeC), wait)
		if err != nil {
			for _, g := range out {
				_ = a.Release(g)
			}
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Usage is a point-in-time snapshot.
type Usage struct {
	FreeCores   []int
	FreeMemory  []int
	QueueCores  map[string]int
	Outstanding int
}

// Usage returns the current allocation state.
func (rm *ResourceManager) Usage() Usage {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	u := Usage{
		FreeCores:   append([]int(nil), rm.freeC...),
		FreeMemory:  append([]int(nil), rm.freeM...),
		QueueCores:  map[string]int{},
		Outstanding: len(rm.granted),
	}
	for q, c := range rm.usedByQ {
		u.QueueCores[q] = c
	}
	return u
}

// Queues lists configured queue names, sorted.
func (rm *ResourceManager) Queues() []string {
	out := make([]string, 0, len(rm.cfg.Queues))
	for q := range rm.cfg.Queues {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}
