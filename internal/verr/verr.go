// Package verr is the library's error vocabulary: a small set of sentinel
// errors that the layered packages (catalog, sqlexec, models, server) wrap
// with %w at their boundaries so callers can dispatch with errors.Is instead
// of matching message strings. The sentinels also have stable wire codes so
// the serving protocol (internal/server) can carry them across a TCP
// connection and reconstruct an errors.Is-matchable error on the client.
package verr

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors. Each is wrapped (never returned bare) by the layer that
// detects the condition, so messages stay descriptive while identity stays
// matchable.
var (
	// ErrTableNotFound: a statement referenced a table absent from the
	// catalog.
	ErrTableNotFound = errors.New("table not found")
	// ErrUnknownColumn: an expression referenced a column absent from the
	// table's schema (or the statement's output).
	ErrUnknownColumn = errors.New("unknown column")
	// ErrModelNotFound: a prediction referenced a model that is not deployed
	// (no DFS blob / no R_Models row).
	ErrModelNotFound = errors.New("model not found")
	// ErrOverloaded: admission control rejected the query — the concurrency
	// limit and the bounded wait queue were both saturated, or the queue wait
	// exceeded the configured deadline. The request was never executed;
	// retrying after backoff is safe.
	ErrOverloaded = errors.New("server overloaded")
	// ErrCanceled: the query's context was canceled (or its deadline
	// expired) and execution stopped at the next scan-block or
	// aggregation-chunk boundary.
	ErrCanceled = errors.New("query canceled")
	// ErrClosed: the session or server is shut down; new work is rejected
	// fail-fast.
	ErrClosed = errors.New("session closed")
	// ErrNodeDown: a cluster peer was unreachable (or every replica of a
	// shard was), so a routed operation could not complete. The router
	// retries idempotent reads on surviving replicas before surfacing this.
	ErrNodeDown = errors.New("node down")
)

// canceledError attaches the concrete context cause (context.Canceled or
// context.DeadlineExceeded) to ErrCanceled so both errors.Is(err,
// verr.ErrCanceled) and errors.Is(err, context.Canceled) hold.
type canceledError struct{ cause error }

func (e *canceledError) Error() string   { return fmt.Sprintf("query canceled: %v", e.cause) }
func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// Canceled wraps a context error (ctx.Err()) into the vocabulary. A nil
// cause returns nil, so `return verr.Canceled(ctx.Err())` is safe on the
// not-canceled path.
func Canceled(cause error) error {
	if cause == nil {
		return nil
	}
	return &canceledError{cause: cause}
}

// Wire codes for the serving protocol. Code maps an error to its stable
// protocol token; FromCode reconstructs a matchable error from a token plus
// the human-readable remote message.
const (
	CodeOK            = "ok"
	CodeTableNotFound = "table_not_found"
	CodeUnknownColumn = "unknown_column"
	CodeModelNotFound = "model_not_found"
	CodeOverloaded    = "overloaded"
	CodeCanceled      = "canceled"
	CodeClosed        = "closed"
	CodeNodeDown      = "node_down"
	CodeInternal      = "internal"
)

var codeOf = []struct {
	err  error
	code string
}{
	// Order matters only for errors wrapping several sentinels; none do
	// today except canceledError, which is matched first anyway.
	{ErrOverloaded, CodeOverloaded},
	{ErrCanceled, CodeCanceled},
	{ErrClosed, CodeClosed},
	{ErrNodeDown, CodeNodeDown},
	{ErrTableNotFound, CodeTableNotFound},
	{ErrUnknownColumn, CodeUnknownColumn},
	{ErrModelNotFound, CodeModelNotFound},
}

// Code returns the wire code for err (CodeInternal when err matches no
// sentinel, CodeOK for nil).
func Code(err error) string {
	if err == nil {
		return CodeOK
	}
	for _, m := range codeOf {
		if errors.Is(err, m.err) {
			return m.code
		}
	}
	return CodeInternal
}

// FromCode rebuilds a client-side error from a wire code and remote message.
// The result wraps the matching sentinel so errors.Is works across the
// protocol boundary; unknown codes yield a plain error carrying the message.
func FromCode(code, msg string) error {
	msg = strings.TrimSpace(msg)
	for _, m := range codeOf {
		if m.code == code {
			return fmt.Errorf("%w: %s", m.err, msg)
		}
	}
	return fmt.Errorf("remote error (%s): %s", code, msg)
}
