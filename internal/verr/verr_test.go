package verr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledWrapsBoth(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx.Err())
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("not ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("not context.Canceled")
	}
	if Canceled(nil) != nil {
		t.Fatal("Canceled(nil) must be nil")
	}
}

func TestCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{fmt.Errorf("catalog: table %q does not exist: %w", "t", ErrTableNotFound), CodeTableNotFound},
		{fmt.Errorf("sqlexec: unknown column %q: %w", "c", ErrUnknownColumn), CodeUnknownColumn},
		{fmt.Errorf("models: %w: m", ErrModelNotFound), CodeModelNotFound},
		{fmt.Errorf("server: %w", ErrOverloaded), CodeOverloaded},
		{Canceled(context.Canceled), CodeCanceled},
		{fmt.Errorf("server: %w", ErrClosed), CodeClosed},
		{errors.New("boom"), CodeInternal},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.code {
			t.Fatalf("Code(%v) = %q, want %q", c.err, got, c.code)
		}
		if c.code == CodeInternal {
			continue
		}
		back := FromCode(c.code, c.err.Error())
		if Code(back) != c.code {
			t.Fatalf("FromCode(%q) did not round-trip: %v", c.code, back)
		}
	}
	if Code(nil) != CodeOK {
		t.Fatal("Code(nil) != ok")
	}
}
