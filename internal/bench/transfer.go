package bench

import (
	"fmt"
	"time"

	"verticadr/internal/simnet"
	"verticadr/internal/telemetry"
)

// SimODBCTransfer simulates loading `gb` logical gigabytes from a dbNodes
// database into `instances` R instances over `connections` parallel ODBC
// sessions (Figs. 1, 12, 13 baseline). Every connection is a pipelined
// producer/consumer pair: the server side materializes row text on the
// database nodes (each node a single-slot resource — the per-row framing
// path does not parallelize inside one node), the client side parses text
// on its R instance. Ordered row ranges span all nodes, so each
// connection's chunks rotate across the database nodes — the locality
// destruction of §3.
func SimODBCTransfer(c Calib, gb float64, dbNodes, connections, instances int) float64 {
	if connections < 1 || instances < 1 || dbNodes < 1 {
		panic("bench: bad ODBC transfer shape")
	}
	s := simnet.New()
	server := make([]*simnet.Resource, dbNodes)
	for i := range server {
		server[i] = s.NewResource(fmt.Sprintf("odbc-node%d", i), 1, c.ODBCServerNodeMBps*1e6)
	}
	clients := make([]*simnet.Resource, instances)
	for i := range clients {
		// One R process parses one stream at a time.
		clients[i] = s.NewResource(fmt.Sprintf("rinst%d", i), 1, c.ODBCClientParseMBps*1e6)
	}
	chunk := 64e6 * c.ODBCTextExpand // 64 MB of rows as text
	perConn := gb * 1e9 * c.ODBCTextExpand / float64(connections)
	for conn := 0; conn < connections; conn++ {
		conn := conn
		q := s.NewQueue()
		nchunks := int(perConn/chunk + 0.999999)
		// Server-side streamer: reads the connection's ordered range, which
		// crosses node boundaries chunk by chunk.
		s.Go(fmt.Sprintf("server-conn%d", conn), func(p *simnet.Proc) {
			// Each connection's ordered-range query costs setup work (range
			// resolution against the segmentation) on every node it spans —
			// 288 simultaneous sessions pay this 288 times per node, the
			// "overwhelm the database" effect.
			for n := 0; n < dbNodes; n++ {
				server[n].Use(p, c.ODBCConnSetupSec*c.ODBCServerNodeMBps*1e6)
			}
			for k := 0; k < nchunks; k++ {
				node := (conn + k) % dbNodes
				server[node].Use(p, chunk)
				q.Put(1)
			}
			q.Close()
		})
		// Client-side parser on the R instance owning this connection.
		s.Go(fmt.Sprintf("client-conn%d", conn), func(p *simnet.Proc) {
			inst := clients[conn%instances]
			for q.Get(p) {
				inst.Use(p, chunk)
			}
		})
	}
	return s.Run()
}

// VFTBreakdown is the result of a simulated fast transfer.
type VFTBreakdown struct {
	Total  float64 // wall-clock seconds
	DBPart float64 // database side: read + decompress + serialize + send
	RPart  float64 // non-overlapped R side: buffer + convert to R objects
}

// SimVFTTransfer simulates Vertica Fast Transfer of `gb` logical gigabytes
// from dbNodes database nodes to the same number of workers with
// rInstancesPerNode R instances each (locality policy, Figs. 12–14). Per
// node the pipeline is: disk (compressed stream) → planner UDF instances
// serializing chunks → 10 Gb NIC → per-instance staging + conversion on the
// worker. The DB part is the completion time of the database side alone;
// the R part is whatever conversion tail extends beyond it (the stacked
// breakdown of Fig. 14).
func SimVFTTransfer(c Calib, gb float64, dbNodes, rInstancesPerNode int) VFTBreakdown {
	bd, _ := simVFT(c, gb, dbNodes, rInstancesPerNode, false)
	return bd
}

// SimVFTTransferSpans is SimVFTTransfer with span recording: the returned
// spans come from a SpanLog clocked by the simulation, so their durations
// are virtual seconds of simulated transfer — not the microseconds the
// simulation takes on the wall clock. The root vft.transfer span covers the
// whole load; its db-side child ends when the last export instance finishes
// and its conversion child runs until the conversion tail drains.
func SimVFTTransferSpans(c Calib, gb float64, dbNodes, rInstancesPerNode int) (VFTBreakdown, []telemetry.SpanRecord) {
	return simVFT(c, gb, dbNodes, rInstancesPerNode, true)
}

func simVFT(c Calib, gb float64, dbNodes, rInstancesPerNode int, record bool) (VFTBreakdown, []telemetry.SpanRecord) {
	if dbNodes < 1 || rInstancesPerNode < 1 {
		panic("bench: bad VFT transfer shape")
	}
	s := simnet.New()
	perNodeBytes := gb * 1e9 / float64(dbNodes)
	chunk := c.VFTChunkMB * 1e6
	nchunks := int(perNodeBytes/chunk + 0.999999)

	// Span log on the simulation clock: Now() is virtual seconds as nanos.
	var root, dbSpan, convSpan *telemetry.Span
	var spans *telemetry.SpanLog
	if record {
		spans = telemetry.NewSpanLog(telemetry.ClockFunc(func() time.Duration {
			return time.Duration(s.Now() * 1e9)
		}))
		root = spans.StartSpan("vft.transfer",
			telemetry.L("policy", "locality"),
			telemetry.L("gb", fmt.Sprintf("%g", gb)))
		dbSpan = root.StartChild("vft.db-side")
		convSpan = root.StartChild("vft.conversion")
	}

	dbDone := s.NewGate(dbNodes * c.VFTUDFInstances)
	var dbFinish float64
	s.Go("db-watch", func(p *simnet.Proc) {
		dbDone.Wait(p)
		dbFinish = p.Now()
		if dbSpan != nil {
			dbSpan.End()
		}
	})
	for n := 0; n < dbNodes; n++ {
		disk := s.NewResource(fmt.Sprintf("disk%d", n), 1, c.VFTDiskMBps*1e6)
		ser := s.NewResource(fmt.Sprintf("dbcpu%d", n), c.VFTUDFInstances, c.VFTSerializeMBps*1e6)
		nic := s.NewResource(fmt.Sprintf("nic%d", n), 1, c.NetGbps/8*1e9)
		conv := s.NewResource(fmt.Sprintf("rcpu%d", n), rInstancesPerNode, c.VFTConvertMBps*1e6)
		q := s.NewQueue()
		closer := s.NewGate(c.VFTUDFInstances)
		s.Go(fmt.Sprintf("q-close%d", n), func(p *simnet.Proc) {
			closer.Wait(p)
			q.Close()
		})
		// Planner-parallel UDF instances share the chunk stream.
		per := nchunks / c.VFTUDFInstances
		extra := nchunks % c.VFTUDFInstances
		for u := 0; u < c.VFTUDFInstances; u++ {
			mine := per
			if u < extra {
				mine++
			}
			s.Go(fmt.Sprintf("export%d-%d", n, u), func(p *simnet.Proc) {
				for k := 0; k < mine; k++ {
					disk.Use(p, chunk*c.VFTCompressRatio)
					ser.Use(p, chunk)
					nic.Use(p, chunk)
					q.Put(1)
				}
				dbDone.Done()
				closer.Done()
			})
		}
		// Receiving R instances stage and convert.
		for r := 0; r < rInstancesPerNode; r++ {
			s.Go(fmt.Sprintf("convert%d-%d", n, r), func(p *simnet.Proc) {
				for q.Get(p) {
					conv.Use(p, chunk)
				}
			})
		}
	}
	total := s.Run()
	rPart := total - dbFinish
	if rPart < 0 {
		rPart = 0
	}
	var recs []telemetry.SpanRecord
	if record {
		convSpan.End()
		root.End()
		recs = spans.Export()
	}
	return VFTBreakdown{Total: total, DBPart: dbFinish, RPart: rPart}, recs
}

// SimSingleRTransfer simulates the classic one-R-process extraction of
// Fig. 1: one connection, one parsing instance.
func SimSingleRTransfer(c Calib, gb float64, dbNodes int) float64 {
	return SimODBCTransfer(c, gb, dbNodes, 1, 1)
}
