package bench

import (
	"fmt"
	"time"

	"verticadr/internal/algos"
	"verticadr/internal/core"
	"verticadr/internal/darray"
	"verticadr/internal/faults"
	"verticadr/internal/hdfs"
	"verticadr/internal/rbaseline"
	"verticadr/internal/spark"
	"verticadr/internal/telemetry"
	"verticadr/internal/vft"
	"verticadr/internal/workload"
)

// Env is a reduced-scale but fully real environment: actual column store,
// SQL engine, transfer paths, Distributed R runtime and model manager. The
// root bench_test.go drives these and the table/figure verifiers below.
type Env struct {
	S *core.Session
}

// NewEnv starts a real session.
func NewEnv(dbNodes, drWorkers, instances int) (*Env, error) {
	s, err := core.Start(core.Config{
		DBNodes:            dbNodes,
		DRWorkers:          drWorkers,
		InstancesPerWorker: instances,
		BlockRows:          2048,
	})
	if err != nil {
		return nil, err
	}
	return &Env{S: s}, nil
}

// Close tears the environment down.
func (e *Env) Close() { e.S.Close() }

// LoadFeatureTable materializes a synthetic float table named `name` with
// feats feature columns x0..x{n-1} and a response column y.
func (e *Env) LoadFeatureTable(name string, rows, feats int, seed int64) error {
	ddl := "CREATE TABLE " + name + " ("
	featCols := make([]string, feats)
	for i := range featCols {
		featCols[i] = fmt.Sprintf("x%d", i)
		ddl += featCols[i] + " FLOAT, "
	}
	ddl += "y FLOAT)"
	if err := e.S.Exec(ddl); err != nil {
		return err
	}
	spec := workload.TableSpec{Name: name, FeatCols: featCols, RespCol: "y", Rows: rows, Seed: seed}
	cols, _, _ := spec.Gen()
	return e.S.DB.LoadColumns(name, cols)
}

// RealTransferResult compares the two loaders on the same live table.
type RealTransferResult struct {
	ODBC time.Duration
	VFT  time.Duration
	Rows int
}

// RealTransferComparison measures actual ODBC vs actual VFT end to end on
// the real engines (the measured counterpart of Figs. 12–13).
func (e *Env) RealTransferComparison(table string, connections int) (*RealTransferResult, error) {
	start := time.Now()
	frame, err := e.S.LoadODBC(table, nil, connections)
	if err != nil {
		return nil, err
	}
	odbcT := time.Since(start)
	rows := frame.Rows()

	start = time.Now()
	vframe, _, err := e.S.DB2DFrame(table, nil, "")
	if err != nil {
		return nil, err
	}
	vftT := time.Since(start)
	if vframe.Rows() != rows {
		return nil, fmt.Errorf("bench: loaders disagree on rows: %d vs %d", vframe.Rows(), rows)
	}
	return &RealTransferResult{ODBC: odbcT, VFT: vftT, Rows: rows}, nil
}

// ChaosTransferResult reports a transfer run under fault injection against
// a clean reference run of the same table.
type ChaosTransferResult struct {
	Rows        int
	CleanTime   time.Duration
	ChaosTime   time.Duration
	Retransmits int64 // vft_retransmits_total delta during the chaotic run
	DupChunks   int64 // vft_dup_chunks_total delta
	Injected    int64 // total faults fired across all sites
}

// RunChaosTransfer loads the table once cleanly, then again under the
// standard chaos profile with the given seed, and verifies the chaotic load
// recovered every row. Chunks are kept small so the transfer visits the
// injection site often enough for the profile's every-20th-send drop to
// actually fire. The caller's process-wide injector is saved and restored
// around the run.
func (e *Env) RunChaosTransfer(table string, seed int64) (*ChaosTransferResult, error) {
	rows, err := e.S.DB.TableRows(table)
	if err != nil {
		return nil, err
	}
	psize := rows / 128
	if psize < 1 {
		psize = 1
	}
	policy := vft.PolicyUniform
	if e.S.DB.NumNodes() == e.S.DR.NumWorkers() {
		policy = vft.PolicyLocality
	}
	load := func() (*darray.DFrame, error) {
		f, _, err := vft.Load(e.S.DB, e.S.DR, e.S.Hub, table, nil, policy, psize)
		return f, err
	}

	prev := faults.Active()
	faults.Install(nil)
	start := time.Now()
	ref, err := load()
	if err != nil {
		faults.Install(prev)
		return nil, fmt.Errorf("bench: clean reference load: %w", err)
	}
	cleanT := time.Since(start)

	reg := telemetry.Default()
	retrans0 := reg.Counter("vft_retransmits_total").Value()
	dups0 := reg.Counter("vft_dup_chunks_total").Value()
	in := faults.Chaos(seed)
	faults.Install(in)
	start = time.Now()
	frame, err := load()
	faults.Install(prev)
	if err != nil {
		return nil, fmt.Errorf("bench: chaotic load did not recover: %w", err)
	}
	chaosT := time.Since(start)
	if frame.Rows() != ref.Rows() {
		return nil, fmt.Errorf("bench: chaotic load lost rows: %d vs %d", frame.Rows(), ref.Rows())
	}
	var injected int64
	for _, s := range in.Stats() {
		injected += int64(s.Fires)
	}
	return &ChaosTransferResult{
		Rows:        frame.Rows(),
		CleanTime:   cleanT,
		ChaosTime:   chaosT,
		Retransmits: reg.Counter("vft_retransmits_total").Value() - retrans0,
		DupChunks:   reg.Counter("vft_dup_chunks_total").Value() - dups0,
		Injected:    injected,
	}, nil
}

// Table1Check exercises every Table 1 language construct against the live
// runtime and reports an error naming any construct that misbehaves.
func (e *Env) Table1Check() error {
	c := e.S.DR
	// darray(npartitions=)
	a, err := darray.New(c, 3)
	if err != nil {
		return fmt.Errorf("darray(npartitions=): %w", err)
	}
	for i, rows := range []int{1, 3, 2} { // Fig. 8's uneven sizes
		if err := a.Fill(i, darray.NewMat(rows, 2)); err != nil {
			return fmt.Errorf("darray fill: %w", err)
		}
	}
	// partitionsize(A, i)
	if r, cc, err := a.PartitionSize(1); err != nil || r != 3 || cc != 2 {
		return fmt.Errorf("partitionsize(A,1) = (%d,%d,%v), want (3,2)", r, cc, err)
	}
	// partitionsize(A) — all partitions
	sizes := a.PartitionSizes()
	if len(sizes) != 3 || sizes[0][0] != 1 || sizes[2][0] != 2 {
		return fmt.Errorf("partitionsize(A) = %v", sizes)
	}
	// clone(A, ncol=)
	y, err := a.Clone(1)
	if err != nil {
		return fmt.Errorf("clone(A): %w", err)
	}
	if err := darray.CheckCoPartitioned(a, y); err != nil {
		return fmt.Errorf("clone co-partitioning: %w", err)
	}
	// dframe(npartitions=)
	if _, err := darray.NewFrame(c, 2); err != nil {
		return fmt.Errorf("dframe(npartitions=): %w", err)
	}
	// dlist(npartitions=)
	l, err := darray.NewList(c, 2)
	if err != nil {
		return fmt.Errorf("dlist(npartitions=): %w", err)
	}
	if err := l.Fill(0, []any{1, "two"}); err != nil {
		return fmt.Errorf("dlist fill: %w", err)
	}
	if n, err := l.PartitionSize(0); err != nil || n != 2 {
		return fmt.Errorf("dlist partitionsize = %d, %v", n, err)
	}
	return nil
}

// Fig10Check deploys two models and verifies the R_Models catalog matches
// the shape of Figure 10 (model | owner | type | size | description).
func (e *Env) Fig10Check() error {
	km := &algos.KmeansModel{K: 2, Centers: [][]float64{{0}, {1}}}
	lm := &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{1, 2}}
	if err := e.S.DeployModel("model1", "X", "clustering", km); err != nil {
		return err
	}
	if err := e.S.DeployModel("model2", "Y", "forecasting", lm); err != nil {
		return err
	}
	res, err := e.S.Query(`SELECT model, owner, type, size, description FROM R_Models ORDER BY model`)
	if err != nil {
		return err
	}
	rows := res.Rows()
	if len(rows) != 2 {
		return fmt.Errorf("R_Models has %d rows, want 2", len(rows))
	}
	if rows[0][0] != "model1" || rows[0][2] != "kmeans" || rows[0][4] != "clustering" {
		return fmt.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][0] != "model2" || rows[1][2] != "regression" || rows[1][4] != "forecasting" {
		return fmt.Errorf("row 1 = %v", rows[1])
	}
	if rows[0][3].(int64) <= 0 || rows[1][3].(int64) <= 0 {
		return fmt.Errorf("sizes not positive: %v %v", rows[0][3], rows[1][3])
	}
	return nil
}

// RealKmeansCompare runs the same K-means workload through Distributed R
// and through the Spark comparator, returning objective values and timings
// (the measured counterpart of Fig. 20; on one OS core the timings are not
// speedups, but the objectives must agree — the apples-to-apples check).
type RealKmeansCompare struct {
	DRObjective    float64
	SparkObjective float64
	DRTime         time.Duration
	SparkTime      time.Duration
}

// RunRealKmeansCompare executes both engines on the same generated points.
func (e *Env) RunRealKmeansCompare(n, d, k, iters int, seed int64) (*RealKmeansCompare, error) {
	data := workload.GenKmeans(seed, n, d, k, 0.5)
	out := &RealKmeansCompare{}

	start := time.Now()
	m := darray.NewMat(n, d)
	for i, p := range data.Points {
		copy(m.Row(i), p)
	}
	x, err := darray.FromMat(e.S.DR, m, e.S.DR.NumWorkers()*2)
	if err != nil {
		return nil, err
	}
	drm, err := algos.Kmeans(x, algos.KmeansOpts{K: k, MaxIter: iters, Seed: seed, InitPlus: true})
	if err != nil {
		return nil, err
	}
	out.DRTime = time.Since(start)
	out.DRObjective = drm.Objective

	start = time.Now()
	fs, err := hdfs.New(hdfs.Config{DataNodes: e.S.DR.NumWorkers(), BlockSize: 1 << 16, Replication: 3})
	if err != nil {
		return nil, err
	}
	if err := spark.WriteCSV(fs, "pts.csv", data.Points); err != nil {
		return nil, err
	}
	ctx, err := spark.NewContext(fs, e.S.DR.NumWorkers()*2)
	if err != nil {
		return nil, err
	}
	rdd, err := ctx.TextFile("pts.csv")
	if err != nil {
		return nil, err
	}
	sm, err := spark.Kmeans(rdd.Cache(), k, iters, seed)
	if err != nil {
		return nil, err
	}
	out.SparkTime = time.Since(start)
	out.SparkObjective = sm.Objective
	return out, nil
}

// SolverComparison is the Newton–Raphson vs QR ablation (§7.3.1): both must
// reach the same coefficients on the same data.
type SolverComparison struct {
	MaxCoefDiff float64
	NRTime      time.Duration
	QRTime      time.Duration
}

// RunSolverComparison fits the same regression with both solvers.
func (e *Env) RunSolverComparison(n, d int, seed int64) (*SolverComparison, error) {
	data := workload.GenLinear(seed, n, d, 0.05)

	start := time.Now()
	m := darray.NewMat(n, d)
	for i, r := range data.X {
		copy(m.Row(i), r)
	}
	ym := darray.NewMat(n, 1)
	copy(ym.Data, data.Y)
	x, err := darray.FromMat(e.S.DR, m, e.S.DR.NumWorkers())
	if err != nil {
		return nil, err
	}
	y, err := darray.FromMat(e.S.DR, ym, e.S.DR.NumWorkers())
	if err != nil {
		return nil, err
	}
	nr, err := algos.LM(x, y)
	if err != nil {
		return nil, err
	}
	nrT := time.Since(start)

	start = time.Now()
	qr, err := rbaseline.LM(data.X, data.Y)
	if err != nil {
		return nil, err
	}
	qrT := time.Since(start)

	var maxDiff float64
	for i := range nr.Coefficients {
		d := nr.Coefficients[i] - qr.Coefficients[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return &SolverComparison{MaxCoefDiff: maxDiff, NRTime: nrT, QRTime: qrT}, nil
}

// TransferPolicyAblation loads a deliberately skewed table under both
// policies and reports partition balance (§3.2's straggler discussion).
type TransferPolicyAblation struct {
	LocalitySizes []int
	UniformSizes  []int
}

// RunTransferPolicyAblation puts all rows on one node, then loads both ways.
func (e *Env) RunTransferPolicyAblation(rows int) (*TransferPolicyAblation, error) {
	if err := e.S.Exec(`CREATE TABLE skewed (a FLOAT, b FLOAT)`); err != nil {
		return nil, err
	}
	spec := workload.TableSpec{Name: "skewed", FeatCols: []string{"a", "b"}, Rows: rows, Seed: 7}
	cols, _, _ := spec.Gen()
	// Everything on node 0: maximal skew.
	b, err := batchFromCols(e.S, "skewed", cols)
	if err != nil {
		return nil, err
	}
	if err := e.S.DB.LoadAt("skewed", 0, b); err != nil {
		return nil, err
	}
	_, locStats, err := e.S.DB2DFrame("skewed", nil, vft.PolicyLocality)
	if err != nil {
		return nil, err
	}
	_, uniStats, err := e.S.DB2DFrame("skewed", nil, vft.PolicyUniform)
	if err != nil {
		return nil, err
	}
	return &TransferPolicyAblation{LocalitySizes: locStats.PartSizes, UniformSizes: uniStats.PartSizes}, nil
}
