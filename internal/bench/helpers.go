package bench

import (
	"verticadr/internal/colstore"
	"verticadr/internal/core"
)

// batchFromCols builds a batch matching the named table's schema from
// float64 column slices (helper for direct node placement).
func batchFromCols(s *core.Session, table string, cols [][]float64) (*colstore.Batch, error) {
	def, err := s.DB.TableDef(table)
	if err != nil {
		return nil, err
	}
	b := &colstore.Batch{Schema: def.Schema, Cols: make([]*colstore.Vector, len(cols))}
	for i, c := range cols {
		b.Cols[i] = colstore.FloatVector(c)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
