package bench

import (
	"strings"
	"testing"
)

// These tests pin the *shape* claims of every figure: who wins, by roughly
// what factor, and where behaviour changes — the reproduction contract.

func TestFig1Shape(t *testing.T) {
	f := Fig1(DefaultCalib())
	single := f.Get("R (1 conn)")
	distr := f.Get("Distributed R (120 conns)")
	// Single R: ~1 h for 50 GB.
	if y := single.Get(50); y < 3000 || y > 5500 {
		t.Fatalf("single-R 50 GB = %v s, want ~3600", y)
	}
	// Parallel ODBC still ~40 min at 150 GB.
	if y := distr.Get(150); y < 2000 || y > 3300 {
		t.Fatalf("parallel ODBC 150 GB = %v s, want ~2400", y)
	}
	// Parallel beats single everywhere; both grow with size.
	for _, gb := range []float64{50, 100, 150} {
		if distr.Get(gb) >= single.Get(gb) {
			t.Fatalf("parallel ODBC should beat one connection at %v GB", gb)
		}
	}
	if single.Get(150) <= single.Get(50) || distr.Get(150) <= distr.Get(50) {
		t.Fatal("transfer time must grow with data size")
	}
}

func TestFig12Shape(t *testing.T) {
	f := Fig12(DefaultCalib())
	odbcY := f.Get("ODBC").Get(150)
	vftY := f.Get("VFT").Get(150)
	// VFT loads 150 GB in under 6 minutes; ODBC ~40 minutes; ratio ≈6-9x.
	if vftY > 360 {
		t.Fatalf("VFT 150 GB = %v s, want <360", vftY)
	}
	if odbcY < 2000 || odbcY > 3300 {
		t.Fatalf("ODBC 150 GB = %v s, want ~2400", odbcY)
	}
	ratio := odbcY / vftY
	if ratio < 5 || ratio > 11 {
		t.Fatalf("VFT speedup = %vx, want ~6-9x", ratio)
	}
}

func TestFig13Shape(t *testing.T) {
	f := Fig13(DefaultCalib())
	odbcY := f.Get("ODBC").Get(400)
	vftY := f.Get("VFT").Get(400)
	// 400 GB: <10 min VFT vs ~1 h ODBC.
	if vftY > 600 {
		t.Fatalf("VFT 400 GB = %v s, want <600", vftY)
	}
	if odbcY < 2700 || odbcY > 4200 {
		t.Fatalf("ODBC 400 GB = %v s, want ~3300", odbcY)
	}
}

func TestFig14Shape(t *testing.T) {
	f := Fig14(DefaultCalib())
	db := f.Get("DB part")
	r := f.Get("R part")
	// DB part constant across R parallelism.
	base := db.Get(2)
	for _, x := range []float64{4, 8, 16, 24} {
		if diff := db.Get(x) - base; diff > 1 || diff < -1 {
			t.Fatalf("DB part not constant: %v at %v vs %v", db.Get(x), x, base)
		}
	}
	// At 2 instances the R part is roughly half the total.
	total2 := db.Get(2) + r.Get(2)
	frac := r.Get(2) / total2
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("R-part fraction at 2 instances = %v, want ~0.5", frac)
	}
	// R part monotonically non-increasing with more instances.
	prev := r.Get(2)
	for _, x := range []float64{4, 8, 16, 24} {
		if r.Get(x) > prev+1e-9 {
			t.Fatalf("R part increased at %v instances", x)
		}
		prev = r.Get(x)
	}
	if r.Get(24) > 0.2*r.Get(2) {
		t.Fatalf("R part should shrink strongly: %v -> %v", r.Get(2), r.Get(24))
	}
}

func TestFig15Fig16Shape(t *testing.T) {
	c := DefaultCalib()
	for _, tc := range []struct {
		fig        *Figure
		small, big float64
	}{
		{Fig15(c), 20, 318},
		{Fig16(c), 10, 206},
	} {
		s := tc.fig.Get("in-db prediction")
		if y := s.Get(1e7); y > tc.small*1.15 {
			t.Fatalf("%s at 10M rows = %v, want <=%v", tc.fig.ID, y, tc.small)
		}
		big := s.Get(1e9)
		if big < tc.big*0.85 || big > tc.big*1.15 {
			t.Fatalf("%s at 1B rows = %v, want ~%v", tc.fig.ID, big, tc.big)
		}
		// Near-linear: 100x rows ⇒ between 10x and 110x time (sub-linear
		// early because of fixed overhead).
		ratio := big / s.Get(1e7)
		if ratio < 10 || ratio > 110 {
			t.Fatalf("%s scaling ratio = %v", tc.fig.ID, ratio)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	f := Fig17(DefaultCalib())
	r := f.Get("R")
	dr := f.Get("Distributed R")
	// R flat at ~35 min regardless of cores.
	for _, x := range []float64{1, 8, 24} {
		if y := r.Get(x); y < 1900 || y > 2300 {
			t.Fatalf("R at %v cores = %v, want ~2100", x, y)
		}
	}
	// DR under 4 minutes by 12 cores; ~9x over R.
	if y := dr.Get(12); y > 240 {
		t.Fatalf("DR at 12 cores = %v, want <240", y)
	}
	sp := r.Get(12) / dr.Get(12)
	if sp < 7.5 || sp > 11 {
		t.Fatalf("speedup at 12 cores = %v, want ~9", sp)
	}
	// Plateau past 12 physical cores.
	if dr.Get(24) < dr.Get(12)*0.95 {
		t.Fatalf("DR should plateau past 12 cores: %v vs %v", dr.Get(24), dr.Get(12))
	}
}

func TestFig18Shape(t *testing.T) {
	f := Fig18(DefaultCalib())
	r := f.Get("R")
	dr := f.Get("Distributed R")
	// R >25 min; DR <10 min even on one core (Newton–Raphson vs QR).
	if r.Get(1) < 1500 {
		t.Fatalf("R = %v, want >1500", r.Get(1))
	}
	if dr.Get(1) > 600 {
		t.Fatalf("DR 1 core = %v, want <600", dr.Get(1))
	}
	// ~9x from 1 to 24 cores; under a minute at 24.
	sp := dr.Get(1) / dr.Get(24)
	if sp < 7.5 || sp > 11 {
		t.Fatalf("DR core scaling = %vx, want ~9", sp)
	}
	if dr.Get(24) > 60 {
		t.Fatalf("DR 24 cores = %v, want <60", dr.Get(24))
	}
}

func TestFig19Shape(t *testing.T) {
	f := Fig19(DefaultCalib())
	it := f.Get("per-iteration")
	cv := f.Get("convergence")
	for _, nodes := range []float64{1, 4, 8} {
		if it.Get(nodes) > 120 {
			t.Fatalf("per-iteration at %v nodes = %v, want <120 (2 min)", nodes, it.Get(nodes))
		}
		if cv.Get(nodes) > 250 {
			t.Fatalf("convergence at %v nodes = %v, want ~4 min", nodes, cv.Get(nodes))
		}
	}
	// Weak scaling: 8-node iteration within 15% of 1-node.
	if it.Get(8) > it.Get(1)*1.15 {
		t.Fatalf("weak scaling broken: %v vs %v", it.Get(8), it.Get(1))
	}
}

func TestFig20Shape(t *testing.T) {
	f := Fig20(DefaultCalib())
	dr := f.Get("Distributed R")
	sp := f.Get("Spark")
	// ~16 min vs ~21 min at 8 nodes; DR ~20-30% faster.
	if y := dr.Get(8); y < 850 || y > 1100 {
		t.Fatalf("DR at 8 nodes = %v, want ~960", y)
	}
	if y := sp.Get(8); y < 1100 || y > 1450 {
		t.Fatalf("Spark at 8 nodes = %v, want ~1260", y)
	}
	for _, nodes := range []float64{1, 4, 8} {
		adv := sp.Get(nodes) / dr.Get(nodes)
		if adv < 1.1 || adv > 1.5 {
			t.Fatalf("DR advantage at %v nodes = %v, want ~1.2-1.3", nodes, adv)
		}
	}
	// Both roughly flat under proportional scale-up.
	if dr.Get(8) > dr.Get(1)*1.2 || sp.Get(8) > sp.Get(1)*1.2 {
		t.Fatal("proportional scale-up should keep per-iteration time ~flat")
	}
}

func TestFig21Shape(t *testing.T) {
	f := Fig21(DefaultCalib())
	vdr := f.Get("Vertica+DR")
	sph := f.Get("Spark+HDFS")
	disk := f.Get("DR-disk")
	loadV, loadH, loadD := vdr.Get(0), sph.Get(0), disk.Get(0)
	// Paper: 15 / 11 / 5 minutes.
	if loadV < 750 || loadV > 1100 {
		t.Fatalf("Vertica load = %v, want ~900", loadV)
	}
	if loadH < 550 || loadH > 800 {
		t.Fatalf("HDFS load = %v, want ~660", loadH)
	}
	if loadD < 240 || loadD > 380 {
		t.Fatalf("ext4 load = %v, want ~300", loadD)
	}
	// Ordering: ext4 < HDFS < Vertica; ext4 ~2x faster than HDFS, ~3x than
	// Vertica.
	if !(loadD < loadH && loadH < loadV) {
		t.Fatal("load ordering broken")
	}
	if r := loadH / loadD; r < 1.6 || r > 2.6 {
		t.Fatalf("HDFS/ext4 = %v, want ~2", r)
	}
	if r := loadV / loadD; r < 2.4 || r > 3.6 {
		t.Fatalf("Vertica/ext4 = %v, want ~3", r)
	}
	// End-to-end parity within 15%.
	tv, ts := vdr.Get(2), sph.Get(2)
	if diff := tv/ts - 1; diff > 0.15 || diff < -0.15 {
		t.Fatalf("end-to-end parity broken: %v vs %v", tv, ts)
	}
}

func TestSimODBCValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad shape")
		}
	}()
	SimODBCTransfer(DefaultCalib(), 1, 0, 1, 1)
}

func TestSimVFTValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad shape")
		}
	}()
	SimVFTTransfer(DefaultCalib(), 1, 1, 0)
}

func TestFigureRendering(t *testing.T) {
	f := Fig12(DefaultCalib())
	s := f.String()
	for _, want := range []string{"fig12", "ODBC", "VFT", "150", "seconds"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, s)
		}
	}
	// Missing lookups fail loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for missing series")
			}
		}()
		f.Get("nope")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for missing x")
			}
		}()
		f.Get("ODBC").Get(9999)
	}()
}

func TestAllFiguresComplete(t *testing.T) {
	figs := AllFigures(DefaultCalib())
	if len(figs) != 11 {
		t.Fatalf("expected 11 figures, got %d", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure %s", f.ID)
		}
		seen[f.ID] = true
		if len(f.Series) == 0 {
			t.Fatalf("figure %s has no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("figure %s series %s empty", f.ID, s.Name)
			}
			for _, p := range s.Points {
				if p.Y <= 0 {
					t.Fatalf("figure %s series %s has nonpositive y at x=%v", f.ID, s.Name, p.X)
				}
			}
		}
	}
}

func TestDeterministicFigures(t *testing.T) {
	a := Fig13(DefaultCalib())
	b := Fig13(DefaultCalib())
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j] != b.Series[i].Points[j] {
				t.Fatal("simulated figures must be deterministic")
			}
		}
	}
}
