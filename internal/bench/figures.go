package bench

import "fmt"

// Fig1 regenerates the motivating Figure 1: extraction time over ODBC for a
// single R process vs Distributed R with 120 parallel connections, 5-node
// database, 50–150 GB.
func Fig1(c Calib) *Figure {
	f := &Figure{
		ID:     "fig1",
		Title:  "Extracting data from a database over ODBC is slow (5-node DB)",
		XLabel: "table GB",
		YLabel: "seconds",
	}
	var single, distr Series
	single.Name = "R (1 conn)"
	distr.Name = "Distributed R (120 conns)"
	for _, gb := range []float64{50, 100, 150} {
		single.Points = append(single.Points, Point{X: gb, Y: SimSingleRTransfer(c, gb, 5)})
		distr.Points = append(distr.Points, Point{X: gb, Y: SimODBCTransfer(c, gb, 5, 120, 120)})
	}
	f.Series = []Series{single, distr}
	f.Notes = append(f.Notes, "paper: 1 conn loads 50 GB in ~1 h; 120 conns still need ~40 min at 150 GB")
	return f
}

// Fig12 regenerates Figure 12: parallel ODBC vs Vertica Fast Transfer on a
// 5-node cluster, 50–150 GB, 24 R instances per node, locality policy.
func Fig12(c Calib) *Figure {
	f := &Figure{
		ID:     "fig12",
		Title:  "ODBC vs Vertica Fast Transfer, 5-node cluster",
		XLabel: "table GB",
		YLabel: "seconds",
	}
	var odbcS, vftS Series
	odbcS.Name = "ODBC"
	vftS.Name = "VFT"
	for _, gb := range []float64{50, 100, 150} {
		odbcS.Points = append(odbcS.Points, Point{X: gb, Y: SimODBCTransfer(c, gb, 5, 5*24, 5*24)})
		vftS.Points = append(vftS.Points, Point{X: gb, Y: SimVFTTransfer(c, gb, 5, 24).Total})
	}
	f.Series = []Series{odbcS, vftS}
	f.Notes = append(f.Notes, "paper: 150 GB in <6 min with VFT vs ~40 min with ODBC (~6x)")
	return f
}

// Fig13 regenerates Figure 13: the same comparison on a 12-node cluster up
// to 400 GB (288 ODBC connections).
func Fig13(c Calib) *Figure {
	f := &Figure{
		ID:     "fig13",
		Title:  "ODBC vs Vertica Fast Transfer, 12-node cluster",
		XLabel: "table GB",
		YLabel: "seconds",
	}
	var odbcS, vftS Series
	odbcS.Name = "ODBC"
	vftS.Name = "VFT"
	for _, gb := range []float64{100, 200, 300, 400} {
		odbcS.Points = append(odbcS.Points, Point{X: gb, Y: SimODBCTransfer(c, gb, 12, 12*24, 12*24)})
		vftS.Points = append(vftS.Points, Point{X: gb, Y: SimVFTTransfer(c, gb, 12, 24).Total})
	}
	f.Series = []Series{odbcS, vftS}
	f.Notes = append(f.Notes, "paper: 400 GB in <10 min with VFT vs ~1 h with ODBC")
	return f
}

// Fig14 regenerates Figure 14: the VFT time breakdown (DB side vs R side)
// at 400 GB on 12 nodes as R instances per server grow. The DB part stays
// constant (the planner picks its own parallelism); the R part shrinks.
func Fig14(c Calib) *Figure {
	f := &Figure{
		ID:     "fig14",
		Title:  "VFT time breakdown, 400 GB, 12 nodes",
		XLabel: "R instances/server",
		YLabel: "seconds",
	}
	var db, r, total Series
	db.Name = "DB part"
	r.Name = "R part"
	total.Name = "total"
	for _, inst := range []int{2, 4, 8, 16, 24} {
		b := SimVFTTransfer(c, 400, 12, inst)
		x := float64(inst)
		db.Points = append(db.Points, Point{X: x, Y: b.DBPart})
		r.Points = append(r.Points, Point{X: x, Y: b.RPart})
		total.Points = append(total.Points, Point{X: x, Y: b.Total})
	}
	f.Series = []Series{db, r, total}
	f.Notes = append(f.Notes,
		"paper: at 2 instances/server ~half the time is buffering+converting; DB time is constant")
	return f
}

// predictScaling builds Figs. 15–16: in-database prediction time vs table
// rows on a 5-node cluster, near-linear in rows. One simnet process per
// node scans its share through the per-node scoring capacity.
func predictScaling(id, title string, rowsPerNodeSec, overhead float64) *Figure {
	f := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "table rows",
		YLabel: "seconds",
	}
	var s Series
	s.Name = "in-db prediction"
	nodes := 5.0
	for _, rows := range []float64{1e7, 1e8, 5e8, 1e9} {
		t := overhead + rows/nodes/rowsPerNodeSec
		s.Points = append(s.Points, Point{X: rows, Y: t})
	}
	f.Series = []Series{s}
	return f
}

// Fig15 regenerates Figure 15: K-means prediction scalability.
func Fig15(c Calib) *Figure {
	f := predictScaling("fig15", "In-database K-means prediction, 5 nodes, 6 columns",
		c.KmeansPredictRowsPerNodeSec, c.KmeansPredictOverheadSec)
	f.Notes = append(f.Notes, "paper: <20 s at 10M rows, 318 s at 1B rows (near-linear)")
	return f
}

// Fig16 regenerates Figure 16: GLM (linear regression) prediction
// scalability.
func Fig16(c Calib) *Figure {
	f := predictScaling("fig16", "In-database linear-regression prediction, 5 nodes, 6 columns",
		c.GlmPredictRowsPerNodeSec, c.GlmPredictOverheadSec)
	f.Notes = append(f.Notes, "paper: <10 s at 10M rows, 206 s at 1B rows (near-linear)")
	return f
}

// amdahl computes parallel runtime with a serial fraction over effective
// cores: the hyperthreading plateau past the physical core count is the
// paper's own explanation for Fig. 17.
func amdahl(t1, serialFrac float64, cores, physCores int, htFrac float64) float64 {
	eff := float64(cores)
	if cores > physCores {
		eff = float64(physCores) + htFrac*float64(cores-physCores)
	}
	return t1 * (serialFrac + (1-serialFrac)/eff)
}

// Fig17 regenerates Figure 17: single-node K-means (1M×100, K=1000) per
// iteration, stock R vs Distributed R, 1–24 cores.
func Fig17(c Calib) *Figure {
	f := &Figure{
		ID:     "fig17",
		Title:  "K-means per-iteration, single node, 1M x 100, K=1000",
		XLabel: "cores",
		YLabel: "seconds",
	}
	var rS, drS Series
	rS.Name = "R"
	drS.Name = "Distributed R"
	for _, cores := range []int{1, 2, 4, 8, 12, 16, 20, 24} {
		rS.Points = append(rS.Points, Point{X: float64(cores), Y: c.RKmeansIterSec})
		drS.Points = append(drS.Points, Point{X: float64(cores),
			Y: amdahl(c.DRKmeansIter1Core, c.DRKmeansSerialFrac, cores, c.PhysCoresPerNode, c.HTSpeedFrac)})
	}
	f.Series = []Series{rS, drS}
	f.Notes = append(f.Notes, "paper: R flat at ~35 min; DR <4 min by 12 cores, ~9x, plateau past 12 physical cores")
	return f
}

// Fig18 regenerates Figure 18: single-node linear regression (100M×7),
// stock R (QR decomposition) vs Distributed R (Newton–Raphson).
func Fig18(c Calib) *Figure {
	f := &Figure{
		ID:     "fig18",
		Title:  "Linear regression, single node, 100M x 7",
		XLabel: "cores",
		YLabel: "seconds",
	}
	var rS, drS Series
	rS.Name = "R"
	drS.Name = "Distributed R"
	for _, cores := range []int{1, 2, 4, 8, 12, 16, 20, 24} {
		rS.Points = append(rS.Points, Point{X: float64(cores), Y: c.RLMSec})
		drS.Points = append(drS.Points, Point{X: float64(cores),
			Y: amdahl(c.DRLM1Core, c.DRLMSerialFrac, cores, c.PhysCoresPerNode, 0.35)})
	}
	f.Series = []Series{rS, drS}
	f.Notes = append(f.Notes,
		"paper: R >25 min (QR, single thread, any cores); DR <10 min at 1 core, ~9x by 24 cores")
	return f
}

// Fig19 regenerates Figure 19: distributed regression weak scaling — 1/4/8
// nodes with 30M/120M/240M rows × 100 features; per-iteration and total
// convergence time.
func Fig19(c Calib) *Figure {
	f := &Figure{
		ID:     "fig19",
		Title:  "Distributed regression weak scaling (30M rows x 100 features per node)",
		XLabel: "nodes",
		YLabel: "seconds",
	}
	var perIter, converge Series
	perIter.Name = "per-iteration"
	converge.Name = "convergence"
	for _, nodes := range []int{1, 4, 8} {
		it := c.DRRegIterPerNodeSec + c.DRRegReducePerNode*float64(nodes)
		perIter.Points = append(perIter.Points, Point{X: float64(nodes), Y: it})
		converge.Points = append(converge.Points, Point{X: float64(nodes), Y: float64(c.DRRegIterations) * it})
	}
	f.Series = []Series{perIter, converge}
	f.Notes = append(f.Notes, "paper: <2 min per Newton-Raphson iteration, converges in 2 iterations (~4 min)")
	return f
}

// sparkIter derives the Spark per-iteration time from the shared K-means
// math plus Spark's own costs (task launches, broadcast, JVM factor).
func sparkIter(c Calib, nodes int) float64 {
	dr := drKmeansIter(c, nodes)
	perNodeOverhead := c.SparkTaskOverheadSec*float64(c.SparkTasksPerNode) + c.SparkBroadcastSec
	return dr*c.SparkJVMFactor + perNodeOverhead
}

func drKmeansIter(c Calib, nodes int) float64 {
	return c.DRKmeansIterNodeSec * (1 + c.DRKmeansScaleLoss*float64(nodes-1))
}

// Fig20 regenerates Figure 20: K-means per iteration, Distributed R on
// Vertica vs Spark on HDFS, proportional scale-up (60M rows × 100 per
// node, K=1000).
func Fig20(c Calib) *Figure {
	f := &Figure{
		ID:     "fig20",
		Title:  "K-means per-iteration: Distributed R vs Spark (60M x 100 per node, K=1000)",
		XLabel: "nodes",
		YLabel: "seconds",
	}
	var drS, spS Series
	drS.Name = "Distributed R"
	spS.Name = "Spark"
	for _, nodes := range []int{1, 4, 8} {
		drS.Points = append(drS.Points, Point{X: float64(nodes), Y: drKmeansIter(c, nodes)})
		spS.Points = append(spS.Points, Point{X: float64(nodes), Y: sparkIter(c, nodes)})
	}
	f.Series = []Series{drS, spS}
	f.Notes = append(f.Notes, "paper: ~16 min vs ~21 min per iteration at 8 nodes; DR ~20% faster; both ~flat")
	return f
}

// Fig21 regenerates Figure 21: end-to-end on 4 nodes (240M × 100): load time
// plus one K-means iteration for Vertica→Distributed R, Spark on HDFS, and
// Distributed R reading local ext4 files.
func Fig21(c Calib) *Figure {
	f := &Figure{
		ID:     "fig21",
		Title:  "End-to-end, 4 nodes, 240M x 100: load + K-means iteration",
		XLabel: "phase (0=load,1=iteration,2=total)",
		YLabel: "seconds",
	}
	nodes := 4
	gb := 240e6 * BytesPerRow100f / 1e9 // logical GB
	// 100-feature float rows serialize and convert slower than the narrow
	// transfer tables of Figs. 12-13; scale the per-byte CPU stages.
	wide := c
	wide.VFTSerializeMBps = c.VFTSerializeMBps / c.VFTWideRowFactor
	wide.VFTConvertMBps = c.VFTConvertMBps / c.VFTWideRowFactor
	loadVFT := SimVFTTransfer(wide, gb, nodes, 24).Total
	perNodeGB := gb / float64(nodes)
	loadHDFS := perNodeGB * 1e9 / (c.HDFSLoadMBps * 1e6)
	loadExt4 := perNodeGB * 1e9 / (c.Ext4LoadMBps * 1e6)
	drIter := drKmeansIter(c, nodes)
	spIter := sparkIter(c, nodes)

	mk := func(name string, load, iter float64) Series {
		return Series{Name: name, Points: []Point{
			{X: 0, Y: load}, {X: 1, Y: iter}, {X: 2, Y: load + iter},
		}}
	}
	f.Series = []Series{
		mk("Vertica+DR", loadVFT, drIter),
		mk("Spark+HDFS", loadHDFS, spIter),
		mk("DR-disk", loadExt4, drIter),
	}
	f.Notes = append(f.Notes,
		"paper: loads 15 min (Vertica) / 11 min (HDFS) / 5 min (ext4); end-to-end Vertica+DR ~= Spark",
		fmt.Sprintf("dataset ~%.0f GB logical", gb))
	return f
}

// AllFigures regenerates every simulated figure in paper order.
func AllFigures(c Calib) []*Figure {
	return []*Figure{
		Fig1(c), Fig12(c), Fig13(c), Fig14(c), Fig15(c), Fig16(c),
		Fig17(c), Fig18(c), Fig19(c), Fig20(c), Fig21(c),
	}
}
