package bench

import (
	"testing"
	"time"
)

// Spans recorded under the simulated transfer must report virtual time: a
// multi-gigabyte transfer lasts seconds of simulated time even though the
// simulation itself finishes in well under a second of wall time.
func TestSimVFTTransferSpansUseVirtualTime(t *testing.T) {
	c := DefaultCalib()
	wallStart := time.Now()
	bd, spans := SimVFTTransferSpans(c, 8, 4, 4)
	wall := time.Since(wallStart)

	if bd.Total <= 0 || bd.DBPart <= 0 {
		t.Fatalf("breakdown not populated: %+v", bd)
	}
	byName := map[string]struct {
		dur   time.Duration
		ended bool
	}{}
	for _, r := range spans {
		byName[r.Name] = struct {
			dur   time.Duration
			ended bool
		}{r.Duration, r.Ended}
	}
	for _, name := range []string{"vft.transfer", "vft.db-side", "vft.conversion"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("missing span %q in %v", name, spans)
		}
		if !sp.ended {
			t.Fatalf("span %q not ended", name)
		}
	}
	// The root span's duration equals the simulated total (seconds scale).
	rootDur := byName["vft.transfer"].dur
	wantDur := time.Duration(bd.Total * float64(time.Second))
	if diff := rootDur - wantDur; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("root span = %v, want simulated total %v", rootDur, wantDur)
	}
	dbDur := byName["vft.db-side"].dur
	wantDB := time.Duration(bd.DBPart * float64(time.Second))
	if diff := dbDur - wantDB; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("db-side span = %v, want %v", dbDur, wantDB)
	}
	// Virtual, not wall: the simulated transfer dwarfs the wall time the
	// simulation took (a wall-clocked span could never exceed it).
	if rootDur < 10*wall {
		t.Fatalf("root span %v looks like wall time (simulation ran %v of wall)", rootDur, wall)
	}
	// Parent links: children point at the root.
	var rootID int64
	for _, r := range spans {
		if r.Name == "vft.transfer" {
			rootID = r.ID
		}
	}
	for _, r := range spans {
		if r.Name != "vft.transfer" && r.Parent != rootID {
			t.Fatalf("span %q parent = %d, want root %d", r.Name, r.Parent, rootID)
		}
	}
}
