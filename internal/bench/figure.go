package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) measurement of a series.
type Point struct {
	X float64 // x-axis value (GB, rows, cores, nodes...)
	Y float64 // seconds unless the figure says otherwise
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Get looks up the Y at x (exact match) or panics — figures are generated
// from fixed sweeps, so a miss is a programming error.
func (s *Series) Get(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	panic(fmt.Sprintf("bench: series %q has no point at x=%v", s.Name, x))
}

// Figure is one regenerated table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Get returns series by name.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	panic(fmt.Sprintf("bench: figure %s has no series %q", f.ID, name))
}

// String renders the figure as an aligned text table (the vdr-bench output).
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	// Union of x values, sorted.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&sb, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%18s", s.Name)
	}
	fmt.Fprintf(&sb, "    (%s)\n", f.YLabel)
	for _, x := range xs {
		fmt.Fprintf(&sb, "%-14s", trimFloat(x))
		for _, s := range f.Series {
			y, ok := lookup(s, x)
			if !ok {
				fmt.Fprintf(&sb, "%18s", "-")
			} else {
				fmt.Fprintf(&sb, "%18s", trimFloat(y))
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	s = strings.TrimSuffix(s, ".0")
	return s
}
