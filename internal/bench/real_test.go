package bench

import (
	"testing"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestRealTransferComparison(t *testing.T) {
	e := newEnv(t)
	if err := e.LoadFeatureTable("t", 5000, 4, 1); err != nil {
		t.Fatal(err)
	}
	res, err := e.RealTransferComparison("t", 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 5000 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if res.ODBC <= 0 || res.VFT <= 0 {
		t.Fatalf("timings = %+v", res)
	}
	// Even at tiny scale the columnar path should beat per-row text framing.
	if res.VFT > res.ODBC {
		t.Logf("note: VFT (%v) slower than ODBC (%v) at toy scale", res.VFT, res.ODBC)
	}
}

func TestTable1AndFig10(t *testing.T) {
	e := newEnv(t)
	if err := e.Table1Check(); err != nil {
		t.Fatalf("Table 1 construct failed: %v", err)
	}
	if err := e.Fig10Check(); err != nil {
		t.Fatalf("Fig 10 R_Models check failed: %v", err)
	}
}

func TestRealKmeansCompareAgrees(t *testing.T) {
	e := newEnv(t)
	res, err := e.RunRealKmeansCompare(600, 4, 3, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The two engines implement the same algorithm; with enough iterations
	// both converge to comparable objectives (different inits allow slack).
	ratio := res.DRObjective / res.SparkObjective
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("objectives disagree: DR=%v Spark=%v", res.DRObjective, res.SparkObjective)
	}
}

func TestSolverComparisonAgrees(t *testing.T) {
	e := newEnv(t)
	res, err := e.RunSolverComparison(2000, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Newton–Raphson (Distributed R) and QR (stock R) reach the same
	// least-squares answer (§7.3.1: "the final answer is the same").
	if res.MaxCoefDiff > 1e-6 {
		t.Fatalf("solvers disagree by %v", res.MaxCoefDiff)
	}
}

func TestTransferPolicyAblation(t *testing.T) {
	e := newEnv(t)
	res, err := e.RunTransferPolicyAblation(900)
	if err != nil {
		t.Fatal(err)
	}
	// Locality mirrors the skew: everything lands in partition 0.
	if res.LocalitySizes[0] != 900 {
		t.Fatalf("locality sizes = %v", res.LocalitySizes)
	}
	for _, s := range res.LocalitySizes[1:] {
		if s != 0 {
			t.Fatalf("locality sizes = %v", res.LocalitySizes)
		}
	}
	// Uniform balances within 25% of even.
	even := 900 / len(res.UniformSizes)
	for i, s := range res.UniformSizes {
		if s < even*3/4 || s > even*5/4 {
			t.Fatalf("uniform partition %d = %d (sizes %v)", i, s, res.UniformSizes)
		}
	}
}

func TestRunChaosTransfer(t *testing.T) {
	e := newEnv(t)
	if err := e.LoadFeatureTable("ct", 8000, 3, 2); err != nil {
		t.Fatal(err)
	}
	res, err := e.RunChaosTransfer("ct", 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 8000 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if res.Injected == 0 || res.Retransmits == 0 || res.DupChunks == 0 {
		t.Fatalf("chaos run did not engage recovery: %+v", res)
	}
}
