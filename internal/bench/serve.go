package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/algos"
	"verticadr/internal/core"
	"verticadr/internal/server"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

// The PR 5 serving benchmark: a closed-loop load generator against the
// concurrent query-serving layer, comparing the unprepared single-shot
// prediction path (parse per statement, one model deserialization per UDF
// instance per query — the pre-serving API) with the prepared + cached path
// (plan cache + shared deserialized model) over the real TCP line protocol.
// A second phase offers more load than a deliberately tiny server accepts
// and verifies admission control sheds it with verr.ErrOverloaded instead
// of queueing without bound or collapsing.

// ServeBenchConfig sizes the serving benchmark.
type ServeBenchConfig struct {
	Rows        int           // prediction table rows (default 2048)
	Concurrency int           // closed-loop client streams (default 8)
	Duration    time.Duration // per-phase measurement window (default 2s)
}

func (c *ServeBenchConfig) fill() {
	if c.Rows <= 0 {
		c.Rows = 2048
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
}

// ServeBenchResult is what `make serve-bench` writes to BENCH_PR5.json.
type ServeBenchResult struct {
	Rows        int     `json:"rows"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`

	// Throughput phases, queries/s at Concurrency closed-loop streams.
	UnpreparedQPS     float64 `json:"unprepared_qps"`
	PreparedCachedQPS float64 `json:"prepared_cached_qps"`
	Speedup           float64 `json:"speedup"`

	// Per-query latency quantiles for the two throughput phases,
	// milliseconds, estimated from telemetry histograms.
	UnpreparedLatency     LatencyQuantiles `json:"unprepared_latency_ms"`
	PreparedCachedLatency LatencyQuantiles `json:"prepared_cached_latency_ms"`

	// Overload phase: offered streams vs. a server sized far below them.
	Overload struct {
		Streams       int   `json:"streams"`
		MaxConcurrent int   `json:"max_concurrent"`
		MaxQueue      int   `json:"max_queue"`
		OK            int64 `json:"ok"`
		Overloaded    int64 `json:"overloaded"`
		OtherErrors   int64 `json:"other_errors"`
	} `json:"overload"`
}

// LatencyQuantiles are interpolated latency estimates in milliseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// timed wraps a closed-loop body so each successful iteration's wall time
// lands in h (seconds).
func timed(h *telemetry.Histogram, fn func(stream int) error) func(int) error {
	return func(stream int) error {
		t0 := time.Now()
		err := fn(stream)
		if err == nil {
			h.Observe(time.Since(t0).Seconds())
		}
		return err
	}
}

// latencyMS reads p50/p95/p99 off a seconds histogram as milliseconds.
func latencyMS(h *telemetry.Histogram) LatencyQuantiles {
	if h.Count() == 0 {
		return LatencyQuantiles{}
	}
	return LatencyQuantiles{
		P50: h.Quantile(0.50) * 1e3,
		P95: h.Quantile(0.95) * 1e3,
		P99: h.Quantile(0.99) * 1e3,
	}
}

// ServePredictSQL is the benchmark's prediction statement; vdr-serve -demo
// sets up the matching fixture so a client can issue it immediately. It
// scores with the forest — the model class where per-query deserialization
// actually hurts (tens of thousands of tree nodes per gob decode, once per
// UDF instance per query without the cache).
const ServePredictSQL = `SELECT RfPredict(a, b USING PARAMETERS model='serve_rf') OVER (PARTITION BEST) FROM serve_pts`

// ServeGlmPredictSQL scores with the small GLM deployed by the same fixture.
const ServeGlmPredictSQL = `SELECT GlmPredict(a, b USING PARAMETERS model='serve_glm') OVER (PARTITION BEST) FROM serve_pts`

// syntheticForest builds a deterministic bagged forest of full binary trees
// (BFS layout: children of i at 2i+1/2i+2). Training is beside the point
// here — the benchmark needs a deployed model of serving-realistic size, and
// trees*(2^(depth+1)-1) nodes makes deserialization a real cost.
func syntheticForest(trees, depth int) *algos.ForestModel {
	f := &algos.ForestModel{Features: 2}
	internal := 1<<depth - 1
	total := 1<<(depth+1) - 1
	for t := 0; t < trees; t++ {
		nodes := make([]algos.TreeNode, total)
		for i := 0; i < total; i++ {
			if i < internal {
				nodes[i] = algos.TreeNode{
					Feature: i % 2,
					Split:   float64(i%7)*0.25 - 0.75,
					Left:    2*i + 1,
					Right:   2*i + 2,
				}
			} else {
				nodes[i] = algos.TreeNode{Feature: -1, Value: float64((i+t)%5) * 0.5}
			}
		}
		f.Trees = append(f.Trees, algos.Tree{Nodes: nodes})
	}
	return f
}

// ServeTable is the serving fixture's feature table.
const ServeTable = "serve_pts"

// ServeFixture builds the serving fixture: a session with a feature table
// (serve_pts), a deployed GLM (serve_glm) and a deployed forest (serve_rf).
func ServeFixture(rows int) (*core.Session, error) {
	s, err := core.Start(core.Config{DBNodes: 4, DRWorkers: 4, InstancesPerWorker: 2, BlockRows: 1024})
	if err != nil {
		return nil, err
	}
	if err := SeedServeFixture(s, rows); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// SeedServeFixture creates the serving fixture inside an existing session —
// vdr-serve uses it to seed a durable data directory on first run.
func SeedServeFixture(s *core.Session, rows int) error {
	if err := s.Exec(`CREATE TABLE ` + ServeTable + ` (a FLOAT, b FLOAT) SEGMENTED BY ROUND ROBIN`); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(5))
	cols := [][]float64{make([]float64, rows), make([]float64, rows)}
	for i := 0; i < rows; i++ {
		cols[0][i], cols[1][i] = rng.NormFloat64(), rng.NormFloat64()
	}
	if err := s.DB.LoadColumns(ServeTable, cols); err != nil {
		return err
	}
	glm := &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{3, 2, -1}, Converged: true}
	if err := s.DeployModel("serve_glm", "bench", "serving benchmark GLM", glm); err != nil {
		return err
	}
	return s.DeployModel("serve_rf", "bench", "serving benchmark forest", syntheticForest(32, 10))
}

// closedLoop runs n streams of fn for d and returns completed iterations.
func closedLoop(n int, d time.Duration, fn func(stream int) error) (int64, error) {
	var (
		done     atomic.Int64
		stop     atomic.Bool
		firstErr error
		errMu    sync.Mutex
		wg       sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for !stop.Load() {
				if err := fn(stream); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				done.Add(1)
			}
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return done.Load(), firstErr
}

// RunServeBench runs all three phases and returns the figures.
func RunServeBench(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	cfg.fill()
	s, err := ServeFixture(cfg.Rows)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	res := &ServeBenchResult{Rows: cfg.Rows, Concurrency: cfg.Concurrency, DurationS: cfg.Duration.Seconds()}
	ctx := context.Background()

	// Phase 1 — unprepared single-shot: the pre-serving API. Every query
	// parses its SQL and every UDF instance deserializes the model (cache
	// off). This is what a caller got before internal/server existed.
	s.Models.SetCacheEnabled(false)
	unpreparedLat := telemetry.NewHistogram(nil)
	n, err := closedLoop(cfg.Concurrency, cfg.Duration, timed(unpreparedLat, func(int) error {
		_, err := s.QueryContext(ctx, ServePredictSQL)
		return err
	}))
	if err != nil {
		return nil, fmt.Errorf("unprepared phase: %w", err)
	}
	res.UnpreparedQPS = float64(n) / cfg.Duration.Seconds()
	res.UnpreparedLatency = latencyMS(unpreparedLat)

	// Phase 2 — prepared + cached over the wire: plan cache + model cache,
	// through the real TCP protocol (framing and JSON included in the cost).
	s.Models.SetCacheEnabled(true)
	srv := server.New(s, server.Config{MaxConcurrent: cfg.Concurrency})
	tcp, err := server.Listen(srv, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer tcp.Close()
	clients := make([]*server.Client, cfg.Concurrency)
	for i := range clients {
		c, err := server.Dial(tcp.Addr())
		if err != nil {
			return nil, err
		}
		defer c.Close()
		if err := c.Prepare(ctx, "p", ServePredictSQL); err != nil {
			return nil, err
		}
		clients[i] = c
	}
	preparedLat := telemetry.NewHistogram(nil)
	n, err = closedLoop(cfg.Concurrency, cfg.Duration, timed(preparedLat, func(stream int) error {
		_, err := clients[stream].Execute(ctx, "p")
		return err
	}))
	if err != nil {
		return nil, fmt.Errorf("prepared phase: %w", err)
	}
	res.PreparedCachedQPS = float64(n) / cfg.Duration.Seconds()
	res.PreparedCachedLatency = latencyMS(preparedLat)
	if res.UnpreparedQPS > 0 {
		res.Speedup = res.PreparedCachedQPS / res.UnpreparedQPS
	}

	// Phase 3 — overload: many streams against a server admitting almost
	// nothing. The point is the failure mode: typed ErrOverloaded refusals,
	// zero hangs, and the fixture still healthy afterwards.
	small := server.New(s, server.Config{MaxConcurrent: 2, MaxQueue: 2, QueueWait: 5 * time.Millisecond})
	smallTCP, err := server.Listen(small, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer smallTCP.Close()
	streams := cfg.Concurrency * 4
	res.Overload.Streams = streams
	res.Overload.MaxConcurrent = 2
	res.Overload.MaxQueue = 2
	var ok, shed, other atomic.Int64
	_, err = closedLoop(streams, cfg.Duration, func(stream int) error {
		c, err := server.Dial(smallTCP.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		_, qerr := c.Query(ctx, ServePredictSQL)
		switch {
		case qerr == nil:
			ok.Add(1)
		case errors.Is(qerr, verr.ErrOverloaded):
			shed.Add(1)
		default:
			other.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("overload phase: %w", err)
	}
	res.Overload.OK = ok.Load()
	res.Overload.Overloaded = shed.Load()
	res.Overload.OtherErrors = other.Load()

	// Health check: the serving path still answers after shedding.
	if _, err := s.QueryContext(ctx, ServePredictSQL); err != nil {
		return nil, fmt.Errorf("post-overload health check: %w", err)
	}
	return res, nil
}
