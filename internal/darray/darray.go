// Package darray implements the new Distributed R data structures of §4 and
// Table 1 of the paper: distributed arrays, data frames and lists declared
// with only a partition count (darray(npartitions=)), supporting *different
// partition sizes* that become known only when data arrives from Vertica.
// The master (the metadata in each D* struct, guarded by its mutex) plays
// the role of the paper's "memory manager [that] tracks the location and
// meta-data of each partition"; partition payloads live in worker stores.
package darray

import (
	"fmt"
	"sync"

	"verticadr/internal/dr"
)

// Mat is one float64 matrix partition, row-major.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMat allocates a zeroed rows×cols matrix partition.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// partMeta is the master-side record for one partition.
type partMeta struct {
	worker int
	key    string
	rows   int
	cols   int
	filled bool
}

// DArray is a distributed dense matrix partitioned by rows. Declared with
// only a partition count; partition shapes are recorded as data is filled in
// (possibly unevenly, Fig. 8). Adjacent partitions must agree on the column
// count (the conformity check of §4).
type DArray struct {
	c    *dr.Cluster
	name string
	mu   sync.RWMutex
	part []partMeta
}

// New declares a distributed array with npartitions empty partitions. No
// worker memory is reserved: only master metadata is created (per §4).
func New(c *dr.Cluster, npartitions int) (*DArray, error) {
	if npartitions <= 0 {
		return nil, fmt.Errorf("darray: npartitions must be >= 1")
	}
	a := &DArray{c: c, name: c.GenName("darray"), part: make([]partMeta, npartitions)}
	for i := range a.part {
		a.part[i].worker = i % c.NumWorkers()
		a.part[i].key = fmt.Sprintf("%s/p%d", a.name, i)
	}
	return a, nil
}

// Name returns the array's symbol-table name.
func (a *DArray) Name() string { return a.name }

// Cluster returns the session the array lives in.
func (a *DArray) Cluster() *dr.Cluster { return a.c }

// NPartitions returns the declared partition count.
func (a *DArray) NPartitions() int { return len(a.part) }

// WorkerOf returns the worker holding partition i.
func (a *DArray) WorkerOf(i int) int { return a.part[i].worker }

// SetWorker reassigns an *unfilled* partition to a worker (used by transfer
// policies to co-locate partitions with table segments).
func (a *DArray) SetWorker(i, worker int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.part) {
		return fmt.Errorf("darray: no partition %d", i)
	}
	if a.part[i].filled {
		return fmt.Errorf("darray: partition %d already filled", i)
	}
	if worker < 0 || worker >= a.c.NumWorkers() {
		return fmt.Errorf("darray: no worker %d", worker)
	}
	a.part[i].worker = worker
	return nil
}

// Fill stores matrix m as partition i on its assigned worker, checking
// conformity: every filled partition must have the same column count.
func (a *DArray) Fill(i int, m *Mat) error {
	if m == nil || len(m.Data) != m.Rows*m.Cols {
		return fmt.Errorf("darray: malformed matrix for partition %d", i)
	}
	a.mu.Lock()
	if i < 0 || i >= len(a.part) {
		a.mu.Unlock()
		return fmt.Errorf("darray: no partition %d", i)
	}
	for j := range a.part {
		if j != i && a.part[j].filled && a.part[j].cols != m.Cols {
			a.mu.Unlock()
			return fmt.Errorf("darray: partition %d has %d cols, conflicting with partition %d (%d cols)", i, m.Cols, j, a.part[j].cols)
		}
	}
	meta := &a.part[i]
	meta.rows, meta.cols, meta.filled = m.Rows, m.Cols, true
	worker, key := meta.worker, meta.key
	a.mu.Unlock()

	w, err := a.c.Worker(worker)
	if err != nil {
		return err
	}
	w.Put(key, m)
	return nil
}

// Filled reports whether every partition has data.
func (a *DArray) Filled() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, p := range a.part {
		if !p.filled {
			return false
		}
	}
	return true
}

// PartitionSize returns the shape of partition i (Table 1: partitionsize(A,i)).
func (a *DArray) PartitionSize(i int) (rows, cols int, err error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if i < 0 || i >= len(a.part) {
		return 0, 0, fmt.Errorf("darray: no partition %d", i)
	}
	return a.part[i].rows, a.part[i].cols, nil
}

// PartitionSizes returns all partition shapes (partitionsize(A) with i
// missing).
func (a *DArray) PartitionSizes() [][2]int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([][2]int, len(a.part))
	for i, p := range a.part {
		out[i] = [2]int{p.rows, p.cols}
	}
	return out
}

// Rows returns the total row count over filled partitions.
func (a *DArray) Rows() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n := 0
	for _, p := range a.part {
		n += p.rows
	}
	return n
}

// Cols returns the column count (0 if nothing is filled yet).
func (a *DArray) Cols() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, p := range a.part {
		if p.filled {
			return p.cols
		}
	}
	return 0
}

// Clone returns a new array with the same number of partitions, the same
// per-partition row counts, and co-located partitions, with ncol columns
// (Table 1: clone(A, ncol=)). Partitions are allocated eagerly and zeroed.
func (a *DArray) Clone(ncol int) (*DArray, error) {
	if ncol <= 0 {
		return nil, fmt.Errorf("darray: clone ncol must be >= 1")
	}
	a.mu.RLock()
	metas := append([]partMeta(nil), a.part...)
	a.mu.RUnlock()
	out, err := New(a.c, len(metas))
	if err != nil {
		return nil, err
	}
	for i, p := range metas {
		if !p.filled {
			return nil, fmt.Errorf("darray: clone of array with unfilled partition %d", i)
		}
		if err := out.SetWorker(i, p.worker); err != nil {
			return nil, err
		}
		if err := out.Fill(i, NewMat(p.rows, ncol)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Part fetches partition i's payload from its worker store.
func (a *DArray) Part(i int) (*Mat, error) {
	a.mu.RLock()
	if i < 0 || i >= len(a.part) {
		a.mu.RUnlock()
		return nil, fmt.Errorf("darray: no partition %d", i)
	}
	meta := a.part[i]
	a.mu.RUnlock()
	if !meta.filled {
		return nil, fmt.Errorf("darray: partition %d not filled", i)
	}
	w, err := a.c.Worker(meta.worker)
	if err != nil {
		return nil, err
	}
	v, ok := w.Get(meta.key)
	if !ok {
		return nil, fmt.Errorf("darray: partition %d missing from worker %d store", i, meta.worker)
	}
	m, ok := v.(*Mat)
	if !ok {
		return nil, fmt.Errorf("darray: partition %d holds %T, not *Mat", i, v)
	}
	return m, nil
}

// Foreach runs fn for every partition on its owning worker, in parallel
// (bounded by the worker executors). This is Distributed R's foreach over
// array partitions.
func (a *DArray) Foreach(fn func(part int, m *Mat) error) error {
	tasks := map[int][]dr.Task{}
	a.mu.RLock()
	for i := range a.part {
		i := i
		meta := a.part[i]
		if !meta.filled {
			a.mu.RUnlock()
			return fmt.Errorf("darray: foreach over unfilled partition %d", i)
		}
		tasks[meta.worker] = append(tasks[meta.worker], func(w *dr.Worker) error {
			v, ok := w.Get(meta.key)
			if !ok {
				return fmt.Errorf("darray: partition %d missing on worker %d", i, w.ID())
			}
			return fn(i, v.(*Mat))
		})
	}
	a.mu.RUnlock()
	return a.c.RunAll(tasks)
}

// Zip runs fn for every partition pair (a[i], b[i]) on the owning worker;
// the arrays must be co-partitioned (same partition count, row counts, and
// workers) — the co-partitioning requirement §4 describes for distributed
// algorithms.
func Zip(a, b *DArray, fn func(part int, ma, mb *Mat) error) error {
	if err := CheckCoPartitioned(a, b); err != nil {
		return err
	}
	return a.Foreach(func(i int, ma *Mat) error {
		mb, err := b.Part(i)
		if err != nil {
			return err
		}
		return fn(i, ma, mb)
	})
}

// CheckCoPartitioned verifies that two arrays share partition structure.
func CheckCoPartitioned(a, b *DArray) error {
	if a.NPartitions() != b.NPartitions() {
		return fmt.Errorf("darray: partition counts differ (%d vs %d)", a.NPartitions(), b.NPartitions())
	}
	as, bs := a.PartitionSizes(), b.PartitionSizes()
	for i := range as {
		if as[i][0] != bs[i][0] {
			return fmt.Errorf("darray: partition %d row counts differ (%d vs %d)", i, as[i][0], bs[i][0])
		}
		if a.WorkerOf(i) != b.WorkerOf(i) {
			return fmt.Errorf("darray: partition %d on different workers (%d vs %d)", i, a.WorkerOf(i), b.WorkerOf(i))
		}
	}
	return nil
}

// Collect gathers the whole array to the master as one matrix, partitions in
// order (used to fetch model-sized data, not bulk data).
func (a *DArray) Collect() (*Mat, error) {
	sizes := a.PartitionSizes()
	cols := a.Cols()
	total := 0
	for i, s := range sizes {
		if s[1] != 0 && s[1] != cols {
			return nil, fmt.Errorf("darray: inconsistent cols in partition %d", i)
		}
		total += s[0]
	}
	out := NewMat(total, cols)
	off := 0
	for i := range sizes {
		m, err := a.Part(i)
		if err != nil {
			return nil, err
		}
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out, nil
}

// FromMat distributes an in-memory matrix across npartitions with near-equal
// row counts (the classic pre-§4 behaviour, Fig. 7).
func FromMat(c *dr.Cluster, m *Mat, npartitions int) (*DArray, error) {
	a, err := New(c, npartitions)
	if err != nil {
		return nil, err
	}
	for i := 0; i < npartitions; i++ {
		lo := i * m.Rows / npartitions
		hi := (i + 1) * m.Rows / npartitions
		p := NewMat(hi-lo, m.Cols)
		copy(p.Data, m.Data[lo*m.Cols:hi*m.Cols])
		if err := a.Fill(i, p); err != nil {
			return nil, err
		}
	}
	return a, nil
}
