package darray

import (
	"sync"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/dr"
)

func cluster(t *testing.T, workers int) *dr.Cluster {
	t.Helper()
	c, err := dr.Start(dr.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestMatAccessors(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("set/at")
	}
	if r := m.Row(1); len(r) != 3 || r[2] != 7 {
		t.Fatalf("row = %v", r)
	}
}

func TestDeclareWithoutAllocation(t *testing.T) {
	c := cluster(t, 3)
	a, err := New(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NPartitions() != 5 {
		t.Fatalf("nparts = %d", a.NPartitions())
	}
	// Declaration creates only metadata — no worker stores any payload yet.
	for i := 0; i < 3; i++ {
		w, _ := c.Worker(i)
		if len(w.Keys()) != 0 {
			t.Fatalf("worker %d has data before fill: %v", i, w.Keys())
		}
	}
	if a.Filled() {
		t.Fatal("unfilled array reports filled")
	}
	if _, err := New(c, 0); err == nil {
		t.Fatal("0 partitions should fail")
	}
}

func TestFillUnevenPartitions(t *testing.T) {
	// The Figure 8 scenario: partitions of 1, 3 and 2 rows.
	c := cluster(t, 3)
	a, _ := New(c, 3)
	sizes := []int{1, 3, 2}
	for i, rows := range sizes {
		m := NewMat(rows, 2)
		for r := 0; r < rows; r++ {
			m.Set(r, 0, float64(i))
			m.Set(r, 1, float64(r))
		}
		if err := a.Fill(i, m); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Filled() || a.Rows() != 6 || a.Cols() != 2 {
		t.Fatalf("rows=%d cols=%d", a.Rows(), a.Cols())
	}
	r, cc, err := a.PartitionSize(1)
	if err != nil || r != 3 || cc != 2 {
		t.Fatalf("partitionsize(1) = %d,%d,%v", r, cc, err)
	}
	all := a.PartitionSizes()
	for i, s := range sizes {
		if all[i][0] != s {
			t.Fatalf("sizes = %v", all)
		}
	}
	whole, err := a.Collect()
	if err != nil || whole.Rows != 6 {
		t.Fatalf("collect: %v rows=%d", err, whole.Rows)
	}
	if whole.At(1, 0) != 1 || whole.At(4, 0) != 2 {
		t.Fatal("collect order wrong")
	}
}

func TestConformityCheck(t *testing.T) {
	c := cluster(t, 2)
	a, _ := New(c, 2)
	if err := a.Fill(0, NewMat(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(1, NewMat(5, 4)); err == nil {
		t.Fatal("mismatched column count must be rejected (conformity)")
	}
	if err := a.Fill(1, NewMat(5, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestFillValidation(t *testing.T) {
	c := cluster(t, 2)
	a, _ := New(c, 2)
	if err := a.Fill(9, NewMat(1, 1)); err == nil {
		t.Fatal("bad partition index should fail")
	}
	if err := a.Fill(0, nil); err == nil {
		t.Fatal("nil matrix should fail")
	}
	if err := a.Fill(0, &Mat{Rows: 2, Cols: 2, Data: []float64{1}}); err == nil {
		t.Fatal("malformed matrix should fail")
	}
	if _, err := a.Part(0); err == nil {
		t.Fatal("part of unfilled partition should fail")
	}
	if _, _, err := a.PartitionSize(9); err == nil {
		t.Fatal("bad index should fail")
	}
}

func TestSetWorkerPlacement(t *testing.T) {
	c := cluster(t, 3)
	a, _ := New(c, 3)
	if err := a.SetWorker(0, 2); err != nil {
		t.Fatal(err)
	}
	if a.WorkerOf(0) != 2 {
		t.Fatal("placement not applied")
	}
	_ = a.Fill(0, NewMat(1, 1))
	w, _ := c.Worker(2)
	if len(w.Keys()) != 1 {
		t.Fatal("payload not on assigned worker")
	}
	if err := a.SetWorker(0, 1); err == nil {
		t.Fatal("moving a filled partition should fail")
	}
	if err := a.SetWorker(1, 9); err == nil {
		t.Fatal("bad worker should fail")
	}
	if err := a.SetWorker(9, 0); err == nil {
		t.Fatal("bad partition should fail")
	}
}

func TestClone(t *testing.T) {
	c := cluster(t, 2)
	a, _ := New(c, 3)
	for i, rows := range []int{4, 1, 2} {
		_ = a.SetWorker(i, i%2)
		if err := a.Fill(i, NewMat(rows, 5)); err != nil {
			t.Fatal(err)
		}
	}
	y, err := a.Clone(1)
	if err != nil {
		t.Fatal(err)
	}
	if y.NPartitions() != 3 || y.Cols() != 1 || y.Rows() != 7 {
		t.Fatalf("clone shape: parts=%d cols=%d rows=%d", y.NPartitions(), y.Cols(), y.Rows())
	}
	for i := 0; i < 3; i++ {
		if y.WorkerOf(i) != a.WorkerOf(i) {
			t.Fatal("clone must be co-located")
		}
		ra, _, _ := a.PartitionSize(i)
		ry, _, _ := y.PartitionSize(i)
		if ra != ry {
			t.Fatal("clone row counts must match")
		}
	}
	if err := CheckCoPartitioned(a, y); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Clone(0); err == nil {
		t.Fatal("ncol=0 should fail")
	}
	b, _ := New(c, 1)
	if _, err := b.Clone(1); err == nil {
		t.Fatal("clone of unfilled array should fail")
	}
}

func TestForeachRunsEveryPartition(t *testing.T) {
	c := cluster(t, 3)
	a, _ := New(c, 6)
	for i := 0; i < 6; i++ {
		_ = a.Fill(i, NewMat(i+1, 2))
	}
	var mu sync.Mutex
	seen := map[int]int{}
	err := a.Foreach(func(p int, m *Mat) error {
		mu.Lock()
		seen[p] = m.Rows
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("visited %d partitions", len(seen))
	}
	for p, rows := range seen {
		if rows != p+1 {
			t.Fatalf("partition %d rows %d", p, rows)
		}
	}
	empty, _ := New(c, 2)
	if err := empty.Foreach(func(int, *Mat) error { return nil }); err == nil {
		t.Fatal("foreach over unfilled array should fail")
	}
}

func TestZipCoPartitioned(t *testing.T) {
	c := cluster(t, 2)
	x, _ := New(c, 3)
	for i, rows := range []int{2, 3, 1} {
		_ = x.Fill(i, NewMat(rows, 4))
	}
	y, _ := x.Clone(1)
	var mu sync.Mutex
	var visited int
	err := Zip(x, y, func(p int, mx, my *Mat) error {
		if mx.Rows != my.Rows {
			t.Errorf("partition %d row mismatch", p)
		}
		mu.Lock()
		visited++
		mu.Unlock()
		return nil
	})
	if err != nil || visited != 3 {
		t.Fatalf("zip: %v visited=%d", err, visited)
	}
	// Non-co-partitioned arrays are rejected.
	z, _ := New(c, 2)
	_ = z.Fill(0, NewMat(2, 1))
	_ = z.Fill(1, NewMat(2, 1))
	if err := Zip(x, z, func(int, *Mat, *Mat) error { return nil }); err == nil {
		t.Fatal("zip of non-co-partitioned arrays should fail")
	}
}

func TestFromMat(t *testing.T) {
	c := cluster(t, 2)
	m := NewMat(10, 2)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, float64(i))
	}
	a, err := FromMat(c, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 10 || a.Cols() != 2 {
		t.Fatalf("shape %dx%d", a.Rows(), a.Cols())
	}
	back, _ := a.Collect()
	for i := 0; i < 10; i++ {
		if back.At(i, 0) != float64(i) {
			t.Fatal("round trip order broken")
		}
	}
}

func TestDFrameBasics(t *testing.T) {
	c := cluster(t, 2)
	f, err := NewFrame(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "n", Type: colstore.TypeInt64},
	}
	b0 := colstore.NewBatch(schema)
	_ = b0.AppendRow(1.5, int64(10))
	_ = b0.AppendRow(2.5, int64(20))
	b1 := colstore.NewBatch(schema)
	_ = b1.AppendRow(3.5, int64(30))
	if err := f.Fill(0, b0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fill(1, b1); err != nil {
		t.Fatal(err)
	}
	if f.Rows() != 3 || !f.Schema().Equal(schema) {
		t.Fatalf("frame rows=%d", f.Rows())
	}
	r, cc, _ := f.PartitionSize(0)
	if r != 2 || cc != 2 {
		t.Fatalf("psize = %d,%d", r, cc)
	}
	// Schema conformity.
	other := colstore.NewBatch(colstore.Schema{{Name: "z", Type: colstore.TypeBool}})
	_ = other.AppendRow(true)
	if err := f.Fill(0, other); err == nil {
		t.Fatal("schema mismatch should fail")
	}
	// Foreach.
	var mu sync.Mutex
	total := 0
	if err := f.Foreach(func(p int, b *colstore.Batch) error {
		mu.Lock()
		total += b.Len()
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("foreach total = %d", total)
	}
}

func TestDFrameAsDArray(t *testing.T) {
	c := cluster(t, 2)
	f, _ := NewFrame(c, 2)
	schema := colstore.Schema{
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "n", Type: colstore.TypeInt64},
		{Name: "s", Type: colstore.TypeString},
	}
	b0 := colstore.NewBatch(schema)
	_ = b0.AppendRow(1.0, int64(2), "a")
	b1 := colstore.NewBatch(schema)
	_ = b1.AppendRow(3.0, int64(4), "b")
	_ = f.Fill(0, b0)
	_ = f.Fill(1, b1)
	a, err := f.AsDArray([]string{"x", "n"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 2 || a.Cols() != 2 {
		t.Fatalf("shape %dx%d", a.Rows(), a.Cols())
	}
	if a.WorkerOf(0) != f.WorkerOf(0) || a.WorkerOf(1) != f.WorkerOf(1) {
		t.Fatal("AsDArray must co-locate with the frame")
	}
	m, _ := a.Part(1)
	if m.At(0, 0) != 3.0 || m.At(0, 1) != 4.0 {
		t.Fatalf("values = %v", m.Data)
	}
	if _, err := f.AsDArray([]string{"s"}); err == nil {
		t.Fatal("string column to darray should fail")
	}
	empty, _ := NewFrame(c, 1)
	if _, err := empty.AsDArray(nil); err == nil {
		t.Fatal("empty frame should fail")
	}
}

func TestDList(t *testing.T) {
	c := cluster(t, 2)
	l, err := NewList(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.NPartitions() != 3 {
		t.Fatal("nparts")
	}
	_ = l.Fill(0, []any{1, 2})
	_ = l.Fill(1, []any{"a"})
	_ = l.Fill(2, []any{})
	n, err := l.PartitionSize(0)
	if err != nil || n != 2 {
		t.Fatalf("psize = %d %v", n, err)
	}
	all, err := l.Collect()
	if err != nil || len(all) != 3 {
		t.Fatalf("collect = %v %v", all, err)
	}
	if all[0] != 1 || all[2] != "a" {
		t.Fatalf("collect order = %v", all)
	}
	if _, err := l.Part(9); err == nil {
		t.Fatal("bad index should fail")
	}
	if _, err := NewList(c, 0); err == nil {
		t.Fatal("0 partitions should fail")
	}
	if l.WorkerOf(0) != 0 || l.WorkerOf(1) != 1 {
		t.Fatal("round-robin placement expected")
	}
}
