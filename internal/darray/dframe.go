package darray

import (
	"fmt"
	"sync"

	"verticadr/internal/colstore"
	"verticadr/internal/dr"
)

// DFrame is a distributed data frame: partitions are typed column batches
// (colstore.Batch). Declared with only a partition count (Table 1:
// dframe(npartitions=)); partitions may have different row counts but must
// agree on schema.
type DFrame struct {
	c    *dr.Cluster
	name string
	mu   sync.RWMutex
	part []partMeta
	sch  colstore.Schema // established by the first fill
}

// NewFrame declares a distributed data frame with empty partitions.
func NewFrame(c *dr.Cluster, npartitions int) (*DFrame, error) {
	if npartitions <= 0 {
		return nil, fmt.Errorf("darray: npartitions must be >= 1")
	}
	f := &DFrame{c: c, name: c.GenName("dframe"), part: make([]partMeta, npartitions)}
	for i := range f.part {
		f.part[i].worker = i % c.NumWorkers()
		f.part[i].key = fmt.Sprintf("%s/p%d", f.name, i)
	}
	return f, nil
}

// Name returns the frame's symbol-table name.
func (f *DFrame) Name() string { return f.name }

// NPartitions returns the partition count.
func (f *DFrame) NPartitions() int { return len(f.part) }

// WorkerOf returns the worker holding partition i.
func (f *DFrame) WorkerOf(i int) int { return f.part[i].worker }

// SetWorker reassigns an unfilled partition.
func (f *DFrame) SetWorker(i, worker int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < 0 || i >= len(f.part) {
		return fmt.Errorf("darray: no partition %d", i)
	}
	if f.part[i].filled {
		return fmt.Errorf("darray: partition %d already filled", i)
	}
	if worker < 0 || worker >= f.c.NumWorkers() {
		return fmt.Errorf("darray: no worker %d", worker)
	}
	f.part[i].worker = worker
	return nil
}

// Fill stores a batch as partition i; all partitions must share a schema
// (the data-frame conformity check).
//
// Fill takes ownership of b: the batch becomes the partition's backing
// storage without a copy, so the caller must not modify, reuse or recycle it
// (or its column slices) afterwards. Pooled batches flowing through the vft
// transfer are therefore copied into a fresh exact-capacity batch before
// Fill, and only the pooled staging copies return to their pool.
func (f *DFrame) Fill(i int, b *colstore.Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	if i < 0 || i >= len(f.part) {
		f.mu.Unlock()
		return fmt.Errorf("darray: no partition %d", i)
	}
	if f.sch == nil {
		f.sch = b.Schema
	} else if !f.sch.Equal(b.Schema) {
		f.mu.Unlock()
		return fmt.Errorf("darray: partition %d schema differs from frame schema", i)
	}
	meta := &f.part[i]
	meta.rows, meta.cols, meta.filled = b.Len(), len(b.Schema), true
	worker, key := meta.worker, meta.key
	f.mu.Unlock()

	w, err := f.c.Worker(worker)
	if err != nil {
		return err
	}
	w.Put(key, b)
	return nil
}

// Schema returns the frame schema (nil until the first fill).
func (f *DFrame) Schema() colstore.Schema {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sch
}

// PartitionSize returns (rows, cols) of partition i.
func (f *DFrame) PartitionSize(i int) (int, int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if i < 0 || i >= len(f.part) {
		return 0, 0, fmt.Errorf("darray: no partition %d", i)
	}
	return f.part[i].rows, f.part[i].cols, nil
}

// Rows returns the total row count.
func (f *DFrame) Rows() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, p := range f.part {
		n += p.rows
	}
	return n
}

// Part fetches partition i's batch.
func (f *DFrame) Part(i int) (*colstore.Batch, error) {
	f.mu.RLock()
	if i < 0 || i >= len(f.part) {
		f.mu.RUnlock()
		return nil, fmt.Errorf("darray: no partition %d", i)
	}
	meta := f.part[i]
	f.mu.RUnlock()
	if !meta.filled {
		return nil, fmt.Errorf("darray: partition %d not filled", i)
	}
	w, err := f.c.Worker(meta.worker)
	if err != nil {
		return nil, err
	}
	v, ok := w.Get(meta.key)
	if !ok {
		return nil, fmt.Errorf("darray: partition %d missing from worker %d", i, meta.worker)
	}
	return v.(*colstore.Batch), nil
}

// Foreach runs fn on every partition on its owning worker, in parallel.
func (f *DFrame) Foreach(fn func(part int, b *colstore.Batch) error) error {
	tasks := map[int][]dr.Task{}
	f.mu.RLock()
	for i := range f.part {
		i := i
		meta := f.part[i]
		if !meta.filled {
			f.mu.RUnlock()
			return fmt.Errorf("darray: foreach over unfilled partition %d", i)
		}
		tasks[meta.worker] = append(tasks[meta.worker], func(w *dr.Worker) error {
			v, ok := w.Get(meta.key)
			if !ok {
				return fmt.Errorf("darray: partition %d missing on worker %d", i, w.ID())
			}
			return fn(i, v.(*colstore.Batch))
		})
	}
	f.mu.RUnlock()
	return f.c.RunAll(tasks)
}

// AsDArray converts numeric columns (in schema order, or the named subset)
// into a co-located distributed array; this is the bridge db2darray uses to
// hand loaded frames to the math algorithms.
func (f *DFrame) AsDArray(cols []string) (*DArray, error) {
	sch := f.Schema()
	if sch == nil {
		return nil, fmt.Errorf("darray: frame has no data")
	}
	if cols == nil {
		for _, c := range sch {
			cols = append(cols, c.Name)
		}
	}
	a, err := New(f.c, f.NPartitions())
	if err != nil {
		return nil, err
	}
	for i := range f.part {
		if err := a.SetWorker(i, f.WorkerOf(i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < f.NPartitions(); i++ {
		b, err := f.Part(i)
		if err != nil {
			return nil, err
		}
		p, err := b.Project(cols)
		if err != nil {
			return nil, err
		}
		m := NewMat(p.Len(), len(cols))
		// Column-major source into row-major matrix: write through the raw
		// data slice with an explicit stride, which keeps the inner loop
		// free of per-element bounds recomputation.
		stride := m.Cols
		for j, col := range p.Cols {
			switch col.Type {
			case colstore.TypeFloat64:
				for r, v := range col.Floats {
					m.Data[r*stride+j] = v
				}
			case colstore.TypeInt64:
				for r, v := range col.Ints {
					m.Data[r*stride+j] = float64(v)
				}
			default:
				return nil, fmt.Errorf("darray: column %q is %v, not numeric", cols[j], col.Type)
			}
		}
		if err := a.Fill(i, m); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// DList is a distributed list: each partition holds an arbitrary []any
// (Table 1: dlist(npartitions=)).
type DList struct {
	c    *dr.Cluster
	name string
	mu   sync.RWMutex
	part []partMeta
}

// NewList declares a distributed list with empty partitions.
func NewList(c *dr.Cluster, npartitions int) (*DList, error) {
	if npartitions <= 0 {
		return nil, fmt.Errorf("darray: npartitions must be >= 1")
	}
	l := &DList{c: c, name: c.GenName("dlist"), part: make([]partMeta, npartitions)}
	for i := range l.part {
		l.part[i].worker = i % c.NumWorkers()
		l.part[i].key = fmt.Sprintf("%s/p%d", l.name, i)
	}
	return l, nil
}

// NPartitions returns the partition count.
func (l *DList) NPartitions() int { return len(l.part) }

// WorkerOf returns the worker holding partition i.
func (l *DList) WorkerOf(i int) int { return l.part[i].worker }

// Fill stores items as partition i.
func (l *DList) Fill(i int, items []any) error {
	l.mu.Lock()
	if i < 0 || i >= len(l.part) {
		l.mu.Unlock()
		return fmt.Errorf("darray: no partition %d", i)
	}
	meta := &l.part[i]
	meta.rows, meta.filled = len(items), true
	worker, key := meta.worker, meta.key
	l.mu.Unlock()
	w, err := l.c.Worker(worker)
	if err != nil {
		return err
	}
	w.Put(key, items)
	return nil
}

// PartitionSize returns the element count of partition i.
func (l *DList) PartitionSize(i int) (int, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.part) {
		return 0, fmt.Errorf("darray: no partition %d", i)
	}
	return l.part[i].rows, nil
}

// Part fetches partition i.
func (l *DList) Part(i int) ([]any, error) {
	l.mu.RLock()
	if i < 0 || i >= len(l.part) {
		l.mu.RUnlock()
		return nil, fmt.Errorf("darray: no partition %d", i)
	}
	meta := l.part[i]
	l.mu.RUnlock()
	if !meta.filled {
		return nil, fmt.Errorf("darray: partition %d not filled", i)
	}
	w, err := l.c.Worker(meta.worker)
	if err != nil {
		return nil, err
	}
	v, ok := w.Get(meta.key)
	if !ok {
		return nil, fmt.Errorf("darray: partition %d missing from worker %d", i, meta.worker)
	}
	return v.([]any), nil
}

// Collect gathers all elements in partition order.
func (l *DList) Collect() ([]any, error) {
	var out []any
	for i := 0; i < l.NPartitions(); i++ {
		items, err := l.Part(i)
		if err != nil {
			return nil, err
		}
		out = append(out, items...)
	}
	return out, nil
}
