package algos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"verticadr/internal/darray"
)

// TreeNode is one node of a CART regression/classification tree, stored in a
// flat slice (index-linked) so models serialize compactly.
type TreeNode struct {
	Feature int     // -1 for leaf
	Split   float64 // go left when x[Feature] <= Split
	Left    int     // child indexes into Forest.Nodes slices
	Right   int
	Value   float64 // leaf prediction
}

// Tree is one decision tree as a flat node array; node 0 is the root.
type Tree struct {
	Nodes []TreeNode
}

// Predict walks the tree for one feature row.
func (t *Tree) Predict(row []float64) float64 {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if row[n.Feature] <= n.Split {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// ForestModel is a bagged ensemble of CART trees (hpdRF in Distributed R).
// Classify selects majority vote over rounded tree outputs; regression
// averages.
type ForestModel struct {
	Trees    []Tree
	Classify bool
	Features int
}

// ForestOpts configures training.
type ForestOpts struct {
	Trees       int     // total trees across the cluster (default 10)
	MaxDepth    int     // default 8
	MinLeaf     int     // minimum samples per leaf (default 5)
	FeatureFrac float64 // fraction of features tried per split (default 1/3, min 1)
	Classify    bool
	Seed        int64
}

// RandomForest trains a forest distributedly: trees are divided among
// partitions, each worker growing its share on a bootstrap sample of its
// *local* partition (bagging with data locality — no data movement), and the
// master concatenates the trees. This mirrors how Distributed R's
// HPdclassifier forest trains per-worker trees.
func RandomForest(x, y *darray.DArray, opts ForestOpts) (*ForestModel, error) {
	if err := darray.CheckCoPartitioned(x, y); err != nil {
		return nil, err
	}
	if y.Cols() != 1 {
		return nil, fmt.Errorf("algos: forest response must have one column")
	}
	if opts.Trees <= 0 {
		opts.Trees = 10
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 8
	}
	if opts.MinLeaf <= 0 {
		opts.MinLeaf = 5
	}
	d := x.Cols()
	mtry := int(math.Ceil(opts.FeatureFrac * float64(d)))
	if opts.FeatureFrac <= 0 {
		mtry = (d + 2) / 3
	}
	if mtry < 1 {
		mtry = 1
	}
	if mtry > d {
		mtry = d
	}
	nparts := x.NPartitions()
	treesPer := make([]int, nparts)
	for i := 0; i < opts.Trees; i++ {
		treesPer[i%nparts]++
	}
	var mu sync.Mutex
	model := &ForestModel{Classify: opts.Classify, Features: d}
	err := darray.Zip(x, y, func(p int, mx, my *darray.Mat) error {
		if mx.Rows == 0 {
			return nil
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(p)*7919))
		var local []Tree
		for t := 0; t < treesPer[p]; t++ {
			idx := make([]int, mx.Rows)
			for i := range idx {
				idx[i] = rng.Intn(mx.Rows)
			}
			tree := growTree(mx, my, idx, opts, mtry, rng)
			local = append(local, tree)
		}
		mu.Lock()
		model.Trees = append(model.Trees, local...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(model.Trees) == 0 {
		return nil, fmt.Errorf("algos: forest trained no trees (empty data?)")
	}
	return model, nil
}

type splitCand struct {
	feature int
	split   float64
	score   float64 // variance reduction
	ok      bool
}

func growTree(mx, my *darray.Mat, idx []int, opts ForestOpts, mtry int, rng *rand.Rand) Tree {
	t := Tree{}
	var build func(idx []int, depth int) int
	build = func(idx []int, depth int) int {
		node := TreeNode{Feature: -1, Value: meanY(my, idx)}
		self := len(t.Nodes)
		t.Nodes = append(t.Nodes, node)
		if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || pureY(my, idx) {
			return self
		}
		best := splitCand{}
		feats := rng.Perm(mx.Cols)[:mtry]
		for _, f := range feats {
			if c := bestSplit(mx, my, idx, f, opts.MinLeaf); c.ok && (!best.ok || c.score > best.score) {
				best = c
			}
		}
		if !best.ok {
			return self
		}
		var left, right []int
		for _, i := range idx {
			if mx.At(i, best.feature) <= best.split {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) < opts.MinLeaf || len(right) < opts.MinLeaf {
			return self
		}
		li := build(left, depth+1)
		ri := build(right, depth+1)
		t.Nodes[self].Feature = best.feature
		t.Nodes[self].Split = best.split
		t.Nodes[self].Left = li
		t.Nodes[self].Right = ri
		return self
	}
	build(idx, 0)
	return t
}

func meanY(my *darray.Mat, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += my.At(i, 0)
	}
	return s / float64(len(idx))
}

func pureY(my *darray.Mat, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := my.At(idx[0], 0)
	for _, i := range idx {
		if my.At(i, 0) != first {
			return false
		}
	}
	return true
}

// bestSplit finds the variance-reduction-optimal threshold on one feature by
// sorting the candidate rows and sweeping prefix sums.
func bestSplit(mx, my *darray.Mat, idx []int, f, minLeaf int) splitCand {
	n := len(idx)
	type pair struct{ x, y float64 }
	ps := make([]pair, n)
	for i, r := range idx {
		ps[i] = pair{mx.At(r, f), my.At(r, 0)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].x < ps[b].x })
	var totalSum, totalSq float64
	for _, p := range ps {
		totalSum += p.y
		totalSq += p.y * p.y
	}
	var leftSum float64
	best := splitCand{feature: f}
	for i := 0; i < n-1; i++ {
		leftSum += ps[i].y
		if ps[i].x == ps[i+1].x {
			continue // can't split between equal values
		}
		nl, nr := float64(i+1), float64(n-i-1)
		if i+1 < minLeaf || n-i-1 < minLeaf {
			continue
		}
		rightSum := totalSum - leftSum
		// Variance reduction ∝ sum² terms (total SS constant per feature).
		score := leftSum*leftSum/nl + rightSum*rightSum/nr
		if !best.ok || score > best.score {
			best = splitCand{
				feature: f,
				split:   (ps[i].x + ps[i+1].x) / 2,
				score:   score,
				ok:      true,
			}
		}
	}
	return best
}

// Predict aggregates the forest for one row: mean for regression, rounded
// majority for classification.
func (m *ForestModel) Predict(row []float64) float64 {
	if len(m.Trees) == 0 {
		return 0
	}
	if m.Classify {
		votes := map[float64]int{}
		for i := range m.Trees {
			votes[math.Round(m.Trees[i].Predict(row))]++
		}
		bestV, bestN := 0.0, -1
		for v, n := range votes {
			if n > bestN || (n == bestN && v < bestV) {
				bestV, bestN = v, n
			}
		}
		return bestV
	}
	var s float64
	for i := range m.Trees {
		s += m.Trees[i].Predict(row)
	}
	return s / float64(len(m.Trees))
}
