package algos

import "math"

// Column-major blocked scoring: the block forms of Predict/Assign used by
// in-database prediction (§5). Each function consumes a block of rows held
// column-major — cols[j][i] is feature j of row i — and writes one result
// per row into out. All of them are bit-identical to calling the row scorer
// row by row: the per-row floating-point operations execute in exactly the
// same order, only the loop nest is reorganized so inner loops stream down
// columns (the DimmWitted-style access pattern that decides main-memory
// throughput).

// PredictBlock is the block form of GLMModel.Predict. cols must hold
// len(Coefficients)-1 feature columns, each with at least len(out) rows.
func (m *GLMModel) PredictBlock(cols [][]float64, out []float64) {
	n := len(out)
	for i := range out {
		out[i] = m.Coefficients[0]
	}
	// Accumulate the linear response coefficient by coefficient: row i sees
	// additions in the same j order as the row scorer's dot product.
	for j, col := range cols {
		c := m.Coefficients[j+1]
		for i, v := range col[:n] {
			out[i] += c * v
		}
	}
	switch m.Family {
	case Binomial:
		for i, eta := range out {
			out[i] = 1 / (1 + math.Exp(-eta))
		}
	case Poisson:
		for i, eta := range out {
			out[i] = math.Exp(eta)
		}
	}
}

// AssignScratch holds the per-block distance buffers AssignBlock reuses, so
// steady-state assignment allocates nothing.
type AssignScratch struct {
	dd   []float64 // squared distance to the current center
	best []float64 // best squared distance so far
}

// AssignBlock is the block form of KmeansModel.Assign: nearest-center index
// per row. Ties resolve to the lowest center index, exactly like Assign's
// strict < comparison.
func (m *KmeansModel) AssignBlock(cols [][]float64, out []int64, sc *AssignScratch) {
	n := len(out)
	if cap(sc.dd) < n {
		sc.dd = make([]float64, n)
		sc.best = make([]float64, n)
	}
	dd, best := sc.dd[:n], sc.best[:n]
	for i := range out {
		out[i] = 0
		best[i] = math.Inf(1)
	}
	for k, c := range m.Centers {
		// Squared distance accumulated in feature order — the same addition
		// sequence as linalg.SqDist inside Assign.
		for i := range dd {
			dd[i] = 0
		}
		for j, col := range cols {
			cj := c[j]
			for i, v := range col[:n] {
				d := v - cj
				dd[i] += d * d
			}
		}
		for i, v := range dd {
			if v < best[i] {
				best[i] = v
				out[i] = int64(k)
			}
		}
	}
}

// predictAt walks the tree for row i of a column-major block; the float
// comparisons match Tree.Predict exactly.
func (t *Tree) predictAt(cols [][]float64, i int) float64 {
	n := 0
	for {
		nd := t.Nodes[n]
		if nd.Feature < 0 {
			return nd.Value
		}
		if cols[nd.Feature][i] <= nd.Split {
			n = nd.Left
		} else {
			n = nd.Right
		}
	}
}

// PredictBlock is the block form of ForestModel.Predict. Regression
// accumulates tree outputs tree by tree (the same summation order as the
// row scorer); classification takes the majority vote with the identical
// deterministic tie-break.
func (m *ForestModel) PredictBlock(cols [][]float64, out []float64) {
	n := len(out)
	if len(m.Trees) == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	if m.Classify {
		votes := map[float64]int{}
		for i := 0; i < n; i++ {
			clear(votes)
			for ti := range m.Trees {
				votes[math.Round(m.Trees[ti].predictAt(cols, i))]++
			}
			bestV, bestN := 0.0, -1
			for v, cnt := range votes {
				if cnt > bestN || (cnt == bestN && v < bestV) {
					bestV, bestN = v, cnt
				}
			}
			out[i] = bestV
		}
		return
	}
	for i := range out {
		out[i] = 0
	}
	for ti := range m.Trees {
		t := &m.Trees[ti]
		for i := 0; i < n; i++ {
			out[i] += t.predictAt(cols, i)
		}
	}
	nt := float64(len(m.Trees))
	for i := range out {
		out[i] /= nt
	}
}
