package algos

import (
	"math"
	"testing"
	"testing/quick"

	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/workload"
)

func cluster(t *testing.T, workers int) *dr.Cluster {
	t.Helper()
	c, err := dr.Start(dr.Config{Workers: workers, InstancesPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func toDArray(t *testing.T, c *dr.Cluster, rows [][]float64, nparts int) *darray.DArray {
	t.Helper()
	m := darray.NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	a, err := darray.FromMat(c, m, nparts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func vecToDArray(t *testing.T, c *dr.Cluster, vals []float64, nparts int) *darray.DArray {
	t.Helper()
	m := darray.NewMat(len(vals), 1)
	copy(m.Data, vals)
	a, err := darray.FromMat(c, m, nparts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestKmeansRecoversPlantedClusters(t *testing.T) {
	c := cluster(t, 3)
	data := workload.GenKmeans(1, 600, 4, 3, 0.2)
	x := toDArray(t, c, data.Points, 6)
	model, err := Kmeans(x, KmeansOpts{K: 3, Seed: 5, InitPlus: true, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Centers) != 3 {
		t.Fatalf("centers = %d", len(model.Centers))
	}
	if !model.Converged {
		t.Fatal("kmeans did not converge on easy data")
	}
	// Every planted center must be close to some fitted center.
	for _, pc := range data.Centers {
		best := math.Inf(1)
		for _, fc := range model.Centers {
			d := 0.0
			for j := range pc {
				d += (pc[j] - fc[j]) * (pc[j] - fc[j])
			}
			if d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 1.0 {
			t.Fatalf("planted center not recovered (dist %v)", math.Sqrt(best))
		}
	}
	// Assign maps points to their planted cluster consistently.
	agreement := map[[2]int]int{}
	for i, p := range data.Points {
		agreement[[2]int{data.Labels[i], model.Assign(p)}]++
	}
	// For each planted label, its dominant fitted label should cover ~all.
	byLabel := map[int]int{}
	dominant := map[int]int{}
	for k, n := range agreement {
		byLabel[k[0]] += n
		if n > dominant[k[0]] {
			dominant[k[0]] = n
		}
	}
	for l, total := range byLabel {
		if float64(dominant[l]) < 0.95*float64(total) {
			t.Fatalf("label %d poorly recovered: %d/%d", l, dominant[l], total)
		}
	}
}

func TestKmeansObjectiveMonotone(t *testing.T) {
	// Run with increasing MaxIter: the objective must not increase.
	c := cluster(t, 2)
	data := workload.GenKmeans(2, 300, 3, 4, 2.0)
	x := toDArray(t, c, data.Points, 4)
	var prev float64 = math.Inf(1)
	for _, iters := range []int{1, 2, 4, 8, 16} {
		m, err := Kmeans(x, KmeansOpts{K: 4, Seed: 9, MaxIter: iters})
		if err != nil {
			t.Fatal(err)
		}
		if m.Objective > prev*(1+1e-9) {
			t.Fatalf("objective increased: %v -> %v at iters=%d", prev, m.Objective, iters)
		}
		prev = m.Objective
	}
}

func TestKmeansValidation(t *testing.T) {
	c := cluster(t, 1)
	x := vecToDArray(t, c, []float64{1, 2}, 1)
	if _, err := Kmeans(x, KmeansOpts{K: 0}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := Kmeans(x, KmeansOpts{K: 5}); err == nil {
		t.Fatal("K > rows should fail")
	}
}

func TestKmeansRandomInit(t *testing.T) {
	c := cluster(t, 2)
	data := workload.GenKmeans(3, 200, 2, 2, 0.1)
	x := toDArray(t, c, data.Points, 3)
	m, err := Kmeans(x, KmeansOpts{K: 2, Seed: 4, InitPlus: false, MaxIter: 30})
	if err != nil || len(m.Centers) != 2 {
		t.Fatalf("random init: %v", err)
	}
}

func TestLMRecoversCoefficients(t *testing.T) {
	c := cluster(t, 3)
	data := workload.GenLinear(7, 4000, 5, 0.01)
	x := toDArray(t, c, data.X, 6)
	y := vecToDArray(t, c, data.Y, 6)
	// Co-partition: FromMat with same nparts and equal rows gives same
	// structure and placement.
	model, err := LM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Converged {
		t.Fatal("LM did not converge")
	}
	if model.Iterations > 2 {
		t.Fatalf("gaussian Newton-Raphson should converge in <=2 iterations, took %d", model.Iterations)
	}
	for i, b := range data.Beta {
		if math.Abs(model.Coefficients[i]-b) > 0.01 {
			t.Fatalf("coef %d = %v, want %v", i, model.Coefficients[i], b)
		}
	}
	// Prediction.
	pred := model.Predict(data.X[0])
	if math.Abs(pred-data.Y[0]) > 0.1 {
		t.Fatalf("prediction %v vs %v", pred, data.Y[0])
	}
}

func TestLogisticGLMRecoversCoefficients(t *testing.T) {
	c := cluster(t, 2)
	data := workload.GenLogistic(11, 20000, 3)
	x := toDArray(t, c, data.X, 4)
	y := vecToDArray(t, c, data.Y, 4)
	model, err := GLM(x, y, GLMOpts{Family: Binomial})
	if err != nil {
		t.Fatal(err)
	}
	if !model.Converged {
		t.Fatal("logistic GLM did not converge")
	}
	for i, b := range data.Beta {
		if math.Abs(model.Coefficients[i]-b) > 0.15 {
			t.Fatalf("coef %d = %v, want %v (+-0.15)", i, model.Coefficients[i], b)
		}
	}
	// Predicted probabilities are calibrated-ish: mean |p - y| < 0.5.
	var errSum float64
	for i := range data.X[:1000] {
		errSum += math.Abs(model.Predict(data.X[i]) - data.Y[i])
	}
	if errSum/1000 > 0.45 {
		t.Fatalf("poor classification error %v", errSum/1000)
	}
}

func TestPoissonGLM(t *testing.T) {
	c := cluster(t, 2)
	// y ~ Poisson(exp(0.5 + 0.8 x)) approximated with deterministic means.
	n := 5000
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := float64(i%100)/50 - 1
		xs[i] = []float64{xv}
		ys[i] = math.Round(math.Exp(0.5 + 0.8*xv))
	}
	x := toDArray(t, c, xs, 4)
	y := vecToDArray(t, c, ys, 4)
	model, err := GLM(x, y, GLMOpts{Family: Poisson})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Coefficients[1]-0.8) > 0.1 {
		t.Fatalf("poisson slope = %v", model.Coefficients[1])
	}
}

func TestGLMValidation(t *testing.T) {
	c := cluster(t, 2)
	x := toDArray(t, c, [][]float64{{1}, {2}}, 2)
	y2 := toDArray(t, c, [][]float64{{1, 2}, {2, 3}}, 2)
	if _, err := GLM(x, y2, GLMOpts{}); err == nil {
		t.Fatal("multi-column response should fail")
	}
	y := vecToDArray(t, c, []float64{1, 2}, 2)
	if _, err := GLM(x, y, GLMOpts{Family: "weird"}); err == nil {
		t.Fatal("unknown family should fail")
	}
	yBad := vecToDArray(t, c, []float64{1, 2, 3}, 3)
	if _, err := GLM(x, yBad, GLMOpts{}); err == nil {
		t.Fatal("non-co-partitioned arrays should fail")
	}
}

func TestGLMCollinearGivesRidgeFallback(t *testing.T) {
	c := cluster(t, 1)
	// Duplicate feature columns: singular normal equations.
	n := 100
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		v := float64(i)
		xs[i] = []float64{v, v}
		ys[i] = 2 * v
	}
	x := toDArray(t, c, xs, 1)
	y := vecToDArray(t, c, ys, 1)
	model, err := GLM(x, y, GLMOpts{Family: Gaussian})
	if err != nil {
		t.Fatalf("ridge fallback should rescue singular system: %v", err)
	}
	// Combined slope should reconstruct y.
	got := model.Predict([]float64{10, 10})
	if math.Abs(got-20) > 0.5 {
		t.Fatalf("collinear prediction %v", got)
	}
}

func TestCrossValidate(t *testing.T) {
	c := cluster(t, 2)
	data := workload.GenLinear(13, 2000, 3, 0.1)
	x := toDArray(t, c, data.X, 4)
	y := vecToDArray(t, c, data.Y, 4)
	res, err := CrossValidate(x, y, GLMOpts{Family: Gaussian}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 5 || len(res.FoldDeviance) != 5 {
		t.Fatalf("cv = %+v", res)
	}
	// Held-out deviance per row should reflect the small noise (~0.01 var),
	// far below the response variance.
	perRow := res.MeanDeviance / (2000 / 5)
	if perRow > 0.1 {
		t.Fatalf("cv deviance per row too high: %v", perRow)
	}
	if _, err := CrossValidate(x, y, GLMOpts{}, 1); err == nil {
		t.Fatal("folds < 2 should fail")
	}
}

func TestRandomForestRegression(t *testing.T) {
	c := cluster(t, 2)
	// y = step function of x0: easy for trees, hard for linear models.
	n := 2000
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i%200)/100 - 1
		xs[i] = []float64{v, float64(i % 7)}
		if v > 0 {
			ys[i] = 5
		} else {
			ys[i] = -5
		}
	}
	x := toDArray(t, c, xs, 4)
	y := vecToDArray(t, c, ys, 4)
	model, err := RandomForest(x, y, ForestOpts{Trees: 12, MaxDepth: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) != 12 {
		t.Fatalf("trees = %d", len(model.Trees))
	}
	if p := model.Predict([]float64{0.9, 0}); math.Abs(p-5) > 1 {
		t.Fatalf("forest predict(0.9) = %v", p)
	}
	if p := model.Predict([]float64{-0.9, 0}); math.Abs(p+5) > 1 {
		t.Fatalf("forest predict(-0.9) = %v", p)
	}
}

func TestRandomForestClassification(t *testing.T) {
	c := cluster(t, 2)
	data := workload.GenLogistic(17, 3000, 2)
	x := toDArray(t, c, data.X, 4)
	y := vecToDArray(t, c, data.Y, 4)
	model, err := RandomForest(x, y, ForestOpts{Trees: 16, MaxDepth: 6, Classify: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range data.X[:500] {
		if model.Predict(data.X[i]) == data.Y[i] {
			correct++
		}
	}
	if correct < 300 {
		t.Fatalf("forest classification accuracy %d/500", correct)
	}
}

func TestRandomForestValidation(t *testing.T) {
	c := cluster(t, 1)
	x := toDArray(t, c, [][]float64{{1}}, 1)
	y2 := toDArray(t, c, [][]float64{{1, 2}}, 1)
	if _, err := RandomForest(x, y2, ForestOpts{}); err == nil {
		t.Fatal("wide response should fail")
	}
}

// Property: LM on noiseless data recovers coefficients for random shapes.
func TestQuickLMExactRecovery(t *testing.T) {
	c := cluster(t, 2)
	f := func(seed int64) bool {
		d := int(uint(seed)%4) + 1
		data := workload.GenLinear(seed, 50*(d+2), d, 0)
		x := toDArray(t, c, data.X, 3)
		y := vecToDArray(t, c, data.Y, 3)
		model, err := LM(x, y)
		if err != nil {
			return false
		}
		for i, b := range data.Beta {
			if math.Abs(model.Coefficients[i]-b) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: K-means objective equals 0 when sigma=0 and K matches.
func TestQuickKmeansZeroNoise(t *testing.T) {
	c := cluster(t, 2)
	f := func(seed int64) bool {
		k := int(uint(seed)%3) + 2
		data := workload.GenKmeans(seed, 50*k, 3, k, 0)
		x := toDArray(t, c, data.Points, 4)
		m, err := Kmeans(x, KmeansOpts{K: k, Seed: seed, InitPlus: true, MaxIter: 60})
		if err != nil {
			return false
		}
		return m.Objective < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
