package algos

import (
	"math"
	"testing"

	"verticadr/internal/parallel"
	"verticadr/internal/workload"
)

// fitAtDegree fits one GLM with the process-wide parallel degree pinned.
func fitAtDegree(t *testing.T, deg int, fit func() (*GLMModel, error)) *GLMModel {
	t.Helper()
	parallel.SetDefaultDegree(deg)
	defer parallel.SetDefaultDegree(0)
	m, err := fit()
	if err != nil {
		t.Fatalf("degree %d: %v", deg, err)
	}
	return m
}

func modelsBitIdentical(t *testing.T, deg int, a, b *GLMModel) {
	t.Helper()
	if len(a.Coefficients) != len(b.Coefficients) {
		t.Fatalf("degree %d: coefficient count %d vs %d", deg, len(a.Coefficients), len(b.Coefficients))
	}
	for i := range a.Coefficients {
		if math.Float64bits(a.Coefficients[i]) != math.Float64bits(b.Coefficients[i]) {
			t.Fatalf("degree %d: coefficient %d bits differ: %x vs %x",
				deg, i, math.Float64bits(a.Coefficients[i]), math.Float64bits(b.Coefficients[i]))
		}
	}
	if math.Float64bits(a.Deviance) != math.Float64bits(b.Deviance) {
		t.Fatalf("degree %d: deviance bits differ: %v vs %v", deg, a.Deviance, b.Deviance)
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged {
		t.Fatalf("degree %d: convergence differs: %+v vs %+v", deg, a, b)
	}
}

// TestGLMBitIdenticalAcrossDegrees is the determinism property the parallel
// IRLS path promises: the same training data produces the same coefficient
// bits at every parallel degree, because chunk boundaries and the reduction
// tree depend only on the data layout.
func TestGLMBitIdenticalAcrossDegrees(t *testing.T) {
	c := cluster(t, 3)
	cases := []struct {
		name   string
		family Family
		fit    func() (*GLMModel, error)
	}{}
	lin := workload.GenLinear(21, 4000, 5, 0.05)
	lx := toDArray(t, c, lin.X, 6)
	ly := vecToDArray(t, c, lin.Y, 6)
	cases = append(cases, struct {
		name   string
		family Family
		fit    func() (*GLMModel, error)
	}{"gaussian", Gaussian, func() (*GLMModel, error) { return LM(lx, ly) }})
	log := workload.GenLogistic(22, 6000, 3)
	gx := toDArray(t, c, log.X, 6)
	gy := vecToDArray(t, c, log.Y, 6)
	cases = append(cases, struct {
		name   string
		family Family
		fit    func() (*GLMModel, error)
	}{"binomial", Binomial, func() (*GLMModel, error) {
		return GLM(gx, gy, GLMOpts{Family: Binomial})
	}})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := fitAtDegree(t, 1, tc.fit)
			for _, deg := range []int{2, 3, 4, 8} {
				for rep := 0; rep < 2; rep++ {
					got := fitAtDegree(t, deg, tc.fit)
					modelsBitIdentical(t, deg, want, got)
				}
			}
		})
	}
}

// TestGLMParallelMatchesGroundTruth re-checks accuracy on the parallel path:
// determinism alone would also hold for a deterministic wrong answer.
func TestGLMParallelMatchesGroundTruth(t *testing.T) {
	parallel.SetDefaultDegree(4)
	defer parallel.SetDefaultDegree(0)
	c := cluster(t, 3)
	data := workload.GenLinear(31, 4000, 5, 0.01)
	x := toDArray(t, c, data.X, 6)
	y := vecToDArray(t, c, data.Y, 6)
	model, err := LM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Converged {
		t.Fatal("parallel LM did not converge")
	}
	for i, b := range data.Beta {
		if math.Abs(model.Coefficients[i]-b) > 0.01 {
			t.Fatalf("coef %d = %v, want %v", i, model.Coefficients[i], b)
		}
	}
}

// TestCrossValidateDeterministicAcrossDegrees pins the fold deviances bitwise.
func TestCrossValidateDeterministicAcrossDegrees(t *testing.T) {
	c := cluster(t, 2)
	data := workload.GenLinear(41, 1500, 3, 0.1)
	x := toDArray(t, c, data.X, 4)
	y := vecToDArray(t, c, data.Y, 4)
	run := func(deg int) *CVResult {
		parallel.SetDefaultDegree(deg)
		defer parallel.SetDefaultDegree(0)
		res, err := CrossValidate(x, y, GLMOpts{Family: Gaussian}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, deg := range []int{2, 4} {
		got := run(deg)
		for f := range want.FoldDeviance {
			if math.Float64bits(want.FoldDeviance[f]) != math.Float64bits(got.FoldDeviance[f]) {
				t.Fatalf("degree %d fold %d: %v vs %v", deg, f, want.FoldDeviance[f], got.FoldDeviance[f])
			}
		}
		if math.Float64bits(want.MeanDeviance) != math.Float64bits(got.MeanDeviance) {
			t.Fatalf("degree %d mean deviance: %v vs %v", deg, want.MeanDeviance, got.MeanDeviance)
		}
	}
}
