package algos

import (
	"fmt"
	"math"

	"verticadr/internal/darray"
	"verticadr/internal/linalg"
	"verticadr/internal/parallel"
)

// Family selects the GLM response distribution and link, mirroring R's
// family=gaussian()/binomial(link=logit)/poisson(link=log).
type Family string

// Supported families.
const (
	Gaussian Family = "gaussian"
	Binomial Family = "binomial"
	Poisson  Family = "poisson"
)

// GLMModel is a fitted generalized linear model. Coefficients[0] is the
// intercept; the rest align with the feature columns of the training array.
type GLMModel struct {
	Family       Family
	Coefficients []float64
	Iterations   int
	Converged    bool
	Deviance     float64
}

// GLMOpts configures the Newton–Raphson solver.
type GLMOpts struct {
	Family  Family
	MaxIter int     // default 25
	Tol     float64 // relative coefficient-change threshold (default 1e-8)
	Ridge   float64 // optional L2 stabilizer on the normal equations
}

// GLM fits a generalized linear model on co-partitioned X (features) and Y
// (response, one column) using distributed Newton–Raphson / IRLS: each
// iteration, every partition computes its local XᵀWX and XᵀWz against the
// broadcast coefficient vector; the master reduces the partials and solves
// the (p+1)×(p+1) system with Cholesky. This is hpdglm; with Family ==
// Gaussian it is exact linear regression and converges in one step (the
// paper observes 2 iterations to convergence in Fig. 19 because the second
// confirms the first).
func GLM(x, y *darray.DArray, opts GLMOpts) (*GLMModel, error) {
	if err := darray.CheckCoPartitioned(x, y); err != nil {
		return nil, err
	}
	if y.Cols() != 1 {
		return nil, fmt.Errorf("algos: glm response must have one column, got %d", y.Cols())
	}
	switch opts.Family {
	case Gaussian, Binomial, Poisson:
	case "":
		opts.Family = Gaussian
	default:
		return nil, fmt.Errorf("algos: unknown family %q", opts.Family)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 25
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	p := x.Cols() + 1 // intercept
	chunks, err := glmChunks(x, y)
	if err != nil {
		return nil, err
	}
	pool := parallel.Default()
	beta := make([]float64, p)
	model := &GLMModel{Family: opts.Family}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Every chunk computes its local XᵀWX (upper triangle), XᵀWz, and
		// deviance against the broadcast beta; partials fold through the
		// deterministic reduction tree, so the accumulation order — and hence
		// every float bit of the solve — is fixed regardless of degree.
		part, err := parallel.Reduce(pool, len(chunks),
			func(ci int) (*irlsPartial, error) {
				c := chunks[ci]
				lp := newIRLSPartial(p)
				xi := make([]float64, p)
				xi[0] = 1
				for r := c.lo; r < c.hi; r++ {
					copy(xi[1:], c.mx.Row(r))
					eta := linalg.Dot(xi, beta)
					yv := c.my.At(r, 0)
					_, w, z, d := irlsTerms(opts.Family, eta, yv)
					lp.dev += d
					for a := 0; a < p; a++ {
						wxa := w * xi[a]
						lp.xtwz[a] += wxa * z
						rowA := lp.xtwx.Row(a)
						for b := a; b < p; b++ {
							rowA[b] += wxa * xi[b]
						}
					}
				}
				return lp, nil
			},
			mergeIRLSPartials)
		if err != nil {
			return nil, err
		}
		if part == nil { // zero training rows
			part = newIRLSPartial(p)
		}
		xtwx, xtwz, dev := part.xtwx, part.xtwz, part.dev
		// Mirror the upper triangle and solve.
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				xtwx.Set(b, a, xtwx.At(a, b))
			}
		}
		if opts.Ridge > 0 {
			xtwx.AddRidge(opts.Ridge)
		}
		newBeta, err := linalg.CholeskySolve(xtwx, xtwz)
		if err != nil {
			// One stabilization retry with a small ridge.
			xtwx.AddRidge(1e-8)
			newBeta, err = linalg.CholeskySolve(xtwx, xtwz)
			if err != nil {
				return nil, fmt.Errorf("algos: glm normal equations singular: %w", err)
			}
		}
		var change, scale float64
		for i := range beta {
			change += (newBeta[i] - beta[i]) * (newBeta[i] - beta[i])
			scale += newBeta[i] * newBeta[i]
		}
		beta = newBeta
		model.Iterations = iter + 1
		model.Deviance = dev
		if change <= opts.Tol*(scale+1e-12) {
			model.Converged = true
			break
		}
	}
	model.Coefficients = beta
	return model, nil
}

// glmChunkRows is the fixed IRLS accumulation chunk size. Chunk boundaries
// are a function of the partition layout alone — never the parallel degree —
// so coefficient bits are reproducible at every degree.
const glmChunkRows = 2048

// glmChunk is one contiguous row range of one co-partitioned (X, Y) part.
type glmChunk struct {
	mx, my *darray.Mat
	lo, hi int
}

// glmChunks materializes the co-partitioned parts once (in partition order)
// and slices each into fixed-size row chunks.
func glmChunks(x, y *darray.DArray) ([]glmChunk, error) {
	type pair struct{ mx, my *darray.Mat }
	parts := make([]pair, x.NPartitions())
	err := darray.Zip(x, y, func(i int, mx, my *darray.Mat) error {
		parts[i] = pair{mx, my}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var chunks []glmChunk
	for _, pt := range parts {
		if pt.mx == nil {
			continue
		}
		for lo := 0; lo < pt.mx.Rows; lo += glmChunkRows {
			hi := lo + glmChunkRows
			if hi > pt.mx.Rows {
				hi = pt.mx.Rows
			}
			chunks = append(chunks, glmChunk{mx: pt.mx, my: pt.my, lo: lo, hi: hi})
		}
	}
	return chunks, nil
}

// irlsPartial is one chunk's contribution to the normal equations: the upper
// triangle of XᵀWX, the XᵀWz vector, and the deviance.
type irlsPartial struct {
	xtwx *linalg.Matrix
	xtwz []float64
	dev  float64
}

func newIRLSPartial(p int) *irlsPartial {
	return &irlsPartial{xtwx: linalg.NewMatrix(p, p), xtwz: make([]float64, p)}
}

func mergeIRLSPartials(a, b *irlsPartial) (*irlsPartial, error) {
	a.dev += b.dev
	p := len(a.xtwz)
	for i := 0; i < p; i++ {
		a.xtwz[i] += b.xtwz[i]
		ra, rb := a.xtwx.Row(i), b.xtwx.Row(i)
		for j := i; j < p; j++ {
			ra[j] += rb[j]
		}
	}
	return a, nil
}

// irlsTerms returns (mean, weight, working response contribution, deviance
// contribution) for one observation at linear predictor eta. The working
// response is folded into z = w*eta + (y-mu)*dmu_deta ... here we return the
// value z' such that XᵀW z' accumulates correctly: z' = eta + (y-mu)/mu'(eta)
// and the caller multiplies by w.
func irlsTerms(f Family, eta, y float64) (mu, w, z, dev float64) {
	switch f {
	case Gaussian:
		mu = eta
		w = 1
		z = y // working response equals y; solving gives OLS directly
		dev = (y - mu) * (y - mu)
	case Binomial:
		// Clamp eta to avoid overflow; mu in (0,1).
		e := eta
		if e > 30 {
			e = 30
		} else if e < -30 {
			e = -30
		}
		mu = 1 / (1 + math.Exp(-e))
		v := mu * (1 - mu)
		if v < 1e-10 {
			v = 1e-10
		}
		w = v
		z = eta + (y-mu)/v
		dev += binDev(y, mu)
	case Poisson:
		e := eta
		if e > 30 {
			e = 30
		}
		mu = math.Exp(e)
		if mu < 1e-10 {
			mu = 1e-10
		}
		w = mu
		z = eta + (y-mu)/mu
		dev += poisDev(y, mu)
	}
	return mu, w, z, dev
}

func binDev(y, mu float64) float64 {
	d := 0.0
	if y > 0 {
		d += y * math.Log(y/mu)
	}
	if y < 1 {
		d += (1 - y) * math.Log((1-y)/(1-mu))
	}
	return 2 * d
}

func poisDev(y, mu float64) float64 {
	if y > 0 {
		return 2 * (y*math.Log(y/mu) - (y - mu))
	}
	return 2 * mu
}

// Predict applies the model to one feature row (without intercept column).
// For Binomial the returned value is the probability of class 1; for
// Poisson the expected count; for Gaussian the linear response.
func (m *GLMModel) Predict(row []float64) float64 {
	eta := m.Coefficients[0]
	for j, v := range row {
		eta += m.Coefficients[j+1] * v
	}
	switch m.Family {
	case Binomial:
		return 1 / (1 + math.Exp(-eta))
	case Poisson:
		return math.Exp(eta)
	default:
		return eta
	}
}

// LM fits ordinary least squares via the Gaussian GLM path (Newton–Raphson
// converges in one solve). This is the Distributed R regression of §7.3.1.
func LM(x, y *darray.DArray) (*GLMModel, error) {
	return GLM(x, y, GLMOpts{Family: Gaussian})
}

// CVResult is one fold's held-out deviance plus the aggregate.
type CVResult struct {
	Folds        int
	FoldDeviance []float64
	MeanDeviance float64
}

// CrossValidate runs k-fold cross-validation of a GLM (cv.hpdglm, Fig. 3
// line 7). Folds are formed by striding rows within every partition so each
// fold spans all workers. Models are trained on k-1 folds (via per-partition
// row masks) and scored on the held-out fold.
func CrossValidate(x, y *darray.DArray, opts GLMOpts, folds int) (*CVResult, error) {
	if folds < 2 {
		return nil, fmt.Errorf("algos: cross-validation needs >= 2 folds")
	}
	if err := darray.CheckCoPartitioned(x, y); err != nil {
		return nil, err
	}
	res := &CVResult{Folds: folds}
	for f := 0; f < folds; f++ {
		trainX, trainY, testX, testY, err := splitFold(x, y, folds, f)
		if err != nil {
			return nil, err
		}
		model, err := GLM(trainX, trainY, opts)
		if err != nil {
			return nil, fmt.Errorf("algos: cv fold %d: %w", f, err)
		}
		// Per-partition deviances land in an index-addressed slice and sum in
		// partition order, keeping the score deterministic under concurrency.
		partDev := make([]float64, testX.NPartitions())
		err = darray.Zip(testX, testY, func(i int, mx, my *darray.Mat) error {
			var local float64
			for r := 0; r < mx.Rows; r++ {
				eta := model.Coefficients[0]
				row := mx.Row(r)
				for j, v := range row {
					eta += model.Coefficients[j+1] * v
				}
				_, _, _, d := irlsTerms(model.Family, eta, my.At(r, 0))
				local += d
			}
			partDev[i] = local
			return nil
		})
		if err != nil {
			return nil, err
		}
		var dev float64
		for _, d := range partDev {
			dev += d
		}
		res.FoldDeviance = append(res.FoldDeviance, dev)
		res.MeanDeviance += dev / float64(folds)
	}
	return res, nil
}

// splitFold builds train/test arrays for fold f by striding rows modulo
// folds inside each partition, preserving co-partitioning.
func splitFold(x, y *darray.DArray, folds, f int) (tx, ty, sx, sy *darray.DArray, err error) {
	nparts := x.NPartitions()
	mk := func() (*darray.DArray, error) {
		a, err := darray.New(x.Cluster(), nparts)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nparts; i++ {
			if err := a.SetWorker(i, x.WorkerOf(i)); err != nil {
				return nil, err
			}
		}
		return a, nil
	}
	if tx, err = mk(); err != nil {
		return
	}
	if ty, err = mk(); err != nil {
		return
	}
	if sx, err = mk(); err != nil {
		return
	}
	if sy, err = mk(); err != nil {
		return
	}
	for i := 0; i < nparts; i++ {
		mx, err2 := x.Part(i)
		if err2 != nil {
			return nil, nil, nil, nil, err2
		}
		my, err2 := y.Part(i)
		if err2 != nil {
			return nil, nil, nil, nil, err2
		}
		var trIdx, teIdx []int
		for r := 0; r < mx.Rows; r++ {
			if r%folds == f {
				teIdx = append(teIdx, r)
			} else {
				trIdx = append(trIdx, r)
			}
		}
		gather := func(m *darray.Mat, idx []int) *darray.Mat {
			out := darray.NewMat(len(idx), m.Cols)
			for oi, r := range idx {
				copy(out.Row(oi), m.Row(r))
			}
			return out
		}
		if err2 := tx.Fill(i, gather(mx, trIdx)); err2 != nil {
			return nil, nil, nil, nil, err2
		}
		if err2 := ty.Fill(i, gather(my, trIdx)); err2 != nil {
			return nil, nil, nil, nil, err2
		}
		if err2 := sx.Fill(i, gather(mx, teIdx)); err2 != nil {
			return nil, nil, nil, nil, err2
		}
		if err2 := sy.Fill(i, gather(my, teIdx)); err2 != nil {
			return nil, nil, nil, nil, err2
		}
	}
	return tx, ty, sx, sy, nil
}
