package algos

import (
	"math"
	"math/rand"
	"testing"
)

// blockOf lays rows out column-major: cols[j][i] = rows[i][j].
func blockOf(rows [][]float64, dims int) [][]float64 {
	cols := make([][]float64, dims)
	for j := range cols {
		cols[j] = make([]float64, len(rows))
		for i, r := range rows {
			cols[j][i] = r[j]
		}
	}
	return cols
}

// randRows draws n rows of d features from a seeded generator, mixing
// magnitudes and signs so float addition order actually matters.
func randRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
	return rows
}

func TestGLMPredictBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fam := range []Family{Gaussian, Binomial, Poisson} {
		m := &GLMModel{
			Family:       fam,
			Coefficients: []float64{0.37, 1.25, -2.5, 0.001, 17},
		}
		d := len(m.Coefficients) - 1
		rows := randRows(rng, 513, d) // odd size: exercises a ragged tail
		cols := blockOf(rows, d)
		out := make([]float64, len(rows))
		m.PredictBlock(cols, out)
		for i, r := range rows {
			want := m.Predict(r)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("family %v row %d: block %x vs row %x", fam, i,
					math.Float64bits(out[i]), math.Float64bits(want))
			}
		}
	}
}

func TestKmeansAssignBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &KmeansModel{Centers: [][]float64{
		{0, 0, 0},
		{1.5, -2, 1e3},
		{1.5, -2, 1e3}, // duplicate center: ties must go to the lower index
		{-7, 0.25, 3},
	}}
	rows := randRows(rng, 700, 3)
	// Plant exact-center rows so ties actually occur.
	rows[13] = []float64{1.5, -2, 1e3}
	rows[500] = []float64{0, 0, 0}
	cols := blockOf(rows, 3)
	out := make([]int64, len(rows))
	var sc AssignScratch
	m.AssignBlock(cols, out, &sc)
	for i, r := range rows {
		if want := m.Assign(r); out[i] != int64(want) {
			t.Fatalf("row %d: AssignBlock %d vs Assign %d", i, out[i], want)
		}
	}
	if out[13] != 1 {
		t.Fatalf("duplicate-center tie resolved to %d, want 1", out[13])
	}
	// A second block through the same scratch must not carry state over.
	m.AssignBlock(cols, out, &sc)
	for i, r := range rows {
		if want := m.Assign(r); out[i] != int64(want) {
			t.Fatalf("scratch reuse: row %d: %d vs %d", i, out[i], want)
		}
	}
}

// randTree grows a random but valid flat tree over d features.
func randTree(rng *rand.Rand, d, depth int) Tree {
	var t Tree
	var grow func(level int) int
	grow = func(level int) int {
		idx := len(t.Nodes)
		if level >= depth || rng.Float64() < 0.3 {
			t.Nodes = append(t.Nodes, TreeNode{Feature: -1, Value: float64(rng.Intn(5))})
			return idx
		}
		t.Nodes = append(t.Nodes, TreeNode{
			Feature: rng.Intn(d),
			Split:   (rng.Float64() - 0.5) * 4,
		})
		t.Nodes[idx].Left = grow(level + 1)
		t.Nodes[idx].Right = grow(level + 1)
		return idx
	}
	grow(0)
	return t
}

func TestForestPredictBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 4
	trees := make([]Tree, 9)
	for i := range trees {
		trees[i] = randTree(rng, d, 5)
	}
	rows := randRows(rng, 400, d)
	cols := blockOf(rows, d)
	out := make([]float64, len(rows))

	for _, classify := range []bool{false, true} {
		m := &ForestModel{Trees: trees, Classify: classify, Features: d}
		m.PredictBlock(cols, out)
		for i, r := range rows {
			want := m.Predict(r)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("classify=%v row %d: block %v vs row %v", classify, i, out[i], want)
			}
		}
	}

	empty := &ForestModel{Features: d}
	m2out := make([]float64, 3)
	for i := range m2out {
		m2out[i] = 99
	}
	empty.PredictBlock(cols, m2out)
	for i, v := range m2out {
		if v != empty.Predict(rows[i]) {
			t.Fatalf("empty forest row %d: %v", i, v)
		}
	}
}
