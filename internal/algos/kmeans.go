// Package algos implements the parallel machine-learning algorithms of
// HP Distributed R used throughout the paper's evaluation: distributed
// K-means clustering (hpdkmeans), generalized linear models via
// Newton–Raphson / iteratively reweighted least squares (hpdglm — the paper
// notes Distributed R fits regressions with Newton–Raphson where stock R
// uses matrix decomposition, §7.3.1), plain linear regression, k-fold
// cross-validation (cv.hpdglm) and a bagged random forest. All algorithms
// operate on the distributed arrays of internal/darray: each iteration maps
// over partitions on their owning workers and reduces partial statistics at
// the master.
package algos

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"verticadr/internal/darray"
	"verticadr/internal/linalg"
)

// KmeansModel is a fitted clustering model: the final centers (what the
// paper stores in the database for KmeansPredict, §5).
type KmeansModel struct {
	K          int
	Centers    [][]float64
	Iterations int
	Objective  float64 // final within-cluster sum of squares
	Converged  bool
}

// KmeansOpts configures the solver.
type KmeansOpts struct {
	K        int
	MaxIter  int     // default 20
	Tol      float64 // center-movement convergence threshold (default 1e-4)
	Seed     int64
	InitPlus bool // k-means++ initialization instead of random rows
}

// Kmeans runs distributed Lloyd's iterations over a row-partitioned array.
// Per iteration every partition computes, on its worker, partial sums and
// counts per center against a broadcast copy of the centers; the master
// reduces partials and recomputes centers — one logical round trip per
// iteration, exactly the communication structure of the paper's hpdkmeans.
func Kmeans(x *darray.DArray, opts KmeansOpts) (*KmeansModel, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("algos: kmeans needs K >= 1")
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 20
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-4
	}
	d := x.Cols()
	n := x.Rows()
	if n < opts.K {
		return nil, fmt.Errorf("algos: kmeans with %d rows < K=%d", n, opts.K)
	}
	centers, err := initCenters(x, opts)
	if err != nil {
		return nil, err
	}
	model := &KmeansModel{K: opts.K}
	for iter := 0; iter < opts.MaxIter; iter++ {
		sums := make([][]float64, opts.K)
		counts := make([]int, opts.K)
		var objective float64
		var mu sync.Mutex
		for k := range sums {
			sums[k] = make([]float64, d)
		}
		err := x.Foreach(func(_ int, m *darray.Mat) error {
			localSums := make([][]float64, opts.K)
			for k := range localSums {
				localSums[k] = make([]float64, d)
			}
			localCounts := make([]int, opts.K)
			var localObj float64
			for r := 0; r < m.Rows; r++ {
				row := m.Row(r)
				best, bestD := 0, math.Inf(1)
				for k, c := range centers {
					dd := linalg.SqDist(row, c)
					if dd < bestD {
						best, bestD = k, dd
					}
				}
				localCounts[best]++
				localObj += bestD
				s := localSums[best]
				for j, v := range row {
					s[j] += v
				}
			}
			mu.Lock()
			defer mu.Unlock()
			objective += localObj
			for k := range sums {
				counts[k] += localCounts[k]
				for j := range sums[k] {
					sums[k][j] += localSums[k][j]
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Recompute centers; empty clusters keep their previous center.
		var moved float64
		newCenters := make([][]float64, opts.K)
		for k := range newCenters {
			nc := make([]float64, d)
			if counts[k] == 0 {
				copy(nc, centers[k])
			} else {
				for j := range nc {
					nc[j] = sums[k][j] / float64(counts[k])
				}
			}
			moved += linalg.SqDist(nc, centers[k])
			newCenters[k] = nc
		}
		centers = newCenters
		model.Iterations = iter + 1
		model.Objective = objective
		if math.Sqrt(moved) < opts.Tol {
			model.Converged = true
			break
		}
	}
	model.Centers = centers
	return model, nil
}

// initCenters picks initial centers: random distinct rows, or k-means++
// (sampling proportional to squared distance from chosen centers).
func initCenters(x *darray.DArray, opts KmeansOpts) ([][]float64, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	sizes := x.PartitionSizes()
	// Global row index -> (partition, local row).
	locate := func(g int) (int, int) {
		for p, s := range sizes {
			if g < s[0] {
				return p, g
			}
			g -= s[0]
		}
		return len(sizes) - 1, sizes[len(sizes)-1][0] - 1
	}
	fetchRow := func(g int) ([]float64, error) {
		p, r := locate(g)
		m, err := x.Part(p)
		if err != nil {
			return nil, err
		}
		out := make([]float64, m.Cols)
		copy(out, m.Row(r))
		return out, nil
	}
	n := x.Rows()
	centers := make([][]float64, 0, opts.K)
	first, err := fetchRow(rng.Intn(n))
	if err != nil {
		return nil, err
	}
	centers = append(centers, first)
	if !opts.InitPlus {
		seen := map[int]bool{}
		for len(centers) < opts.K {
			g := rng.Intn(n)
			if seen[g] {
				continue
			}
			seen[g] = true
			row, err := fetchRow(g)
			if err != nil {
				return nil, err
			}
			centers = append(centers, row)
		}
		return centers, nil
	}
	// k-means++: weights computed distributedly per candidate round.
	for len(centers) < opts.K {
		// Compute D²(x) for every row (distributed), then sample one row
		// with probability proportional to D².
		var mu sync.Mutex
		partWeights := make([]float64, len(sizes))
		partDists := make([][]float64, len(sizes))
		err := x.Foreach(func(p int, m *darray.Mat) error {
			ds := make([]float64, m.Rows)
			var total float64
			for r := 0; r < m.Rows; r++ {
				row := m.Row(r)
				best := math.Inf(1)
				for _, c := range centers {
					if dd := linalg.SqDist(row, c); dd < best {
						best = dd
					}
				}
				ds[r] = best
				total += best
			}
			mu.Lock()
			partWeights[p] = total
			partDists[p] = ds
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		var grand float64
		for _, w := range partWeights {
			grand += w
		}
		if grand == 0 {
			// All points coincide with centers; fall back to random rows.
			row, err := fetchRow(rng.Intn(n))
			if err != nil {
				return nil, err
			}
			centers = append(centers, row)
			continue
		}
		target := rng.Float64() * grand
		chosenPart, chosenRow := len(sizes)-1, 0
		for p, w := range partWeights {
			if target < w {
				chosenPart = p
				for r, dd := range partDists[p] {
					if target < dd {
						chosenRow = r
						break
					}
					target -= dd
					chosenRow = r
				}
				break
			}
			target -= w
		}
		m, err := x.Part(chosenPart)
		if err != nil {
			return nil, err
		}
		row := make([]float64, m.Cols)
		copy(row, m.Row(chosenRow))
		centers = append(centers, row)
	}
	return centers, nil
}

// Assign returns the nearest-center index for a single point.
func (m *KmeansModel) Assign(row []float64) int {
	best, bestD := 0, math.Inf(1)
	for k, c := range m.Centers {
		if dd := linalg.SqDist(row, c); dd < bestD {
			best, bestD = k, dd
		}
	}
	return best
}
