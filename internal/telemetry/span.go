package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanLog collects spans under one Clock. Spans form trees via parent links;
// StartSpan opens a root, Span.StartChild opens a nested span. The log keeps
// every started span (bounded workloads; callers Reset between runs).
type SpanLog struct {
	mu      sync.Mutex
	clock   Clock
	clockFn func() Clock // when set, consulted on every read (registry-owned logs)
	nextID  int64
	spans   []*Span
}

// NewSpanLog creates a span log on the given clock (nil = wall clock).
func NewSpanLog(c Clock) *SpanLog {
	if c == nil {
		c = WallClock()
	}
	return &SpanLog{clock: c}
}

func (l *SpanLog) now() time.Duration {
	if l.clockFn != nil {
		return l.clockFn().Now()
	}
	return l.clock.Now()
}

// Span is one timed region with attributes. End it exactly once.
type Span struct {
	log    *SpanLog
	id     int64
	parent int64 // 0 = root
	name   string
	start  time.Duration
	end    time.Duration
	ended  bool
	attrs  []Label
}

// StartSpan opens a root span.
func (l *SpanLog) StartSpan(name string, attrs ...Label) *Span {
	return l.start(name, 0, attrs)
}

func (l *SpanLog) start(name string, parent int64, attrs []Label) *Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	s := &Span{
		log:    l,
		id:     l.nextID,
		parent: parent,
		name:   name,
		start:  l.now(),
		attrs:  append([]Label(nil), attrs...),
	}
	l.spans = append(l.spans, s)
	return s
}

// StartChild opens a span nested under s.
func (s *Span) StartChild(name string, attrs ...Label) *Span {
	return s.log.start(name, s.id, attrs)
}

// SetAttr adds (or overwrites) one attribute.
func (s *Span) SetAttr(key, value string) {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// End closes the span and returns its duration. Ending twice keeps the first
// end time.
func (s *Span) End() time.Duration {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	if !s.ended {
		s.end = s.log.now()
		s.ended = true
	}
	return s.end - s.start
}

// Duration returns end-start for ended spans, elapsed-so-far otherwise.
func (s *Span) Duration() time.Duration {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	if s.ended {
		return s.end - s.start
	}
	return s.log.now() - s.start
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// SpanRecord is an exported span.
type SpanRecord struct {
	ID       int64         `json:"id"`
	Parent   int64         `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	End      time.Duration `json:"end_ns"`
	Duration time.Duration `json:"duration_ns"`
	Ended    bool          `json:"ended"`
	Attrs    []Label       `json:"attrs,omitempty"`
}

// Export returns all spans in start order.
func (l *SpanLog) Export() []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SpanRecord, len(l.spans))
	for i, s := range l.spans {
		end := s.end
		if !s.ended {
			end = l.now()
		}
		out[i] = SpanRecord{
			ID: s.id, Parent: s.parent, Name: s.name,
			Start: s.start, End: end, Duration: end - s.start, Ended: s.ended,
			Attrs: append([]Label(nil), s.attrs...),
		}
	}
	return out
}

// ExportJSON marshals Export as indented JSON.
func (l *SpanLog) ExportJSON() ([]byte, error) {
	return json.MarshalIndent(l.Export(), "", "  ")
}

// Reset drops all recorded spans.
func (l *SpanLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spans = nil
	l.nextID = 0
}

// String renders the span forest indented by depth, with durations and
// attributes — the human-readable trace view.
func (l *SpanLog) String() string {
	recs := l.Export()
	children := map[int64][]SpanRecord{}
	for _, r := range recs {
		children[r.Parent] = append(children[r.Parent], r)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool {
			if c[i].Start != c[j].Start {
				return c[i].Start < c[j].Start
			}
			return c[i].ID < c[j].ID
		})
	}
	var sb strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, r := range children[parent] {
			fmt.Fprintf(&sb, "%s%s %v", strings.Repeat("  ", depth), r.Name, r.Duration)
			for _, a := range r.Attrs {
				fmt.Fprintf(&sb, " %s=%s", a.Key, a.Value)
			}
			if !r.Ended {
				sb.WriteString(" (open)")
			}
			sb.WriteByte('\n')
			walk(r.ID, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}
