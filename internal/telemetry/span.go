package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCapacity bounds how many spans a SpanLog retains. A long-running
// server records spans for every traced query; the log keeps the most recent
// DefaultSpanCapacity of them in a ring buffer and counts the rest in
// Dropped() (surfaced as the telemetry_spans_dropped counter on registry
// logs). Benches and tests that need exact retention call Reset between runs,
// exactly as before.
const DefaultSpanCapacity = 8192

// SpanLog collects spans under one Clock. Spans form trees via parent links
// and share a trace ID: StartSpan opens a root (new trace), Span.StartChild
// opens a nested span, and StartSpanRemote continues a trace started in
// another process (the serving protocol carries trace/parent IDs in each
// request). Retention is a bounded ring buffer: the oldest spans are dropped
// once capacity is exceeded, so an always-on server never grows without
// bound.
type SpanLog struct {
	mu        sync.Mutex
	clock     Clock
	clockFn   func() Clock // when set, consulted on every read (registry-owned logs)
	nextID    int64
	nextTrace int64
	capacity  int
	ring      []*Span // ring buffer: oldest at head
	head      int
	size      int
	dropped   atomic.Int64
	droppedC  *Counter // optional mirror into a registry counter
}

// NewSpanLog creates a span log on the given clock (nil = wall clock) with
// the default retention capacity.
func NewSpanLog(c Clock) *SpanLog {
	if c == nil {
		c = WallClock()
	}
	return &SpanLog{clock: c, capacity: DefaultSpanCapacity}
}

// SetCapacity resizes the retention bound (minimum 1). Retained spans are
// kept up to the new capacity, newest first.
func (l *SpanLog) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	spans := l.snapshotLocked()
	if len(spans) > n {
		l.dropLocked(int64(len(spans) - n))
		spans = spans[len(spans)-n:]
	}
	l.capacity = n
	l.ring = make([]*Span, 0, n)
	l.ring = append(l.ring, spans...)
	l.head = 0
	l.size = len(spans)
}

// Dropped reports how many spans the ring buffer has evicted since the last
// Reset.
func (l *SpanLog) Dropped() int64 { return l.dropped.Load() }

// Len reports how many spans are currently retained.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

func (l *SpanLog) now() time.Duration {
	if l.clockFn != nil {
		return l.clockFn().Now()
	}
	return l.clock.Now()
}

func (l *SpanLog) dropLocked(n int64) {
	l.dropped.Add(n)
	if l.droppedC != nil {
		l.droppedC.Add(n)
	}
}

// snapshotLocked returns retained spans oldest-first. Callers hold l.mu.
func (l *SpanLog) snapshotLocked() []*Span {
	out := make([]*Span, 0, l.size)
	for i := 0; i < l.size; i++ {
		out = append(out, l.ring[(l.head+i)%len(l.ring)])
	}
	return out
}

func (l *SpanLog) appendLocked(s *Span) {
	if l.capacity < 1 {
		l.capacity = DefaultSpanCapacity
	}
	if len(l.ring) < l.capacity {
		// Still growing toward capacity.
		l.ring = append(l.ring, s)
		l.size++
		return
	}
	if l.size < len(l.ring) {
		l.ring[(l.head+l.size)%len(l.ring)] = s
		l.size++
		return
	}
	// Full: overwrite the oldest.
	l.ring[l.head] = s
	l.head = (l.head + 1) % len(l.ring)
	l.dropLocked(1)
}

// Span is one timed region with attributes. End it exactly once. All methods
// are nil-receiver-safe, so instrumentation can call StartChild/SetAttr/End
// unconditionally and pay nothing when tracing is off.
type Span struct {
	log    *SpanLog
	id     int64
	trace  int64
	parent int64 // 0 = root
	name   string
	start  time.Duration
	end    time.Duration
	ended  bool
	attrs  []Label
}

// StartSpan opens a root span, beginning a new trace.
func (l *SpanLog) StartSpan(name string, attrs ...Label) *Span {
	return l.start(name, 0, 0, attrs)
}

// StartSpanRemote opens a span continuing a trace begun elsewhere: the span
// joins the given trace with the given remote parent span ID. This is the
// server half of wire-level trace propagation — the client sends its trace
// and span IDs with the request, and the server's spans attach under them.
func (l *SpanLog) StartSpanRemote(name string, trace, parent int64, attrs ...Label) *Span {
	return l.start(name, trace, parent, attrs)
}

func (l *SpanLog) start(name string, trace, parent int64, attrs []Label) *Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	if trace == 0 {
		l.nextTrace++
		trace = l.nextTrace
	}
	s := &Span{
		log:    l,
		id:     l.nextID,
		trace:  trace,
		parent: parent,
		name:   name,
		start:  l.now(),
		attrs:  append([]Label(nil), attrs...),
	}
	l.appendLocked(s)
	return s
}

// StartChild opens a span nested under s (same trace). Nil-safe: a nil
// receiver returns nil, so an untraced call chain costs nothing.
func (s *Span) StartChild(name string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	return s.log.start(name, s.trace, s.id, attrs)
}

// SetAttr adds (or overwrites) one attribute. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// End closes the span and returns its duration. Ending twice keeps the first
// end time. Nil-safe.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	if !s.ended {
		s.end = s.log.now()
		s.ended = true
	}
	return s.end - s.start
}

// Duration returns end-start for ended spans, elapsed-so-far otherwise.
// Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	if s.ended {
		return s.end - s.start
	}
	return s.log.now() - s.start
}

// Name returns the span name (empty for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's ID within its log (0 for nil).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the trace the span belongs to (0 for nil).
func (s *Span) TraceID() int64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// FormatID renders a trace or span ID for the wire (lowercase hex).
func FormatID(id int64) string { return strconv.FormatUint(uint64(id), 16) }

// ParseID parses a wire-format trace or span ID; empty or malformed input
// yields 0 (tracing disabled for the request).
func ParseID(s string) int64 {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return int64(v)
}

// SpanRecord is an exported span.
type SpanRecord struct {
	ID       int64         `json:"id"`
	Trace    string        `json:"trace"`
	Parent   int64         `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	End      time.Duration `json:"end_ns"`
	Duration time.Duration `json:"duration_ns"`
	Ended    bool          `json:"ended"`
	Attrs    []Label       `json:"attrs,omitempty"`
}

// Export returns all retained spans in start order.
func (l *SpanLog) Export() []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	spans := l.snapshotLocked()
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		end := s.end
		if !s.ended {
			end = l.now()
		}
		out[i] = SpanRecord{
			ID: s.id, Trace: FormatID(s.trace), Parent: s.parent, Name: s.name,
			Start: s.start, End: end, Duration: end - s.start, Ended: s.ended,
			Attrs: append([]Label(nil), s.attrs...),
		}
	}
	return out
}

// ExportJSON marshals Export as indented JSON.
func (l *SpanLog) ExportJSON() ([]byte, error) {
	return json.MarshalIndent(l.Export(), "", "  ")
}

// TraceRecord is one trace's retained spans, in start order.
type TraceRecord struct {
	Trace string       `json:"trace"`
	Spans []SpanRecord `json:"spans"`
}

// Traces groups the retained spans by trace ID and returns the most recent n
// traces (by first retained span start), oldest first. n <= 0 means all.
func (l *SpanLog) Traces(n int) []TraceRecord {
	recs := l.Export()
	byTrace := map[string]*TraceRecord{}
	var order []string
	for _, r := range recs {
		tr, ok := byTrace[r.Trace]
		if !ok {
			tr = &TraceRecord{Trace: r.Trace}
			byTrace[r.Trace] = tr
			order = append(order, r.Trace)
		}
		tr.Spans = append(tr.Spans, r)
	}
	if n > 0 && len(order) > n {
		order = order[len(order)-n:]
	}
	out := make([]TraceRecord, len(order))
	for i, id := range order {
		out[i] = *byTrace[id]
	}
	return out
}

// Reset drops all recorded spans and zeroes the dropped tally.
func (l *SpanLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = nil
	l.head = 0
	l.size = 0
	l.nextID = 0
	l.nextTrace = 0
	l.dropped.Store(0)
}

// String renders the span forest indented by depth, with durations and
// attributes — the human-readable trace view.
func (l *SpanLog) String() string {
	recs := l.Export()
	children := map[int64][]SpanRecord{}
	ids := map[int64]bool{}
	for _, r := range recs {
		ids[r.ID] = true
	}
	for _, r := range recs {
		parent := r.Parent
		if parent != 0 && !ids[parent] {
			// The parent span was dropped from the ring (or lives in another
			// process's log); render the orphan at the root.
			parent = 0
		}
		children[parent] = append(children[parent], r)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool {
			if c[i].Start != c[j].Start {
				return c[i].Start < c[j].Start
			}
			return c[i].ID < c[j].ID
		})
	}
	var sb strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, r := range children[parent] {
			fmt.Fprintf(&sb, "%s%s %v", strings.Repeat("  ", depth), r.Name, r.Duration)
			for _, a := range r.Attrs {
				fmt.Fprintf(&sb, " %s=%s", a.Key, a.Value)
			}
			if !r.Ended {
				sb.WriteString(" (open)")
			}
			sb.WriteByte('\n')
			walk(r.ID, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}
