package telemetry

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// --- Histogram.Quantile: estimates pinned on known distributions ---

func TestQuantileUniformAcrossBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// 100 samples in the middle of each unit bucket: a uniform distribution
	// on (0,10) as far as the buckets can tell.
	for k := 0; k < 10; k++ {
		for i := 0; i < 100; i++ {
			h.Observe(float64(k) + 0.5)
		}
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.50, 5.0},
		{0.95, 9.5},
		{0.99, 9.9},
		{0.10, 1.0},
		{1.00, 10.0},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("p50 = %g, want 5 (midpoint of [0,10))", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("p25 = %g, want 2.5", got)
	}
}

func TestQuantileSaturatesAtLastFiniteBound(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %g, want 1 (saturated)", got)
	}
}

func TestQuantileEmptyIsNaN(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram p50 = %g, want NaN", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	h := NewHistogram(DefaultDurationBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone: q(%g)=%g < %g", p, q, prev)
		}
		prev = q
	}
}

// --- Registry: concurrent series creation (run under -race) ---

func TestRegistryConcurrentCreation(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const series = 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < series; i++ {
				// Every worker races to create the same series set; identity
				// must converge so the totals below are exact.
				r.Counter("create_total", L("i", fmt.Sprint(i))).Inc()
				r.Gauge("create_gauge", L("i", fmt.Sprint(i))).Add(1)
				r.Histogram("create_hist", nil, L("i", fmt.Sprint(i))).Observe(1)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < series; i++ {
		if got := r.Counter("create_total", L("i", fmt.Sprint(i))).Value(); got != workers {
			t.Fatalf("counter %d = %d, want %d", i, got, workers)
		}
		if got := r.Histogram("create_hist", nil, L("i", fmt.Sprint(i))).Count(); got != workers {
			t.Fatalf("hist %d count = %d, want %d", i, got, workers)
		}
	}
	if _, err := ParsePromText(r.PromText()); err != nil {
		t.Fatalf("PromText after concurrent creation unparseable: %v", err)
	}
}

// --- SpanLog: bounded ring buffer ---

func TestSpanLogBoundedRing(t *testing.T) {
	l := NewSpanLog(nil)
	l.SetCapacity(4)
	var last *Span
	for i := 0; i < 10; i++ {
		last = l.StartSpan(fmt.Sprintf("s%d", i))
		last.End()
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("retained = %d, want 4", got)
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	recs := l.Export()
	if recs[0].Name != "s6" || recs[3].Name != "s9" {
		t.Fatalf("ring kept wrong spans: %v ... %v", recs[0].Name, recs[3].Name)
	}
	// Ending a span that was already evicted must not panic or corrupt.
	last.End()
	// Reset restores empty state and zeroes the drop tally.
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 {
		t.Fatalf("reset left len=%d dropped=%d", l.Len(), l.Dropped())
	}
}

func TestRegistrySpanDropCounter(t *testing.T) {
	r := NewRegistry()
	r.Spans().SetCapacity(2)
	for i := 0; i < 5; i++ {
		r.Spans().StartSpan("s").End()
	}
	if got := r.Counter("telemetry_spans_dropped").Value(); got != 3 {
		t.Fatalf("telemetry_spans_dropped = %d, want 3", got)
	}
}

func TestSpanLogShrinkCapacityKeepsNewest(t *testing.T) {
	l := NewSpanLog(nil)
	for i := 0; i < 6; i++ {
		l.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	l.SetCapacity(2)
	recs := l.Export()
	if len(recs) != 2 || recs[0].Name != "s4" || recs[1].Name != "s5" {
		t.Fatalf("shrink kept %v", recs)
	}
	if l.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", l.Dropped())
	}
}

// --- Trace IDs, remote parents, context propagation ---

func TestTracePropagationAndRemoteParent(t *testing.T) {
	l := NewSpanLog(nil)
	root := l.StartSpan("client.query")
	child := root.StartChild("client.send")
	if child.TraceID() != root.TraceID() {
		t.Fatal("child left the trace")
	}
	// Simulate the wire: IDs cross as hex strings.
	traceWire, spanWire := FormatID(child.TraceID()), FormatID(child.ID())
	remote := l.StartSpanRemote("server.query", ParseID(traceWire), ParseID(spanWire))
	op := remote.StartChild("op:scan")
	op.End()
	remote.End()
	child.End()
	root.End()

	traces := l.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	if len(traces[0].Spans) != 4 {
		t.Fatalf("want 4 spans in trace, got %d", len(traces[0].Spans))
	}
	// The tree must be connected: server.query's parent is client.send.
	byName := map[string]SpanRecord{}
	for _, s := range traces[0].Spans {
		byName[s.Name] = s
	}
	if byName["server.query"].Parent != byName["client.send"].ID {
		t.Fatal("remote span not parented under the client span")
	}
	if byName["op:scan"].Parent != byName["server.query"].ID {
		t.Fatal("operator span not under the server span")
	}
	out := l.String()
	if !strings.Contains(out, "      op:scan") {
		t.Fatalf("trace render lost nesting:\n%s", out)
	}
}

func TestSecondTraceIsSeparate(t *testing.T) {
	l := NewSpanLog(nil)
	a := l.StartSpan("a")
	b := l.StartSpan("b")
	if a.TraceID() == b.TraceID() {
		t.Fatal("two roots shared a trace ID")
	}
	a.End()
	b.End()
	if got := len(l.Traces(0)); got != 2 {
		t.Fatalf("traces = %d, want 2", got)
	}
	if got := len(l.Traces(1)); got != 1 {
		t.Fatalf("Traces(1) = %d traces, want 1", got)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil StartChild returned non-nil")
	}
	s.SetAttr("k", "v")
	s.End()
	if s.Duration() != 0 || s.Name() != "" || s.ID() != 0 || s.TraceID() != 0 {
		t.Fatal("nil span accessors not zero")
	}
}

func TestContextSpanHelpers(t *testing.T) {
	r := NewRegistry()
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context has a span")
	}
	ctx2, root := r.StartTrace(ctx, "t")
	if SpanFromContext(ctx2) != root {
		t.Fatal("StartTrace did not store the span")
	}
	ctx3, child := StartChildCtx(ctx2, "c")
	if child == nil || SpanFromContext(ctx3) != child {
		t.Fatal("StartChildCtx did not chain")
	}
	child.End()
	root.End()
	// Untraced context: StartChildCtx is a no-op.
	ctx4, none := StartChildCtx(context.Background(), "n")
	if none != nil || SpanFromContext(ctx4) != nil {
		t.Fatal("StartChildCtx invented a span")
	}
}

func TestParseIDRejectsGarbage(t *testing.T) {
	if ParseID("") != 0 || ParseID("zz") != 0 {
		t.Fatal("malformed IDs must parse to 0")
	}
	if got := ParseID(FormatID(12345)); got != 12345 {
		t.Fatalf("round trip = %d", got)
	}
}

// --- Prometheus text format: encode → parse round trip ---

func TestPromTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", L("outcome", "ok")).Add(7)
	r.Counter("req_total", L("outcome", "err")).Add(2)
	r.Gauge("inflight").Set(3)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	text := r.PromText()
	for _, want := range []string{
		"# TYPE req_total counter",
		"# TYPE inflight gauge",
		"# TYPE lat_seconds histogram",
		`req_total{outcome="ok"} 7`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.ID()] = s.Value
	}
	for id, want := range map[string]float64{
		`req_total{outcome="ok"}`:       7,
		`req_total{outcome="err"}`:      2,
		"inflight":                      3,
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    2,
		`lat_seconds_bucket{le="+Inf"}`: 3,
		"lat_seconds_count":             3,
		"telemetry_spans_dropped":       0,
	} {
		if got[id] != want {
			t.Fatalf("%s = %g, want %g\n%s", id, got[id], want, text)
		}
	}
	if math.Abs(got["lat_seconds_sum"]-5.55) > 1e-9 {
		t.Fatalf("sum = %g", got["lat_seconds_sum"])
	}
}

func TestPromTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", L("q", "SELECT \"a\\b\"\nFROM t")).Inc()
	samples, err := ParsePromText(r.PromText())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == "weird_total" {
			if len(s.Labels) != 1 || s.Labels[0].Value != "SELECT \"a\\b\"\nFROM t" {
				t.Fatalf("escaping lost the label: %q", s.Labels)
			}
			return
		}
	}
	t.Fatal("weird_total not found")
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"3name 4",                  // bad metric name
		"x{a=1} 2",                 // unquoted label value
		`x{a="1"} nope`,            // bad value
		`x{a="1} 2`,                // unterminated quote
		"# TYPE x nosuchkind\nx 1", // unknown family type
	} {
		if _, err := ParsePromText(bad); err == nil {
			t.Errorf("ParsePromText(%q) accepted malformed input", bad)
		}
	}
}
