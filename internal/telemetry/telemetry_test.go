package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// N goroutines hammer the same counter, gauge and histogram children
// (including label-resolved lookups racing with creation); totals must be
// exact. Run under -race.
func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total", L("op", "scan")).Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("latency_seconds", nil).Observe(0.001)
				r.Gauge("inflight").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", L("op", "scan")).Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Histogram("latency_seconds", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if math.Abs(h.Sum()-workers*perWorker*0.001) > 1e-6 {
		t.Fatalf("histogram sum = %g", h.Sum())
	}
}

func TestSeriesIdentityAndDump(t *testing.T) {
	r := NewRegistry()
	// Label order must not matter for identity.
	a := r.Counter("x_total", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Add(7)
	r.Gauge("g").Set(-3)
	dump := r.Dump()
	for _, want := range []string{`x_total{a="1",b="2"} 7`, "g -3"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	js, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snaps []SeriesSnapshot
	if err := json.Unmarshal(js, &snaps); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	// The two series above plus the built-in telemetry_spans_dropped counter
	// every registry carries for its span ring buffer.
	if len(snaps) != 3 {
		t.Fatalf("want 3 series, got %d", len(snaps))
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || !math.IsInf(bounds[2], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	// Cumulative: <=1: 1, <=10: 2, +Inf: 3.
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 3 {
		t.Fatalf("cumulative counts = %v", counts)
	}
}

func TestResetKeepsChildren(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(5)
	sp := r.Spans().StartSpan("work")
	sp.End()
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived reset: %d", c.Value())
	}
	if len(r.Spans().Export()) != 0 {
		t.Fatal("spans survived reset")
	}
	c.Inc() // the same child keeps working after reset
	if r.Counter("n").Value() != 1 {
		t.Fatal("child identity lost across reset")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	l := NewSpanLog(nil)
	root := l.StartSpan("query", L("sql", "SELECT 1"))
	child := root.StartChild("scan")
	child.SetAttr("rows", "100")
	child.SetAttr("rows", "200") // overwrite, not duplicate
	child.End()
	root.End()
	recs := l.Export()
	if len(recs) != 2 {
		t.Fatalf("want 2 spans, got %d", len(recs))
	}
	if recs[1].Parent != recs[0].ID {
		t.Fatalf("child parent = %d, want %d", recs[1].Parent, recs[0].ID)
	}
	if len(recs[1].Attrs) != 1 || recs[1].Attrs[0].Value != "200" {
		t.Fatalf("attrs = %v", recs[1].Attrs)
	}
	out := l.String()
	if !strings.Contains(out, "query") || !strings.Contains(out, "  scan") {
		t.Fatalf("tree render wrong:\n%s", out)
	}
}

// A fake clock stands in for a simulation: spans must report clock time, not
// wall time (the simnet-driven case is covered end-to-end in
// internal/bench's virtual-span test).
func TestSpanUsesPluggableClock(t *testing.T) {
	var virtual time.Duration
	r := NewRegistry()
	r.SetClock(ClockFunc(func() time.Duration { return virtual }))
	sp := r.Spans().StartSpan("phase")
	virtual = 42 * time.Second // "sleep" 42 virtual seconds instantly
	if d := sp.End(); d != 42*time.Second {
		t.Fatalf("span duration = %v, want 42s", d)
	}
	// Swapping back to wall time affects subsequent spans.
	r.SetClock(nil)
	sp2 := r.Spans().StartSpan("wall")
	if d := sp2.End(); d > time.Second {
		t.Fatalf("wall span absurdly long: %v", d)
	}
}

func TestConcurrentSpans(t *testing.T) {
	l := NewSpanLog(nil)
	var wg sync.WaitGroup
	root := l.StartSpan("root")
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s := root.StartChild("child")
				s.SetAttr("j", "x")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(l.Export()); got != 1+8*500 {
		t.Fatalf("span count = %d", got)
	}
}
