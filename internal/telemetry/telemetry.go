// Package telemetry is the repo's zero-dependency observability layer:
// a Registry of atomic counters, gauges and fixed-bucket histograms with
// labeled children, plus lightweight span tracing (span.go). Every layer of
// the pipeline — colstore segment scans, sqlexec operators, the ODBC and VFT
// transfer paths, the Distributed R scheduler and the YARN broker — records
// into the process-wide Default registry, so any run (a PROFILE'd query, a
// bench figure, a test) can snapshot before/after and report deltas.
//
// All time measurement goes through a pluggable Clock so the same
// instrumentation reports virtual time when driven under internal/simnet and
// wall time otherwise. Exposition is text (Dump), JSON (SnapshotJSON) or an
// expvar hook (PublishExpvar).
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps as offsets from an arbitrary epoch. The wall
// clock measures from process start; a simulation clock reports virtual time.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

var wallEpoch = time.Now()

type wallClock struct{}

func (wallClock) Now() time.Duration { return time.Since(wallEpoch) }

// WallClock returns the real-time clock (monotonic, from process start).
func WallClock() Clock { return wallClock{} }

// Label is one key=value dimension of a metric series or span.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders the canonical identity of name + sorted labels, e.g.
// `ops_total{op="scan"}`, and returns the sorted label set (retained as
// series metadata for structured exposition formats).
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String(), ls
}

// seriesID renders the canonical identity of name + sorted labels.
func seriesID(name string, labels []Label) string {
	id, _ := seriesKey(name, labels)
	return id
}

// Counter is a monotonically increasing atomic counter. Durations are stored
// as nanoseconds via AddDuration/Duration.
type Counter struct{ v atomic.Int64 }

// NewCounter allocates a standalone counter not attached to any registry
// (per-session tallies use these; registry children come from
// Registry.Counter).
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// AddDuration accumulates a duration (stored as nanoseconds).
func (c *Counter) AddDuration(d time.Duration) { c.v.Add(int64(d)) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Duration returns the accumulated nanoseconds as a time.Duration.
func (c *Counter) Duration() time.Duration { return time.Duration(c.v.Load()) }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit +Inf bucket, with a running sum. Observations are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram allocates a standalone histogram not attached to any registry
// (per-statement latency tracking uses these). buckets are ascending upper
// bounds; nil selects DefaultDurationBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram buckets not ascending")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// DefaultDurationBuckets covers 1µs .. ~100s in decades, in seconds.
var DefaultDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the p-quantile (p in [0,1]) by linear interpolation
// within the bucket containing the target rank — the standard
// histogram_quantile estimate. The first finite bucket interpolates from 0;
// ranks landing in the +Inf bucket report the highest finite bound (the
// estimate saturates there). NaN when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) { // +Inf bucket: saturate at last finite bound
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns (upper bound, cumulative count) pairs including +Inf.
func (h *Histogram) Buckets() ([]float64, []int64) {
	bounds := append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts := make([]int64, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	return bounds, counts
}

// Registry holds named metric series. Lookup methods are idempotent: the
// same name+labels always returns the same child, so packages may resolve
// their series once into vars or on every call.
type Registry struct {
	mu       sync.RWMutex
	clock    Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]seriesMeta
	spans    *SpanLog
}

// seriesMeta is the structured identity behind a series ID: the base metric
// name and its sorted label set. Exposition formats that need labels as
// first-class data (Prometheus text) read these instead of reparsing IDs.
type seriesMeta struct {
	name   string
	labels []Label
}

// NewRegistry creates an empty registry on the wall clock.
func NewRegistry() *Registry {
	r := &Registry{
		clock:    WallClock(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		meta:     map[string]seriesMeta{},
	}
	r.spans = NewSpanLog(nil)
	r.spans.clockFn = r.Clock // spans follow registry clock swaps
	// Resolved eagerly so SpanLog never touches registry locks while holding
	// its own (the ring buffer bumps this on every eviction).
	r.spans.droppedC = r.Counter("telemetry_spans_dropped")
	return r
}

var std = NewRegistry()

// Default returns the process-wide registry all built-in instrumentation
// records into.
func Default() *Registry { return std }

// SetClock swaps the time source (e.g. a simnet virtual clock). Spans
// started from this registry's SpanLog pick up the new clock immediately.
func (r *Registry) SetClock(c Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c == nil {
		c = WallClock()
	}
	r.clock = c
}

// Clock returns the registry's current time source.
func (r *Registry) Clock() Clock {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.clock
}

// Now reads the registry clock.
func (r *Registry) Now() time.Duration { return r.Clock().Now() }

// Spans returns the registry's span log (same clock).
func (r *Registry) Spans() *SpanLog { return r.spans }

// Counter returns (creating if needed) the counter series name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	id, sorted := seriesKey(name, labels)
	r.mu.RLock()
	c, ok := r.counters[id]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[id]; ok {
		return c
	}
	c = &Counter{}
	r.counters[id] = c
	r.meta[id] = seriesMeta{name: name, labels: sorted}
	return c
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	id, sorted := seriesKey(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[id]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[id]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[id] = g
	r.meta[id] = seriesMeta{name: name, labels: sorted}
	return g
}

// Histogram returns (creating if needed) the histogram series name{labels}.
// buckets are ascending upper bounds; nil selects DefaultDurationBuckets.
// The bucket layout is fixed by the first caller.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	id, sorted := seriesKey(name, labels)
	r.mu.RLock()
	h, ok := r.hists[id]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[id]; ok {
		return h
	}
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", id))
	}
	h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.hists[id] = h
	r.meta[id] = seriesMeta{name: name, labels: sorted}
	return h
}

// Reset zeroes every series in place. Existing Counter/Gauge/Histogram
// pointers held by instrumented packages stay valid.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
	r.spans.Reset()
}

// SeriesSnapshot is one series' point-in-time value.
type SeriesSnapshot struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // counter | gauge | histogram
	Value float64 `json:"value"`
	// Histogram extras.
	Count   int64     `json:"count,omitempty"`
	Buckets []float64 `json:"buckets,omitempty"`
	Counts  []int64   `json:"counts,omitempty"`
}

// Snapshot returns every series sorted by name.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SeriesSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for id, c := range r.counters {
		out = append(out, SeriesSnapshot{Name: id, Kind: "counter", Value: float64(c.Value())})
	}
	for id, g := range r.gauges {
		out = append(out, SeriesSnapshot{Name: id, Kind: "gauge", Value: float64(g.Value())})
	}
	for id, h := range r.hists {
		bounds, counts := h.Buckets()
		out = append(out, SeriesSnapshot{
			Name: id, Kind: "histogram", Value: h.Sum(), Count: h.Count(),
			Buckets: bounds, Counts: counts,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotJSON marshals Snapshot as indented JSON.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// Dump renders every series as one `name value` line, sorted — the text
// exposition format.
func (r *Registry) Dump() string {
	var sb strings.Builder
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case "histogram":
			fmt.Fprintf(&sb, "%s_count %d\n", s.Name, s.Count)
			fmt.Fprintf(&sb, "%s_sum %g\n", s.Name, s.Value)
			for i, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b, 1) {
					le = fmt.Sprintf("%g", b)
				}
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", s.Name, le, s.Counts[i])
			}
		default:
			fmt.Fprintf(&sb, "%s %g\n", s.Name, s.Value)
		}
	}
	return sb.String()
}

var expvarPublished sync.Map // name -> struct{}

// PublishExpvar exposes the registry under the given expvar name (idempotent
// per name; expvar itself panics on duplicates).
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
