package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): the format a /metrics endpoint
// serves so a live vdr-serve can be scraped by standard tooling. PromText is
// the encoder; ParsePromText is a deliberately small parser used by the
// round-trip tests (and by anything that wants to diff two scrapes without
// a Prometheus dependency).

// promSample is one encoded sample line.
type promSample struct {
	name   string
	labels []Label
	value  float64
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func writePromSample(sb *strings.Builder, s promSample) {
	sb.WriteString(s.name)
	if len(s.labels) > 0 {
		sb.WriteByte('{')
		for i, l := range s.labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(sb, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatPromValue(s.value))
	sb.WriteByte('\n')
}

// PromText renders every series in Prometheus text exposition format,
// grouped into metric families with # TYPE headers, names sorted. Histograms
// expand to the standard _bucket{le=...}/_sum/_count triplet with cumulative
// bucket counts.
func (r *Registry) PromText() string {
	type family struct {
		kind    string
		samples []promSample
	}
	r.mu.RLock()
	fams := map[string]*family{}
	get := func(name, kind string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{kind: kind}
			fams[name] = f
		}
		return f
	}
	for id, c := range r.counters {
		m := r.meta[id]
		f := get(m.name, "counter")
		f.samples = append(f.samples, promSample{name: m.name, labels: m.labels, value: float64(c.Value())})
	}
	for id, g := range r.gauges {
		m := r.meta[id]
		f := get(m.name, "gauge")
		f.samples = append(f.samples, promSample{name: m.name, labels: m.labels, value: float64(g.Value())})
	}
	type histSeries struct {
		meta seriesMeta
		h    *Histogram
	}
	var hists []histSeries
	for id, h := range r.hists {
		hists = append(hists, histSeries{meta: r.meta[id], h: h})
	}
	r.mu.RUnlock()

	for _, hs := range hists {
		f := get(hs.meta.name, "histogram")
		bounds, counts := hs.h.Buckets()
		for i, b := range bounds {
			le := "+Inf"
			if !math.IsInf(b, 1) {
				le = strconv.FormatFloat(b, 'g', -1, 64)
			}
			labels := append(append([]Label(nil), hs.meta.labels...), L("le", le))
			f.samples = append(f.samples, promSample{
				name: hs.meta.name + "_bucket", labels: labels, value: float64(counts[i]),
			})
		}
		f.samples = append(f.samples,
			promSample{name: hs.meta.name + "_sum", labels: hs.meta.labels, value: hs.h.Sum()},
			promSample{name: hs.meta.name + "_count", labels: hs.meta.labels, value: float64(hs.h.Count())})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&sb, "# TYPE %s %s\n", n, f.kind)
		sort.Slice(f.samples, func(i, j int) bool {
			if f.samples[i].name != f.samples[j].name {
				return f.samples[i].name < f.samples[j].name
			}
			return labelsID(f.samples[i].labels) < labelsID(f.samples[j].labels)
		})
		for _, s := range f.samples {
			writePromSample(&sb, s)
		}
	}
	return sb.String()
}

func labelsID(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(';')
	}
	return sb.String()
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ID renders the sample's canonical series identity (name + sorted labels).
func (s PromSample) ID() string { return seriesID(s.Name, s.Labels) }

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// ParsePromText parses Prometheus text exposition format: # TYPE / # HELP
// comment lines plus `name{labels} value` samples. It validates metric
// names, label syntax (with \\ \" \n escapes), numeric values (including
// +Inf/-Inf/NaN) and that every TYPE kind is one Prometheus defines —
// enough to prove a scrape is well-formed and to round-trip PromText.
func ParsePromText(text string) ([]PromSample, error) {
	var out []PromSample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("promtext: line %d: malformed TYPE comment", ln+1)
				}
				if !validMetricName(fields[2]) {
					return nil, fmt.Errorf("promtext: line %d: bad metric name %q", ln+1, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("promtext: line %d: unknown type %q", ln+1, fields[3])
				}
			}
			continue // HELP and free comments pass through
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip escaped char
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is legal; take the first field as the value.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parsePromValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", tok)
	}
	return v, nil
}

func parsePromLabels(body string) ([]Label, error) {
	var out []Label
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validMetricName(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		var val strings.Builder
		j := 1
		closed := false
		for j < len(rest) {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				switch rest[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", rest[j+1], key)
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		out = append(out, L(key, val.String()))
		rest = rest[j:]
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return out, nil
}
