package telemetry

import "context"

// Trace propagation through context.Context. The contract, used end-to-end
// by the serving stack:
//
//   - A caller that wants a trace opens a root with StartTrace and passes the
//     returned context down; every instrumented layer (client protocol,
//     server admission, plan cache, sqlexec operators, UDTF prediction)
//     attaches children via SpanFromContext(ctx).StartChild — all of which
//     are nil-safe, so untraced calls cost one context lookup.
//   - The serving protocol carries (trace ID, span ID) with each request;
//     the server reconstructs the remote parent with StartSpanRemote and
//     puts it back into the request context, so one query yields a single
//     trace spanning both processes.

type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil when the call chain is
// untraced. The nil result is safe to use: all Span methods accept a nil
// receiver.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartTrace opens a root span in the registry's span log and returns a
// context carrying it. End the returned span to close the trace.
func (r *Registry) StartTrace(ctx context.Context, name string, attrs ...Label) (context.Context, *Span) {
	s := r.Spans().StartSpan(name, attrs...)
	return ContextWithSpan(ctx, s), s
}

// StartChildCtx opens a child of the context's current span (nil when
// untraced) and returns a context carrying the child. The caller must End
// the returned span (nil-safe).
func StartChildCtx(ctx context.Context, name string, attrs ...Label) (context.Context, *Span) {
	child := SpanFromContext(ctx).StartChild(name, attrs...)
	if child == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}
