// Package vft implements Vertica Fast Transfer (§3 of the paper): the
// Distributed R master issues ONE SQL query invoking the
// ExportToDistributedR transform function; Vertica then spawns parallel UDF
// instances that read node-local table segments and stream encoded column
// chunks directly to Distributed R workers. Two distribution policies are
// supported (§3.2): locality-preserving (node i → worker i, partition sizes
// mirror the possibly-skewed segmentation) and uniform (round-robin chunks,
// even partitions). Received chunks are staged as in-memory byte files on
// the workers (the paper's /dev/shm staging) and converted to data-frame
// partitions once transfer completes (§3.3).
package vft

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/telemetry"
)

// Cross-transfer totals in the process-wide telemetry registry. Per-session
// numbers live as standalone counters inside each session (sessions are
// transient; one labeled series per session would leak) and are mirrored
// here as they accumulate.
var (
	mTransfers = func(policy string) *telemetry.Counter {
		return telemetry.Default().Counter("vft_transfers_total", telemetry.L("policy", policy))
	}
	mRows   = telemetry.Default().Counter("vft_rows_total")
	mBytes  = telemetry.Default().Counter("vft_bytes_total")
	mChunks = func(loc string) *telemetry.Counter {
		return telemetry.Default().Counter("vft_chunks_total", telemetry.L("locality", loc))
	}
	mDBNanos   = telemetry.Default().Counter("vft_db_nanos_total")
	mNetNanos  = telemetry.Default().Counter("vft_net_nanos_total")
	mConvNanos = telemetry.Default().Counter("vft_conv_nanos_total")
)

// Transfer policies.
const (
	// PolicyLocality preserves segment locality: one partition per database
	// node, delivered to the same-numbered worker (Fig. 5).
	PolicyLocality = "locality"
	// PolicyUniform sprinkles chunks round-robin across workers for even
	// partition sizes regardless of segmentation skew (Fig. 6).
	PolicyUniform = "uniform"
)

// ServiceName is the UDF service key under which the Hub is registered.
const ServiceName = "vft"

// FuncName is the SQL name of the export transform (Fig. 4).
const FuncName = "ExportToDistributedR"

// Stats reports a transfer's measurements, assembled as a view over the
// session's telemetry counters when the transfer finalizes. DBSide covers
// reading, encoding and sending inside database UDF instances; Network is
// time spent pulling chunk bytes off sockets (zero on the in-process path);
// RSide covers staging and conversion to R objects on the workers — the
// phase bars of Fig. 6 / Fig. 14.
type Stats struct {
	Rows        int
	Bytes       int
	Chunks      int
	ChunksLocal int // chunks whose source node == receiving worker
	DBSide      time.Duration
	Network     time.Duration
	RSide       time.Duration
	Total       time.Duration // wall (or virtual) time of the whole Load
	PartSizes   []int
	Policy      string
}

// String renders the paper's Fig. 6-style phase breakdown.
func (st *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vft transfer (%s policy): %d rows, %d chunks (%d local), %.2f MB\n",
		st.Policy, st.Rows, st.Chunks, st.ChunksLocal, float64(st.Bytes)/(1<<20))
	net := st.Network.String()
	if st.Network == 0 {
		net = "0s (in-process)"
	}
	fmt.Fprintf(&sb, "  phase breakdown (cf. Fig. 6):\n")
	fmt.Fprintf(&sb, "    DB-side (read+encode+send): %v\n", st.DBSide)
	fmt.Fprintf(&sb, "    network (socket receive)  : %s\n", net)
	fmt.Fprintf(&sb, "    conversion (R-side)       : %v\n", st.RSide)
	fmt.Fprintf(&sb, "  partition sizes: %v\n", st.PartSizes)
	fmt.Fprintf(&sb, "  total: %v", st.Total)
	return sb.String()
}

// session is one in-flight transfer: staged raw chunks per target partition.
// Measurements are standalone telemetry counters so concurrent UDF instances
// update them without holding the staging lock.
type session struct {
	frame  *darray.DFrame
	schema colstore.Schema
	policy string

	mu     sync.Mutex
	staged map[int][]chunkMsg

	rows, bytes         *telemetry.Counter
	chunks, localChunks *telemetry.Counter
	dbTime, netTime     *telemetry.Counter
	convTime            *telemetry.Counter
}

// Hub is the Distributed R side of VFT: it owns worker "listeners" (staging
// areas) and finalizes received data into distributed data frames. It is
// registered as a UDF service in the database so ExportToDistributedR
// instances can reach it.
type Hub struct {
	mu       sync.Mutex
	sessions map[string]*session
	next     int
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{sessions: make(map[string]*session)} }

// open registers a new transfer session and returns its id.
func (h *Hub) open(frame *darray.DFrame, schema colstore.Schema, policy string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	id := fmt.Sprintf("vft-%d", h.next)
	h.sessions[id] = &session{
		frame:       frame,
		schema:      schema,
		policy:      policy,
		staged:      make(map[int][]chunkMsg),
		rows:        telemetry.NewCounter(),
		bytes:       telemetry.NewCounter(),
		chunks:      telemetry.NewCounter(),
		localChunks: telemetry.NewCounter(),
		dbTime:      telemetry.NewCounter(),
		netTime:     telemetry.NewCounter(),
		convTime:    telemetry.NewCounter(),
	}
	return id
}

func (h *Hub) get(id string) (*session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	if !ok {
		return nil, fmt.Errorf("vft: unknown session %q", id)
	}
	return s, nil
}

// chunkMsg is one staged chunk plus its deterministic order key (composed
// from source node, UDF instance and per-instance sequence number) so that
// partition assembly does not depend on goroutine or network interleaving:
// under the locality policy a partition reassembles in exact segment order,
// making repeated loads of the same table row-aligned.
type chunkMsg struct {
	seq  uint64
	data []byte
}

// OrderKey composes a chunk's deterministic order key.
func OrderKey(node, instance, localSeq int) uint64 {
	return uint64(node)<<44 | uint64(instance)<<28 | uint64(localSeq)
}

// Send delivers one encoded chunk to a target partition's staging area. It
// is called by database-side UDF instances ("Vertica processes" connecting
// to worker listeners). seq is the chunk's OrderKey.
func (h *Hub) Send(sessionID string, part int, seq uint64, msg []byte, rows int, dbTime time.Duration) error {
	s, err := h.get(sessionID)
	if err != nil {
		return err
	}
	if part < 0 || part >= s.frame.NPartitions() {
		return fmt.Errorf("vft: partition %d out of range", part)
	}
	s.mu.Lock()
	s.staged[part] = append(s.staged[part], chunkMsg{seq: seq, data: msg})
	s.mu.Unlock()
	s.rows.Add(int64(rows))
	s.bytes.Add(int64(len(msg)))
	s.chunks.Inc()
	s.dbTime.AddDuration(dbTime)
	// A chunk is "local" when its source node (recoverable from the order
	// key) matches the worker owning the target partition — always true
	// under the locality policy, 1/workers of the time under uniform.
	loc := "remote"
	if int(seq>>44) == s.frame.WorkerOf(part) {
		s.localChunks.Inc()
		loc = "local"
	}
	mChunks(loc).Inc()
	mRows.Add(int64(rows))
	mBytes.Add(int64(len(msg)))
	mDBNanos.AddDuration(dbTime)
	return nil
}

// addNet records time spent pulling a chunk's bytes off a socket; called by
// the TCP service per received frame. The in-process path has no network leg
// and never calls it.
func (h *Hub) addNet(sessionID string, d time.Duration) {
	mNetNanos.AddDuration(d)
	if s, err := h.get(sessionID); err == nil {
		s.netTime.AddDuration(d)
	}
}

// finalize converts each partition's staged byte files into a typed batch
// and fills the distributed frame (§3.3 step two: "in-memory files are
// converted into R objects and assembled into partitions"). Conversion runs
// on the owning workers in parallel.
func (h *Hub) finalize(id string, c *dr.Cluster) (*Stats, error) {
	s, err := h.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	staged := s.staged
	s.staged = make(map[int][]chunkMsg)
	s.mu.Unlock()

	nparts := s.frame.NPartitions()
	var rMu sync.Mutex
	var rTime time.Duration
	tasks := map[int][]dr.Task{}
	errsMu := sync.Mutex{}
	var firstErr error
	for part := 0; part < nparts; part++ {
		part := part
		chunks := staged[part]
		w := s.frame.WorkerOf(part)
		tasks[w] = append(tasks[w], func(_ *dr.Worker) error {
			start := time.Now()
			// Deterministic assembly: order by (node, instance, sequence).
			sort.Slice(chunks, func(a, b int) bool { return chunks[a].seq < chunks[b].seq })
			batch := colstore.NewBatch(s.schema)
			for _, msg := range chunks {
				b, err := DecodeChunk(msg.data, s.schema)
				if err != nil {
					return err
				}
				if err := batch.AppendBatch(b); err != nil {
					return err
				}
			}
			if err := s.frame.Fill(part, batch); err != nil {
				return err
			}
			rMu.Lock()
			rTime += time.Since(start)
			rMu.Unlock()
			return nil
		})
	}
	if err := c.RunAll(tasks); err != nil {
		errsMu.Lock()
		firstErr = err
		errsMu.Unlock()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sizes := make([]int, nparts)
	for i := range sizes {
		r, _, err := s.frame.PartitionSize(i)
		if err != nil {
			return nil, err
		}
		sizes[i] = r
	}
	s.convTime.AddDuration(rTime)
	mConvNanos.AddDuration(rTime)
	st := &Stats{
		Rows:        int(s.rows.Value()),
		Bytes:       int(s.bytes.Value()),
		Chunks:      int(s.chunks.Value()),
		ChunksLocal: int(s.localChunks.Value()),
		DBSide:      s.dbTime.Duration(),
		Network:     s.netTime.Duration(),
		RSide:       s.convTime.Duration(),
		PartSizes:   sizes,
		Policy:      s.policy,
	}
	h.mu.Lock()
	delete(h.sessions, id)
	h.mu.Unlock()
	return st, nil
}

// EncodeChunk serializes a batch into one wire message: uvarint column
// count, then per column a length-prefixed encoded block. This is the
// binary columnar fast path (contrast with ODBC's per-row text framing).
func EncodeChunk(b *colstore.Batch) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(b.Cols)))
	for _, col := range b.Cols {
		blk, err := colstore.EncodeBlock(col, colstore.BestEncoding(col))
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(len(blk)))
		out = append(out, blk...)
	}
	return out, nil
}

// DecodeChunk reverses EncodeChunk against the expected schema.
func DecodeChunk(msg []byte, schema colstore.Schema) (*colstore.Batch, error) {
	ncols, n := binary.Uvarint(msg)
	if n <= 0 {
		return nil, fmt.Errorf("vft: corrupt chunk header")
	}
	if int(ncols) != len(schema) {
		return nil, fmt.Errorf("vft: chunk has %d columns, schema has %d", ncols, len(schema))
	}
	msg = msg[n:]
	out := &colstore.Batch{Schema: schema, Cols: make([]*colstore.Vector, len(schema))}
	for i := range schema {
		l, n := binary.Uvarint(msg)
		if n <= 0 || uint64(len(msg)-n) < l {
			return nil, fmt.Errorf("vft: truncated chunk column %d", i)
		}
		msg = msg[n:]
		v, err := colstore.DecodeBlock(msg[:l])
		if err != nil {
			return nil, err
		}
		if v.Type != schema[i].Type {
			return nil, fmt.Errorf("vft: chunk column %d is %v, want %v", i, v.Type, schema[i].Type)
		}
		out.Cols[i] = v
		msg = msg[l:]
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
