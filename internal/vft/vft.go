// Package vft implements Vertica Fast Transfer (§3 of the paper): the
// Distributed R master issues ONE SQL query invoking the
// ExportToDistributedR transform function; Vertica then spawns parallel UDF
// instances that read node-local table segments and stream encoded column
// chunks directly to Distributed R workers. Two distribution policies are
// supported (§3.2): locality-preserving (node i → worker i, partition sizes
// mirror the possibly-skewed segmentation) and uniform (round-robin chunks,
// even partitions). Received chunks are staged as in-memory byte files on
// the workers (the paper's /dev/shm staging) and converted to data-frame
// partitions once transfer completes (§3.3).
package vft

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/faults"
	"verticadr/internal/parallel"
	"verticadr/internal/telemetry"
)

// Cross-transfer totals in the process-wide telemetry registry. Per-session
// numbers live as standalone counters inside each session (sessions are
// transient; one labeled series per session would leak) and are mirrored
// here as they accumulate.
var (
	mTransfers = func(policy string) *telemetry.Counter {
		return telemetry.Default().Counter("vft_transfers_total", telemetry.L("policy", policy))
	}
	mRows  = telemetry.Default().Counter("vft_rows_total")
	mBytes = telemetry.Default().Counter("vft_bytes_total")
	// Both locality label variants resolved once: Send is per-chunk hot
	// path and registry lookups format the series key.
	mChunksLocal  = telemetry.Default().Counter("vft_chunks_total", telemetry.L("locality", "local"))
	mChunksRemote = telemetry.Default().Counter("vft_chunks_total", telemetry.L("locality", "remote"))
	mDBNanos      = telemetry.Default().Counter("vft_db_nanos_total")
	mNetNanos     = telemetry.Default().Counter("vft_net_nanos_total")
	mConvNanos    = telemetry.Default().Counter("vft_conv_nanos_total")
	// Recovery activity: chunks resent after a failed send, duplicates the
	// hub absorbed thanks to (part, seq) dedup, and sessions torn down
	// without finalizing (explicit aborts, failed exports, idle reaping).
	mRetransmits = telemetry.Default().Counter("vft_retransmits_total")
	mDupChunks   = telemetry.Default().Counter("vft_dup_chunks_total")
	mAborted     = telemetry.Default().Counter("vft_sessions_aborted_total")
)

// Transfer policies.
const (
	// PolicyLocality preserves segment locality: one partition per database
	// node, delivered to the same-numbered worker (Fig. 5).
	PolicyLocality = "locality"
	// PolicyUniform sprinkles chunks round-robin across workers for even
	// partition sizes regardless of segmentation skew (Fig. 6).
	PolicyUniform = "uniform"
)

// ServiceName is the UDF service key under which the Hub is registered.
const ServiceName = "vft"

// FuncName is the SQL name of the export transform (Fig. 4).
const FuncName = "ExportToDistributedR"

// Stats reports a transfer's measurements, assembled as a view over the
// session's telemetry counters when the transfer finalizes. DBSide covers
// reading, encoding and sending inside database UDF instances; Network is
// time spent pulling chunk bytes off sockets (zero on the in-process path);
// RSide covers staging and conversion to R objects on the workers — the
// phase bars of Fig. 6 / Fig. 14.
type Stats struct {
	Rows        int
	Bytes       int
	Chunks      int
	ChunksLocal int // chunks whose source node == receiving worker
	DBSide      time.Duration
	Network     time.Duration
	RSide       time.Duration
	Total       time.Duration // wall (or virtual) time of the whole Load
	PartSizes   []int
	Policy      string
}

// String renders the paper's Fig. 6-style phase breakdown.
func (st *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vft transfer (%s policy): %d rows, %d chunks (%d local), %.2f MB\n",
		st.Policy, st.Rows, st.Chunks, st.ChunksLocal, float64(st.Bytes)/(1<<20))
	net := st.Network.String()
	if st.Network == 0 {
		net = "0s (in-process)"
	}
	fmt.Fprintf(&sb, "  phase breakdown (cf. Fig. 6):\n")
	fmt.Fprintf(&sb, "    DB-side (read+encode+send): %v\n", st.DBSide)
	fmt.Fprintf(&sb, "    network (socket receive)  : %s\n", net)
	fmt.Fprintf(&sb, "    conversion (R-side)       : %v\n", st.RSide)
	fmt.Fprintf(&sb, "  partition sizes: %v\n", st.PartSizes)
	fmt.Fprintf(&sb, "  total: %v", st.Total)
	return sb.String()
}

// session is one in-flight transfer: staged decoded chunks per target
// partition. Chunks are decoded eagerly at arrival (outside the staging
// lock), so worker-side conversion overlaps the database-side scan+encode of
// later chunks instead of serializing behind the whole transfer.
// Measurements are standalone telemetry counters so concurrent UDF instances
// update them without holding the staging lock.
type session struct {
	frame  *darray.DFrame
	schema colstore.Schema
	policy string

	mu     sync.Mutex
	staged map[int][]chunkMsg
	// seen dedups staged chunks by (part, seq) so retransmission after a
	// lost ack is idempotent — a resent chunk is acknowledged but not
	// staged twice.
	seen map[chunkKey]struct{}

	// lastTouch is the wall-clock nanos of the last send/open, read by the
	// idle-session reaper.
	lastTouch atomic.Int64

	rows, bytes         *telemetry.Counter
	chunks, localChunks *telemetry.Counter
	dbTime, netTime     *telemetry.Counter
	convTime            *telemetry.Counter
}

func (s *session) touch() { s.lastTouch.Store(time.Now().UnixNano()) }

// Hub is the Distributed R side of VFT: it owns worker "listeners" (staging
// areas) and finalizes received data into distributed data frames. It is
// registered as a UDF service in the database so ExportToDistributedR
// instances can reach it.
type Hub struct {
	mu       sync.Mutex
	sessions map[string]*session
	next     int
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{sessions: make(map[string]*session)} }

// open registers a new transfer session and returns its id.
func (h *Hub) open(frame *darray.DFrame, schema colstore.Schema, policy string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	id := fmt.Sprintf("vft-%d", h.next)
	s := &session{
		frame:       frame,
		schema:      schema,
		policy:      policy,
		staged:      make(map[int][]chunkMsg),
		seen:        make(map[chunkKey]struct{}),
		rows:        telemetry.NewCounter(),
		bytes:       telemetry.NewCounter(),
		chunks:      telemetry.NewCounter(),
		localChunks: telemetry.NewCounter(),
		dbTime:      telemetry.NewCounter(),
		netTime:     telemetry.NewCounter(),
		convTime:    telemetry.NewCounter(),
	}
	s.touch()
	h.sessions[id] = s
	return id
}

// Sessions reports the number of in-flight transfers (leak checks).
func (h *Hub) Sessions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

// Abort drops an in-flight session and its staged chunks — the cleanup path
// for errored or abandoned transfers, which previously kept their staging
// memory forever. Unknown ids are a no-op; the return reports whether a
// session was actually dropped.
func (h *Hub) Abort(id string) bool {
	h.mu.Lock()
	_, ok := h.sessions[id]
	delete(h.sessions, id)
	h.mu.Unlock()
	if ok {
		mAborted.Inc()
	}
	return ok
}

// ReapIdle aborts sessions that have not seen a send for longer than
// maxIdle, returning their ids sorted. Called periodically by StartReaper so
// a sender that died mid-transfer cannot pin staged chunks indefinitely.
func (h *Hub) ReapIdle(maxIdle time.Duration) []string {
	now := time.Now().UnixNano()
	var ids []string
	h.mu.Lock()
	for id, s := range h.sessions {
		if now-s.lastTouch.Load() > int64(maxIdle) {
			ids = append(ids, id)
			delete(h.sessions, id)
		}
	}
	h.mu.Unlock()
	for range ids {
		mAborted.Inc()
	}
	sort.Strings(ids)
	return ids
}

// StartReaper scans for idle sessions every interval until the returned stop
// function is called (idempotent).
func (h *Hub) StartReaper(interval, maxIdle time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				h.ReapIdle(maxIdle)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (h *Hub) get(id string) (*session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	if !ok {
		return nil, fmt.Errorf("vft: unknown session %q", id)
	}
	return s, nil
}

// chunkMsg is one staged (already decoded) chunk plus its deterministic
// order key (composed from source node, UDF instance and per-instance
// sequence number) so that partition assembly does not depend on goroutine
// or network interleaving: under the locality policy a partition reassembles
// in exact segment order, making repeated loads of the same table
// row-aligned. The batch comes from the vft batch pool and is recycled once
// finalize has copied it into the partition.
type chunkMsg struct {
	seq   uint64
	batch *colstore.Batch
}

// chunkKey identifies a staged chunk for retransmission dedup.
type chunkKey struct {
	part int
	seq  uint64
}

// OrderKey composes a chunk's deterministic order key.
func OrderKey(node, instance, localSeq int) uint64 {
	return uint64(node)<<44 | uint64(instance)<<28 | uint64(localSeq)
}

// Send delivers one encoded chunk to a target partition's staging area. It
// is called by database-side UDF instances ("Vertica processes" connecting
// to worker listeners). seq is the chunk's OrderKey.
//
// Send is idempotent: a chunk already staged under the same (part, seq) is
// acknowledged without being staged again, so senders may retransmit after
// a failed or lost acknowledgement without corrupting the partition.
//
// msg is only read for the duration of the call: the chunk is decoded into a
// pooled batch before Send returns, so the sender may recycle or overwrite
// the buffer immediately afterwards. A corrupt chunk is rejected here, at
// arrival, rather than poisoning the session at finalize time.
func (h *Hub) Send(sessionID string, part int, seq uint64, msg []byte, rows int, dbTime time.Duration) error {
	s, err := h.get(sessionID)
	if err != nil {
		return err
	}
	s.touch()
	if part < 0 || part >= s.frame.NPartitions() {
		return fmt.Errorf("vft: partition %d out of range", part)
	}
	key := chunkKey{part: part, seq: seq}
	s.mu.Lock()
	if _, dup := s.seen[key]; dup {
		s.mu.Unlock()
		mDupChunks.Inc()
		return nil
	}
	s.mu.Unlock()
	// Decode outside the staging lock: conversion of this chunk overlaps
	// both concurrent sends and the database-side scan+encode of later
	// chunks — the R-side leg of the transfer pipeline runs during the
	// transfer, not after it.
	start := time.Now()
	batch := getBatch(s.schema)
	if err := DecodeChunkInto(batch, msg); err != nil {
		putBatch(batch)
		return err
	}
	conv := time.Since(start)
	s.mu.Lock()
	if _, dup := s.seen[key]; dup {
		// A retransmission raced our decode; keep the first copy.
		s.mu.Unlock()
		putBatch(batch)
		mDupChunks.Inc()
		return nil
	}
	s.seen[key] = struct{}{}
	s.staged[part] = append(s.staged[part], chunkMsg{seq: seq, batch: batch})
	s.mu.Unlock()
	s.convTime.AddDuration(conv)
	mConvNanos.AddDuration(conv)
	s.rows.Add(int64(rows))
	s.bytes.Add(int64(len(msg)))
	s.chunks.Inc()
	s.dbTime.AddDuration(dbTime)
	// A chunk is "local" when its source node (recoverable from the order
	// key) matches the worker owning the target partition — always true
	// under the locality policy, 1/workers of the time under uniform.
	if int(seq>>44) == s.frame.WorkerOf(part) {
		s.localChunks.Inc()
		mChunksLocal.Inc()
	} else {
		mChunksRemote.Inc()
	}
	mRows.Add(int64(rows))
	mBytes.Add(int64(len(msg)))
	mDBNanos.AddDuration(dbTime)
	// The injection point sits after staging: an injected failure models a
	// lost acknowledgement, so the sender retransmits a chunk the hub
	// already holds and the dedup above must absorb it.
	if err := faults.Check(faults.SiteVFTSend); err != nil {
		return err
	}
	return nil
}

// addNet records time spent pulling a chunk's bytes off a socket; called by
// the TCP service per received frame. The in-process path has no network leg
// and never calls it.
func (h *Hub) addNet(sessionID string, d time.Duration) {
	mNetNanos.AddDuration(d)
	if s, err := h.get(sessionID); err == nil {
		s.netTime.AddDuration(d)
	}
}

// finalize assembles each partition's staged (already decoded) chunks into a
// typed batch and fills the distributed frame (§3.3 step two: "in-memory
// files are converted into R objects and assembled into partitions").
// Decoding itself happened at arrival, overlapped with the export; what
// remains here is the ordered copy into exact-capacity partition batches,
// which runs on the owning workers in parallel with a column-parallel inner
// loop. Staged pooled batches are recycled only after every task has
// succeeded, so a task re-run on a recovered worker never reads a recycled
// batch.
func (h *Hub) finalize(id string, c *dr.Cluster) (st *Stats, err error) {
	s, err := h.get(id)
	if err != nil {
		return nil, err
	}
	// The session is consumed whatever happens: the success path deletes it
	// below, and every error path must release its staging memory too.
	defer func() {
		if err != nil {
			h.Abort(id)
		}
	}()
	s.mu.Lock()
	staged := s.staged
	s.staged = make(map[int][]chunkMsg)
	s.mu.Unlock()

	nparts := s.frame.NPartitions()
	var rMu sync.Mutex
	var rTime time.Duration
	pool := parallel.Default()
	tasks := map[int][]dr.TaskSpec{}
	for part := 0; part < nparts; part++ {
		part := part
		chunks := staged[part]
		w := s.frame.WorkerOf(part)
		tasks[w] = append(tasks[w], dr.TaskSpec{
			Run: func(_ *dr.Worker) error {
				start := time.Now()
				// Deterministic assembly: order by (node, instance, sequence).
				sort.Slice(chunks, func(a, b int) bool { return chunks[a].seq < chunks[b].seq })
				rows := 0
				for _, c := range chunks {
					rows += c.batch.Len()
				}
				// Exact-capacity partition batch: the copy below never regrows.
				batch := colstore.NewBatchCap(s.schema, rows)
				// Columns are independent, so the ordered copy fans out over
				// the worker pool without changing the row order.
				if err := pool.ForEach(len(batch.Cols), func(j int) error {
					for _, c := range chunks {
						if err := batch.Cols[j].AppendVector(c.batch.Cols[j]); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return err
				}
				if err := s.frame.Fill(part, batch); err != nil {
					return err
				}
				rMu.Lock()
				rTime += time.Since(start)
				rMu.Unlock()
				return nil
			},
			// Failover: the staged chunks live on the master, so recovering
			// a dead worker's partition only needs re-pointing it at the
			// survivor before the conversion task re-runs there (the paper's
			// partition re-fetch on task re-execution).
			Rebuild: func(nw *dr.Worker) error {
				return s.frame.SetWorker(part, nw.ID())
			},
		})
	}
	if err := c.RunAllSpecs(tasks, dr.RunOpts{Retries: c.TaskRetries()}); err != nil {
		return nil, err
	}
	// All partitions assembled; the staged pooled batches are dead now (no
	// task can re-run) and go back to the pool. Error paths skip this and
	// let the GC take them — an aborted session must never race a recycle.
	for _, chunks := range staged {
		for _, c := range chunks {
			putBatch(c.batch)
		}
	}
	sizes := make([]int, nparts)
	for i := range sizes {
		r, _, err := s.frame.PartitionSize(i)
		if err != nil {
			return nil, err
		}
		sizes[i] = r
	}
	s.convTime.AddDuration(rTime)
	mConvNanos.AddDuration(rTime)
	st = &Stats{
		Rows:        int(s.rows.Value()),
		Bytes:       int(s.bytes.Value()),
		Chunks:      int(s.chunks.Value()),
		ChunksLocal: int(s.localChunks.Value()),
		DBSide:      s.dbTime.Duration(),
		Network:     s.netTime.Duration(),
		RSide:       s.convTime.Duration(),
		PartSizes:   sizes,
		Policy:      s.policy,
	}
	h.mu.Lock()
	delete(h.sessions, id)
	h.mu.Unlock()
	return st, nil
}

// EncodeChunk serializes a batch into one wire message: uvarint column
// count, then per column a length-prefixed encoded block. This is the
// binary columnar fast path (contrast with ODBC's per-row text framing).
func EncodeChunk(b *colstore.Batch) ([]byte, error) {
	return EncodeChunkInto(nil, b)
}

// EncodeChunkInto appends the chunk encoding of b to dst and returns the
// extended slice. With a dst of sufficient capacity (e.g. from the vft
// buffer pool) the steady-state encode allocates nothing.
func EncodeChunkInto(dst []byte, b *colstore.Batch) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(b.Cols)))
	// Blocks are length-prefixed with a uvarint, so each block is encoded
	// into a pooled scratch buffer first and then appended behind its
	// length.
	scratch := getBuf()
	defer func() { putBuf(scratch) }()
	for _, col := range b.Cols {
		blk, err := colstore.AppendBlock(scratch[:0], col, colstore.BestEncoding(col))
		if err != nil {
			return nil, err
		}
		scratch = blk
		dst = binary.AppendUvarint(dst, uint64(len(blk)))
		dst = append(dst, blk...)
	}
	return dst, nil
}

// DecodeChunk reverses EncodeChunk against the expected schema.
func DecodeChunk(msg []byte, schema colstore.Schema) (*colstore.Batch, error) {
	out := colstore.NewBatch(schema)
	if err := DecodeChunkInto(out, msg); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeChunkInto decodes a chunk into dst, appending to dst's columns
// (callers reusing a pooled batch Reset it first). dst's schema is the
// expected schema; a chunk that disagrees — column count, block types, row
// counts, or any corruption the block decoder detects — returns an error,
// never a panic, and never reads past msg.
func DecodeChunkInto(dst *colstore.Batch, msg []byte) error {
	schema := dst.Schema
	ncols, n := binary.Uvarint(msg)
	if n <= 0 {
		return fmt.Errorf("vft: corrupt chunk header")
	}
	if int(ncols) != len(schema) {
		return fmt.Errorf("vft: chunk has %d columns, schema has %d", ncols, len(schema))
	}
	msg = msg[n:]
	for i := range schema {
		l, n := binary.Uvarint(msg)
		if n <= 0 || uint64(len(msg)-n) < l {
			return fmt.Errorf("vft: truncated chunk column %d", i)
		}
		msg = msg[n:]
		blk := msg[:l]
		if len(blk) > 0 && colstore.Type(blk[0]) != schema[i].Type {
			return fmt.Errorf("vft: chunk column %d is %v, want %v", i, colstore.Type(blk[0]), schema[i].Type)
		}
		if err := colstore.DecodeBlockInto(dst.Cols[i], blk); err != nil {
			return err
		}
		msg = msg[l:]
	}
	return dst.Validate()
}
