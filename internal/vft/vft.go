// Package vft implements Vertica Fast Transfer (§3 of the paper): the
// Distributed R master issues ONE SQL query invoking the
// ExportToDistributedR transform function; Vertica then spawns parallel UDF
// instances that read node-local table segments and stream encoded column
// chunks directly to Distributed R workers. Two distribution policies are
// supported (§3.2): locality-preserving (node i → worker i, partition sizes
// mirror the possibly-skewed segmentation) and uniform (round-robin chunks,
// even partitions). Received chunks are staged as in-memory byte files on
// the workers (the paper's /dev/shm staging) and converted to data-frame
// partitions once transfer completes (§3.3).
package vft

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
)

// Cross-transfer totals in the process-wide telemetry registry. Per-session
// numbers live as standalone counters inside each session (sessions are
// transient; one labeled series per session would leak) and are mirrored
// here as they accumulate.
var (
	mTransfers = func(policy string) *telemetry.Counter {
		return telemetry.Default().Counter("vft_transfers_total", telemetry.L("policy", policy))
	}
	mRows   = telemetry.Default().Counter("vft_rows_total")
	mBytes  = telemetry.Default().Counter("vft_bytes_total")
	mChunks = func(loc string) *telemetry.Counter {
		return telemetry.Default().Counter("vft_chunks_total", telemetry.L("locality", loc))
	}
	mDBNanos   = telemetry.Default().Counter("vft_db_nanos_total")
	mNetNanos  = telemetry.Default().Counter("vft_net_nanos_total")
	mConvNanos = telemetry.Default().Counter("vft_conv_nanos_total")
	// Recovery activity: chunks resent after a failed send, duplicates the
	// hub absorbed thanks to (part, seq) dedup, and sessions torn down
	// without finalizing (explicit aborts, failed exports, idle reaping).
	mRetransmits = telemetry.Default().Counter("vft_retransmits_total")
	mDupChunks   = telemetry.Default().Counter("vft_dup_chunks_total")
	mAborted     = telemetry.Default().Counter("vft_sessions_aborted_total")
)

// Transfer policies.
const (
	// PolicyLocality preserves segment locality: one partition per database
	// node, delivered to the same-numbered worker (Fig. 5).
	PolicyLocality = "locality"
	// PolicyUniform sprinkles chunks round-robin across workers for even
	// partition sizes regardless of segmentation skew (Fig. 6).
	PolicyUniform = "uniform"
)

// ServiceName is the UDF service key under which the Hub is registered.
const ServiceName = "vft"

// FuncName is the SQL name of the export transform (Fig. 4).
const FuncName = "ExportToDistributedR"

// Stats reports a transfer's measurements, assembled as a view over the
// session's telemetry counters when the transfer finalizes. DBSide covers
// reading, encoding and sending inside database UDF instances; Network is
// time spent pulling chunk bytes off sockets (zero on the in-process path);
// RSide covers staging and conversion to R objects on the workers — the
// phase bars of Fig. 6 / Fig. 14.
type Stats struct {
	Rows        int
	Bytes       int
	Chunks      int
	ChunksLocal int // chunks whose source node == receiving worker
	DBSide      time.Duration
	Network     time.Duration
	RSide       time.Duration
	Total       time.Duration // wall (or virtual) time of the whole Load
	PartSizes   []int
	Policy      string
}

// String renders the paper's Fig. 6-style phase breakdown.
func (st *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vft transfer (%s policy): %d rows, %d chunks (%d local), %.2f MB\n",
		st.Policy, st.Rows, st.Chunks, st.ChunksLocal, float64(st.Bytes)/(1<<20))
	net := st.Network.String()
	if st.Network == 0 {
		net = "0s (in-process)"
	}
	fmt.Fprintf(&sb, "  phase breakdown (cf. Fig. 6):\n")
	fmt.Fprintf(&sb, "    DB-side (read+encode+send): %v\n", st.DBSide)
	fmt.Fprintf(&sb, "    network (socket receive)  : %s\n", net)
	fmt.Fprintf(&sb, "    conversion (R-side)       : %v\n", st.RSide)
	fmt.Fprintf(&sb, "  partition sizes: %v\n", st.PartSizes)
	fmt.Fprintf(&sb, "  total: %v", st.Total)
	return sb.String()
}

// session is one in-flight transfer: staged raw chunks per target partition.
// Measurements are standalone telemetry counters so concurrent UDF instances
// update them without holding the staging lock.
type session struct {
	frame  *darray.DFrame
	schema colstore.Schema
	policy string

	mu     sync.Mutex
	staged map[int][]chunkMsg
	// seen dedups staged chunks by (part, seq) so retransmission after a
	// lost ack is idempotent — a resent chunk is acknowledged but not
	// staged twice.
	seen map[chunkKey]struct{}

	// lastTouch is the wall-clock nanos of the last send/open, read by the
	// idle-session reaper.
	lastTouch atomic.Int64

	rows, bytes         *telemetry.Counter
	chunks, localChunks *telemetry.Counter
	dbTime, netTime     *telemetry.Counter
	convTime            *telemetry.Counter
}

func (s *session) touch() { s.lastTouch.Store(time.Now().UnixNano()) }

// Hub is the Distributed R side of VFT: it owns worker "listeners" (staging
// areas) and finalizes received data into distributed data frames. It is
// registered as a UDF service in the database so ExportToDistributedR
// instances can reach it.
type Hub struct {
	mu       sync.Mutex
	sessions map[string]*session
	next     int
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{sessions: make(map[string]*session)} }

// open registers a new transfer session and returns its id.
func (h *Hub) open(frame *darray.DFrame, schema colstore.Schema, policy string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	id := fmt.Sprintf("vft-%d", h.next)
	s := &session{
		frame:       frame,
		schema:      schema,
		policy:      policy,
		staged:      make(map[int][]chunkMsg),
		seen:        make(map[chunkKey]struct{}),
		rows:        telemetry.NewCounter(),
		bytes:       telemetry.NewCounter(),
		chunks:      telemetry.NewCounter(),
		localChunks: telemetry.NewCounter(),
		dbTime:      telemetry.NewCounter(),
		netTime:     telemetry.NewCounter(),
		convTime:    telemetry.NewCounter(),
	}
	s.touch()
	h.sessions[id] = s
	return id
}

// Sessions reports the number of in-flight transfers (leak checks).
func (h *Hub) Sessions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

// Abort drops an in-flight session and its staged chunks — the cleanup path
// for errored or abandoned transfers, which previously kept their staging
// memory forever. Unknown ids are a no-op; the return reports whether a
// session was actually dropped.
func (h *Hub) Abort(id string) bool {
	h.mu.Lock()
	_, ok := h.sessions[id]
	delete(h.sessions, id)
	h.mu.Unlock()
	if ok {
		mAborted.Inc()
	}
	return ok
}

// ReapIdle aborts sessions that have not seen a send for longer than
// maxIdle, returning their ids sorted. Called periodically by StartReaper so
// a sender that died mid-transfer cannot pin staged chunks indefinitely.
func (h *Hub) ReapIdle(maxIdle time.Duration) []string {
	now := time.Now().UnixNano()
	var ids []string
	h.mu.Lock()
	for id, s := range h.sessions {
		if now-s.lastTouch.Load() > int64(maxIdle) {
			ids = append(ids, id)
			delete(h.sessions, id)
		}
	}
	h.mu.Unlock()
	for range ids {
		mAborted.Inc()
	}
	sort.Strings(ids)
	return ids
}

// StartReaper scans for idle sessions every interval until the returned stop
// function is called (idempotent).
func (h *Hub) StartReaper(interval, maxIdle time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				h.ReapIdle(maxIdle)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (h *Hub) get(id string) (*session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	if !ok {
		return nil, fmt.Errorf("vft: unknown session %q", id)
	}
	return s, nil
}

// chunkMsg is one staged chunk plus its deterministic order key (composed
// from source node, UDF instance and per-instance sequence number) so that
// partition assembly does not depend on goroutine or network interleaving:
// under the locality policy a partition reassembles in exact segment order,
// making repeated loads of the same table row-aligned.
type chunkMsg struct {
	seq  uint64
	data []byte
}

// chunkKey identifies a staged chunk for retransmission dedup.
type chunkKey struct {
	part int
	seq  uint64
}

// OrderKey composes a chunk's deterministic order key.
func OrderKey(node, instance, localSeq int) uint64 {
	return uint64(node)<<44 | uint64(instance)<<28 | uint64(localSeq)
}

// Send delivers one encoded chunk to a target partition's staging area. It
// is called by database-side UDF instances ("Vertica processes" connecting
// to worker listeners). seq is the chunk's OrderKey.
//
// Send is idempotent: a chunk already staged under the same (part, seq) is
// acknowledged without being staged again, so senders may retransmit after
// a failed or lost acknowledgement without corrupting the partition.
func (h *Hub) Send(sessionID string, part int, seq uint64, msg []byte, rows int, dbTime time.Duration) error {
	s, err := h.get(sessionID)
	if err != nil {
		return err
	}
	s.touch()
	if part < 0 || part >= s.frame.NPartitions() {
		return fmt.Errorf("vft: partition %d out of range", part)
	}
	s.mu.Lock()
	key := chunkKey{part: part, seq: seq}
	if _, dup := s.seen[key]; dup {
		s.mu.Unlock()
		mDupChunks.Inc()
		return nil
	}
	s.seen[key] = struct{}{}
	s.staged[part] = append(s.staged[part], chunkMsg{seq: seq, data: msg})
	s.mu.Unlock()
	s.rows.Add(int64(rows))
	s.bytes.Add(int64(len(msg)))
	s.chunks.Inc()
	s.dbTime.AddDuration(dbTime)
	// A chunk is "local" when its source node (recoverable from the order
	// key) matches the worker owning the target partition — always true
	// under the locality policy, 1/workers of the time under uniform.
	loc := "remote"
	if int(seq>>44) == s.frame.WorkerOf(part) {
		s.localChunks.Inc()
		loc = "local"
	}
	mChunks(loc).Inc()
	mRows.Add(int64(rows))
	mBytes.Add(int64(len(msg)))
	mDBNanos.AddDuration(dbTime)
	// The injection point sits after staging: an injected failure models a
	// lost acknowledgement, so the sender retransmits a chunk the hub
	// already holds and the dedup above must absorb it.
	if err := faults.Check(faults.SiteVFTSend); err != nil {
		return err
	}
	return nil
}

// addNet records time spent pulling a chunk's bytes off a socket; called by
// the TCP service per received frame. The in-process path has no network leg
// and never calls it.
func (h *Hub) addNet(sessionID string, d time.Duration) {
	mNetNanos.AddDuration(d)
	if s, err := h.get(sessionID); err == nil {
		s.netTime.AddDuration(d)
	}
}

// finalize converts each partition's staged byte files into a typed batch
// and fills the distributed frame (§3.3 step two: "in-memory files are
// converted into R objects and assembled into partitions"). Conversion runs
// on the owning workers in parallel.
func (h *Hub) finalize(id string, c *dr.Cluster) (st *Stats, err error) {
	s, err := h.get(id)
	if err != nil {
		return nil, err
	}
	// The session is consumed whatever happens: the success path deletes it
	// below, and every error path must release its staging memory too.
	defer func() {
		if err != nil {
			h.Abort(id)
		}
	}()
	s.mu.Lock()
	staged := s.staged
	s.staged = make(map[int][]chunkMsg)
	s.mu.Unlock()

	nparts := s.frame.NPartitions()
	var rMu sync.Mutex
	var rTime time.Duration
	tasks := map[int][]dr.TaskSpec{}
	for part := 0; part < nparts; part++ {
		part := part
		chunks := staged[part]
		w := s.frame.WorkerOf(part)
		tasks[w] = append(tasks[w], dr.TaskSpec{
			Run: func(_ *dr.Worker) error {
				start := time.Now()
				// Deterministic assembly: order by (node, instance, sequence).
				sort.Slice(chunks, func(a, b int) bool { return chunks[a].seq < chunks[b].seq })
				batch := colstore.NewBatch(s.schema)
				for _, msg := range chunks {
					b, err := DecodeChunk(msg.data, s.schema)
					if err != nil {
						return err
					}
					if err := batch.AppendBatch(b); err != nil {
						return err
					}
				}
				if err := s.frame.Fill(part, batch); err != nil {
					return err
				}
				rMu.Lock()
				rTime += time.Since(start)
				rMu.Unlock()
				return nil
			},
			// Failover: the staged chunks live on the master, so recovering
			// a dead worker's partition only needs re-pointing it at the
			// survivor before the conversion task re-runs there (the paper's
			// partition re-fetch on task re-execution).
			Rebuild: func(nw *dr.Worker) error {
				return s.frame.SetWorker(part, nw.ID())
			},
		})
	}
	if err := c.RunAllSpecs(tasks, dr.RunOpts{Retries: c.TaskRetries()}); err != nil {
		return nil, err
	}
	sizes := make([]int, nparts)
	for i := range sizes {
		r, _, err := s.frame.PartitionSize(i)
		if err != nil {
			return nil, err
		}
		sizes[i] = r
	}
	s.convTime.AddDuration(rTime)
	mConvNanos.AddDuration(rTime)
	st = &Stats{
		Rows:        int(s.rows.Value()),
		Bytes:       int(s.bytes.Value()),
		Chunks:      int(s.chunks.Value()),
		ChunksLocal: int(s.localChunks.Value()),
		DBSide:      s.dbTime.Duration(),
		Network:     s.netTime.Duration(),
		RSide:       s.convTime.Duration(),
		PartSizes:   sizes,
		Policy:      s.policy,
	}
	h.mu.Lock()
	delete(h.sessions, id)
	h.mu.Unlock()
	return st, nil
}

// EncodeChunk serializes a batch into one wire message: uvarint column
// count, then per column a length-prefixed encoded block. This is the
// binary columnar fast path (contrast with ODBC's per-row text framing).
func EncodeChunk(b *colstore.Batch) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(b.Cols)))
	for _, col := range b.Cols {
		blk, err := colstore.EncodeBlock(col, colstore.BestEncoding(col))
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(len(blk)))
		out = append(out, blk...)
	}
	return out, nil
}

// DecodeChunk reverses EncodeChunk against the expected schema.
func DecodeChunk(msg []byte, schema colstore.Schema) (*colstore.Batch, error) {
	ncols, n := binary.Uvarint(msg)
	if n <= 0 {
		return nil, fmt.Errorf("vft: corrupt chunk header")
	}
	if int(ncols) != len(schema) {
		return nil, fmt.Errorf("vft: chunk has %d columns, schema has %d", ncols, len(schema))
	}
	msg = msg[n:]
	out := &colstore.Batch{Schema: schema, Cols: make([]*colstore.Vector, len(schema))}
	for i := range schema {
		l, n := binary.Uvarint(msg)
		if n <= 0 || uint64(len(msg)-n) < l {
			return nil, fmt.Errorf("vft: truncated chunk column %d", i)
		}
		msg = msg[n:]
		v, err := colstore.DecodeBlock(msg[:l])
		if err != nil {
			return nil, err
		}
		if v.Type != schema[i].Type {
			return nil, fmt.Errorf("vft: chunk column %d is %v, want %v", i, v.Type, schema[i].Type)
		}
		out.Cols[i] = v
		msg = msg[l:]
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
