package vft

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/udf"
)

// sendRetries caps how many times the sender offers one chunk to the sink;
// the receiver's (part, seq) dedup makes every retransmission idempotent.
const sendRetries = 3

// pipeDepth bounds the encoded-chunk channel between the scan+encode stage
// and the send stage of each export instance: double buffering, so one chunk
// is encoded while the previous one is on the wire, without letting a slow
// receiver pile up unbounded encoded chunks.
const pipeDepth = 2

// encodedChunk is one unit of work handed from the scan+encode stage to the
// send stage. msg is a pooled buffer owned by the chunk until the sender
// returns it.
type encodedChunk struct {
	target int
	seq    uint64
	rows   int
	msg    []byte
	dbTime time.Duration
}

// exportUDF is the ExportToDistributedR transform function (Fig. 4). One
// instance runs per node-local chunk under OVER (PARTITION BEST); each
// instance reads its rows, buffers them (psize rows per chunk — the
// partition-size hint of §3.1), encodes each buffer as a columnar chunk and
// pushes it to the target worker's staging area through the Hub.
//
// Each instance is a two-stage pipeline: the main goroutine scans and
// encodes into pooled buffers while a sender goroutine drains the bounded
// channel and pushes chunks to the sink, so DB-side encode genuinely
// overlaps the network/staging leg (the paper's concurrent read-and-send,
// §3.1). The staging batch is a single reused allocation; encode buffers
// return to the pool after their Send completes — Send implementations never
// retain msg, and all retransmission happens inside Send while the sender
// still owns the buffer, so a retransmit can never observe a recycled one.
type exportUDF struct{}

// OutputSchema: one summary row per instance (node, rows, bytes).
func (exportUDF) OutputSchema(in colstore.Schema, params udf.Params) (colstore.Schema, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("vft: ExportToDistributedR needs at least one column argument")
	}
	if _, err := params.String("session"); err != nil {
		return nil, err
	}
	policy := params.StringOr("policy", PolicyLocality)
	if policy != PolicyLocality && policy != PolicyUniform {
		return nil, fmt.Errorf("vft: unknown policy %q", policy)
	}
	if _, err := params.Int("workers"); err != nil {
		return nil, err
	}
	return colstore.Schema{
		{Name: "node", Type: colstore.TypeInt64},
		{Name: "rows", Type: colstore.TypeInt64},
		{Name: "bytes", Type: colstore.TypeInt64},
	}, nil
}

func (exportUDF) ProcessPartition(ctx *udf.Ctx, in udf.BatchReader, out udf.BatchWriter) error {
	svc, err := ctx.Service(ServiceName)
	if err != nil {
		return err
	}
	sink, ok := svc.(ChunkSink)
	if !ok {
		return fmt.Errorf("vft: service %q is %T, not a ChunkSink", ServiceName, svc)
	}
	sessionID, err := ctx.Params.String("session")
	if err != nil {
		return err
	}
	policy := ctx.Params.StringOr("policy", PolicyLocality)
	workers := int(ctx.Params.IntOr("workers", 1))
	bufRows := int(ctx.Params.IntOr("psize", 4096))
	if bufRows <= 0 {
		bufRows = 4096
	}

	// Send stage: drains encoded chunks, retransmitting on failure. The
	// first error is latched and later chunks are drained (and their
	// buffers recycled) without sending, so the producer can never block
	// forever on a dead sender.
	sendCh := make(chan encodedChunk, pipeDepth)
	var sendFailed atomic.Bool
	var sendErr error // written only by the sender; read after wg.Wait
	var totalRows, totalBytes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ck := range sendCh {
			if sendErr == nil {
				// Retransmit on failure: the hub dedups by (part, seq), so
				// resending after a lost acknowledgement is safe. The TCP
				// sink retries internally as well; this loop also covers
				// the in-process path.
				var err error
				for attempt := 0; attempt < sendRetries; attempt++ {
					if attempt > 0 {
						mRetransmits.Inc()
					}
					if err = sink.Send(sessionID, ck.target, ck.seq, ck.msg, ck.rows, ck.dbTime); err == nil {
						break
					}
				}
				if err != nil {
					sendErr = err
					sendFailed.Store(true)
				} else {
					totalRows.Add(int64(ck.rows))
					totalBytes.Add(int64(len(ck.msg)))
				}
			}
			// The sink has decoded or copied the chunk; the buffer is ours
			// again and returns to the pool here.
			putBuf(ck.msg)
		}
	}()

	var schema colstore.Schema
	var buf *colstore.Batch
	localSeq := 0
	// Round-robin cursor for the uniform policy; offset by node and instance
	// so concurrent instances do not all start at worker 0.
	rr := ctx.NodeID + ctx.Instance

	flush := func() error {
		if buf == nil || buf.Len() == 0 {
			return nil
		}
		start := time.Now()
		msg, err := EncodeChunkInto(getBuf(), buf)
		if err != nil {
			return err
		}
		// The staging batch's rows are encoded into msg; reuse it for the
		// next chunk instead of reallocating.
		rows := buf.Len()
		buf.Reset()
		var target int
		switch policy {
		case PolicyLocality:
			// Node i's data goes to partition i (= worker i), Fig. 5.
			target = ctx.NodeID
		case PolicyUniform:
			target = rr % workers
			rr++
		default:
			putBuf(msg)
			return fmt.Errorf("vft: unknown policy %q", policy)
		}
		elapsed := time.Since(start)
		seq := OrderKey(ctx.NodeID, ctx.Instance, localSeq)
		localSeq++
		sendCh <- encodedChunk{target: target, seq: seq, rows: rows, msg: msg, dbTime: elapsed}
		return nil
	}

	produce := func() error {
		for {
			if sendFailed.Load() {
				return nil // the latched sendErr surfaces below
			}
			b, err := in.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if schema == nil {
				schema = b.Schema
				buf = colstore.NewBatchCap(schema, bufRows)
			}
			// Stage rows into the in-memory buffer, flushing every bufRows.
			off := 0
			for off < b.Len() {
				take := bufRows - buf.Len()
				if take > b.Len()-off {
					take = b.Len() - off
				}
				if err := buf.AppendRange(b, off, off+take); err != nil {
					return err
				}
				off += take
				if buf.Len() >= bufRows {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		if schema != nil {
			return flush()
		}
		return nil
	}

	produceErr := sendErrClose(produce, sendCh, &wg)
	if sendErr != nil {
		return sendErr
	}
	if produceErr != nil {
		return produceErr
	}

	summary := colstore.NewBatch(colstore.Schema{
		{Name: "node", Type: colstore.TypeInt64},
		{Name: "rows", Type: colstore.TypeInt64},
		{Name: "bytes", Type: colstore.TypeInt64},
	})
	if err := summary.AppendRow(int64(ctx.NodeID), totalRows.Load(), totalBytes.Load()); err != nil {
		return err
	}
	return out.Write(summary)
}

// sendErrClose runs the producer, then closes the channel and waits for the
// sender to drain — the join point of the two pipeline stages.
func sendErrClose(produce func() error, ch chan encodedChunk, wg *sync.WaitGroup) error {
	err := produce()
	close(ch)
	wg.Wait()
	return err
}

// Register installs the export UDF and the hub service into a database.
// The db argument is any registry owner (internal/vertica.DB satisfies it).
func Register(db interface {
	UDFs() *udf.Registry
	RegisterService(name string, svc any)
}, hub *Hub) error {
	db.RegisterService(ServiceName, hub)
	return db.UDFs().Register(FuncName, func() udf.Transform { return exportUDF{} })
}
