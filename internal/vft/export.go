package vft

import (
	"fmt"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/udf"
)

// sendRetries caps how many times flush offers one chunk to the sink; the
// receiver's (part, seq) dedup makes every retransmission idempotent.
const sendRetries = 3

// exportUDF is the ExportToDistributedR transform function (Fig. 4). One
// instance runs per node-local chunk under OVER (PARTITION BEST); each
// instance reads its rows, buffers them (psize rows per chunk — the
// partition-size hint of §3.1), encodes each buffer as a columnar chunk and
// pushes it to the target worker's staging area through the Hub.
type exportUDF struct{}

// OutputSchema: one summary row per instance (node, rows, bytes).
func (exportUDF) OutputSchema(in colstore.Schema, params udf.Params) (colstore.Schema, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("vft: ExportToDistributedR needs at least one column argument")
	}
	if _, err := params.String("session"); err != nil {
		return nil, err
	}
	policy := params.StringOr("policy", PolicyLocality)
	if policy != PolicyLocality && policy != PolicyUniform {
		return nil, fmt.Errorf("vft: unknown policy %q", policy)
	}
	if _, err := params.Int("workers"); err != nil {
		return nil, err
	}
	return colstore.Schema{
		{Name: "node", Type: colstore.TypeInt64},
		{Name: "rows", Type: colstore.TypeInt64},
		{Name: "bytes", Type: colstore.TypeInt64},
	}, nil
}

func (exportUDF) ProcessPartition(ctx *udf.Ctx, in udf.BatchReader, out udf.BatchWriter) error {
	svc, err := ctx.Service(ServiceName)
	if err != nil {
		return err
	}
	sink, ok := svc.(ChunkSink)
	if !ok {
		return fmt.Errorf("vft: service %q is %T, not a ChunkSink", ServiceName, svc)
	}
	sessionID, err := ctx.Params.String("session")
	if err != nil {
		return err
	}
	policy := ctx.Params.StringOr("policy", PolicyLocality)
	workers := int(ctx.Params.IntOr("workers", 1))
	bufRows := int(ctx.Params.IntOr("psize", 4096))
	if bufRows <= 0 {
		bufRows = 4096
	}

	var schema colstore.Schema
	var buf *colstore.Batch
	totalRows, totalBytes := 0, 0
	localSeq := 0
	// Round-robin cursor for the uniform policy; offset by node and instance
	// so concurrent instances do not all start at worker 0.
	rr := ctx.NodeID + ctx.Instance

	flush := func() error {
		if buf == nil || buf.Len() == 0 {
			return nil
		}
		start := time.Now()
		msg, err := EncodeChunk(buf)
		if err != nil {
			return err
		}
		var target int
		switch policy {
		case PolicyLocality:
			// Node i's data goes to partition i (= worker i), Fig. 5.
			target = ctx.NodeID
		case PolicyUniform:
			target = rr % workers
			rr++
		default:
			return fmt.Errorf("vft: unknown policy %q", policy)
		}
		rows := buf.Len()
		elapsed := time.Since(start)
		seq := OrderKey(ctx.NodeID, ctx.Instance, localSeq)
		localSeq++
		// Retransmit on failure: the hub dedups by (part, seq), so resending
		// after a lost acknowledgement is safe. The TCP sink retries
		// internally as well; this loop also covers the in-process path.
		var sendErr error
		for attempt := 0; attempt < sendRetries; attempt++ {
			if attempt > 0 {
				mRetransmits.Inc()
			}
			if sendErr = sink.Send(sessionID, target, seq, msg, rows, elapsed); sendErr == nil {
				break
			}
		}
		if sendErr != nil {
			return sendErr
		}
		totalRows += rows
		totalBytes += len(msg)
		buf = colstore.NewBatch(schema)
		return nil
	}

	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if schema == nil {
			schema = b.Schema
			buf = colstore.NewBatch(schema)
		}
		// Stage rows into the in-memory buffer, flushing every bufRows.
		off := 0
		for off < b.Len() {
			take := bufRows - buf.Len()
			if take > b.Len()-off {
				take = b.Len() - off
			}
			if err := buf.AppendBatch(b.Slice(off, off+take)); err != nil {
				return err
			}
			off += take
			if buf.Len() >= bufRows {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if schema != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	summary := colstore.NewBatch(colstore.Schema{
		{Name: "node", Type: colstore.TypeInt64},
		{Name: "rows", Type: colstore.TypeInt64},
		{Name: "bytes", Type: colstore.TypeInt64},
	})
	if err := summary.AppendRow(int64(ctx.NodeID), int64(totalRows), int64(totalBytes)); err != nil {
		return err
	}
	return out.Write(summary)
}

// Register installs the export UDF and the hub service into a database.
// The db argument is any registry owner (internal/vertica.DB satisfies it).
func Register(db interface {
	UDFs() *udf.Registry
	RegisterService(name string, svc any)
}, hub *Hub) error {
	db.RegisterService(ServiceName, hub)
	return db.UDFs().Register(FuncName, func() udf.Transform { return exportUDF{} })
}
