package vft

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/telemetry"
	"verticadr/internal/vertica"
)

func setup(t *testing.T, nodes, workers int) (*vertica.DB, *dr.Cluster, *Hub) {
	t.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: nodes, BlockRows: 128, UDFInstancesPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dr.Start(dr.Config{Workers: workers, InstancesPerWorker: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	hub := NewHub()
	if err := Register(db, hub); err != nil {
		t.Fatal(err)
	}
	return db, c, hub
}

func loadTestTable(t *testing.T, db *vertica.DB, rows int) {
	t.Helper()
	if err := db.Exec(`CREATE TABLE mytable (id INTEGER, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		_ = b.AppendRow(int64(i), float64(i)*0.5, float64(i)*2)
	}
	if err := db.Load("mytable", b); err != nil {
		t.Fatal(err)
	}
}

func collectIDs(t *testing.T, frame interface {
	NPartitions() int
	Part(int) (*colstore.Batch, error)
}) []int64 {
	t.Helper()
	var ids []int64
	for i := 0; i < frame.NPartitions(); i++ {
		b, err := frame.Part(i)
		if err != nil {
			t.Fatal(err)
		}
		idx := b.Schema.ColIndex("id")
		ids = append(ids, b.Cols[idx].Ints...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func newFrameForTest(c *dr.Cluster, nparts int) (*darray.DFrame, error) {
	frame, err := darray.NewFrame(c, nparts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nparts; i++ {
		if err := frame.SetWorker(i, i%c.NumWorkers()); err != nil {
			return nil, err
		}
	}
	return frame, nil
}

func TestChunkRoundTrip(t *testing.T) {
	schema := colstore.Schema{
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "n", Type: colstore.TypeInt64},
		{Name: "s", Type: colstore.TypeString},
	}
	b := colstore.NewBatch(schema)
	_ = b.AppendRow(1.5, int64(2), "hello")
	_ = b.AppendRow(-0.25, int64(-9), "")
	msg, err := EncodeChunk(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunk(msg, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Cols[0].Floats[1] != -0.25 || got.Cols[2].Strs[0] != "hello" {
		t.Fatalf("round trip = %+v", got)
	}
	// Wrong schema is rejected.
	if _, err := DecodeChunk(msg, schema[:2]); err == nil {
		t.Fatal("short schema should fail")
	}
	if _, err := DecodeChunk([]byte{}, schema); err == nil {
		t.Fatal("empty message should fail")
	}
	if _, err := DecodeChunk(msg[:3], schema); err == nil {
		t.Fatal("truncated message should fail")
	}
}

func TestQuickChunkRoundTrip(t *testing.T) {
	schema := colstore.Schema{{Name: "f", Type: colstore.TypeFloat64}}
	f := func(vals []float64) bool {
		b := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.FloatVector(vals)}}
		msg, err := EncodeChunk(b)
		if err != nil {
			return false
		}
		got, err := DecodeChunk(msg, schema)
		if err != nil || got.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if got.Cols[0].Floats[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLocalityPreservesSegments(t *testing.T) {
	db, c, hub := setup(t, 4, 4)
	loadTestTable(t, db, 2000)
	frame, stats, err := Load(db, c, hub, "mytable", []string{"id", "a", "b"}, PolicyLocality, 256)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NPartitions() != 4 {
		t.Fatalf("nparts = %d", frame.NPartitions())
	}
	// Locality: partition i sizes equal node i's segment sizes.
	segSizes, _ := db.SegmentSizes("mytable")
	for i := 0; i < 4; i++ {
		rows, _, err := frame.PartitionSize(i)
		if err != nil {
			t.Fatal(err)
		}
		if rows != segSizes[i] {
			t.Fatalf("partition %d rows %d != segment %d", i, rows, segSizes[i])
		}
		if frame.WorkerOf(i) != i {
			t.Fatalf("partition %d on worker %d", i, frame.WorkerOf(i))
		}
	}
	// Every row arrived exactly once.
	ids := collectIDs(t, frame)
	if len(ids) != 2000 {
		t.Fatalf("got %d rows", len(ids))
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("missing/duplicated id %d (got %d)", i, id)
		}
	}
	if stats.Rows != 2000 || stats.Bytes == 0 || stats.Chunks == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Policy != PolicyLocality {
		t.Fatalf("policy = %q", stats.Policy)
	}
}

func TestLoadUniformBalances(t *testing.T) {
	db, c, hub := setup(t, 2, 4)
	// Build a skewed table: everything on node 1.
	if err := db.Exec(`CREATE TABLE sk (id INTEGER, v FLOAT)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "v", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < 1200; i++ {
		_ = b.AppendRow(int64(i), float64(i))
	}
	if err := db.LoadAt("sk", 1, b); err != nil {
		t.Fatal(err)
	}
	frame, stats, err := Load(db, c, hub, "sk", nil, PolicyUniform, 50)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NPartitions() != 4 {
		t.Fatalf("nparts = %d", frame.NPartitions())
	}
	sizes := stats.PartSizes
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 1200 {
		t.Fatalf("total rows %d, sizes %v", total, sizes)
	}
	// Uniform policy: each worker within 25% of even share despite the
	// fully skewed segmentation.
	for i, s := range sizes {
		if s < 200 || s > 400 {
			t.Fatalf("partition %d badly unbalanced: %v", i, sizes)
		}
	}
	ids := collectIDs(t, frame)
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row multiset broken at %d", i)
		}
	}
}

func TestLoadLocalityRequiresEqualCounts(t *testing.T) {
	db, c, hub := setup(t, 2, 3)
	loadTestTable(t, db, 100)
	if _, _, err := Load(db, c, hub, "mytable", nil, PolicyLocality, 0); err == nil {
		t.Fatal("locality with unequal counts must fail")
	}
	// Uniform works regardless of relative counts (§3.2).
	frame, _, err := Load(db, c, hub, "mytable", nil, PolicyUniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Rows() != 100 {
		t.Fatalf("rows = %d", frame.Rows())
	}
}

func TestLoadErrors(t *testing.T) {
	db, c, hub := setup(t, 2, 2)
	if _, _, err := Load(db, c, hub, "missing", nil, PolicyLocality, 0); err == nil {
		t.Fatal("missing table should fail")
	}
	loadTestTable(t, db, 10)
	if _, _, err := Load(db, c, hub, "mytable", []string{"zz"}, PolicyLocality, 0); err == nil {
		t.Fatal("bad column should fail")
	}
	if _, _, err := Load(db, c, hub, "mytable", nil, "magic", 0); err == nil {
		t.Fatal("bad policy should fail")
	}
}

func TestHubSendValidation(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	if err := hub.Send("nope", 0, 0, nil, 0, 0); err == nil {
		t.Fatal("unknown session should fail")
	}
	_ = c
}

func TestExportUDFViaSQLDirect(t *testing.T) {
	// Drive the export UDF through a hand-written SQL statement, as the
	// paper's Fig. 4 shows, rather than through Load.
	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 300)
	frame, err := newFrameForTest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	def, _ := db.TableDef("mytable")
	schema, _ := def.Schema.Project([]string{"a", "b"})
	id := hub.open(frame, schema, PolicyLocality)
	res, err := db.Query(`SELECT ExportToDistributedR(a, b USING PARAMETERS session='` + id + `', policy='locality', psize=64, workers=2) OVER (PARTITION BEST) FROM mytable`)
	if err != nil {
		t.Fatal(err)
	}
	// One summary row per UDF instance, each on a valid node.
	if res.Len() == 0 {
		t.Fatal("export returned no summary rows")
	}
	stats, err := hub.finalize(id, c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 300 {
		t.Fatalf("transferred %d rows", stats.Rows)
	}
}

func TestExportUDFParamValidation(t *testing.T) {
	db, _, _ := setup(t, 1, 1)
	loadTestTable(t, db, 10)
	for _, q := range []string{
		`SELECT ExportToDistributedR(a USING PARAMETERS policy='locality', workers=1) OVER (PARTITION BEST) FROM mytable`,         // no session
		`SELECT ExportToDistributedR(a USING PARAMETERS session='s', policy='bad', workers=1) OVER (PARTITION BEST) FROM mytable`, // bad policy
		`SELECT ExportToDistributedR(a USING PARAMETERS session='s', policy='locality') OVER (PARTITION BEST) FROM mytable`,       // no workers
		`SELECT ExportToDistributedR(USING PARAMETERS session='s', workers=1) OVER (PARTITION BEST) FROM mytable`,                 // no columns
	} {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestLoadDeterministicOrder(t *testing.T) {
	// Two transfers of the same table must produce identical per-partition
	// row order (chunks are reassembled by deterministic sequence keys), so
	// separately loaded X and Y arrays stay row-aligned — the Figure 3
	// pattern of loading features and response in separate calls.
	db, c, hub := setup(t, 3, 3)
	loadTestTable(t, db, 3000)
	f1, _, err := Load(db, c, hub, "mytable", []string{"id"}, PolicyLocality, 97)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := Load(db, c, hub, "mytable", []string{"id"}, PolicyLocality, 97)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < f1.NPartitions(); p++ {
		b1, _ := f1.Part(p)
		b2, _ := f2.Part(p)
		if b1.Len() != b2.Len() {
			t.Fatalf("partition %d length differs", p)
		}
		for r := 0; r < b1.Len(); r++ {
			if b1.Cols[0].Ints[r] != b2.Cols[0].Ints[r] {
				t.Fatalf("partition %d row %d differs: %d vs %d",
					p, r, b1.Cols[0].Ints[r], b2.Cols[0].Ints[r])
			}
		}
	}
}

func TestStatsStringAndCounters(t *testing.T) {
	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 500)
	_, stats, err := Load(db, c, hub, "mytable", nil, PolicyLocality, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 500 || stats.Chunks == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	// Locality policy: every chunk lands on its source node's worker.
	if stats.ChunksLocal != stats.Chunks {
		t.Fatalf("locality policy: %d/%d chunks local", stats.ChunksLocal, stats.Chunks)
	}
	if stats.Total <= 0 {
		t.Fatal("stats.Total not stamped")
	}
	s := stats.String()
	for _, want := range []string{"locality policy", "500 rows", "phase breakdown", "DB-side", "network", "conversion", "partition sizes", "total:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats.String() missing %q:\n%s", want, s)
		}
	}
	// In-process transfer has no network leg.
	if !strings.Contains(s, "0s (in-process)") {
		t.Fatalf("in-proc transfer should report zero network time:\n%s", s)
	}
	// The global registry accumulated the transfer.
	reg := telemetry.Default()
	if reg.Counter("vft_rows_total").Value() < 500 {
		t.Fatalf("vft_rows_total = %d, want >= 500", reg.Counter("vft_rows_total").Value())
	}
	if reg.Counter("vft_transfers_total", telemetry.L("policy", PolicyLocality)).Value() < 1 {
		t.Fatal("vft_transfers_total{policy=locality} not incremented")
	}
	if reg.Counter("vft_chunks_total", telemetry.L("locality", "local")).Value() < int64(stats.Chunks) {
		t.Fatal("vft_chunks_total{locality=local} under-counted")
	}
}
