package vft

import (
	"strings"
	"testing"
	"time"
)

func TestLoadOverTCPLocality(t *testing.T) {
	db, c, hub := setup(t, 3, 3)
	loadTestTable(t, db, 1500)
	svc, err := ServeTCP(hub, c.NumWorkers())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if len(svc.Addrs()) != 3 {
		t.Fatalf("addrs = %v", svc.Addrs())
	}
	frame, stats, err := LoadTCP(db, c, hub, svc, "mytable", nil, PolicyLocality, 128)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Rows() != 1500 {
		t.Fatalf("rows = %d", frame.Rows())
	}
	if stats.Rows != 1500 || stats.Chunks == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Every row arrived exactly once over the sockets.
	ids := collectIDs(t, frame)
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row multiset broken at %d: %d", i, id)
		}
	}
	// Partition sizes still mirror the segmentation (locality over TCP).
	segSizes, _ := db.SegmentSizes("mytable")
	for i, want := range segSizes {
		got, _, _ := frame.PartitionSize(i)
		if got != want {
			t.Fatalf("partition %d = %d want %d", i, got, want)
		}
	}
}

func TestLoadOverTCPUniform(t *testing.T) {
	db, c, hub := setup(t, 2, 4)
	loadTestTable(t, db, 800)
	svc, err := ServeTCP(hub, c.NumWorkers())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	frame, stats, err := LoadTCP(db, c, hub, svc, "mytable", nil, PolicyUniform, 50)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Rows() != 800 {
		t.Fatalf("rows = %d", frame.Rows())
	}
	for i, s := range stats.PartSizes {
		if s < 100 || s > 300 {
			t.Fatalf("uniform partition %d = %d (sizes %v)", i, s, stats.PartSizes)
		}
	}
}

func TestTCPClientErrors(t *testing.T) {
	hub := NewHub()
	svc, err := ServeTCP(hub, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	client := NewTCPClient(svc.Addrs())
	defer client.Close()

	// Unknown session propagates the remote error through the ack channel.
	err = client.Send("no-such-session", 0, 0, []byte("x"), 1, time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("want remote unknown-session error, got %v", err)
	}
	// Out-of-range partition fails locally.
	if err := client.Send("s", 5, 0, nil, 0, 0); err == nil {
		t.Fatal("bad partition should fail")
	}
	// Dead address fails to dial.
	dead := NewTCPClient([]string{"127.0.0.1:1"})
	defer dead.Close()
	if err := dead.Send("s", 0, 0, []byte("x"), 1, 0); err == nil {
		t.Fatal("dial to dead address should fail")
	}
}

func TestTCPServiceValidation(t *testing.T) {
	if _, err := ServeTCP(NewHub(), 0); err == nil {
		t.Fatal("0 workers should fail")
	}
	hub := NewHub()
	svc, _ := ServeTCP(hub, 2)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 600)
	svc, err := ServeTCP(hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Two consecutive loads through the same service: pool reuse must not
	// corrupt framing.
	for i := 0; i < 2; i++ {
		frame, _, err := LoadTCP(db, c, hub, svc, "mytable", nil, PolicyLocality, 64)
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		if frame.Rows() != 600 {
			t.Fatalf("load %d rows = %d", i, frame.Rows())
		}
	}
}
