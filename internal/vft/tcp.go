package vft

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ChunkSink is where export UDF instances push encoded chunks. The in-proc
// Hub implements it directly; TCPClient implements it over real sockets so
// the database and Distributed R can run as separate processes/machines
// (the paper: "The new transfer mechanism works irrespective of whether R
// instances are on the same or different nodes as the database").
//
// Implementations must not retain msg past the call: the sender owns the
// buffer and recycles it once Send returns (the pooled-buffer contract; the
// Hub decodes eagerly, TCPClient copies msg into its own pooled frame).
type ChunkSink interface {
	Send(sessionID string, part int, seq uint64, msg []byte, rows int, dbTime time.Duration) error
}

var _ ChunkSink = (*Hub)(nil)

// Frame layout (little-endian):
//
//	u32 payload length, then payload:
//	  uvarint len(session) | session | uvarint part | uvarint seq |
//	  uvarint rows | uvarint dbTimeNanos | chunk bytes (rest of payload)
//	reply: 1 status byte (0 ok) | on error: u16 length + message

// TCPService runs one listener per Distributed R worker; received frames
// are staged into the Hub exactly as in-process sends are. This is the
// "workers start listening for network connections from Vertica processes"
// step of §3.1.
type TCPService struct {
	hub       *Hub
	listeners []net.Listener
	addrs     []string
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// ServeTCP starts `workers` loopback listeners feeding the hub.
func ServeTCP(hub *Hub, workers int) (*TCPService, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("vft: need at least one worker listener")
	}
	s := &TCPService{hub: hub}
	for i := 0; i < workers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("vft: listen: %w", err)
		}
		s.listeners = append(s.listeners, ln)
		s.addrs = append(s.addrs, ln.Addr().String())
		s.wg.Add(1)
		go s.acceptLoop(ln)
	}
	return s, nil
}

// Addrs returns the per-worker listener addresses — the hosts argument of
// the ExportToDistributedR call (Fig. 4).
func (s *TCPService) Addrs() []string { return append([]string(nil), s.addrs...) }

// Close stops all listeners and waits for handler goroutines.
func (s *TCPService) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *TCPService) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *TCPService) handle(conn net.Conn) {
	// One pooled frame buffer per connection, reused across frames: the hub
	// decodes each chunk before dispatch returns, so no frame outlives its
	// iteration and the reader is allocation-free in steady state.
	payload := getBuf()
	defer func() { putBuf(payload) }()
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return // EOF or closed
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrameBytes {
			writeReply(conn, fmt.Errorf("vft: frame too large (%d bytes)", n))
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		// Time the payload read only: the length-prefix read blocks waiting
		// for the next frame, which is sender idle time, not transfer time.
		start := time.Now()
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		netTime := time.Since(start)
		err := s.dispatch(payload, netTime)
		if writeReply(conn, err) != nil {
			return
		}
	}
}

func (s *TCPService) dispatch(payload []byte, netTime time.Duration) error {
	session, rest, err := readString(payload)
	if err != nil {
		return err
	}
	part, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("vft: corrupt frame (part)")
	}
	rest = rest[m:]
	seq, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("vft: corrupt frame (seq)")
	}
	rest = rest[m:]
	rows, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("vft: corrupt frame (rows)")
	}
	rest = rest[m:]
	nanos, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("vft: corrupt frame (time)")
	}
	rest = rest[m:]
	// No defensive copy: Hub.Send decodes the chunk before returning, so the
	// connection's reused frame buffer is safe to overwrite afterwards.
	s.hub.addNet(session, netTime)
	return s.hub.Send(session, int(part), seq, rest, int(rows), time.Duration(nanos))
}

func readString(b []byte) (string, []byte, error) {
	l, m := binary.Uvarint(b)
	if m <= 0 || uint64(len(b)-m) < l {
		return "", nil, fmt.Errorf("vft: corrupt frame (string)")
	}
	return string(b[m : m+int(l)]), b[m+int(l):], nil
}

func writeReply(conn net.Conn, err error) error {
	if err == nil {
		_, werr := conn.Write([]byte{0})
		return werr
	}
	msg := err.Error()
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	buf := make([]byte, 3+len(msg))
	buf[0] = 1
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(msg)))
	copy(buf[3:], msg)
	_, werr := conn.Write(buf)
	return werr
}

// TCPClient is the database-side sender: it dials worker listeners and
// frames chunks onto sockets, with a small per-address connection pool so
// concurrent UDF instances reuse connections. Send retries failed attempts
// on a fresh connection with exponential backoff, and every attempt runs
// under a deadline so a wedged receiver cannot hang the exporter.
type TCPClient struct {
	addrs []string

	// Attempts caps how many times Send tries a chunk (default 3). Each
	// retry reconnects: a connection that saw any error is closed, never
	// pooled.
	Attempts int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (default 2ms).
	Backoff time.Duration
	// Timeout bounds each attempt's socket I/O (default 10s).
	Timeout time.Duration

	mu   sync.Mutex
	pool map[string][]net.Conn
}

// NewTCPClient builds a sender for the given worker addresses (index ==
// target partition, which equals the worker index under both policies).
func NewTCPClient(addrs []string) *TCPClient {
	return &TCPClient{addrs: addrs, pool: map[string][]net.Conn{}}
}

func (c *TCPClient) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return 3
}

func (c *TCPClient) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 2 * time.Millisecond
}

func (c *TCPClient) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

var _ ChunkSink = (*TCPClient)(nil)

func (c *TCPClient) getConn(addr string) (net.Conn, error) {
	c.mu.Lock()
	conns := c.pool[addr]
	if len(conns) > 0 {
		conn := conns[len(conns)-1]
		c.pool[addr] = conns[:len(conns)-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.Dial("tcp", addr)
}

func (c *TCPClient) putConn(addr string, conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool[addr] = append(c.pool[addr], conn)
}

// Send implements ChunkSink over TCP with a synchronous ack. A failed
// attempt (dial, write, ack read, or deadline) closes its connection and is
// retried on a fresh one after exponential backoff; since the receiver's
// (part, seq) dedup makes retransmission idempotent, a chunk whose ack was
// lost in flight is simply sent again.
//
// The whole frame — length prefix included — is assembled once into a
// pooled buffer and written with a single syscall; every retransmission
// reuses that same frame (Send still owns it), and it returns to the pool
// only when Send is done with all attempts. msg itself is only read while
// building the frame, honoring the ChunkSink contract.
func (c *TCPClient) Send(sessionID string, part int, seq uint64, msg []byte, rows int, dbTime time.Duration) error {
	if part < 0 || part >= len(c.addrs) {
		return fmt.Errorf("vft: no listener for partition %d", part)
	}
	addr := c.addrs[part]

	frame := getBuf()
	defer func() { putBuf(frame) }()
	frame = append(frame, 0, 0, 0, 0) // u32 payload length, patched below
	frame = binary.AppendUvarint(frame, uint64(len(sessionID)))
	frame = append(frame, sessionID...)
	frame = binary.AppendUvarint(frame, uint64(part))
	frame = binary.AppendUvarint(frame, seq)
	frame = binary.AppendUvarint(frame, uint64(rows))
	frame = binary.AppendUvarint(frame, uint64(dbTime.Nanoseconds()))
	frame = append(frame, msg...)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))

	var err error
	backoff := c.backoff()
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			mRetransmits.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = c.sendOnce(addr, frame); err == nil {
			return nil
		}
	}
	return fmt.Errorf("vft: send to %s failed after %d attempts: %w", addr, c.attempts(), err)
}

// sendOnce runs one framed request/ack exchange under the per-attempt
// deadline. The connection is pooled only after a fully clean exchange;
// any error closes it so a later Send cannot inherit a poisoned stream.
func (c *TCPClient) sendOnce(addr string, frame []byte) error {
	conn, err := c.getConn(addr)
	if err != nil {
		return fmt.Errorf("vft: dial %s: %w", addr, err)
	}
	ok := false
	defer func() {
		if ok {
			c.putConn(addr, conn)
		} else {
			conn.Close()
		}
	}()
	if err := conn.SetDeadline(time.Now().Add(c.timeout())); err != nil {
		return fmt.Errorf("vft: set deadline: %w", err)
	}

	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("vft: send frame: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return fmt.Errorf("vft: read ack: %w", err)
	}
	if status[0] != 0 {
		var lb [2]byte
		if _, err := io.ReadFull(conn, lb[:]); err != nil {
			return fmt.Errorf("vft: read error reply: %w", err)
		}
		msg := make([]byte, binary.LittleEndian.Uint16(lb[:]))
		if _, err := io.ReadFull(conn, msg); err != nil {
			return fmt.Errorf("vft: read error reply: %w", err)
		}
		return fmt.Errorf("vft: remote: %s", msg)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("vft: clear deadline: %w", err)
	}
	ok = true
	return nil
}

// Close drains the connection pool.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conns := range c.pool {
		for _, conn := range conns {
			conn.Close()
		}
	}
	c.pool = map[string][]net.Conn{}
}
