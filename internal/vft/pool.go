package vft

import (
	"sync"

	"verticadr/internal/colstore"
	"verticadr/internal/telemetry"
)

// Buffer and batch pools for the zero-steady-state-allocation transfer path.
// Encode buffers, TCP frame buffers and decoded staging batches all cycle
// through here; the hit/miss counters make reuse observable (a healthy
// steady-state transfer shows hits dominating misses after warm-up).
//
// Ownership contract: whoever takes a buffer or batch from the pool owns it
// until the explicit return point. ChunkSink.Send implementations must not
// retain msg past the call (the hub decodes eagerly, the TCP client copies
// into its own frame), which is what lets senders recycle encode buffers the
// moment Send returns — retransmissions inside Send reuse the still-owned
// buffer and can never observe a recycled one.
var (
	mPoolHit  = telemetry.Default().Counter("vft_pool_hit_total")
	mPoolMiss = telemetry.Default().Counter("vft_pool_miss_total")
)

// maxPooledBuf caps the byte buffers kept for reuse so one oversized chunk
// cannot pin arbitrary memory in the pool.
const maxPooledBuf = 8 << 20

// initialBufCap sizes fresh buffers for a default-psize chunk of a few
// numeric columns, so typical transfers never regrow.
const initialBufCap = 64 << 10

var bufPool sync.Pool // stores *[]byte

// getBuf returns an empty byte buffer from the pool (or a fresh one).
func getBuf() []byte {
	if p, ok := bufPool.Get().(*[]byte); ok {
		mPoolHit.Inc()
		return (*p)[:0]
	}
	mPoolMiss.Inc()
	return make([]byte, 0, initialBufCap)
}

// putBuf returns a buffer to the pool. The caller must not use b afterwards.
func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

var batchPool sync.Pool // stores *colstore.Batch

// getBatch returns an empty batch with the given schema, reusing pooled
// column storage when the pooled batch's schema matches (the common case:
// one table shape per transfer). A schema mismatch falls back to a fresh
// allocation rather than rebuilding columns in place.
func getBatch(schema colstore.Schema) *colstore.Batch {
	if b, ok := batchPool.Get().(*colstore.Batch); ok && b.Schema.Equal(schema) {
		mPoolHit.Inc()
		b.Reset()
		return b
	}
	mPoolMiss.Inc()
	return colstore.NewBatch(schema)
}

// putBatch returns a batch to the pool. The caller must not use b afterwards.
func putBatch(b *colstore.Batch) {
	if b == nil {
		return
	}
	batchPool.Put(b)
}
