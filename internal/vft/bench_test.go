package vft

import (
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/dr"
	"verticadr/internal/vertica"
)

// benchTable loads an MB-scale three-column table (id INTEGER, a FLOAT,
// b FLOAT) for the transfer benchmarks.
func benchSetup(b *testing.B, rows int) (*vertica.DB, *dr.Cluster, *Hub) {
	b.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: 4, BlockRows: 2048, UDFInstancesPerNode: 2})
	if err != nil {
		b.Fatal(err)
	}
	c, err := dr.Start(dr.Config{Workers: 4, InstancesPerWorker: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Shutdown)
	hub := NewHub()
	if err := Register(db, hub); err != nil {
		b.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE bt (id INTEGER, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`); err != nil {
		b.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	batch := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		_ = batch.AppendRow(int64(i), float64(i)*0.5, float64(i)*2)
	}
	if err := db.Load("bt", batch); err != nil {
		b.Fatal(err)
	}
	return db, c, hub
}

// BenchmarkLoad is the headline transfer benchmark: export UDF scan+encode,
// in-process send with retransmission machinery, eager pooled decode, and
// frame assembly. ~1.2 MB (50k rows × 24 B) per iteration.
func BenchmarkLoad(b *testing.B) {
	const rows = 50_000
	db, c, hub := benchSetup(b, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, _, err := Load(db, c, hub, "bt", []string{"id", "a", "b"}, PolicyLocality, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if frame.Rows() != rows {
			b.Fatal("row loss")
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func benchChunk(b *testing.B, rows int) (*colstore.Batch, []byte) {
	b.Helper()
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	batch := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		_ = batch.AppendRow(int64(i), float64(i)*0.5, float64(i)*2)
	}
	msg, err := EncodeChunk(batch)
	if err != nil {
		b.Fatal(err)
	}
	return batch, msg
}

// BenchmarkEncodeChunk measures the pooled append-into encoder on a
// 2048-row chunk.
func BenchmarkEncodeChunk(b *testing.B) {
	batch, _ := benchChunk(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := EncodeChunkInto(getBuf(), batch)
		if err != nil {
			b.Fatal(err)
		}
		putBuf(msg)
	}
}

// BenchmarkDecodeChunk measures decode into a pooled, reused batch.
func BenchmarkDecodeChunk(b *testing.B) {
	batch, msg := benchChunk(b, 2048)
	dst := colstore.NewBatch(batch.Schema)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		if err := DecodeChunkInto(dst, msg); err != nil {
			b.Fatal(err)
		}
	}
}
