package vft

import (
	"errors"
	"net"
	"testing"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
)

func idSchema() colstore.Schema {
	return colstore.Schema{{Name: "id", Type: colstore.TypeInt64}}
}

func encodeIDs(t *testing.T, ids ...int64) []byte {
	t.Helper()
	b := colstore.NewBatch(idSchema())
	for _, id := range ids {
		if err := b.AppendRow(id); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := EncodeChunk(b)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestHubSendIdempotent(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, err := newFrameForTest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := hub.open(frame, idSchema(), PolicyLocality)
	msg := encodeIDs(t, 1, 2, 3)
	seq := OrderKey(0, 0, 0)

	dups0 := mDupChunks.Value()
	// Send the same (part, seq) three times — a retransmission after a lost
	// ack. Only the first is staged; the rest are acknowledged silently.
	for i := 0; i < 3; i++ {
		if err := hub.Send(id, 0, seq, msg, 3, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Send(id, 0, OrderKey(0, 0, 1), encodeIDs(t, 4), 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := mDupChunks.Value() - dups0; got != 2 {
		t.Fatalf("dup chunks = %d, want 2", got)
	}
	stats, err := hub.finalize(id, c)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicates were absorbed: 4 rows total, not 10.
	if stats.Rows != 4 || stats.Chunks != 2 {
		t.Fatalf("stats = %d rows / %d chunks, want 4 / 2", stats.Rows, stats.Chunks)
	}
	b, err := frame.Part(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Fatalf("partition 0 has %d rows, want 4", b.Len())
	}
}

func TestAbortReleasesSession(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, _ := newFrameForTest(c, 2)
	id := hub.open(frame, idSchema(), PolicyLocality)
	if err := hub.Send(id, 0, 0, encodeIDs(t, 1), 1, 0); err != nil {
		t.Fatal(err)
	}
	aborted0 := mAborted.Value()
	if hub.Sessions() != 1 {
		t.Fatalf("sessions = %d", hub.Sessions())
	}
	if !hub.Abort(id) {
		t.Fatal("abort of live session reported false")
	}
	if hub.Sessions() != 0 {
		t.Fatal("session survived abort")
	}
	if hub.Abort(id) {
		t.Fatal("abort of dead session reported true")
	}
	if err := hub.Send(id, 0, 1, encodeIDs(t, 2), 1, 0); err == nil {
		t.Fatal("send to aborted session should fail")
	}
	if got := mAborted.Value() - aborted0; got != 1 {
		t.Fatalf("vft_sessions_aborted_total delta = %d, want 1", got)
	}
}

func TestCorruptChunkRejectedAtSend(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, _ := newFrameForTest(c, 2)
	id := hub.open(frame, idSchema(), PolicyLocality)
	// Chunks decode at arrival now, so garbage is rejected by Send itself
	// (the sender sees the error and can retransmit or fail the export)
	// instead of poisoning the session until finalize.
	if err := hub.Send(id, 0, 0, []byte{0xff, 0xee, 0xdd}, 1, 0); err == nil {
		t.Fatal("send of a corrupt chunk should fail")
	}
	// The rejected chunk is not staged: the same (part, seq) can be resent
	// with valid bytes and the session finalizes normally.
	if err := hub.Send(id, 0, 0, encodeIDs(t, 7), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := hub.Send(id, 1, OrderKey(1, 0, 0), encodeIDs(t, 8), 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.finalize(id, c); err != nil {
		t.Fatal(err)
	}
	if hub.Sessions() != 0 {
		t.Fatal("finalize leaked the session")
	}
}

func TestFinalizeErrorRemovesSession(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, _ := newFrameForTest(c, 2)
	// Pre-fill partition 1 with a different schema: the frame pins its
	// schema to the first fill, so finalize's Fill of the session's chunks
	// fails — and the errored finalize must still release the session.
	pre := colstore.NewBatch(colstore.Schema{{Name: "x", Type: colstore.TypeFloat64}})
	if err := pre.AppendRow(3.25); err != nil {
		t.Fatal(err)
	}
	if err := frame.Fill(1, pre); err != nil {
		t.Fatal(err)
	}
	id := hub.open(frame, idSchema(), PolicyLocality)
	if err := hub.Send(id, 0, 0, encodeIDs(t, 1), 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.finalize(id, c); err == nil {
		t.Fatal("finalize into a pre-filled partition should fail")
	}
	if hub.Sessions() != 0 {
		t.Fatal("errored finalize leaked the session")
	}
}

func TestLoadAbortsSessionOnExportFailure(t *testing.T) {
	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 100)
	// Replace the hub service with something that is not a ChunkSink, so the
	// export query fails mid-transfer.
	db.RegisterService(ServiceName, "not a sink")
	defer db.RegisterService(ServiceName, hub)
	if _, _, err := Load(db, c, hub, "mytable", nil, PolicyLocality, 0); err == nil {
		t.Fatal("export through a bogus sink should fail")
	}
	if hub.Sessions() != 0 {
		t.Fatalf("failed load leaked %d sessions", hub.Sessions())
	}
}

func TestReapIdle(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, _ := newFrameForTest(c, 2)
	idOld := hub.open(frame, idSchema(), PolicyLocality)
	idFresh := hub.open(frame, idSchema(), PolicyLocality)
	// Backdate the first session past the idle horizon.
	s, err := hub.get(idOld)
	if err != nil {
		t.Fatal(err)
	}
	s.lastTouch.Store(time.Now().Add(-time.Hour).UnixNano())

	reaped := hub.ReapIdle(time.Minute)
	if len(reaped) != 1 || reaped[0] != idOld {
		t.Fatalf("reaped = %v, want [%s]", reaped, idOld)
	}
	if hub.Sessions() != 1 {
		t.Fatalf("sessions = %d, want the fresh one to survive", hub.Sessions())
	}
	if _, err := hub.get(idFresh); err != nil {
		t.Fatalf("fresh session reaped: %v", err)
	}
	_ = c
}

func TestStartReaper(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, _ := newFrameForTest(c, 2)
	id := hub.open(frame, idSchema(), PolicyLocality)
	s, _ := hub.get(id)
	s.lastTouch.Store(time.Now().Add(-time.Hour).UnixNano())

	stop := hub.StartReaper(2*time.Millisecond, time.Minute)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for hub.Sessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if hub.Sessions() != 0 {
		t.Fatal("reaper never collected the idle session")
	}
	stop()
	stop() // idempotent
	_ = c
}

// TestInjectedSendFaultRecovered drives the in-process path with vft.send
// errors armed: flush's retransmit loop resends, the hub's dedup absorbs the
// duplicates, and the loaded frame is complete and correct.
func TestInjectedSendFaultRecovered(t *testing.T) {
	in := faults.New(11)
	in.MustArm(faults.Rule{Site: faults.SiteVFTSend, Kind: faults.Error, EveryN: 3})
	faults.Install(in)
	defer faults.Install(nil)

	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 1000)
	dups0 := mDupChunks.Value()
	retrans0 := mRetransmits.Value()
	frame, stats, err := Load(db, c, hub, "mytable", []string{"id"}, PolicyLocality, 64)
	if err != nil {
		t.Fatalf("load under send faults should recover: %v", err)
	}
	if stats.Rows != 1000 {
		t.Fatalf("stats.Rows = %d", stats.Rows)
	}
	ids := collectIDs(t, frame)
	if len(ids) != 1000 {
		t.Fatalf("got %d rows after recovery", len(ids))
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row %d missing or duplicated (got %d)", i, id)
		}
	}
	if mRetransmits.Value() == retrans0 {
		t.Fatal("no retransmits recorded despite armed send faults")
	}
	if mDupChunks.Value() == dups0 {
		t.Fatal("no duplicate chunks absorbed despite retransmission")
	}
	if hub.Sessions() != 0 {
		t.Fatal("recovered load leaked a session")
	}
}

// TestLoadTCPRecoversFromSendFaults is the same chaos over real sockets: the
// injected post-staging failure travels back as a remote error reply, the
// TCP client retransmits on a fresh connection, and dedup keeps the frame
// exact.
func TestLoadTCPRecoversFromSendFaults(t *testing.T) {
	in := faults.New(5)
	in.MustArm(faults.Rule{Site: faults.SiteVFTSend, Kind: faults.Error, EveryN: 4})
	faults.Install(in)
	defer faults.Install(nil)

	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 800)
	svc, err := ServeTCP(hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	retrans0 := mRetransmits.Value()
	frame, _, err := LoadTCP(db, c, hub, svc, "mytable", []string{"id"}, PolicyLocality, 64)
	if err != nil {
		t.Fatalf("TCP load under send faults should recover: %v", err)
	}
	ids := collectIDs(t, frame)
	if len(ids) != 800 {
		t.Fatalf("got %d rows after recovery", len(ids))
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row %d missing or duplicated (got %d)", i, id)
		}
	}
	if mRetransmits.Value() == retrans0 {
		t.Fatal("no retransmits recorded despite armed send faults")
	}
}

func TestTCPClientDeadline(t *testing.T) {
	// A listener that accepts and then goes silent: the ack never arrives,
	// so the per-attempt deadline must bound the send.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow bytes forever, never reply.
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()

	client := NewTCPClient([]string{ln.Addr().String()})
	client.Attempts = 1
	client.Timeout = 30 * time.Millisecond
	start := time.Now()
	err = client.Send("s", 0, 0, []byte("x"), 1, 0)
	if err == nil {
		t.Fatal("send to a silent receiver should time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("expected a timeout error, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline did not bound the send: %v", d)
	}
}

func TestTCPClientNeverPoolsFailedConns(t *testing.T) {
	// First exchange fails (no ack); the connection must be closed, not
	// pooled, so the next attempt dials fresh.
	accepts := make(chan net.Conn, 4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts <- conn
			// Close immediately: the client's ack read fails.
			conn.Close()
		}
	}()

	client := NewTCPClient([]string{ln.Addr().String()})
	client.Attempts = 2
	client.Backoff = time.Millisecond
	client.Timeout = 100 * time.Millisecond
	if err := client.Send("s", 0, 0, []byte("x"), 1, 0); err == nil {
		t.Fatal("send against a closing receiver should fail")
	}
	client.mu.Lock()
	pooled := 0
	for _, conns := range client.pool {
		pooled += len(conns)
	}
	client.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("%d failed connections were pooled", pooled)
	}
	// Both attempts dialed a fresh connection.
	if got := len(accepts); got != 2 {
		t.Fatalf("receiver saw %d connections, want 2 (one per attempt)", got)
	}
}

func TestTCPSendRetriesCountTelemetry(t *testing.T) {
	// End-to-end happy path over TCP still pools connections after clean
	// exchanges.
	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 200)
	svc, err := ServeTCP(hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	frame, stats, err := LoadTCP(db, c, hub, svc, "mytable", nil, PolicyLocality, 64)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Rows() != 200 || stats.Rows != 200 {
		t.Fatalf("rows = %d / %d", frame.Rows(), stats.Rows)
	}
	if telemetry.Default().Counter("vft_transfers_total", telemetry.L("policy", PolicyLocality)).Value() < 1 {
		t.Fatal("transfer not counted")
	}
}
