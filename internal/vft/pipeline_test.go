package vft

import (
	"math"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/faults"
)

// abSchema is the three-column test schema used by the byte-exactness tests.
func abSchema() colstore.Schema {
	return colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
}

// TestChaosPooledTransferByteExact loads the same table twice — once clean,
// once with 5% of sends dropping their ack — with buffer/batch pooling live
// on both paths. A retransmission must never observe a recycled buffer, so
// the two frames must agree bit for bit, partition by partition.
func TestChaosPooledTransferByteExact(t *testing.T) {
	db, c, hub := setup(t, 3, 3)
	loadTestTable(t, db, 2000)
	cols := []string{"id", "a", "b"}

	clean, _, err := Load(db, c, hub, "mytable", cols, PolicyLocality, 64)
	if err != nil {
		t.Fatal(err)
	}

	in := faults.New(42)
	in.MustArm(faults.Rule{Site: faults.SiteVFTSend, Kind: faults.Error, Prob: 0.05})
	faults.Install(in)
	defer faults.Install(nil)

	retrans0 := mRetransmits.Value()
	chaos, _, err := Load(db, c, hub, "mytable", cols, PolicyLocality, 64)
	if err != nil {
		t.Fatalf("load under 5%% send faults should recover: %v", err)
	}
	faults.Install(nil)
	if mRetransmits.Value() == retrans0 {
		t.Fatal("no retransmits recorded; the chaos run exercised nothing")
	}

	if clean.NPartitions() != chaos.NPartitions() {
		t.Fatalf("partition counts differ: %d vs %d", clean.NPartitions(), chaos.NPartitions())
	}
	for p := 0; p < clean.NPartitions(); p++ {
		want, err := clean.Part(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chaos.Part(p)
		if err != nil {
			t.Fatal(err)
		}
		if want.Len() != got.Len() {
			t.Fatalf("partition %d: %d rows clean vs %d under chaos", p, want.Len(), got.Len())
		}
		for ci, wc := range want.Cols {
			gc := got.Cols[ci]
			for r := 0; r < want.Len(); r++ {
				switch wc.Type {
				case colstore.TypeInt64:
					if wc.Ints[r] != gc.Ints[r] {
						t.Fatalf("partition %d col %d row %d: %d vs %d", p, ci, r, wc.Ints[r], gc.Ints[r])
					}
				case colstore.TypeFloat64:
					if math.Float64bits(wc.Floats[r]) != math.Float64bits(gc.Floats[r]) {
						t.Fatalf("partition %d col %d row %d: %x vs %x",
							p, ci, r, math.Float64bits(wc.Floats[r]), math.Float64bits(gc.Floats[r]))
					}
				}
			}
		}
	}
	if hub.Sessions() != 0 {
		t.Fatal("chaos load leaked a session")
	}
}

// TestEncodeChunkIntoMatchesEncodeChunk pins the append-into form to the
// allocating form byte for byte, including when the destination already
// carries leftover capacity from the pool.
func TestEncodeChunkIntoMatchesEncodeChunk(t *testing.T) {
	schema := abSchema()
	b := colstore.NewBatch(schema)
	for i := 0; i < 300; i++ {
		_ = b.AppendRow(int64(i), float64(i)*0.25, -float64(i))
	}
	want, err := EncodeChunk(b)
	if err != nil {
		t.Fatal(err)
	}
	// A dirty, non-empty destination: EncodeChunkInto must append from len 0
	// of whatever it is given.
	dst := make([]byte, 0, 7)
	got, err := EncodeChunkInto(dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("EncodeChunkInto differs from EncodeChunk: %d vs %d bytes", len(got), len(want))
	}
	// And through the pool, as the exporter uses it.
	pooled, err := EncodeChunkInto(getBuf(), b)
	if err != nil {
		t.Fatal(err)
	}
	if string(pooled) != string(want) {
		t.Fatal("pooled EncodeChunkInto differs from EncodeChunk")
	}
	putBuf(pooled)
}

// TestSendDoesNotRetainMsg verifies the eager-decode contract that makes
// pooled frame buffers safe: once Send returns, the caller may scribble over
// the message bytes without corrupting the staged rows.
func TestSendDoesNotRetainMsg(t *testing.T) {
	_, c, hub := setup(t, 2, 2)
	frame, err := newFrameForTest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := hub.open(frame, idSchema(), PolicyLocality)
	msg := encodeIDs(t, 10, 20, 30)
	if err := hub.Send(id, 0, OrderKey(0, 0, 0), msg, 3, 0); err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		msg[i] = 0xAA
	}
	if err := hub.Send(id, 1, OrderKey(1, 0, 0), encodeIDs(t, 40), 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.finalize(id, c); err != nil {
		t.Fatal(err)
	}
	b, err := frame.Part(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30}
	for i, v := range want {
		if b.Cols[0].Ints[i] != v {
			t.Fatalf("row %d = %d after caller scribbled on msg, want %d", i, b.Cols[0].Ints[i], v)
		}
	}
}

// TestPoolHitTelemetry checks that repeated loads actually recycle buffers
// and batches: the second load must record pool hits.
func TestPoolHitTelemetry(t *testing.T) {
	db, c, hub := setup(t, 2, 2)
	loadTestTable(t, db, 600)
	if _, _, err := Load(db, c, hub, "mytable", []string{"id"}, PolicyLocality, 64); err != nil {
		t.Fatal(err)
	}
	hits0 := mPoolHit.Value()
	if _, _, err := Load(db, c, hub, "mytable", []string{"id"}, PolicyLocality, 64); err != nil {
		t.Fatal(err)
	}
	if mPoolHit.Value() == hits0 {
		t.Fatal("second load recorded no pool hits; pooling is not wired in")
	}
}
