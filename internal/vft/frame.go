package vft

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameBytes caps a single frame payload; larger frames are rejected so a
// corrupt or hostile length prefix cannot force a giant allocation.
const MaxFrameBytes = 1 << 30

// WriteFrame writes one length-prefixed frame (u32 little-endian payload
// length, then the payload) in a single Write call. The transfer data plane
// and the query-serving protocol (internal/server) share this layout.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("vft: frame too large (%d bytes)", len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it has the
// capacity. It returns io.EOF unchanged when the stream ends cleanly between
// frames, so callers can distinguish shutdown from corruption.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("vft: frame too large (%d bytes)", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
