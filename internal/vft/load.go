package vft

import (
	"context"
	"fmt"
	"strings"

	"verticadr/internal/catalog"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/telemetry"
)

// DB is the slice of the database that VFT needs: metadata plus the ability
// to run the export query. internal/vertica.DB satisfies it.
type DB interface {
	TableDef(name string) (*catalog.TableDef, error)
	NumNodes() int
	Exec(sql string) error
}

// ctxExecer is implemented by databases whose Exec accepts a context
// (internal/vertica.DB does); LoadContext uses it so cancellation reaches
// the export query's scan, rather than only the boundaries around it.
type ctxExecer interface {
	ExecContext(ctx context.Context, sql string) error
}

// ServiceDB additionally lets callers swap the chunk sink the export UDF
// uses (in-proc hub vs TCP client). internal/vertica.DB satisfies it.
type ServiceDB interface {
	DB
	RegisterService(name string, svc any)
}

// LoadTCP runs a fast transfer whose data plane crosses real TCP sockets:
// worker listeners (svc) receive framed chunks from the database-side UDF
// instances, exactly as when the database and Distributed R run on
// different machines. Control flow is otherwise identical to Load.
func LoadTCP(db ServiceDB, c *dr.Cluster, hub *Hub, svc *TCPService, table string, cols []string, policy string, psize int) (*darray.DFrame, *Stats, error) {
	return LoadTCPContext(context.Background(), db, c, hub, svc, table, cols, policy, psize)
}

// LoadTCPContext is LoadTCP under a context; see LoadContext.
func LoadTCPContext(ctx context.Context, db ServiceDB, c *dr.Cluster, hub *Hub, svc *TCPService, table string, cols []string, policy string, psize int) (*darray.DFrame, *Stats, error) {
	client := NewTCPClient(svc.Addrs())
	defer client.Close()
	db.RegisterService(ServiceName, client)
	defer db.RegisterService(ServiceName, hub)
	return LoadContext(ctx, db, c, hub, table, cols, policy, psize)
}

// Load performs one complete fast transfer (the db2darray internals of §3):
//
//  1. Declare an empty distributed data frame — partitions sized later.
//  2. Workers stand by (their staging areas live in the Hub).
//  3. The master issues ONE SQL query invoking ExportToDistributedR with the
//     worker/network metadata, partition-size hint and policy (Fig. 4).
//  4. Vertica fans out UDF instances per node that stream encoded chunks.
//  5. Finalize converts staged chunks into frame partitions on the workers.
//
// With PolicyLocality the frame has one partition per database node,
// co-numbered with workers (requires equal counts); with PolicyUniform one
// partition per worker with near-even sizes.
func Load(db DB, c *dr.Cluster, hub *Hub, table string, cols []string, policy string, psize int) (*darray.DFrame, *Stats, error) {
	return LoadContext(context.Background(), db, c, hub, table, cols, policy, psize)
}

// LoadContext is Load under a context. When the database implements
// ExecContext (internal/vertica.DB does), cancellation propagates into the
// export query's scan; otherwise it is checked at the transfer boundaries.
func LoadContext(ctx context.Context, db DB, c *dr.Cluster, hub *Hub, table string, cols []string, policy string, psize int) (*darray.DFrame, *Stats, error) {
	def, err := db.TableDef(table)
	if err != nil {
		return nil, nil, err
	}
	if len(cols) == 0 {
		for _, cs := range def.Schema {
			cols = append(cols, cs.Name)
		}
	}
	schema, err := def.Schema.Project(cols)
	if err != nil {
		return nil, nil, err
	}
	nodes, workers := db.NumNodes(), c.NumWorkers()
	var nparts int
	switch policy {
	case PolicyLocality:
		if nodes != workers {
			return nil, nil, fmt.Errorf("vft: locality policy requires equal node counts (db=%d, dr=%d); use %q", nodes, workers, PolicyUniform)
		}
		nparts = nodes
	case PolicyUniform:
		nparts = workers
	default:
		return nil, nil, fmt.Errorf("vft: unknown policy %q", policy)
	}
	if psize <= 0 {
		// The paper: partition sizes are estimated as table rows divided by
		// the number of receiving R instances, and used as buffering hints.
		psize = 4096
	}
	frame, err := darray.NewFrame(c, nparts)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < nparts; i++ {
		if err := frame.SetWorker(i, i%workers); err != nil {
			return nil, nil, err
		}
	}
	sessionID := hub.open(frame, schema, policy)
	// Spans and the total use the telemetry clock, so a simulation-driven
	// clock makes the whole load report virtual time.
	clock := telemetry.Default().Clock()
	t0 := clock.Now()
	sp := telemetry.Default().Spans().StartSpan("vft.load",
		telemetry.L("table", table), telemetry.L("policy", policy))
	q := fmt.Sprintf(
		"SELECT %s(%s USING PARAMETERS session='%s', policy='%s', psize=%d, workers=%d) OVER (PARTITION BEST) FROM %s",
		FuncName, strings.Join(cols, ", "), sessionID, policy, psize, workers, table)
	exp := sp.StartChild("vft.export")
	execErr := func() error {
		if ce, ok := db.(ctxExecer); ok {
			return ce.ExecContext(ctx, q)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return db.Exec(q)
	}()
	if err := execErr; err != nil {
		sp.End()
		// Release the staged chunks: without the abort, a failed export
		// leaked the session (and its staging memory) forever.
		hub.Abort(sessionID)
		return nil, nil, fmt.Errorf("vft: export query failed: %w", err)
	}
	exp.End()
	fin := sp.StartChild("vft.finalize")
	stats, err := hub.finalize(sessionID, c)
	fin.End()
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	stats.Total = clock.Now() - t0
	mTransfers(policy).Inc()
	return frame, stats, nil
}
