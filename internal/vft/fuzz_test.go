package vft

import (
	"testing"

	"verticadr/internal/colstore"
)

// fuzzSchemas are the schemas FuzzDecodeChunk decodes against, indexed by
// the selector byte. They cover single- and multi-column shapes and every
// column type.
func fuzzSchemas() []colstore.Schema {
	return []colstore.Schema{
		{{Name: "id", Type: colstore.TypeInt64}},
		{{Name: "x", Type: colstore.TypeFloat64}},
		{
			{Name: "id", Type: colstore.TypeInt64},
			{Name: "a", Type: colstore.TypeFloat64},
			{Name: "b", Type: colstore.TypeFloat64},
		},
		{
			{Name: "s", Type: colstore.TypeString},
			{Name: "ok", Type: colstore.TypeBool},
		},
	}
}

// FuzzDecodeChunk hardens the chunk decoder against hostile frames:
// truncated column blocks, oversized length prefixes, wrong column counts,
// and garbage payloads must return an error (never panic, never allocate
// unboundedly), and anything that does decode must validate and agree with
// the one-shot DecodeChunk.
func FuzzDecodeChunk(f *testing.F) {
	// Valid chunks for each schema shape as seeds.
	mk := func(schema colstore.Schema, rows ...[]any) []byte {
		b := colstore.NewBatch(schema)
		for _, r := range rows {
			if err := b.AppendRow(r...); err != nil {
				panic(err)
			}
		}
		msg, err := EncodeChunk(b)
		if err != nil {
			panic(err)
		}
		return msg
	}
	schemas := fuzzSchemas()
	f.Add(uint8(0), mk(schemas[0], []any{int64(1)}, []any{int64(2)}))
	f.Add(uint8(1), mk(schemas[1], []any{3.5}))
	f.Add(uint8(2), mk(schemas[2], []any{int64(7), 0.5, -1.0}))
	f.Add(uint8(3), mk(schemas[3], []any{"hello", true}, []any{"", false}))
	valid := mk(schemas[0], []any{int64(9)})
	f.Add(uint8(0), valid[:len(valid)/2])                                // truncated mid-block
	f.Add(uint8(0), []byte{})                                            // empty frame
	f.Add(uint8(0), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})          // huge ncols varint
	f.Add(uint8(2), append([]byte{3, 0xff, 0xff, 0xff, 0x7f}, valid...)) // oversized column length
	f.Add(uint8(1), mk(schemas[0], []any{int64(1)}))                     // type mismatch vs schema

	f.Fuzz(func(t *testing.T, schemaSel uint8, msg []byte) {
		schema := fuzzSchemas()[int(schemaSel)%len(fuzzSchemas())]
		got, err := DecodeChunk(msg, schema)
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("decoded chunk fails validation: %v", verr)
		}
		// The into-form over a recycled batch must agree with the one-shot
		// decode: same row count, same schema.
		dst := colstore.NewBatch(schema)
		_ = dst.AppendRow(rowOf(schema)...) // dirty the destination
		dst.Reset()
		if err := DecodeChunkInto(dst, msg); err != nil {
			t.Fatalf("DecodeChunkInto rejects what DecodeChunk accepted: %v", err)
		}
		if dst.Len() != got.Len() {
			t.Fatalf("DecodeChunkInto decoded %d rows, DecodeChunk %d", dst.Len(), got.Len())
		}
	})
}

// rowOf builds one arbitrary row matching the schema, used to dirty reused
// batches before decoding into them.
func rowOf(schema colstore.Schema) []any {
	row := make([]any, len(schema))
	for i, c := range schema {
		switch c.Type {
		case colstore.TypeInt64:
			row[i] = int64(-1)
		case colstore.TypeFloat64:
			row[i] = -1.0
		case colstore.TypeString:
			row[i] = "dirty"
		case colstore.TypeBool:
			row[i] = true
		}
	}
	return row
}
