package vertica

import (
	"sync"
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
)

// These tests pin the prepare-at-log-end fix: a commit's validation must see
// sibling commits that are logged but not yet applied (invisible in live
// state while they wait on the group-commit fsync). Before the fix, the
// loser of a CREATE/CREATE, DROP/DROP, LOAD/DROP or blob DELETE/DELETE race
// could append a record whose apply fails — harmless at runtime, fatal at
// recovery, where replay aborts on the record and the database refuses to
// open until a checkpoint happened to truncate it.

func raceDef(name string) *catalog.TableDef {
	return &catalog.TableDef{
		Name:   name,
		Schema: dSchema,
		Seg:    catalog.Segmentation{Kind: catalog.SegHash, Column: "id"},
	}
}

func TestConcurrentCreateDropRaceNeverPoisonsRecovery(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	const iters = 50
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Losing either race is expected; what matters is that no
				// doomed record reaches the log.
				db.CreateTable(raceDef("race")) //nolint:errcheck
				db.DropTable("race")            //nolint:errcheck
			}
		}()
	}
	wg.Wait()

	// The database stays fully usable after the races...
	db.DropTable("race") //nolint:errcheck
	if err := db.CreateTable(raceDef("race")); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("race", dBatch(t, 0, 29)); err != nil {
		t.Fatal(err)
	}
	want := tableImage(t, db, "race")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and, the actual regression: reopening must replay the whole log
	// without aborting, and recover the final state byte-exactly.
	re := durableDB(t, dir)
	defer re.Close()
	if got := tableImage(t, re, "race"); !imagesEqual(want, got) {
		t.Fatal("recovered table differs from pre-close image")
	}
}

func TestConcurrentLoadDropRaceNeverPoisonsRecovery(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	if err := db.CreateTable(raceDef("r")); err != nil {
		t.Fatal(err)
	}
	// Pre-build batches on the test goroutine: dBatch may t.Fatal.
	batches := make([]*colstore.Batch, 60)
	for i := range batches {
		batches[i] = dBatch(t, i*10, 7)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, b := range batches {
			// A load that loses to a DROP must fail cleanly, not log a
			// record that replays onto a missing table.
			db.Load("r", b) //nolint:errcheck
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			db.DropTable("r")            //nolint:errcheck
			db.CreateTable(raceDef("r")) //nolint:errcheck
		}
	}()
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := durableDB(t, dir) // replay must not abort
	re.Close()
}

func TestConcurrentBlobDeleteRaceNeverPoisonsRecovery(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	for i := 0; i < 25; i++ {
		if err := db.JournalBlobPut("models/x", []byte{byte(i), 1, 2}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Exactly one delete may win; the loser must be rejected at
				// validation, never logged as a doomed record.
				db.JournalBlobDelete("models/x") //nolint:errcheck
			}()
		}
		wg.Wait()
		if _, err := db.DFS().Stat("models/x"); err == nil {
			t.Fatal("blob survived both deletes")
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := durableDB(t, dir)
	defer re.Close()
	if _, err := re.DFS().Stat("models/x"); err == nil {
		t.Fatal("deleted blob resurrected by recovery")
	}
}

// TestConcurrentLoadsRecoverAllRows pins the SplitOwned fix: concurrent
// COPYs into one table must each own their post-split batches. Before the
// fix the splitter's reused builders could be recycled by a sibling Load
// while the WAL encode or the deferred apply was still reading them, writing
// corrupt rows into the durable log (caught here by -race and by the
// byte-identity check after replay).
func TestConcurrentLoadsRecoverAllRows(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	if err := db.CreateTable(raceDef("pts")); err != nil {
		t.Fatal(err)
	}
	const workers, loads, rows = 4, 20, 16
	all := make([][]*colstore.Batch, workers)
	for w := range all {
		all[w] = make([]*colstore.Batch, loads)
		for i := range all[w] {
			all[w][i] = dBatch(t, (w*loads+i)*1000, rows)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, b := range all[w] {
				if err := db.Load("pts", b); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, err := db.TableRows("pts")
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*loads*rows {
		t.Fatalf("loaded %d rows, want %d", n, workers*loads*rows)
	}
	want := tableImage(t, db, "pts")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := durableDB(t, dir)
	defer re.Close()
	if got := tableImage(t, re, "pts"); !imagesEqual(want, got) {
		t.Fatal("recovered table differs from pre-close image")
	}
}
