package vertica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
)

// WAL record types for the database redo log. Each record is one atomic,
// self-describing mutation; recovery replays them in LSN order onto a
// checkpoint image and arrives at exactly the pre-crash state.
const (
	// recCreateTable carries a persistedTable JSON document (the same schema
	// manifest the checkpoint catalog uses).
	recCreateTable byte = 1
	// recDropTable carries the table name.
	recDropTable byte = 2
	// recLoad carries a table name plus the POST-split per-node row batches
	// of one COPY/INSERT. Logging after the splitter ran keeps replay
	// independent of splitter state (round-robin cursors do not survive a
	// restart), so recovered segments hold byte-identical rows per node.
	recLoad byte = 3
	// recBlobPut carries a DFS path and blob bytes (model deploy/redeploy).
	recBlobPut byte = 4
	// recBlobDelete carries a DFS path (model drop).
	recBlobDelete byte = 5
	// recCreateIndex carries (name, table, column) of a secondary-index
	// CREATE. Only the DDL is logged; replay rebuilds the B-tree from the
	// recovered table data, so the record stays small and self-describing.
	recCreateIndex byte = 6
	// recDropIndex carries (name, table, column) of a secondary-index DROP.
	recDropIndex byte = 7
)

// --- create / drop ---------------------------------------------------------

func encodeCreateTable(def *catalog.TableDef) ([]byte, error) {
	return json.Marshal(tableManifest(def))
}

func decodeCreateTable(body []byte) (*catalog.TableDef, error) {
	var pt persistedTable
	if err := json.Unmarshal(body, &pt); err != nil {
		return nil, fmt.Errorf("vertica: wal create-table record: %w", err)
	}
	return manifestTableDef(pt)
}

// --- load ------------------------------------------------------------------

// encodeLoad frames per-node batches: uvarint len(table), table, uvarint
// nodes, then per node uvarint ncols (0 = no rows for that node) followed by
// length-prefixed encoded column blocks in schema order.
func encodeLoad(table string, parts []*colstore.Batch) ([]byte, error) {
	var buf []byte
	buf = appendUvarint(buf, uint64(len(table)))
	buf = append(buf, table...)
	buf = appendUvarint(buf, uint64(len(parts)))
	for _, part := range parts {
		if part == nil || part.Len() == 0 {
			buf = appendUvarint(buf, 0)
			continue
		}
		buf = appendUvarint(buf, uint64(len(part.Cols)))
		for _, col := range part.Cols {
			data, err := colstore.EncodeBlock(col, colstore.BestEncoding(col))
			if err != nil {
				return nil, err
			}
			buf = appendUvarint(buf, uint64(len(data)))
			buf = append(buf, data...)
		}
	}
	return buf, nil
}

func decodeLoad(body []byte, schemaOf func(table string) (colstore.Schema, error)) (string, []*colstore.Batch, error) {
	table, rest, err := cutString(body)
	if err != nil {
		return "", nil, fmt.Errorf("vertica: wal load record: %w", err)
	}
	schema, err := schemaOf(table)
	if err != nil {
		return "", nil, fmt.Errorf("vertica: wal load record for %q: %w", table, err)
	}
	nodes, rest, err := cutUvarint(rest)
	if err != nil {
		return "", nil, fmt.Errorf("vertica: wal load record: %w", err)
	}
	parts := make([]*colstore.Batch, nodes)
	for n := range parts {
		var ncols uint64
		ncols, rest, err = cutUvarint(rest)
		if err != nil {
			return "", nil, fmt.Errorf("vertica: wal load record: %w", err)
		}
		if ncols == 0 {
			continue
		}
		if int(ncols) != len(schema) {
			return "", nil, fmt.Errorf("vertica: wal load record: %d columns for table %q with %d", ncols, table, len(schema))
		}
		b := &colstore.Batch{Schema: schema, Cols: make([]*colstore.Vector, ncols)}
		for c := range b.Cols {
			var blen uint64
			blen, rest, err = cutUvarint(rest)
			if err != nil {
				return "", nil, fmt.Errorf("vertica: wal load record: %w", err)
			}
			if blen > uint64(len(rest)) {
				return "", nil, fmt.Errorf("vertica: wal load record truncated column block")
			}
			v, err := colstore.DecodeBlock(rest[:blen])
			if err != nil {
				return "", nil, fmt.Errorf("vertica: wal load record: %w", err)
			}
			b.Cols[c] = v
			rest = rest[blen:]
		}
		parts[n] = b
	}
	return table, parts, nil
}

// --- index DDL -------------------------------------------------------------

// encodeIndexDDL frames three uvarint-prefixed strings: name, table, column.
// CREATE and DROP share the layout; the record type carries the verb.
func encodeIndexDDL(name, table, column string) []byte {
	var buf []byte
	for _, s := range []string{name, table, column} {
		buf = appendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func decodeIndexDDL(body []byte) (name, table, column string, err error) {
	rest := body
	for _, dst := range []*string{&name, &table, &column} {
		if *dst, rest, err = cutString(rest); err != nil {
			return "", "", "", fmt.Errorf("vertica: wal index record: %w", err)
		}
	}
	return name, table, column, nil
}

// --- blobs -----------------------------------------------------------------

func encodeBlobPut(path string, data []byte) []byte {
	var buf []byte
	buf = appendUvarint(buf, uint64(len(path)))
	buf = append(buf, path...)
	buf = append(buf, data...)
	return buf
}

func decodeBlobPut(body []byte) (string, []byte, error) {
	path, rest, err := cutString(body)
	if err != nil {
		return "", nil, fmt.Errorf("vertica: wal blob record: %w", err)
	}
	return path, rest, nil
}

// --- varint helpers --------------------------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func cutUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, buf[n:], nil
}

func cutString(buf []byte) (string, []byte, error) {
	n, rest, err := cutUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(rest[:n]), rest[n:], nil
}
