// Package vertica assembles the MPP columnar database substitute: an N-node
// cluster where each table is stored as per-node segments (internal/colstore)
// placed by the table's segmentation scheme (internal/catalog), queried
// through the SQL engine (internal/sqlparse + internal/sqlexec), extended by
// user-defined transform functions (internal/udf) and backed by a replicated
// blob file system for models (internal/dfs). It corresponds to the
// database half of Figure 2 in the paper.
package vertica

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/dfs"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/udf"
	"verticadr/internal/verr"
)

// Config configures a database cluster.
type Config struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// UDFInstancesPerNode is the planner's PARTITION BEST parallelism
	// (default 4).
	UDFInstancesPerNode int
	// Replication is the DFS replication factor for model blobs (default 2).
	Replication int
	// BlockRows overrides the storage block size (default
	// colstore.DefaultBlockRows).
	BlockRows int
	// DataDir, when set, persists segments and DFS blobs under this
	// directory.
	DataDir string
}

// DB is a running database cluster.
type DB struct {
	cfg      Config
	cat      *catalog.Catalog
	udfs     *udf.Registry
	fs       *dfs.DFS
	mu       sync.RWMutex
	segs     map[string][]*colstore.Segment // table -> one segment per node
	split    map[string]*catalog.Splitter
	services map[string]any
}

// Open creates a cluster.
func Open(cfg Config) (*DB, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("vertica: need at least 1 node")
	}
	if cfg.UDFInstancesPerNode <= 0 {
		cfg.UDFInstancesPerNode = 4
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	var spill string
	if cfg.DataDir != "" {
		spill = filepath.Join(cfg.DataDir, "dfs")
	}
	fs, err := dfs.New(cfg.Nodes, cfg.Replication, spill)
	if err != nil {
		return nil, err
	}
	db := &DB{
		cfg:      cfg,
		cat:      catalog.New(),
		udfs:     udf.NewRegistry(),
		fs:       fs,
		segs:     make(map[string][]*colstore.Segment),
		split:    make(map[string]*catalog.Splitter),
		services: make(map[string]any),
	}
	db.services["dfs"] = fs
	return db, nil
}

// NumNodes returns the cluster size.
func (db *DB) NumNodes() int { return db.cfg.Nodes }

// Catalog exposes the table catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// DFS exposes the internal distributed file system.
func (db *DB) DFS() *dfs.DFS { return db.fs }

// UDFs returns the transform-function registry (sqlexec.Database).
func (db *DB) UDFs() *udf.Registry { return db.udfs }

// UDFInstancesPerNode implements sqlexec.Database.
func (db *DB) UDFInstancesPerNode() int { return db.cfg.UDFInstancesPerNode }

// Services implements sqlexec.Database.
func (db *DB) Services() map[string]any {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]any, len(db.services))
	for k, v := range db.services {
		out[k] = v
	}
	return out
}

// RegisterService exposes an extension service to UDFs by name.
func (db *DB) RegisterService(name string, svc any) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.services[name] = svc
}

// TableDef implements sqlexec.Database.
func (db *DB) TableDef(name string) (*catalog.TableDef, error) { return db.cat.Get(name) }

// Segments implements sqlexec.Database.
func (db *DB) Segments(name string) ([]*colstore.Segment, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	segs, ok := db.segs[name]
	if !ok {
		return nil, fmt.Errorf("vertica: %w: table %q has no storage", verr.ErrTableNotFound, name)
	}
	return segs, nil
}

// CreateTable registers a table and allocates its per-node segments.
func (db *DB) CreateTable(def *catalog.TableDef) error {
	if err := db.cat.Create(def); err != nil {
		return err
	}
	sp, err := catalog.NewSplitter(def.Seg, def.Schema, db.cfg.Nodes)
	if err != nil {
		db.cat.Drop(def.Name) //nolint:errcheck // best-effort rollback
		return err
	}
	segs := make([]*colstore.Segment, db.cfg.Nodes)
	for i := range segs {
		segs[i] = colstore.NewSegment(def.Schema, db.cfg.BlockRows)
	}
	db.mu.Lock()
	db.segs[def.Name] = segs
	db.split[def.Name] = sp
	db.mu.Unlock()
	return nil
}

// DropTable removes a table and its storage.
func (db *DB) DropTable(name string) error {
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.segs, name)
	delete(db.split, name)
	db.mu.Unlock()
	return nil
}

// Load appends a batch of rows to a table, routing rows to nodes by the
// table's segmentation scheme (the bulk-load / COPY path).
func (db *DB) Load(table string, b *colstore.Batch) error {
	db.mu.RLock()
	segs, ok := db.segs[table]
	sp := db.split[table]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("vertica: table %q does not exist", table)
	}
	parts, err := sp.Split(b)
	if err != nil {
		return err
	}
	for node, part := range parts {
		if part.Len() == 0 {
			continue
		}
		if err := segs[node].Append(part); err != nil {
			return err
		}
	}
	return nil
}

// LoadAt appends rows directly to one node's segment, bypassing the
// segmentation scheme. Tests and benchmarks use it to construct skewed
// segmentations (§3.2).
func (db *DB) LoadAt(table string, node int, b *colstore.Batch) error {
	db.mu.RLock()
	segs, ok := db.segs[table]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("vertica: table %q does not exist", table)
	}
	if node < 0 || node >= len(segs) {
		return fmt.Errorf("vertica: no node %d", node)
	}
	return segs[node].Append(b)
}

// LoadColumns is a convenience bulk loader from float64 column slices.
func (db *DB) LoadColumns(table string, cols [][]float64) error {
	def, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	if len(cols) != len(def.Schema) {
		return fmt.Errorf("vertica: %d columns for table with %d", len(cols), len(def.Schema))
	}
	b := &colstore.Batch{Schema: def.Schema, Cols: make([]*colstore.Vector, len(cols))}
	for i, c := range cols {
		if def.Schema[i].Type != colstore.TypeFloat64 {
			return fmt.Errorf("vertica: LoadColumns requires FLOAT columns, %q is %v", def.Schema[i].Name, def.Schema[i].Type)
		}
		b.Cols[i] = colstore.FloatVector(c)
	}
	if err := b.Validate(); err != nil {
		return err
	}
	return db.Load(table, b)
}

// TableRows returns the table's total row count across nodes.
func (db *DB) TableRows(table string) (int, error) {
	segs, err := db.Segments(table)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, s := range segs {
		total += s.Rows()
	}
	return total, nil
}

// SegmentSizes returns per-node row counts (the segmentation layout that the
// locality-preserving transfer policy mirrors).
func (db *DB) SegmentSizes(table string) ([]int, error) {
	segs, err := db.Segments(table)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(segs))
	for i, s := range segs {
		out[i] = s.Rows()
	}
	return out, nil
}

// Exec runs a statement, discarding any result rows.
func (db *DB) Exec(sql string) error {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext runs a statement under a context, discarding any result rows.
func (db *DB) ExecContext(ctx context.Context, sql string) error {
	_, err := db.QueryContext(ctx, sql)
	return err
}

// Query parses and executes a single SQL statement. DDL and INSERT return an
// empty result.
func (db *DB) Query(sql string) (*sqlexec.Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext parses and executes a single SQL statement under a context.
// SELECT execution honors cancellation at scan-block and aggregation-chunk
// boundaries; the returned error then wraps verr.ErrCanceled.
func (db *DB) QueryContext(ctx context.Context, sql string) (*sqlexec.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.RunStatement(ctx, stmt, sql)
}

// RunStatement executes an already-parsed statement. The serving layer uses
// it to execute cached (prepared) plans without reparsing; sql is only used
// to label PROFILE output.
func (db *DB) RunStatement(ctx context.Context, stmt sqlparse.Statement, sql string) (*sqlexec.Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		res, err := sqlexec.RunSelectCtx(ctx, db, s)
		if err == nil && res.Profile != nil {
			res.Profile.Query = strings.TrimRight(strings.TrimSpace(sql), ";")
		}
		return res, err
	case *sqlparse.CreateTable:
		return emptyResult(), db.execCreate(s)
	case *sqlparse.DropTable:
		return emptyResult(), db.DropTable(s.Name)
	case *sqlparse.Insert:
		return emptyResult(), db.execInsert(s)
	default:
		return nil, fmt.Errorf("vertica: unsupported statement %T", stmt)
	}
}

func emptyResult() *sqlexec.Result {
	return &sqlexec.Result{Batch: colstore.NewBatch(colstore.Schema{})}
}

func (db *DB) execCreate(s *sqlparse.CreateTable) error {
	schema := make(colstore.Schema, 0, len(s.Cols))
	for _, c := range s.Cols {
		t, err := colstore.ParseType(c.Type)
		if err != nil {
			return err
		}
		schema = append(schema, colstore.ColumnSchema{Name: c.Name, Type: t})
	}
	def := &catalog.TableDef{Name: s.Name, Schema: schema}
	if s.Seg != nil {
		if s.Seg.Hash {
			def.Seg = catalog.Segmentation{Kind: catalog.SegHash, Column: s.Seg.Column}
		} else {
			def.Seg = catalog.Segmentation{Kind: catalog.SegRoundRobin}
		}
	}
	return db.CreateTable(def)
}

func (db *DB) execInsert(s *sqlparse.Insert) error {
	def, err := db.cat.Get(s.Table)
	if err != nil {
		return err
	}
	cols := s.Columns
	if cols == nil {
		cols = make([]string, len(def.Schema))
		for i, c := range def.Schema {
			cols[i] = c.Name
		}
	}
	if len(cols) != len(def.Schema) {
		return fmt.Errorf("vertica: INSERT must provide all %d columns", len(def.Schema))
	}
	// Map provided column order onto the table order.
	pos := make([]int, len(def.Schema))
	for i := range pos {
		pos[i] = -1
	}
	for provIdx, name := range cols {
		ti := def.Schema.ColIndex(name)
		if ti < 0 {
			return fmt.Errorf("vertica: unknown column %q in INSERT", name)
		}
		pos[ti] = provIdx
	}
	for ti, p := range pos {
		if p < 0 {
			return fmt.Errorf("vertica: INSERT missing column %q", def.Schema[ti].Name)
		}
	}
	b := colstore.NewBatch(def.Schema)
	for ri, row := range s.Rows {
		if len(row) != len(cols) {
			return fmt.Errorf("vertica: INSERT row %d has %d values, want %d", ri, len(row), len(cols))
		}
		vals := make([]any, len(def.Schema))
		for ti := range def.Schema {
			v, ok := sqlexec.Literal(row[pos[ti]])
			if !ok {
				return fmt.Errorf("vertica: INSERT values must be literals (row %d)", ri)
			}
			vals[ti] = v
		}
		if err := b.AppendRow(vals...); err != nil {
			return err
		}
	}
	return db.Load(s.Table, b)
}

// Persist seals and writes every segment of every table under DataDir,
// along with the catalog manifest, so Restore can reopen the database.
func (db *DB) Persist() error {
	if db.cfg.DataDir == "" {
		return fmt.Errorf("vertica: no DataDir configured")
	}
	if err := db.persistCatalog(); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for table, segs := range db.segs {
		dir := filepath.Join(db.cfg.DataDir, "tables", table)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for node, seg := range segs {
			path := filepath.Join(dir, fmt.Sprintf("node%d.vseg", node))
			if err := seg.Persist(path); err != nil {
				return err
			}
		}
	}
	return nil
}

var _ sqlexec.Database = (*DB)(nil)
