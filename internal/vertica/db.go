// Package vertica assembles the MPP columnar database substitute: an N-node
// cluster where each table is stored as per-node segments (internal/colstore)
// placed by the table's segmentation scheme (internal/catalog), queried
// through the SQL engine (internal/sqlparse + internal/sqlexec), extended by
// user-defined transform functions (internal/udf) and backed by a replicated
// blob file system for models (internal/dfs). It corresponds to the
// database half of Figure 2 in the paper.
//
// Durable mode adds an ingest write-ahead log and MVCC snapshot isolation:
// every mutation (DDL, COPY/INSERT, model-blob write) appends a redo record,
// waits for a group-commit fsync, and only then publishes a new immutable
// table version; SELECT pins a version snapshot for its whole run, so long
// reads observe one consistent instant regardless of concurrent ingest. On
// restart, recovery loads the last checkpoint image and replays the log.
package vertica

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/dfs"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/txn"
	"verticadr/internal/udf"
	"verticadr/internal/verr"
	"verticadr/internal/wal"
)

// Config configures a database cluster.
type Config struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// UDFInstancesPerNode is the planner's PARTITION BEST parallelism
	// (default 4).
	UDFInstancesPerNode int
	// Replication is the DFS replication factor for model blobs (default 2).
	Replication int
	// BlockRows overrides the storage block size (default
	// colstore.DefaultBlockRows).
	BlockRows int
	// DataDir, when set, persists segments and DFS blobs under this
	// directory.
	DataDir string
	// Durable enables write-ahead logging under DataDir: every commit is
	// fsync-durable before it is acknowledged or visible, and Open recovers
	// the pre-crash state from checkpoint + log replay.
	Durable bool
	// WALSegmentBytes overrides the log segment rotation size (default 64 MB).
	WALSegmentBytes int64
}

// DB is a running database cluster.
type DB struct {
	cfg      Config
	cat      *catalog.Catalog
	udfs     *udf.Registry
	fs       *dfs.DFS
	mu       sync.RWMutex // guards split, services, committers, indexes
	store    *txn.Store
	split    map[string]*catalog.Splitter
	services map[string]any
	indexes  map[string]IndexDef
	epoch    atomic.Uint64 // bumped by every DDL apply; see CatalogEpoch

	// Durability (nil/zero for in-memory databases).
	wal        *wal.Writer
	ckptMu     sync.RWMutex // commits hold R; checkpoint capture holds W
	committers map[string]*committer
	recovery   *RecoveryInfo
}

// Open creates a cluster. With cfg.Durable it recovers any state persisted
// under cfg.DataDir (checkpoint image + write-ahead log replay) and opens
// the log for appending.
func Open(cfg Config) (*DB, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("vertica: need at least 1 node")
	}
	if cfg.UDFInstancesPerNode <= 0 {
		cfg.UDFInstancesPerNode = 4
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Durable && cfg.DataDir == "" {
		return nil, fmt.Errorf("vertica: Durable requires DataDir")
	}
	var spill string
	if cfg.DataDir != "" {
		spill = filepath.Join(cfg.DataDir, "dfs")
	}
	fs, err := dfs.New(cfg.Nodes, cfg.Replication, spill)
	if err != nil {
		return nil, err
	}
	db := &DB{
		cfg:        cfg,
		cat:        catalog.New(),
		udfs:       udf.NewRegistry(),
		fs:         fs,
		store:      txn.NewStore(),
		split:      make(map[string]*catalog.Splitter),
		services:   make(map[string]any),
		indexes:    make(map[string]IndexDef),
		committers: make(map[string]*committer),
	}
	db.services["dfs"] = fs
	if cfg.Durable {
		if err := db.recoverState(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// NumNodes returns the cluster size.
func (db *DB) NumNodes() int { return db.cfg.Nodes }

// Catalog exposes the table catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// DFS exposes the internal distributed file system.
func (db *DB) DFS() *dfs.DFS { return db.fs }

// UDFs returns the transform-function registry (sqlexec.Database).
func (db *DB) UDFs() *udf.Registry { return db.udfs }

// UDFInstancesPerNode implements sqlexec.Database.
func (db *DB) UDFInstancesPerNode() int { return db.cfg.UDFInstancesPerNode }

// Services implements sqlexec.Database.
func (db *DB) Services() map[string]any {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]any, len(db.services))
	for k, v := range db.services {
		out[k] = v
	}
	return out
}

// RegisterService exposes an extension service to UDFs by name.
func (db *DB) RegisterService(name string, svc any) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.services[name] = svc
}

// TableDef implements sqlexec.Database.
func (db *DB) TableDef(name string) (*catalog.TableDef, error) { return db.cat.Get(name) }

// Segments implements sqlexec.Database: the head (latest committed) version
// of the table. The returned segments are immutable — ingest publishes new
// versions instead of mutating published ones — so callers may scan them
// without tearing regardless of concurrent COPYs.
func (db *DB) Segments(name string) ([]*colstore.Segment, error) {
	segs, ok := db.store.Latest(name)
	if !ok {
		return nil, fmt.Errorf("vertica: %w: table %q has no storage", verr.ErrTableNotFound, name)
	}
	return segs, nil
}

// CreateTable registers a table and allocates its per-node segments.
func (db *DB) CreateTable(def *catalog.TableDef) error {
	return db.commit(def.Name,
		func(st *streamState, durable bool) (byte, []byte, error) {
			db.seedTable(st, def.Name)
			if st.exists {
				return 0, nil, fmt.Errorf("catalog: table %q already exists", def.Name)
			}
			if err := catalog.ValidateShape(def); err != nil {
				return 0, nil, err
			}
			if _, err := catalog.NewSplitter(def.Seg, def.Schema, db.cfg.Nodes); err != nil {
				return 0, nil, err
			}
			st.exists, st.schema = true, def.Schema
			if !durable {
				return 0, nil, nil
			}
			body, err := encodeCreateTable(def)
			return recCreateTable, body, err
		},
		func() error { return db.applyCreate(def) })
}

func (db *DB) applyCreate(def *catalog.TableDef) error {
	if err := db.cat.Create(def); err != nil {
		return err
	}
	sp, err := catalog.NewSplitter(def.Seg, def.Schema, db.cfg.Nodes)
	if err != nil {
		db.cat.Drop(def.Name) //nolint:errcheck // best-effort rollback
		return err
	}
	segs := make([]*colstore.Segment, db.cfg.Nodes)
	for i := range segs {
		segs[i] = colstore.NewSegment(def.Schema, db.cfg.BlockRows)
	}
	db.mu.Lock()
	db.split[def.Name] = sp
	db.mu.Unlock()
	db.store.Put(def.Name, segs)
	db.epoch.Add(1)
	return nil
}

// DropTable removes a table and its storage. Snapshots pinned before the
// drop keep reading the table until released.
func (db *DB) DropTable(name string) error {
	return db.commit(name,
		func(st *streamState, durable bool) (byte, []byte, error) {
			db.seedTable(st, name)
			if !st.exists {
				return 0, nil, fmt.Errorf("catalog: %w: %q", verr.ErrTableNotFound, name)
			}
			st.exists, st.schema = false, nil
			return recDropTable, []byte(name), nil
		},
		func() error { return db.applyDrop(name) })
}

func (db *DB) applyDrop(name string) error {
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.split, name)
	db.mu.Unlock()
	db.store.Drop(name)
	db.dropTableIndexMeta(name)
	db.epoch.Add(1)
	return nil
}

// Load appends a batch of rows to a table, routing rows to nodes by the
// table's segmentation scheme (the bulk-load / COPY path). The load is one
// atomic commit: it is WAL-durable before any row becomes visible, and a
// concurrent snapshot sees either all of the batch or none of it.
func (db *DB) Load(table string, b *colstore.Batch) error {
	db.mu.RLock()
	sp := db.split[table]
	db.mu.RUnlock()
	if sp == nil {
		return fmt.Errorf("vertica: table %q does not exist", table)
	}
	// SplitOwned (not Split): the commit path reads the per-node batches
	// twice — WAL encode, then the deferred apply — after Split would have
	// released the splitter lock, and a concurrent Load into the same table
	// recycles Split's reused builders mid-read. Owned deep copies are taken
	// while the splitter lock is still held.
	parts, err := sp.SplitOwned(b)
	if err != nil {
		return err
	}
	return db.loadParts(table, parts)
}

// LoadAt appends rows directly to one node's segment, bypassing the
// segmentation scheme. Tests and benchmarks use it to construct skewed
// segmentations (§3.2).
func (db *DB) LoadAt(table string, node int, b *colstore.Batch) error {
	def, err := db.cat.Get(table)
	if err != nil {
		return fmt.Errorf("vertica: table %q does not exist", table)
	}
	if node < 0 || node >= db.cfg.Nodes {
		return fmt.Errorf("vertica: no node %d", node)
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if !b.Schema.Equal(def.Schema) {
		return fmt.Errorf("vertica: load batch schema mismatch for %q", table)
	}
	parts := make([]*colstore.Batch, db.cfg.Nodes)
	parts[node] = b
	return db.loadParts(table, parts)
}

// loadParts commits post-split per-node batches through the write-ahead
// protocol.
func (db *DB) loadParts(table string, parts []*colstore.Batch) error {
	return db.commit(table,
		func(st *streamState, durable bool) (byte, []byte, error) {
			db.seedTable(st, table)
			if !st.exists {
				return 0, nil, fmt.Errorf("vertica: table %q does not exist", table)
			}
			// Check against the log-end schema: a pipelined DROP+CREATE may
			// have replaced the table since this load's batches were split.
			for _, p := range parts {
				if p != nil && p.Len() > 0 && !p.Schema.Equal(st.schema) {
					return 0, nil, fmt.Errorf("vertica: load batch schema mismatch for %q", table)
				}
			}
			if !durable {
				return 0, nil, nil
			}
			body, err := encodeLoad(table, parts)
			return recLoad, body, err
		},
		func() error { return db.applyLoad(table, parts) })
}

// applyLoad publishes a new table version holding the loaded rows: segments
// receiving rows are cloned (copy-on-write), appended, and swapped into a
// fresh per-node list. Published versions are never mutated, which is what
// lets snapshots and in-flight scans proceed without locks.
func (db *DB) applyLoad(table string, parts []*colstore.Batch) error {
	cur, ok := db.store.Latest(table)
	if !ok {
		return fmt.Errorf("vertica: table %q does not exist", table)
	}
	if len(parts) != len(cur) {
		return fmt.Errorf("vertica: load parts for %d nodes, table %q has %d", len(parts), table, len(cur))
	}
	next := make([]*colstore.Segment, len(cur))
	copy(next, cur)
	for node, part := range parts {
		if part == nil || part.Len() == 0 {
			continue
		}
		seg := cur[node].Clone()
		if err := seg.Append(part); err != nil {
			return err
		}
		next[node] = seg
	}
	db.store.Put(table, next)
	return nil
}

// LoadColumns is a convenience bulk loader from float64 column slices.
func (db *DB) LoadColumns(table string, cols [][]float64) error {
	def, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	if len(cols) != len(def.Schema) {
		return fmt.Errorf("vertica: %d columns for table with %d", len(cols), len(def.Schema))
	}
	b := &colstore.Batch{Schema: def.Schema, Cols: make([]*colstore.Vector, len(cols))}
	for i, c := range cols {
		if def.Schema[i].Type != colstore.TypeFloat64 {
			return fmt.Errorf("vertica: LoadColumns requires FLOAT columns, %q is %v", def.Schema[i].Name, def.Schema[i].Type)
		}
		b.Cols[i] = colstore.FloatVector(c)
	}
	if err := b.Validate(); err != nil {
		return err
	}
	return db.Load(table, b)
}

// TableRows returns the table's total row count across nodes.
func (db *DB) TableRows(table string) (int, error) {
	segs, err := db.Segments(table)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, s := range segs {
		total += s.Rows()
	}
	return total, nil
}

// SegmentSizes returns per-node row counts (the segmentation layout that the
// locality-preserving transfer policy mirrors).
func (db *DB) SegmentSizes(table string) ([]int, error) {
	segs, err := db.Segments(table)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(segs))
	for i, s := range segs {
		out[i] = s.Rows()
	}
	return out, nil
}

// Exec runs a statement, discarding any result rows.
func (db *DB) Exec(sql string) error {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext runs a statement under a context, discarding any result rows.
func (db *DB) ExecContext(ctx context.Context, sql string) error {
	_, err := db.QueryContext(ctx, sql)
	return err
}

// Query parses and executes a single SQL statement. DDL and INSERT return an
// empty result.
func (db *DB) Query(sql string) (*sqlexec.Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext parses and executes a single SQL statement under a context.
// SELECT execution honors cancellation at scan-block and aggregation-chunk
// boundaries; the returned error then wraps verr.ErrCanceled.
func (db *DB) QueryContext(ctx context.Context, sql string) (*sqlexec.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.RunStatement(ctx, stmt, sql)
}

// RunStatement executes an already-parsed statement. The serving layer uses
// it to execute cached (prepared) plans without reparsing; sql is only used
// to label PROFILE output. SELECT runs against a pinned MVCC snapshot: the
// whole query — scans, aggregations, prediction UDFs — observes the database
// as of one commit timestamp, however long it runs and whatever commits
// meanwhile.
func (db *DB) RunStatement(ctx context.Context, stmt sqlparse.Statement, sql string) (*sqlexec.Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		sv := db.snapshotView()
		defer sv.close()
		res, err := sqlexec.RunSelectCtx(ctx, sv, s)
		if err == nil && res.Profile != nil {
			res.Profile.Query = strings.TrimRight(strings.TrimSpace(sql), ";")
		}
		return res, err
	case *sqlparse.Explain:
		sv := db.snapshotView()
		defer sv.close()
		return sqlexec.RunExplainCtx(ctx, sv, s)
	case *sqlparse.CreateTable:
		return emptyResult(), db.execCreate(s)
	case *sqlparse.DropTable:
		return emptyResult(), db.DropTable(s.Name)
	case *sqlparse.CreateIndex:
		return emptyResult(), db.CreateIndex(s.Name, s.Table, s.Column)
	case *sqlparse.DropIndex:
		return emptyResult(), db.DropIndex(s.Name)
	case *sqlparse.Insert:
		return emptyResult(), db.execInsert(s)
	default:
		return nil, fmt.Errorf("vertica: unsupported statement %T", stmt)
	}
}

// snapshotView adapts a pinned MVCC snapshot to sqlexec.Database. Everything
// except table storage delegates to the live database; Segments serves the
// snapshot's frozen versions.
type snapshotView struct {
	db   *DB
	snap *txn.Snap
}

func (db *DB) snapshotView() *snapshotView {
	return &snapshotView{db: db, snap: db.store.Snapshot()}
}

func (v *snapshotView) close() { v.snap.Release() }

// TableDef resolves against the snapshot: when the live catalog definition
// no longer matches the pinned version (the table was dropped or replaced
// mid-query), the definition is reconstructed from the frozen segments so
// the running query keeps a self-consistent schema.
func (v *snapshotView) TableDef(name string) (*catalog.TableDef, error) {
	segs, ok := v.snap.Segments(name)
	if !ok {
		if _, err := v.db.cat.Get(name); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("vertica: %w: table %q created after query snapshot", verr.ErrTableNotFound, name)
	}
	if def, err := v.db.cat.Get(name); err == nil && len(segs) > 0 && def.Schema.Equal(segs[0].Schema()) {
		return def, nil
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("vertica: %w: table %q has no storage", verr.ErrTableNotFound, name)
	}
	return &catalog.TableDef{Name: name, Schema: segs[0].Schema()}, nil
}

func (v *snapshotView) Segments(name string) ([]*colstore.Segment, error) {
	segs, ok := v.snap.Segments(name)
	if !ok {
		return nil, fmt.Errorf("vertica: %w: table %q has no storage", verr.ErrTableNotFound, name)
	}
	return segs, nil
}

func (v *snapshotView) UDFs() *udf.Registry      { return v.db.udfs }
func (v *snapshotView) UDFInstancesPerNode() int { return v.db.cfg.UDFInstancesPerNode }
func (v *snapshotView) Services() map[string]any { return v.db.Services() }

var _ sqlexec.Database = (*snapshotView)(nil)

// shardView restricts a pinned snapshot to a subset of node segments: its
// Segments returns only the selected shards (in the order given), so the
// executor sees a database whose nodes are exactly those shards. Cluster
// peers use it to run a query over the shards they own.
type shardView struct {
	*snapshotView
	shards []int
}

func (v *shardView) Segments(name string) ([]*colstore.Segment, error) {
	segs, err := v.snapshotView.Segments(name)
	if err != nil {
		return nil, err
	}
	out := make([]*colstore.Segment, 0, len(v.shards))
	for _, s := range v.shards {
		if s < 0 || s >= len(segs) {
			return nil, fmt.Errorf("vertica: table %q has no shard %d", name, s)
		}
		out = append(out, segs[s])
	}
	return out, nil
}

var _ sqlexec.Database = (*shardView)(nil)

// ShardView returns an sqlexec.Database over a pinned MVCC snapshot
// restricted to the given node segments, plus a release function that must
// be called when the query finishes. The view observes the database as of
// one commit timestamp, like RunStatement's SELECT path.
func (db *DB) ShardView(shards []int) (sqlexec.Database, func()) {
	sv := db.snapshotView()
	return &shardView{snapshotView: sv, shards: shards}, sv.close
}

func emptyResult() *sqlexec.Result {
	return &sqlexec.Result{Batch: colstore.NewBatch(colstore.Schema{})}
}

func (db *DB) execCreate(s *sqlparse.CreateTable) error {
	schema := make(colstore.Schema, 0, len(s.Cols))
	for _, c := range s.Cols {
		t, err := colstore.ParseType(c.Type)
		if err != nil {
			return err
		}
		schema = append(schema, colstore.ColumnSchema{Name: c.Name, Type: t})
	}
	def := &catalog.TableDef{Name: s.Name, Schema: schema}
	if s.Seg != nil {
		if s.Seg.Hash {
			def.Seg = catalog.Segmentation{Kind: catalog.SegHash, Column: s.Seg.Column}
		} else {
			def.Seg = catalog.Segmentation{Kind: catalog.SegRoundRobin}
		}
	}
	return db.CreateTable(def)
}

func (db *DB) execInsert(s *sqlparse.Insert) error {
	def, err := db.cat.Get(s.Table)
	if err != nil {
		return err
	}
	b, err := InsertBatch(def, s)
	if err != nil {
		return err
	}
	return db.Load(s.Table, b)
}

// InsertBatch materializes an INSERT statement's literal rows into a batch
// in table-schema column order. Pure in the definition and statement: the
// cluster router uses it to split INSERTs client-side with the same result
// as a local execution.
func InsertBatch(def *catalog.TableDef, s *sqlparse.Insert) (*colstore.Batch, error) {
	cols := s.Columns
	if cols == nil {
		cols = make([]string, len(def.Schema))
		for i, c := range def.Schema {
			cols[i] = c.Name
		}
	}
	if len(cols) != len(def.Schema) {
		return nil, fmt.Errorf("vertica: INSERT must provide all %d columns", len(def.Schema))
	}
	// Map provided column order onto the table order.
	pos := make([]int, len(def.Schema))
	for i := range pos {
		pos[i] = -1
	}
	for provIdx, name := range cols {
		ti := def.Schema.ColIndex(name)
		if ti < 0 {
			return nil, fmt.Errorf("vertica: unknown column %q in INSERT", name)
		}
		pos[ti] = provIdx
	}
	for ti, p := range pos {
		if p < 0 {
			return nil, fmt.Errorf("vertica: INSERT missing column %q", def.Schema[ti].Name)
		}
	}
	b := colstore.NewBatch(def.Schema)
	for ri, row := range s.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("vertica: INSERT row %d has %d values, want %d", ri, len(row), len(cols))
		}
		vals := make([]any, len(def.Schema))
		for ti := range def.Schema {
			v, ok := sqlexec.Literal(row[pos[ti]])
			if !ok {
				return nil, fmt.Errorf("vertica: INSERT values must be literals (row %d)", ri)
			}
			vals[ti] = v
		}
		if err := b.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Persist seals and writes every segment of every table under DataDir,
// along with the catalog manifest, so Restore can reopen the database.
// (Legacy full-dump path; durable databases use Checkpoint instead.)
func (db *DB) Persist() error {
	if db.cfg.DataDir == "" {
		return fmt.Errorf("vertica: no DataDir configured")
	}
	if err := db.persistCatalog(); err != nil {
		return err
	}
	snap := db.store.Snapshot()
	defer snap.Release()
	for _, table := range snap.Tables() {
		segs, ok := snap.Segments(table)
		if !ok {
			continue
		}
		dir := filepath.Join(db.cfg.DataDir, "tables", table)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for node, seg := range segs {
			path := filepath.Join(dir, fmt.Sprintf("node%d.vseg", node))
			// Persist seals, which mutates; published versions stay untouched.
			if err := seg.Clone().Persist(path); err != nil {
				return err
			}
		}
	}
	return nil
}

var _ sqlexec.Database = (*DB)(nil)
