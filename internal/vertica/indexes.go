package vertica

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"verticadr/internal/atomicfile"
	"verticadr/internal/colstore"
	"verticadr/internal/colstore/index"
	"verticadr/internal/verr"
)

// Secondary-index DDL. An index is a per-node B-tree over one column
// (internal/colstore/index), attached to the table's published segment
// versions. DDL rides the table's commit stream through the write-ahead
// protocol: the record is durable before any segment version carries the
// index, recovery replays the record by rebuilding from table data, and
// checkpoints persist the trees themselves (.vidx files) so a restart from
// a checkpoint skips the rebuild.

// IndexDef describes one secondary index in the catalog.
type IndexDef struct {
	Name   string
	Table  string
	Column string
}

// Indexes lists the secondary-index catalog, sorted by index name.
func (db *DB) Indexes() []IndexDef {
	db.mu.RLock()
	out := make([]IndexDef, 0, len(db.indexes))
	for _, d := range db.indexes {
		out = append(out, d)
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (db *DB) indexMeta(name string) (IndexDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.indexes[name]
	return d, ok
}

// CatalogEpoch is a counter bumped by every DDL apply (CREATE/DROP TABLE,
// CREATE/DROP INDEX). The serving layer folds it into plan-cache keys, so
// any DDL invalidates cached physical plans instead of letting them run
// against access paths that no longer exist.
func (db *DB) CatalogEpoch() uint64 { return db.epoch.Load() }

// CreateIndex builds a B-tree index on table(column) across every node's
// segment and registers it under name, through the write-ahead protocol.
func (db *DB) CreateIndex(name, table, column string) error {
	return db.commit(table,
		func(st *streamState, durable bool) (byte, []byte, error) {
			db.seedTable(st, table)
			if !st.exists {
				return 0, nil, fmt.Errorf("vertica: %w: %q", verr.ErrTableNotFound, table)
			}
			if st.schema.ColIndex(column) < 0 {
				return 0, nil, fmt.Errorf("vertica: index on unknown column %q of %q", column, table)
			}
			if d, ok := db.indexMeta(name); ok && (d.Table != table || d.Column != column) {
				return 0, nil, fmt.Errorf("vertica: index %q already exists on %s(%s)", name, d.Table, d.Column)
			}
			if !durable {
				return 0, nil, nil
			}
			return recCreateIndex, encodeIndexDDL(name, table, column), nil
		},
		func() error { return db.applyCreateIndex(name, table, column) })
}

// applyCreateIndex publishes a new table version whose segments carry the
// index. The build runs on clones (copy-on-write), so pinned snapshots and
// in-flight scans keep reading the index-free versions. Re-creating an
// identical index rebuilds it without error — the tolerance keeps every
// logged record replayable even if a raced duplicate slipped into the log.
func (db *DB) applyCreateIndex(name, table, column string) error {
	cur, ok := db.store.Latest(table)
	if !ok {
		return fmt.Errorf("vertica: %w: table %q has no storage", verr.ErrTableNotFound, table)
	}
	next := make([]*colstore.Segment, len(cur))
	for i, seg := range cur {
		c := seg.Clone()
		if err := c.BuildIndex(column); err != nil {
			return err
		}
		next[i] = c
	}
	db.store.Put(table, next)
	db.mu.Lock()
	db.indexes[name] = IndexDef{Name: name, Table: table, Column: column}
	db.mu.Unlock()
	db.epoch.Add(1)
	return nil
}

// DropIndex removes the named index from the catalog and from every
// segment, through the write-ahead protocol.
func (db *DB) DropIndex(name string) error {
	d, ok := db.indexMeta(name)
	if !ok {
		return fmt.Errorf("vertica: index %q does not exist", name)
	}
	return db.commit(d.Table,
		func(st *streamState, durable bool) (byte, []byte, error) {
			db.seedTable(st, d.Table)
			if !durable {
				return 0, nil, nil
			}
			return recDropIndex, encodeIndexDDL(name, d.Table, d.Column), nil
		},
		func() error { return db.applyDropIndex(name, d.Table, d.Column) })
}

// applyDropIndex detaches the index. Missing tables or already-dropped
// indexes are tolerated so replay never aborts on a record whose table a
// later record drops.
func (db *DB) applyDropIndex(name, table, column string) error {
	if cur, ok := db.store.Latest(table); ok {
		next := make([]*colstore.Segment, len(cur))
		for i, seg := range cur {
			c := seg.Clone()
			c.DropIndex(column)
			next[i] = c
		}
		db.store.Put(table, next)
	}
	db.mu.Lock()
	delete(db.indexes, name)
	db.mu.Unlock()
	db.epoch.Add(1)
	return nil
}

// dropTableIndexMeta clears index catalog entries for a dropped table
// (caller must not hold db.mu).
func (db *DB) dropTableIndexMeta(table string) {
	db.mu.Lock()
	for n, d := range db.indexes {
		if d.Table == table {
			delete(db.indexes, n)
		}
	}
	db.mu.Unlock()
}

// vidxFile names the persisted tree of one (table, column, node) index
// inside a checkpoint image's table directory.
func vidxFile(node int, column string) string {
	return fmt.Sprintf("node%d.%s.vidx", node, column)
}

// persistIndexes writes the checkpointed trees of every index on the given
// table, crash-atomically, next to the segment files.
func (db *DB) persistIndexes(dir, table string, segs []*colstore.Segment, idxs []IndexDef) error {
	for _, d := range idxs {
		if d.Table != table {
			continue
		}
		for node, seg := range segs {
			tree := seg.Index(d.Column)
			if tree == nil {
				// The pinned version predates the index (checkpoint raced a
				// CREATE INDEX); recovery will rebuild from the log instead.
				continue
			}
			if err := atomicfile.WriteFile(filepath.Join(dir, vidxFile(node, d.Column)), tree.Encode(), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// restoreIndexes reattaches checkpointed trees to a just-loaded table's
// segments and registers the catalog entries. A missing, corrupt, or
// row-count-mismatched .vidx falls back to rebuilding the tree from the
// segment — the index catalog entry is authoritative, the tree bytes are a
// cache.
func (db *DB) restoreIndexes(dir string, idxs []persistedIndex, table string, segs []*colstore.Segment) error {
	for _, pi := range idxs {
		if pi.Table != table {
			continue
		}
		for node, seg := range segs {
			attached := false
			if data, err := os.ReadFile(filepath.Join(dir, vidxFile(node, pi.Column))); err == nil {
				if tree, err := index.DecodeTree(data); err == nil {
					if err := seg.SetIndex(pi.Column, tree); err == nil {
						attached = true
					}
				}
			}
			if !attached {
				if err := seg.BuildIndex(pi.Column); err != nil {
					return fmt.Errorf("vertica: rebuild index %q on %s(%s) node %d: %w", pi.Name, pi.Table, pi.Column, node, err)
				}
			}
		}
		db.mu.Lock()
		db.indexes[pi.Name] = IndexDef{Name: pi.Name, Table: pi.Table, Column: pi.Column}
		db.mu.Unlock()
		db.epoch.Add(1)
	}
	return nil
}
