package vertica

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"verticadr/internal/atomicfile"
	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/faults"
	"verticadr/internal/wal"
)

// walSubdir holds the log segments and checkpoint marker under DataDir.
const walSubdir = "wal"

// blobStream is the committer key serializing DFS blob journal records. The
// leading NUL keeps it out of the SQL identifier namespace, so it can never
// collide with a table's commit stream.
const blobStream = "\x00blobs"

// committer orders one stream of commits (one table, or the blob namespace).
// A ticket is taken while the WAL record is appended — so ticket order equals
// LSN order — and the in-memory apply runs strictly in ticket order after the
// record is durable. Between the two, any number of commits from any streams
// wait on the same group-commit fsync, which is where the batching win lives.
type committer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    uint64
	applied uint64
	state   streamState
}

// streamState is the log-end view of one commit stream's logical state: what
// the stream will look like once every already-appended record has applied.
// prepare validates against it rather than against live state — live state
// lags by the commits still in their group-commit durability wait, so a
// sibling's logged-but-unapplied CREATE/DROP would otherwise be invisible to
// validation. Two concurrent CREATE TABLE t could then both log records, and
// the loser's record (whose apply fails at runtime) would poison recovery:
// replay aborts on it and the database refuses to open. Validating at the
// log end keeps the invariant that every logged record replays cleanly.
//
// The view is reset whenever the stream is idle (applied == next), at which
// point live state is authoritative and re-seeds it lazily.
type streamState struct {
	seeded bool            // table streams: exists/schema populated from live state
	exists bool            // table streams: table exists at the log end
	schema colstore.Schema // table streams: schema at the log end (nil when !exists)
	blobs  map[string]bool // blob stream: path -> exists-at-log-end overlay
}

// seedTable populates the table stream's log-end view from live state the
// first time a pipelined burst validates (caller holds the stream lock).
func (db *DB) seedTable(st *streamState, table string) {
	if st.seeded {
		return
	}
	st.seeded = true
	if def, err := db.cat.Get(table); err == nil {
		st.exists = true
		st.schema = def.Schema
	}
}

// blobExists resolves a DFS path against the blob stream's log-end overlay,
// falling through to live state for paths no pending record touches.
func (db *DB) blobExists(st *streamState, path string) bool {
	if v, ok := st.blobs[path]; ok {
		return v
	}
	_, err := db.fs.Stat(path)
	return err == nil
}

func (st *streamState) setBlob(path string, exists bool) {
	if st.blobs == nil {
		st.blobs = make(map[string]bool)
	}
	st.blobs[path] = exists
}

// clone copies the view so commit can restore it when prepare's intent never
// makes it into the log (prepare or Append failed). The schema slice is
// shared — prepares replace it, never mutate it in place.
func (st *streamState) clone() streamState {
	out := *st
	if st.blobs != nil {
		out.blobs = make(map[string]bool, len(st.blobs))
		for k, v := range st.blobs {
			out.blobs[k] = v
		}
	}
	return out
}

func (db *DB) committer(stream string) *committer {
	db.mu.Lock()
	defer db.mu.Unlock()
	c := db.committers[stream]
	if c == nil {
		c = &committer{}
		c.cond = sync.NewCond(&c.mu)
		db.committers[stream] = c
	}
	return c
}

// commit runs one durable mutation through the write-ahead protocol:
//
//  1. prepare validates against the stream's log-end view and encodes the
//     redo record (under the stream lock, so validation and log order cannot
//     be raced by a sibling commit — including one whose record is logged
//     but not yet applied);
//  2. the record is appended to the WAL and the stream ticket taken;
//  3. the committer waits for the record to be durable (group-commit fsync);
//  4. apply publishes the mutation to in-memory state, in ticket order.
//
// Nothing is acknowledged before it is durable, and nothing is visible
// before it is durable — a reader can never observe state that a crash
// could take back. Without a WAL (in-memory database) prepare is told not
// to encode and apply runs immediately under the stream lock.
func (db *DB) commit(stream string, prepare func(st *streamState, durable bool) (byte, []byte, error), apply func() error) error {
	db.ckptMu.RLock()
	defer db.ckptMu.RUnlock()
	c := db.committer(stream)
	if db.wal == nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.state = streamState{} // apply runs under the lock: live state is current
		if _, _, err := prepare(&c.state, false); err != nil {
			return err
		}
		return apply()
	}
	c.mu.Lock()
	if c.applied == c.next {
		// Stream idle: every logged record has applied, so live state is
		// authoritative again and the log-end view re-seeds from it.
		c.state = streamState{}
	}
	// Snapshot the log-end view: if prepare or Append fails, the intent it
	// recorded never reached the log and must not be visible to the next
	// prepare on this stream.
	prev := c.state.clone()
	typ, body, err := prepare(&c.state, true)
	if err != nil {
		c.state = prev
		c.mu.Unlock()
		return err
	}
	lsn, err := db.wal.Append(typ, body)
	if err != nil {
		c.state = prev
		c.mu.Unlock()
		return err
	}
	ticket := c.next
	c.next++
	c.mu.Unlock()

	derr := db.wal.Commit(lsn)
	c.mu.Lock()
	for c.applied != ticket {
		c.cond.Wait()
	}
	var aerr error
	if derr == nil {
		aerr = apply()
	}
	// Advance the ticket even on a durability failure, or every later commit
	// on the stream (all of which will fail the same way — WAL errors are
	// sticky) would wait forever.
	c.applied++
	c.cond.Broadcast()
	c.mu.Unlock()
	if derr != nil {
		return derr
	}
	return aerr
}

// JournalBlobPut writes a DFS blob through the write-ahead log: the record
// is durable before the namespace mutates, which closes the redeploy torn
// window — a crash can no longer leave a model version acknowledged but
// unrecoverable. The model manager discovers this method by interface
// assertion and falls back to direct DFS writes on non-durable databases.
func (db *DB) JournalBlobPut(path string, data []byte) error {
	return db.commit(blobStream,
		func(st *streamState, durable bool) (byte, []byte, error) {
			st.setBlob(path, true)
			if !durable {
				return 0, nil, nil
			}
			return recBlobPut, encodeBlobPut(path, data), nil
		},
		func() error { return db.fs.Write(path, data) })
}

// JournalBlobDelete removes a DFS blob through the write-ahead log.
func (db *DB) JournalBlobDelete(path string) error {
	return db.commit(blobStream,
		func(st *streamState, durable bool) (byte, []byte, error) {
			// Validate against the log end: a sibling delete may be logged
			// but unapplied, and logging a doomed second delete would abort
			// replay on restart.
			if !db.blobExists(st, path) {
				return 0, nil, fmt.Errorf("dfs: file %q does not exist", path)
			}
			st.setBlob(path, false)
			if !durable {
				return 0, nil, nil
			}
			return recBlobDelete, encodeBlobPut(path, nil), nil
		},
		func() error { return db.fs.Delete(path) })
}

// --- recovery --------------------------------------------------------------

// RecoveryInfo describes what startup recovery did: the checkpoint image it
// loaded and the redo pass over the log that followed.
type RecoveryInfo struct {
	CheckpointLSN uint64          // replay horizon (0 = no checkpoint, full log)
	CheckpointDir string          // snapshot directory loaded, "" if none
	Replay        wal.ReplayStats // redo pass measurements
	DurableLSN    uint64          // log position after recovery
}

// RecoveryInfo returns what recovery did when the database opened, or nil
// for a non-durable database.
func (db *DB) RecoveryInfo() *RecoveryInfo { return db.recovery }

// WALStats reports the live log position (durable end LSN); zero without a WAL.
func (db *DB) WALStats() (durable uint64, ok bool) {
	if db.wal == nil {
		return 0, false
	}
	return db.wal.DurableLSN(), true
}

// recover brings a durable database to its pre-crash state: load the last
// checkpoint image if one exists, then redo every log record after it.
// Finally the log is opened for appending (truncating any torn tail a crash
// left behind).
func (db *DB) recoverState() error {
	walDir := filepath.Join(db.cfg.DataDir, walSubdir)
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return fmt.Errorf("vertica: recover: %w", err)
	}
	info := &RecoveryInfo{}
	ck, haveCk, err := wal.LoadCheckpoint(walDir)
	if err != nil {
		return err
	}
	if haveCk {
		if err := db.loadCheckpointImage(filepath.Join(db.cfg.DataDir, ck.Dir)); err != nil {
			return fmt.Errorf("vertica: load checkpoint %q: %w", ck.Dir, err)
		}
		info.CheckpointLSN = ck.LSN
		info.CheckpointDir = ck.Dir
	}
	stats, err := wal.Replay(walDir, info.CheckpointLSN, db.applyWALRecord)
	if err != nil {
		return fmt.Errorf("vertica: redo: %w", err)
	}
	info.Replay = *stats
	w, err := wal.Open(walDir, wal.Options{SegmentBytes: db.cfg.WALSegmentBytes})
	if err != nil {
		return err
	}
	db.wal = w
	info.DurableLSN = w.DurableLSN()
	db.recovery = info
	return nil
}

// applyWALRecord is the redo interpreter: it applies one log record to
// in-memory state exactly as the original commit's apply step did.
func (db *DB) applyWALRecord(lsn uint64, typ byte, body []byte) error {
	switch typ {
	case recCreateTable:
		def, err := decodeCreateTable(body)
		if err != nil {
			return err
		}
		return db.applyCreate(def)
	case recDropTable:
		return db.applyDrop(string(body))
	case recLoad:
		table, parts, err := decodeLoad(body, func(t string) (colstore.Schema, error) {
			def, err := db.cat.Get(t)
			if err != nil {
				return nil, err
			}
			return def.Schema, nil
		})
		if err != nil {
			return err
		}
		return db.applyLoad(table, parts)
	case recCreateIndex:
		name, table, column, err := decodeIndexDDL(body)
		if err != nil {
			return err
		}
		return db.applyCreateIndex(name, table, column)
	case recDropIndex:
		name, table, column, err := decodeIndexDDL(body)
		if err != nil {
			return err
		}
		return db.applyDropIndex(name, table, column)
	case recBlobPut:
		path, data, err := decodeBlobPut(body)
		if err != nil {
			return err
		}
		return db.fs.Write(path, data)
	case recBlobDelete:
		path, _, err := decodeBlobPut(body)
		if err != nil {
			return err
		}
		return db.fs.Delete(path)
	default:
		return fmt.Errorf("vertica: unknown wal record type %d at lsn %d", typ, lsn)
	}
}

// loadCheckpointImage restores catalog, table segments and DFS blobs from a
// checkpoint snapshot directory.
func (db *DB) loadCheckpointImage(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if err != nil {
		return err
	}
	pc, err := parseCatalogManifest(data)
	if err != nil {
		return err
	}
	if pc.Nodes != db.cfg.Nodes {
		return fmt.Errorf("vertica: cluster size %d does not match checkpointed %d", db.cfg.Nodes, pc.Nodes)
	}
	for _, pt := range pc.Tables {
		def, err := manifestTableDef(pt)
		if err != nil {
			return err
		}
		if err := db.applyCreate(def); err != nil {
			return err
		}
		segs := make([]*colstore.Segment, db.cfg.Nodes)
		for node := range segs {
			path := filepath.Join(dir, "tables", pt.Name, fmt.Sprintf("node%d.vseg", node))
			seg, err := colstore.OpenSegment(path)
			if err != nil {
				return fmt.Errorf("table %q node %d: %w", pt.Name, node, err)
			}
			if !seg.Schema().Equal(def.Schema) {
				return fmt.Errorf("table %q node %d: segment schema drift", pt.Name, node)
			}
			segs[node] = seg
		}
		// Reattach secondary indexes before publishing: checkpointed .vidx
		// trees load directly, anything missing or corrupt rebuilds from the
		// segment data just read.
		if err := db.restoreIndexes(filepath.Join(dir, "tables", pt.Name), pc.Indexes, pt.Name, segs); err != nil {
			return err
		}
		db.store.Put(pt.Name, segs)
	}
	blobRoot := filepath.Join(dir, "blobs")
	return filepath.WalkDir(blobRoot, func(path string, d os.DirEntry, err error) error {
		if os.IsNotExist(err) {
			return nil // checkpoint with no blobs
		}
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(blobRoot, path)
		if err != nil {
			return err
		}
		return db.fs.Write(filepath.ToSlash(rel), data)
	})
}

// --- checkpoint ------------------------------------------------------------

// Checkpoint materializes the full database state (catalog, every table's
// segments, every DFS blob) into a new snapshot directory, atomically
// switches the checkpoint marker to it, and truncates log segments the new
// checkpoint makes dead. Commits are quiesced only while the state image is
// captured (the WAL is synced and the MVCC snapshot pinned); the actual file
// writing happens concurrently with new commits. Returns the checkpoint LSN.
func (db *DB) Checkpoint() (uint64, error) {
	if db.wal == nil {
		return 0, fmt.Errorf("vertica: checkpoint requires a durable database")
	}
	if err := faults.Check(faults.SiteWALCheckpoint); err != nil {
		return 0, err
	}

	// Quiesce: with the write lock held no commit is between its WAL append
	// and its in-memory apply, so the durable LSN and the MVCC head describe
	// the same state.
	db.ckptMu.Lock()
	if err := db.wal.Sync(); err != nil {
		db.ckptMu.Unlock()
		return 0, err
	}
	lsn := db.wal.DurableLSN()
	snap := db.store.Snapshot()
	defs := make([]*catalog.TableDef, 0)
	for _, name := range db.cat.List() {
		def, err := db.cat.Get(name)
		if err != nil {
			snap.Release()
			db.ckptMu.Unlock()
			return 0, err
		}
		defs = append(defs, def)
	}
	idxs := db.Indexes()
	blobs := make(map[string][]byte)
	for _, info := range db.fs.List() {
		data, err := db.fs.Read(info.Name)
		if err != nil {
			snap.Release()
			db.ckptMu.Unlock()
			return 0, err
		}
		blobs[info.Name] = data
	}
	db.ckptMu.Unlock()
	defer snap.Release()

	// Materialize the image outside the lock: everything captured above is
	// immutable (pinned versions, copied blob bytes, def values).
	dirName := fmt.Sprintf("chk-%016x", lsn)
	full := filepath.Join(db.cfg.DataDir, dirName)
	if err := os.RemoveAll(full); err != nil {
		return 0, err
	}
	if err := os.MkdirAll(full, 0o755); err != nil {
		return 0, err
	}
	manifest, err := encodeCatalogManifest(db.cfg.Nodes, defs, idxs)
	if err != nil {
		return 0, err
	}
	if err := atomicfile.WriteFile(filepath.Join(full, catalogFile), manifest, 0o644); err != nil {
		return 0, err
	}
	for _, def := range defs {
		segs, ok := snap.Segments(def.Name)
		if !ok {
			continue // created after the snapshot? impossible under the lock; dropped tables are not in defs
		}
		dir := filepath.Join(full, "tables", def.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return 0, err
		}
		for node, seg := range segs {
			// Persist seals, which mutates — never touch a published version.
			if err := seg.Clone().Persist(filepath.Join(dir, fmt.Sprintf("node%d.vseg", node))); err != nil {
				return 0, err
			}
		}
		// Persist the B-trees of this table's secondary indexes so a restart
		// from the checkpoint loads them instead of rebuilding.
		if err := db.persistIndexes(dir, def.Name, segs, idxs); err != nil {
			return 0, err
		}
	}
	for name, data := range blobs {
		path := filepath.Join(full, "blobs", filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return 0, err
		}
		if err := atomicfile.WriteFile(path, data, 0o644); err != nil {
			return 0, err
		}
	}
	// Make the image durable as a tree before the marker can point at it:
	// every directory created above (tables/, per-table dirs, blob subdirs)
	// needs its entries committed — syncing only the root would let a crash
	// after the marker install surface a checkpoint missing segment files,
	// with the pre-checkpoint log already truncated. The data root is synced
	// too, so the checkpoint directory's own entry survives the crash.
	if err := atomicfile.SyncTree(full); err != nil {
		return 0, err
	}
	if err := atomicfile.SyncDir(db.cfg.DataDir); err != nil {
		return 0, err
	}

	// Switch the marker, then garbage-collect: log segments wholly below the
	// checkpoint and snapshot directories it replaced.
	walDir := filepath.Join(db.cfg.DataDir, walSubdir)
	if err := wal.SaveCheckpoint(walDir, wal.Checkpoint{LSN: lsn, Dir: dirName, UnixNano: time.Now().UnixNano()}); err != nil {
		return 0, err
	}
	if _, err := db.wal.TruncateBefore(lsn); err != nil {
		return 0, err
	}
	db.removeStaleCheckpoints(dirName)
	return lsn, nil
}

// removeStaleCheckpoints deletes chk-* directories other than current.
func (db *DB) removeStaleCheckpoints(current string) {
	entries, err := os.ReadDir(db.cfg.DataDir)
	if err != nil {
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "chk-") && e.Name() != current {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		os.RemoveAll(filepath.Join(db.cfg.DataDir, n))
	}
}

// Close flushes and closes the write-ahead log (no-op without one). The
// database must not be used after Close.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}
