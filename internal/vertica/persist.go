package vertica

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"verticadr/internal/atomicfile"
	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
)

// catalogFile is the on-disk catalog manifest written next to the segment
// files by Persist (and inside checkpoint images) and read back by Restore.
const catalogFile = "catalog.json"

type persistedColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type persistedTable struct {
	Name      string            `json:"name"`
	Columns   []persistedColumn `json:"columns"`
	SegKind   string            `json:"segmentation"`
	SegColumn string            `json:"seg_column,omitempty"`
}

type persistedIndex struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Column string `json:"column"`
}

type persistedCatalog struct {
	Nodes   int              `json:"nodes"`
	Tables  []persistedTable `json:"tables"`
	Indexes []persistedIndex `json:"indexes,omitempty"`
}

// tableManifest renders one table definition into its manifest form (shared
// by the catalog manifest, checkpoint images, and WAL create-table records).
func tableManifest(def *catalog.TableDef) persistedTable {
	pt := persistedTable{Name: def.Name}
	for _, c := range def.Schema {
		pt.Columns = append(pt.Columns, persistedColumn{Name: c.Name, Type: c.Type.String()})
	}
	switch def.Seg.Kind {
	case catalog.SegHash:
		pt.SegKind = "hash"
		pt.SegColumn = def.Seg.Column
	default:
		pt.SegKind = "roundrobin"
	}
	return pt
}

// manifestTableDef is the inverse of tableManifest.
func manifestTableDef(pt persistedTable) (*catalog.TableDef, error) {
	schema := make(colstore.Schema, 0, len(pt.Columns))
	for _, c := range pt.Columns {
		typ, err := colstore.ParseType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("vertica: table %q: %w", pt.Name, err)
		}
		schema = append(schema, colstore.ColumnSchema{Name: c.Name, Type: typ})
	}
	def := &catalog.TableDef{Name: pt.Name, Schema: schema}
	if pt.SegKind == "hash" {
		def.Seg = catalog.Segmentation{Kind: catalog.SegHash, Column: pt.SegColumn}
	}
	return def, nil
}

// encodeCatalogManifest renders the full catalog manifest document.
func encodeCatalogManifest(nodes int, defs []*catalog.TableDef, idxs []IndexDef) ([]byte, error) {
	pc := persistedCatalog{Nodes: nodes}
	for _, def := range defs {
		pc.Tables = append(pc.Tables, tableManifest(def))
	}
	for _, d := range idxs {
		pc.Indexes = append(pc.Indexes, persistedIndex{Name: d.Name, Table: d.Table, Column: d.Column})
	}
	return json.MarshalIndent(pc, "", "  ")
}

// parseCatalogManifest is the inverse of encodeCatalogManifest.
func parseCatalogManifest(data []byte) (*persistedCatalog, error) {
	var pc persistedCatalog
	if err := json.Unmarshal(data, &pc); err != nil {
		return nil, fmt.Errorf("vertica: parse catalog manifest: %w", err)
	}
	return &pc, nil
}

// persistCatalog writes the catalog manifest under DataDir crash-atomically.
func (db *DB) persistCatalog() error {
	defs := make([]*catalog.TableDef, 0)
	for _, name := range db.cat.List() {
		def, err := db.cat.Get(name)
		if err != nil {
			return err
		}
		defs = append(defs, def)
	}
	data, err := encodeCatalogManifest(db.cfg.Nodes, defs, db.Indexes())
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(filepath.Join(db.cfg.DataDir, catalogFile), data, 0o644)
}

// Restore reopens every table persisted under cfg.DataDir into a fresh
// cluster: catalog manifest plus per-node segment files. The cluster size
// must match the one that persisted the data (segments are per node).
func Restore(cfg Config) (*DB, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("vertica: Restore requires DataDir")
	}
	data, err := os.ReadFile(filepath.Join(cfg.DataDir, catalogFile))
	if err != nil {
		return nil, fmt.Errorf("vertica: read catalog manifest: %w", err)
	}
	pc, err := parseCatalogManifest(data)
	if err != nil {
		return nil, err
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = pc.Nodes
	}
	if cfg.Nodes != pc.Nodes {
		return nil, fmt.Errorf("vertica: cluster size %d does not match persisted %d", cfg.Nodes, pc.Nodes)
	}
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	for _, pt := range pc.Tables {
		def, err := manifestTableDef(pt)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(def); err != nil {
			return nil, err
		}
		segs := make([]*colstore.Segment, cfg.Nodes)
		for node := 0; node < cfg.Nodes; node++ {
			path := filepath.Join(cfg.DataDir, "tables", pt.Name, fmt.Sprintf("node%d.vseg", node))
			seg, err := colstore.OpenSegment(path)
			if err != nil {
				return nil, fmt.Errorf("vertica: reopen %q node %d: %w", pt.Name, node, err)
			}
			if !seg.Schema().Equal(def.Schema) {
				return nil, fmt.Errorf("vertica: segment schema drift in %q node %d", pt.Name, node)
			}
			segs[node] = seg
		}
		// Legacy dumps carry no .vidx files; rebuild manifest indexes from
		// the segment data (restoreIndexes falls back to BuildIndex).
		if err := db.restoreIndexes(filepath.Join(cfg.DataDir, "tables", pt.Name), pc.Indexes, pt.Name, segs); err != nil {
			return nil, err
		}
		db.store.Put(pt.Name, segs)
	}
	return db, nil
}
