package vertica

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"verticadr/internal/colstore"
)

// LoadCSV bulk-loads CSV records into a table (the COPY path; also the
// "data resides as files in the local ext4 filesystem" loading mode of
// Fig. 21). Fields are parsed according to the table schema; hasHeader
// skips the first record. Rows are routed through the table's segmentation
// exactly like any other load.
func (db *DB) LoadCSV(table string, r io.Reader, hasHeader bool) (int, error) {
	def, err := db.cat.Get(table)
	if err != nil {
		return 0, err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(def.Schema)
	cr.ReuseRecord = true
	if hasHeader {
		if _, err := cr.Read(); err != nil {
			return 0, fmt.Errorf("vertica: read CSV header: %w", err)
		}
	}
	const flushRows = 8192
	batch := colstore.NewBatch(def.Schema)
	total := 0
	vals := make([]any, len(def.Schema))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, fmt.Errorf("vertica: read CSV: %w", err)
		}
		for i, field := range rec {
			switch def.Schema[i].Type {
			case colstore.TypeInt64:
				v, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return total, fmt.Errorf("vertica: column %q: bad integer %q", def.Schema[i].Name, field)
				}
				vals[i] = v
			case colstore.TypeFloat64:
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return total, fmt.Errorf("vertica: column %q: bad float %q", def.Schema[i].Name, field)
				}
				vals[i] = v
			case colstore.TypeString:
				vals[i] = field
			case colstore.TypeBool:
				switch field {
				case "true", "t", "1", "TRUE", "T":
					vals[i] = true
				case "false", "f", "0", "FALSE", "F":
					vals[i] = false
				default:
					return total, fmt.Errorf("vertica: column %q: bad boolean %q", def.Schema[i].Name, field)
				}
			}
		}
		if err := batch.AppendRow(vals...); err != nil {
			return total, err
		}
		total++
		if batch.Len() >= flushRows {
			if err := db.Load(table, batch); err != nil {
				return total, err
			}
			batch = colstore.NewBatch(def.Schema)
		}
	}
	if batch.Len() > 0 {
		if err := db.Load(table, batch); err != nil {
			return total, err
		}
	}
	return total, nil
}

// LoadCSVFile is LoadCSV over a file path.
func (db *DB) LoadCSVFile(table, path string, hasHeader bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("vertica: open CSV: %w", err)
	}
	defer f.Close()
	return db.LoadCSV(table, f, hasHeader)
}
