package vertica

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/faults"
)

func durableDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Config{Nodes: 3, Durable: true, DataDir: dir, BlockRows: 8, WALSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var dSchema = colstore.Schema{
	{Name: "id", Type: colstore.TypeInt64},
	{Name: "x", Type: colstore.TypeFloat64},
}

func createDTable(t *testing.T, db *DB, name string) {
	t.Helper()
	err := db.CreateTable(&catalog.TableDef{
		Name:   name,
		Schema: dSchema,
		Seg:    catalog.Segmentation{Kind: catalog.SegHash, Column: "id"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func dBatch(t *testing.T, base, n int) *colstore.Batch {
	t.Helper()
	b := colstore.NewBatch(dSchema)
	for i := 0; i < n; i++ {
		// Values with non-trivial float bit patterns, so byte-identity is a
		// real check and not just an integer round trip.
		if err := b.AppendRow(int64(base+i), math.Sqrt(float64(base+i))+1e-9); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// tableImage captures a table's exact per-node content as float bit patterns
// and int64s — the byte-identity view recovery is checked against.
func tableImage(t *testing.T, db *DB, name string) [][]uint64 {
	t.Helper()
	segs, err := db.Segments(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]uint64, len(segs))
	for node, seg := range segs {
		batch, err := seg.ReadAll(nil)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < batch.Len(); r++ {
			out[node] = append(out[node], uint64(batch.Cols[0].Ints[r]), math.Float64bits(batch.Cols[1].Floats[r]))
		}
	}
	return out
}

func imagesEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for n := range a {
		if len(a[n]) != len(b[n]) {
			return false
		}
		for i := range a[n] {
			if a[n][i] != b[n][i] {
				return false
			}
		}
	}
	return true
}

func TestDurableRecoverWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	createDTable(t, db, "m")
	for i := 0; i < 5; i++ {
		if err := db.Load("m", dBatch(t, i*100, 37)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Exec(`INSERT INTO m VALUES (9999, 0.5)`); err != nil {
		t.Fatal(err)
	}
	want := tableImage(t, db, "m")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := durableDB(t, dir)
	defer re.Close()
	if got := tableImage(t, re, "m"); !imagesEqual(want, got) {
		t.Fatal("recovered table differs from pre-crash image")
	}
	info := re.RecoveryInfo()
	if info == nil || info.Replay.Records == 0 || info.CheckpointLSN != 0 {
		t.Fatalf("recovery info wrong: %+v", info)
	}
	// The recovered database keeps working and recovers again.
	if err := re.Load("m", dBatch(t, 5000, 11)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointReplayAndLogTruncation(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	createDTable(t, db, "m")
	createDTable(t, db, "aux")
	for i := 0; i < 30; i++ {
		if err := db.Load("m", dBatch(t, i*50, 23)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DropTable("aux"); err != nil {
		t.Fatal(err)
	}
	if err := db.JournalBlobPut("models/demo", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	lsn, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Fatal("checkpoint at lsn 0")
	}
	// Post-checkpoint mutations replay on top of the image.
	for i := 0; i < 5; i++ {
		if err := db.Load("m", dBatch(t, 10_000+i*50, 23)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.JournalBlobPut("models/demo", []byte{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	want := tableImage(t, db, "m")
	db.Close()

	re := durableDB(t, dir)
	defer re.Close()
	info := re.RecoveryInfo()
	if info.CheckpointLSN != lsn {
		t.Fatalf("recovered from checkpoint %d, want %d", info.CheckpointLSN, lsn)
	}
	if got := tableImage(t, re, "m"); !imagesEqual(want, got) {
		t.Fatal("checkpoint+replay image differs")
	}
	if _, err := re.Segments("aux"); err == nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	data, err := re.DFS().Read("models/demo")
	if err != nil || string(data) != string([]byte{4, 5, 6}) {
		t.Fatalf("blob not recovered to latest version: %v %v", data, err)
	}
}

func TestInjectedCrashMidCopyRecoversEveryAcknowledgedCommit(t *testing.T) {
	for _, site := range []string{faults.SiteWALAppend, faults.SiteWALFsync} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			db := durableDB(t, dir)
			createDTable(t, db, "m")
			if err := db.Load("m", dBatch(t, 0, 10)); err != nil {
				t.Fatal(err)
			}
			acked := 1

			in := faults.New(7)
			in.MustArm(faults.Rule{Site: site, Kind: faults.Crash, EveryN: 5})
			faults.Install(in)
			for i := 1; i < 40; i++ {
				if err := db.Load("m", dBatch(t, i*100, 10)); err != nil {
					break // the crash: everything after this is the dead process
				}
				acked++
			}
			faults.Install(nil)
			// The acknowledged state, captured from the dying process's memory.
			want := tableImage(t, db, "m")
			db.Close()

			re := durableDB(t, dir)
			defer re.Close()
			got := tableImage(t, re, "m")
			if !imagesEqual(want, got) {
				t.Fatalf("recovered image differs after crash at %s (%d acked commits)", site, acked)
			}
			rows, err := re.TableRows("m")
			if err != nil || rows != acked*10 {
				t.Fatalf("recovered %d rows, want %d (acked commits %d)", rows, acked*10, acked)
			}
		})
	}
}

func TestInjectedCheckpointCrashKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("m", dBatch(t, 100, 20)); err != nil {
		t.Fatal(err)
	}
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: faults.SiteWALCheckpoint, Kind: faults.Crash, EveryN: 1})
	faults.Install(in)
	if _, err := db.Checkpoint(); err == nil {
		faults.Install(nil)
		t.Fatal("injected checkpoint crash not surfaced")
	}
	faults.Install(nil)
	want := tableImage(t, db, "m")
	db.Close()

	re := durableDB(t, dir)
	defer re.Close()
	if got := tableImage(t, re, "m"); !imagesEqual(want, got) {
		t.Fatal("recovery after failed checkpoint lost state")
	}
}

// TestSnapshotIsolationUnderConcurrentIngest is the acceptance scenario: a
// long SELECT overlapping COPYs and model redeploys returns one consistent
// snapshot. Each COPY commits rows sharing one commit id; every SELECT must
// observe complete commits only, and a monotonically growing prefix.
func TestSnapshotIsolationUnderConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	defer db.Close()
	createDTable(t, db, "m")

	const commits = 40
	const rowsPer = 9
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for c := 1; c <= commits; c++ {
			b := colstore.NewBatch(dSchema)
			for r := 0; r < rowsPer; r++ {
				if err := b.AppendRow(int64(c), float64(r)); err != nil {
					panic(err)
				}
			}
			if err := db.Load("m", b); err != nil {
				panic(err)
			}
		}
	}()
	// Concurrent blob churn (the Redeploy path) must not disturb readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			v++
			if err := db.JournalBlobPut("models/hot", []byte(fmt.Sprintf("v%d", v))); err != nil {
				panic(err)
			}
		}
	}()

	var torn atomic.Bool
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := db.Query(`SELECT id, count(*) AS n FROM m GROUP BY id ORDER BY id`)
				if err != nil {
					t.Error(err)
					return
				}
				rows := res.Rows()
				for idx, r := range rows {
					id, n := r[0].(int64), r[1].(int64)
					if n != rowsPer || id != int64(idx+1) {
						torn.Store(true)
						t.Errorf("snapshot tore: id %d has %d rows (want %d), position %d", id, n, rowsPer, idx)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if torn.Load() {
		t.Fatal("snapshot isolation violated")
	}
	rows, err := db.TableRows("m")
	if err != nil || rows != commits*rowsPer {
		t.Fatalf("final count %d, want %d", rows, commits*rowsPer)
	}
}

func TestGroupCommitBatchesConcurrentLoads(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	defer db.Close()
	const tables = 8
	for i := 0; i < tables; i++ {
		createDTable(t, db, fmt.Sprintf("t%d", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for c := 0; c < 10; c++ {
				if err := db.Load(fmt.Sprintf("t%d", i), dBatch(t, c*10, 5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < tables; i++ {
		rows, err := db.TableRows(fmt.Sprintf("t%d", i))
		if err != nil || rows != 50 {
			t.Fatalf("table t%d has %d rows, want 50", i, rows)
		}
	}
}

func TestTornWALTailDiscardedByRecovery(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 25)); err != nil {
		t.Fatal(err)
	}
	want := tableImage(t, db, "m")
	db.Close()

	// Append garbage half-record bytes to the last WAL segment: the torn
	// tail a real crash mid-write leaves.
	walDir := filepath.Join(dir, walSubdir)
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			last = filepath.Join(walDir, e.Name())
		}
	}
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xEE, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := durableDB(t, dir)
	defer re.Close()
	if !re.RecoveryInfo().Replay.Torn {
		t.Fatal("torn tail not reported")
	}
	if got := tableImage(t, re, "m"); !imagesEqual(want, got) {
		t.Fatal("torn tail corrupted recovered state")
	}
	// Appends continue cleanly past the truncated tear.
	if err := re.Load("m", dBatch(t, 900, 5)); err != nil {
		t.Fatal(err)
	}
}

func TestNonDurableUnaffected(t *testing.T) {
	db, err := Open(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if db.RecoveryInfo() != nil {
		t.Fatal("in-memory database claims recovery")
	}
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint must require durable mode")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
