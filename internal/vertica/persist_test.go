package vertica

import (
	"strings"
	"testing"
)

func TestPersistRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Nodes: 3, DataDir: dir, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, db, `CREATE TABLE t1 (id INTEGER, x FLOAT, s VARCHAR) SEGMENTED BY HASH(id)`)
	mustQuery(t, db, `CREATE TABLE t2 (v FLOAT) SEGMENTED BY ROUND ROBIN`)
	mustQuery(t, db, `INSERT INTO t1 VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')`)
	mustQuery(t, db, `INSERT INTO t2 VALUES (10.0), (20.0)`)
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk (cluster size inferred from the manifest).
	re, err := Restore(Config{DataDir: dir, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if re.NumNodes() != 3 {
		t.Fatalf("restored nodes = %d", re.NumNodes())
	}
	rows := mustQuery(t, re, `SELECT id, x, s FROM t1 ORDER BY id`)
	if len(rows) != 3 || rows[2][2] != "c" || rows[0][1] != 1.5 {
		t.Fatalf("restored rows = %v", rows)
	}
	// Segmentation survives: same placement as before.
	def, err := re.TableDef("t1")
	if err != nil || def.Seg.Column != "id" {
		t.Fatalf("restored seg = %+v, %v", def, err)
	}
	before, _ := db.SegmentSizes("t1")
	after, _ := re.SegmentSizes("t1")
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("segment layout changed: %v vs %v", before, after)
		}
	}
	// New inserts route consistently post-restore.
	mustQuery(t, re, `INSERT INTO t1 VALUES (4, 4.5, 'd')`)
	if n, _ := re.TableRows("t1"); n != 4 {
		t.Fatalf("rows after insert = %d", n)
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(Config{}); err == nil {
		t.Fatal("missing DataDir should fail")
	}
	if _, err := Restore(Config{DataDir: t.TempDir()}); err == nil {
		t.Fatal("missing manifest should fail")
	}
	// Mismatched cluster size.
	dir := t.TempDir()
	db, _ := Open(Config{Nodes: 2, DataDir: dir})
	mustQuery(t, db, `CREATE TABLE t (a INTEGER)`)
	_ = db.Persist()
	if _, err := Restore(Config{Nodes: 5, DataDir: dir}); err == nil {
		t.Fatal("cluster-size mismatch should fail")
	}
}

func TestLoadCSV(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE t (id INTEGER, x FLOAT, s VARCHAR, ok BOOLEAN)`)
	csvData := "id,x,s,ok\n1,1.5,hello,true\n2,-2.5,\"with,comma\",f\n3,0,z,1\n"
	n, err := db.LoadCSV("t", strings.NewReader(csvData), true)
	if err != nil || n != 3 {
		t.Fatalf("loaded %d, %v", n, err)
	}
	rows := mustQuery(t, db, `SELECT id, x, s, ok FROM t ORDER BY id`)
	if rows[1][2] != "with,comma" || rows[1][3] != false || rows[2][3] != true {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := openTestDB(t, 1)
	mustQuery(t, db, `CREATE TABLE t (id INTEGER, ok BOOLEAN)`)
	cases := []string{
		"xx,true\n",   // bad int
		"1,perhaps\n", // bad bool
		"1\n",         // wrong arity
	}
	for _, c := range cases {
		if _, err := db.LoadCSV("t", strings.NewReader(c), false); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
	if _, err := db.LoadCSV("missing", strings.NewReader(""), false); err == nil {
		t.Fatal("missing table should fail")
	}
	if _, err := db.LoadCSVFile("t", "/no/such/file.csv", false); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadCSVFloatTableWithBadFloat(t *testing.T) {
	db := openTestDB(t, 1)
	mustQuery(t, db, `CREATE TABLE f (x FLOAT)`)
	if _, err := db.LoadCSV("f", strings.NewReader("not-a-number\n"), false); err == nil {
		t.Fatal("bad float should fail")
	}
}
