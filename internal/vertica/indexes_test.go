package vertica

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verticadr/internal/faults"
)

// indexedNodes counts segments of table carrying an index on col.
func indexedNodes(t *testing.T, db *DB, table, col string) int {
	t.Helper()
	segs, err := db.Segments(table)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, seg := range segs {
		if seg.Index(col) != nil {
			n++
		}
	}
	return n
}

// pointRows runs an indexable point query and returns the result rows
// rendered as strings (engine-agnostic equivalence check).
func pointRows(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, res.Len())
	for _, r := range res.Rows() {
		out = append(out, fmt.Sprint(r))
	}
	return out
}

func TestCreateDropIndexRoundTrip(t *testing.T) {
	db, err := Open(Config{Nodes: 3, BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 200)); err != nil {
		t.Fatal(err)
	}
	before := pointRows(t, db, "SELECT id, x FROM m WHERE id = 137 ORDER BY id")
	epoch0 := db.CatalogEpoch()

	if err := db.Exec("CREATE INDEX m_id ON m (id)"); err != nil {
		t.Fatal(err)
	}
	if db.CatalogEpoch() <= epoch0 {
		t.Fatal("CREATE INDEX did not bump the catalog epoch")
	}
	if got := db.Indexes(); len(got) != 1 || got[0] != (IndexDef{Name: "m_id", Table: "m", Column: "id"}) {
		t.Fatalf("index catalog = %+v", got)
	}
	if n := indexedNodes(t, db, "m", "id"); n != 3 {
		t.Fatalf("index attached on %d/3 nodes", n)
	}
	if got := pointRows(t, db, "SELECT id, x FROM m WHERE id = 137 ORDER BY id"); !equalStrings(got, before) {
		t.Fatalf("indexed point query %v != scan result %v", got, before)
	}

	// Error paths validate against the log-end catalog view.
	if err := db.Exec("CREATE INDEX m_id ON m (x)"); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate name on different column: %v", err)
	}
	if err := db.Exec("CREATE INDEX m_id ON m (id)"); err != nil {
		t.Fatalf("identical re-create should be tolerated: %v", err)
	}
	if err := db.Exec("CREATE INDEX nope ON m (missing)"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
	if err := db.Exec("CREATE INDEX nope ON absent (id)"); err == nil {
		t.Fatal("index on unknown table accepted")
	}

	if err := db.Exec("DROP INDEX m_id"); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(); len(got) != 0 {
		t.Fatalf("index catalog after drop = %+v", got)
	}
	if n := indexedNodes(t, db, "m", "id"); n != 0 {
		t.Fatalf("index still attached on %d nodes after drop", n)
	}
	if err := db.Exec("DROP INDEX m_id"); err == nil {
		t.Fatal("dropping a missing index accepted")
	}
	if got := pointRows(t, db, "SELECT id, x FROM m WHERE id = 137 ORDER BY id"); !equalStrings(got, before) {
		t.Fatalf("post-drop query %v != %v", got, before)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexMaintainedAcrossLoadsAndDroppedWithTable(t *testing.T) {
	db, err := Open(Config{Nodes: 2, BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE INDEX m_id ON m (id)"); err != nil {
		t.Fatal(err)
	}
	// Loads after CREATE INDEX must keep the tree covering every row.
	for i := 1; i <= 4; i++ {
		if err := db.Load("m", dBatch(t, i*1000, 50)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := db.Segments("m")
	if err != nil {
		t.Fatal(err)
	}
	for node, seg := range segs {
		tree := seg.Index("id")
		if tree == nil {
			t.Fatalf("node %d lost its index after loads", node)
		}
		if tree.Rows() != seg.Rows() {
			t.Fatalf("node %d index covers %d rows, segment has %d", node, tree.Rows(), seg.Rows())
		}
	}
	want := pointRows(t, db, "SELECT id, x FROM m WHERE id = 3007 ORDER BY id")
	if len(want) != 1 {
		t.Fatalf("expected the post-index row to be found, got %v", want)
	}

	// DROP TABLE clears the table's index catalog entries too.
	if err := db.Exec("DROP TABLE m"); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(); len(got) != 0 {
		t.Fatalf("index catalog survived DROP TABLE: %+v", got)
	}
}

// TestDurableIndexReplayRebuild crashes (without a checkpoint) after index
// DDL; recovery must replay the CREATE/DROP records and rebuild the trees
// from the recovered table data.
func TestDurableIndexReplayRebuild(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE INDEX m_id ON m (id)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE INDEX m_x ON m (x)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("DROP INDEX m_x"); err != nil {
		t.Fatal(err)
	}
	// Rows loaded after the DDL exercise replay ordering (create, then load).
	if err := db.Load("m", dBatch(t, 5000, 40)); err != nil {
		t.Fatal(err)
	}
	want := pointRows(t, db, "SELECT id, x FROM m WHERE id = 5017 ORDER BY id")
	db.Close()

	re := durableDB(t, dir)
	defer re.Close()
	if got := re.Indexes(); len(got) != 1 || got[0].Name != "m_id" {
		t.Fatalf("recovered index catalog = %+v", got)
	}
	if n := indexedNodes(t, re, "m", "id"); n != 3 {
		t.Fatalf("recovered index attached on %d/3 nodes", n)
	}
	if n := indexedNodes(t, re, "m", "x"); n != 0 {
		t.Fatalf("dropped index resurrected on %d nodes", n)
	}
	segs, _ := re.Segments("m")
	for node, seg := range segs {
		if tree := seg.Index("id"); tree.Rows() != seg.Rows() {
			t.Fatalf("node %d rebuilt index covers %d rows, segment has %d", node, tree.Rows(), seg.Rows())
		}
	}
	if got := pointRows(t, re, "SELECT id, x FROM m WHERE id = 5017 ORDER BY id"); !equalStrings(got, want) {
		t.Fatalf("recovered indexed query %v != pre-crash %v", got, want)
	}
}

// TestCheckpointPersistsIndexTrees verifies the .vidx fast path: a restart
// from a checkpoint loads the persisted trees, and a corrupted tree file
// silently falls back to rebuilding from segment data.
func TestCheckpointPersistsIndexTrees(t *testing.T) {
	dir := t.TempDir()
	db := durableDB(t, dir)
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 120)); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE INDEX m_id ON m (id)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := pointRows(t, db, "SELECT id, x FROM m WHERE id = 88 ORDER BY id")
	db.Close()

	// The image must contain one tree file per node.
	chks, err := filepath.Glob(filepath.Join(dir, "chk-*", "tables", "m", "node*.id.vidx"))
	if err != nil || len(chks) != 3 {
		t.Fatalf("checkpoint .vidx files = %v (%v)", chks, err)
	}

	re := durableDB(t, dir)
	if n := indexedNodes(t, re, "m", "id"); n != 3 {
		t.Fatalf("checkpoint restart attached index on %d/3 nodes", n)
	}
	if got := pointRows(t, re, "SELECT id, x FROM m WHERE id = 88 ORDER BY id"); !equalStrings(got, want) {
		t.Fatalf("post-checkpoint query %v != %v", got, want)
	}
	re.Close()

	// Corrupt one tree file: recovery must rebuild that node's tree from the
	// segment instead of failing or serving a broken index.
	if err := os.WriteFile(chks[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re2 := durableDB(t, dir)
	defer re2.Close()
	if n := indexedNodes(t, re2, "m", "id"); n != 3 {
		t.Fatalf("rebuild fallback attached index on %d/3 nodes", n)
	}
	segs, _ := re2.Segments("m")
	for node, seg := range segs {
		if tree := seg.Index("id"); tree.Rows() != seg.Rows() {
			t.Fatalf("node %d fallback index covers %d rows, segment has %d", node, tree.Rows(), seg.Rows())
		}
	}
	if got := pointRows(t, re2, "SELECT id, x FROM m WHERE id = 88 ORDER BY id"); !equalStrings(got, want) {
		t.Fatalf("fallback query %v != %v", got, want)
	}
}

// TestInjectedCrashMidIndexDDL is the acceptance crash suite for index DDL:
// a crash injected inside the WAL append or fsync of a CREATE/DROP INDEX
// burst must recover to exactly the acknowledged index catalog, with every
// surviving index consistent with its table.
func TestInjectedCrashMidIndexDDL(t *testing.T) {
	for _, site := range []string{faults.SiteWALAppend, faults.SiteWALFsync} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			db := durableDB(t, dir)
			createDTable(t, db, "m")
			if err := db.Load("m", dBatch(t, 0, 60)); err != nil {
				t.Fatal(err)
			}

			in := faults.New(11)
			in.MustArm(faults.Rule{Site: site, Kind: faults.Crash, EveryN: 3})
			faults.Install(in)
			for i := 0; i < 40; i++ {
				var err error
				switch i % 3 {
				case 0:
					err = db.Exec(fmt.Sprintf("CREATE INDEX ix%d ON m (id)", i))
				case 1:
					err = db.Load("m", dBatch(t, (i+1)*1000, 10))
				default:
					err = db.Exec(fmt.Sprintf("DROP INDEX ix%d", i-2))
				}
				if err != nil {
					break // the crash: everything after this is the dead process
				}
			}
			faults.Install(nil)
			// Acknowledged state, captured from the dying process's memory.
			wantIdx := db.Indexes()
			wantImage := tableImage(t, db, "m")
			db.Close()

			re := durableDB(t, dir)
			defer re.Close()
			gotIdx := re.Indexes()
			if len(gotIdx) != len(wantIdx) {
				t.Fatalf("recovered %d indexes, acked %d (%+v vs %+v)", len(gotIdx), len(wantIdx), gotIdx, wantIdx)
			}
			for i := range wantIdx {
				if gotIdx[i] != wantIdx[i] {
					t.Fatalf("recovered index %+v, acked %+v", gotIdx[i], wantIdx[i])
				}
			}
			if got := tableImage(t, re, "m"); !imagesEqual(wantImage, got) {
				t.Fatal("recovered table image differs after index-DDL crash")
			}
			// Every recovered index must cover its segment exactly.
			segs, _ := re.Segments("m")
			for _, d := range gotIdx {
				for node, seg := range segs {
					tree := seg.Index(d.Column)
					if tree == nil || tree.Rows() != seg.Rows() {
						t.Fatalf("index %q node %d inconsistent after crash at %s", d.Name, node, site)
					}
				}
			}
		})
	}
}

// TestLegacyPersistRestoreRebuildsIndexes pins the non-WAL dump path: the
// manifest records the index catalog and Restore rebuilds the trees.
func TestLegacyPersistRestoreRebuildsIndexes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Nodes: 2, DataDir: dir, BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	createDTable(t, db, "m")
	if err := db.Load("m", dBatch(t, 0, 80)); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE INDEX m_id ON m (id)"); err != nil {
		t.Fatal(err)
	}
	want := pointRows(t, db, "SELECT id, x FROM m WHERE id = 44 ORDER BY id")
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := Restore(Config{DataDir: dir, BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := indexedNodes(t, re, "m", "id"); n != 2 {
		t.Fatalf("restored index attached on %d/2 nodes", n)
	}
	if got := pointRows(t, re, "SELECT id, x FROM m WHERE id = 44 ORDER BY id"); !equalStrings(got, want) {
		t.Fatalf("restored query %v != %v", got, want)
	}
}
