package vertica

import (
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
)

func openTestDB(t *testing.T, nodes int) *DB {
	t.Helper()
	db, err := Open(Config{Nodes: nodes, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustQuery(t *testing.T, db *DB, sql string) [][]any {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res.Rows()
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Nodes: 0}); err == nil {
		t.Fatal("0 nodes should fail")
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := openTestDB(t, 3)
	if _, err := db.Query(`CREATE TABLE t (id INTEGER, x FLOAT, name VARCHAR) SEGMENTED BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')`); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, `SELECT id, x, name FROM t ORDER BY id`)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0] != int64(1) || rows[2][2] != "c" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertColumnReorder(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustQuery(t, db, `INSERT INTO t (b, a) VALUES ('x', 7)`)
	rows := mustQuery(t, db, `SELECT a, b FROM t`)
	if rows[0][0] != int64(7) || rows[0][1] != "x" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertNegativeLiterals(t *testing.T) {
	db := openTestDB(t, 1)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER, b FLOAT)`)
	mustQuery(t, db, `INSERT INTO t VALUES (-5, -2.5)`)
	rows := mustQuery(t, db, `SELECT a, b FROM t`)
	if rows[0][0] != int64(-5) || rows[0][1] != -2.5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertErrors(t *testing.T) {
	db := openTestDB(t, 1)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER, b FLOAT)`)
	for _, q := range []string{
		`INSERT INTO missing VALUES (1, 2.0)`,
		`INSERT INTO t (a) VALUES (1)`,
		`INSERT INTO t (a, zz) VALUES (1, 2.0)`,
		`INSERT INTO t VALUES (1)`,
		`INSERT INTO t VALUES (1 + 1, 2.0)`,
		`INSERT INTO t VALUES ('str', 2.0)`,
	} {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestWhereFilterAndPushdown(t *testing.T) {
	db := openTestDB(t, 4)
	mustQuery(t, db, `CREATE TABLE t (id INTEGER, x FLOAT)`)
	b := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
	})
	for i := 0; i < 1000; i++ {
		_ = b.AppendRow(int64(i), float64(i)/10)
	}
	if err := db.Load("t", b); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, `SELECT id FROM t WHERE id >= 990 ORDER BY id`)
	if len(rows) != 10 || rows[0][0] != int64(990) {
		t.Fatalf("pushdown rows = %v", rows)
	}
	// Complex predicate that cannot be pushed down.
	rows = mustQuery(t, db, `SELECT id FROM t WHERE id >= 995 AND x < 99.8 ORDER BY id DESC`)
	if len(rows) != 3 || rows[0][0] != int64(997) {
		t.Fatalf("residual rows = %v", rows)
	}
	// Mirrored literal-first comparison.
	rows = mustQuery(t, db, `SELECT id FROM t WHERE 998 < id`)
	if len(rows) != 1 || rows[0][0] != int64(999) {
		t.Fatalf("mirrored rows = %v", rows)
	}
}

func TestAggregates(t *testing.T) {
	db := openTestDB(t, 3)
	mustQuery(t, db, `CREATE TABLE sales (region VARCHAR, amount FLOAT, qty INTEGER)`)
	mustQuery(t, db, `INSERT INTO sales VALUES ('east', 10.0, 1), ('east', 20.0, 2), ('west', 5.0, 3)`)

	rows := mustQuery(t, db, `SELECT count(*), sum(amount), avg(amount), min(qty), max(qty) FROM sales`)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[0] != int64(3) || r[1] != 35.0 || r[2] != 35.0/3 || r[3] != int64(1) || r[4] != int64(3) {
		t.Fatalf("aggregates = %v", r)
	}

	rows = mustQuery(t, db, `SELECT region, sum(amount) AS total FROM sales GROUP BY region ORDER BY region`)
	if len(rows) != 2 || rows[0][0] != "east" || rows[0][1] != 30.0 || rows[1][1] != 5.0 {
		t.Fatalf("group rows = %v", rows)
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE e (x FLOAT)`)
	rows := mustQuery(t, db, `SELECT count(*), sum(x) FROM e`)
	if rows[0][0] != int64(0) || rows[0][1] != 0.0 {
		t.Fatalf("empty agg = %v", rows)
	}
	if _, err := db.Query(`SELECT min(x) FROM e`); err == nil {
		t.Fatal("MIN over empty input should error")
	}
}

func TestAggregateErrors(t *testing.T) {
	db := openTestDB(t, 1)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustQuery(t, db, `INSERT INTO t VALUES (1, 'x')`)
	for _, q := range []string{
		`SELECT a, count(*) FROM t`,         // a not grouped
		`SELECT sum(b) FROM t`,              // non-numeric sum
		`SELECT * FROM t GROUP BY a`,        // star with grouping
		`SELECT upper(b) FROM t GROUP BY b`, // non-aggregate projection shape
		`SELECT sum(a, a) FROM t`,           // arity
		`SELECT min(*) FROM t`,              // MIN(*)
	} {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestExpressionsAndScalarFuncs(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER, b FLOAT, s VARCHAR)`)
	mustQuery(t, db, `INSERT INTO t VALUES (4, -2.0, 'Hi')`)
	rows := mustQuery(t, db, `SELECT a + 1, a / 8, abs(b), sqrt(a), upper(s), lower(s), a * 2 - 1 FROM t`)
	r := rows[0]
	if r[0] != int64(5) || r[1] != 0.5 || r[2] != 2.0 || r[3] != 2.0 || r[4] != "HI" || r[5] != "hi" || r[6] != int64(7) {
		t.Fatalf("exprs = %v", r)
	}
}

func TestConstSelect(t *testing.T) {
	db := openTestDB(t, 1)
	rows := mustQuery(t, db, `SELECT 1 + 2 AS three, 'x', true`)
	if rows[0][0] != int64(3) || rows[0][1] != "x" || rows[0][2] != true {
		t.Fatalf("const select = %v", rows)
	}
	if _, err := db.Query(`SELECT *`); err == nil {
		t.Fatal("star without FROM should fail")
	}
}

func TestOrderByLimitMultiKey(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE t (g INTEGER, v INTEGER)`)
	mustQuery(t, db, `INSERT INTO t VALUES (1, 9), (2, 1), (1, 3), (2, 7)`)
	rows := mustQuery(t, db, `SELECT g, v FROM t ORDER BY g ASC, v DESC LIMIT 3`)
	want := [][]int64{{1, 9}, {1, 3}, {2, 7}}
	for i, w := range want {
		if rows[i][0] != w[0] || rows[i][1] != w[1] {
			t.Fatalf("row %d = %v want %v", i, rows[i], w)
		}
	}
}

func TestSelectStar(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustQuery(t, db, `INSERT INTO t VALUES (1, 'x')`)
	res, err := db.Query(`SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema()) != 2 || res.Schema()[0].Name != "a" {
		t.Fatalf("star schema = %v", res.Schema())
	}
}

func TestDropTable(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE t (a INTEGER)`)
	mustQuery(t, db, `DROP TABLE t`)
	if _, err := db.Query(`SELECT a FROM t`); err == nil {
		t.Fatal("query on dropped table should fail")
	}
	if _, err := db.Query(`DROP TABLE t`); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestSegmentationPlacement(t *testing.T) {
	db := openTestDB(t, 4)
	mustQuery(t, db, `CREATE TABLE rr (a INTEGER) SEGMENTED BY ROUND ROBIN`)
	b := colstore.NewBatch(colstore.Schema{{Name: "a", Type: colstore.TypeInt64}})
	for i := 0; i < 100; i++ {
		_ = b.AppendRow(int64(i))
	}
	_ = db.Load("rr", b)
	sizes, err := db.SegmentSizes("rr")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes {
		if s != 25 {
			t.Fatalf("node %d has %d rows (sizes=%v)", i, s, sizes)
		}
	}
	total, _ := db.TableRows("rr")
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
}

func TestLoadAtBuildsSkew(t *testing.T) {
	db := openTestDB(t, 3)
	mustQuery(t, db, `CREATE TABLE sk (a INTEGER)`)
	b := colstore.NewBatch(colstore.Schema{{Name: "a", Type: colstore.TypeInt64}})
	for i := 0; i < 90; i++ {
		_ = b.AppendRow(int64(i))
	}
	if err := db.LoadAt("sk", 2, b); err != nil {
		t.Fatal(err)
	}
	sizes, _ := db.SegmentSizes("sk")
	if sizes[0] != 0 || sizes[1] != 0 || sizes[2] != 90 {
		t.Fatalf("sizes = %v", sizes)
	}
	if err := db.LoadAt("sk", 9, b); err == nil {
		t.Fatal("bad node should fail")
	}
}

func TestLoadColumns(t *testing.T) {
	db := openTestDB(t, 2)
	mustQuery(t, db, `CREATE TABLE f (x FLOAT, y FLOAT)`)
	if err := db.LoadColumns("f", [][]float64{{1, 2, 3}, {4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, `SELECT sum(x), sum(y) FROM f`)
	if rows[0][0] != 6.0 || rows[0][1] != 15.0 {
		t.Fatalf("rows = %v", rows)
	}
	if err := db.LoadColumns("f", [][]float64{{1}}); err == nil {
		t.Fatal("wrong column count should fail")
	}
	mustQuery(t, db, `CREATE TABLE m (s VARCHAR)`)
	if err := db.LoadColumns("m", [][]float64{{1}}); err == nil {
		t.Fatal("non-float table should fail")
	}
}

func TestPersist(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Nodes: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, db, `CREATE TABLE t (a INTEGER)`)
	mustQuery(t, db, `INSERT INTO t VALUES (1), (2)`)
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}
	seg, err := colstore.OpenSegment(dir + "/tables/t/node0.vseg")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Rows()+1 < 1 { // just verify it opened
		t.Fatal("unreachable")
	}
	db2 := openTestDB(t, 1)
	if err := db2.Persist(); err == nil {
		t.Fatal("persist without DataDir should fail")
	}
}

func TestCreateTableHashSegmentation(t *testing.T) {
	db := openTestDB(t, 4)
	mustQuery(t, db, `CREATE TABLE h (k VARCHAR, v INTEGER) SEGMENTED BY HASH(k)`)
	def, err := db.TableDef("h")
	if err != nil {
		t.Fatal(err)
	}
	if def.Seg.Kind != catalog.SegHash || def.Seg.Column != "k" {
		t.Fatalf("seg = %+v", def.Seg)
	}
	// Same key twice must land on the same node.
	mustQuery(t, db, `INSERT INTO h VALUES ('alpha', 1), ('alpha', 2)`)
	sizes, _ := db.SegmentSizes("h")
	nonzero := 0
	for _, s := range sizes {
		if s > 0 {
			nonzero++
			if s != 2 {
				t.Fatalf("expected both rows on one node: %v", sizes)
			}
		}
	}
	if nonzero != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestQueryParseError(t *testing.T) {
	db := openTestDB(t, 1)
	if _, err := db.Query(`SELEKT 1`); err == nil {
		t.Fatal("parse error should propagate")
	}
}
