package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"verticadr/internal/faults"
)

// collect replays the whole log into (lsn, typ, body) triples.
func collect(t *testing.T, dir string, from uint64) ([]byte, [][]byte, *ReplayStats) {
	t.Helper()
	var types []byte
	var bodies [][]byte
	stats, err := Replay(dir, from, func(lsn uint64, typ byte, body []byte) error {
		types = append(types, typ)
		bodies = append(bodies, append([]byte(nil), body...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return types, bodies, stats
}

func TestAppendCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xab}, 10_000)}
	for i, body := range want {
		if _, err := w.AppendCommit(byte(i+1), body); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	types, bodies, stats := collect(t, dir, 0)
	if len(bodies) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(bodies), len(want))
	}
	for i := range want {
		if types[i] != byte(i+1) || !bytes.Equal(bodies[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if stats.Torn {
		t.Fatal("clean log reported torn")
	}
}

func TestGroupCommitManyWaitersOneLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = w.AppendCommit(1, []byte(fmt.Sprintf("rec-%03d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, bodies, _ := collect(t, dir, 0)
	if len(bodies) != n {
		t.Fatalf("replayed %d records, want %d", len(bodies), n)
	}
	seen := map[string]bool{}
	for _, b := range bodies {
		seen[string(b)] = true
	}
	if len(seen) != n {
		t.Fatalf("lost records: %d distinct of %d", len(seen), n)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := w.AppendCommit(7, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	end := w.DurableLSN()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(starts))
	}
	_, bodies, stats := collect(t, dir, 0)
	if len(bodies) != n || stats.End != end {
		t.Fatalf("replay got %d records end %d, want %d records end %d", len(bodies), stats.End, n, end)
	}
	// Reopen and keep appending; the log must stay contiguous.
	w2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if w2.EndLSN() != end {
		t.Fatalf("reopened at %d, want %d", w2.EndLSN(), end)
	}
	if _, err := w2.AppendCommit(8, []byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	types, _, _ := collect(t, dir, 0)
	if types[len(types)-1] != 8 {
		t.Fatal("record appended after reopen missing")
	}
}

func TestTornTailToleratedAndTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.AppendCommit(1, []byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	end := w.DurableLSN()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial frame at the tail.
	path := filepath.Join(dir, segName(0))
	full := appendFrame(nil, 9, bytes.Repeat([]byte{0xcd}, 100))
	for cut := 1; cut < len(full); cut += 17 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data[:end], full[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		_, bodies, stats := collect(t, dir, 0)
		if len(bodies) != 5 {
			t.Fatalf("cut %d: replayed %d records, want 5", cut, len(bodies))
		}
		if !stats.Torn || stats.End != end {
			t.Fatalf("cut %d: torn=%v end=%d, want torn at %d", cut, stats.Torn, stats.End, end)
		}
	}
	// Reopen truncates the tear and appends cleanly after it.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.EndLSN() != end {
		t.Fatalf("reopen end %d, want %d", w2.EndLSN(), end)
	}
	if _, err := w2.AppendCommit(2, []byte("post-tear")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	types, _, stats := collect(t, dir, 0)
	if stats.Torn || len(types) != 6 || types[5] != 2 {
		t.Fatalf("post-tear log wrong: torn=%v n=%d", stats.Torn, len(types))
	}
}

func TestInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mid uint64
	for i := 0; i < 5; i++ {
		lsn, err := w.AppendCommit(1, bytes.Repeat([]byte{byte('a' + i)}, 50))
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			mid = lsn
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the log: the record is fully
	// present, so this is corruption, not a torn tail.
	data[mid-10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption not rejected: %v", err)
	}
}

func TestReplayFromCheckpointHorizonAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var horizon uint64
	for i := 0; i < 40; i++ {
		lsn, err := w.AppendCommit(1, bytes.Repeat([]byte{byte(i)}, 40))
		if err != nil {
			t.Fatal(err)
		}
		if i == 19 {
			horizon = lsn
		}
	}
	_, bodies, _ := collect(t, dir, horizon)
	if len(bodies) != 20 {
		t.Fatalf("replay from horizon got %d records, want 20", len(bodies))
	}
	removed, err := w.TruncateBefore(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected some segments removed")
	}
	// Post-truncation replay from the horizon still works; replay from 0
	// must refuse (the history is gone).
	_, bodies, _ = collect(t, dir, horizon)
	if len(bodies) != 20 {
		t.Fatalf("post-truncate replay got %d records, want 20", len(bodies))
	}
	if _, err := Replay(dir, 0, nil); err == nil {
		t.Fatal("replay from 0 over truncated log should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointMarkerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	want := Checkpoint{LSN: 12345, Dir: "chk-0000000000003039", UnixNano: 42}
	if err := SaveCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestInjectedFsyncCrashNeverAcknowledges(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: faults.SiteWALFsync, Kind: faults.Crash, EveryN: 3})
	faults.Install(in)
	defer faults.Install(nil)

	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked [][]byte
	for i := 0; i < 20; i++ {
		body := []byte(fmt.Sprintf("commit-%02d", i))
		if _, err := w.AppendCommit(1, body); err != nil {
			break // the injected crash poisoned the writer: stop, like a dead process
		}
		acked = append(acked, body)
	}
	w.Close()
	faults.Install(nil)
	// Recovery must surface every acknowledged commit; unacknowledged ones
	// may or may not be present, but nothing acked can be missing.
	_, bodies, _ := collect(t, dir, 0)
	if len(bodies) < len(acked) {
		t.Fatalf("recovered %d records but %d were acknowledged", len(bodies), len(acked))
	}
	for i, want := range acked {
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("acked record %d lost or reordered", i)
		}
	}
}

func TestInjectedAppendErrorFailsOnlyThatAppend(t *testing.T) {
	dir := t.TempDir()
	in := faults.New(2)
	in.MustArm(faults.Rule{Site: faults.SiteWALAppend, Kind: faults.Error, EveryN: 2, Limit: 1})
	faults.Install(in)
	defer faults.Install(nil)
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.AppendCommit(1, []byte("one")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if _, err := w.Append(1, []byte("two")); err == nil {
		t.Fatal("second append should hit the injected error")
	}
	if _, err := w.AppendCommit(1, []byte("three")); err != nil {
		t.Fatalf("append after injected error: %v", err)
	}
}

// FuzzWALRecord hardens the frame decoder: arbitrary bytes must never
// panic, a valid frame must round-trip, and the torn/corrupt distinction
// must hold — truncating a valid frame yields ErrTornTail, while flipping
// a byte inside a complete frame yields ErrCorrupt.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte("hello"), byte(3), 0, uint8(0))
	f.Add([]byte{}, byte(0), 1, uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 64), byte(255), 7, uint8(2))
	f.Fuzz(func(t *testing.T, body []byte, typ byte, cut int, mode uint8) {
		frame := appendFrame(nil, typ, body)
		pos := func(m int) int { return int(uint(cut) % uint(m)) }
		switch mode % 3 {
		case 0: // intact frame round-trips
			gotTyp, gotBody, n, err := decodeFrame(frame)
			if err != nil {
				t.Fatalf("valid frame rejected: %v", err)
			}
			if gotTyp != typ || !bytes.Equal(gotBody, body) || n != uint64(len(frame)) {
				t.Fatal("valid frame round-trip mismatch")
			}
		case 1: // truncated frame is a torn tail, never corrupt, never a panic
			if len(frame) == 0 {
				return
			}
			k := pos(len(frame))
			_, _, _, err := decodeFrame(frame[:k])
			if err == nil {
				t.Fatal("truncated frame decoded successfully")
			}
			if !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			// Short prefixes (no complete header+payload) must be torn.
			if k < len(frame) && errors.Is(err, ErrCorrupt) && k < headerSize {
				t.Fatalf("short header classified corrupt at cut %d", k)
			}
		case 2: // a flipped byte in a complete frame is corruption
			if len(frame) <= headerSize {
				return
			}
			k := headerSize + pos(len(frame)-headerSize)
			mut := append([]byte(nil), frame...)
			mut[k] ^= 0x01
			_, _, _, err := decodeFrame(mut)
			if err == nil {
				t.Fatal("payload corruption not detected")
			}
		}
	})
}

// FuzzWALRecordStream feeds arbitrary bytes straight to the decoder loop
// the reader uses: it must terminate without panics whatever the input.
func FuzzWALRecordStream(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(appendFrame(nil, 1, []byte("a")), 2, []byte("bb")))
	f.Add(bytes.Repeat([]byte{0x00}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		off := uint64(0)
		for int(off) < len(data) {
			_, _, n, err := decodeFrame(data[off:])
			if err != nil {
				return
			}
			if n == 0 {
				t.Fatal("zero-length frame accepted: decoder would loop forever")
			}
			off += n
		}
	})
}

// TestCommitRacingCloseNeverHangs pins the Close liveness contract: a Commit
// that races Close must return — an error is fine, a permanent block is not.
// Before the fix, a waiter registered after Close's final flush snapshot was
// never woken (the syncer had exited and nothing drained the kick channel).
func TestCommitRacingCloseNeverHangs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if _, err := w.AppendCommit(1, []byte("payload")); err != nil {
					return // closed underneath us: allowed, hanging is not
				}
				acked.Add(1)
			}
		}()
	}
	close(start)
	w.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Commit blocked forever across Close")
	}
	// Post-close commits fail fast instead of registering unwakeable waiters.
	if err := w.Commit(w.DurableLSN() + 1); err == nil {
		t.Fatal("Commit after Close reported an undurable LSN as durable")
	}
	// Every acknowledged commit survived the shutdown.
	types, _, _ := collect(t, dir, 0)
	if int64(len(types)) < acked.Load() {
		t.Fatalf("log holds %d records but %d commits were acknowledged", len(types), acked.Load())
	}
}
